(* fc — command-line front end for the Femto-Containers toolchain.

     fc asm prog.S -o prog.bin        assemble eBPF text to bytecode
     fc disasm prog.bin               disassemble bytecode
     fc verify prog.bin               run the pre-flight checker
     fc run prog.bin --arg 7          verify + execute (fc or certfc engine)
     fc inspect prog.bin              static statistics
     fc suit-sign ...                 build + sign a SUIT manifest
     fc suit-verify ...               verify a manifest against a payload *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  data

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let load_program path =
  Femto_ebpf.Program.of_bytes (Bytes.of_string (read_file path))

let helpers_table () =
  (* the standard syscall ABI, so `call bpf_store_global` assembles and
     helper ids disassemble to names *)
  Femto_core.Syscall.standard_names

let input_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Input file.")

let output_arg default =
  Arg.(value & opt string default & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Output file.")

(* --- asm --- *)

let asm_cmd =
  let run input output =
    let source = read_file input in
    match
      Femto_ebpf.Asm.assemble
        ~helpers:(fun name -> List.assoc_opt name (helpers_table ()))
        source
    with
    | exception Femto_ebpf.Asm.Error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" input line message;
        exit 1
    | program ->
        write_file output (Bytes.to_string (Femto_ebpf.Program.to_bytes program));
        Printf.printf "%s: %d instructions, %d bytes -> %s\n" input
          (Femto_ebpf.Program.length program)
          (Femto_ebpf.Program.byte_size program)
          output;
        0
  in
  Cmd.v (Cmd.info "asm" ~doc:"Assemble eBPF text to Femto-Container bytecode")
    Term.(const run $ input_arg $ output_arg "out.bin")

(* --- disasm --- *)

let disasm_cmd =
  let run input =
    let program = load_program input in
    let names = helpers_table () in
    let helper_name id =
      List.find_map (fun (name, i) -> if i = id then Some name else None) names
    in
    print_string (Femto_ebpf.Disasm.to_string ~helper_name program);
    0
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Disassemble Femto-Container bytecode")
    Term.(const run $ input_arg)

(* --- verify --- *)

let verify_cmd =
  let run input =
    let program = load_program input in
    match Femto_vm.Verifier.verify Femto_vm.Config.default program with
    | Ok ok ->
        (* Output format (documented in README): one OK line with the
           static counts — instruction slots, branch instructions, and
           the distinct helper ids called (listed in ascending order when
           there are any). *)
        let distinct =
          List.sort_uniq compare ok.Femto_vm.Verifier.call_ids
        in
        Printf.printf "OK: %d instructions, %d branches, %d distinct helper ids%s\n"
          ok.Femto_vm.Verifier.insn_count ok.Femto_vm.Verifier.branch_count
          (List.length distinct)
          (match distinct with
          | [] -> ""
          | ids ->
              Printf.sprintf " [%s]"
                (String.concat ", " (List.map string_of_int ids)));
        0
    | Error fault ->
        Printf.printf "REJECTED: %s\n" (Femto_vm.Fault.to_string fault);
        1
  in
  Cmd.v (Cmd.info "verify" ~doc:"Run the pre-flight instruction checker")
    Term.(const run $ input_arg)

(* --- analyze --- *)

(* A fully populated helper registry (every capability granted, inert
   facilities) so the analyzer can check call ids and arities for any
   program that uses the standard syscall ABI. *)
let analysis_helpers () =
  let facilities =
    {
      Femto_core.Syscall.local_store = Femto_core.Kvstore.create "local";
      tenant_store = Femto_core.Kvstore.create "tenant";
      global_store = Femto_core.Kvstore.create "global";
      now_ms = (fun () -> 0L);
      ticks = (fun () -> 0L);
      read_sensor = (fun _ -> Error "no sensor");
      trace = ignore;
    }
  in
  Femto_core.Syscall.build ~granted:Femto_core.Contract.all facilities

let analyze_cmd =
  let ir_arg =
    Arg.(
      value & flag
      & info [ "ir" ]
          ~doc:
            "Also lift to the superblock register IR, run the optimization \
             pass pipeline, and include the IR dump with per-pass rewrite \
             statistics in the JSON report.")
  in
  let run input ir =
    let program = load_program input in
    let helpers = analysis_helpers () in
    let report =
      Femto_analysis.Analysis.analyze ~helpers Femto_vm.Config.default program
    in
    let json = Femto_analysis.Analysis.report_to_json report in
    let json =
      match (ir, report) with
      | true, Ok outcome ->
          let lifted =
            Femto_analysis.Ir.lift ~cost:Femto_vm.Interp.no_cost
              ~facts:outcome.Femto_analysis.Analysis.mem_facts program
          in
          let optimized, preport = Femto_analysis.Passes.run lifted in
          let ir_json = Femto_analysis.Passes.to_json optimized preport in
          (match json with
          | Femto_obs.Jsonx.Obj fields ->
              Femto_obs.Jsonx.Obj (fields @ [ ("ir", ir_json) ])
          | other -> other)
      | _ -> json
    in
    print_endline (Femto_obs.Jsonx.to_string_pretty json);
    match report with
    | Ok outcome when Femto_analysis.Analysis.accepted outcome -> 0
    | Ok _ | Error _ -> 1
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the abstract-interpretation analyzer (CFG, register \
          initialization, static stack bounds, termination) and emit JSON \
          diagnostics; exits non-zero on error-severity findings.  With \
          $(b,--ir), also dump the optimized superblock IR and per-pass \
          statistics.")
    Term.(const run $ input_arg $ ir_arg)

(* --- run --- *)

let run_cmd =
  let engine_arg =
    Arg.(value & opt (enum [ ("fc", `Fc); ("certfc", `Certfc) ]) `Fc
         & info [ "engine" ] ~doc:"Interpreter: fc (optimized) or certfc (verified-style).")
  in
  let args_arg =
    Arg.(value & opt_all int64 [] & info [ "arg" ] ~docv:"N" ~doc:"Argument register value (r1..r5), repeatable.")
  in
  let tier_arg =
    Arg.(value
         & opt (enum [ ("decoded", Femto_vm.Vm.Decoded);
                       ("trimmed", Femto_vm.Vm.Trimmed);
                       ("compiled", Femto_vm.Vm.Compiled);
                       ("ir", Femto_vm.Vm.Ir) ])
             Femto_vm.Vm.Compiled
         & info [ "tier" ]
             ~doc:"Execution tier for the fc engine: decoded (defensive \
                   interpreter), trimmed (analyzer-gated interpreter fast \
                   path), compiled (closure-threaded, the default), or ir \
                   (superblock IR backend: optimization passes, one closure \
                   per block).  Proof-bearing tiers degrade gracefully when \
                   the analyzer withholds its proofs.")
  in
  let run input engine tier args =
    let program = load_program input in
    let helpers = Femto_vm.Helper.create () in
    let args = Array.of_list args in
    let outcome =
      match engine with
      | `Fc -> (
          (* route through the analyzer so --tier=trimmed/compiled gets
             the per-pc proofs those tiers specialize on *)
          match
            Femto_analysis.Analysis.load ~tier ~helpers ~regions:[] program
          with
          | Error fault -> Error fault
          | Ok vm -> (
              match Femto_vm.Vm.run vm ~args with
              | Ok v ->
                  let stats = Femto_vm.Vm.stats vm in
                  Ok (v, stats.Femto_vm.Interp.insns_executed,
                      stats.Femto_vm.Interp.branches_taken)
              | Error fault -> Error fault))
      | `Certfc -> (
          match Femto_certfc.Certfc.load ~helpers ~regions:[] program with
          | Error fault -> Error fault
          | Ok vm -> (
              match Femto_certfc.Certfc.run vm ~args with
              | Ok v -> (
                  match Femto_certfc.Certfc.last_state vm with
                  | Some s ->
                      Ok (v, s.Femto_certfc.Interp.insns_executed,
                          s.Femto_certfc.Interp.branches_taken)
                  | None -> Ok (v, 0, 0))
              | Error fault -> Error fault))
    in
    match outcome with
    | Ok (v, insns, branches) ->
        Printf.printf "r0 = %Ld (0x%Lx) after %d instructions, %d branches\n" v v
          insns branches;
        0
    | Error fault ->
        Printf.printf "FAULT: %s\n" (Femto_vm.Fault.to_string fault);
        1
  in
  Cmd.v (Cmd.info "run" ~doc:"Verify and execute bytecode in a sandbox")
    Term.(const run $ input_arg $ engine_arg $ tier_arg $ args_arg)

(* --- metrics / trace: run under observability, dump JSON --- *)

let obs_engine_arg =
  Arg.(value & opt (enum [ ("fc", `Fc); ("certfc", `Certfc) ]) `Fc
       & info [ "engine" ] ~doc:"Interpreter: fc (optimized) or certfc (verified-style).")

let obs_args_arg =
  Arg.(value & opt_all int64 [] & info [ "arg" ] ~docv:"N"
       ~doc:"Argument register value (r1..r5), repeatable.")

(* Verify + execute [input] with the observability layer switched on;
   returns the process exit code.  Shared by `fc metrics` and `fc trace`. *)
let observed_run input engine args =
  Femto_obs.Obs.set_enabled true;
  Femto_obs.Obs.set_tracing true;
  Femto_obs.Obs.reset ();
  let program = load_program input in
  let helpers = Femto_vm.Helper.create () in
  let args = Array.of_list args in
  let outcome =
    match engine with
    | `Fc -> (
        match Femto_vm.Vm.load ~helpers ~regions:[] program with
        | Error fault -> Error fault
        | Ok vm -> Femto_vm.Vm.run vm ~args)
    | `Certfc -> (
        match Femto_certfc.Certfc.load ~helpers ~regions:[] program with
        | Error fault -> Error fault
        | Ok vm -> Femto_certfc.Certfc.run vm ~args)
  in
  match outcome with
  | Ok _ -> 0
  | Error fault ->
      Printf.eprintf "FAULT: %s\n" (Femto_vm.Fault.to_string fault);
      1

let metrics_cmd =
  let run input engine args =
    let code = observed_run input engine args in
    print_endline
      (Femto_obs.Jsonx.to_string_pretty (Femto_obs.Obs.metrics_json ()));
    code
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Execute bytecode with the observability layer enabled and dump \
          the metrics registry as JSON")
    Term.(const run $ input_arg $ obs_engine_arg $ obs_args_arg)

let trace_cmd =
  let run input engine args =
    let code = observed_run input engine args in
    print_endline
      (Femto_obs.Jsonx.to_string_pretty (Femto_obs.Obs.trace_json ()));
    code
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Execute bytecode with event tracing enabled and dump the trace \
          ring as JSON")
    Term.(const run $ input_arg $ obs_engine_arg $ obs_args_arg)

(* --- spawn: image-cache demo — N instances from one verified image --- *)

let spawn_cmd =
  let count_arg =
    Arg.(value & opt int 100
         & info [ "n"; "count" ] ~docv:"N"
             ~doc:"Number of instances to spawn from the image.")
  in
  let fire_arg =
    Arg.(value & flag
         & info [ "fire" ]
             ~doc:"Run each spawned instance once after spawning and report \
                   the result distribution.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the spawn report as JSON (latencies, image-cache \
                   hit/miss counters, footprint) instead of text.")
  in
  let run input count fire json args =
    if count < 1 then begin
      prerr_endline "fc spawn: --count must be >= 1";
      2
    end
    else begin
      Femto_obs.Obs.set_enabled true;
      Femto_obs.Obs.reset ();
      let program = load_program input in
      let module Engine = Femto_core.Engine in
      let module Container = Femto_core.Container in
      let engine = Engine.create () in
      let hook_uuid = "fc-spawn" in
      let _hook =
        Engine.register_hook engine ~uuid:hook_uuid ~name:"fc spawn"
          ~ctx_size:16 ()
      in
      let tenant = Engine.add_tenant engine "cli" in
      let contract = Femto_core.Contract.require Femto_core.Contract.all in
      let make i =
        Container.create ~name:(Printf.sprintf "inst-%d" i) ~tenant ~contract
          program
      in
      let spawn c =
        match Engine.spawn engine ~hook_uuid c with
        | Ok _ -> ()
        | Error e ->
            Printf.eprintf "fc spawn: %s\n" (Engine.attach_error_to_string e);
            exit 1
      in
      (* the first spawn is the cache miss: verify + analyze + compile *)
      let t0 = Unix.gettimeofday () in
      let first = make 0 in
      spawn first;
      let cold_us = (Unix.gettimeofday () -. t0) *. 1e6 in
      let rest = List.init (count - 1) (fun i -> make (i + 1)) in
      let t1 = Unix.gettimeofday () in
      List.iter spawn rest;
      let warm_us = (Unix.gettimeofday () -. t1) *. 1e6 in
      let metric name =
        Femto_obs.Metrics.value (Femto_obs.Obs.counter name)
      in
      let image_words, instance_words = Engine.update_footprint_gauges engine in
      let word_bytes = Sys.word_size / 8 in
      if json then
        print_endline
          (Femto_obs.Jsonx.to_string_pretty
             (Femto_obs.Jsonx.Obj
                [
                  ("count", Femto_obs.Jsonx.Int count);
                  ("cold_spawn_us", Femto_obs.Jsonx.Float cold_us);
                  ( "warm_spawn_us",
                    if count > 1 then
                      Femto_obs.Jsonx.Float (warm_us /. float_of_int (count - 1))
                    else Femto_obs.Jsonx.Null );
                  ("images_cached", Femto_obs.Jsonx.Int (Engine.images_cached engine));
                  ("image_hits", Femto_obs.Jsonx.Int (metric "engine.image_hits"));
                  ("image_misses", Femto_obs.Jsonx.Int (metric "engine.image_misses"));
                  ("spawns", Femto_obs.Jsonx.Int (metric "engine.spawns"));
                  ("image_bytes", Femto_obs.Jsonx.Int (image_words * word_bytes));
                  ("instance_bytes", Femto_obs.Jsonx.Int (instance_words * word_bytes));
                ]))
      else begin
        Printf.printf "image built on first spawn: %.1f us\n" cold_us;
        if count > 1 then
          Printf.printf "%d cached spawns: %.2f us/instance\n" (count - 1)
            (warm_us /. float_of_int (count - 1));
        Printf.printf
          "image cache: %d image(s), %d hit(s), %d miss(es), %d spawn(s)\n"
          (Engine.images_cached engine)
          (metric "engine.image_hits")
          (metric "engine.image_misses")
          (metric "engine.spawns");
        Printf.printf
          "footprint: image %d B shared, instances %d B total (%.0f B/instance)\n"
          (image_words * word_bytes)
          (instance_words * word_bytes)
          (float_of_int (instance_words * word_bytes) /. float_of_int count)
      end;
      if fire then begin
        let args = Array.of_list args in
        let ok = ref 0 and faults = ref 0 and sample = ref None in
        List.iter
          (fun c ->
            match Container.run_instance c ~args with
            | Ok v ->
                incr ok;
                if !sample = None then sample := Some v
            | Error _ -> incr faults)
          (first :: rest);
        (match !sample with
        | Some v -> Printf.printf "fired %d instance(s): %d ok (r0 = %Ld), %d faulted\n" count !ok v !faults
        | None -> Printf.printf "fired %d instance(s): %d ok, %d faulted\n" count !ok !faults);
        if !faults > 0 then exit 1
      end;
      0
    end
  in
  Cmd.v
    (Cmd.info "spawn"
       ~doc:
         "Spawn $(b,N) container instances from one cached image (verify, \
          analyze and compile happen once; every further instance shares the \
          immutable artifact and privately owns only its stack and \
          copy-on-write kv delta) and report spawn latency, image-cache \
          counters and the shared-vs-private memory footprint.")
    Term.(const run $ input_arg $ count_arg $ fire_arg $ json_arg $ obs_args_arg)

(* --- inspect --- *)

let inspect_cmd =
  let run input =
    let program = load_program input in
    let count_kind predicate =
      Array.fold_left
        (fun acc insn -> if predicate (Femto_ebpf.Insn.kind insn) then acc + 1 else acc)
        0 (Femto_ebpf.Program.insns program)
    in
    Printf.printf "slots:        %d (%d bytes)\n"
      (Femto_ebpf.Program.length program)
      (Femto_ebpf.Program.byte_size program);
    Printf.printf "alu:          %d\n"
      (count_kind (function Femto_ebpf.Insn.Alu _ -> true | _ -> false));
    Printf.printf "memory:       %d\n"
      (count_kind (function
        | Femto_ebpf.Insn.Load _ | Femto_ebpf.Insn.Store_imm _
        | Femto_ebpf.Insn.Store_reg _ -> true
        | _ -> false));
    Printf.printf "branches:     %d\n"
      (count_kind (function
        | Femto_ebpf.Insn.Ja | Femto_ebpf.Insn.Jcond _ -> true
        | _ -> false));
    Printf.printf "helper calls: %d\n"
      (count_kind (function Femto_ebpf.Insn.Call -> true | _ -> false));
    0
  in
  Cmd.v (Cmd.info "inspect" ~doc:"Static statistics of a bytecode file")
    Term.(const run $ input_arg)

(* --- suit-sign / suit-verify --- *)

let key_args =
  let key_id =
    Arg.(value & opt string "fc-cli-key" & info [ "key-id" ] ~doc:"COSE key identifier.")
  in
  let secret =
    Arg.(required & opt (some string) None & info [ "key" ] ~doc:"Signing secret.")
  in
  Term.(const (fun key_id secret -> Femto_cose.Cose.make_key ~key_id ~secret)
        $ key_id $ secret)

let suit_sign_cmd =
  let seq =
    Arg.(value & opt int64 1L & info [ "seq" ] ~doc:"Manifest sequence number.")
  in
  let uuid =
    Arg.(required & opt (some string) None & info [ "uuid" ] ~doc:"Storage-location (hook) UUID.")
  in
  let run key seq uuid payload_file output =
    let payload = read_file payload_file in
    let manifest =
      Femto_suit.Suit.make ~sequence:seq
        [ Femto_suit.Suit.component_for ~storage_uuid:uuid payload ]
    in
    write_file output (Femto_suit.Suit.sign manifest key);
    Printf.printf "signed manifest seq %Ld for %s (%d B payload) -> %s\n" seq uuid
      (String.length payload) output;
    0
  in
  Cmd.v (Cmd.info "suit-sign" ~doc:"Build and sign a SUIT manifest for a payload")
    Term.(const run $ key_args $ seq $ uuid $ input_arg $ output_arg "manifest.suit")

let suit_verify_cmd =
  let uuid =
    Arg.(required & opt (some string) None & info [ "uuid" ] ~doc:"Storage-location (hook) UUID.")
  in
  let payload_file =
    Arg.(required & opt (some file) None & info [ "payload" ] ~doc:"Payload file to check.")
  in
  let run key uuid manifest_file payload_file =
    let device =
      Femto_suit.Suit.create_device ~key
        ~install:(fun ~sequence:_ ~storage_uuid:_ _ -> Ok ())
        ~known_storage:(fun u -> String.equal u uuid)
        ()
    in
    match
      Femto_suit.Suit.process device ~envelope:(read_file manifest_file)
        ~payloads:[ (uuid, read_file payload_file) ]
    with
    | Ok manifest ->
        Printf.printf "OK: manifest seq %Ld verifies for %s\n"
          manifest.Femto_suit.Suit.sequence uuid;
        0
    | Error e ->
        Printf.printf "REJECTED: %s\n" (Femto_suit.Suit.error_to_string e);
        1
  in
  Cmd.v (Cmd.info "suit-verify" ~doc:"Verify a SUIT manifest against a payload")
    Term.(const run $ key_args $ uuid $ input_arg $ payload_file)

(* --- pipeline: N-tenant parallel update verification --- *)

let pipeline_cmd =
  let tenants_arg =
    Arg.(value & opt int 4 & info [ "tenants" ] ~doc:"Number of tenant devices.")
  in
  let updates_arg =
    Arg.(value & opt int 8 & info [ "updates" ] ~doc:"Updates per tenant.")
  in
  let domains_arg =
    Arg.(value & opt int Femto_suit.Pipeline.default_domains
         & info [ "domains" ] ~doc:"Worker domains for the verification pool.")
  in
  let size_arg =
    Arg.(value & opt int 4096
         & info [ "payload-bytes" ] ~doc:"Payload size of each update.")
  in
  let run tenants updates domains payload_bytes =
    Femto_obs.Obs.set_enabled true;
    Femto_obs.Obs.set_tracing true;
    Femto_obs.Obs.reset ();
    let key = Femto_cose.Cose.make_key ~key_id:"cli" ~secret:"cli" in
    let uuid = "pipeline-0000-4000-8000-000000000001" in
    let devices =
      List.init tenants (fun i ->
          ( Printf.sprintf "tenant-%d" i,
            Femto_suit.Suit.create_device ~key
              ~install:(fun ~sequence:_ ~storage_uuid:_ _ -> Ok ())
              ~known_storage:(fun u -> String.equal u uuid)
              () ))
    in
    let pool = Femto_suit.Pipeline.create ~domains () in
    let t0 = Unix.gettimeofday () in
    for seq = 1 to updates do
      List.iter
        (fun (tenant, device) ->
          let payload =
            Printf.sprintf "%s update %d %s" tenant seq
              (String.make payload_bytes 'p')
          in
          let manifest =
            Femto_suit.Suit.make ~sequence:(Int64.of_int seq)
              [ Femto_suit.Suit.component_for ~storage_uuid:uuid payload ]
          in
          (* digest hint as the streaming CoAP path would hand it over *)
          let hint =
            {
              Femto_suit.Suit.streamed = Femto_crypto.Crypto.sha256 payload;
              bytes = String.length payload;
            }
          in
          Femto_suit.Pipeline.submit pool ~digests:[ (uuid, hint) ] ~tenant
            ~device
            ~envelope:(Femto_suit.Suit.sign manifest key)
            ~payloads:[ (uuid, payload) ] ())
        devices
    done;
    let results = Femto_suit.Pipeline.shutdown pool in
    let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    let accepted =
      List.length (List.filter (fun (_, r) -> Result.is_ok r) results)
    in
    Printf.printf
      "%d updates across %d tenants on %d domain(s): %d accepted, %d \
       rejected in %.1f ms\n"
      (List.length results) tenants domains accepted
      (List.length results - accepted)
      elapsed_ms;
    print_endline
      (Femto_obs.Jsonx.to_string_pretty (Femto_obs.Obs.metrics_json ()));
    if accepted = List.length results then 0 else 1
  in
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:
         "Drive the parallel multi-tenant update-verification pool and dump \
          the suit.pipeline.* metrics as JSON")
    Term.(const run $ tenants_arg $ updates_arg $ domains_arg $ size_arg)

(* --- compile: MiniScript -> eBPF --- *)

let compile_cmd =
  let entry_arg =
    Arg.(value & opt string "main" & info [ "entry" ] ~docv:"FN"
         ~doc:"Function to compile (parameters arrive in r1..r5).")
  in
  let run input entry output =
    let source = read_file input in
    match
      Femto_script.To_ebpf.compile_function
        ~helpers:(fun name -> List.assoc_opt name (helpers_table ()))
        source entry
    with
    | exception Femto_script.To_ebpf.Unsupported m ->
        Printf.eprintf "%s: %s
" input m;
        exit 1
    | exception Femto_script.Parser.Parse_error { line; message } ->
        Printf.eprintf "%s:%d: %s
" input line message;
        exit 1
    | program -> (
        match Femto_vm.Verifier.verify Femto_vm.Config.default program with
        | Error fault ->
            Printf.eprintf "internal: generated code rejected: %s
"
              (Femto_vm.Fault.to_string fault);
            exit 2
        | Ok _ ->
            write_file output
              (Bytes.to_string (Femto_ebpf.Program.to_bytes program));
            Printf.printf "%s: compiled '%s' to %d instructions (%d bytes) -> %s
"
              input entry
              (Femto_ebpf.Program.length program)
              (Femto_ebpf.Program.byte_size program)
              output;
            0)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Compile a MiniScript function to verified eBPF bytecode")
    Term.(const run $ input_arg $ entry_arg $ output_arg "out.bin")

(* --- compact / expand: the paper's Sec 11 variable-length encoding --- *)

let compact_cmd =
  let run input output =
    let program = load_program input in
    let stats = Femto_ebpf.Compact.measure program in
    write_file output (Femto_ebpf.Compact.compress program);
    Printf.printf "%d B fixed -> %d B compact (ratio %.2f) -> %s
"
      stats.Femto_ebpf.Compact.fixed_bytes stats.Femto_ebpf.Compact.compact_bytes
      stats.Femto_ebpf.Compact.ratio output;
    0
  in
  Cmd.v
    (Cmd.info "compact" ~doc:"Compress bytecode to the variable-length encoding")
    Term.(const run $ input_arg $ output_arg "out.fcz")

let expand_cmd =
  let run input output =
    match Femto_ebpf.Compact.decompress (read_file input) with
    | exception Femto_ebpf.Compact.Malformed m ->
        Printf.eprintf "%s: %s
" input m;
        exit 1
    | program ->
        write_file output (Bytes.to_string (Femto_ebpf.Program.to_bytes program));
        Printf.printf "%d instructions -> %s
"
          (Femto_ebpf.Program.length program)
          output;
        0
  in
  Cmd.v (Cmd.info "expand" ~doc:"Expand variable-length bytecode to fixed slots")
    Term.(const run $ input_arg $ output_arg "out.bin")

(* --- shell: an interactive simulated device on stdin --- *)

let shell_cmd =
  let run () =
    let kernel = Femto_rtos.Kernel.create () in
    let network = Femto_net.Network.create ~kernel () in
    let flash = Femto_flash.Flash.create ~page_size:256 ~pages:64 () in
    let hook = "demo0000-0000-4000-8000-000000000001" in
    let device =
      Femto_device.Device.boot
        ~identity:
          {
            Femto_device.Device.vendor_id = "fc-cli";
            class_id = "sim";
            update_key = Femto_cose.Cose.make_key ~key_id:"cli" ~secret:"cli";
          }
        ~hooks:
          [ Femto_device.Device.hook_spec ~uuid:hook ~name:"demo" ~ctx_size:16 () ]
        ~flash ~slot_count:4 ~network ~addr:1 ()
    in
    (* preinstall a demo container so the shell has something to show *)
    let payload =
      Bytes.to_string
        (Femto_ebpf.Program.to_bytes
           (Femto_ebpf.Asm.assemble
              ~helpers:Femto_core.Syscall.resolve_name
              "mov r1, 1
mov r2, r10
sub r2, 8
call bpf_fetch_global
               ldxdw r3, [r10-8]
add r3, 1
mov r1, 1
mov r2, r3
               call bpf_store_global
mov r0, r3
exit"))
    in
    let manifest =
      Femto_suit.Suit.make ~sequence:1L
        [ Femto_suit.Suit.component_for ~storage_uuid:hook payload ]
    in
    (match
       Femto_suit.Suit.process
         (Femto_device.Device.suit_processor device)
         ~envelope:
           (Femto_suit.Suit.sign manifest
              (Femto_cose.Cose.make_key ~key_id:"cli" ~secret:"cli"))
         ~payloads:[ (hook, payload) ]
     with
    | Ok _ -> ()
    | Error e -> prerr_endline (Femto_suit.Suit.error_to_string e));
    let shell = Femto_shell.Shell.create device in
    Printf.printf
      "fc simulated device shell (demo container on hook %s)
       type 'help'; ctrl-d exits
" hook;
    (try
       while true do
         print_string "fc> ";
         flush stdout;
         let line = input_line stdin in
         print_endline (Femto_shell.Shell.exec shell line)
       done
     with End_of_file -> print_newline ());
    0
  in
  Cmd.v
    (Cmd.info "shell" ~doc:"Interactive shell on a simulated device (reads stdin)")
    Term.(const run $ const ())

(* --- serve / get: the real-UDP CoAP edge --- *)

(* Boot the same demo device the shell uses (one hook, a signed demo
   counter container, SUIT endpoints) and return it with its hook uuid. *)
let boot_demo_device () =
  let kernel = Femto_rtos.Kernel.create () in
  let network = Femto_net.Network.create ~kernel () in
  let flash = Femto_flash.Flash.create ~page_size:256 ~pages:64 () in
  let hook = "demo0000-0000-4000-8000-000000000001" in
  let device =
    Femto_device.Device.boot
      ~identity:
        {
          Femto_device.Device.vendor_id = "fc-cli";
          class_id = "sim";
          update_key = Femto_cose.Cose.make_key ~key_id:"cli" ~secret:"cli";
        }
      ~hooks:
        [ Femto_device.Device.hook_spec ~uuid:hook ~name:"demo" ~ctx_size:16 () ]
      ~flash ~slot_count:4 ~network ~addr:1 ()
  in
  let payload =
    Bytes.to_string
      (Femto_ebpf.Program.to_bytes
         (Femto_ebpf.Asm.assemble
            ~helpers:Femto_core.Syscall.resolve_name
            "mov r1, 1\nmov r2, r10\nsub r2, 8\ncall bpf_fetch_global\n\
             ldxdw r3, [r10-8]\nadd r3, 1\nmov r1, 1\nmov r2, r3\n\
             call bpf_store_global\nmov r0, r3\nexit"))
  in
  let manifest =
    Femto_suit.Suit.make ~sequence:1L
      [ Femto_suit.Suit.component_for ~storage_uuid:hook payload ]
  in
  (match
     Femto_suit.Suit.process
       (Femto_device.Device.suit_processor device)
       ~envelope:
         (Femto_suit.Suit.sign manifest
            (Femto_cose.Cose.make_key ~key_id:"cli" ~secret:"cli"))
       ~payloads:[ (hook, payload) ]
   with
  | Ok _ -> ()
  | Error e -> prerr_endline (Femto_suit.Suit.error_to_string e));
  (device, hook)

let serve_cmd =
  let module Server = Femto_coap.Server in
  let module Transport = Femto_coap.Transport in
  let module Message = Femto_coap.Message in
  let port_arg =
    Arg.(value & opt int 5683
         & info [ "port" ] ~docv:"PORT"
             ~doc:"UDP port to bind (0 picks an ephemeral port).")
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind.")
  in
  let max_requests_arg =
    Arg.(value & opt int 0
         & info [ "max-requests" ] ~docv:"N"
             ~doc:"Exit after serving $(docv) requests (0 = run until \
                   SIGINT); for scripted smoke tests.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Print edge statistics as JSON on exit.")
  in
  let run port host max_requests json_stats =
    let device, hook = boot_demo_device () in
    let server = Femto_device.Device.server device in
    let engine = Femto_device.Device.engine device in
    let fire () =
      match Femto_core.Engine.trigger_by_uuid engine ~uuid:hook () with
      | Ok (report :: _) -> (
          match report.Femto_core.Engine.result with
          | Ok v -> Printf.sprintf "demo -> %Ld" v
          | Error fault -> "demo FAULT: " ^ Femto_vm.Fault.to_string fault)
      | Ok [] -> "demo: no container attached"
      | Error e -> Femto_core.Engine.attach_error_to_string e
    in
    Server.register server ~path:"/hello" (fun ~src:_ _ ->
        Server.respond ~payload:"hello from femto-containers" Message.code_content);
    (* the same hook-firing handler twice: the raw path and the cached
       edge in front of it, so cached-vs-uncached is an honest pair *)
    Server.register server ~path:"/demo/run" (fun ~src:_ _ ->
        Server.respond ~payload:(fire ()) Message.code_content);
    Server.register_cached ~max_age_s:60 server ~path:"/demo/cached"
      (fun ~src:_ _ -> Server.respond ~payload:(fire ()) Message.code_content);
    let transport = Transport.create ~host ~port () in
    Printf.printf "fc serve: CoAP on %s:%d (hook %s)\n%!" host
      (Transport.port transport) hook;
    Transport.spawn transport server;
    let stop = Atomic.make false in
    (try
       Sys.set_signal Sys.sigint
         (Sys.Signal_handle (fun _ -> Atomic.set stop true))
     with Invalid_argument _ -> ());
    while
      (not (Atomic.get stop))
      && (max_requests = 0 || Server.requests_served server < max_requests)
    do
      Unix.sleepf 0.05
    done;
    Transport.stop transport;
    let tstats = Transport.stats transport in
    let hits, misses = Server.cache_stats server in
    if json_stats then
      print_endline
        (Femto_obs.Jsonx.to_string_pretty
           (Femto_obs.Jsonx.Obj
              [
                ("port", Femto_obs.Jsonx.Int (Transport.port transport));
                ("requests_served",
                 Femto_obs.Jsonx.Int (Server.requests_served server));
                ("cache_hits", Femto_obs.Jsonx.Int hits);
                ("cache_misses", Femto_obs.Jsonx.Int misses);
                ("dedupe_evictions",
                 Femto_obs.Jsonx.Int (Server.dedupe_evictions server));
                ("rx_datagrams", Femto_obs.Jsonx.Int tstats.Transport.rx_datagrams);
                ("rx_bytes", Femto_obs.Jsonx.Int tstats.Transport.rx_bytes);
                ("tx_datagrams", Femto_obs.Jsonx.Int tstats.Transport.tx_datagrams);
                ("tx_bytes", Femto_obs.Jsonx.Int tstats.Transport.tx_bytes);
                ("peers", Femto_obs.Jsonx.Int (Transport.peer_count transport));
                ("suit_accepted",
                 Femto_obs.Jsonx.Int (Femto_device.Device.suit_accepted device));
              ]))
    else
      Printf.printf
        "served %d requests (%d cache hits, %d misses), %d peers, rx %d tx %d\n"
        (Server.requests_served server)
        hits misses
        (Transport.peer_count transport)
        tstats.Transport.rx_datagrams tstats.Transport.tx_datagrams;
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a simulated Femto-Containers device over a real UDP socket: \
          CoAP resources ($(b,/hello), $(b,/demo/run), cached \
          $(b,/demo/cached)), the SUIT upload/install endpoints, discovery \
          and container listing.")
    Term.(const run $ port_arg $ host_arg $ max_requests_arg $ json_arg)

let get_cmd =
  let module Transport = Femto_coap.Transport in
  let module Message = Femto_coap.Message in
  let path_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PATH" ~doc:"Resource path, e.g. /hello.")
  in
  let port_arg =
    Arg.(value & opt int 5683 & info [ "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"HOST" ~doc:"Server address.")
  in
  let timeout_arg =
    Arg.(value & opt float 2.0
         & info [ "timeout" ] ~docv:"S" ~doc:"Per-attempt ACK timeout.")
  in
  let observe_arg =
    Arg.(value & opt int 0
         & info [ "observe" ] ~docv:"N"
             ~doc:"Register as an observer and wait for $(docv) \
                   notifications before exiting.")
  in
  let run path host port timeout observe =
    let client =
      Transport.Client.create ~host ~ack_timeout_s:timeout ~port ()
    in
    let show prefix (m : Message.t) =
      Printf.printf "%s%s %s\n" prefix
        (Message.code_to_string m.Message.code)
        m.Message.payload
    in
    let status =
      if observe = 0 then
        match Transport.Client.get client ~path with
        | Ok response ->
            show "" response;
            if fst response.Message.code = 2 then 0 else 1
        | Error `Timeout ->
            prerr_endline "fc get: timeout";
            1
      else
        match Transport.Client.observe client ~path with
        | Error `Timeout ->
            prerr_endline "fc get: observe registration timed out";
            1
        | Ok response ->
            show "registered: " response;
            let rec wait n =
              if n = 0 then 0
              else
                match Transport.Client.recv client ~timeout_s:(timeout *. 10.) with
                | Some notification ->
                    show "notify: " notification;
                    wait (n - 1)
                | None ->
                    prerr_endline "fc get: notification timeout";
                    1
            in
            wait observe
    in
    Transport.Client.close client;
    status
  in
  Cmd.v
    (Cmd.info "get"
       ~doc:"One-shot CoAP GET (or observe) against a real UDP server")
    Term.(const run $ path_arg $ host_arg $ port_arg $ timeout_arg $ observe_arg)

(* --- fleet: sharded device-fleet campaign simulator --- *)

let fleet_cmd =
  let devices_arg =
    Arg.(value & opt int 10_000
         & info [ "devices" ] ~docv:"N" ~doc:"Number of simulated devices.")
  in
  let domains_arg =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"D"
             ~doc:"Compute domains (shards are distributed round-robin).")
  in
  let shards_arg =
    Arg.(value & opt int 64
         & info [ "shards" ] ~docv:"S"
             ~doc:"Shard count — the determinism unit, independent of \
                   $(b,--domains).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Scenario seed.")
  in
  let epoch_arg =
    Arg.(value & opt int 5_000
         & info [ "epoch-us" ] ~doc:"Virtual length of one wheel epoch.")
  in
  let telemetry_arg =
    Arg.(value & opt int 50_000
         & info [ "telemetry-us" ]
             ~doc:"Per-device telemetry period (0 disables).")
  in
  let wave_arg =
    Arg.(value & opt int 0
         & info [ "wave" ]
             ~doc:"Update pushes per epoch (0 = devices/100).")
  in
  let loss_arg =
    Arg.(value & opt int 0
         & info [ "loss-permille" ] ~doc:"Per-frame radio loss, 1/1000.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the campaign report as JSON.")
  in
  let run devices domains shards seed epoch_us telemetry_us wave loss json =
    if devices < 1 || domains < 1 || shards < 1 then begin
      prerr_endline "fc fleet: --devices, --domains and --shards must be >= 1";
      2
    end
    else begin
      let module Fleet = Femto_fleet.Fleet in
      let config =
        {
          Fleet.default_config with
          devices;
          domains;
          shards;
          seed;
          epoch_us;
          telemetry_us;
          wave;
          loss_permille = loss;
        }
      in
      let t0 = Unix.gettimeofday () in
      let fleet = Fleet.create config in
      let boot_s = Unix.gettimeofday () -. t0 in
      let r = Fleet.run_campaign fleet in
      let per_core =
        float_of_int r.Fleet.r_updates_ok
        /. (r.Fleet.r_wall_ns /. 1e9)
        /. float_of_int r.Fleet.r_domains
      in
      if json then
        print_endline
          (Femto_obs.Jsonx.to_string_pretty
             (Femto_obs.Jsonx.Obj
                [
                  ("devices", Femto_obs.Jsonx.Int r.Fleet.r_devices);
                  ("shards", Femto_obs.Jsonx.Int r.Fleet.r_shards);
                  ("domains", Femto_obs.Jsonx.Int r.Fleet.r_domains);
                  ("epochs", Femto_obs.Jsonx.Int r.Fleet.r_epochs);
                  ("virtual_ms", Femto_obs.Jsonx.Float r.Fleet.r_virtual_ms);
                  ("boot_s", Femto_obs.Jsonx.Float boot_s);
                  ("wall_ns", Femto_obs.Jsonx.Float r.Fleet.r_wall_ns);
                  ("updates_ok", Femto_obs.Jsonx.Int r.Fleet.r_updates_ok);
                  ("updates_rejected", Femto_obs.Jsonx.Int r.Fleet.r_updates_rejected);
                  ("updates_per_sec_per_core", Femto_obs.Jsonx.Float per_core);
                  ("telemetry_fires", Femto_obs.Jsonx.Int r.Fleet.r_telemetry_fires);
                  ("cross_shard", Femto_obs.Jsonx.Int r.Fleet.r_cross_shard);
                  ("timer_events", Femto_obs.Jsonx.Int r.Fleet.r_timer_events);
                  ("images_built", Femto_obs.Jsonx.Int r.Fleet.r_images_built);
                  ("image_hits", Femto_obs.Jsonx.Int r.Fleet.r_image_hits);
                  ("incomplete", Femto_obs.Jsonx.Int r.Fleet.r_incomplete);
                  ("half_installed", Femto_obs.Jsonx.Int r.Fleet.r_half_installed);
                  ("fingerprint", Femto_obs.Jsonx.String (Fleet.fingerprint fleet));
                ]))
      else begin
        Format.printf "%a@." Fleet.pp_report r;
        Printf.printf "boot: %.2f s, campaign: %.2f s, %.0f updates/s/core\n"
          boot_s
          (r.Fleet.r_wall_ns /. 1e9)
          per_core;
        Printf.printf "fingerprint: %s\n" (Fleet.fingerprint fleet)
      end;
      if r.Fleet.r_incomplete > 0 || r.Fleet.r_half_installed > 0 then 1 else 0
    end
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Simulate a device fleet (one engine, SUIT processor, CoW kv delta \
          and radio per device; one firmware image per shard) and run a \
          rolling signed-update campaign across an OCaml domain pool. \
          Deterministic for a given seed and shard count, whatever \
          $(b,--domains) is.")
    Term.(
      const run $ devices_arg $ domains_arg $ shards_arg $ seed_arg $ epoch_arg
      $ telemetry_arg $ wave_arg $ loss_arg $ json_arg)

(* --- bench --- *)

let bench_cmd =
  let corpus_cmd =
    let run layers only smoke json_file baseline_file =
      let layers =
        match layers with [] -> Femto_bench.Corpus.layer_names | l -> l
      in
      let bad =
        List.filter
          (fun l -> not (List.mem l Femto_bench.Corpus.layer_names))
          layers
      in
      if bad <> [] then begin
        Printf.eprintf "fc bench corpus: unknown layer(s): %s\n"
          (String.concat ", " bad);
        2
      end
      else
        Femto_bench.Corpus.run ~layers ?only ~smoke ~json_file ~baseline_file ()
    in
    let layers_arg =
      Arg.(
        value
        & opt_all (list string) []
        & info [ "layer" ]
            ~docv:"LAYERS"
            ~doc:
              "Corpus layers to run (comma-separated subset of l1,l2,l3; \
               repeatable). Default: all three.")
    in
    let only_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "only" ] ~docv:"SUBSTR"
            ~doc:"Only workloads whose name contains $(docv).")
    in
    let smoke_arg =
      Arg.(
        value & flag
        & info [ "smoke" ]
            ~doc:"Short CI batching instead of the full measurement.")
    in
    let json_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "json" ] ~docv:"FILE"
            ~doc:"Write the femto-bench/1 document to $(docv).")
    in
    let baseline_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "baseline" ] ~docv:"FILE"
            ~doc:
              "Gate per-workload speed ratios against the committed \
               femto-bench/1 baseline $(docv); non-zero exit on regression.")
    in
    Cmd.v
      (Cmd.info "corpus"
         ~doc:
           "Run the three-layer cross-runtime benchmark corpus (equivalence \
            gate, then wall-clock rows per runtime/tier)")
      Term.(
        const (fun layers only smoke json baseline ->
            run (List.concat layers) only smoke json baseline)
        $ layers_arg $ only_arg $ smoke_arg $ json_arg $ baseline_arg)
  in
  let default = Term.(ret (const (`Help (`Pager, Some "bench")))) in
  Cmd.group ~default
    (Cmd.info "bench" ~doc:"Benchmark drivers (see also bench/main.exe)")
    [ corpus_cmd ]

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "fc" ~version:"1.0.0"
      ~doc:"Femto-Containers toolchain (assemble, verify, run, SUIT-sign)"
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [ asm_cmd; disasm_cmd; verify_cmd; analyze_cmd; run_cmd; spawn_cmd;
            fleet_cmd; inspect_cmd; metrics_cmd; trace_cmd; pipeline_cmd;
            compile_cmd; compact_cmd; expand_cmd; suit_sign_cmd;
            suit_verify_cmd; shell_cmd; serve_cmd; get_cmd;
            bench_cmd ]))
