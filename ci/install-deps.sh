#!/bin/sh
# Single source of truth for the opam packages CI jobs need to build and
# test the repo.  Keep this list in sync with the dune `libraries`
# fields; the ocamlformat pin used by the fmt job lives in ci.yml (it is
# version-pinned and only that job wants it).
set -eu

opam install --yes \
  dune \
  alcotest \
  qcheck \
  qcheck-alcotest \
  bechamel \
  cmdliner \
  fmt \
  logs \
  astring
