(* dispatch/* bench family: the execution-tier ablation (decoded vs
   trimmed vs compiled vs compiled+fused vs ir) over the three hook
   workloads whose instruction mix the tiers were designed around.  Each
   case is one VM instance pinned to a tier, pre-checked against the
   workload's native reference so a semantics regression can never be
   reported as a performance number.  --dispatch-smoke is the per-push
   CI gate: the compiled tier must never fall behind the decoded
   interpreter, and the IR tier must never fall behind compiled. *)

module Analysis = Femto_analysis.Analysis
module Fletcher = Femto_workloads.Fletcher
module Dagsum = Femto_workloads.Dagsum
module Loop_sum = Femto_workloads.Loop_sum
module Hotcall = Femto_workloads.Hotcall
module Jsonx = Femto_obs.Jsonx
module Measure = Femto_eval.Measure

let data = Fletcher.input_360

type dispatch_case = {
  case_name : string;
  vm : Femto_vm.Vm.t;
  args : int64 array;
}

let dispatch_cases () =
  let mk name vm args expect =
    (match Femto_vm.Vm.run vm ~args with
    | Ok v when Int64.equal v expect -> ()
    | Ok v ->
        failwith
          (Printf.sprintf "%s: got %Ld, reference says %Ld" name v expect)
    | Error fault ->
        failwith (name ^ ": " ^ Femto_vm.Fault.to_string fault));
    { case_name = "dispatch/" ^ name; vm; args }
  in
  let vm_load ~tier ?fuse ?(helpers = Femto_vm.Helper.create ()) ~regions
      program =
    match Femto_vm.Vm.load ~tier ?fuse ~helpers ~regions program with
    | Ok vm -> vm
    | Error fault -> failwith (Femto_vm.Fault.to_string fault)
  in
  let analysis_load ~tier ?fuse ?(helpers = Femto_vm.Helper.create ())
      ~regions program =
    match Analysis.load ~tier ?fuse ~helpers ~regions program with
    | Ok vm -> vm
    | Error fault -> failwith (Femto_vm.Fault.to_string fault)
  in
  let dag = Dagsum.ebpf_program () in
  let dag_args = [| Dagsum.data_vaddr |] in
  let dag_expect = Dagsum.reference data in
  let loop = Loop_sum.ebpf_program () in
  let loop_args = [| Loop_sum.data_vaddr |] in
  let loop_expect = Loop_sum.reference data in
  let hot = Hotcall.ebpf_program () in
  [
    (* dagsum: straight-line DAG, analyzer proofs available *)
    mk "dagsum-decoded"
      (vm_load ~tier:Femto_vm.Vm.Decoded ~regions:(Dagsum.regions data) dag)
      dag_args dag_expect;
    mk "dagsum-trimmed"
      (analysis_load ~tier:Femto_vm.Vm.Trimmed ~regions:(Dagsum.regions data)
         dag)
      dag_args dag_expect;
    mk "dagsum-compiled"
      (analysis_load ~tier:Femto_vm.Vm.Compiled ~fuse:false
         ~regions:(Dagsum.regions data) dag)
      dag_args dag_expect;
    mk "dagsum-compiled-fused"
      (analysis_load ~tier:Femto_vm.Vm.Compiled ~regions:(Dagsum.regions data)
         dag)
      dag_args dag_expect;
    mk "dagsum-ir"
      (analysis_load ~tier:Femto_vm.Vm.Ir ~regions:(Dagsum.regions data) dag)
      dag_args dag_expect;
    (* loop_sum: back edge, no analyzer fast path — the compiled tier
       runs fully checked; fusion still collapses the loop body *)
    mk "loop-sum-decoded"
      (vm_load ~tier:Femto_vm.Vm.Decoded ~regions:(Loop_sum.regions data)
         loop)
      loop_args loop_expect;
    mk "loop-sum-compiled"
      (vm_load ~tier:Femto_vm.Vm.Compiled ~fuse:false
         ~regions:(Loop_sum.regions data) loop)
      loop_args loop_expect;
    mk "loop-sum-compiled-fused"
      (vm_load ~tier:Femto_vm.Vm.Compiled ~fuse:true
         ~regions:(Loop_sum.regions data) loop)
      loop_args loop_expect;
    mk "loop-sum-ir"
      (analysis_load ~tier:Femto_vm.Vm.Ir ~regions:(Loop_sum.regions data)
         loop)
      loop_args loop_expect;
    (* hotcall: helper-call-bound straight line *)
    mk "hotcall-decoded"
      (vm_load ~tier:Femto_vm.Vm.Decoded ~helpers:(Hotcall.helpers ())
         ~regions:[] hot)
      [||] Hotcall.reference;
    mk "hotcall-trimmed"
      (analysis_load ~tier:Femto_vm.Vm.Trimmed ~helpers:(Hotcall.helpers ())
         ~regions:[] hot)
      [||] Hotcall.reference;
    mk "hotcall-compiled"
      (analysis_load ~tier:Femto_vm.Vm.Compiled ~fuse:false
         ~helpers:(Hotcall.helpers ()) ~regions:[] hot)
      [||] Hotcall.reference;
    mk "hotcall-compiled-fused"
      (analysis_load ~tier:Femto_vm.Vm.Compiled ~helpers:(Hotcall.helpers ())
         ~regions:[] hot)
      [||] Hotcall.reference;
    mk "hotcall-ir"
      (analysis_load ~tier:Femto_vm.Vm.Ir ~helpers:(Hotcall.helpers ())
         ~regions:[] hot)
      [||] Hotcall.reference;
  ]

(* Micro-kernel batching: these cases run tens of ns to a few µs. *)
let wall_ns_per_run f = Measure.wall_ns ~warmup:200 ~iters:2000 ~trials:3 f

(* --ir-ablation: the IR pass pipeline with each stage toggled off in
   turn (plus the all/none ends), over the two kernels the ≥2x
   acceptance gate names.  Equivalence is implied — every configuration
   is differentially tested in test_ir.ml — so this only times. *)
let run_ir_ablation () =
  let module Passes = Femto_analysis.Passes in
  let configs =
    [
      ("all", Passes.all);
      ("no-canon", { Passes.all with Passes.canon = false });
      ("no-const-fold", { Passes.all with Passes.const_fold = false });
      ("no-dead-elim", { Passes.all with Passes.dead_elim = false });
      ("no-bounds-elim", { Passes.all with Passes.bounds_elim = false });
      ("none", Passes.none);
    ]
  in
  let kernels =
    [
      ( "dagsum",
        Dagsum.ebpf_program (),
        Dagsum.regions data,
        [| Dagsum.data_vaddr |],
        Dagsum.reference data );
      ( "loop_sum",
        Loop_sum.ebpf_program (),
        Loop_sum.regions data,
        [| Loop_sum.data_vaddr |],
        Loop_sum.reference data );
    ]
  in
  Printf.printf "\nIR pass ablation (wall-clock ns/run, best of 3)\n%s\n"
    (String.make 47 '-');
  List.iter
    (fun (kname, program, regions, args, expect) ->
      Printf.printf "  %s\n" kname;
      List.iter
        (fun (cname, passes) ->
          let vm =
            match
              Analysis.load ~tier:Femto_vm.Vm.Ir ~passes
                ~helpers:(Femto_vm.Helper.create ()) ~regions program
            with
            | Ok vm -> vm
            | Error fault -> failwith (Femto_vm.Fault.to_string fault)
          in
          (match Femto_vm.Vm.run vm ~args with
          | Ok v when Int64.equal v expect -> ()
          | Ok v -> failwith (Printf.sprintf "%s/%s: got %Ld" kname cname v)
          | Error fault ->
              failwith (Femto_vm.Fault.to_string fault));
          let ns =
            wall_ns_per_run (fun () -> ignore (Femto_vm.Vm.run vm ~args))
          in
          Printf.printf "    %-20s %12.1f\n" cname ns)
        configs)
    kernels;
  flush stdout

let dispatch_smoke_json rows speedups =
  Schema.doc
    [
      ( "dispatch",
        Jsonx.List
          (List.map
             (fun (name, ns) ->
               Jsonx.Obj
                 [ ("name", Jsonx.String name); ("ns_per_run", Jsonx.Float ns) ])
             rows) );
      ( "dispatch_speedups",
        Jsonx.Obj (List.map (fun (w, s) -> (w, Jsonx.Float s)) speedups) );
    ]

let run_dispatch_smoke ~json_file () =
  let cases = dispatch_cases () in
  let rows =
    List.map
      (fun { case_name; vm; args } ->
        ( case_name,
          wall_ns_per_run (fun () -> ignore (Femto_vm.Vm.run vm ~args)) ))
      cases
  in
  Printf.printf "\nDispatch smoke (wall-clock ns/run, best of 3)\n%s\n"
    (String.make 45 '-');
  List.iter (fun (name, ns) -> Printf.printf "  %-40s %12.1f\n" name ns) rows;
  let find name = List.assoc ("dispatch/" ^ name) rows in
  let speedup workload decoded compiled =
    let s = find decoded /. find compiled in
    Printf.printf "  %-40s %11.2fx\n" (workload ^ " compiled speedup") s;
    (workload, s)
  in
  let s_dag = speedup "dagsum" "dagsum-decoded" "dagsum-compiled-fused" in
  let s_loop = speedup "loop_sum" "loop-sum-decoded" "loop-sum-compiled-fused" in
  let s_hot = speedup "hotcall" "hotcall-decoded" "hotcall-compiled-fused" in
  (* IR-tier gates: over decoded (like the compiled gate) and over the
     fused compiled tier — the pass pipeline must pay for itself. *)
  let ir_speedup workload over ir =
    let s = find over /. find ir in
    Printf.printf "  %-40s %11.2fx\n" (workload ^ " speedup") s;
    (workload, s)
  in
  let s_dag_ir = ir_speedup "dagsum_ir" "dagsum-decoded" "dagsum-ir" in
  let s_loop_ir = ir_speedup "loop_sum_ir" "loop-sum-decoded" "loop-sum-ir" in
  let s_hot_ir = ir_speedup "hotcall_ir" "hotcall-decoded" "hotcall-ir" in
  let s_dag_irc =
    ir_speedup "dagsum_ir_vs_compiled" "dagsum-compiled-fused" "dagsum-ir"
  in
  let s_loop_irc =
    ir_speedup "loop_sum_ir_vs_compiled" "loop-sum-compiled-fused"
      "loop-sum-ir"
  in
  let speedups =
    [ s_dag; s_loop; s_hot; s_dag_ir; s_loop_ir; s_hot_ir; s_dag_irc;
      s_loop_irc ]
  in
  flush stdout;
  Option.iter (Schema.write_doc (dispatch_smoke_json rows speedups)) json_file;
  let slow = List.filter (fun (_, s) -> s < 1.0) speedups in
  if slow <> [] then begin
    List.iter
      (fun (w, s) ->
        Printf.eprintf
          "dispatch smoke: faster tier fell behind its baseline on %s \
           (%.2fx)\n"
          w s)
      slow;
    exit 1
  end
