(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (prints paper-style tables; see EXPERIMENTS.md for the
   paper-vs-measured record), then optionally runs the Bechamel
   microbenchmark suite with statistically-fitted ns/run estimates.

     dune exec bench/main.exe                      # all experiments
     dune exec bench/main.exe -- --quick           # skip the Bechamel suite
     dune exec bench/main.exe -- --bechamel-only
     dune exec bench/main.exe -- --bechamel-only --quota 0.05 --json b.json
     dune exec bench/main.exe -- --update-smoke --json u.json \
                                 --baseline bench/update-baseline.json

   --json FILE writes a machine-readable femto-bench/1 document (the
   Bechamel ns/run estimates plus the observability-metrics snapshot) —
   the artifact CI uploads to seed the bench trajectory.  Any workload
   failure exits non-zero with a one-line diagnosis instead of an
   uncaught exception, so CI failures are clean. *)

open Bechamel
module Fletcher = Femto_workloads.Fletcher
module Dagsum = Femto_workloads.Dagsum
module Loop_sum = Femto_workloads.Loop_sum
module Hotcall = Femto_workloads.Hotcall
module Analysis = Femto_analysis.Analysis
module Experiments = Femto_eval.Experiments
module Jsonx = Femto_obs.Jsonx
module Obs = Femto_obs.Obs

let data = Fletcher.input_360

(* --- dispatch ablation: decoded vs trimmed vs compiled tiers --- *)

(* Each case is one VM instance pinned to a tier, pre-checked against the
   workload's native reference so a semantics regression can never be
   reported as a performance number. *)
type dispatch_case = {
  case_name : string;
  vm : Femto_vm.Vm.t;
  args : int64 array;
}

let dispatch_cases () =
  let mk name vm args expect =
    (match Femto_vm.Vm.run vm ~args with
    | Ok v when Int64.equal v expect -> ()
    | Ok v ->
        failwith
          (Printf.sprintf "%s: got %Ld, reference says %Ld" name v expect)
    | Error fault ->
        failwith (name ^ ": " ^ Femto_vm.Fault.to_string fault));
    { case_name = "dispatch/" ^ name; vm; args }
  in
  let vm_load ~tier ?fuse ?(helpers = Femto_vm.Helper.create ()) ~regions
      program =
    match Femto_vm.Vm.load ~tier ?fuse ~helpers ~regions program with
    | Ok vm -> vm
    | Error fault -> failwith (Femto_vm.Fault.to_string fault)
  in
  let analysis_load ~tier ?fuse ?(helpers = Femto_vm.Helper.create ())
      ~regions program =
    match Analysis.load ~tier ?fuse ~helpers ~regions program with
    | Ok vm -> vm
    | Error fault -> failwith (Femto_vm.Fault.to_string fault)
  in
  let dag = Dagsum.ebpf_program () in
  let dag_args = [| Dagsum.data_vaddr |] in
  let dag_expect = Dagsum.reference data in
  let loop = Loop_sum.ebpf_program () in
  let loop_args = [| Loop_sum.data_vaddr |] in
  let loop_expect = Loop_sum.reference data in
  let hot = Hotcall.ebpf_program () in
  [
    (* dagsum: straight-line DAG, analyzer proofs available *)
    mk "dagsum-decoded"
      (vm_load ~tier:Femto_vm.Vm.Decoded ~regions:(Dagsum.regions data) dag)
      dag_args dag_expect;
    mk "dagsum-trimmed"
      (analysis_load ~tier:Femto_vm.Vm.Trimmed ~regions:(Dagsum.regions data)
         dag)
      dag_args dag_expect;
    mk "dagsum-compiled"
      (analysis_load ~tier:Femto_vm.Vm.Compiled ~fuse:false
         ~regions:(Dagsum.regions data) dag)
      dag_args dag_expect;
    mk "dagsum-compiled-fused"
      (analysis_load ~tier:Femto_vm.Vm.Compiled ~regions:(Dagsum.regions data)
         dag)
      dag_args dag_expect;
    (* loop_sum: back edge, no analyzer fast path — the compiled tier
       runs fully checked; fusion still collapses the loop body *)
    mk "loop-sum-decoded"
      (vm_load ~tier:Femto_vm.Vm.Decoded ~regions:(Loop_sum.regions data)
         loop)
      loop_args loop_expect;
    mk "loop-sum-compiled"
      (vm_load ~tier:Femto_vm.Vm.Compiled ~fuse:false
         ~regions:(Loop_sum.regions data) loop)
      loop_args loop_expect;
    mk "loop-sum-compiled-fused"
      (vm_load ~tier:Femto_vm.Vm.Compiled ~fuse:true
         ~regions:(Loop_sum.regions data) loop)
      loop_args loop_expect;
    (* hotcall: helper-call-bound straight line *)
    mk "hotcall-decoded"
      (vm_load ~tier:Femto_vm.Vm.Decoded ~helpers:(Hotcall.helpers ())
         ~regions:[] hot)
      [||] Hotcall.reference;
    mk "hotcall-trimmed"
      (analysis_load ~tier:Femto_vm.Vm.Trimmed ~helpers:(Hotcall.helpers ())
         ~regions:[] hot)
      [||] Hotcall.reference;
    mk "hotcall-compiled"
      (analysis_load ~tier:Femto_vm.Vm.Compiled ~fuse:false
         ~helpers:(Hotcall.helpers ()) ~regions:[] hot)
      [||] Hotcall.reference;
    mk "hotcall-compiled-fused"
      (analysis_load ~tier:Femto_vm.Vm.Compiled ~helpers:(Hotcall.helpers ())
         ~regions:[] hot)
      [||] Hotcall.reference;
  ]

let dispatch_tests () =
  List.map
    (fun { case_name; vm; args } ->
      Test.make ~name:case_name
        (Staged.stage (fun () -> ignore (Femto_vm.Vm.run vm ~args))))
    (dispatch_cases ())

(* One Bechamel test per table/figure workload: the statistically robust
   counterpart of the wall-clock medians used in the tables. *)
let bechamel_tests () =
  let ebpf =
    let program = Fletcher.ebpf_program () in
    let helpers = Femto_vm.Helper.create () in
    let regions = Fletcher.regions ~ctx_vaddr:0x2000_0000L data in
    match Femto_vm.Vm.load ~helpers ~regions program with
    | Ok vm -> vm
    | Error fault -> failwith (Femto_vm.Fault.to_string fault)
  in
  let certfc =
    let program = Fletcher.ebpf_program () in
    let helpers = Femto_vm.Helper.create () in
    let regions = Fletcher.regions ~ctx_vaddr:0x2000_0000L data in
    match Femto_certfc.Certfc.load ~helpers ~regions program with
    | Ok vm -> vm
    | Error fault -> failwith (Femto_vm.Fault.to_string fault)
  in
  let dag_checked, dag_trimmed =
    (* Same unrolled DAG program twice: once on the fully checked
       interpreter, once through the static analyzer (which must grant
       the trimmed fast path — asserted below, along with agreement on
       the native reference result). *)
    let program = Dagsum.ebpf_program () in
    let regions () = Dagsum.regions data in
    let checked =
      match Femto_vm.Vm.load ~helpers:(Femto_vm.Helper.create ()) ~regions:(regions ()) program with
      | Ok vm -> vm
      | Error fault -> failwith (Femto_vm.Fault.to_string fault)
    in
    let trimmed =
      match
        Femto_analysis.Analysis.load ~helpers:(Femto_vm.Helper.create ())
          ~regions:(regions ()) program
      with
      | Ok vm -> vm
      | Error fault -> failwith (Femto_vm.Fault.to_string fault)
    in
    if not (Femto_vm.Vm.fastpath_active trimmed) then
      failwith "dagsum: analyzer did not grant the fast path";
    let expect = Ok (Dagsum.reference data) in
    if Femto_vm.Vm.run checked ~args:[| Dagsum.data_vaddr |] <> expect then
      failwith "dagsum: checked interpreter disagrees with native reference";
    if Femto_vm.Vm.run trimmed ~args:[| Dagsum.data_vaddr |] <> expect then
      failwith "dagsum: trimmed interpreter disagrees with native reference";
    (checked, trimmed)
  in
  let wasm = Femto_wasm_mini.Fast.of_module Femto_wasm_mini.Samples.fletcher32_module in
  let jsish = Femto_script.Eval_tree.load Femto_script.Samples.fletcher32_source in
  let pyish = Femto_script.Stack_vm.load Femto_script.Samples.fletcher32_source in
  let script_args = Femto_script.Samples.fletcher32_args data in
  Test.make_grouped ~name:"femto-containers"
    ([
      (* Table 2 row: native baseline *)
      Test.make ~name:"table2/native-fletcher32"
        (Staged.stage (fun () -> ignore (Fletcher.checksum data)));
      (* Table 2 / Figure 9 row: rBPF VM *)
      Test.make ~name:"table2/rbpf-fletcher32"
        (Staged.stage (fun () -> ignore (Femto_vm.Vm.run ebpf ~args:[| 0x2000_0000L |])));
      (* Figure 8 / Table 3 row: CertFC *)
      Test.make ~name:"fig8/certfc-fletcher32"
        (Staged.stage (fun () ->
             ignore (Femto_certfc.Certfc.run certfc ~args:[| 0x2000_0000L |])));
      (* Static-analysis dividend: identical DAG program, budget-checked
         loop vs the analyzer-trimmed loop. *)
      Test.make ~name:"analysis/dagsum-checked"
        (Staged.stage (fun () ->
             ignore (Femto_vm.Vm.run dag_checked ~args:[| Dagsum.data_vaddr |])));
      Test.make ~name:"analysis/dagsum-trimmed"
        (Staged.stage (fun () ->
             ignore (Femto_vm.Vm.run dag_trimmed ~args:[| Dagsum.data_vaddr |])));
      (* Table 1/2 row: WASM *)
      Test.make ~name:"table2/wasm-fletcher32"
        (Staged.stage (fun () ->
             ignore (Femto_wasm_mini.Fast.run_fletcher32 wasm data)));
      (* Table 1/2 rows: script profiles *)
      Test.make ~name:"table2/jsish-fletcher32"
        (Staged.stage (fun () ->
             ignore (Femto_script.Eval_tree.call jsish "fletcher32" script_args)));
      Test.make ~name:"table2/pyish-fletcher32"
        (Staged.stage (fun () ->
             ignore (Femto_script.Stack_vm.call pyish "fletcher32" script_args)));
      (* Table 2 column: cold starts *)
      Test.make ~name:"table2/rbpf-cold-start"
        (Staged.stage
           (let program = Fletcher.ebpf_program () in
            let helpers = Femto_vm.Helper.create () in
            let regions = Fletcher.regions ~ctx_vaddr:0x2000_0000L data in
            fun () -> ignore (Femto_vm.Vm.load ~helpers ~regions program)));
      Test.make ~name:"table2/pyish-cold-start"
        (Staged.stage (fun () ->
             ignore (Femto_script.Stack_vm.load Femto_script.Samples.fletcher32_source)));
      (* Table 4 workload: engine trigger with the thread-counter app *)
      Test.make ~name:"table4/hook-with-app"
        (Staged.stage
           (let fixture = Femto_eval.Setup.make_fixture () in
            let _container, trigger =
              Femto_eval.Setup.thread_counter_container fixture
            in
            fun () -> ignore (trigger ())));
    ]
    @ dispatch_tests ())

(* Run the suite and return (name, ns/run OLS estimate) rows. *)
let run_bechamel ~quota () =
  let tests = bechamel_tests () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 10) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  let rows = List.sort compare rows in
  Printf.printf "\nBechamel microbenchmarks (ns/run, OLS fit)\n%s\n"
    (String.make 44 '-');
  let estimates =
    List.map
      (fun (name, result) ->
        match Analyze.OLS.estimates result with
        | Some [ est ] ->
            Printf.printf "  %-40s %12.1f\n" name est;
            (name, Some est)
        | _ ->
            Printf.printf "  %-40s (no estimate)\n" name;
            (name, None))
      rows
  in
  flush stdout;
  estimates

(* --- machine-readable output (femto-bench/1) --- *)

let iso8601_utc seconds =
  let tm = Unix.gmtime seconds in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let bench_json ~quota estimates =
  Jsonx.Obj
    [
      ("schema", Jsonx.String "femto-bench/1");
      ("generated_at", Jsonx.String (iso8601_utc (Unix.time ())));
      ("ocaml_version", Jsonx.String Sys.ocaml_version);
      ("word_size", Jsonx.Int Sys.word_size);
      ("quota_s", Jsonx.Float quota);
      ( "bechamel",
        Jsonx.List
          (List.map
             (fun (name, estimate) ->
               Jsonx.Obj
                 [
                   ("name", Jsonx.String name);
                   ( "ns_per_run",
                     match estimate with
                     | Some ns -> Jsonx.Float ns
                     | None -> Jsonx.Null );
                 ])
             estimates) );
      (* process-wide observability snapshot: how much VM/engine work the
         bench run itself performed — free regression context *)
      ("metrics", Obs.metrics_json ());
    ]

let write_doc doc path =
  let oc = open_out path in
  output_string oc (Jsonx.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

let write_json ~quota estimates path = write_doc (bench_json ~quota estimates) path

(* --- dispatch smoke: the per-push CI gate --- *)

(* Wall-clock ns/run, best of 3 trials: crude next to Bechamel's OLS fit
   but fast enough to run on every push, and monotonic enough to catch
   "the compiled tier got slower than the decoded interpreter". *)
let wall_ns_per_run f =
  let iters = 2000 and trials = 3 in
  for _ = 1 to 200 do
    f ()
  done;
  let best = ref infinity in
  for _ = 1 to trials do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best *. 1e9 /. float_of_int iters

let dispatch_smoke_json rows speedups =
  Jsonx.Obj
    [
      ("schema", Jsonx.String "femto-bench/1");
      ("generated_at", Jsonx.String (iso8601_utc (Unix.time ())));
      ("ocaml_version", Jsonx.String Sys.ocaml_version);
      ("word_size", Jsonx.Int Sys.word_size);
      ( "dispatch",
        Jsonx.List
          (List.map
             (fun (name, ns) ->
               Jsonx.Obj
                 [ ("name", Jsonx.String name); ("ns_per_run", Jsonx.Float ns) ])
             rows) );
      ( "dispatch_speedups",
        Jsonx.Obj
          (List.map (fun (w, s) -> (w, Jsonx.Float s)) speedups) );
      ("metrics", Obs.metrics_json ());
    ]

let run_dispatch_smoke ~json_file () =
  let cases = dispatch_cases () in
  let rows =
    List.map
      (fun { case_name; vm; args } ->
        ( case_name,
          wall_ns_per_run (fun () -> ignore (Femto_vm.Vm.run vm ~args)) ))
      cases
  in
  Printf.printf "\nDispatch smoke (wall-clock ns/run, best of 3)\n%s\n"
    (String.make 45 '-');
  List.iter (fun (name, ns) -> Printf.printf "  %-40s %12.1f\n" name ns) rows;
  let find name = List.assoc ("dispatch/" ^ name) rows in
  let speedup workload decoded compiled =
    let s = find decoded /. find compiled in
    Printf.printf "  %-40s %11.2fx\n" (workload ^ " compiled speedup") s;
    (workload, s)
  in
  let s_dag = speedup "dagsum" "dagsum-decoded" "dagsum-compiled-fused" in
  let s_loop = speedup "loop_sum" "loop-sum-decoded" "loop-sum-compiled-fused" in
  let s_hot = speedup "hotcall" "hotcall-decoded" "hotcall-compiled-fused" in
  let speedups = [ s_dag; s_loop; s_hot ] in
  flush stdout;
  Option.iter (write_doc (dispatch_smoke_json rows speedups)) json_file;
  let slow = List.filter (fun (_, s) -> s < 1.0) speedups in
  if slow <> [] then begin
    List.iter
      (fun (w, s) ->
        Printf.eprintf
          "dispatch smoke: compiled tier slower than decoded on %s (%.2fx)\n" w
          s)
      slow;
    exit 1
  end

(* --- entry point --- *)

let opt_value args flag =
  let rec find = function
    | a :: value :: _ when String.equal a flag -> Some value
    | _ :: rest -> find rest
    | [] -> None
  in
  find args

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let bechamel_only = List.mem "--bechamel-only" args in
  let dispatch_smoke = List.mem "--dispatch-smoke" args in
  let update_smoke = List.mem "--update-smoke" args in
  let json_file = opt_value args "--json" in
  let baseline_file = opt_value args "--baseline" in
  let quota =
    match opt_value args "--quota" with
    | None -> 0.25
    | Some raw -> (
        match float_of_string_opt raw with
        | Some q when q > 0.0 -> q
        | Some _ | None ->
            Printf.eprintf "bench: invalid --quota %S\n" raw;
            exit 2)
  in
  match
    if update_smoke then Update_bench.run_smoke ~json_file ~baseline_file ()
    else if dispatch_smoke then run_dispatch_smoke ~json_file ()
    else begin
      if not bechamel_only then Experiments.run_all ();
      if not quick then begin
        let estimates = run_bechamel ~quota () in
        Option.iter (write_json ~quota estimates) json_file
      end
    end
  with
  | () -> exit 0
  | exception e ->
      (* a workload failure (wrong checksum, verifier rejection, ...)
         must fail the CI job cleanly, not abort with a raw backtrace *)
      Printf.eprintf "bench: workload failure: %s\n" (Printexc.to_string e);
      exit 1
