(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation (prints paper-style tables; see EXPERIMENTS.md
   for the paper-vs-measured record), then optionally runs the Bechamel
   microbenchmark suite with statistically-fitted ns/run estimates.  The
   per-push CI smokes (dispatch, update, corpus) live in the femto_bench
   library and are selected by flag:

     dune exec bench/main.exe                      # all experiments
     dune exec bench/main.exe -- --quick           # skip the Bechamel suite
     dune exec bench/main.exe -- --bechamel-only --quota 0.05 --json b.json
     dune exec bench/main.exe -- --dispatch-smoke --json d.json
     dune exec bench/main.exe -- --update-smoke --json u.json \
                                 --baseline bench/update-baseline.json
     dune exec bench/main.exe -- --spawn-smoke --json s.json \
                                 --baseline bench/spawn-baseline.json
     dune exec bench/main.exe -- --fleet-smoke --json f.json \
                                 --baseline bench/fleet-baseline.json
     dune exec bench/main.exe -- --edge-smoke --json e.json \
                                 --baseline bench/edge-baseline.json
     dune exec bench/main.exe -- --corpus --json corpus.json
     dune exec bench/main.exe -- --corpus-smoke --json corpus.json \
                                 --baseline bench/corpus-baseline.json
     dune exec bench/main.exe -- --corpus-smoke --layer l1,l2 --only fib

   --json FILE writes a machine-readable femto-bench/1 document — the
   artifact CI uploads to extend the bench trajectory (BENCH_*.json).
   Any workload failure exits non-zero with a one-line diagnosis instead
   of an uncaught exception, so CI failures are clean. *)

open Bechamel
module Fletcher = Femto_workloads.Fletcher
module Dagsum = Femto_workloads.Dagsum
module Analysis = Femto_analysis.Analysis
module Experiments = Femto_eval.Experiments
module Jsonx = Femto_obs.Jsonx
module Schema = Femto_bench.Schema
module Dispatch_bench = Femto_bench.Dispatch_bench
module Update_bench = Femto_bench.Update_bench
module Spawn_bench = Femto_bench.Spawn_bench
module Corpus = Femto_bench.Corpus

let data = Fletcher.input_360

let dispatch_tests () =
  List.map
    (fun { Dispatch_bench.case_name; vm; args } ->
      Test.make ~name:case_name
        (Staged.stage (fun () -> ignore (Femto_vm.Vm.run vm ~args))))
    (Dispatch_bench.dispatch_cases ())

(* One Bechamel test per table/figure workload: the statistically robust
   counterpart of the wall-clock medians used in the tables. *)
let bechamel_tests () =
  let ebpf =
    let program = Fletcher.ebpf_program () in
    let helpers = Femto_vm.Helper.create () in
    let regions = Fletcher.regions ~ctx_vaddr:0x2000_0000L data in
    match Femto_vm.Vm.load ~helpers ~regions program with
    | Ok vm -> vm
    | Error fault -> failwith (Femto_vm.Fault.to_string fault)
  in
  let certfc =
    let program = Fletcher.ebpf_program () in
    let helpers = Femto_vm.Helper.create () in
    let regions = Fletcher.regions ~ctx_vaddr:0x2000_0000L data in
    match Femto_certfc.Certfc.load ~helpers ~regions program with
    | Ok vm -> vm
    | Error fault -> failwith (Femto_vm.Fault.to_string fault)
  in
  let dag_checked, dag_trimmed =
    (* Same unrolled DAG program twice: once on the fully checked
       interpreter, once through the static analyzer (which must grant
       the trimmed fast path — asserted below, along with agreement on
       the native reference result). *)
    let program = Dagsum.ebpf_program () in
    let regions () = Dagsum.regions data in
    let checked =
      match
        Femto_vm.Vm.load
          ~helpers:(Femto_vm.Helper.create ())
          ~regions:(regions ()) program
      with
      | Ok vm -> vm
      | Error fault -> failwith (Femto_vm.Fault.to_string fault)
    in
    let trimmed =
      match
        Femto_analysis.Analysis.load
          ~helpers:(Femto_vm.Helper.create ())
          ~regions:(regions ()) program
      with
      | Ok vm -> vm
      | Error fault -> failwith (Femto_vm.Fault.to_string fault)
    in
    if not (Femto_vm.Vm.fastpath_active trimmed) then
      failwith "dagsum: analyzer did not grant the fast path";
    let expect = Ok (Dagsum.reference data) in
    if Femto_vm.Vm.run checked ~args:[| Dagsum.data_vaddr |] <> expect then
      failwith "dagsum: checked interpreter disagrees with native reference";
    if Femto_vm.Vm.run trimmed ~args:[| Dagsum.data_vaddr |] <> expect then
      failwith "dagsum: trimmed interpreter disagrees with native reference";
    (checked, trimmed)
  in
  let wasm =
    Femto_wasm_mini.Fast.of_module Femto_wasm_mini.Samples.fletcher32_module
  in
  let jsish =
    Femto_script.Eval_tree.load Femto_script.Samples.fletcher32_source
  in
  let pyish =
    Femto_script.Stack_vm.load Femto_script.Samples.fletcher32_source
  in
  let script_args = Femto_script.Samples.fletcher32_args data in
  Test.make_grouped ~name:"femto-containers"
    ([
       (* Table 2 row: native baseline *)
       Test.make ~name:"table2/native-fletcher32"
         (Staged.stage (fun () -> ignore (Fletcher.checksum data)));
       (* Table 2 / Figure 9 row: rBPF VM *)
       Test.make ~name:"table2/rbpf-fletcher32"
         (Staged.stage (fun () ->
              ignore (Femto_vm.Vm.run ebpf ~args:[| 0x2000_0000L |])));
       (* Figure 8 / Table 3 row: CertFC *)
       Test.make ~name:"fig8/certfc-fletcher32"
         (Staged.stage (fun () ->
              ignore (Femto_certfc.Certfc.run certfc ~args:[| 0x2000_0000L |])));
       (* Static-analysis dividend: identical DAG program, budget-checked
          loop vs the analyzer-trimmed loop. *)
       Test.make ~name:"analysis/dagsum-checked"
         (Staged.stage (fun () ->
              ignore (Femto_vm.Vm.run dag_checked ~args:[| Dagsum.data_vaddr |])));
       Test.make ~name:"analysis/dagsum-trimmed"
         (Staged.stage (fun () ->
              ignore (Femto_vm.Vm.run dag_trimmed ~args:[| Dagsum.data_vaddr |])));
       (* Table 1/2 row: WASM *)
       Test.make ~name:"table2/wasm-fletcher32"
         (Staged.stage (fun () ->
              ignore (Femto_wasm_mini.Fast.run_fletcher32 wasm data)));
       (* Table 1/2 rows: script profiles *)
       Test.make ~name:"table2/jsish-fletcher32"
         (Staged.stage (fun () ->
              ignore (Femto_script.Eval_tree.call jsish "fletcher32" script_args)));
       Test.make ~name:"table2/pyish-fletcher32"
         (Staged.stage (fun () ->
              ignore (Femto_script.Stack_vm.call pyish "fletcher32" script_args)));
       (* Table 2 column: cold starts *)
       Test.make ~name:"table2/rbpf-cold-start"
         (Staged.stage
            (let program = Fletcher.ebpf_program () in
             let helpers = Femto_vm.Helper.create () in
             let regions = Fletcher.regions ~ctx_vaddr:0x2000_0000L data in
             fun () -> ignore (Femto_vm.Vm.load ~helpers ~regions program)));
       Test.make ~name:"table2/pyish-cold-start"
         (Staged.stage (fun () ->
              ignore
                (Femto_script.Stack_vm.load
                   Femto_script.Samples.fletcher32_source)));
       (* Table 4 workload: engine trigger with the thread-counter app *)
       Test.make ~name:"table4/hook-with-app"
         (Staged.stage
            (let fixture = Femto_eval.Setup.make_fixture () in
             let _container, trigger =
               Femto_eval.Setup.thread_counter_container fixture
             in
             fun () -> ignore (trigger ())));
     ]
    @ dispatch_tests ())

(* Run the suite and return (name, ns/run OLS estimate) rows. *)
let run_bechamel ~quota () =
  let tests = bechamel_tests () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
  in
  let rows = List.sort compare rows in
  Printf.printf "\nBechamel microbenchmarks (ns/run, OLS fit)\n%s\n"
    (String.make 44 '-');
  let estimates =
    List.map
      (fun (name, result) ->
        match Analyze.OLS.estimates result with
        | Some [ est ] ->
            Printf.printf "  %-40s %12.1f\n" name est;
            (name, Some est)
        | _ ->
            Printf.printf "  %-40s (no estimate)\n" name;
            (name, None))
      rows
  in
  flush stdout;
  estimates

let bench_json ~quota estimates =
  Schema.doc
    [
      ("quota_s", Jsonx.Float quota);
      ( "bechamel",
        Jsonx.List
          (List.map
             (fun (name, estimate) ->
               Jsonx.Obj
                 [
                   ("name", Jsonx.String name);
                   ( "ns_per_run",
                     match estimate with
                     | Some ns -> Jsonx.Float ns
                     | None -> Jsonx.Null );
                 ])
             estimates) );
    ]

let write_json ~quota estimates path =
  Schema.write_doc (bench_json ~quota estimates) path

(* --- entry point --- *)

let opt_value args flag =
  let rec find = function
    | a :: value :: _ when String.equal a flag -> Some value
    | _ :: rest -> find rest
    | [] -> None
  in
  find args

let parse_layers raw =
  let layers = String.split_on_char ',' raw in
  let bad = List.filter (fun l -> not (List.mem l Corpus.layer_names)) layers in
  if bad <> [] then begin
    Printf.eprintf "bench: unknown corpus layer(s): %s\n"
      (String.concat ", " bad);
    exit 2
  end;
  layers

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let bechamel_only = List.mem "--bechamel-only" args in
  let dispatch_smoke = List.mem "--dispatch-smoke" args in
  let ir_ablation = List.mem "--ir-ablation" args in
  let update_smoke = List.mem "--update-smoke" args in
  let spawn_smoke = List.mem "--spawn-smoke" args in
  let fleet_smoke = List.mem "--fleet-smoke" args in
  let edge_smoke = List.mem "--edge-smoke" args in
  let corpus = List.mem "--corpus" args in
  let corpus_smoke = List.mem "--corpus-smoke" args in
  let json_file = opt_value args "--json" in
  let baseline_file = opt_value args "--baseline" in
  let layers =
    match opt_value args "--layer" with
    | None -> Corpus.layer_names
    | Some raw -> parse_layers raw
  in
  let only = opt_value args "--only" in
  let quota =
    match opt_value args "--quota" with
    | None -> 0.25
    | Some raw -> (
        match float_of_string_opt raw with
        | Some q when q > 0.0 -> q
        | Some _ | None ->
            Printf.eprintf "bench: invalid --quota %S\n" raw;
            exit 2)
  in
  match
    if corpus || corpus_smoke then
      exit
        (Corpus.run ~layers ?only ~smoke:corpus_smoke ~json_file ~baseline_file
           ())
    else if update_smoke then Update_bench.run_smoke ~json_file ~baseline_file ()
    else if spawn_smoke then
      Spawn_bench.run_spawn_smoke ~json_file ~baseline_file ()
    else if fleet_smoke then
      Femto_bench.Fleet_bench.run_fleet_smoke ~json_file ~baseline_file ()
    else if edge_smoke then
      exit (Femto_bench.Edge_bench.run_edge_smoke ~json_file ~baseline_file ())
    else if dispatch_smoke then Dispatch_bench.run_dispatch_smoke ~json_file ()
    else if ir_ablation then Dispatch_bench.run_ir_ablation ()
    else begin
      if not bechamel_only then Experiments.run_all ();
      if not quick then begin
        let estimates = run_bechamel ~quota () in
        Option.iter (write_json ~quota estimates) json_file
      end
    end
  with
  | () -> exit 0
  | exception e ->
      (* a workload failure (wrong checksum, verifier rejection, ...)
         must fail the CI job cleanly, not abort with a raw backtrace *)
      Printf.eprintf "bench: workload failure: %s\n" (Printexc.to_string e);
      exit 1
