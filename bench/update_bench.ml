(* update/* bench family: the secure-update pipeline ablation (PR 5).

   Four workloads, each measured against the reconstructed pre-PR-5
   sequential path in {!Legacy_path}:

     update/parse_manifest      COSE verify + manifest decode (zero-copy
                                views vs tree decode + re-encoded MAC)
     update/digest_32k          payload digest, streamed in 1 KiB chunks
                                (untagged-int SHA-256 vs boxed Int32)
     update/e2e_single          one full update: verify, decode, digest
                                gate, flash persist (streaming slot vs
                                store-time re-hash)
     update/concurrent_4tenant  4 tenants x 4 updates through the domain
                                pool vs the legacy sequential loop
                                (aggregate updates/s)

   Every fast-path result is checked against the legacy path before
   timing starts, so a semantics break can never be reported as a
   speedup.  --update-smoke runs wall-clock trials with femto-bench/1
   JSON output and hard speedup gates. *)

module Cbor = Femto_cbor.Cbor
module Slice = Femto_cbor.Slice
module Cose = Femto_cose.Cose
module Crypto = Femto_crypto.Crypto
module Sha256 = Femto_crypto.Sha256
module Suit = Femto_suit.Suit
module Pipeline = Femto_suit.Pipeline
module Flash = Femto_flash.Flash
module Slots = Femto_flash.Slots
module Jsonx = Femto_obs.Jsonx

let hook_uuid = "bench000-0000-4000-8000-000000000001"
let vendor = "bench-vendor"
let class_id = "bench-class"
let key = Cose.make_key ~key_id:"bench-key" ~secret:"bench-update-secret"
let chunk_size = 1024

(* Deterministic pseudo-random payload. *)
let make_payload n =
  String.init n (fun i -> Char.chr ((i * 131) lxor (i lsr 3) land 0xff))

let payload_32k = make_payload (32 * 1024)

let envelope_for ~sequence payload =
  Suit.sign
    (Suit.make ~vendor_id:vendor ~class_id ~sequence
       [ Suit.component_for ~storage_uuid:hook_uuid payload ])
    key

let ok_or ~what = function
  | Ok v -> v
  | Error e -> failwith (what ^ ": " ^ Suit.error_to_string e)

let streamed_digest payload =
  let ctx = Sha256.init () in
  let len = String.length payload in
  let pos = ref 0 in
  while !pos < len do
    let n = min chunk_size (len - !pos) in
    Sha256.update_substring ctx payload !pos n;
    pos := !pos + n
  done;
  Sha256.finalize ctx

(* --- the two sequential paths under test --- *)

(* Pre-PR: tree COSE verify, tree manifest decode, one-shot digest gate,
   then the store-time re-hash — the payload is hashed twice, with the
   boxed-Int32 SHA-256. *)
let legacy_parse envelope =
  match Legacy_path.cose_verify key envelope with
  | Error e -> Error (Suit.Signature e)
  | Ok payload -> Suit.decode_tree payload

let legacy_gates (manifest : Suit.t) ~sequence payload =
  if Int64.compare manifest.Suit.sequence sequence <= 0 then
    Error
      (Suit.Rollback { manifest = manifest.Suit.sequence; device = sequence })
  else if manifest.Suit.vendor_id <> Some vendor then
    Error (Suit.Wrong_vendor { manifest = "?"; device = vendor })
  else
    match manifest.Suit.components with
    | [ c ] ->
        if
          String.length payload = c.Suit.size
          && Crypto.constant_time_equal (Legacy_path.sha256 payload)
               c.Suit.digest
        then Ok manifest
        else Error (Suit.Digest_mismatch c.Suit.storage_uuid)
    | _ -> Error (Suit.Malformed "expected one component")

let legacy_process envelope ~sequence payload =
  match legacy_parse envelope with
  | Error e -> Error e
  | Ok manifest -> legacy_gates manifest ~sequence payload

let slice_parse envelope =
  match Cose.verify_slice key (Slice.of_string envelope) with
  | Error e -> Error (Suit.Signature e)
  | Ok payload -> Suit.decode_slice payload

(* --- fixtures --- *)

type e2e_fixture = {
  envelope : string;
  payload : string;
  slots : Slots.t;
  device : Suit.device;
  (* the new path's in-flight upload: stream + its streaming digest *)
  stream : (Slots.stream * string) option ref;
}

let make_e2e_fixture () =
  let payload = payload_32k in
  let envelope = envelope_for ~sequence:1L payload in
  let flash = Flash.create ~page_size:256 ~pages:512 () in
  let slots = Slots.create ~flash ~count:2 in
  let stream = ref None in
  let device =
    Suit.create_device ~vendor_id:vendor ~class_id ~key
      ~install:(fun ~sequence ~storage_uuid _payload ->
        match !stream with
        | Some (s, digest) ->
            stream := None;
            Result.map_error Slots.error_to_string
              (Slots.finish_stream s ~sequence ~hook_uuid:storage_uuid ~digest)
        | None -> Error "no stream")
      ~known_storage:(fun uuid -> String.equal uuid hook_uuid)
      ()
  in
  { envelope; payload; slots; device; stream }

(* Pre-PR end-to-end: parse + gates + whole-slot store with its own
   payload re-hash. *)
let legacy_e2e f () =
  let manifest =
    ok_or ~what:"legacy e2e" (legacy_process f.envelope ~sequence:0L f.payload)
  in
  let digest = Legacy_path.sha256 f.payload in
  match
    Slots.store ~digest f.slots ~slot:0
      {
        Slots.sequence = manifest.Suit.sequence;
        hook_uuid;
        payload = f.payload;
      }
  with
  | Ok () -> ()
  | Error e -> failwith (Slots.error_to_string e)

let ok_or_slot = function
  | Ok v -> v
  | Error e -> failwith (Slots.error_to_string e)

(* New end-to-end: the upload streams chunk-by-chunk into flash with the
   incremental digest running alongside (both costs included here, as
   they would be paid during the CoAP transfer), then the verification
   pipeline runs with the digest hint and install only programs the slot
   header. *)
let streaming_e2e f () =
  f.device.Suit.sequence <- 0L;
  let s = ok_or_slot (Slots.begin_stream f.slots ~slot:0) in
  let ctx = Sha256.init () in
  let len = String.length f.payload in
  let pos = ref 0 in
  while !pos < len do
    let n = min chunk_size (len - !pos) in
    Sha256.update_substring ctx f.payload !pos n;
    ok_or_slot (Slots.stream_write s (String.sub f.payload !pos n));
    pos := !pos + n
  done;
  let digest = Sha256.finalize ctx in
  f.stream := Some (s, digest);
  ignore
    (ok_or ~what:"streaming e2e"
       (Suit.process
          ~digests:[ (hook_uuid, { Suit.streamed = digest; bytes = len }) ]
          f.device ~envelope:f.envelope
          ~payloads:[ (hook_uuid, f.payload) ]))

(* --- multi-tenant fixture --- *)

type tenant_jobs = {
  devices : Suit.device array;
  (* (tenant index, envelope, digest hint) in global submission order *)
  jobs : (int * string * Suit.digest_hint) list;
  payload : string;
}

let updates_per_tenant = 4
let tenant_count = 4

let make_tenant_jobs () =
  let payload = make_payload (16 * 1024) in
  let hint =
    { Suit.streamed = streamed_digest payload; bytes = String.length payload }
  in
  let devices =
    Array.init tenant_count (fun _ ->
        Suit.create_device ~vendor_id:vendor ~class_id ~key
          ~install:(fun ~sequence:_ ~storage_uuid:_ _ -> Ok ())
          ~known_storage:(fun uuid -> String.equal uuid hook_uuid)
          ())
  in
  (* interleave tenants round-robin, sequences rising per tenant *)
  let jobs =
    List.concat_map
      (fun seq ->
        List.map
          (fun tenant ->
            (tenant, envelope_for ~sequence:(Int64.of_int seq) payload, hint))
          (List.init tenant_count Fun.id))
      (List.init updates_per_tenant (fun i -> i + 1))
  in
  { devices; jobs; payload }

let reset_tenants t = Array.iter (fun d -> d.Suit.sequence <- 0L) t.devices

let legacy_concurrent t () =
  reset_tenants t;
  List.iter
    (fun (tenant, envelope, _) ->
      let device = t.devices.(tenant) in
      let manifest =
        ok_or ~what:"legacy concurrent"
          (legacy_process envelope ~sequence:device.Suit.sequence t.payload)
      in
      device.Suit.sequence <- manifest.Suit.sequence)
    t.jobs

(* The new sequential path (zero-copy + digest hints), no domain pool:
   the middle column of the ablation. *)
let streaming_concurrent t () =
  reset_tenants t;
  List.iter
    (fun (tenant, envelope, hint) ->
      ignore
        (ok_or ~what:"streaming concurrent"
           (Suit.process
              ~digests:[ (hook_uuid, hint) ]
              t.devices.(tenant) ~envelope
              ~payloads:[ (hook_uuid, t.payload) ])))
    t.jobs

let pipeline_concurrent pool t () =
  reset_tenants t;
  List.iter
    (fun (tenant, envelope, hint) ->
      Pipeline.submit pool
        ~digests:[ (hook_uuid, hint) ]
        ~tenant:(Printf.sprintf "tenant-%d" tenant)
        ~device:t.devices.(tenant) ~envelope
        ~payloads:[ (hook_uuid, t.payload) ]
        ())
    t.jobs;
  List.iter
    (fun (_, outcome) -> ignore (ok_or ~what:"pipeline concurrent" outcome))
    (Pipeline.drain pool)

(* --- correctness cross-checks before any timing --- *)

let self_check () =
  let payload = payload_32k in
  let envelope = envelope_for ~sequence:7L payload in
  (* digest agreement: streamed fast path = boxed legacy path *)
  if not (String.equal (streamed_digest payload) (Legacy_path.sha256 payload))
  then failwith "update bench: streaming digest <> legacy digest";
  (* parse agreement, accept case *)
  let legacy = ok_or ~what:"legacy parse" (legacy_parse envelope) in
  let fast = ok_or ~what:"slice parse" (slice_parse envelope) in
  if legacy <> fast then failwith "update bench: slice parse <> tree parse";
  (* parse agreement, reject case: flipped signature byte *)
  let tampered = Bytes.of_string envelope in
  let last = Bytes.length tampered - 1 in
  Bytes.set tampered last (Char.chr (Char.code (Bytes.get tampered last) lxor 1));
  let tampered = Bytes.to_string tampered in
  (match (legacy_parse tampered, slice_parse tampered) with
  | Error _, Error _ -> ()
  | _ -> failwith "update bench: tamper rejection disagreement");
  (* pipeline = sequential on the tenant job set *)
  let t = make_tenant_jobs () in
  legacy_concurrent t ();
  let legacy_seqs = Array.map (fun d -> d.Suit.sequence) t.devices in
  let pool = Pipeline.create ~domains:2 ~queue_depth:8 () in
  pipeline_concurrent pool t ();
  ignore (Pipeline.shutdown pool);
  let pipeline_seqs = Array.map (fun d -> d.Suit.sequence) t.devices in
  if legacy_seqs <> pipeline_seqs then
    failwith "update bench: pipeline outcomes <> sequential outcomes"

(* --- wall-clock measurement (small-iteration variant of the dispatch
   smoke: these workloads run milliseconds, not nanoseconds) --- *)

let wall_ns = Femto_eval.Measure.wall_ns

type row = { name : string; legacy_ns : float; fast_ns : float }

let speedup r = r.legacy_ns /. r.fast_ns

let measure_rows () =
  self_check ();
  let parse_env = envelope_for ~sequence:1L payload_32k in
  let parse =
    {
      name = "parse_manifest";
      legacy_ns =
        wall_ns ~iters:200 (fun () -> ignore (legacy_parse parse_env));
      fast_ns = wall_ns ~iters:200 (fun () -> ignore (slice_parse parse_env));
    }
  in
  let digest =
    {
      name = "digest_32k";
      legacy_ns =
        wall_ns ~iters:20 (fun () -> ignore (Legacy_path.sha256 payload_32k));
      fast_ns =
        wall_ns ~iters:20 (fun () -> ignore (streamed_digest payload_32k));
    }
  in
  let e2e =
    let lf = make_e2e_fixture () and sf = make_e2e_fixture () in
    {
      name = "e2e_single";
      legacy_ns = wall_ns ~iters:10 (legacy_e2e lf);
      fast_ns = wall_ns ~iters:10 (streaming_e2e sf);
    }
  in
  let concurrent, streaming_seq_ns =
    let t = make_tenant_jobs () in
    let legacy_ns = wall_ns ~iters:5 (legacy_concurrent t) in
    let streaming_ns = wall_ns ~iters:5 (streaming_concurrent t) in
    let pool = Pipeline.create ~queue_depth:16 () in
    let pipeline_ns = wall_ns ~iters:5 (pipeline_concurrent pool t) in
    ignore (Pipeline.shutdown pool);
    ({ name = "concurrent_4tenant"; legacy_ns; fast_ns = pipeline_ns },
     streaming_ns)
  in
  ([ parse; digest; e2e; concurrent ], streaming_seq_ns)

(* --- smoke mode: per-push CI gate + femto-bench/1 JSON --- *)

(* Minimum speedups vs the reconstructed pre-PR path (ISSUE 5 acceptance
   criteria).  These are floors, not targets: measured ratios land far
   above them; see bench/update-baseline.json for the committed record. *)
let gates =
  [ ("parse_manifest", 1.5); ("e2e_single", 1.5); ("concurrent_4tenant", 2.0) ]

let smoke_json rows ~streaming_seq_ns =
  Schema.doc
    [
      ( "update",
        Jsonx.List
          (List.map
             (fun r ->
               Jsonx.Obj
                 [
                   ("name", Jsonx.String ("update/" ^ r.name));
                   ("legacy_ns_per_run", Jsonx.Float r.legacy_ns);
                   ("ns_per_run", Jsonx.Float r.fast_ns);
                 ])
             rows) );
      ( "update_speedups",
        Jsonx.Obj (List.map (fun r -> (r.name, Jsonx.Float (speedup r))) rows)
      );
      ("concurrent_streaming_seq_ns", Jsonx.Float streaming_seq_ns);
    ]

(* Regression gate against the committed baseline: speedup *ratios* are
   compared (robust to absolute machine speed).  Fails when a current
   ratio drops below 60% of the committed one, or below 1.0 outright. *)
let check_baseline rows path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let raw = really_input_string ic n in
    close_in ic;
    Jsonx.of_string raw
  with
  | exception Sys_error m ->
      Printf.eprintf "update smoke: baseline %s unreadable (%s); skipping\n"
        path m;
      []
  | exception Jsonx.Parse_error m ->
      Printf.eprintf "update smoke: baseline %s malformed (%s); skipping\n" path
        m;
      []
  | doc ->
      let committed name =
        Option.bind (Jsonx.member "update_speedups" doc) (fun o ->
            Option.bind (Jsonx.member name o) Jsonx.to_float)
      in
      List.filter_map
        (fun r ->
          match committed r.name with
          | None -> None
          | Some was ->
              let now = speedup r in
              if now < was *. 0.6 || now < 1.0 then
                Some
                  (Printf.sprintf
                     "update/%s speedup regressed: %.2fx now vs %.2fx committed"
                     r.name now was)
              else None)
        rows

let run_smoke ~json_file ~baseline_file () =
  let rows, streaming_seq_ns = measure_rows () in
  Printf.printf
    "\nUpdate-pipeline smoke (wall-clock ns/run, best of 3)\n%s\n"
    (String.make 52 '-');
  List.iter
    (fun r ->
      Printf.printf "  update/%-24s legacy %12.0f   fast %12.0f   %6.2fx\n"
        r.name r.legacy_ns r.fast_ns (speedup r))
    rows;
  Printf.printf "  %-30s %12.0f ns (sequential, no pool)\n"
    "concurrent_4tenant streaming" streaming_seq_ns;
  flush stdout;
  Option.iter (Schema.write_doc (smoke_json rows ~streaming_seq_ns)) json_file;
  let failures =
    List.filter_map
      (fun (name, floor) ->
        match List.find_opt (fun r -> r.name = name) rows with
        | None -> Some (Printf.sprintf "update/%s: row missing" name)
        | Some r ->
            if speedup r < floor then
              Some
                (Printf.sprintf "update/%s speedup %.2fx below floor %.2fx"
                   name (speedup r) floor)
            else None)
      gates
    @ match baseline_file with None -> [] | Some p -> check_baseline rows p
  in
  if failures <> [] then begin
    List.iter (fun m -> Printf.eprintf "update smoke: %s\n" m) failures;
    exit 1
  end
