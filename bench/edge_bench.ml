(* edge/* bench family: the socket-backed CoAP edge (PR 10).

   Four sub-benches, one femto-bench/1 document:

     edge/udp-get-*        req/s and p50/p90/p99 of real CoAP GETs over a
                           loopback UDP socket (Transport + acceptor
                           domain), cached vs uncached resource
     edge/handler-*        the same two resources timed on the in-process
                           handler path (Server.handle_datagram with
                           pre-encoded requests) — the honest
                           cached-vs-uncached pair the >= 5x gate uses,
                           free of socket noise
     edge/observe-fanout   one Server.notify across N registered
                           observers on the simulated net (single encode,
                           N sends), delivery-checked
     edge/update-<profile> a signed SUIT update streamed block-wise
                           through each named fault-injection profile;
                           every row asserts no half-installed image and
                           the clean/lossy profiles must accept

   "edge_ratios" carries cached_handler_x (hard floor {!cached_floor})
   and cached_udp_x; both are compared against the committed
   bench/edge-baseline.json with the corpus gate's tolerance. *)

module Jsonx = Femto_obs.Jsonx
module Measure = Femto_eval.Measure
module Kernel = Femto_rtos.Kernel
module Network = Femto_net.Network
module Profile = Femto_net.Profile
module Message = Femto_coap.Message
module Server = Femto_coap.Server
module Transport = Femto_coap.Transport
module Coap_client = Femto_coap.Client
module Engine = Femto_core.Engine
module Device = Femto_device.Device
module Suit = Femto_suit.Suit
module Cose = Femto_cose.Cose
module Flash = Femto_flash.Flash
module Slots = Femto_flash.Slots

(* A cached GET must answer at least this many times faster than the
   uncached handler path (which fires a real femto-container). *)
let cached_floor = 5.0
let tolerance = 0.5

type row = {
  e_name : string;
  e_ns : float; (* mean ns per operation *)
  e_p50 : float option;
  e_p90 : float option;
  e_p99 : float option;
  e_rps : float option;
  e_accepted : bool option; (* update rows: did the device install it? *)
  e_ok : bool; (* hard-gate flag (delivery complete / update sane) *)
}

let plain_row name ns =
  { e_name = name; e_ns = ns; e_p50 = None; e_p90 = None; e_p99 = None;
    e_rps = None; e_accepted = None; e_ok = true }

(* --- percentiles ------------------------------------------------------ *)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let stats_of_samples samples =
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let mean =
    Array.fold_left ( +. ) 0.0 samples /. float_of_int (Array.length samples)
  in
  (mean, percentile sorted 0.50, percentile sorted 0.90, percentile sorted 0.99)

(* --- the handler fixture ---------------------------------------------- *)

let hook_uuid = "ed6e0000-0000-4000-8000-000000000001"

(* A detached server whose /run handler fires a real femto-container —
   the paper's fletcher32 workload over its standard 360 B input —
   through the engine, plus /cached: the same handler behind the
   response cache.  This is the pair both the UDP and the handler-path
   rows time. *)
let make_edge_server ~addr =
  let fixture = Femto_eval.Setup.make_fixture () in
  let _container, trigger = Femto_eval.Setup.fletcher_container fixture in
  let server = Server.create_detached ~addr ~send:(fun ~dst:_ _ -> ()) () in
  let fire ~src:_ _ =
    match trigger () with
    | [ { Engine.result = Ok v; _ } ] ->
        Server.respond
          ~payload:(Printf.sprintf "fletcher32=%Ld" v)
          Message.code_content
    | _ -> Server.respond Message.code_internal_error
  in
  Server.register server ~path:"/run" fire;
  Server.register_cached ~max_age_s:3600 server ~path:"/cached" fire;
  server

(* --- handler-path rows ------------------------------------------------ *)

(* Feed pre-encoded GETs straight into [handle_datagram].  Every request
   carries a fresh (src, mid) pair so the dedupe table never answers for
   the resource — exactly what a stream of distinct clients looks like. *)
let time_handler_path server ~path ~iters ~src_base =
  let requests =
    Array.init iters (fun i ->
        Message.encode
          (Message.make ~token:"tk"
             ~options:(Message.options_of_path path)
             ~code:Message.code_get
             ~message_id:(i land 0xFFFF) ()))
  in
  Server.handle_datagram server ~src:src_base requests.(0);
  let t0 = Unix.gettimeofday () in
  for i = 0 to iters - 1 do
    Server.handle_datagram server
      ~src:(src_base + 1 + (i lsr 16))
      requests.(i)
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e9

(* --- UDP loopback rows ------------------------------------------------ *)

let time_udp server ~path ~n =
  let transport = Transport.create () in
  Transport.spawn transport server;
  let client =
    Transport.Client.create ~ack_timeout_s:1.0 ~port:(Transport.port transport)
      ()
  in
  let one () =
    match Transport.Client.get client ~path with
    | Ok response when fst response.Message.code = 2 -> ()
    | Ok response ->
        failwith
          (Printf.sprintf "udp get %s: %s" path
             (Message.code_to_string response.Message.code))
    | Error `Timeout -> failwith (Printf.sprintf "udp get %s: timeout" path)
  in
  for _ = 1 to 20 do one () done;
  let samples = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let t0 = Unix.gettimeofday () in
    one ();
    samples.(i) <- (Unix.gettimeofday () -. t0) *. 1e9
  done;
  Transport.Client.close client;
  Transport.stop transport;
  let mean, p50, p90, p99 = stats_of_samples samples in
  (mean, p50, p90, p99, 1e9 /. mean)

(* --- observe fan-out -------------------------------------------------- *)

(* N observers on the simulated net; one notify = one handler run, one
   encode, N sends.  Returns ns per notify (delivery included: the
   kernel drains after each) and whether every observer saw every
   notification. *)
let fanout_row ~observers ~iters =
  let kernel = Kernel.create () in
  let network = Network.create ~kernel () in
  let server = Server.create ~network ~addr:1 () in
  Server.register server ~path:"/telemetry" (fun ~src:_ _ ->
      Server.respond ~payload:"t=21.5" Message.code_content);
  let delivered = ref 0 in
  for i = 1 to observers do
    let client = Coap_client.create ~network ~kernel ~addr:(10 + i) in
    ignore
      (Coap_client.observe client ~dst:1 ~path:"/telemetry" (fun m ->
           match Message.observe m with
           | Some seq when seq > 1 -> incr delivered
           | Some _ | None -> ()))
  done;
  ignore (Kernel.run kernel ());
  let notifies = ref 0 in
  let ns =
    Measure.wall_ns ~warmup:2 ~iters ~trials:3 (fun () ->
        let n = Server.notify server ~path:"/telemetry" in
        if n <> observers then failwith "fan-out lost an observer";
        incr notifies;
        ignore (Kernel.run kernel ()))
  in
  let complete = !delivered = !notifies * observers in
  (ns, complete)

(* --- hostile-matrix updates ------------------------------------------- *)

let update_key = Cose.make_key ~key_id:"edge" ~secret:"edge-update-secret"

let identity =
  { Device.vendor_id = "edge-bench"; class_id = "sim"; update_key }

let program_v2 () =
  Bytes.to_string
    (Femto_ebpf.Program.to_bytes
       (Femto_ebpf.Asm.assemble "mov r0, 22\nexit"))

(* One signed block-wise update pushed through [profile]'s fault
   schedule.  Returns (wall ns, accepted, sane): [sane] demands that
   whatever the network did, no half-installed image exists — every
   slot image digest-checks (Slots.scan filters) and an accepted update
   actually runs v2. *)
let hostile_update profile =
  let kernel = Kernel.create () in
  let network = Network.create ~kernel ~profile ~seed:7 () in
  let flash = Flash.create ~page_size:256 ~pages:64 () in
  let device =
    Device.boot ~identity
      ~hooks:[ Device.hook_spec ~uuid:hook_uuid ~name:"edge" ~ctx_size:16 () ]
      ~flash ~slot_count:4 ~network ~addr:1 ()
  in
  let client = Coap_client.create ~network ~kernel ~addr:9 in
  let payload = program_v2 () in
  let envelope =
    Suit.sign
      (Suit.make ~vendor_id:identity.Device.vendor_id
         ~class_id:identity.Device.class_id ~sequence:2L
         [ Suit.component_for ~storage_uuid:hook_uuid payload ])
      update_key
  in
  let outcome = ref None in
  let t0 = Unix.gettimeofday () in
  Coap_client.post_blockwise client ~dst:1 ~path:"/suit/slot" ~payload
    (fun _ ->
      Coap_client.post client ~dst:1 ~path:"/suit/install" ~payload:envelope
        (fun result ->
          outcome :=
            (match result with
            | Ok r -> Some r.Message.code
            | Error `Timeout -> None)));
  ignore (Kernel.run kernel ());
  let ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  let accepted = !outcome = Some Message.code_changed in
  let images = Slots.scan (Device.slots device) in
  let images_sane =
    List.for_all
      (fun (_, image) -> String.equal image.Slots.payload payload)
      images
  in
  let runs_v2 =
    match Engine.trigger_by_uuid (Device.engine device) ~uuid:hook_uuid () with
    | Ok [ { Engine.result = Ok 22L; _ } ] -> true
    | Ok [] -> true (* nothing installed: the update never completed *)
    | Ok _ | Error _ -> false
  in
  let sane = images_sane && (not accepted || runs_v2) in
  (ns, accepted, sane)

(* --- JSON ------------------------------------------------------------- *)

let row_json r =
  let opt key = function
    | Some v -> [ (key, Jsonx.Float v) ]
    | None -> []
  in
  Jsonx.Obj
    ([ ("name", Jsonx.String r.e_name); ("ns_per_run", Jsonx.Float r.e_ns) ]
    @ opt "p50_ns" r.e_p50 @ opt "p90_ns" r.e_p90 @ opt "p99_ns" r.e_p99
    @ opt "req_per_s" r.e_rps
    @ (match r.e_accepted with
      | Some b -> [ ("accepted", Jsonx.Bool b) ]
      | None -> [])
    @ [ ("ok", Jsonx.Bool r.e_ok) ])

let smoke_json rows ratios =
  Schema.doc
    [
      ("edge", Jsonx.List (List.map row_json rows));
      ( "edge_ratios",
        Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Float v)) ratios) );
    ]

(* --- baseline gate (same shape as the corpus gate) -------------------- *)

let check_baseline_doc ~ratios:current doc =
  match Jsonx.member "edge_ratios" doc with
  | Some (Jsonx.Obj committed) ->
      List.filter_map
        (fun (key, v) ->
          match Jsonx.to_float v with
          | None -> Some (Printf.sprintf "%s: committed ratio unreadable" key)
          | Some was -> (
              match List.assoc_opt key current with
              | None ->
                  Some
                    (Printf.sprintf "%s: ratio missing (present in baseline)"
                       key)
              | Some now ->
                  if now < was *. tolerance then
                    Some
                      (Printf.sprintf
                         "%s regressed: %.2fx now vs %.2fx committed \
                          (tolerance %.0f%%)"
                         key now was (tolerance *. 100.))
                  else None))
        committed
  | _ -> [ "baseline has no edge_ratios section" ]

let check_baseline ~ratios path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let raw = really_input_string ic n in
    close_in ic;
    Jsonx.of_string raw
  with
  | exception Sys_error m ->
      [ Printf.sprintf "baseline %s unreadable: %s" path m ]
  | exception Jsonx.Parse_error m ->
      [ Printf.sprintf "baseline %s malformed: %s" path m ]
  | doc -> check_baseline_doc ~ratios doc

(* --- driver ----------------------------------------------------------- *)

let run_edge_smoke ?(udp_requests = 400) ?(handler_iters = 4000)
    ?(observers = 100) ~json_file ~baseline_file () =
  match
    (* handler path: fresh server per resource so the cache stays cold
       for the uncached row whatever the order *)
    let handler_server = make_edge_server ~addr:1 in
    let uncached_ns =
      time_handler_path handler_server ~path:"/run" ~iters:handler_iters
        ~src_base:1_000
    in
    let cached_ns =
      time_handler_path handler_server ~path:"/cached" ~iters:handler_iters
        ~src_base:2_000_000
    in
    let udp_server = make_edge_server ~addr:2 in
    let u_mean, u_p50, u_p90, u_p99, u_rps =
      time_udp udp_server ~path:"/run" ~n:udp_requests
    in
    let c_mean, c_p50, c_p90, c_p99, c_rps =
      time_udp udp_server ~path:"/cached" ~n:udp_requests
    in
    let fanout_ns, fanout_complete = fanout_row ~observers ~iters:20 in
    let update_rows =
      List.map
        (fun profile ->
          let ns, accepted, sane = hostile_update profile in
          let must_accept =
            List.mem profile.Profile.p_name [ "clean"; "lossy" ]
          in
          ( Printf.sprintf "edge/update-%s" profile.Profile.p_name,
            ns,
            accepted,
            sane && ((not must_accept) || accepted) ))
        Profile.named
    in
    let rows =
      [
        { e_name = "edge/udp-get-uncached"; e_ns = u_mean;
          e_p50 = Some u_p50; e_p90 = Some u_p90; e_p99 = Some u_p99;
          e_rps = Some u_rps; e_accepted = None; e_ok = true };
        { e_name = "edge/udp-get-cached"; e_ns = c_mean;
          e_p50 = Some c_p50; e_p90 = Some c_p90; e_p99 = Some c_p99;
          e_rps = Some c_rps; e_accepted = None; e_ok = true };
        plain_row "edge/handler-uncached" uncached_ns;
        plain_row "edge/handler-cached" cached_ns;
        { (plain_row
             (Printf.sprintf "edge/observe-fanout-%d" observers)
             fanout_ns)
          with e_ok = fanout_complete };
      ]
      @ List.map
          (fun (name, ns, accepted, ok) ->
            { (plain_row name ns) with e_ok = ok; e_accepted = Some accepted })
          update_rows
    in
    let ratios =
      [
        ("cached_handler_x", uncached_ns /. cached_ns);
        ("cached_udp_x", u_mean /. c_mean);
      ]
    in
    Printf.printf "\nEdge smoke (loopback UDP + simulated hostile matrix)\n%s\n"
      (String.make 58 '-');
    List.iter
      (fun r ->
        Printf.printf "  %-28s %12.0f ns%s%s%s\n" r.e_name r.e_ns
          (match r.e_p99 with
          | Some p -> Printf.sprintf "  p50/p99 %.0f/%.0f" (Option.get r.e_p50) p
          | None -> "")
          (match r.e_rps with
          | Some rps when rps > 1.0 -> Printf.sprintf "  %.0f req/s" rps
          | _ -> "")
          (if r.e_ok then "" else "  NOT OK"))
      rows;
    List.iter (fun (k, v) -> Printf.printf "  %-28s %12.2fx\n" k v) ratios;
    flush stdout;
    Option.iter (Schema.write_doc (smoke_json rows ratios)) json_file;
    let failures =
      List.filter_map
        (fun r ->
          if r.e_ok then None
          else Some (Printf.sprintf "%s failed its hard gate" r.e_name))
        rows
      @ (if uncached_ns /. cached_ns < cached_floor then
           [
             Printf.sprintf
               "cached GET only %.2fx the uncached handler path (floor %.1fx)"
               (uncached_ns /. cached_ns) cached_floor;
           ]
         else [])
      @
      match baseline_file with
      | None -> []
      | Some path -> check_baseline ~ratios path
    in
    if failures <> [] then begin
      List.iter (fun m -> Printf.eprintf "edge gate: %s\n" m) failures;
      1
    end
    else 0
  with
  | code -> code
  | exception e ->
      Printf.eprintf "edge: failure: %s\n" (Printexc.to_string e);
      1
