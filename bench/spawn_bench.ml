(* spawn/* bench family: the container image / instance split (PR 8).

   Three engine-level workloads, each measured twice:

     legacy_ns_per_run   full attach — verify + analyze + compile,
                         per container (the pre-image cold start)
     ns_per_run          spawn from the cached image — fresh private
                         state bound to the shared immutable artifact

   plus the memory-footprint side: marginal bytes per resident instance
   (measured with [Obj.reachable_words] over the container list, so
   shared structure — image, program, helper closures — is excluded
   automatically) for image spawns at 1/100/10k residents vs independent
   full attaches.

   Every spawned instance is checked against the attached instance's
   result before timing starts, so a semantics break can never be
   reported as a speedup.  --spawn-smoke runs wall-clock trials with
   femto-bench/1 JSON output and hard gates: spawn must be >= 10x
   faster than full attach on the dispatch workloads, and a spawned
   resident must cost <= 10% of a fully attached one. *)

module Engine = Femto_core.Engine
module Container = Femto_core.Container
module Contract = Femto_core.Contract
module Syscall = Femto_core.Syscall
module Dagsum = Femto_workloads.Dagsum
module Loop_sum = Femto_workloads.Loop_sum
module Fletcher = Femto_workloads.Fletcher
module Jsonx = Femto_obs.Jsonx
module Measure = Femto_eval.Measure

let data = Fletcher.input_360
let hook_uuid = "spawn-bench"

(* local[7] <- local[7] + 1; r0 = new value — the kv workload exercises
   the CoW store and the forward-helper rebind on every run *)
let kv_counter_source =
  {|
    mov r1, 7
    mov r2, r10
    sub r2, 8
    call bpf_fetch_local
    ldxdw r3, [r10-8]
    add r3, 1
    mov r1, 7
    mov r2, r3
    stxdw [r10-16], r3
    call bpf_store_local
    ldxdw r0, [r10-16]
    exit
  |}

type workload = {
  w_name : string;
  program : Femto_ebpf.Program.t;
  contract : Contract.t;
  extra_regions : unit -> Femto_vm.Region.t list;
  run_args : int64 array;
  expect : int64;
}

let workloads () =
  [
    {
      w_name = "dagsum";
      program = Dagsum.ebpf_program ();
      contract = Contract.require [];
      extra_regions = (fun () -> Dagsum.regions data);
      run_args = [| Dagsum.data_vaddr |];
      expect = Dagsum.reference data;
    };
    {
      w_name = "loop_sum";
      program = Loop_sum.ebpf_program ();
      contract = Contract.require [];
      extra_regions = (fun () -> Loop_sum.regions data);
      run_args = [| Loop_sum.data_vaddr |];
      expect = Loop_sum.reference data;
    };
    {
      w_name = "kvcounter";
      program =
        Femto_ebpf.Asm.assemble ~helpers:Syscall.resolve_name
          kv_counter_source;
      contract = Contract.require [ Femto_core.Contract.Kv_local ];
      extra_regions = (fun () -> []);
      run_args = [||];
      (* first run on a fresh (CoW) local store: 0 + 1 *)
      expect = 1L;
    };
  ]

let fresh_engine () =
  let engine = Engine.create () in
  let _hook =
    Engine.register_hook engine ~uuid:hook_uuid ~name:"spawn-bench"
      ~ctx_size:16 ()
  in
  engine

let make_container engine w i =
  let tenant = Engine.add_tenant engine "bench" in
  Container.create
    ~name:(Printf.sprintf "%s-%d" w.w_name i)
    ~tenant ~contract:w.contract w.program

let ok_or_attach = function
  | Ok h -> h
  | Error e -> failwith (Engine.attach_error_to_string e)

let check_result w c =
  match Container.run_instance c ~args:w.run_args with
  | Ok v when Int64.equal v w.expect -> ()
  | Ok v ->
      failwith
        (Printf.sprintf "spawn/%s: got %Ld, reference says %Ld" w.w_name v
           w.expect)
  | Error fault ->
      failwith ("spawn/" ^ w.w_name ^ ": " ^ Femto_vm.Fault.to_string fault)

(* --- latency: full attach vs cached spawn --- *)

type row = {
  name : string;
  attach_ns : float;
  spawn_ns : float;
  image_hits : int; (* warm spawns during this measurement *)
  image_misses : int; (* cold image builds (should be 1 per workload) *)
}

let speedup r = r.attach_ns /. r.spawn_ns

let measure_workload w =
  let engine = fresh_engine () in
  let extra_regions = w.extra_regions () in
  (* correctness first: the attached and the image-spawned instance must
     agree with the native reference *)
  let probe = make_container engine w 0 in
  ignore (ok_or_attach (Engine.attach engine ~hook_uuid ~extra_regions probe));
  check_result w probe;
  Engine.detach engine probe;
  let warm = make_container engine w 1 in
  ignore (ok_or_attach (Engine.spawn engine ~hook_uuid ~extra_regions warm));
  check_result w warm;
  Engine.detach engine warm;
  let spawned = make_container engine w 2 in
  (* this one is a cache hit — the configuration under test *)
  ignore (ok_or_attach (Engine.spawn engine ~hook_uuid ~extra_regions spawned));
  check_result w spawned;
  Engine.detach engine spawned;
  let c = make_container engine w 3 in
  let attach_ns =
    Measure.wall_ns ~warmup:2 ~iters:20 ~trials:3 (fun () ->
        ignore (ok_or_attach (Engine.attach engine ~hook_uuid ~extra_regions c));
        Engine.detach engine c)
  in
  let spawn_ns =
    Measure.wall_ns ~warmup:20 ~iters:500 ~trials:3 (fun () ->
        ignore (ok_or_attach (Engine.spawn engine ~hook_uuid ~extra_regions c));
        Engine.detach engine c)
  in
  (* hit/miss bookkeeping straight off the engine's image cache: every
     spawn above either built an image (miss) or reused one (hit) *)
  let image_misses = Engine.images_cached engine in
  let image_hits = Engine.image_spawns engine - image_misses in
  { name = w.w_name; attach_ns; spawn_ns; image_hits; image_misses }

(* --- footprint: marginal bytes per resident --- *)

(* Build [n] resident containers via [how] on a fresh engine and return
   the reachable words of the container list.  Shared structure (the
   image, the program, helper closures, the engine's stores) is counted
   once per walk, so the marginal words between two scales is the true
   per-instance cost. *)
let resident_words ~how w n =
  let engine = fresh_engine () in
  let extra_regions = w.extra_regions () in
  let containers =
    List.init n (fun i ->
        let c = make_container engine w i in
        (match how with
        | `Attach ->
            ignore (ok_or_attach (Engine.attach engine ~hook_uuid ~extra_regions c))
        | `Spawn ->
            ignore (ok_or_attach (Engine.spawn engine ~hook_uuid ~extra_regions c)));
        c)
  in
  Obj.reachable_words (Obj.repr containers)

let word_bytes = Sys.word_size / 8

let marginal_bytes ~how w ~n1 ~n2 =
  let w1 = resident_words ~how w n1 in
  let w2 = resident_words ~how w n2 in
  float_of_int ((w2 - w1) * word_bytes) /. float_of_int (n2 - n1)

type footprint = {
  spawn_1_100 : float; (* bytes/instance, spawns, 1 -> 100 *)
  spawn_100_10k : float; (* bytes/instance, spawns, 100 -> 10k *)
  attach_1_100 : float; (* bytes/instance, full attaches, 1 -> 100 *)
  fraction : float; (* spawn @10k scale / attach *)
}

let measure_footprint w =
  let spawn_1_100 = marginal_bytes ~how:`Spawn w ~n1:1 ~n2:100 in
  let spawn_100_10k = marginal_bytes ~how:`Spawn w ~n1:100 ~n2:10_000 in
  let attach_1_100 = marginal_bytes ~how:`Attach w ~n1:1 ~n2:100 in
  { spawn_1_100; spawn_100_10k; attach_1_100;
    fraction = spawn_100_10k /. attach_1_100 }

(* --- smoke mode: per-push CI gate + femto-bench/1 JSON --- *)

(* ISSUE 8 acceptance floors; measured numbers land far above/below
   them — see bench/spawn-baseline.json for the committed record.  The
   10x floor applies to the dispatch workloads: kvcounter's full attach
   is already only a few microseconds (nothing to verify, no loops to
   analyze), so the fixed ~0.7 us spawn cost cannot sit 10x under it —
   its ratio is reported and baseline-gated, but not floor-gated. *)
let speedup_floor = 10.0
let fraction_ceiling = 0.10
let floor_gated = [ "dagsum"; "loop_sum" ]

(* the footprint workload: dagsum is the artifact-heavy dispatch
   workload — full attach builds a large compiled closure graph per
   resident, exactly the structure image sharing is meant to eliminate *)
let footprint_workload ws = List.find (fun w -> w.w_name = "dagsum") ws

let smoke_json rows fp =
  Schema.doc
    [
      ( "spawn",
        Jsonx.List
          (List.map
             (fun r ->
               Jsonx.Obj
                 [
                   ("name", Jsonx.String ("spawn/" ^ r.name));
                   ("legacy_ns_per_run", Jsonx.Float r.attach_ns);
                   ("ns_per_run", Jsonx.Float r.spawn_ns);
                   ("image_hits", Jsonx.Int r.image_hits);
                   ("image_misses", Jsonx.Int r.image_misses);
                 ])
             rows
          @ [
              Jsonx.Obj
                [
                  ("name", Jsonx.String "spawn/footprint");
                  ("spawn_bytes_per_instance_1_100", Jsonx.Float fp.spawn_1_100);
                  ( "spawn_bytes_per_instance_100_10k",
                    Jsonx.Float fp.spawn_100_10k );
                  ( "attach_bytes_per_instance_1_100",
                    Jsonx.Float fp.attach_1_100 );
                ];
            ]) );
      ( "spawn_ratios",
        Jsonx.Obj
          (List.map (fun r -> (r.name, Jsonx.Float (speedup r))) rows
          @ [ ("footprint_fraction", Jsonx.Float fp.fraction) ]) );
    ]

(* Regression gate against the committed baseline: ratios are compared
   (robust to absolute machine speed).  A speedup must not drop below
   60% of the committed one; the footprint fraction must not grow past
   committed / 0.6. *)
let check_baseline rows fp path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let raw = really_input_string ic n in
    close_in ic;
    Jsonx.of_string raw
  with
  | exception Sys_error m ->
      Printf.eprintf "spawn smoke: baseline %s unreadable (%s); skipping\n" path
        m;
      []
  | exception Jsonx.Parse_error m ->
      Printf.eprintf "spawn smoke: baseline %s malformed (%s); skipping\n" path
        m;
      []
  | doc ->
      let committed name =
        Option.bind (Jsonx.member "spawn_ratios" doc) (fun o ->
            Option.bind (Jsonx.member name o) Jsonx.to_float)
      in
      List.filter_map
        (fun r ->
          match committed r.name with
          | None -> None
          | Some was ->
              let now = speedup r in
              if now < was *. 0.6 then
                Some
                  (Printf.sprintf
                     "spawn/%s speedup regressed: %.2fx now vs %.2fx committed"
                     r.name now was)
              else None)
        rows
      @
      match committed "footprint_fraction" with
      | None -> []
      | Some was ->
          if fp.fraction > was /. 0.6 then
            [
              Printf.sprintf
                "spawn footprint fraction regressed: %.4f now vs %.4f committed"
                fp.fraction was;
            ]
          else []

let run_spawn_smoke ~json_file ~baseline_file () =
  let ws = workloads () in
  let rows = List.map measure_workload ws in
  let fp = measure_footprint (footprint_workload ws) in
  Printf.printf "\nSpawn smoke (wall-clock ns/run, best of 3)\n%s\n"
    (String.make 42 '-');
  List.iter
    (fun r ->
      Printf.printf "  spawn/%-12s attach %12.0f   spawn %12.0f   %7.1fx\n"
        r.name r.attach_ns r.spawn_ns (speedup r))
    rows;
  Printf.printf
    "  bytes/instance: spawn %.0f (1->100)  %.0f (100->10k)   attach %.0f \
     (1->100)   fraction %.4f\n"
    fp.spawn_1_100 fp.spawn_100_10k fp.attach_1_100 fp.fraction;
  flush stdout;
  Option.iter (Schema.write_doc (smoke_json rows fp)) json_file;
  let failures =
    List.filter_map
      (fun r ->
        if List.mem r.name floor_gated && speedup r < speedup_floor then
          Some
            (Printf.sprintf "spawn/%s speedup %.2fx below floor %.2fx" r.name
               (speedup r) speedup_floor)
        else None)
      rows
    @ (if fp.fraction > fraction_ceiling then
         [
           Printf.sprintf
             "spawn footprint fraction %.4f above ceiling %.2f (spawn %.0f \
              B/inst vs attach %.0f B/inst)"
             fp.fraction fraction_ceiling fp.spawn_100_10k fp.attach_1_100;
         ]
       else [])
    @ match baseline_file with None -> [] | Some p -> check_baseline rows fp p
  in
  if failures <> [] then begin
    List.iter (fun m -> Printf.eprintf "spawn smoke: %s\n" m) failures;
    exit 1
  end
