(* femto-bench/1: the one JSON envelope every bench emitter shares.

   A document is an object with the schema tag, a UTC timestamp, the
   producing toolchain, any number of *section* keys, and the process
   observability snapshot.  Row sections ("bechamel", "dispatch",
   "update", "corpus") are lists of objects with a "name" and ns
   measurements; ratio sections ("dispatch_speedups", "update_speedups",
   "corpus_ratios") are flat objects of positive floats — the
   machine-speed-robust numbers the CI gates compare against committed
   baselines.  [validate] is the single checker test_bench_schema runs
   against every emitter and every committed baseline. *)

module Jsonx = Femto_obs.Jsonx
module Obs = Femto_obs.Obs

let tag = "femto-bench/1"

let iso8601_utc seconds =
  let tm = Unix.gmtime seconds in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* Inverse of [iso8601_utc], for monotonicity checks. *)
let parse_timestamp s =
  match
    Scanf.sscanf s "%04d-%02d-%02dT%02d:%02d:%02dZ%!"
      (fun y mo d h mi sec -> (y, mo, d, h, mi, sec))
  with
  | exception _ -> None
  | y, mo, d, h, mi, sec ->
      if mo < 1 || mo > 12 || d < 1 || d > 31 || h > 23 || mi > 59 || sec > 60
      then None
      else
        (* days-since-epoch arithmetic is overkill here: a lexicographic
           tuple compares correctly for a fixed-width UTC stamp, so return
           a sortable float built the same way *)
        Some
          (((((float_of_int y *. 12. +. float_of_int mo) *. 31.
             +. float_of_int d)
             *. 24.
            +. float_of_int h)
            *. 60.
           +. float_of_int mi)
           *. 61.
          +. float_of_int sec)

(* Assemble a document: the shared envelope around [sections]. *)
let doc sections =
  Jsonx.Obj
    ([
       ("schema", Jsonx.String tag);
       ("generated_at", Jsonx.String (iso8601_utc (Unix.time ())));
       ("ocaml_version", Jsonx.String Sys.ocaml_version);
       ("word_size", Jsonx.Int Sys.word_size);
     ]
    @ sections
    @ [ ("metrics", Obs.metrics_json ()) ])

let write_doc doc path =
  let oc = open_out path in
  output_string oc (Jsonx.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

let row_sections =
  [ "bechamel"; "dispatch"; "update"; "spawn"; "fleet"; "corpus"; "edge" ]

let ratio_sections =
  [
    "dispatch_speedups"; "update_speedups"; "spawn_ratios"; "fleet_ratios";
    "corpus_ratios"; "edge_ratios";
  ]

(* Optional latency-percentile fields a row may carry (the edge rows
   do); when present they must be non-negative and ordered. *)
let percentile_keys = [ "p50_ns"; "p90_ns"; "p99_ns" ]

let is_ns_key key =
  key = "ns_per_run" || key = "legacy_ns_per_run"
  || Astring.String.is_suffix ~affix:"_ns" key

(* [validate doc] returns every problem found ([] = conformant). *)
let validate doc =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  (match Jsonx.member "schema" doc with
  | Some (Jsonx.String s) when s = tag -> ()
  | Some (Jsonx.String s) -> bad "schema is %S, want %S" s tag
  | _ -> bad "schema tag missing");
  (match Jsonx.member "generated_at" doc with
  | Some (Jsonx.String s) -> (
      match parse_timestamp s with
      | Some _ -> ()
      | None -> bad "generated_at %S is not an ISO-8601 UTC stamp" s)
  | _ -> bad "generated_at missing");
  (match Jsonx.member "ocaml_version" doc with
  | Some (Jsonx.String s) when s <> "" -> ()
  | _ -> bad "ocaml_version missing or empty");
  (match Jsonx.member "word_size" doc with
  | Some (Jsonx.Int n) when n > 0 -> ()
  | _ -> bad "word_size missing or non-positive");
  List.iter
    (fun section ->
      match Jsonx.member section doc with
      | None -> ()
      | Some (Jsonx.List rows) ->
          let seen = Hashtbl.create 16 in
          List.iteri
            (fun i row ->
              match row with
              | Jsonx.Obj fields ->
                  (match List.assoc_opt "name" fields with
                  | Some (Jsonx.String name) when name <> "" ->
                      if Hashtbl.mem seen name then
                        bad "%s: duplicate row name %S" section name;
                      Hashtbl.replace seen name ()
                  | _ -> bad "%s[%d]: name missing or empty" section i);
                  List.iter
                    (fun (key, v) ->
                      if is_ns_key key then
                        match v with
                        | Jsonx.Float ns when ns >= 0.0 && ns = ns -> ()
                        | Jsonx.Null when section = "bechamel" ->
                            () (* an OLS fit may fail to converge *)
                        | _ -> bad "%s[%d]: %s not a non-negative float" section i key)
                    fields;
                  (* present percentiles must not cross: p50 <= p90 <= p99 *)
                  let pct key =
                    match List.assoc_opt key fields with
                    | Some (Jsonx.Float v) -> Some v
                    | _ -> None
                  in
                  List.iter
                    (fun (lo, hi) ->
                      match (pct lo, pct hi) with
                      | Some l, Some h when l > h ->
                          bad "%s[%d]: %s (%.1f) exceeds %s (%.1f)" section i
                            lo l hi h
                      | _ -> ())
                    [ ("p50_ns", "p90_ns"); ("p90_ns", "p99_ns") ]
              | _ -> bad "%s[%d]: row is not an object" section i)
            rows
      | Some _ -> bad "%s: not a list" section)
    row_sections;
  List.iter
    (fun section ->
      match Jsonx.member section doc with
      | None -> ()
      | Some (Jsonx.Obj fields) ->
          List.iter
            (fun (key, v) ->
              match v with
              | Jsonx.Float r when r > 0.0 && r = r && r <> infinity -> ()
              | _ -> bad "%s: ratio %S not a positive finite float" section key)
            fields
      | Some _ -> bad "%s: not an object" section)
    ratio_sections;
  List.rev !problems
