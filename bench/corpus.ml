(* corpus/* bench family: the three-layer cross-runtime shootout
   (ROADMAP item 5; EXPERIMENTS.md "Corpus").

   L1/L2 workloads come from Femto_workloads.Corpus: every (runtime,
   tier) expression of a kernel is checked for result equivalence with
   the native reference *before* it is timed — then one wall-clock row is
   emitted per impl.  L3 is the multi-tenant update storm, reusing the
   PR 5 pipeline fixtures from {!Update_bench} (sequential zero-copy path
   vs the domain pool).

   The femto-bench/1 document carries absolute ns rows plus
   "corpus_ratios": per-workload speed relative to the workload's
   reference row (rbpf/decoded for guest programs, update/sequential for
   the storm).  Ratios are what the CI gate compares against the
   committed bench/corpus-baseline.json — robust to absolute machine
   speed, sensitive to any one runtime regressing relative to the
   others. *)

module Jsonx = Femto_obs.Jsonx
module Harness = Femto_workloads.Harness
module Corpus_reg = Femto_workloads.Corpus
module Measure = Femto_eval.Measure
module Pipeline = Femto_suit.Pipeline
module Fleet = Femto_fleet.Fleet

type row = {
  wname : string;
  layer : string;
  runtime : string;
  tier : string;
  ns : float;
  result : int64;
}

let row_key r = Printf.sprintf "%s:%s/%s" r.wname r.runtime r.tier

(* Tolerance of the ratio gate: a workload/impl may lose up to half its
   committed relative speed before the job fails.  Wide on purpose — CI
   runners are noisy and the corpus rows are short smoke timings; a real
   regression (a tier losing its fast path, an interpreter de-optimized)
   shifts ratios by integer factors, not tens of percent. *)
let tolerance = 0.5

(* --- L3: the update storm, expressed as a corpus workload ----------- *)

let storm_checksum (t : Update_bench.tenant_jobs) =
  let acc = ref 0L in
  Array.iteri
    (fun i d ->
      acc :=
        Int64.add !acc
          (Int64.mul (Int64.of_int (i + 1)) d.Femto_suit.Suit.sequence))
    t.Update_bench.devices;
  !acc

let update_storm () =
  let expected =
    let t = Update_bench.make_tenant_jobs () in
    Update_bench.legacy_concurrent t ();
    storm_checksum t
  in
  {
    Harness.wname = "l3/update-storm";
    layer = "l3";
    expected;
    impls =
      [
        {
          Harness.runtime = "update";
          tier = "sequential";
          mk =
            (fun () ->
              let t = Update_bench.make_tenant_jobs () in
              Harness.instance (fun () ->
                  Update_bench.streaming_concurrent t ();
                  storm_checksum t));
        };
        {
          Harness.runtime = "update";
          tier = "pipeline";
          mk =
            (fun () ->
              let t = Update_bench.make_tenant_jobs () in
              let pool = Pipeline.create ~queue_depth:16 () in
              {
                Harness.run =
                  (fun () ->
                    Update_bench.pipeline_concurrent pool t ();
                    storm_checksum t);
                dispose = (fun () -> ignore (Pipeline.shutdown pool));
              });
        };
      ];
  }

(* --- L3: a rolling fleet-update campaign as a corpus workload -------- *)

(* A small sharded fleet (PR 9) pushed through a full rolling v2
   campaign.  The checksum folds the fleet's deterministic state
   fingerprint with the update count, so the 2-domain impl only matches
   the reference if parallel sharding is bit-identical to sequential —
   the equivalence gate doubles as a determinism test.  Half-installed
   images fail the run outright. *)
let campaign_config ~domains =
  {
    Fleet.default_config with
    devices = 512;
    shards = 8;
    domains;
    telemetry_us = 0;
    seed = 11;
  }

let campaign_checksum fleet (r : Fleet.report) =
  if r.Fleet.r_half_installed <> 0 then
    failwith "fleet campaign left a half-installed image";
  Int64.add
    (Int64.of_string ("0x" ^ String.sub (Fleet.fingerprint fleet) 0 15))
    (Int64.of_int r.Fleet.r_updates_ok)

let fleet_campaign () =
  let run_once ~domains () =
    let fleet = Fleet.create (campaign_config ~domains) in
    campaign_checksum fleet (Fleet.run_campaign fleet)
  in
  {
    Harness.wname = "l3/fleet-campaign";
    layer = "l3";
    expected = run_once ~domains:1 ();
    impls =
      [
        {
          Harness.runtime = "fleet";
          tier = "1-domain";
          mk = (fun () -> Harness.instance (run_once ~domains:1));
        };
        {
          Harness.runtime = "fleet";
          tier = "2-domain";
          mk = (fun () -> Harness.instance (run_once ~domains:2));
        };
      ];
  }

(* --- workload selection --------------------------------------------- *)

let layer_names = [ "l1"; "l2"; "l3" ]

let workloads ~layers ~only () =
  let wanted l = List.mem l layers in
  let by_layer =
    (if wanted "l1" then Corpus_reg.l1 () else [])
    @ (if wanted "l2" then Corpus_reg.l2 () else [])
    @ if wanted "l3" then [ update_storm (); fleet_campaign () ] else []
  in
  match only with
  | None -> by_layer
  | Some needle ->
      List.filter
        (fun (w : Harness.workload) ->
          Astring.String.is_infix ~affix:needle w.wname)
        by_layer

(* --- measurement ---------------------------------------------------- *)

(* Per-layer batching: L1 kernels run in µs, L2 hooks in tens of µs, L3
   storms in ms.  Smoke mode trades statistical niceness for wall-clock
   budget — the gate compares ratios of identically-batched rows, so the
   estimator bias cancels. *)
let timing ~smoke layer =
  match (smoke, layer) with
  | true, "l1" -> (1, 10, 2)
  | true, "l2" -> (1, 5, 2)
  | true, _ -> (1, 2, 2)
  | false, "l1" -> (5, 100, 3)
  | false, "l2" -> (3, 30, 3)
  | false, _ -> (2, 5, 3)

exception Divergence of string

let measure_workload ~smoke (w : Harness.workload) =
  let warmup, iters, trials = timing ~smoke w.layer in
  List.map
    (fun (impl : Harness.impl) ->
      let inst = impl.mk () in
      let check what =
        let got = inst.run () in
        if not (Int64.equal got w.expected) then
          raise
            (Divergence
               (Printf.sprintf "%s %s/%s: %s returned %Ld, reference %Ld"
                  w.wname impl.runtime impl.tier what got w.expected))
      in
      (* equivalence gate: first run and a repeat (catches instance state
         leaking between runs) must match the native reference *)
      check "first run";
      check "rerun";
      let ns =
        Measure.wall_ns ~warmup ~iters ~trials (fun () -> ignore (inst.run ()))
      in
      let result = inst.run () in
      inst.dispose ();
      {
        wname = w.wname;
        layer = w.layer;
        runtime = impl.runtime;
        tier = impl.tier;
        ns;
        result;
      })
    w.impls

(* --- ratios + JSON --------------------------------------------------- *)

(* Speed of every impl relative to its workload's reference row (the
   first impl listed — rbpf/decoded for L1/L2, update/sequential for
   L3).  > 1 means faster than the reference. *)
let ratios rows =
  let by_workload = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if not (Hashtbl.mem by_workload r.wname) then
        Hashtbl.add by_workload r.wname r.ns)
    rows;
  List.map
    (fun r -> (row_key r, Hashtbl.find by_workload r.wname /. r.ns))
    rows

let doc_of_rows rows =
  Schema.doc
    [
      ( "corpus",
        Jsonx.List
          (List.map
             (fun r ->
               Jsonx.Obj
                 [
                   ("name", Jsonx.String (row_key r));
                   ("workload", Jsonx.String r.wname);
                   ("layer", Jsonx.String r.layer);
                   ("runtime", Jsonx.String r.runtime);
                   ("tier", Jsonx.String r.tier);
                   ("ns_per_run", Jsonx.Float r.ns);
                   ("result", Jsonx.String (Int64.to_string r.result));
                 ])
             rows) );
      ( "corpus_ratios",
        Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Float v)) (ratios rows))
      );
    ]

(* --- the baseline gate (pure: exercised directly by tests) ----------- *)

(* Compare current ratios against a committed femto-bench/1 baseline.
   Every committed workload/impl must still exist and must not have lost
   more than [tolerance] of its committed relative speed.  Extra current
   rows (new workloads) are fine — they only gate once committed. *)
let check_baseline_doc ~ratios:current doc =
  match Jsonx.member "corpus_ratios" doc with
  | Some (Jsonx.Obj committed) ->
      List.filter_map
        (fun (key, v) ->
          match Jsonx.to_float v with
          | None -> Some (Printf.sprintf "%s: committed ratio unreadable" key)
          | Some was -> (
              match List.assoc_opt key current with
              | None ->
                  Some
                    (Printf.sprintf "%s: row missing (present in baseline)" key)
              | Some now ->
                  if now < was *. tolerance then
                    Some
                      (Printf.sprintf
                         "%s regressed: %.3fx of reference now vs %.3fx \
                          committed (tolerance %.0f%%)"
                         key now was (tolerance *. 100.))
                  else None))
        committed
  | _ -> [ "baseline has no corpus_ratios section" ]

let check_baseline ~ratios path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let raw = really_input_string ic n in
    close_in ic;
    Jsonx.of_string raw
  with
  | exception Sys_error m ->
      [ Printf.sprintf "baseline %s unreadable: %s" path m ]
  | exception Jsonx.Parse_error m ->
      [ Printf.sprintf "baseline %s malformed: %s" path m ]
  | doc -> check_baseline_doc ~ratios doc

(* --- driver ---------------------------------------------------------- *)

let run ?(layers = layer_names) ?only ~smoke ~json_file ~baseline_file () =
  match
    let selected = workloads ~layers ~only () in
    if selected = [] then begin
      Printf.eprintf "corpus: no workloads selected\n";
      2
    end
    else begin
      let rows = List.concat_map (measure_workload ~smoke) selected in
      Printf.printf "\nCorpus %s(%d workloads, wall-clock ns/run)\n%s\n"
        (if smoke then "smoke " else "")
        (List.length selected) (String.make 58 '-');
      let last_w = ref "" in
      List.iter
        (fun r ->
          if r.wname <> !last_w then begin
            Printf.printf "  %s\n" r.wname;
            last_w := r.wname
          end;
          Printf.printf "    %-24s %14.1f\n"
            (r.runtime ^ "/" ^ r.tier)
            r.ns)
        rows;
      flush stdout;
      Option.iter (Schema.write_doc (doc_of_rows rows)) json_file;
      let failures =
        match baseline_file with
        | None -> []
        | Some path -> check_baseline ~ratios:(ratios rows) path
      in
      if failures <> [] then begin
        List.iter (fun m -> Printf.eprintf "corpus gate: %s\n" m) failures;
        1
      end
      else 0
    end
  with
  | code -> code
  | exception Divergence m ->
      Printf.eprintf "corpus: EQUIVALENCE FAILURE: %s\n" m;
      1
  | exception e ->
      Printf.eprintf "corpus: workload failure: %s\n" (Printexc.to_string e);
      1
