(* fleet/* bench family (PR 9): the sharded fleet simulator.

   The headline scenario is a rolling signed-SUIT firmware campaign over
   10k simulated devices (each with its own engine, CoW kv delta, SUIT
   processor and radio; one firmware image per shard) measured at 1 and
   2 domains:

     fleet/campaign-10k-1d   wall-clock campaign, single domain
     fleet/campaign-10k-2d   same scenario across 2 domains
     fleet/footprint         marginal bytes per resident device vs the
                             single-engine spawn marginal (spawn_bench)

   Hard gates (CI, per push):
     - both campaigns fully complete: zero incomplete devices and zero
       half-installed devices (SUIT sequence vs running firmware)
     - both campaigns produce the same device-state fingerprint — the
       domain count must not change simulated behaviour
     - per-device marginal footprint <= [footprint_x_ceiling] times the
       single-engine spawn figure
     - 2-domain speedup >= [scale_floor] when the host actually has two
       effective cores (skipped loudly on single-core hosts, where an
       extra domain cannot help; CI runners have >= 2)

   plus a regression-only ratio gate against the committed
   bench/fleet-baseline.json (0.6 tolerance, like every other family). *)

module Fleet = Femto_fleet.Fleet
module Jsonx = Femto_obs.Jsonx

let word_bytes = Sys.word_size / 8
let effective_cores () = Domain.recommended_domain_count ()
let scale_floor = 1.3
let footprint_x_ceiling = 2.0
let smoke_devices = 10_000
let smoke_shards = 32

type crow = {
  c_name : string;
  c_domains : int;
  c_wall_ns : float;
  c_updates_ok : int;
  c_ups_core : float; (* accepted updates / s / domain *)
  c_incomplete : int;
  c_half : int;
  c_fingerprint : string;
}

let run_campaign_row ~domains =
  let fleet =
    Fleet.create
      { Fleet.default_config with devices = smoke_devices; shards = smoke_shards; domains }
  in
  let r = Fleet.run_campaign fleet in
  {
    c_name = Printf.sprintf "campaign-10k-%dd" domains;
    c_domains = domains;
    c_wall_ns = r.Fleet.r_wall_ns;
    c_updates_ok = r.Fleet.r_updates_ok;
    c_ups_core =
      float_of_int r.Fleet.r_updates_ok
      /. (r.Fleet.r_wall_ns /. 1e9)
      /. float_of_int domains;
    c_incomplete = r.Fleet.r_incomplete;
    c_half = r.Fleet.r_half_installed;
    c_fingerprint = Fleet.fingerprint fleet;
  }

(* Marginal reachable bytes per device between two fleet sizes at a
   fixed shard count, so per-shard overhead (kernel, network, image
   cache) cancels and only true per-device state remains — the same
   methodology as spawn_bench's bytes/instance. *)
let fleet_marginal_bytes () =
  let words n =
    let f =
      Fleet.create
        { Fleet.default_config with devices = n; shards = 8; telemetry_us = 0 }
    in
    Fleet.resident_words f
  in
  let n1 = 512 and n2 = 4096 in
  float_of_int ((words n2 - words n1) * word_bytes) /. float_of_int (n2 - n1)

(* The PR 8 single-engine figure, measured in-process with the same
   reachable-words method rather than read from a committed file, so the
   comparison is apples-to-apples on this exact build and host. *)
let spawn_marginal_bytes () =
  let ws = Spawn_bench.workloads () in
  Spawn_bench.marginal_bytes ~how:`Spawn
    (Spawn_bench.footprint_workload ws)
    ~n1:100 ~n2:10_000

type footprint = {
  fleet_bytes : float;
  spawn_bytes : float;
  footprint_x : float;
}

let measure_footprint () =
  let fleet_bytes = fleet_marginal_bytes () in
  let spawn_bytes = spawn_marginal_bytes () in
  { fleet_bytes; spawn_bytes; footprint_x = fleet_bytes /. spawn_bytes }

let scale_2x rows =
  match
    ( List.find_opt (fun r -> r.c_domains = 1) rows,
      List.find_opt (fun r -> r.c_domains = 2) rows )
  with
  | Some r1, Some r2 -> r1.c_wall_ns /. r2.c_wall_ns
  | _ -> 1.0

let smoke_json rows fp =
  Schema.doc
    [
      ( "fleet",
        Jsonx.List
          (List.map
             (fun r ->
               Jsonx.Obj
                 [
                   ("name", Jsonx.String ("fleet/" ^ r.c_name));
                   ("devices", Jsonx.Int smoke_devices);
                   ("shards", Jsonx.Int smoke_shards);
                   ("domains", Jsonx.Int r.c_domains);
                   ("cores", Jsonx.Int (effective_cores ()));
                   ("wall_ns", Jsonx.Float r.c_wall_ns);
                   ("updates_ok", Jsonx.Int r.c_updates_ok);
                   ("updates_per_sec_per_core", Jsonx.Float r.c_ups_core);
                   ("incomplete", Jsonx.Int r.c_incomplete);
                   ("half_installed", Jsonx.Int r.c_half);
                   ("fingerprint", Jsonx.String r.c_fingerprint);
                 ])
             rows
          @ [
              Jsonx.Obj
                [
                  ("name", Jsonx.String "fleet/footprint");
                  ("fleet_bytes_per_device", Jsonx.Float fp.fleet_bytes);
                  ("spawn_bytes_per_instance", Jsonx.Float fp.spawn_bytes);
                ];
            ]) );
      ( "fleet_ratios",
        Jsonx.Obj
          [
            ("scale_2x", Jsonx.Float (scale_2x rows));
            ("footprint_x", Jsonx.Float fp.footprint_x);
          ] );
    ]

(* Regression-only gate against the committed baseline: the committed
   scale ratio came from whatever machine generated it, so only a
   drop below 60% of it fails; the footprint multiple must not grow
   past committed / 0.6. *)
let check_baseline rows fp path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let raw = really_input_string ic n in
    close_in ic;
    Jsonx.of_string raw
  with
  | exception Sys_error m ->
      Printf.eprintf "fleet smoke: baseline %s unreadable (%s); skipping\n" path
        m;
      []
  | exception Jsonx.Parse_error m ->
      Printf.eprintf "fleet smoke: baseline %s malformed (%s); skipping\n" path
        m;
      []
  | doc -> (
      let committed name =
        Option.bind (Jsonx.member "fleet_ratios" doc) (fun o ->
            Option.bind (Jsonx.member name o) Jsonx.to_float)
      in
      (match committed "scale_2x" with
      | Some was
        when effective_cores () >= 2 && scale_2x rows < was *. 0.6 ->
          [
            Printf.sprintf
              "fleet scale_2x regressed: %.2fx now vs %.2fx committed"
              (scale_2x rows) was;
          ]
      | _ -> [])
      @
      match committed "footprint_x" with
      | Some was when fp.footprint_x > was /. 0.6 ->
          [
            Printf.sprintf
              "fleet footprint_x regressed: %.2fx now vs %.2fx committed"
              fp.footprint_x was;
          ]
      | _ -> [])

let run_fleet_smoke ~json_file ~baseline_file () =
  let rows = [ run_campaign_row ~domains:1; run_campaign_row ~domains:2 ] in
  let fp = measure_footprint () in
  let cores = effective_cores () in
  Printf.printf "\nFleet smoke (%d devices, %d shards, %d core(s))\n%s\n"
    smoke_devices smoke_shards cores (String.make 48 '-');
  List.iter
    (fun r ->
      Printf.printf
        "  fleet/%-16s %8.1f ms   %6.0f updates/s/core   incomplete %d  half %d\n"
        r.c_name (r.c_wall_ns /. 1e6) r.c_ups_core r.c_incomplete r.c_half)
    rows;
  Printf.printf
    "  fleet/footprint     %.0f B/device vs %.0f B spawn marginal (%.2fx)\n"
    fp.fleet_bytes fp.spawn_bytes fp.footprint_x;
  Printf.printf "  scale 1 -> 2 domains: %.2fx\n" (scale_2x rows);
  flush stdout;
  Option.iter (Schema.write_doc (smoke_json rows fp)) json_file;
  let failures =
    List.concat_map
      (fun r ->
        (if r.c_incomplete > 0 then
           [
             Printf.sprintf "fleet/%s: %d device(s) never completed the update"
               r.c_name r.c_incomplete;
           ]
         else [])
        @
        if r.c_half > 0 then
          [
            Printf.sprintf
              "fleet/%s: %d half-installed device(s) (sequence advanced \
               without the firmware, or vice versa)"
              r.c_name r.c_half;
          ]
        else [])
      rows
    @ (match rows with
      | [ r1; r2 ] when not (String.equal r1.c_fingerprint r2.c_fingerprint) ->
          [
            Printf.sprintf
              "fleet: domain count changed simulated behaviour (%s vs %s)"
              r1.c_fingerprint r2.c_fingerprint;
          ]
      | _ -> [])
    @ (if fp.footprint_x > footprint_x_ceiling then
         [
           Printf.sprintf
             "fleet footprint %.0f B/device is %.2fx the spawn marginal \
              (ceiling %.1fx)"
             fp.fleet_bytes fp.footprint_x footprint_x_ceiling;
         ]
       else [])
    @ (if cores >= 2 then
         if scale_2x rows < scale_floor then
           [
             Printf.sprintf "fleet scale_2x %.2fx below floor %.2fx"
               (scale_2x rows) scale_floor;
           ]
         else []
       else begin
         Printf.printf
           "  (scale floor skipped: single effective core, domains cannot \
            help)\n";
         []
       end)
    @ match baseline_file with None -> [] | Some p -> check_baseline rows fp p
  in
  if failures <> [] then begin
    List.iter (fun m -> Printf.eprintf "fleet smoke: %s\n" m) failures;
    exit 1
  end
