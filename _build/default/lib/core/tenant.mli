(** A tenant: an entity allowed to deploy containers on the device.

    Tenants have limited mutual trust (paper §2, §3); each gets its own
    intermediate key-value store, isolated from other tenants'. *)

type t

val create : string -> t
val id : t -> string
val store : t -> Kvstore.t
