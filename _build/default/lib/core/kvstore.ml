(* Key-value store: the persistence primitive Femto-Containers get in lieu
   of a file system (paper §7).  Values survive between invocations of a
   container.  Three scopes exist, assembled by the hosting engine:
   - local:  private to one container;
   - tenant: shared by the containers of one tenant;
   - global: shared by every container on the device. *)

type t = {
  name : string;
  table : (int32, int64) Hashtbl.t;
  max_entries : int; (* bounded: RAM on the device is finite *)
}

exception Full of string

let create ?(max_entries = 64) name =
  { name; table = Hashtbl.create 16; max_entries }

let name t = t.name
let length t = Hashtbl.length t.table

(* Missing keys read as zero, as in the paper's thread-counter example
   (first fetch of a fresh key yields a zero counter). *)
let fetch t key =
  match Hashtbl.find_opt t.table key with Some v -> v | None -> 0L

let mem t key = Hashtbl.mem t.table key

let store t key value =
  if (not (Hashtbl.mem t.table key)) && Hashtbl.length t.table >= t.max_entries
  then Error (`Store_full t.name)
  else begin
    Hashtbl.replace t.table key value;
    Ok ()
  end

let remove t key = Hashtbl.remove t.table key
let clear t = Hashtbl.reset t.table

let bindings t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> Int32.compare a b)

(* Approximate RAM cost in bytes, for the memory-footprint experiments:
   key (4) + value (8) + per-entry bookkeeping (8). *)
let ram_bytes t = 24 + (Hashtbl.length t.table * 20)
