(** Key-value store — the persistence primitive Femto-Containers get in
    lieu of a file system (paper §7).

    Values survive between invocations of a container.  Three scopes are
    assembled by the hosting engine: local (one container), tenant (one
    tenant's containers), global (the whole device). *)

type t

exception Full of string

val create : ?max_entries:int -> string -> t
(** [create name] makes an empty, bounded store ([max_entries] defaults
    to 64 — device RAM is finite). *)

val name : t -> string
val length : t -> int

val fetch : t -> int32 -> int64
(** Missing keys read as zero (as in the paper's thread-counter
    example). *)

val mem : t -> int32 -> bool

val store : t -> int32 -> int64 -> (unit, [ `Store_full of string ]) result
(** Inserting a new key into a full store fails; overwriting an existing
    key always succeeds. *)

val remove : t -> int32 -> unit
val clear : t -> unit

val bindings : t -> (int32 * int64) list
(** Sorted by key. *)

val ram_bytes : t -> int
(** Approximate RAM cost for the footprint experiments. *)
