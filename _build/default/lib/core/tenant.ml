(* A tenant: an entity allowed to deploy containers on the device.

   Tenants have limited mutual trust (paper §2/§3): each gets its own
   intermediate key-value store, and the isolation tests assert that no
   container can reach another tenant's store. *)

type t = { id : string; store : Kvstore.t }

let create id = { id; store = Kvstore.create (Printf.sprintf "tenant:%s" id) }
let id t = t.id
let store t = t.store
