(** Contracts between a container and the hosting engine (paper §5, §11).

    The OS restricts the set of privileges grantable at a hook, the
    container declares what it requires, and the engine grants the
    intersection.  Ungranted capabilities are simply absent from the
    container's helper table — enforcement at run time. *)

type capability =
  | Kv_local  (** private key-value store access *)
  | Kv_tenant  (** tenant-shared store access *)
  | Kv_global  (** device-global store access *)
  | Time  (** clock/tick helpers *)
  | Sensors  (** SAUL-style sensor reads *)
  | Net_coap  (** CoAP response-formatting helpers *)
  | Debug  (** trace helpers *)

val all : capability list
val capability_name : capability -> string

type t
(** What a container requires. *)

val require : capability list -> t
val required : t -> capability list

type policy
(** What a hook's launchpad offers. *)

val offer : capability list -> policy
val offer_all : policy

val grant : policy -> t -> capability list
(** [required ∩ offered]. *)

val is_granted : policy -> t -> capability -> bool

val denied : policy -> t -> capability list
(** Requested but not offered — surfaced at install time so a deployment
    that will fault at run time is visible early. *)
