(* Contracts between a container and the hosting engine (paper §5, §11).

   The OS restricts the set of privileges that can be granted at a hook,
   the container declares the set it requires, and the engine grants the
   intersection.  A capability that was not granted is simply absent from
   the container's helper table, so using it faults as an unknown helper —
   enforcement at run time, as the paper mandates for third-party
   reprogramming. *)

type capability =
  | Kv_local (* private key-value store access *)
  | Kv_tenant (* tenant-shared store access *)
  | Kv_global (* device-global store access *)
  | Time (* clock/tick helpers *)
  | Sensors (* SAUL-style sensor reads *)
  | Net_coap (* CoAP response formatting helpers *)
  | Debug (* trace/format helpers *)

let all = [ Kv_local; Kv_tenant; Kv_global; Time; Sensors; Net_coap; Debug ]

let capability_name = function
  | Kv_local -> "kv-local"
  | Kv_tenant -> "kv-tenant"
  | Kv_global -> "kv-global"
  | Time -> "time"
  | Sensors -> "sensors"
  | Net_coap -> "net-coap"
  | Debug -> "debug"

type t = { required : capability list }

let require required = { required = List.sort_uniq compare required }
let required t = t.required

(* The engine-side policy: what a hook's launchpad offers. *)
type policy = { offered : capability list }

let offer offered = { offered = List.sort_uniq compare offered }
let offer_all = { offered = all }

(* Granted = required ∩ offered. *)
let grant policy t =
  List.filter (fun cap -> List.mem cap policy.offered) t.required

let is_granted policy t cap = List.mem cap (grant policy t)

(* Capabilities requested but not offered — surfaced to the operator so a
   deployment that will fault at run time is visible at install time. *)
let denied policy t =
  List.filter (fun cap -> not (List.mem cap policy.offered)) t.required
