lib/core/kvstore.mli:
