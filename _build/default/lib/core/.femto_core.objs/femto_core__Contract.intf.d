lib/core/contract.mli:
