lib/core/engine.ml: Container Contract Femto_certfc Femto_platform Femto_rtos Femto_vm Hashtbl Hook Int64 Kvstore List Printf Syscall Tenant
