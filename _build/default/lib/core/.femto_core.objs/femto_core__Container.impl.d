lib/core/container.ml: Contract Femto_certfc Femto_ebpf Femto_platform Femto_vm Kvstore Printf Program Tenant
