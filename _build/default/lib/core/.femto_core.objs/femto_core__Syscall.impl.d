lib/core/syscall.ml: Bytes Contract Femto_vm Int64 Kvstore List Printf
