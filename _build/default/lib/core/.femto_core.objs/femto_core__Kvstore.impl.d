lib/core/kvstore.ml: Hashtbl Int32 List
