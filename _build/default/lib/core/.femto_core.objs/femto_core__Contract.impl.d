lib/core/contract.ml: List
