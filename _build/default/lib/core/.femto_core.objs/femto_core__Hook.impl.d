lib/core/hook.ml: Bytes Container Contract Femto_vm List Printf
