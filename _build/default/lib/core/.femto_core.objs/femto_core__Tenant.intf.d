lib/core/tenant.mli: Kvstore
