lib/core/tenant.ml: Kvstore Printf
