(* MiniScript runtime values — boxed and heap-allocated, as in MicroPython
   and the JS micro-engines; this boxing is a root cause of the RAM and
   speed profile Table 1/2 measure for script runtimes. *)

type t =
  | Int of int64
  | Bool of bool
  | Str of string
  | Array of t array ref (* mutable, growable via push *)
  | Map of (t, t) Hashtbl.t (* dictionaries with int/string/bool keys *)
  | Nil

exception Runtime_error of string

let runtime_error fmt = Format.kasprintf (fun m -> raise (Runtime_error m)) fmt

let type_name = function
  | Int _ -> "int"
  | Bool _ -> "bool"
  | Str _ -> "string"
  | Array _ -> "array"
  | Map _ -> "map"
  | Nil -> "nil"

let truthy = function
  | Bool b -> b
  | Nil -> false
  | Int v -> not (Int64.equal v 0L)
  | Str s -> s <> ""
  | Array a -> Array.length !a > 0
  | Map m -> Hashtbl.length m > 0

let as_int = function
  | Int v -> v
  | v -> runtime_error "expected int, got %s" (type_name v)

let rec equal a b =
  match (a, b) with
  | Int x, Int y -> Int64.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Str x, Str y -> String.equal x y
  | Nil, Nil -> true
  | Array x, Array y ->
      Array.length !x = Array.length !y
      && Array.for_all2 equal !x !y
  | Map x, Map y -> x == y (* maps compare by identity, like JS objects *)
  | _ -> false

let rec to_string = function
  | Int v -> Int64.to_string v
  | Bool b -> string_of_bool b
  | Str s -> s
  | Nil -> "nil"
  | Array a ->
      "[" ^ String.concat ", " (Array.to_list (Array.map to_string !a)) ^ "]"
  | Map m ->
      let entries =
        Hashtbl.fold (fun k v acc -> (to_string k ^ ": " ^ to_string v) :: acc) m []
      in
      "{" ^ String.concat ", " (List.sort compare entries) ^ "}"

(* Shared arithmetic/comparison semantics for both execution profiles. *)
let binop (op : Ast.binop) a b =
  let int_op f =
    match (a, b) with
    | Int x, Int y -> Int (f x y)
    | _ -> runtime_error "arithmetic on %s and %s" (type_name a) (type_name b)
  in
  let cmp_op f =
    match (a, b) with
    | Int x, Int y -> Bool (f (Int64.compare x y) 0)
    | Str x, Str y -> Bool (f (String.compare x y) 0)
    | _ -> runtime_error "comparison on %s and %s" (type_name a) (type_name b)
  in
  match op with
  | Ast.Add -> (
      match (a, b) with
      | Str x, Str y -> Str (x ^ y)
      | Array x, Array y -> Array (ref (Array.append !x !y))
      | _ -> int_op Int64.add)
  | Ast.Sub -> int_op Int64.sub
  | Ast.Mul -> int_op Int64.mul
  | Ast.Div ->
      int_op (fun x y ->
          if Int64.equal y 0L then runtime_error "division by zero"
          else Int64.div x y)
  | Ast.Mod ->
      int_op (fun x y ->
          if Int64.equal y 0L then runtime_error "modulo by zero"
          else Int64.rem x y)
  | Ast.Band -> int_op Int64.logand
  | Ast.Bor -> int_op Int64.logor
  | Ast.Bxor -> int_op Int64.logxor
  | Ast.Shl -> int_op (fun x y -> Int64.shift_left x (Int64.to_int y land 63))
  | Ast.Shr -> int_op (fun x y -> Int64.shift_right_logical x (Int64.to_int y land 63))
  | Ast.Eq -> Bool (equal a b)
  | Ast.Ne -> Bool (not (equal a b))
  | Ast.Lt -> cmp_op ( < )
  | Ast.Le -> cmp_op ( <= )
  | Ast.Gt -> cmp_op ( > )
  | Ast.Ge -> cmp_op ( >= )
  | Ast.And_also | Ast.Or_else ->
      (* short-circuit forms are handled by the evaluators *)
      runtime_error "internal: logical op reached binop"

let unop op v =
  match ((op : Ast.unop), v) with
  | Ast.Neg, Int x -> Int (Int64.neg x)
  | Ast.Not, v -> Bool (not (truthy v))
  | Ast.Neg, v -> runtime_error "cannot negate %s" (type_name v)

(* Map keys are restricted to immutable scalar values. *)
let check_map_key = function
  | (Int _ | Str _ | Bool _) as k -> k
  | k -> runtime_error "%s cannot be a map key" (type_name k)

let index_get target index =
  match (target, index) with
  | Map m, key -> (
      match Hashtbl.find_opt m (check_map_key key) with
      | Some v -> v
      | None -> Nil)
  | Array a, Int i ->
      let i = Int64.to_int i in
      if i < 0 || i >= Array.length !a then runtime_error "index %d out of bounds" i
      else !a.(i)
  | Str s, Int i ->
      let i = Int64.to_int i in
      if i < 0 || i >= String.length s then runtime_error "index %d out of bounds" i
      else Int (Int64.of_int (Char.code s.[i]))
  | _ -> runtime_error "cannot index %s with %s" (type_name target) (type_name index)

let index_set target index value =
  match (target, index) with
  | Map m, key -> Hashtbl.replace m (check_map_key key) value
  | Array a, Int i ->
      let i = Int64.to_int i in
      if i < 0 || i >= Array.length !a then runtime_error "index %d out of bounds" i
      else !a.(i) <- value
  | _ -> runtime_error "cannot assign into %s" (type_name target)

(* Builtins shared by both profiles. *)
let builtin name args =
  match (name, args) with
  | "len", [ Array a ] -> Some (Int (Int64.of_int (Array.length !a)))
  | "len", [ Str s ] -> Some (Int (Int64.of_int (String.length s)))
  | "push", [ Array a; v ] ->
      a := Array.append !a [| v |];
      Some Nil
  | "byte", [ Str s; Int i ] ->
      let i = Int64.to_int i in
      if i < 0 || i >= String.length s then runtime_error "byte index out of bounds"
      else Some (Int (Int64.of_int (Char.code s.[i])))
  | "map", [] -> Some (Map (Hashtbl.create 8))
  | "mhas", [ Map m; k ] -> Some (Bool (Hashtbl.mem m (check_map_key k)))
  | "mdel", [ Map m; k ] ->
      Hashtbl.remove m (check_map_key k);
      Some Nil
  | "keys", [ Map m ] ->
      let ks = Hashtbl.fold (fun k _ acc -> k :: acc) m [] in
      Some (Array (ref (Array.of_list (List.sort compare ks))))
  | "len", [ Map m ] -> Some (Int (Int64.of_int (Hashtbl.length m)))
  | ("map" | "mhas" | "mdel" | "keys"), _ ->
      runtime_error "bad arguments to %s" name
  | "min", [ Int a; Int b ] -> Some (Int (if Int64.compare a b <= 0 then a else b))
  | "max", [ Int a; Int b ] -> Some (Int (if Int64.compare a b >= 0 then a else b))
  | "abs", [ Int a ] -> Some (Int (Int64.abs a))
  | "str", [ v ] -> Some (Str (to_string v))
  | "chr", [ Int c ] ->
      let c = Int64.to_int c in
      if c < 0 || c > 255 then runtime_error "chr out of range"
      else Some (Str (String.make 1 (Char.chr c)))
  | ("len" | "push" | "byte" | "min" | "max" | "abs" | "str" | "chr"), _ ->
      runtime_error "bad arguments to %s" name
  | _ -> None
