(* MiniScript bytecode compiler — the MicroPython-style profile's front
   half: source is parsed and compiled to a stack bytecode once at load
   (the dominant cold-start cost Table 2 measures), then interpreted by
   [Stack_vm]. *)

open Ast

type op =
  | Push_int of int64
  | Push_bool of bool
  | Push_str of string
  | Push_nil
  | Load of int (* local slot *)
  | Store of int
  | Load_global of string
  | Store_global of string
  | Bin of binop (* everything except the short-circuit forms *)
  | Un of unop
  | Make_array of int
  | Index_get
  | Index_set (* stack: target index value *)
  | Jump of int (* absolute *)
  | Jump_if_false of int
  | Jump_if_true of int
  | Call_fn of string * int
  | Ret
  | Pop
  | Dup

type compiled_func = {
  fname : string;
  arity : int;
  nslots : int; (* params + lets *)
  code : op array;
}

type compiled = {
  functions : (string, compiled_func) Hashtbl.t;
  top : op array; (* top-level statements as a zero-arg body *)
}

exception Compile_error of string

let compile_error fmt = Format.kasprintf (fun m -> raise (Compile_error m)) fmt

(* Minimal growable op buffer. *)
module Buffer_ops = struct
  type 'a t = { mutable items : 'a array; mutable len : int }

  let create () = { items = [||]; len = 0 }

  let add t item =
    if t.len >= Array.length t.items then begin
      let capacity = max 16 (2 * Array.length t.items) in
      let items = Array.make capacity item in
      Array.blit t.items 0 items 0 t.len;
      t.items <- items
    end;
    t.items.(t.len) <- item;
    t.len <- t.len + 1

  let set t i item = t.items.(i) <- item
  let length t = t.len
  let contents t = Array.sub t.items 0 t.len
end

type loop_ctx = {
  continue_target : int; (* jump target of 'continue' *)
  mutable break_sites : int list; (* Jump placeholders to patch to the end *)
  mutable continue_sites : int list; (* for-loops: patched to the step code *)
  patch_continue : bool; (* true when continue_target is not yet known *)
}

type fn_ctx = {
  slots : (string, int) Hashtbl.t;
  mutable next_slot : int;
  code : op Buffer_ops.t;
  top_level : bool;
  mutable loops : loop_ctx list; (* innermost first *)
}

let slot_of ctx name = Hashtbl.find_opt ctx.slots name

let declare ctx name =
  match slot_of ctx name with
  | Some slot -> slot
  | None ->
      let slot = ctx.next_slot in
      ctx.next_slot <- ctx.next_slot + 1;
      Hashtbl.replace ctx.slots name slot;
      slot

let emit ctx op = Buffer_ops.add ctx.code op
let here ctx = Buffer_ops.length ctx.code

(* emit a placeholder jump, patch later *)
let emit_jump ctx make =
  let at = here ctx in
  emit ctx (make 0);
  at

let patch ctx at target =
  let op =
    match ctx.code.Buffer_ops.items.(at) with
    | Jump _ -> Jump target
    | Jump_if_false _ -> Jump_if_false target
    | Jump_if_true _ -> Jump_if_true target
    | _ -> compile_error "patching a non-jump"
  in
  Buffer_ops.set ctx.code at op

let rec compile_expr ctx expr =
  match expr with
  | Int v -> emit ctx (Push_int v)
  | Bool b -> emit ctx (Push_bool b)
  | Str s -> emit ctx (Push_str s)
  | Nil -> emit ctx Push_nil
  | Var name -> (
      match slot_of ctx name with
      | Some slot -> emit ctx (Load slot)
      | None -> emit ctx (Load_global name))
  | Array_lit items ->
      List.iter (compile_expr ctx) items;
      emit ctx (Make_array (List.length items))
  | Index (target, index) ->
      compile_expr ctx target;
      compile_expr ctx index;
      emit ctx Index_get
  | Unary (op, e) ->
      compile_expr ctx e;
      emit ctx (Un op)
  | Binary (And_also, a, b) ->
      compile_expr ctx a;
      let short = emit_jump ctx (fun target -> Jump_if_false target) in
      compile_expr ctx b;
      let done_ = emit_jump ctx (fun target -> Jump target) in
      patch ctx short (here ctx);
      emit ctx (Push_bool false);
      patch ctx done_ (here ctx)
  | Binary (Or_else, a, b) ->
      compile_expr ctx a;
      let short = emit_jump ctx (fun target -> Jump_if_true target) in
      compile_expr ctx b;
      let done_ = emit_jump ctx (fun target -> Jump target) in
      patch ctx short (here ctx);
      emit ctx (Push_bool true);
      patch ctx done_ (here ctx)
  | Binary (op, a, b) ->
      compile_expr ctx a;
      compile_expr ctx b;
      emit ctx (Bin op)
  | Call (name, args) ->
      List.iter (compile_expr ctx) args;
      emit ctx (Call_fn (name, List.length args))

let rec compile_stmt ctx stmt =
  match stmt with
  | Let (name, e) ->
      compile_expr ctx e;
      if ctx.top_level then emit ctx (Store_global name)
      else emit ctx (Store (declare ctx name))
  | Assign (name, e) ->
      compile_expr ctx e;
      (match slot_of ctx name with
      | Some slot -> emit ctx (Store slot)
      | None -> emit ctx (Store_global name))
  | Assign_index (target, index, e) ->
      compile_expr ctx target;
      compile_expr ctx index;
      compile_expr ctx e;
      emit ctx Index_set
  | If (cond, then_, else_) ->
      compile_expr ctx cond;
      let to_else = emit_jump ctx (fun target -> Jump_if_false target) in
      List.iter (compile_stmt ctx) then_;
      let to_end = emit_jump ctx (fun target -> Jump target) in
      patch ctx to_else (here ctx);
      List.iter (compile_stmt ctx) else_;
      patch ctx to_end (here ctx)
  | While (cond, body) ->
      let top = here ctx in
      compile_expr ctx cond;
      let exit_jump = emit_jump ctx (fun target -> Jump_if_false target) in
      let loop =
        { continue_target = top; break_sites = []; continue_sites = [];
          patch_continue = false }
      in
      ctx.loops <- loop :: ctx.loops;
      List.iter (compile_stmt ctx) body;
      ctx.loops <- List.tl ctx.loops;
      emit ctx (Jump top);
      patch ctx exit_jump (here ctx);
      List.iter (fun at -> patch ctx at (here ctx)) loop.break_sites
  | For (init, cond, step, body) ->
      (match init with Some s -> compile_stmt ctx s | None -> ());
      let top = here ctx in
      let exit_jump =
        match cond with
        | Some c ->
            compile_expr ctx c;
            Some (emit_jump ctx (fun target -> Jump_if_false target))
        | None -> None
      in
      let loop =
        { continue_target = 0; break_sites = []; continue_sites = [];
          patch_continue = true }
      in
      ctx.loops <- loop :: ctx.loops;
      List.iter (compile_stmt ctx) body;
      ctx.loops <- List.tl ctx.loops;
      (* 'continue' jumps here: the step code, then back to the test *)
      let step_at = here ctx in
      List.iter (fun at -> patch ctx at step_at) loop.continue_sites;
      (match step with Some s -> compile_stmt ctx s | None -> ());
      emit ctx (Jump top);
      (match exit_jump with Some at -> patch ctx at (here ctx) | None -> ());
      List.iter (fun at -> patch ctx at (here ctx)) loop.break_sites
  | Break -> (
      match ctx.loops with
      | loop :: _ -> loop.break_sites <- emit_jump ctx (fun t -> Jump t) :: loop.break_sites
      | [] -> compile_error "break outside a loop")
  | Continue -> (
      match ctx.loops with
      | loop :: _ ->
          if loop.patch_continue then
            loop.continue_sites <-
              emit_jump ctx (fun t -> Jump t) :: loop.continue_sites
          else emit ctx (Jump loop.continue_target)
      | [] -> compile_error "continue outside a loop")
  | Return None ->
      emit ctx Push_nil;
      emit ctx Ret
  | Return (Some e) ->
      compile_expr ctx e;
      emit ctx Ret
  | Expr_stmt e ->
      compile_expr ctx e;
      emit ctx Pop

let compile_func (f : func) =
  let ctx =
    { slots = Hashtbl.create 8; next_slot = 0; code = Buffer_ops.create ();
      top_level = false; loops = [] }
  in
  List.iter (fun p -> ignore (declare ctx p)) f.params;
  List.iter (compile_stmt ctx) f.body;
  emit ctx Push_nil;
  emit ctx Ret;
  {
    fname = f.name;
    arity = List.length f.params;
    nslots = ctx.next_slot;
    code = Buffer_ops.contents ctx.code;
  }

let compile source =
  let program = Parser.parse source in
  let functions = Hashtbl.create 8 in
  List.iter
    (fun f -> Hashtbl.replace functions f.name (compile_func f))
    program.funcs;
  let top_ctx =
    { slots = Hashtbl.create 8; next_slot = 0; code = Buffer_ops.create ();
      top_level = true; loops = [] }
  in
  List.iter (compile_stmt top_ctx) program.top;
  emit top_ctx Push_nil;
  emit top_ctx Ret;
  { functions; top = Buffer_ops.contents top_ctx.code }

(* Bytecode size in "code units", the script analogue of Table 2's code
   size column. *)
let code_size compiled =
  Hashtbl.fold (fun _ (f : compiled_func) acc -> acc + Array.length f.code) compiled.functions
    (Array.length compiled.top)
