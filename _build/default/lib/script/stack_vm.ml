(* MiniScript bytecode interpreter — the MicroPython-style back half:
   a straight fetch/dispatch loop over compiled stack ops, with boxed
   values and global lookups through a hashtable. *)

open Compile

type t = {
  compiled : Compile.compiled;
  globals : (string, Value.t) Hashtbl.t;
  mutable steps : int;
  max_steps : int;
}

let load ?(max_steps = 50_000_000) source =
  { compiled = Compile.compile source; globals = Hashtbl.create 8; steps = 0;
    max_steps }

let of_compiled ?(max_steps = 50_000_000) compiled =
  { compiled; globals = Hashtbl.create 8; steps = 0; max_steps }

exception Returned of Value.t

let rec exec_code t code slots =
  let stack = ref [] in
  let push v = stack := v :: !stack in
  let pop () =
    match !stack with
    | v :: rest ->
        stack := rest;
        v
    | [] -> Value.runtime_error "operand stack underflow"
  in
  let pc = ref 0 in
  let len = Array.length code in
  (try
     while !pc < len do
       t.steps <- t.steps + 1;
       if t.steps > t.max_steps then Value.runtime_error "step budget exhausted";
       let op = Array.unsafe_get code !pc in
       incr pc;
       match op with
       | Push_int v -> push (Value.Int v)
       | Push_bool b -> push (Value.Bool b)
       | Push_str s -> push (Value.Str s)
       | Push_nil -> push Value.Nil
       | Load slot -> push slots.(slot)
       | Store slot -> slots.(slot) <- pop ()
       | Load_global name -> (
           match Hashtbl.find_opt t.globals name with
           | Some v -> push v
           | None -> Value.runtime_error "unbound global %s" name)
       | Store_global name -> Hashtbl.replace t.globals name (pop ())
       | Bin op ->
           let b = pop () in
           let a = pop () in
           push (Value.binop op a b)
       | Un op -> push (Value.unop op (pop ()))
       | Make_array n ->
           let items = Array.make n Value.Nil in
           for i = n - 1 downto 0 do
             items.(i) <- pop ()
           done;
           push (Value.Array (ref items))
       | Index_get ->
           let index = pop () in
           let target = pop () in
           push (Value.index_get target index)
       | Index_set ->
           let value = pop () in
           let index = pop () in
           let target = pop () in
           Value.index_set target index value
       | Jump target -> pc := target
       | Jump_if_false target -> if not (Value.truthy (pop ())) then pc := target
       | Jump_if_true target -> if Value.truthy (pop ()) then pc := target
       | Call_fn (name, argc) -> (
           let rec take n acc =
             if n = 0 then acc else take (n - 1) (pop () :: acc)
           in
           let args = take argc [] in
           match Value.builtin name args with
           | Some result -> push result
           | None -> (
               match Hashtbl.find_opt t.compiled.functions name with
               | None -> Value.runtime_error "unknown function %s" name
               | Some f ->
                   if f.arity <> argc then
                     Value.runtime_error "%s expects %d arguments" name f.arity;
                   push (call_compiled t f args)))
       | Ret -> raise (Returned (pop ()))
       | Pop -> ignore (pop ())
       | Dup -> (
           match !stack with
           | v :: _ -> push v
           | [] -> Value.runtime_error "dup on empty stack")
     done;
     Value.Nil
   with Returned v -> v)

and call_compiled t f args =
  let slots = Array.make (max f.nslots 1) Value.Nil in
  List.iteri (fun i v -> slots.(i) <- v) args;
  exec_code t f.code slots

(* Run top-level code, then optionally an entry function. *)
let run ?entry ?(args = []) t =
  t.steps <- 0;
  match exec_code t t.compiled.top [||] with
  | exception Value.Runtime_error m -> Error m
  | _ -> (
      match entry with
      | None -> Ok Value.Nil
      | Some name -> (
          match Hashtbl.find_opt t.compiled.functions name with
          | None -> Error (Printf.sprintf "unknown function %s" name)
          | Some f -> (
              if f.arity <> List.length args then
                Error (Printf.sprintf "%s expects %d arguments" name f.arity)
              else
                try Ok (call_compiled t f args)
                with Value.Runtime_error m -> Error m)))

let call t name args =
  t.steps <- 0;
  match Hashtbl.find_opt t.compiled.functions name with
  | None -> Error (Printf.sprintf "unknown function %s" name)
  | Some f -> (
      if f.arity <> List.length args then
        Error (Printf.sprintf "%s expects %d arguments" name f.arity)
      else
        try Ok (call_compiled t f args)
        with Value.Runtime_error m -> Error m)
