(* MiniScript lexer. *)

type token =
  | INT of int64
  | STRING of string
  | IDENT of string
  | KW_FN
  | KW_LET
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_BREAK
  | KW_CONTINUE
  | KW_RETURN
  | KW_TRUE
  | KW_FALSE
  | KW_NIL
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | ASSIGN
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | BAND
  | BOR
  | BXOR
  | SHL
  | SHR
  | BANG
  | EOF

exception Lex_error of { line : int; message : string }

let lex_error line fmt =
  Format.kasprintf (fun message -> raise (Lex_error { line; message })) fmt

let keywords =
  [
    ("fn", KW_FN); ("let", KW_LET); ("if", KW_IF); ("else", KW_ELSE);
    ("while", KW_WHILE); ("for", KW_FOR); ("break", KW_BREAK);
    ("continue", KW_CONTINUE); ("return", KW_RETURN); ("true", KW_TRUE);
    ("false", KW_FALSE); ("nil", KW_NIL);
  ]

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

(* Tokens paired with their source line, for error reporting. *)
let tokenize source =
  let n = String.length source in
  let tokens = ref [] in
  let line = ref 1 in
  let push t = tokens := (t, !line) :: !tokens in
  let i = ref 0 in
  let peek () = if !i + 1 < n then Some source.[!i + 1] else None in
  while !i < n do
    let c = source.[!i] in
    (match c with
    | ' ' | '\t' | '\r' -> incr i
    | '\n' ->
        incr line;
        incr i
    | '#' ->
        (* comment to end of line *)
        while !i < n && source.[!i] <> '\n' do incr i done
    | '/' when peek () = Some '/' ->
        while !i < n && source.[!i] <> '\n' do incr i done
    | '(' -> push LPAREN; incr i
    | ')' -> push RPAREN; incr i
    | '{' -> push LBRACE; incr i
    | '}' -> push RBRACE; incr i
    | '[' -> push LBRACKET; incr i
    | ']' -> push RBRACKET; incr i
    | ',' -> push COMMA; incr i
    | ';' -> push SEMI; incr i
    | '+' -> push PLUS; incr i
    | '-' -> push MINUS; incr i
    | '*' -> push STAR; incr i
    | '/' -> push SLASH; incr i
    | '%' -> push PERCENT; incr i
    | '^' -> push BXOR; incr i
    | '!' ->
        if peek () = Some '=' then begin push NE; i := !i + 2 end
        else begin push BANG; incr i end
    | '=' ->
        if peek () = Some '=' then begin push EQ; i := !i + 2 end
        else begin push ASSIGN; incr i end
    | '<' -> (
        match peek () with
        | Some '=' -> push LE; i := !i + 2
        | Some '<' -> push SHL; i := !i + 2
        | _ -> push LT; incr i)
    | '>' -> (
        match peek () with
        | Some '=' -> push GE; i := !i + 2
        | Some '>' -> push SHR; i := !i + 2
        | _ -> push GT; incr i)
    | '&' ->
        if peek () = Some '&' then begin push ANDAND; i := !i + 2 end
        else begin push BAND; incr i end
    | '|' ->
        if peek () = Some '|' then begin push OROR; i := !i + 2 end
        else begin push BOR; incr i end
    | '"' ->
        let buf = Buffer.create 16 in
        incr i;
        let rec scan () =
          if !i >= n then lex_error !line "unterminated string"
          else
            match source.[!i] with
            | '"' -> incr i
            | '\\' -> (
                incr i;
                if !i >= n then lex_error !line "unterminated escape";
                (match source.[!i] with
                | 'n' -> Buffer.add_char buf '\n'
                | 't' -> Buffer.add_char buf '\t'
                | '\\' -> Buffer.add_char buf '\\'
                | '"' -> Buffer.add_char buf '"'
                | c -> lex_error !line "bad escape \\%c" c);
                incr i;
                scan ())
            | c ->
                Buffer.add_char buf c;
                incr i;
                scan ()
        in
        scan ();
        push (STRING (Buffer.contents buf))
    | c when is_digit c ->
        let start = !i in
        while !i < n && (is_digit source.[!i] || source.[!i] = 'x'
                         || (source.[!i] >= 'a' && source.[!i] <= 'f')
                         || (source.[!i] >= 'A' && source.[!i] <= 'F')) do
          incr i
        done;
        let text = String.sub source start (!i - start) in
        (match Int64.of_string_opt text with
        | Some v -> push (INT v)
        | None -> lex_error !line "bad number %S" text)
    | c when is_ident_start c ->
        let start = !i in
        while !i < n && is_ident_char source.[!i] do incr i done;
        let text = String.sub source start (!i - start) in
        (match List.assoc_opt text keywords with
        | Some kw -> push kw
        | None -> push (IDENT text))
    | c -> lex_error !line "unexpected character %C" c)
  done;
  push EOF;
  List.rev !tokens
