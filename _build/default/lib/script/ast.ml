(* MiniScript: the dynamically-typed scripting language standing in for
   MicroPython and RIOT.js in the paper's §6 baseline comparison (see
   DESIGN.md, substitutions).

   One front-end (lexer/parser), two execution profiles:
   - [Eval_tree]  — direct AST interpretation (the RIOT.js architecture);
   - [Compile] + [Stack_vm] — bytecode compilation then interpretation
     (the MicroPython architecture). *)

type unop = Neg | Not

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And_also (* && short-circuit *)
  | Or_else (* || short-circuit *)
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr

type expr =
  | Int of int64
  | Bool of bool
  | Str of string
  | Nil
  | Var of string
  | Array_lit of expr list
  | Index of expr * expr
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list

type stmt =
  | Let of string * expr
  | Assign of string * expr
  | Assign_index of expr * expr * expr (* target[index] = value *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
    (* for (init; cond; step) { body } *)
  | Break
  | Continue
  | Return of expr option
  | Expr_stmt of expr

type func = { name : string; params : string list; body : stmt list }

(* A program is a list of function definitions plus top-level statements. *)
type program = { funcs : func list; top : stmt list }
