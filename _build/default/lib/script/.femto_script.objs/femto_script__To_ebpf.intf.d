lib/script/to_ebpf.mli: Femto_ebpf
