lib/script/value.mli: Ast Format Hashtbl
