lib/script/lexer.ml: Buffer Format Int64 List String
