lib/script/value.ml: Array Ast Bool Char Format Hashtbl Int64 List String
