lib/script/eval_tree.ml: Array Ast Hashtbl List Parser Printf Value
