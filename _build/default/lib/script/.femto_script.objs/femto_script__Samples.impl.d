lib/script/samples.ml: Array Bytes Int64 Value
