lib/script/parser.ml: Ast Format Lexer List
