lib/script/ast.ml:
