lib/script/eval_tree.mli: Value
