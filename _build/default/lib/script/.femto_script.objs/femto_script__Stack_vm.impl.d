lib/script/stack_vm.ml: Array Compile Hashtbl List Printf Value
