lib/script/compile.ml: Array Ast Format Hashtbl List Parser
