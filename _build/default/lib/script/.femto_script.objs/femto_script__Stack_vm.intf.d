lib/script/stack_vm.mli: Compile Value
