lib/script/to_ebpf.ml: Array Ast Femto_ebpf Format Hashtbl Int32 Int64 List Parser
