(** MiniScript bytecode interpreter — the MicroPython-style profile:
    source is parsed and compiled to stack bytecode once at load (the
    dominant cold-start cost), then executed by a fetch/dispatch loop. *)

type t

val load : ?max_steps:int -> string -> t
(** Parse and compile [source]; raises [Parser.Parse_error],
    [Lexer.Lex_error] or [Compile.Compile_error]. *)

val of_compiled : ?max_steps:int -> Compile.compiled -> t

val call : t -> string -> Value.t list -> (Value.t, string) result
val run : ?entry:string -> ?args:Value.t list -> t -> (Value.t, string) result
