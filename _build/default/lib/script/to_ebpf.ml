(* MiniScript -> eBPF compiler.

   The paper points out that any language with an eBPF backend can target
   Femto-Containers (§8: "any other target language supported by LLVM
   could be used ... such as C++ and Rust").  This module is that story
   for MiniScript: compile the integer fragment of the language to eBPF
   bytecode that passes the pre-flight verifier and runs in the sandbox,
   so containers can be *written* at high level and *executed* at rBPF
   cost.

   Supported: integer arithmetic and comparisons (eBPF semantics: 64-bit
   wraparound, unsigned division), booleans as 0/1, let/assign, if/else,
   while/for/break/continue, return, calls to [bpf_*] helpers (up to five
   arguments), and the inline builtins [min]/[max]/[abs].  Strings,
   arrays, maps and user-function calls have no eBPF representation and
   are reported as compile errors.

   Layout: locals and expression temporaries live on the VM stack below
   r10 (slot i at [r10 - 8*(i+1)]); expression results materialize in r0
   with r1 as the secondary operand register. *)

open Ast

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun m -> raise (Unsupported m)) fmt

module E = Femto_ebpf
module I = E.Insn
module Op = E.Opcode

(* --- emitter with label patching (same pattern as the wasm flattener) --- *)

type emitter = {
  mutable insns : I.t array;
  mutable len : int;
  mutable max_slot : int; (* high-water mark of stack slots used *)
}

let emit e insn =
  if e.len >= Array.length e.insns then begin
    let capacity = max 32 (2 * Array.length e.insns) in
    let insns = Array.make capacity (I.make 0) in
    Array.blit e.insns 0 insns 0 e.len;
    e.insns <- insns
  end;
  e.insns.(e.len) <- insn;
  e.len <- e.len + 1

let here e = e.len

(* Emit a jump with a to-be-patched target; returns its index. *)
let emit_jump e opcode ~dst ~src ~imm =
  let at = e.len in
  emit e (I.make opcode ~dst ~src ~imm);
  at

let patch e at target =
  let insn = e.insns.(at) in
  e.insns.(at) <- { insn with I.offset = target - at - 1 }

let slot_offset slot = -8 * (slot + 1)

let touch_slot e slot =
  if slot >= e.max_slot then e.max_slot <- slot + 1;
  if slot_offset slot < -512 then
    unsupported "expression/locals exceed the 512 B VM stack"

let store_slot e ~src slot =
  touch_slot e slot;
  emit e (I.make (Op.stx Op.DW) ~dst:10 ~src ~offset:(slot_offset slot))

let load_slot e ~dst slot =
  emit e (I.make (Op.ldx Op.DW) ~dst ~src:10 ~offset:(slot_offset slot))

let mov_imm e ~dst v =
  if Int64.compare v (-2147483648L) >= 0 && Int64.compare v 2147483647L <= 0
  then emit e (I.make (Op.alu64 Op.Mov Op.Src_imm) ~dst ~imm:(Int64.to_int32 v))
  else begin
    let head, tail = I.lddw_pair dst v in
    emit e head;
    emit e tail
  end

(* --- compilation environment --- *)

type env = {
  e : emitter;
  slots : (string, int) Hashtbl.t; (* variable -> stack slot *)
  mutable next_slot : int;
  helpers : string -> int option;
  (* innermost loop: (continue sites to patch or target, break sites) *)
  mutable loops : loop list;
}

and loop = {
  mutable break_sites : int list;
  mutable continue_sites : int list;
  continue_target : int option; (* Some pc for while; None until known (for) *)
}

let slot_of env name =
  match Hashtbl.find_opt env.slots name with
  | Some slot -> slot
  | None -> unsupported "unbound variable %s" name

let declare env name =
  match Hashtbl.find_opt env.slots name with
  | Some slot -> slot
  | None ->
      let slot = env.next_slot in
      env.next_slot <- env.next_slot + 1;
      touch_slot env.e slot;
      Hashtbl.replace env.slots name slot;
      slot

let binop_opcode = function
  | Add -> Some (Op.alu64 Op.Add Op.Src_reg)
  | Sub -> Some (Op.alu64 Op.Sub Op.Src_reg)
  | Mul -> Some (Op.alu64 Op.Mul Op.Src_reg)
  | Div -> Some (Op.alu64 Op.Div Op.Src_reg) (* eBPF: unsigned *)
  | Mod -> Some (Op.alu64 Op.Mod Op.Src_reg)
  | Band -> Some (Op.alu64 Op.And Op.Src_reg)
  | Bor -> Some (Op.alu64 Op.Or Op.Src_reg)
  | Bxor -> Some (Op.alu64 Op.Xor Op.Src_reg)
  | Shl -> Some (Op.alu64 Op.Lsh Op.Src_reg)
  | Shr -> Some (Op.alu64 Op.Rsh Op.Src_reg)
  | Eq | Ne | Lt | Le | Gt | Ge | And_also | Or_else -> None

let compare_opcode = function
  | Eq -> Some (Op.jmp Op.Jeq Op.Src_reg)
  | Ne -> Some (Op.jmp Op.Jne Op.Src_reg)
  | Lt -> Some (Op.jmp Op.Jslt Op.Src_reg)
  | Le -> Some (Op.jmp Op.Jsle Op.Src_reg)
  | Gt -> Some (Op.jmp Op.Jsgt Op.Src_reg)
  | Ge -> Some (Op.jmp Op.Jsge Op.Src_reg)
  | _ -> None

(* Compile [expr] into r0.  [depth] counts live expression temporaries
   stacked above the locals. *)
let rec compile_expr env ~depth expr =
  let e = env.e in
  match expr with
  | Int v -> mov_imm e ~dst:0 v
  | Bool b -> mov_imm e ~dst:0 (if b then 1L else 0L)
  | Nil -> mov_imm e ~dst:0 0L
  | Str _ -> unsupported "strings have no eBPF representation"
  | Array_lit _ -> unsupported "arrays have no eBPF representation"
  | Index _ -> unsupported "indexing has no eBPF representation"
  | Var name -> load_slot e ~dst:0 (slot_of env name)
  | Unary (Neg, inner) ->
      compile_expr env ~depth inner;
      emit e (I.make (Op.alu64 Op.Neg Op.Src_imm) ~dst:0)
  | Unary (Not, inner) ->
      compile_expr env ~depth inner;
      (* r0 <- (r0 == 0) *)
      let j = emit_jump e (Op.jmp Op.Jeq Op.Src_imm) ~dst:0 ~src:0 ~imm:0l in
      mov_imm e ~dst:0 0L;
      let skip = emit_jump e Op.ja ~dst:0 ~src:0 ~imm:0l in
      patch e j (here e);
      mov_imm e ~dst:0 1L;
      patch e skip (here e)
  | Binary (And_also, a, b) ->
      compile_expr env ~depth a;
      let short = emit_jump e (Op.jmp Op.Jeq Op.Src_imm) ~dst:0 ~src:0 ~imm:0l in
      compile_expr env ~depth b;
      (* normalize to 0/1 *)
      let j = emit_jump e (Op.jmp Op.Jeq Op.Src_imm) ~dst:0 ~src:0 ~imm:0l in
      mov_imm e ~dst:0 1L;
      let skip = emit_jump e Op.ja ~dst:0 ~src:0 ~imm:0l in
      patch e j (here e);
      patch e short (here e);
      mov_imm e ~dst:0 0L;
      patch e skip (here e)
  | Binary (Or_else, a, b) ->
      compile_expr env ~depth a;
      let short = emit_jump e (Op.jmp Op.Jne Op.Src_imm) ~dst:0 ~src:0 ~imm:0l in
      compile_expr env ~depth b;
      let j = emit_jump e (Op.jmp Op.Jne Op.Src_imm) ~dst:0 ~src:0 ~imm:0l in
      mov_imm e ~dst:0 0L;
      let skip = emit_jump e Op.ja ~dst:0 ~src:0 ~imm:0l in
      patch e j (here e);
      patch e short (here e);
      mov_imm e ~dst:0 1L;
      patch e skip (here e)
  | Binary (op, a, b) -> (
      let tmp = env.next_slot + depth in
      compile_expr env ~depth a;
      store_slot e ~src:0 tmp;
      compile_expr env ~depth:(depth + 1) b;
      (* r1 <- rhs, r0 <- lhs *)
      emit e (I.make (Op.alu64 Op.Mov Op.Src_reg) ~dst:1 ~src:0);
      load_slot e ~dst:0 tmp;
      match binop_opcode op with
      | Some opcode -> emit e (I.make opcode ~dst:0 ~src:1)
      | None -> (
          match compare_opcode op with
          | Some jump_opcode ->
              let j = emit_jump e jump_opcode ~dst:0 ~src:1 ~imm:0l in
              mov_imm e ~dst:0 0L;
              let skip = emit_jump e Op.ja ~dst:0 ~src:0 ~imm:0l in
              patch e j (here e);
              mov_imm e ~dst:0 1L;
              patch e skip (here e)
          | None -> unsupported "operator not representable"))
  | Call (("load8" | "load16" | "load32" | "load64") as width, [ addr ]) ->
      (* raw memory read through the container's allow-list — how scripts
         reach the hook context *)
      compile_expr env ~depth addr;
      let size =
        match width with
        | "load8" -> Op.B
        | "load16" -> Op.H
        | "load32" -> Op.W
        | _ -> Op.DW
      in
      emit e (I.make (Op.ldx size) ~dst:0 ~src:0)
  | Call ("store64", [ addr; value ]) ->
      let tmp = env.next_slot + depth in
      compile_expr env ~depth addr;
      store_slot e ~src:0 tmp;
      compile_expr env ~depth:(depth + 1) value;
      load_slot e ~dst:1 tmp;
      emit e (I.make (Op.stx Op.DW) ~dst:1 ~src:0);
      mov_imm e ~dst:0 0L
  | Call ("min", [ a; b ]) -> compile_minmax env ~depth (Op.jmp Op.Jsle Op.Src_reg) a b
  | Call ("max", [ a; b ]) -> compile_minmax env ~depth (Op.jmp Op.Jsge Op.Src_reg) a b
  | Call ("abs", [ a ]) ->
      compile_expr env ~depth a;
      let skip = emit_jump e (Op.jmp Op.Jsge Op.Src_imm) ~dst:0 ~src:0 ~imm:0l in
      emit e (I.make (Op.alu64 Op.Neg Op.Src_imm) ~dst:0);
      patch e skip (here e)
  | Call (name, args) -> (
      match env.helpers name with
      | None -> unsupported "unknown function %s (user functions cannot be compiled)" name
      | Some id ->
          if List.length args > 5 then unsupported "%s: helpers take at most 5 arguments" name;
          (* evaluate arguments into temporaries, then load r1..r5 *)
          List.iteri
            (fun i arg ->
              compile_expr env ~depth:(depth + i) arg;
              store_slot e ~src:0 (env.next_slot + depth + i))
            args;
          List.iteri
            (fun i _ -> load_slot e ~dst:(i + 1) (env.next_slot + depth + i))
            args;
          emit e (I.make Op.call ~imm:(Int32.of_int id)))

and compile_minmax env ~depth keep_jump a b =
  let e = env.e in
  let tmp = env.next_slot + depth in
  compile_expr env ~depth a;
  store_slot e ~src:0 tmp;
  compile_expr env ~depth:(depth + 1) b;
  emit e (I.make (Op.alu64 Op.Mov Op.Src_reg) ~dst:1 ~src:0);
  load_slot e ~dst:0 tmp;
  (* keep r0 when [r0 keep_jump r1], else take r1 *)
  let keep = emit_jump e keep_jump ~dst:0 ~src:1 ~imm:0l in
  emit e (I.make (Op.alu64 Op.Mov Op.Src_reg) ~dst:0 ~src:1);
  patch e keep (here e)

let rec compile_stmt env stmt =
  let e = env.e in
  match stmt with
  | Let (name, expr) ->
      compile_expr env ~depth:0 expr;
      store_slot e ~src:0 (declare env name)
  | Assign (name, expr) ->
      compile_expr env ~depth:0 expr;
      store_slot e ~src:0 (slot_of env name)
  | Assign_index _ -> unsupported "indexed assignment has no eBPF representation"
  | If (cond, then_, else_) ->
      compile_expr env ~depth:0 cond;
      let to_else = emit_jump e (Op.jmp Op.Jeq Op.Src_imm) ~dst:0 ~src:0 ~imm:0l in
      List.iter (compile_stmt env) then_;
      if else_ = [] then patch e to_else (here e)
      else begin
        let to_end = emit_jump e Op.ja ~dst:0 ~src:0 ~imm:0l in
        patch e to_else (here e);
        List.iter (compile_stmt env) else_;
        patch e to_end (here e)
      end
  | While (cond, body) ->
      let top = here e in
      compile_expr env ~depth:0 cond;
      let exit_jump = emit_jump e (Op.jmp Op.Jeq Op.Src_imm) ~dst:0 ~src:0 ~imm:0l in
      let loop = { break_sites = []; continue_sites = []; continue_target = Some top } in
      env.loops <- loop :: env.loops;
      List.iter (compile_stmt env) body;
      env.loops <- List.tl env.loops;
      let back = emit_jump e Op.ja ~dst:0 ~src:0 ~imm:0l in
      patch e back top;
      patch e exit_jump (here e);
      List.iter (fun at -> patch e at (here e)) loop.break_sites
  | For (init, cond, step, body) ->
      (match init with Some s -> compile_stmt env s | None -> ());
      let top = here e in
      let exit_jump =
        match cond with
        | Some c ->
            compile_expr env ~depth:0 c;
            Some (emit_jump e (Op.jmp Op.Jeq Op.Src_imm) ~dst:0 ~src:0 ~imm:0l)
        | None -> None
      in
      let loop = { break_sites = []; continue_sites = []; continue_target = None } in
      env.loops <- loop :: env.loops;
      List.iter (compile_stmt env) body;
      env.loops <- List.tl env.loops;
      let step_at = here e in
      List.iter (fun at -> patch e at step_at) loop.continue_sites;
      (match step with Some s -> compile_stmt env s | None -> ());
      let back = emit_jump e Op.ja ~dst:0 ~src:0 ~imm:0l in
      patch e back top;
      (match exit_jump with Some at -> patch e at (here e) | None -> ());
      List.iter (fun at -> patch e at (here e)) loop.break_sites
  | Break -> (
      match env.loops with
      | loop :: _ ->
          loop.break_sites <- emit_jump e Op.ja ~dst:0 ~src:0 ~imm:0l :: loop.break_sites
      | [] -> unsupported "break outside a loop")
  | Continue -> (
      match env.loops with
      | loop :: _ -> (
          match loop.continue_target with
          | Some top ->
              let j = emit_jump e Op.ja ~dst:0 ~src:0 ~imm:0l in
              patch e j top
          | None ->
              loop.continue_sites <-
                emit_jump e Op.ja ~dst:0 ~src:0 ~imm:0l :: loop.continue_sites)
      | [] -> unsupported "continue outside a loop")
  | Return None ->
      mov_imm e ~dst:0 0L;
      emit e (I.make Op.exit')
  | Return (Some expr) ->
      compile_expr env ~depth:0 expr;
      emit e (I.make Op.exit')
  | Expr_stmt expr -> compile_expr env ~depth:0 expr

let no_helpers (_ : string) : int option = None

(* [compile_function ?helpers source name] compiles function [name] from
   [source] to an eBPF program; up to five parameters arrive in r1..r5. *)
let compile_function ?(helpers = no_helpers) source name =
  let program = Parser.parse source in
  let func =
    match List.find_opt (fun f -> f.name = name) program.funcs with
    | Some f -> f
    | None -> unsupported "no function %s in source" name
  in
  if List.length func.params > 5 then
    unsupported "%s: at most 5 parameters map onto r1..r5" name;
  let env =
    {
      e = { insns = [||]; len = 0; max_slot = 0 };
      slots = Hashtbl.create 8;
      next_slot = 0;
      helpers;
      loops = [];
    }
  in
  (* prologue: spill the argument registers into parameter slots *)
  List.iteri
    (fun i param -> store_slot env.e ~src:(i + 1) (declare env param))
    func.params;
  List.iter (compile_stmt env) func.body;
  (* implicit return 0 *)
  mov_imm env.e ~dst:0 0L;
  emit env.e (I.make Op.exit');
  E.Program.of_array (Array.sub env.e.insns 0 env.e.len)
