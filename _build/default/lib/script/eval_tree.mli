(** Direct AST interpretation — the RIOT.js-style profile: no compilation
    step (startup = parse only), slow execution (tree dispatch and
    environment lookups per node). *)

type t

val load : ?max_steps:int -> string -> t
(** Parse [source]; raises [Parser.Parse_error] / [Lexer.Lex_error].
    [max_steps] bounds one execution (default 50M). *)

val call : t -> string -> Value.t list -> (Value.t, string) result
(** Call a function with pre-evaluated values; runtime errors (including
    exceeding the step budget) come back as [Error]. *)

val run : ?entry:string -> ?args:Value.t list -> t -> (Value.t, string) result
(** Execute the top-level statements, then optionally call [entry]. *)
