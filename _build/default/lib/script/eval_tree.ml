(* Direct AST interpretation — the RIOT.js-style profile: no compilation
   step (fast-ish startup: parse only), slow execution (tree dispatch and
   environment lookups per node). *)

open Ast

exception Return_value of Value.t
exception Break_loop
exception Continue_loop

type env = { vars : (string, Value.t) Hashtbl.t; parent : env option }

let new_env ?parent () = { vars = Hashtbl.create 8; parent }

let rec lookup env name =
  match Hashtbl.find_opt env.vars name with
  | Some v -> Some v
  | None -> ( match env.parent with Some p -> lookup p name | None -> None)

let rec assign env name value =
  if Hashtbl.mem env.vars name then begin
    Hashtbl.replace env.vars name value;
    true
  end
  else match env.parent with Some p -> assign p name value | None -> false

type t = {
  program : program;
  funcs : (string, func) Hashtbl.t;
  globals : env;
  mutable steps : int;
  max_steps : int;
}

let load ?(max_steps = 50_000_000) source =
  let program = Parser.parse source in
  let funcs = Hashtbl.create 8 in
  List.iter (fun f -> Hashtbl.replace funcs f.name f) program.funcs;
  { program; funcs; globals = new_env (); steps = 0; max_steps }

let tick t =
  t.steps <- t.steps + 1;
  if t.steps > t.max_steps then Value.runtime_error "step budget exhausted"

let rec eval t env expr =
  tick t;
  match expr with
  | Int v -> Value.Int v
  | Bool b -> Value.Bool b
  | Str s -> Value.Str s
  | Nil -> Value.Nil
  | Var name -> (
      match lookup env name with
      | Some v -> v
      | None -> Value.runtime_error "unbound variable %s" name)
  | Array_lit items ->
      Value.Array (ref (Array.of_list (List.map (eval t env) items)))
  | Index (target, index) -> Value.index_get (eval t env target) (eval t env index)
  | Unary (op, e) -> Value.unop op (eval t env e)
  | Binary (And_also, a, b) ->
      if Value.truthy (eval t env a) then eval t env b else Value.Bool false
  | Binary (Or_else, a, b) ->
      if Value.truthy (eval t env a) then Value.Bool true else eval t env b
  | Binary (op, a, b) -> Value.binop op (eval t env a) (eval t env b)
  | Call (name, args) -> (
      let values = List.map (eval t env) args in
      match Value.builtin name values with
      | Some result -> result
      | None -> (
          match Hashtbl.find_opt t.funcs name with
          | None -> Value.runtime_error "unknown function %s" name
          | Some f ->
              if List.length f.params <> List.length values then
                Value.runtime_error "%s expects %d arguments" name
                  (List.length f.params);
              let frame = new_env ~parent:t.globals () in
              List.iter2 (Hashtbl.replace frame.vars) f.params values;
              (try
                 exec_block t frame f.body;
                 Value.Nil
               with
              | Return_value v -> v
              | Break_loop | Continue_loop ->
                  Value.runtime_error "break/continue outside a loop")))

and exec t env stmt =
  tick t;
  match stmt with
  | Let (name, e) -> Hashtbl.replace env.vars name (eval t env e)
  | Assign (name, e) ->
      let value = eval t env e in
      if not (assign env name value) then
        Value.runtime_error "assignment to unbound variable %s" name
  | Assign_index (target, index, e) ->
      let tv = eval t env target in
      let iv = eval t env index in
      Value.index_set tv iv (eval t env e)
  | If (cond, then_, else_) ->
      if Value.truthy (eval t env cond) then exec_block t (new_env ~parent:env ()) then_
      else exec_block t (new_env ~parent:env ()) else_
  | While (cond, body) -> (
      try
        while Value.truthy (eval t env cond) do
          try exec_block t (new_env ~parent:env ()) body
          with Continue_loop -> ()
        done
      with Break_loop -> ())
  | For (init, cond, step, body) -> (
      let loop_env = new_env ~parent:env () in
      (match init with Some s -> exec t loop_env s | None -> ());
      let continue () =
        match cond with
        | Some c -> Value.truthy (eval t loop_env c)
        | None -> true
      in
      try
        while continue () do
          (try exec_block t (new_env ~parent:loop_env ()) body
           with Continue_loop -> ());
          match step with Some s -> exec t loop_env s | None -> ()
        done
      with Break_loop -> ())
  | Break -> raise Break_loop
  | Continue -> raise Continue_loop
  | Return None -> raise (Return_value Value.Nil)
  | Return (Some e) -> raise (Return_value (eval t env e))
  | Expr_stmt e -> ignore (eval t env e)

and exec_block t env stmts = List.iter (exec t env) stmts

(* Call a function with pre-evaluated values (used by benchmarks to pass
   the input data without re-parsing). *)
let call t name values =
  t.steps <- 0;
  match Hashtbl.find_opt t.funcs name with
  | None -> Error (Printf.sprintf "unknown function %s" name)
  | Some f -> (
      if List.length f.params <> List.length values then
        Error (Printf.sprintf "%s expects %d arguments" name (List.length f.params))
      else
        let frame = new_env ~parent:t.globals () in
        List.iter2 (Hashtbl.replace frame.vars) f.params values;
        try
          exec_block t frame f.body;
          Ok Value.Nil
        with
        | Return_value v -> Ok v
        | Break_loop | Continue_loop -> Error "break/continue outside a loop"
        | Value.Runtime_error m -> Error m)

(* Run the top-level statements, then (optionally) call [entry ~args]. *)
let run ?entry ?(args = []) t =
  t.steps <- 0;
  match exec_block t t.globals t.program.top with
  | () -> (
      match entry with
      | None -> Ok Value.Nil
      | Some name -> call t name args)
  | exception Value.Runtime_error m -> Error m
  | exception (Break_loop | Continue_loop) ->
      Error "break/continue outside a loop"
