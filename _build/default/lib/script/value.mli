(** MiniScript runtime values — boxed and heap-allocated, as in
    MicroPython and the JS micro-engines; this boxing drives the RAM and
    speed profile the paper's Table 1/2 measures for script runtimes. *)

type t =
  | Int of int64
  | Bool of bool
  | Str of string
  | Array of t array ref  (** mutable, growable via [push] *)
  | Map of (t, t) Hashtbl.t  (** dictionaries with int/string/bool keys *)
  | Nil

exception Runtime_error of string

val runtime_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

val type_name : t -> string
val truthy : t -> bool
val as_int : t -> int64

val equal : t -> t -> bool
(** Structural, except maps which compare by identity (like JS objects). *)

val to_string : t -> string

val binop : Ast.binop -> t -> t -> t
(** Shared arithmetic/comparison semantics for both execution profiles;
    the short-circuit forms are handled by the evaluators and raise
    here. *)

val unop : Ast.unop -> t -> t
val index_get : t -> t -> t
val index_set : t -> t -> t -> unit

val builtin : string -> t list -> t option
(** The built-in functions both profiles share ([len], [push], [byte],
    [map], [mhas], [mdel], [keys], [min], [max], [abs], [str], [chr]);
    [None] when [name] is not a builtin. *)
