(* MiniScript recursive-descent / Pratt parser. *)

open Ast

exception Parse_error of { line : int; message : string }

let parse_error line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

type state = { mutable tokens : (Lexer.token * int) list }

let peek s = match s.tokens with (t, _) :: _ -> t | [] -> Lexer.EOF
let line s = match s.tokens with (_, l) :: _ -> l | [] -> 0

let advance s =
  match s.tokens with
  | _ :: rest -> s.tokens <- rest
  | [] -> ()

let expect s token what =
  if peek s = token then advance s
  else parse_error (line s) "expected %s" what

let expect_ident s what =
  match peek s with
  | Lexer.IDENT name ->
      advance s;
      name
  | _ -> parse_error (line s) "expected %s" what

(* Binding powers, loosest to tightest. *)
let infix_power = function
  | Lexer.OROR -> Some (1, Or_else)
  | Lexer.ANDAND -> Some (2, And_also)
  | Lexer.BOR -> Some (3, Bor)
  | Lexer.BXOR -> Some (4, Bxor)
  | Lexer.BAND -> Some (5, Band)
  | Lexer.EQ -> Some (6, Eq)
  | Lexer.NE -> Some (6, Ne)
  | Lexer.LT -> Some (7, Lt)
  | Lexer.LE -> Some (7, Le)
  | Lexer.GT -> Some (7, Gt)
  | Lexer.GE -> Some (7, Ge)
  | Lexer.SHL -> Some (8, Shl)
  | Lexer.SHR -> Some (8, Shr)
  | Lexer.PLUS -> Some (9, Add)
  | Lexer.MINUS -> Some (9, Sub)
  | Lexer.STAR -> Some (10, Mul)
  | Lexer.SLASH -> Some (10, Div)
  | Lexer.PERCENT -> Some (10, Mod)
  | _ -> None

let rec parse_expr s min_power =
  let left = ref (parse_prefix s) in
  let continue = ref true in
  while !continue do
    match infix_power (peek s) with
    | Some (power, op) when power >= min_power ->
        advance s;
        let right = parse_expr s (power + 1) in
        left := Binary (op, !left, right)
    | _ -> continue := false
  done;
  !left

and parse_prefix s =
  match peek s with
  | Lexer.INT v ->
      advance s;
      parse_postfix s (Int v)
  | Lexer.STRING str ->
      advance s;
      parse_postfix s (Str str)
  | Lexer.KW_TRUE ->
      advance s;
      Bool true
  | Lexer.KW_FALSE ->
      advance s;
      Bool false
  | Lexer.KW_NIL ->
      advance s;
      Nil
  | Lexer.MINUS ->
      advance s;
      Unary (Neg, parse_expr s 11)
  | Lexer.BANG ->
      advance s;
      Unary (Not, parse_expr s 11)
  | Lexer.LPAREN ->
      advance s;
      let e = parse_expr s 0 in
      expect s Lexer.RPAREN "')'";
      parse_postfix s e
  | Lexer.LBRACKET ->
      advance s;
      let rec items acc =
        if peek s = Lexer.RBRACKET then List.rev acc
        else begin
          let e = parse_expr s 0 in
          if peek s = Lexer.COMMA then begin
            advance s;
            items (e :: acc)
          end
          else List.rev (e :: acc)
        end
      in
      let elements = items [] in
      expect s Lexer.RBRACKET "']'";
      parse_postfix s (Array_lit elements)
  | Lexer.IDENT name -> (
      advance s;
      match peek s with
      | Lexer.LPAREN ->
          advance s;
          let rec args acc =
            if peek s = Lexer.RPAREN then List.rev acc
            else begin
              let e = parse_expr s 0 in
              if peek s = Lexer.COMMA then begin
                advance s;
                args (e :: acc)
              end
              else List.rev (e :: acc)
            end
          in
          let arguments = args [] in
          expect s Lexer.RPAREN "')'";
          parse_postfix s (Call (name, arguments))
      | _ -> parse_postfix s (Var name))
  | _ -> parse_error (line s) "expected expression"

and parse_postfix s expr =
  match peek s with
  | Lexer.LBRACKET ->
      advance s;
      let index = parse_expr s 0 in
      expect s Lexer.RBRACKET "']'";
      parse_postfix s (Index (expr, index))
  | _ -> expr

let rec parse_block s =
  expect s Lexer.LBRACE "'{'";
  let rec stmts acc =
    if peek s = Lexer.RBRACE then begin
      advance s;
      List.rev acc
    end
    else stmts (parse_stmt s :: acc)
  in
  stmts []

and parse_stmt s =
  match peek s with
  | Lexer.KW_LET ->
      advance s;
      let name = expect_ident s "variable name" in
      expect s Lexer.ASSIGN "'='";
      let value = parse_expr s 0 in
      expect s Lexer.SEMI "';'";
      Let (name, value)
  | Lexer.KW_IF ->
      advance s;
      expect s Lexer.LPAREN "'('";
      let cond = parse_expr s 0 in
      expect s Lexer.RPAREN "')'";
      let then_ = parse_block s in
      let else_ =
        if peek s = Lexer.KW_ELSE then begin
          advance s;
          if peek s = Lexer.KW_IF then [ parse_stmt s ] else parse_block s
        end
        else []
      in
      If (cond, then_, else_)
  | Lexer.KW_WHILE ->
      advance s;
      expect s Lexer.LPAREN "'('";
      let cond = parse_expr s 0 in
      expect s Lexer.RPAREN "')'";
      While (cond, parse_block s)
  | Lexer.KW_FOR ->
      advance s;
      expect s Lexer.LPAREN "'('";
      let init =
        if peek s = Lexer.SEMI then begin
          advance s;
          None
        end
        else Some (parse_stmt s) (* parse_stmt consumes the ';' *)
      in
      let cond =
        if peek s = Lexer.SEMI then None else Some (parse_expr s 0)
      in
      expect s Lexer.SEMI "';'";
      let step =
        if peek s = Lexer.RPAREN then None else Some (parse_for_step s)
      in
      expect s Lexer.RPAREN "')'";
      For (init, cond, step, parse_block s)
  | Lexer.KW_BREAK ->
      advance s;
      expect s Lexer.SEMI "';'";
      Break
  | Lexer.KW_CONTINUE ->
      advance s;
      expect s Lexer.SEMI "';'";
      Continue
  | Lexer.KW_RETURN ->
      advance s;
      if peek s = Lexer.SEMI then begin
        advance s;
        Return None
      end
      else begin
        let value = parse_expr s 0 in
        expect s Lexer.SEMI "';'";
        Return (Some value)
      end
  | Lexer.IDENT name when (match s.tokens with
                           | _ :: (Lexer.ASSIGN, _) :: _ -> true
                           | _ -> false) ->
      advance s;
      advance s;
      let value = parse_expr s 0 in
      expect s Lexer.SEMI "';'";
      Assign (name, value)
  | _ -> (
      let e = parse_expr s 0 in
      match (e, peek s) with
      | Index (target, index), Lexer.ASSIGN ->
          advance s;
          let value = parse_expr s 0 in
          expect s Lexer.SEMI "';'";
          Assign_index (target, index, value)
      | _, _ ->
          expect s Lexer.SEMI "';'";
          Expr_stmt e)

(* The step clause of a for loop: an assignment or expression, with no
   trailing ';'. *)
and parse_for_step s =
  match (peek s, s.tokens) with
  | Lexer.IDENT name, _ :: (Lexer.ASSIGN, _) :: _ ->
      advance s;
      advance s;
      Assign (name, parse_expr s 0)
  | _ -> (
      let e = parse_expr s 0 in
      match (e, peek s) with
      | Index (target, index), Lexer.ASSIGN ->
          advance s;
          Assign_index (target, index, parse_expr s 0)
      | _ -> Expr_stmt e)

let parse_func s =
  expect s Lexer.KW_FN "'fn'";
  let name = expect_ident s "function name" in
  expect s Lexer.LPAREN "'('";
  let rec params acc =
    match peek s with
    | Lexer.RPAREN -> List.rev acc
    | Lexer.IDENT p ->
        advance s;
        if peek s = Lexer.COMMA then begin
          advance s;
          params (p :: acc)
        end
        else List.rev (p :: acc)
    | _ -> parse_error (line s) "expected parameter"
  in
  let parameters = params [] in
  expect s Lexer.RPAREN "')'";
  let body = parse_block s in
  { name; params = parameters; body }

let parse source =
  let s = { tokens = Lexer.tokenize source } in
  let rec loop funcs top =
    match peek s with
    | Lexer.EOF -> { funcs = List.rev funcs; top = List.rev top }
    | Lexer.KW_FN -> loop (parse_func s :: funcs) top
    | _ -> loop funcs (parse_stmt s :: top)
  in
  loop [] []
