(** MiniScript -> eBPF compiler.

    The paper notes that any language able to target the eBPF ISA can
    program Femto-Containers (§8; they use C via LLVM).  This compiler is
    that story for MiniScript: containers are written at high level and
    compiled to bytecode that passes the pre-flight verifier and runs in
    the sandbox at rBPF cost.

    Supported: integer arithmetic and comparisons (eBPF semantics: 64-bit
    wraparound, {e unsigned} division/modulo), booleans as 0/1,
    let/assign, if/else, while/for/break/continue, return, calls to
    [bpf_*] helpers (≤ 5 arguments), the inline builtins
    [min]/[max]/[abs], and raw memory access through
    [load8/load16/load32/load64] and [store64] (checked against the
    container's allow-list at run time).  Strings, arrays, maps and
    user-function calls have no eBPF representation and raise
    {!Unsupported}. *)

exception Unsupported of string

val no_helpers : string -> int option

val compile_function :
  ?helpers:(string -> int option) -> string -> string -> Femto_ebpf.Program.t
(** [compile_function ?helpers source name] compiles function [name] from
    [source]; up to five parameters arrive in r1..r5.  [helpers] resolves
    helper names ([Femto_core.Syscall.resolve_name] covers the standard
    ABI).  The generated code always terminates with [exit] and never
    exceeds the 512 B VM stack (checked at compile time). *)
