(** An eBPF program: a sequence of instruction slots with a binary codec. *)

type t

exception Truncated of string
(** Raised by {!of_bytes} when the input length is not a multiple of 8. *)

val of_insns : Insn.t list -> t
val of_array : Insn.t array -> t

val insns : t -> Insn.t array
(** The underlying slots; callers must not mutate the array. *)

val length : t -> int
(** Number of instruction slots. *)

val get : t -> int -> Insn.t
(** [get t i] is slot [i]; raises [Invalid_argument] when out of range. *)

val byte_size : t -> int
(** Size of the fixed 8-byte-per-slot wire form. *)

val to_bytes : t -> bytes
val of_bytes : bytes -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
