(** eBPF opcode encoding tables.

    An opcode byte is [op | source | class]: the 3 low bits select the
    instruction class, bit 3 the operand source for ALU/JMP classes
    (K = immediate, X = register), the high bits the operation. *)

type cls =
  | Cls_ld
  | Cls_ldx
  | Cls_st
  | Cls_stx
  | Cls_alu
  | Cls_jmp
  | Cls_jmp32
  | Cls_alu64

val cls_code : cls -> int
val cls_of_code : int -> cls

(** Memory access width. *)
type size = W | H | B | DW

val size_code : size -> int
val size_of_code : int -> size
val size_bytes : size -> int

val mode_imm : int
val mode_mem : int

type source = Src_imm | Src_reg

val source_code : source -> int
val source_of_code : int -> source

type alu_op =
  | Add
  | Sub
  | Mul
  | Div  (** unsigned, as in eBPF *)
  | Or
  | And
  | Lsh
  | Rsh  (** logical *)
  | Neg
  | Mod  (** unsigned *)
  | Xor
  | Mov
  | Arsh  (** arithmetic right shift *)

val alu_op_code : alu_op -> int
val alu_op_of_code : int -> alu_op option
val alu_op_name : alu_op -> string

(** Byte-order conversion (BPF_END): the source bit selects the target
    order, the immediate the width (16/32/64). *)
val op_end : int

type endianness = Le | Be

val endianness_of_source : source -> endianness
val source_of_endianness : endianness -> source
val endian_name : endianness -> string

type jmp_cond =
  | Jeq
  | Jgt  (** unsigned *)
  | Jge
  | Jset  (** bitwise test *)
  | Jne
  | Jsgt  (** signed *)
  | Jsge
  | Jlt
  | Jle
  | Jslt
  | Jsle

val jmp_cond_code : jmp_cond -> int
val jmp_cond_of_code : int -> jmp_cond option
val jmp_cond_name : jmp_cond -> string

val op_ja : int
val op_call : int
val op_exit : int

(** {2 Fully assembled opcode bytes} *)

val lddw : int
val ja : int
val call : int
val exit' : int

val alu64 : alu_op -> source -> int
val alu32 : alu_op -> source -> int
val ldx : size -> int
val st : size -> int
val stx : size -> int
val jmp : jmp_cond -> source -> int
val jmp32 : jmp_cond -> source -> int
val end32 : endianness -> int
