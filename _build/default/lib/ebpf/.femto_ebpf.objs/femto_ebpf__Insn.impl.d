lib/ebpf/insn.ml: Bytes Format Int32 Int64 Opcode
