lib/ebpf/asm.ml: Format Hashtbl Insn Int32 Int64 List Opcode Program String
