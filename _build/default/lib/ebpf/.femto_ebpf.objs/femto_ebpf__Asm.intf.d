lib/ebpf/asm.mli: Program
