lib/ebpf/disasm.ml: Buffer Insn Int32 Opcode Printf Program
