lib/ebpf/program.ml: Array Bytes Format Insn Printf
