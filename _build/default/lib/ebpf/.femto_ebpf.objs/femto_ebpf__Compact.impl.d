lib/ebpf/compact.ml: Array Buffer Char Insn Int32 List Program String
