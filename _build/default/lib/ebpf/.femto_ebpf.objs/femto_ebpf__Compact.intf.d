lib/ebpf/compact.mli: Insn Program
