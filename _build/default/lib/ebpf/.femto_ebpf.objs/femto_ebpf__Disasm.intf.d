lib/ebpf/disasm.mli: Program
