lib/ebpf/opcode.ml:
