lib/ebpf/insn.mli: Format Opcode
