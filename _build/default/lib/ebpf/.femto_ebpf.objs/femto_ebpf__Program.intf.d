lib/ebpf/program.mli: Format Insn
