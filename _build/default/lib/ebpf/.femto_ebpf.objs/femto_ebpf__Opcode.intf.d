lib/ebpf/opcode.mli:
