(* Variable-length instruction encoding — the paper's §11 proposal
   ("Fixed- vs Variable-length Instructions"): most eBPF instructions
   carry fields that are fixed at zero, so storing scripts in a compressed
   form shrinks the flash/RAM needed for application images; instructions
   are expanded back to the fixed 64-bit form at install time.

   Wire format, per instruction:

     header byte:
       bits 0-1  offset width: 0 = absent(0), 1 = int8, 2 = int16
       bits 2-3  imm width:    0 = absent(0), 1 = int8, 2 = int16, 3 = int32
       bit  4    register byte present (absent = both registers 0)
     opcode byte
     [registers byte]  dst in low nibble, src in high nibble
     [offset]          1 or 2 bytes, little endian, sign-extended
     [imm]             1, 2 or 4 bytes, little endian, sign-extended

   Worst case 9 bytes (one more than fixed); typical ALU/branch
   instructions take 3-5. *)

exception Malformed of string

let width_of_offset offset =
  if offset = 0 then 0 else if offset >= -128 && offset <= 127 then 1 else 2

let width_of_imm imm =
  if Int32.equal imm 0l then 0
  else if Int32.compare imm (-128l) >= 0 && Int32.compare imm 127l <= 0 then 1
  else if Int32.compare imm (-32768l) >= 0 && Int32.compare imm 32767l <= 0 then 2
  else 3

let encoded_size insn =
  let offset_bytes = match width_of_offset insn.Insn.offset with 0 -> 0 | w -> w in
  let imm_bytes = match width_of_imm insn.Insn.imm with 0 -> 0 | 3 -> 4 | w -> w in
  let regs_byte = if insn.Insn.dst = 0 && insn.Insn.src = 0 then 0 else 1 in
  2 + regs_byte + offset_bytes + imm_bytes

let encode_insn buf insn =
  let off_width = width_of_offset insn.Insn.offset in
  let imm_width = width_of_imm insn.Insn.imm in
  let has_regs = insn.Insn.dst <> 0 || insn.Insn.src <> 0 in
  let header = off_width lor (imm_width lsl 2) lor (if has_regs then 0x10 else 0) in
  Buffer.add_char buf (Char.chr header);
  Buffer.add_char buf (Char.chr insn.Insn.opcode);
  if has_regs then
    Buffer.add_char buf
      (Char.chr ((insn.Insn.src lsl 4) lor (insn.Insn.dst land 0x0f)));
  (match off_width with
  | 1 -> Buffer.add_char buf (Char.chr (insn.Insn.offset land 0xff))
  | 2 ->
      Buffer.add_char buf (Char.chr (insn.Insn.offset land 0xff));
      Buffer.add_char buf (Char.chr ((insn.Insn.offset asr 8) land 0xff))
  | _ -> ());
  match imm_width with
  | 1 -> Buffer.add_char buf (Char.chr (Int32.to_int insn.Insn.imm land 0xff))
  | 2 ->
      let v = Int32.to_int insn.Insn.imm in
      Buffer.add_char buf (Char.chr (v land 0xff));
      Buffer.add_char buf (Char.chr ((v asr 8) land 0xff))
  | 3 ->
      let v = Int32.to_int insn.Insn.imm in
      Buffer.add_char buf (Char.chr (v land 0xff));
      Buffer.add_char buf (Char.chr ((v asr 8) land 0xff));
      Buffer.add_char buf (Char.chr ((v asr 16) land 0xff));
      Buffer.add_char buf (Char.chr ((v asr 24) land 0xff))
  | _ -> ()

(* [compress program] yields the variable-length image. *)
let compress program =
  let buf = Buffer.create (Program.byte_size program) in
  Array.iter (encode_insn buf) (Program.insns program);
  Buffer.contents buf

let decompress data =
  let len = String.length data in
  let pos = ref 0 in
  let byte () =
    if !pos >= len then raise (Malformed "truncated compact instruction");
    let c = Char.code data.[!pos] in
    incr pos;
    c
  in
  let sext8 v = (v lxor 0x80) - 0x80 in
  let sext16 v = (v lxor 0x8000) - 0x8000 in
  let insns = ref [] in
  while !pos < len do
    let header = byte () in
    if header land 0xE0 <> 0 then raise (Malformed "reserved header bits set");
    let off_width = header land 0x3 in
    let imm_width = (header lsr 2) land 0x3 in
    if off_width = 3 then raise (Malformed "reserved offset width");
    let opcode = byte () in
    let dst, src =
      if header land 0x10 <> 0 then begin
        let regs = byte () in
        (regs land 0x0f, (regs lsr 4) land 0x0f)
      end
      else (0, 0)
    in
    let offset =
      match off_width with
      | 0 -> 0
      | 1 -> sext8 (byte ())
      | _ ->
          let low = byte () in
          sext16 (low lor (byte () lsl 8))
    in
    let imm =
      match imm_width with
      | 0 -> 0l
      | 1 -> Int32.of_int (sext8 (byte ()))
      | 2 ->
          let low = byte () in
          Int32.of_int (sext16 (low lor (byte () lsl 8)))
      | _ ->
          let b0 = byte () in
          let b1 = byte () in
          let b2 = byte () in
          let b3 = byte () in
          Int32.logor
            (Int32.of_int (b0 lor (b1 lsl 8) lor (b2 lsl 16)))
            (Int32.shift_left (Int32.of_int b3) 24)
    in
    insns := Insn.make opcode ~dst ~src ~offset ~imm :: !insns
  done;
  Program.of_insns (List.rev !insns)

type stats = {
  fixed_bytes : int;
  compact_bytes : int;
  ratio : float; (* compact / fixed *)
}

let measure program =
  let fixed_bytes = Program.byte_size program in
  let compact_bytes = String.length (compress program) in
  {
    fixed_bytes;
    compact_bytes;
    ratio = float_of_int compact_bytes /. float_of_int fixed_bytes;
  }
