(* Disassembler: renders programs back into the syntax accepted by [Asm],
   so that [Asm.assemble (Disasm.to_string p)] round-trips. *)

let size_suffix = function
  | Opcode.B -> "b"
  | Opcode.H -> "h"
  | Opcode.W -> "w"
  | Opcode.DW -> "dw"

let mem_operand base offset =
  if offset = 0 then Printf.sprintf "[r%d]" base
  else if offset > 0 then Printf.sprintf "[r%d+%d]" base offset
  else Printf.sprintf "[r%d%d]" base offset

let rel_target offset =
  if offset >= 0 then Printf.sprintf "+%d" offset else string_of_int offset

let insn_to_string ?(helper_name = fun _ -> None) program i =
  let insn = Program.get program i in
  match Insn.kind insn with
  | Insn.Alu (is64, op, source) ->
      let name = Opcode.alu_op_name op ^ if is64 then "" else "32" in
      if op = Opcode.Neg then Printf.sprintf "%s r%d" name insn.dst
      else (
        match source with
        | Opcode.Src_imm -> Printf.sprintf "%s r%d, %ld" name insn.dst insn.imm
        | Opcode.Src_reg -> Printf.sprintf "%s r%d, r%d" name insn.dst insn.src)
  | Insn.Load size ->
      Printf.sprintf "ldx%s r%d, %s" (size_suffix size) insn.dst
        (mem_operand insn.src insn.offset)
  | Insn.Store_imm size ->
      Printf.sprintf "st%s %s, %ld" (size_suffix size)
        (mem_operand insn.dst insn.offset) insn.imm
  | Insn.Store_reg size ->
      Printf.sprintf "stx%s %s, r%d" (size_suffix size)
        (mem_operand insn.dst insn.offset) insn.src
  | Insn.Lddw_head ->
      let tail = Program.get program (i + 1) in
      Printf.sprintf "lddw r%d, 0x%Lx" insn.dst (Insn.lddw_imm ~head:insn ~tail)
  | Insn.Lddw_tail -> "; lddw tail"
  | Insn.End endianness ->
      Printf.sprintf "%s%ld r%d" (Opcode.endian_name endianness) insn.imm
        insn.dst
  | Insn.Ja -> Printf.sprintf "ja %s" (rel_target insn.offset)
  | Insn.Jcond (is64, cond, source) ->
      let name = Opcode.jmp_cond_name cond ^ if is64 then "" else "32" in
      let operand =
        match source with
        | Opcode.Src_imm -> Int32.to_string insn.imm
        | Opcode.Src_reg -> Printf.sprintf "r%d" insn.src
      in
      Printf.sprintf "%s r%d, %s, %s" name insn.dst operand (rel_target insn.offset)
  | Insn.Call -> (
      let id = Int32.to_int insn.imm in
      match helper_name id with
      | Some name -> Printf.sprintf "call %s" name
      | None -> Printf.sprintf "call %d" id)
  | Insn.Exit -> "exit"
  | Insn.Invalid opcode -> Printf.sprintf "; invalid opcode 0x%02x" opcode

let to_string ?helper_name program =
  let buf = Buffer.create 256 in
  let count = Program.length program in
  let i = ref 0 in
  while !i < count do
    let insn = Program.get program !i in
    Buffer.add_string buf (insn_to_string ?helper_name program !i);
    Buffer.add_char buf '\n';
    (match Insn.kind insn with
     | Insn.Lddw_head -> i := !i + 2
     | _ -> incr i)
  done;
  Buffer.contents buf
