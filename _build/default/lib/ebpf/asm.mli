(** Two-pass textual assembler for the rBPF/eBPF instruction subset.

    Syntax overview (one instruction per line; [;], [#] or [//] start a
    comment; labels end with [:]):

    {v
      mov   r1, 42            ; alu64 with immediate
      add32 r1, r2            ; alu32 with register source
      lddw  r4, 0x1_0000_0000 ; 64-bit immediate (two slots)
      ldxw  r2, [r1+4]        ; memory load
      stxdw [r10-8], r2       ; memory store from register
      jeq   r1, 5, done       ; conditional jump to a label
      ja    +2                ; relative jump
      call  bpf_now_ms        ; helper call by name (via ~helpers)
      exit
    v} *)

exception Error of { line : int; message : string }
(** Raised on any syntax or range error, with the 1-based source line. *)

val no_helpers : string -> int option
(** Resolver that knows no helper names (the default). *)

val assemble : ?helpers:(string -> int option) -> string -> Program.t
(** [assemble ?helpers source] assembles [source]. [helpers] resolves
    [call <name>] mnemonics to helper ids (see
    [Femto_core.Syscall.resolve_name] for the standard ABI). *)
