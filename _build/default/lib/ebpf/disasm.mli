(** Disassembler producing text that {!Asm.assemble} round-trips. *)

val insn_to_string :
  ?helper_name:(int -> string option) -> Program.t -> int -> string
(** [insn_to_string ?helper_name program i] renders the instruction at
    slot [i]. [helper_name] maps helper ids back to [call] names. *)

val to_string : ?helper_name:(int -> string option) -> Program.t -> string
(** Render a whole program, one instruction per line; jump targets are
    emitted as relative offsets. *)
