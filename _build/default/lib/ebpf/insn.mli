(** A single 64-bit eBPF instruction slot.

    Wire layout (little endian): 8-bit opcode, 4-bit destination register,
    4-bit source register, 16-bit signed offset, 32-bit signed immediate.
    [lddw] occupies two consecutive slots. *)

type t = {
  opcode : int;  (** 0..255 *)
  dst : int;  (** destination register field, 0..15 as encoded *)
  src : int;  (** source register field, 0..15 as encoded *)
  offset : int;  (** signed 16-bit branch/memory offset *)
  imm : int32;  (** signed 32-bit immediate *)
}

val size_bytes : int
(** Bytes per instruction slot (8). *)

val make : ?dst:int -> ?src:int -> ?offset:int -> ?imm:int32 -> int -> t
(** [make opcode] builds an instruction; omitted fields default to zero. *)

val equal : t -> t -> bool

(** Typed view of a decoded instruction. *)
type kind =
  | Alu of bool * Opcode.alu_op * Opcode.source
      (** [Alu (is_64bit, op, operand source)] *)
  | Load of Opcode.size  (** LDX: [dst <- *(src + offset)] *)
  | Store_imm of Opcode.size  (** ST: [*(dst + offset) <- imm] *)
  | Store_reg of Opcode.size  (** STX: [*(dst + offset) <- src] *)
  | Lddw_head  (** first slot of a 64-bit load; consumes the next slot *)
  | Lddw_tail  (** second slot of a 64-bit load; never executed *)
  | End of Opcode.endianness
      (** byte-order conversion; the immediate selects 16/32/64-bit width *)
  | Ja  (** unconditional relative jump *)
  | Jcond of bool * Opcode.jmp_cond * Opcode.source
      (** conditional jump; [bool] selects 64-bit vs 32-bit comparison *)
  | Call  (** helper (system) call by immediate id *)
  | Exit  (** return r0 *)
  | Invalid of int  (** unknown opcode byte *)

val kind : t -> kind
(** Decode the opcode byte into its typed view. *)

val lddw_imm : head:t -> tail:t -> int64
(** Reassemble the 64-bit immediate of an [lddw] pair. *)

val lddw_pair : int -> int64 -> t * t
(** [lddw_pair dst imm64] builds the two slots of an [lddw]. *)

val encode_into : bytes -> int -> t -> unit
(** [encode_into buf pos insn] writes the 8-byte wire form at [pos]. *)

val decode_from : bytes -> int -> t
(** [decode_from buf pos] reads the 8-byte wire form at [pos]. *)

val to_bytes : t -> bytes

val pp : Format.formatter -> t -> unit
