(** Variable-length instruction encoding (the paper's §11 proposal).

    Most eBPF instructions carry fields fixed at zero; this codec omits
    them, shrinking application images to roughly half for typical
    programs.  Devices decompress once at install time. *)

exception Malformed of string

val encoded_size : Insn.t -> int
(** Size in bytes of one instruction under the compact encoding
    (2 to 9). *)

val compress : Program.t -> string
(** Serialize a program into the variable-length image. *)

val decompress : string -> Program.t
(** Inverse of {!compress}; raises {!Malformed} on corrupt input. *)

type stats = {
  fixed_bytes : int;  (** size under the fixed 8-byte encoding *)
  compact_bytes : int;  (** size under the compact encoding *)
  ratio : float;  (** [compact_bytes / fixed_bytes] *)
}

val measure : Program.t -> stats
