(* Two-pass textual assembler for the rBPF/eBPF instruction subset.

   Syntax (one instruction per line, ';', '#' or '//' start a comment):

     entry:                      ; label definition
       mov   r1, 42              ; alu64, immediate source
       add32 r1, r2              ; alu32, register source
       neg   r3
       lddw  r4, 0x1_0000_0000   ; 64-bit immediate (two slots)
       ldxw  r2, [r1+4]          ; load word
       stb   [r10-1], 7          ; store immediate byte
       stxdw [r10-8], r2         ; store register double word
       jeq   r1, 5, done         ; conditional jump to label
       jlt32 r1, r2, +2          ; 32-bit compare, relative target
       ja    entry
       call  3                   ; helper call by number
       call  bpf_store_global    ; helper call by name (via [helpers])
     done:
       exit

   Numbers accept decimal and 0x hex with optional '_' separators and a
   leading '-'. *)

exception Error of { line : int; message : string }

let error line fmt =
  Format.kasprintf (fun message -> raise (Error { line; message })) fmt

let strip_comment line =
  let cut_at pattern acc =
    let plen = String.length pattern in
    let rec find i =
      if i + plen > String.length acc then acc
      else if String.sub acc i plen = pattern then String.sub acc 0 i
      else find (i + 1)
    in
    find 0
  in
  String.trim (cut_at ";" (cut_at "#" (cut_at "//" line)))

type token = Ident of string | Num of int64 | Lbracket | Rbracket | Comma | Colon

let tokenize lineno line =
  let n = String.length line in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '.'
  in
  let is_num_start c = (c >= '0' && c <= '9') || c = '-' || c = '+' in
  let i = ref 0 in
  while !i < n do
    let c = line.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '[' then (push Lbracket; incr i)
    else if c = ']' then (push Rbracket; incr i)
    else if c = ',' then (push Comma; incr i)
    else if c = ':' then (push Colon; incr i)
    else if is_num_start c && (c <> '+' && c <> '-' || (!i + 1 < n && line.[!i + 1] >= '0' && line.[!i + 1] <= '9')) then begin
      let start = !i in
      incr i;
      while !i < n && (is_ident_char line.[!i]) do incr i done;
      let text = String.sub line start (!i - start) in
      let text = String.concat "" (String.split_on_char '_' text) in
      match Int64.of_string_opt text with
      | Some v -> push (Num v)
      | None -> error lineno "invalid number %S" text
    end
    else if is_ident_char c || c = '+' || c = '-' then begin
      (* '+N' relative targets are handled as numbers above; bare +/- with a
         label is not supported *)
      let start = !i in
      incr i;
      while !i < n && is_ident_char line.[!i] do incr i done;
      push (Ident (String.sub line start (!i - start)))
    end
    else error lineno "unexpected character %C" c
  done;
  List.rev !tokens

(* Intermediate instruction: jump targets may still be symbolic. *)
type target = Rel of int | Label of string

type item =
  | I of Insn.t (* fully resolved slot *)
  | Jump_to of { opcode : int; dst : int; src : int; imm : int32; target : target }

let reg lineno = function
  | Ident name -> (
      let fail () = error lineno "expected register, got %S" name in
      if String.length name >= 2 && name.[0] = 'r' then
        match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
        | Some r when r >= 0 && r <= 10 -> r
        | Some _ | None -> fail ()
      else fail ())
  | Num _ -> error lineno "expected register, got number"
  | _ -> error lineno "expected register"

let imm32_of lineno v =
  if Int64.compare v 0xFFFF_FFFFL > 0 || Int64.compare v (-0x8000_0000L) < 0 then
    error lineno "immediate %Ld does not fit in 32 bits" v;
  Int64.to_int32 v

let off16_of lineno v =
  if v > 32767L || v < -32768L then error lineno "offset %Ld does not fit in 16 bits" v;
  Int64.to_int v

(* Parse a memory operand "[rX+off]" / "[rX-off]" / "[rX]". Brackets were
   tokenized; +N / -N appear as a Num token. *)
let mem_operand lineno tokens =
  match tokens with
  | Lbracket :: r :: rest -> (
      let base = reg lineno r in
      match rest with
      | Rbracket :: rest' -> ((base, 0), rest')
      | Num off :: Rbracket :: rest' -> ((base, off16_of lineno off), rest')
      | _ -> error lineno "malformed memory operand")
  | _ -> error lineno "expected memory operand '[rN+off]'"

let alu_mnemonics =
  let open Opcode in
  [ ("add", Add); ("sub", Sub); ("mul", Mul); ("div", Div); ("or", Or);
    ("and", And); ("lsh", Lsh); ("rsh", Rsh); ("mod", Mod); ("xor", Xor);
    ("mov", Mov); ("arsh", Arsh) ]

let jmp_mnemonics =
  let open Opcode in
  [ ("jeq", Jeq); ("jgt", Jgt); ("jge", Jge); ("jset", Jset); ("jne", Jne);
    ("jsgt", Jsgt); ("jsge", Jsge); ("jlt", Jlt); ("jle", Jle);
    ("jslt", Jslt); ("jsle", Jsle) ]

let size_suffixes = [ ("b", Opcode.B); ("h", Opcode.H); ("w", Opcode.W); ("dw", Opcode.DW) ]

let lookup_size lineno s =
  match List.assoc_opt s size_suffixes with
  | Some size -> size
  | None -> error lineno "unknown size suffix %S" s

(* Split a mnemonic like "jeq32" / "add32" into base + is32 flag. *)
let split32 name =
  let n = String.length name in
  if n > 2 && String.sub name (n - 2) 2 = "32" then (String.sub name 0 (n - 2), true)
  else (name, false)

let parse_line ~helpers lineno tokens =
  match tokens with
  | [] -> `Nothing
  | [ Ident name; Colon ] -> `Label name
  | Ident mnemonic :: rest -> (
      let mnemonic = String.lowercase_ascii mnemonic in
      let base, is32 = split32 mnemonic in
      let alu_insn op source ~dst ~src ~imm =
        let opcode = if is32 then Opcode.alu32 op source else Opcode.alu64 op source in
        I (Insn.make opcode ~dst ~src ~imm)
      in
      let jump_target = function
        | Num v -> Rel (Int64.to_int v)
        | Ident l -> Label l
        | _ -> error lineno "expected jump target"
      in
      match List.assoc_opt base alu_mnemonics with
      | Some op -> (
          match rest with
          | [ d; Comma; Num v ] ->
              `Item (alu_insn op Opcode.Src_imm ~dst:(reg lineno d) ~src:0 ~imm:(imm32_of lineno v))
          | [ d; Comma; s ] ->
              `Item (alu_insn op Opcode.Src_reg ~dst:(reg lineno d) ~src:(reg lineno s) ~imm:0l)
          | _ -> error lineno "%s expects 'dst, src|imm'" mnemonic)
      | None ->
      match List.assoc_opt base jmp_mnemonics with
      | Some cond -> (
          let mk source ~dst ~src ~imm target =
            let opcode =
              if is32 then Opcode.jmp32 cond source else Opcode.jmp cond source
            in
            Jump_to { opcode; dst; src; imm; target }
          in
          match rest with
          | [ d; Comma; Num v; Comma; t ] ->
              `Item (mk Opcode.Src_imm ~dst:(reg lineno d) ~src:0 ~imm:(imm32_of lineno v) (jump_target t))
          | [ d; Comma; s; Comma; t ] ->
              `Item (mk Opcode.Src_reg ~dst:(reg lineno d) ~src:(reg lineno s) ~imm:0l (jump_target t))
          | _ -> error lineno "%s expects 'dst, src|imm, target'" mnemonic)
      | None ->
      match base, rest with
      (* matched on the full mnemonic: split32 would strip "32" suffixes *)
      | _, [ d ]
        when List.mem mnemonic
               [ "le16"; "le32"; "le64"; "be16"; "be32"; "be64" ] ->
          let endianness =
            if String.sub mnemonic 0 2 = "le" then Opcode.Le else Opcode.Be
          in
          let width = int_of_string (String.sub mnemonic 2 2) in
          `Item
            (I (Insn.make (Opcode.end32 endianness) ~dst:(reg lineno d)
                  ~imm:(Int32.of_int width)))
      | "neg", [ d ] ->
          `Item (alu_insn Opcode.Neg Opcode.Src_imm ~dst:(reg lineno d) ~src:0 ~imm:0l)
      | "ja", [ t ] ->
          `Item (Jump_to { opcode = Opcode.ja; dst = 0; src = 0; imm = 0l;
                           target = jump_target t })
      | "exit", [] -> `Item (I (Insn.make Opcode.exit'))
      | "call", [ Num v ] -> `Item (I (Insn.make Opcode.call ~imm:(imm32_of lineno v)))
      | "call", [ Ident name ] -> (
          match helpers name with
          | Some id -> `Item (I (Insn.make Opcode.call ~imm:(Int32.of_int id)))
          | None -> error lineno "unknown helper %S" name)
      | "lddw", [ d; Comma; Num v ] ->
          let head, tail = Insn.lddw_pair (reg lineno d) v in
          `Pair (head, tail)
      | _ when String.length base > 3 && String.sub base 0 3 = "ldx" -> (
          let size = lookup_size lineno (String.sub base 3 (String.length base - 3)) in
          match rest with
          | d :: Comma :: mem ->
              let (src, offset), rest' = mem_operand lineno mem in
              if rest' <> [] then error lineno "trailing tokens after load";
              `Item (I (Insn.make (Opcode.ldx size) ~dst:(reg lineno d) ~src ~offset))
          | _ -> error lineno "%s expects 'dst, [src+off]'" mnemonic)
      | _ when String.length base > 3 && String.sub base 0 3 = "stx" -> (
          let size = lookup_size lineno (String.sub base 3 (String.length base - 3)) in
          let (dst, offset), rest' = mem_operand lineno rest in
          match rest' with
          | [ Comma; s ] ->
              `Item (I (Insn.make (Opcode.stx size) ~dst ~src:(reg lineno s) ~offset))
          | _ -> error lineno "%s expects '[dst+off], src'" mnemonic)
      | _ when String.length base > 2 && String.sub base 0 2 = "st" -> (
          let size = lookup_size lineno (String.sub base 2 (String.length base - 2)) in
          let (dst, offset), rest' = mem_operand lineno rest in
          match rest' with
          | [ Comma; Num v ] ->
              `Item (I (Insn.make (Opcode.st size) ~dst ~offset ~imm:(imm32_of lineno v)))
          | _ -> error lineno "%s expects '[dst+off], imm'" mnemonic)
      | _ -> error lineno "unknown mnemonic %S" mnemonic)
  | _ -> error lineno "cannot parse line"

let no_helpers (_ : string) : int option = None

let assemble ?(helpers = no_helpers) source =
  let lines = String.split_on_char '\n' source in
  (* First pass: collect items and label -> slot index. *)
  let labels = Hashtbl.create 16 in
  let items = ref [] in
  let slot = ref 0 in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = strip_comment raw in
      if line <> "" then
        match parse_line ~helpers lineno (tokenize lineno line) with
        | `Nothing -> ()
        | `Label name ->
            if Hashtbl.mem labels name then error lineno "duplicate label %S" name;
            Hashtbl.add labels name !slot
        | `Item item ->
            items := (lineno, item) :: !items;
            incr slot
        | `Pair (head, tail) ->
            items := (lineno, I tail) :: (lineno, I head) :: !items;
            slot := !slot + 2)
    lines;
  let items = List.rev !items in
  (* Second pass: resolve jump targets to relative offsets. *)
  let resolve at lineno = function
    | Rel r -> r
    | Label name -> (
        match Hashtbl.find_opt labels name with
        | Some target -> target - at - 1
        | None -> error lineno "undefined label %S" name)
  in
  let insns =
    List.mapi
      (fun at (lineno, item) ->
        match item with
        | I insn -> insn
        | Jump_to { opcode; dst; src; imm; target } ->
            let offset = resolve at lineno target in
            if offset > 32767 || offset < -32768 then
              error lineno "jump offset %d out of 16-bit range" offset;
            Insn.make opcode ~dst ~src ~imm ~offset)
      items
  in
  Program.of_insns insns
