(* eBPF opcode encoding tables.

   An eBPF opcode byte is [op | source | class] where the 3 low bits select
   the instruction class, bit 3 selects the operand source for ALU/JMP
   classes (K = immediate, X = register), and the 5 (or 3) high bits select
   the operation.  See the Linux kernel's Documentation/bpf/instruction-set
   and the rBPF port described in the paper. *)

type cls =
  | Cls_ld
  | Cls_ldx
  | Cls_st
  | Cls_stx
  | Cls_alu
  | Cls_jmp
  | Cls_jmp32
  | Cls_alu64

let cls_code = function
  | Cls_ld -> 0x00
  | Cls_ldx -> 0x01
  | Cls_st -> 0x02
  | Cls_stx -> 0x03
  | Cls_alu -> 0x04
  | Cls_jmp -> 0x05
  | Cls_jmp32 -> 0x06
  | Cls_alu64 -> 0x07

let cls_of_code code =
  match code land 0x07 with
  | 0x00 -> Cls_ld
  | 0x01 -> Cls_ldx
  | 0x02 -> Cls_st
  | 0x03 -> Cls_stx
  | 0x04 -> Cls_alu
  | 0x05 -> Cls_jmp
  | 0x06 -> Cls_jmp32
  | 0x07 -> Cls_alu64
  | _ -> assert false

(* Memory access size, bits 3-4 of LD/LDX/ST/STX opcodes. *)
type size = W | H | B | DW

let size_code = function W -> 0x00 | H -> 0x08 | B -> 0x10 | DW -> 0x18

let size_of_code code =
  match code land 0x18 with
  | 0x00 -> W
  | 0x08 -> H
  | 0x10 -> B
  | 0x18 -> DW
  | _ -> assert false

let size_bytes = function B -> 1 | H -> 2 | W -> 4 | DW -> 8

(* Addressing mode, bits 5-7 of LD/LDX/ST/STX opcodes. *)
let mode_imm = 0x00
let mode_mem = 0x60

(* Operand source for ALU and JMP classes. *)
type source = Src_imm | Src_reg

let source_code = function Src_imm -> 0x00 | Src_reg -> 0x08
let source_of_code code = if code land 0x08 = 0 then Src_imm else Src_reg

type alu_op =
  | Add
  | Sub
  | Mul
  | Div
  | Or
  | And
  | Lsh
  | Rsh
  | Neg
  | Mod
  | Xor
  | Mov
  | Arsh

let alu_op_code = function
  | Add -> 0x00
  | Sub -> 0x10
  | Mul -> 0x20
  | Div -> 0x30
  | Or -> 0x40
  | And -> 0x50
  | Lsh -> 0x60
  | Rsh -> 0x70
  | Neg -> 0x80
  | Mod -> 0x90
  | Xor -> 0xa0
  | Mov -> 0xb0
  | Arsh -> 0xc0

(* Endianness conversion (BPF_END, 0xd0 in the ALU class): the source bit
   selects the target byte order (K = little endian, X = big endian) and
   the immediate selects the width (16, 32 or 64 bits). *)
let op_end = 0xd0

type endianness = Le | Be

let endianness_of_source = function Src_imm -> Le | Src_reg -> Be
let source_of_endianness = function Le -> Src_imm | Be -> Src_reg
let endian_name = function Le -> "le" | Be -> "be"

let alu_op_of_code code =
  match code land 0xf0 with
  | 0x00 -> Some Add
  | 0x10 -> Some Sub
  | 0x20 -> Some Mul
  | 0x30 -> Some Div
  | 0x40 -> Some Or
  | 0x50 -> Some And
  | 0x60 -> Some Lsh
  | 0x70 -> Some Rsh
  | 0x80 -> Some Neg
  | 0x90 -> Some Mod
  | 0xa0 -> Some Xor
  | 0xb0 -> Some Mov
  | 0xc0 -> Some Arsh
  | _ -> None

let alu_op_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Or -> "or"
  | And -> "and"
  | Lsh -> "lsh"
  | Rsh -> "rsh"
  | Neg -> "neg"
  | Mod -> "mod"
  | Xor -> "xor"
  | Mov -> "mov"
  | Arsh -> "arsh"

type jmp_cond =
  | Jeq
  | Jgt
  | Jge
  | Jset
  | Jne
  | Jsgt
  | Jsge
  | Jlt
  | Jle
  | Jslt
  | Jsle

let jmp_cond_code = function
  | Jeq -> 0x10
  | Jgt -> 0x20
  | Jge -> 0x30
  | Jset -> 0x40
  | Jne -> 0x50
  | Jsgt -> 0x60
  | Jsge -> 0x70
  | Jlt -> 0xa0
  | Jle -> 0xb0
  | Jslt -> 0xc0
  | Jsle -> 0xd0

let jmp_cond_of_code code =
  match code land 0xf0 with
  | 0x10 -> Some Jeq
  | 0x20 -> Some Jgt
  | 0x30 -> Some Jge
  | 0x40 -> Some Jset
  | 0x50 -> Some Jne
  | 0x60 -> Some Jsgt
  | 0x70 -> Some Jsge
  | 0xa0 -> Some Jlt
  | 0xb0 -> Some Jle
  | 0xc0 -> Some Jslt
  | 0xd0 -> Some Jsle
  | _ -> None

let jmp_cond_name = function
  | Jeq -> "jeq"
  | Jgt -> "jgt"
  | Jge -> "jge"
  | Jset -> "jset"
  | Jne -> "jne"
  | Jsgt -> "jsgt"
  | Jsge -> "jsge"
  | Jlt -> "jlt"
  | Jle -> "jle"
  | Jslt -> "jslt"
  | Jsle -> "jsle"

let op_ja = 0x00
let op_call = 0x80
let op_exit = 0x90

(* Fully assembled opcode bytes for the subset of eBPF that rBPF (and thus
   Femto-Containers) implements. *)
let lddw = 0x18 (* Cls_ld | DW | mode_imm *)
let ja = 0x05 (* op_ja | Cls_jmp *)
let call = 0x85 (* op_call | Cls_jmp *)
let exit' = 0x95 (* op_exit | Cls_jmp *)

let alu64 op source =
  alu_op_code op lor source_code source lor cls_code Cls_alu64

let alu32 op source =
  alu_op_code op lor source_code source lor cls_code Cls_alu

let ldx size = cls_code Cls_ldx lor size_code size lor mode_mem
let st size = cls_code Cls_st lor size_code size lor mode_mem
let stx size = cls_code Cls_stx lor size_code size lor mode_mem

let jmp cond source =
  jmp_cond_code cond lor source_code source lor cls_code Cls_jmp

let jmp32 cond source =
  jmp_cond_code cond lor source_code source lor cls_code Cls_jmp32

let end32 endianness =
  op_end lor source_code (source_of_endianness endianness) lor cls_code Cls_alu
