(* An eBPF program: a sequence of instruction slots plus binary codec. *)

type t = { insns : Insn.t array }

let of_insns insns = { insns = Array.of_list insns }
let of_array insns = { insns }
let insns t = t.insns
let length t = Array.length t.insns
let get t i = t.insns.(i)
let byte_size t = Array.length t.insns * Insn.size_bytes

exception Truncated of string

let to_bytes t =
  let buf = Bytes.create (byte_size t) in
  Array.iteri (fun i insn -> Insn.encode_into buf (i * Insn.size_bytes) insn) t.insns;
  buf

let of_bytes buf =
  let len = Bytes.length buf in
  if len mod Insn.size_bytes <> 0 then
    raise (Truncated (Printf.sprintf "program length %d is not a multiple of 8" len));
  let count = len / Insn.size_bytes in
  { insns = Array.init count (fun i -> Insn.decode_from buf (i * Insn.size_bytes)) }

let equal a b =
  Array.length a.insns = Array.length b.insns
  && Array.for_all2 Insn.equal a.insns b.insns

let pp ppf t =
  Array.iteri
    (fun i insn -> Format.fprintf ppf "%4d: %a@." i Insn.pp insn)
    t.insns
