(* A single 64-bit eBPF instruction slot and its typed view.

   Wire layout (little endian), per the eBPF specification and the paper's
   description: 8-bit opcode, 4-bit destination register, 4-bit source
   register, 16-bit signed offset, 32-bit signed immediate.  The [lddw]
   instruction occupies two consecutive slots; the second slot carries the
   high 32 bits of the immediate in its own imm field. *)

type t = {
  opcode : int; (* 0..255 *)
  dst : int; (* 0..15 as encoded; valid programs use 0..10 *)
  src : int; (* 0..15 *)
  offset : int; (* signed 16-bit: -32768..32767 *)
  imm : int32;
}

let size_bytes = 8

let make ?(dst = 0) ?(src = 0) ?(offset = 0) ?(imm = 0l) opcode =
  { opcode; dst; src; offset; imm }

let equal a b =
  a.opcode = b.opcode && a.dst = b.dst && a.src = b.src && a.offset = b.offset
  && Int32.equal a.imm b.imm

(* Typed view of a decoded instruction, used by the verifier, the
   interpreters and the disassembler.  [Lddw] carries the full 64-bit
   immediate and consumes the following slot. *)
type kind =
  | Alu of bool * Opcode.alu_op * Opcode.source (* is_64bit, op, source *)
  | Load of Opcode.size (* LDX: dst <- *(src + offset) *)
  | Store_imm of Opcode.size (* ST: *(dst + offset) <- imm *)
  | Store_reg of Opcode.size (* STX: *(dst + offset) <- src *)
  | Lddw_head (* first slot of lddw; interpreter consumes next slot *)
  | Lddw_tail (* second slot of lddw; never executed directly *)
  | End of Opcode.endianness (* byte-swap; imm selects 16/32/64-bit width *)
  | Ja
  | Jcond of bool * Opcode.jmp_cond * Opcode.source (* is_64bit cmp *)
  | Call
  | Exit
  | Invalid of int

let kind insn =
  let open Opcode in
  match cls_of_code insn.opcode with
  | Cls_alu64 -> (
      match alu_op_of_code insn.opcode with
      | Some op -> Alu (true, op, source_of_code insn.opcode)
      | None -> Invalid insn.opcode)
  | Cls_alu -> (
      if insn.opcode land 0xf0 = op_end then
        End (endianness_of_source (source_of_code insn.opcode))
      else
        match alu_op_of_code insn.opcode with
        | Some op -> Alu (false, op, source_of_code insn.opcode)
        | None -> Invalid insn.opcode)
  | Cls_ldx ->
      if insn.opcode land 0xe0 = mode_mem then Load (size_of_code insn.opcode)
      else Invalid insn.opcode
  | Cls_st ->
      if insn.opcode land 0xe0 = mode_mem then
        Store_imm (size_of_code insn.opcode)
      else Invalid insn.opcode
  | Cls_stx ->
      if insn.opcode land 0xe0 = mode_mem then
        Store_reg (size_of_code insn.opcode)
      else Invalid insn.opcode
  | Cls_ld ->
      if insn.opcode = lddw then Lddw_head else Invalid insn.opcode
  | Cls_jmp -> (
      if insn.opcode = ja then Ja
      else if insn.opcode = call then Call
      else if insn.opcode = exit' then Exit
      else
        match jmp_cond_of_code insn.opcode with
        | Some cond -> Jcond (true, cond, source_of_code insn.opcode)
        | None -> Invalid insn.opcode)
  | Cls_jmp32 -> (
      match jmp_cond_of_code insn.opcode with
      | Some cond -> Jcond (false, cond, source_of_code insn.opcode)
      | None -> Invalid insn.opcode)

(* 64-bit immediate of an lddw pair. *)
let lddw_imm ~head ~tail =
  let low = Int64.logand (Int64.of_int32 head.imm) 0xFFFF_FFFFL in
  let high = Int64.shift_left (Int64.of_int32 tail.imm) 32 in
  Int64.logor high low

let lddw_pair dst imm64 =
  let low = Int64.to_int32 (Int64.logand imm64 0xFFFF_FFFFL) in
  let high = Int64.to_int32 (Int64.shift_right_logical imm64 32) in
  ( make Opcode.lddw ~dst ~imm:low,
    make 0 ~imm:high )

let encode_into buf pos insn =
  Bytes.set_uint8 buf pos insn.opcode;
  Bytes.set_uint8 buf (pos + 1) ((insn.src lsl 4) lor (insn.dst land 0x0f));
  Bytes.set_int16_le buf (pos + 2) insn.offset;
  Bytes.set_int32_le buf (pos + 4) insn.imm

let decode_from buf pos =
  let opcode = Bytes.get_uint8 buf pos in
  let regs = Bytes.get_uint8 buf (pos + 1) in
  let dst = regs land 0x0f in
  let src = (regs lsr 4) land 0x0f in
  let offset = Bytes.get_int16_le buf (pos + 2) in
  let imm = Bytes.get_int32_le buf (pos + 4) in
  { opcode; dst; src; offset; imm }

let to_bytes insn =
  let buf = Bytes.create size_bytes in
  encode_into buf 0 insn;
  buf

let pp ppf insn =
  Format.fprintf ppf "{op=0x%02x dst=r%d src=r%d off=%d imm=%ld}" insn.opcode
    insn.dst insn.src insn.offset insn.imm
