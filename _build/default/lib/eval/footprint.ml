(* Memory-footprint accounting for the Table 1 / Table 3 / Figure 2 /
   Figure 7 experiments.

   Two kinds of numbers, clearly separated (and labelled in the output and
   in EXPERIMENTS.md):

   - MEASURED: per-instance RAM, taken on the host as the deep reachable
     heap size of the actual runtime instance objects
     ([Measure.reachable_bytes]) plus explicitly-sized buffers.  These are
     host-OCaml proxies for the C structs of the paper, but they are real
     measurements of this implementation, and their *relative* ordering
     (WASM page >> script heap >> rBPF stack) is structural, not tuned.

   - MODELLED: flash/ROM sizes of the C firmware builds, which cannot be
     produced from OCaml.  The ROM model decomposes each runtime into the
     components its architecture requires and assigns each component a
     Thumb-2 byte cost, calibrated against the builds reported in the
     paper (Table 1/3) — the calibration anchors are quoted next to each
     constant.  Figure 2/7 derive from these plus per-ISA code-density
     factors. *)

(* --- ROM model (modelled) --- *)

type rom_component = { component : string; bytes : int }

type rom_estimate = { total : int; components : rom_component list }

let rom_total components =
  { total = List.fold_left (fun acc c -> acc + c.bytes) 0 components; components }

(* rBPF: a dispatch loop + pre-flight checker + hosting glue.
   Calibration anchor: 4.4 KiB ROM (paper Table 1). *)
let rbpf_rom =
  rom_total
    [
      { component = "interpreter dispatch + handlers"; bytes = 2600 };
      { component = "pre-flight verifier"; bytes = 900 };
      { component = "loading/hosting glue"; bytes = 900 };
    ]

(* Femto-Containers: rBPF plus hooks, key-value store, contracts.
   Calibration anchor: 2992 B engine ROM (paper Table 3, engine only). *)
let femto_container_rom =
  rom_total
    [
      { component = "interpreter dispatch + handlers"; bytes = 1700 };
      { component = "pre-flight verifier"; bytes = 500 };
      { component = "hooks + kv-store + contracts"; bytes = 800 };
    ]

(* CertFC: extracted code is more compact (fewer hand-unrolled paths).
   Calibration anchor: 1378 B (paper Table 3, 55 % smaller). *)
let certfc_rom =
  rom_total
    [
      { component = "extracted interpreter"; bytes = 1000 };
      { component = "extracted checker"; bytes = 400 };
    ]

(* WASM3-class runtime: decoder, validator, interpreter core, traps.
   Calibration anchor: 64 KiB (paper Table 1). *)
let wasm_rom =
  rom_total
    [
      { component = "binary decoder"; bytes = 12_000 };
      { component = "validator"; bytes = 8_000 };
      { component = "interpreter core (op handlers)"; bytes = 36_000 };
      { component = "runtime/trap machinery"; bytes = 9_000 };
    ]

(* MicroPython-class runtime: lexer, parser, compiler, VM, object model,
   GC, stdlib.  Calibration anchor: 101 KiB (paper Table 1). *)
let micropython_rom =
  rom_total
    [
      { component = "lexer + parser"; bytes = 18_000 };
      { component = "bytecode compiler"; bytes = 16_000 };
      { component = "bytecode VM"; bytes = 20_000 };
      { component = "object model + GC heap"; bytes = 27_000 };
      { component = "builtin library"; bytes = 22_000 };
    ]

(* RIOT.js/JerryScript-class runtime: parser, tree/IR walker, object model
   with prototypes, GC.  Calibration anchor: 121 KiB (paper Table 1). *)
let riotjs_rom =
  rom_total
    [
      { component = "parser"; bytes = 26_000 };
      { component = "evaluator"; bytes = 30_000 };
      { component = "object model (prototypes, properties)"; bytes = 38_000 };
      { component = "GC + runtime library"; bytes = 29_000 };
    ]

(* Host OS without any VM: RIOT with 6LoWPAN + CoAP + SUIT OTA.
   Calibration anchor: 52.5 KiB ROM / 16.3 KiB RAM (paper Table 1) with
   53 kB quoted in Figure 2. *)
let host_os_rom =
  rom_total
    [
      { component = "RIOT kernel + drivers"; bytes = 20_000 };
      { component = "6LoWPAN + UDP stack"; bytes = 16_000 };
      { component = "CoAP + SUIT OTA"; bytes = 17_700 };
    ]

let host_os_ram_bytes = 16_700

(* Figure 7: scale an engine ROM estimate by the platform's code
   density. *)
let rom_on_platform (platform : Femto_platform.Platform.t) rom =
  int_of_float
    (Float.round (float_of_int rom.total *. platform.Femto_platform.Platform.code_density))

(* --- RAM (measured on host; see header) --- *)

(* The paper's per-instance RAM for a Femto-Container: VM stack (512 B) +
   housekeeping + region table = 624 B.  We measure our instance the same
   way: deep size of the live VM instance object. *)
let instance_ram_bytes instance = Measure.reachable_bytes instance
