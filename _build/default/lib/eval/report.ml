(* Rendering helpers: paper-style ASCII tables and bar "figures". *)

let separator width = String.make width '-'

(* [table ~title ~header rows] prints an aligned ASCII table. *)
let table ?note ~title ~header rows =
  let all = header :: rows in
  let columns = List.length header in
  let width i =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all
  in
  let widths = List.init columns width in
  let render_row row =
    String.concat "  | "
      (List.mapi
         (fun i cell -> Printf.sprintf "%-*s" (List.nth widths i) cell)
         row)
  in
  let total_width = String.length (render_row header) in
  Printf.printf "\n%s\n%s\n" title (separator (max total_width (String.length title)));
  Printf.printf "%s\n%s\n" (render_row header) (separator total_width);
  List.iter (fun row -> Printf.printf "%s\n" (render_row row)) rows;
  (match note with Some n -> Printf.printf "%s\n" n | None -> ());
  flush stdout

(* [bars ~title ~unit items] prints a horizontal bar chart (for the
   figures). *)
let bars ?note ~title ~unit_label items =
  Printf.printf "\n%s\n%s\n" title (separator (String.length title));
  let max_value =
    List.fold_left (fun acc (_, v) -> Float.max acc v) 1e-9 items
  in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 items
  in
  List.iter
    (fun (label, value) ->
      let bar_len = int_of_float (Float.round (40.0 *. value /. max_value)) in
      Printf.printf "  %-*s | %s %.6g %s\n" label_width label
        (String.make (max bar_len 1) '#')
        value unit_label)
    items;
  (match note with Some n -> Printf.printf "%s\n" n | None -> ());
  flush stdout

let kib bytes = Printf.sprintf "%.1f KiB" (float_of_int bytes /. 1024.0)
let bytes_str bytes = Printf.sprintf "%d B" bytes

let us value = Printf.sprintf "%.1f us" value
let ms value = Printf.sprintf "%.2f ms" value

let time_str ns =
  if ns < 1_000.0 then Printf.sprintf "%.0f ns" ns
  else if ns < 1_000_000.0 then Printf.sprintf "%.1f us" (ns /. 1e3)
  else if ns < 1_000_000_000.0 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else Printf.sprintf "%.2f s" (ns /. 1e9)
