lib/eval/report.ml: Float List Printf String
