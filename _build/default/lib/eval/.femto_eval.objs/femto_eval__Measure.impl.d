lib/eval/measure.ml: Float Int64 List Obj Sys Unix
