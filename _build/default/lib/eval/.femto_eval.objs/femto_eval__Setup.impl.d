lib/eval/setup.ml: Bytes Femto_coap Femto_core Femto_platform Femto_rtos Femto_vm Femto_workloads Int64 Printf
