lib/eval/footprint.ml: Femto_platform Float List Measure
