(* Shared experiment fixtures: engines, containers and workloads wired the
   same way across tables and figures. *)

module Engine = Femto_core.Engine
module Container = Femto_core.Container
module Contract = Femto_core.Contract
module Hook = Femto_core.Hook
module Platform = Femto_platform.Platform
module Kernel = Femto_rtos.Kernel
module Apps = Femto_workloads.Apps
module Fletcher = Femto_workloads.Fletcher
module Region = Femto_vm.Region

let fail_attach = function
  | Ok hook -> hook
  | Error e -> failwith (Engine.attach_error_to_string e)

(* An engine + kernel on [platform] with the standard hooks provisioned. *)
type fixture = {
  engine : Engine.t;
  kernel : Kernel.t;
  sched_hook : Hook.t;
  timer_hook : Hook.t;
  bench_hook : Hook.t;
}

let sched_uuid = "5a1c0000-0000-4000-8000-00000000sched"
let timer_uuid = "5a1c0000-0000-4000-8000-00000000timer"
let bench_uuid = "5a1c0000-0000-4000-8000-00000000bench"

let make_fixture ?(platform = Platform.cortex_m4) () =
  let kernel =
    Kernel.create ~context_switch_cost:platform.Platform.context_switch_cycles ()
  in
  let engine = Engine.create ~platform ~kernel () in
  let sched_hook =
    Engine.register_hook engine ~uuid:sched_uuid ~name:"sched-switch"
      ~ctx_size:16 ()
  in
  let timer_hook =
    Engine.register_hook engine ~uuid:timer_uuid ~name:"timer" ~ctx_size:8 ()
  in
  let bench_hook =
    Engine.register_hook engine ~uuid:bench_uuid ~name:"bench" ~ctx_size:16 ()
  in
  { engine; kernel; sched_hook; timer_hook; bench_hook }

(* Attach the fletcher32 program as a container; returns a trigger thunk
   that runs it over the standard 360 B input. *)
let fletcher_container ?(runtime = Platform.Fc) fixture =
  let tenant = Engine.add_tenant fixture.engine "bench" in
  let container =
    Container.create
      ~name:(Printf.sprintf "fletcher-%s" (Platform.engine_name runtime))
      ~tenant ~contract:(Contract.require []) ~runtime
      (Fletcher.ebpf_program ())
  in
  let data = Fletcher.input_360 in
  let data_region =
    Region.make ~name:"data" ~vaddr:Fletcher.data_vaddr ~perm:Region.Read_only
      (Bytes.copy data)
  in
  ignore
    (fail_attach
       (Engine.attach fixture.engine ~hook_uuid:bench_uuid
          ~extra_regions:[ data_region ] container));
  let ctx = Bytes.create 16 in
  Bytes.set_int64_le ctx 0 Fletcher.data_vaddr;
  Bytes.set_int64_le ctx 8 (Int64.of_int (Bytes.length data / 2));
  let trigger () = Engine.trigger fixture.engine fixture.bench_hook ~ctx () in
  (container, trigger)

(* The §8.2 thread counter on the scheduler hook. *)
let thread_counter_container ?(runtime = Platform.Fc) fixture =
  let tenant = Engine.add_tenant fixture.engine "os-maintainer" in
  let container =
    Container.create
      ~name:(Printf.sprintf "threadcount-%s" (Platform.engine_name runtime))
      ~tenant
      ~contract:(Contract.require [ Contract.Kv_global ])
      ~runtime (Apps.thread_counter ())
  in
  ignore (fail_attach (Engine.attach fixture.engine ~hook_uuid:sched_uuid container));
  let ctx = Bytes.create 16 in
  Bytes.set_int64_le ctx 0 1L;
  Bytes.set_int64_le ctx 8 2L;
  let trigger () = Engine.trigger fixture.engine fixture.sched_hook ~ctx () in
  (container, trigger)

(* The §8.3 CoAP response formatter, wired through the gcoap glue. *)
let coap_formatter_container ?(runtime = Platform.Fc) fixture =
  let builder = Femto_coap.Gcoap.create_builder () in
  Femto_coap.Gcoap.attach_to_engine fixture.engine builder;
  let tenant = Engine.add_tenant fixture.engine "acme" in
  (* publish a sensor value for the formatter to read *)
  (match
     Femto_core.Kvstore.store
       (Femto_core.Tenant.store tenant)
       Apps.sensor_value_key 2372L
   with
  | Ok () -> ()
  | Error _ -> failwith "seed store");
  let container =
    Container.create
      ~name:(Printf.sprintf "coapfmt-%s" (Platform.engine_name runtime))
      ~tenant
      ~contract:(Contract.require [ Contract.Kv_tenant; Contract.Net_coap ])
      ~runtime (Apps.coap_formatter ())
  in
  let coap_uuid = Printf.sprintf "5a1c0000-0000-4000-8000-000000co%s"
      (Platform.engine_name runtime)
  in
  let hook =
    Engine.register_hook fixture.engine ~uuid:coap_uuid ~name:"coap-get"
      ~ctx_size:16 ()
  in
  ignore
    (fail_attach
       (Engine.attach fixture.engine ~hook_uuid:coap_uuid
          ~extra_regions:[ Femto_coap.Gcoap.pkt_region builder ]
          container));
  let trigger () =
    Femto_coap.Gcoap.reset builder;
    Engine.trigger fixture.engine hook ()
  in
  (container, builder, trigger)
