(** gcoap-style helpers: CoAP response formatting from inside a
    Femto-Container (paper §8.3).

    The container receives a packet-context pointer and a writable packet
    buffer region; it builds the response through the helpers
    [bpf_gcoap_resp_init], [bpf_coap_add_format], [bpf_coap_opt_finish],
    [bpf_fmt_s16_dfp] and [bpf_coap_set_payload_len], writing the payload
    through allow-list-checked memory.  The OCaml side then frames the
    final CoAP message from the builder state. *)

val pkt_vaddr : int64
(** Virtual address of the packet payload buffer region. *)

val pkt_size : int

type builder

val create_builder : unit -> builder

val reset : builder -> unit
(** Clear the builder before handling a new request. *)

val pkt_region : builder -> Femto_vm.Region.t
(** The packet region to grant the container at attach time. *)

val fmt_s16_dfp : int64 -> int -> string
(** Decimal fixed-point rendering, as RIOT's [fmt_s16_dfp]: [scale] is the
    decimal exponent (e.g. value 2372, scale -2 renders "23.72"). *)

val install : builder -> Femto_vm.Helper.t -> unit
(** Register the helper set into a helper table. *)

val attach_to_engine : Femto_core.Engine.t -> builder -> unit
(** Install the helpers for any container granted [Contract.Net_coap]. *)

val response : builder -> Server.response
(** Extract the response the container built. *)
