lib/coap/block.ml: Buffer Bytes Char List Message String
