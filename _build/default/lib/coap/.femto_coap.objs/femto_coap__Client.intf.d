lib/coap/client.mli: Femto_net Femto_rtos Message
