lib/coap/server.ml: Block Femto_net Hashtbl List Message Option String
