lib/coap/gcoap.ml: Bytes Femto_core Femto_vm Int64 Message Printf Server String
