lib/coap/gcoap.mli: Femto_core Femto_vm Server
