lib/coap/client.ml: Block Buffer Femto_net Femto_rtos Hashtbl Message Printf
