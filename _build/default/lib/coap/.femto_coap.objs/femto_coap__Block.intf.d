lib/coap/block.mli: Message
