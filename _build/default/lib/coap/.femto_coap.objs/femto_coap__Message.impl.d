lib/coap/message.ml: Buffer Bytes Char Format List Printf String
