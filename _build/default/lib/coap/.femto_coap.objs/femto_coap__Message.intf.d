lib/coap/message.mli: Format
