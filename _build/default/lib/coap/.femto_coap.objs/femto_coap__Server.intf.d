lib/coap/server.mli: Femto_net Message
