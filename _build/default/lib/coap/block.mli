(** CoAP block-wise transfer (RFC 7959).

    SUIT payloads routinely exceed a 6LoWPAN frame; block-wise transfer
    moves them in power-of-two chunks with per-block confirmable
    retransmission.  Block1 covers large requests (uploads), Block2 large
    responses (downloads). *)

val opt_block2 : int
val opt_block1 : int

type t = { num : int; more : bool; szx : int }

val size : t -> int
(** Block size in bytes, [2^(szx+4)]. *)

val make : num:int -> more:bool -> size:int -> t
(** Raises [Invalid_argument] when [size] is not 16, 32, ..., 1024. *)

val encode : t -> string
(** The option value (0-3 byte big-endian uint). *)

val decode : string -> t option

val to_option : number:int -> t -> int * string
val of_message : number:int -> Message.t -> t option

val slice : num:int -> size:int -> string -> (string * bool) option
(** [slice ~num ~size payload] is block [num] and whether more follow;
    [None] past the end. *)

(** {2 Reassembly of uploads} *)

type assembly

val create_assembly : unit -> assembly

type feed_result =
  | Continue  (** block stored, awaiting the next *)
  | Complete of string  (** final block stored; full payload *)
  | Out_of_order  (** unexpected block number: restart required *)

val feed : assembly -> t -> string -> feed_result
