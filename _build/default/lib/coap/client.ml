(* CoAP client with confirmable-message retransmission (RFC 7252 §4.2).

   Requests are retransmitted with exponential back-off (ACK_TIMEOUT = 2 s,
   doubling, MAX_RETRANSMIT = 4) until the matching response arrives or the
   attempts are exhausted — which is what lets SUIT updates survive the
   lossy low-power link of the simulation. *)

module Network = Femto_net.Network
module Kernel = Femto_rtos.Kernel

let ack_timeout_us = 2_000_000
let max_retransmit = 4

type pending = {
  request : Message.t;
  dst : int;
  mutable attempts : int;
  on_response : (Message.t, [ `Timeout ]) result -> unit;
  mutable done_ : bool;
}

type t = {
  network : Network.t;
  kernel : Kernel.t;
  node : Network.node;
  mutable next_mid : int;
  mutable next_token : int;
  pending : (string, pending) Hashtbl.t; (* token -> state *)
  (* RFC 7641: long-lived listeners for observe notifications *)
  observations : (string, Message.t -> unit) Hashtbl.t;
  mutable retransmissions : int;
  mutable timeouts : int;
}

let create ~network ~kernel ~addr =
  let node = Network.add_node network ~addr in
  let t =
    {
      network;
      kernel;
      node;
      next_mid = 1;
      next_token = 1;
      pending = Hashtbl.create 8;
      observations = Hashtbl.create 4;
      retransmissions = 0;
      timeouts = 0;
    }
  in
  Network.set_receiver node (fun ~src:_ datagram ->
      match Message.decode datagram with
      | exception Message.Parse_error _ -> ()
      | response -> (
          match Hashtbl.find_opt t.pending response.Message.token with
          | Some state when not state.done_ ->
              state.done_ <- true;
              Hashtbl.remove t.pending response.Message.token;
              state.on_response (Ok response)
          | Some _ | None -> (
              (* no pending exchange: an observe notification? *)
              match Hashtbl.find_opt t.observations response.Message.token with
              | Some listener -> listener response
              | None -> ())));
  t

let addr t = t.node.Network.addr
let retransmissions t = t.retransmissions
let timeouts t = t.timeouts

let fresh_mid t =
  let mid = t.next_mid in
  t.next_mid <- (t.next_mid + 1) land 0xFFFF;
  mid

let fresh_token t =
  let token = Printf.sprintf "%04x" (t.next_token land 0xFFFF) in
  t.next_token <- t.next_token + 1;
  token

let rec transmit t state =
  state.attempts <- state.attempts + 1;
  if state.attempts > 1 then t.retransmissions <- t.retransmissions + 1;
  Network.send t.network ~src:t.node.Network.addr ~dst:state.dst
    (Message.encode state.request);
  let timeout = ack_timeout_us * (1 lsl (state.attempts - 1)) in
  Kernel.after_us t.kernel ~us:timeout (fun _ ->
      if not state.done_ then begin
        if state.attempts > max_retransmit then begin
          state.done_ <- true;
          Hashtbl.remove t.pending state.request.Message.token;
          t.timeouts <- t.timeouts + 1;
          state.on_response (Error `Timeout)
        end
        else transmit t state
      end)

(* [request t ~dst ~code ~path ?payload on_response] issues a confirmable
   request; [on_response] fires exactly once. *)
let request t ~dst ~code ~path ?(payload = "") on_response =
  let message =
    Message.make ~token:(fresh_token t)
      ~options:(Message.options_of_path path)
      ~payload ~code ~message_id:(fresh_mid t) ()
  in
  let state =
    { request = message; dst; attempts = 0; on_response; done_ = false }
  in
  Hashtbl.replace t.pending message.Message.token state;
  transmit t state

let get t ~dst ~path on_response =
  request t ~dst ~code:Message.code_get ~path on_response

let post t ~dst ~path ~payload on_response =
  request t ~dst ~code:Message.code_post ~path ~payload on_response

(* --- RFC 7959 block-wise transfer --- *)

let default_block_size = 64

(* [post_blockwise] uploads a large payload as sequential Block1 chunks;
   each block rides a confirmable exchange with the usual retransmission.
   [on_response] fires once, with the final response or the first
   timeout. *)
let post_blockwise ?(block_size = default_block_size) t ~dst ~path ~payload
    on_response =
  let rec send_block num =
    match Block.slice ~num ~size:block_size payload with
    | None ->
        (* empty payload: plain POST *)
        request t ~dst ~code:Message.code_post ~path on_response
    | Some (chunk, more) ->
        let block = Block.make ~num ~more ~size:block_size in
        let message =
          Message.make ~token:(fresh_token t)
            ~options:
              (Message.options_of_path path
              @ [ Block.to_option ~number:Block.opt_block1 block ])
            ~payload:chunk ~code:Message.code_post ~message_id:(fresh_mid t) ()
        in
        let continue = function
          | Error `Timeout -> on_response (Error `Timeout)
          | Ok response ->
              if more then
                if response.Message.code = Message.code_continue then
                  send_block (num + 1)
                else on_response (Ok response) (* early error: report it *)
              else on_response (Ok response)
        in
        let state =
          { request = message; dst; attempts = 0; on_response = continue;
            done_ = false }
        in
        Hashtbl.replace t.pending message.Message.token state;
        transmit t state
  in
  send_block 0

(* [get_blockwise] downloads a response, following Block2 options until
   the final block; delivers the reassembled payload. *)
let get_blockwise ?(block_size = default_block_size) t ~dst ~path on_response =
  ignore block_size;
  let buffer = Buffer.create 256 in
  let rec fetch num =
    let options =
      Message.options_of_path path
      @
      if num = 0 then []
      else [ Block.to_option ~number:Block.opt_block2
               (Block.make ~num ~more:false ~size:default_block_size) ]
    in
    let message =
      Message.make ~token:(fresh_token t) ~options ~code:Message.code_get
        ~message_id:(fresh_mid t) ()
    in
    let continue = function
      | Error `Timeout -> on_response (Error `Timeout)
      | Ok response -> (
          Buffer.add_string buffer response.Message.payload;
          match Block.of_message ~number:Block.opt_block2 response with
          | Some block when block.Block.more -> fetch (num + 1)
          | Some _ | None ->
              on_response
                (Ok { response with Message.payload = Buffer.contents buffer }))
    in
    let state =
      { request = message; dst; attempts = 0; on_response = continue;
        done_ = false }
    in
    Hashtbl.replace t.pending message.Message.token state;
    transmit t state
  in
  fetch 0

(* --- RFC 7641 observe --- *)

type observation = { obs_token : string; obs_dst : int; obs_path : string }

(* [observe t ~dst ~path listener] registers an observe relationship; the
   listener fires for the registration response and for every
   notification until {!cancel_observe}. *)
let observe t ~dst ~path listener =
  let token = fresh_token t in
  Hashtbl.replace t.observations token listener;
  let message =
    Message.make ~token
      ~options:(Message.observe_option 0 :: Message.options_of_path path)
      ~code:Message.code_get ~message_id:(fresh_mid t) ()
  in
  let state =
    {
      request = message;
      dst;
      attempts = 0;
      on_response =
        (function
        | Ok response -> listener response
        | Error `Timeout -> Hashtbl.remove t.observations token);
      done_ = false;
    }
  in
  Hashtbl.replace t.pending token state;
  transmit t state;
  { obs_token = token; obs_dst = dst; obs_path = path }

let cancel_observe t observation =
  Hashtbl.remove t.observations observation.obs_token;
  (* best-effort deregistration *)
  let message =
    Message.make ~token:observation.obs_token
      ~options:(Message.observe_option 1 :: Message.options_of_path observation.obs_path)
      ~code:Message.code_get ~message_id:(fresh_mid t) ()
  in
  let state =
    { request = message; dst = observation.obs_dst; attempts = 0;
      on_response = (fun _ -> ()); done_ = false }
  in
  Hashtbl.replace t.pending observation.obs_token state;
  transmit t state
