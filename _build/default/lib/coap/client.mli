(** CoAP client with confirmable-message retransmission (RFC 7252 §4.2),
    block-wise transfer (RFC 7959) and observe (RFC 7641).

    Confirmable requests are retransmitted with exponential back-off
    (ACK_TIMEOUT 2 s, doubling, MAX_RETRANSMIT 4) — what lets SUIT
    updates survive the lossy low-power link. *)

module Network = Femto_net.Network
module Kernel = Femto_rtos.Kernel

type t

val create : network:Network.t -> kernel:Kernel.t -> addr:int -> t

val addr : t -> int
val retransmissions : t -> int
val timeouts : t -> int

val request :
  t ->
  dst:int ->
  code:int * int ->
  path:string ->
  ?payload:string ->
  ((Message.t, [ `Timeout ]) result -> unit) ->
  unit
(** Issue a confirmable request; the callback fires exactly once. *)

val get :
  t -> dst:int -> path:string -> ((Message.t, [ `Timeout ]) result -> unit) -> unit

val post :
  t ->
  dst:int ->
  path:string ->
  payload:string ->
  ((Message.t, [ `Timeout ]) result -> unit) ->
  unit

val post_blockwise :
  ?block_size:int ->
  t ->
  dst:int ->
  path:string ->
  payload:string ->
  ((Message.t, [ `Timeout ]) result -> unit) ->
  unit
(** Upload a large payload as sequential Block1 chunks; the callback
    receives the final response (or the first timeout). *)

val get_blockwise :
  ?block_size:int ->
  t ->
  dst:int ->
  path:string ->
  ((Message.t, [ `Timeout ]) result -> unit) ->
  unit
(** Download a resource, following Block2 until complete; the callback
    receives the response with the reassembled payload. *)

(** {2 Observe (RFC 7641)} *)

type observation

val observe : t -> dst:int -> path:string -> (Message.t -> unit) -> observation
(** Register an observe relationship; the listener fires for the
    registration response and for every notification until cancelled. *)

val cancel_observe : t -> observation -> unit
