(** Energy model for the paper's §11 "Virtualization vs Power-Efficiency"
    discussion, with per-platform current draws from the
    microcontrollers' datasheets.  Quantifies both sides of the paper's
    argument: per-execution interpretation cost vs radio energy saved by
    container-sized updates. *)

type profile = {
  platform : Platform.t;
  supply_volts : float;
  active_amps : float;  (** CPU running at 64 MHz *)
  sleep_amps : float;  (** deep sleep with RAM retention *)
  radio_tx_amps : float;  (** transmitting at 0 dBm *)
  radio_bitrate_bps : float;
}

val cortex_m4 : profile
val esp32 : profile
val riscv : profile
val all : profile list

val seconds_of_cycles : profile -> int -> float

val cpu_energy_uj : profile -> cycles:int -> float
(** Energy of active CPU cycles, in microjoules. *)

val radio_energy_uj : profile -> bytes:int -> float
(** Energy to transmit a payload, including per-frame MAC overhead. *)

val duty_cycle_uw : profile -> active_cycles:int -> period_s:float -> float
(** Average power of a duty-cycled workload, in microwatts. *)

val battery_days :
  profile -> active_cycles:int -> period_s:float -> capacity_mah:float -> float
(** Battery life estimate for a coin cell. *)
