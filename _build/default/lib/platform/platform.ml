(* Cycle-cost models for the three microcontroller platforms of the paper's
   evaluation (Appendix A): Arm Cortex-M4 (nRF52840), ESP32 (Xtensa LX6)
   and RISC-V (GD32VF103), all clocked at 64 MHz.

   The model assigns a cycle cost to each interpreted VM instruction class,
   to helper calls and to hook dispatch.  Constants are calibrated so the
   *shape* of the paper's results holds (see DESIGN.md, substitutions):

   - interpreting one eBPF instruction costs tens of cycles (the paper's
     Figure 8 shows ~0.5-2 us/instruction at 64 MHz across engines);
   - the platforms differ by a per-platform scale: the paper's Table 4
     measures the same hosted application at 1750 (M4), 1163 (ESP32) and
     754 (RISC-V) ticks, and empty-hook dispatch at 109/83/106 ticks;
   - CertFC is slower than the optimized interpreter (Figure 8), while the
     rBPF baseline and Femto-Containers are nearly identical;
   - code density differs per ISA (Thumb-2 densest), which Figure 7 uses
     to scale flash footprints. *)

open Femto_ebpf

type engine = Fc | Rbpf | Certfc

let engine_name = function
  | Fc -> "Femto-Container"
  | Rbpf -> "rBPF"
  | Certfc -> "CertFC"

type t = {
  name : string;
  frequency_hz : int;
  insn_scale : float; (* multiplier on the base per-instruction costs *)
  code_density : float; (* flash bytes multiplier relative to Thumb-2 *)
  empty_hook_cycles : int; (* Table 4 'Empty Hook' dispatch cost *)
  context_switch_cycles : int;
  helper_call_cycles : int; (* marshalling in/out of a system call *)
}

let cortex_m4 =
  {
    name = "Cortex-M4";
    frequency_hz = 64_000_000;
    insn_scale = 1.0;
    code_density = 1.0;
    empty_hook_cycles = 109;
    context_switch_cycles = 150;
    helper_call_cycles = 60;
  }

let esp32 =
  {
    name = "ESP32";
    frequency_hz = 64_000_000;
    insn_scale = 0.66;
    code_density = 1.25;
    empty_hook_cycles = 83;
    context_switch_cycles = 130;
    helper_call_cycles = 45;
  }

let riscv =
  {
    name = "RISC-V";
    frequency_hz = 64_000_000;
    insn_scale = 0.43;
    code_density = 1.10;
    empty_hook_cycles = 106;
    context_switch_cycles = 120;
    helper_call_cycles = 40;
  }

let all = [ cortex_m4; esp32; riscv ]

(* Base per-instruction-class interpreter costs on Cortex-M4 for the
   optimized engine, in cycles: fetch + decode (jumptable dispatch) +
   execute.  Memory instructions pay the allow-list walk; lddw reads two
   slots. *)
let base_cost kind =
  match (kind : Insn.kind) with
  | Insn.Alu (true, _, _) -> 54
  | Insn.Alu (false, _, _) -> 61
  | Insn.Load _ -> 93
  | Insn.Store_imm _ | Insn.Store_reg _ -> 88
  | Insn.Lddw_head | Insn.Lddw_tail -> 70
  | Insn.Ja -> 42
  | Insn.Jcond _ -> 64
  | Insn.Call -> 144
  | Insn.End _ -> 46
  | Insn.Exit -> 45
  | Insn.Invalid _ -> 45

(* Engine multipliers: the rBPF extensions in Femto-Containers add
   negligible overhead (paper Figure 8: "similar throughputs"); CertFC's
   defensive, extracted code lags behind. *)
let engine_scale = function Fc -> 1.0 | Rbpf -> 0.98 | Certfc -> 2.4

let insn_cost platform engine kind =
  let c =
    float_of_int (base_cost kind) *. platform.insn_scale *. engine_scale engine
  in
  max 1 (int_of_float (Float.round c))

(* Cost closure in the shape the interpreters accept. *)
let cycle_cost platform engine : Insn.kind -> int = insn_cost platform engine

let us_of_cycles platform cycles =
  float_of_int cycles *. 1_000_000.0 /. float_of_int platform.frequency_hz

(* Hook dispatch with a hosted application: empty dispatch plus engine
   setup (context region + VM reset) before the first instruction runs. *)
let hook_setup_cycles platform engine =
  let base = match engine with Fc -> 260 | Rbpf -> 255 | Certfc -> 420 in
  max 1 (int_of_float (Float.round (float_of_int base *. platform.insn_scale)))
