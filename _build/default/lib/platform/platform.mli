(** Cycle-cost models for the three microcontroller platforms of the
    paper's evaluation (Appendix A): Arm Cortex-M4 (nRF52840), ESP32
    (Xtensa LX6) and RISC-V (GD32VF103), all at 64 MHz.

    The constants are calibrated so the *shape* of the paper's results
    holds (see DESIGN.md, substitutions, and the comments in the
    implementation). *)

type engine = Fc | Rbpf | Certfc

val engine_name : engine -> string

type t = {
  name : string;
  frequency_hz : int;
  insn_scale : float;  (** multiplier on the base per-instruction costs *)
  code_density : float;  (** flash bytes multiplier relative to Thumb-2 *)
  empty_hook_cycles : int;  (** Table 4 'Empty Hook' dispatch cost *)
  context_switch_cycles : int;
  helper_call_cycles : int;
}

val cortex_m4 : t
val esp32 : t
val riscv : t
val all : t list

val base_cost : Femto_ebpf.Insn.kind -> int
(** Per-instruction-class interpreter cost on Cortex-M4 for the optimized
    engine, in cycles. *)

val engine_scale : engine -> float
(** rBPF ≈ Femto-Containers; CertFC lags (paper Figure 8). *)

val insn_cost : t -> engine -> Femto_ebpf.Insn.kind -> int

val cycle_cost : t -> engine -> Femto_ebpf.Insn.kind -> int
(** Cost closure in the shape the interpreters accept. *)

val us_of_cycles : t -> int -> float

val hook_setup_cycles : t -> engine -> int
(** Engine set-up between hook dispatch and the first VM instruction. *)
