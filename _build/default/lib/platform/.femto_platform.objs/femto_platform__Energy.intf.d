lib/platform/energy.mli: Platform
