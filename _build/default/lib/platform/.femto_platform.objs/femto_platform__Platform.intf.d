lib/platform/platform.mli: Femto_ebpf
