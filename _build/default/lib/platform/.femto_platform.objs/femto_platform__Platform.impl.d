lib/platform/platform.ml: Femto_ebpf Float Insn
