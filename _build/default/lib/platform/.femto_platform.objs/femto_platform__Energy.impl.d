lib/platform/energy.ml: Float Platform
