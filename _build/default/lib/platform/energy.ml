(* Energy model for the paper's §11 discussion ("Virtualization vs
   Power-Efficiency").

   The paper argues qualitatively that (a) interpretation costs energy on
   every execution, but (b) updating a Femto-Container instead of the full
   firmware saves radio energy and downtime.  This model quantifies both
   sides with per-platform current draws taken from the microcontrollers'
   datasheets (nRF52840, ESP32, GD32VF103), so the trade-off becomes a
   reproducible table (see Experiments.discussion_energy).

   E = V * (I_active * t_active + I_sleep * t_sleep) + E_radio_per_byte * bytes *)

type profile = {
  platform : Platform.t;
  supply_volts : float;
  active_amps : float; (* CPU running at 64 MHz *)
  sleep_amps : float; (* deep sleep with RAM retention *)
  radio_tx_amps : float; (* transmitting at 0 dBm *)
  radio_bitrate_bps : float; (* effective 802.15.4-class throughput *)
}

(* nRF52840: ~6.3 mA CPU active, 1.5 uA system-off+RAM, 4.8 mA radio TX. *)
let cortex_m4 =
  {
    platform = Platform.cortex_m4;
    supply_volts = 3.0;
    active_amps = 6.3e-3;
    sleep_amps = 1.5e-6;
    radio_tx_amps = 4.8e-3;
    radio_bitrate_bps = 250_000.0;
  }

(* ESP32: ~40 mA active (one LX6 core), 10 uA deep sleep, ~120 mA WiFi TX
   (modelled here at 802.15.4-like framing for comparability). *)
let esp32 =
  {
    platform = Platform.esp32;
    supply_volts = 3.3;
    active_amps = 40.0e-3;
    sleep_amps = 10.0e-6;
    radio_tx_amps = 120.0e-3;
    radio_bitrate_bps = 250_000.0;
  }

(* GD32VF103: ~9 mA active at 64 MHz, 2.6 uA standby, external radio
   comparable to the nRF one. *)
let riscv =
  {
    platform = Platform.riscv;
    supply_volts = 3.3;
    active_amps = 9.0e-3;
    sleep_amps = 2.6e-6;
    radio_tx_amps = 4.8e-3;
    radio_bitrate_bps = 250_000.0;
  }

let all = [ cortex_m4; esp32; riscv ]

let seconds_of_cycles profile cycles =
  float_of_int cycles /. float_of_int profile.platform.Platform.frequency_hz

(* Energy of [cycles] of active CPU, in microjoules. *)
let cpu_energy_uj profile ~cycles =
  profile.supply_volts *. profile.active_amps *. seconds_of_cycles profile cycles
  *. 1e6

(* Energy to transmit [bytes] over the radio, in microjoules; includes the
   6LoWPAN per-frame overhead of the fragmentation layer. *)
let radio_energy_uj profile ~bytes =
  let frames = max 1 ((bytes + 120) / 121) in
  let on_air_bytes = bytes + (frames * 23) (* MAC header + FCS per frame *) in
  let seconds = float_of_int on_air_bytes *. 8.0 /. profile.radio_bitrate_bps in
  profile.supply_volts *. profile.radio_tx_amps *. seconds *. 1e6

(* Average power of a duty-cycled workload: [active_cycles] of work every
   [period_s] seconds, sleeping otherwise.  Returns microwatts. *)
let duty_cycle_uw profile ~active_cycles ~period_s =
  let t_active = seconds_of_cycles profile active_cycles in
  let t_sleep = Float.max 0.0 (period_s -. t_active) in
  let joules =
    profile.supply_volts
    *. ((profile.active_amps *. t_active) +. (profile.sleep_amps *. t_sleep))
  in
  joules /. period_s *. 1e6

(* Battery life estimate in days for a duty-cycled workload on a coin cell
   of [capacity_mah] (CR2477: 1000 mAh). *)
let battery_days profile ~active_cycles ~period_s ~capacity_mah =
  let avg_uw = duty_cycle_uw profile ~active_cycles ~period_s in
  let avg_ua = avg_uw /. profile.supply_volts in
  capacity_mah *. 1000.0 /. avg_ua /. 24.0
