lib/suit/suit.ml: Femto_cbor Femto_cose Femto_crypto Int64 List Printf Result String
