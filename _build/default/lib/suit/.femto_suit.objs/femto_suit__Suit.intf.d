lib/suit/suit.mli: Femto_cbor Femto_cose
