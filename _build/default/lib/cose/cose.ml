(* COSE_Sign1 (RFC 8152) over the CBOR codec.

   SUIT manifests are wrapped in a COSE_Sign1 envelope:
     [ protected : bstr, unprotected : map, payload : bstr / nil, sig : bstr ]
   The signature covers the canonical Sig_structure
     [ "Signature1", protected, external_aad, payload ].

   Algorithm: HMAC-SHA256 stands in for ed25519 here (see DESIGN.md and
   lib/crypto); COSE calls this construction "MAC0-as-signature" and the
   envelope layout is unchanged, so verification, tamper rejection and
   key separation behave exactly as in the paper's update pipeline. *)

module Cbor = Femto_cbor.Cbor

(* Private COSE algorithm identifier for the HMAC substitution; real
   ed25519 would be -8 (EdDSA). *)
let alg_hmac_sha256 = 5L

type key = { key_id : string; secret : string }

let make_key ~key_id ~secret = { key_id; secret }

type envelope = {
  protected : Cbor.t; (* decoded protected header map *)
  unprotected : (Cbor.t * Cbor.t) list;
  payload : string;
  signature : string;
}

let header_alg = Cbor.Int 1L
let header_kid = Cbor.Int 4L

let protected_header key =
  Cbor.Map [ (header_alg, Cbor.Int alg_hmac_sha256); (header_kid, Cbor.Text key.key_id) ]

let sig_structure ~protected_bytes ~external_aad ~payload =
  Cbor.encode
    (Cbor.Array
       [
         Cbor.Text "Signature1";
         Cbor.Bytes protected_bytes;
         Cbor.Bytes external_aad;
         Cbor.Bytes payload;
       ])

(* [sign key payload] produces the serialized COSE_Sign1 envelope. *)
let sign ?(external_aad = "") key payload =
  let protected_bytes = Cbor.encode (protected_header key) in
  let to_sign = sig_structure ~protected_bytes ~external_aad ~payload in
  let signature = Femto_crypto.Crypto.hmac_sha256 ~key:key.secret to_sign in
  Cbor.encode
    (Cbor.Tag
       ( 18L (* COSE_Sign1 *),
         Cbor.Array
           [
             Cbor.Bytes protected_bytes;
             Cbor.Map [];
             Cbor.Bytes payload;
             Cbor.Bytes signature;
           ] ))

type error =
  | Malformed of string
  | Unknown_algorithm of int64
  | Wrong_key_id of string
  | Bad_signature

let error_to_string = function
  | Malformed m -> Printf.sprintf "malformed COSE envelope: %s" m
  | Unknown_algorithm alg -> Printf.sprintf "unknown algorithm %Ld" alg
  | Wrong_key_id kid -> Printf.sprintf "wrong key id %S" kid
  | Bad_signature -> "signature verification failed"

let parse data =
  match Cbor.decode data with
  | exception Cbor.Decode_error m -> Error (Malformed m)
  | decoded -> (
      let body = match decoded with Cbor.Tag (18L, body) -> body | other -> other in
      match body with
      | Cbor.Array
          [ Cbor.Bytes protected_bytes; Cbor.Map unprotected; Cbor.Bytes payload;
            Cbor.Bytes signature ] -> (
          match Cbor.decode protected_bytes with
          | exception Cbor.Decode_error m -> Error (Malformed m)
          | protected -> Ok { protected; unprotected; payload; signature })
      | _ -> Error (Malformed "expected 4-element COSE_Sign1 array"))

(* [verify key data] checks the envelope and returns the authenticated
   payload. *)
let verify ?(external_aad = "") key data =
  match parse data with
  | Error e -> Error e
  | Ok envelope -> (
      match Cbor.find_map_entry envelope.protected header_alg with
      | Some (Cbor.Int alg) when Int64.equal alg alg_hmac_sha256 -> (
          match Cbor.find_map_entry envelope.protected header_kid with
          | Some (Cbor.Text kid) when String.equal kid key.key_id ->
              let protected_bytes =
                (* re-encode exactly the bytes that were signed *)
                Cbor.encode envelope.protected
              in
              let to_sign =
                sig_structure ~protected_bytes ~external_aad
                  ~payload:envelope.payload
              in
              let expected =
                Femto_crypto.Crypto.hmac_sha256 ~key:key.secret to_sign
              in
              if Femto_crypto.Crypto.constant_time_equal expected envelope.signature
              then Ok envelope.payload
              else Error Bad_signature
          | Some (Cbor.Text kid) -> Error (Wrong_key_id kid)
          | _ -> Error (Malformed "missing key id"))
      | Some (Cbor.Int alg) -> Error (Unknown_algorithm alg)
      | _ -> Error (Malformed "missing algorithm"))
