lib/cose/cose.ml: Femto_cbor Femto_crypto Int64 Printf String
