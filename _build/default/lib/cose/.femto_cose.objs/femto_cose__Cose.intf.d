lib/cose/cose.mli: Femto_cbor
