(* Register file of the CertFC proof model.

   Mirrors the Coq development of the paper ([25], CertFC): registers are
   an inductive type and the register file is a pure record updated
   functionally — no mutation, so every intermediate machine state is a
   first-class value the proofs can reason about. *)

type t = {
  r0 : int64;
  r1 : int64;
  r2 : int64;
  r3 : int64;
  r4 : int64;
  r5 : int64;
  r6 : int64;
  r7 : int64;
  r8 : int64;
  r9 : int64;
  r10 : int64;
}

let init ~r10 =
  { r0 = 0L; r1 = 0L; r2 = 0L; r3 = 0L; r4 = 0L; r5 = 0L; r6 = 0L; r7 = 0L;
    r8 = 0L; r9 = 0L; r10 }

let get t = function
  | 0 -> Ok t.r0
  | 1 -> Ok t.r1
  | 2 -> Ok t.r2
  | 3 -> Ok t.r3
  | 4 -> Ok t.r4
  | 5 -> Ok t.r5
  | 6 -> Ok t.r6
  | 7 -> Ok t.r7
  | 8 -> Ok t.r8
  | 9 -> Ok t.r9
  | 10 -> Ok t.r10
  | reg -> Error reg

(* r10 is read-only by construction: [set] refuses it. *)
let set t reg value =
  match reg with
  | 0 -> Ok { t with r0 = value }
  | 1 -> Ok { t with r1 = value }
  | 2 -> Ok { t with r2 = value }
  | 3 -> Ok { t with r3 = value }
  | 4 -> Ok { t with r4 = value }
  | 5 -> Ok { t with r5 = value }
  | 6 -> Ok { t with r6 = value }
  | 7 -> Ok { t with r7 = value }
  | 8 -> Ok { t with r8 = value }
  | 9 -> Ok { t with r9 = value }
  | reg -> Error reg

let with_args t args =
  let pick i default = if Array.length args > i then args.(i) else default in
  {
    t with
    r1 = pick 0 t.r1;
    r2 = pick 1 t.r2;
    r3 = pick 2 t.r3;
    r4 = pick 3 t.r4;
    r5 = pick 4 t.r5;
  }
