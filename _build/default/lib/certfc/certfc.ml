(* Facade for CertFC, the formally-verified-style Femto-Container runtime
   (defensive checker + purely functional interpreter). *)

module Regs = Regs
module Check = Check
module Interp = Interp

type t = Interp.t

let load ?(config = Femto_vm.Config.default) ?cycle_cost ~helpers ~regions
    program =
  match Check.check config program with
  | Error fault -> Error fault
  | Ok (_ : Check.analysis) ->
      Ok (Interp.create ~config ?cycle_cost ~helpers ~regions program)

let load_unverified ?(config = Femto_vm.Config.default) ?cycle_cost ~helpers
    ~regions program =
  Interp.create ~config ?cycle_cost ~helpers ~regions program

let run = Interp.run
let mem = Interp.mem
let last_state = Interp.last_state
