lib/certfc/interp.ml: Bytes Femto_ebpf Femto_vm Insn Int32 Int64 List Opcode Program Regs Result Sys
