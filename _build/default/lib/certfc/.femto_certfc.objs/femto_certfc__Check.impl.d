lib/certfc/check.ml: Femto_ebpf Femto_vm Insn List Program Result
