lib/certfc/regs.ml: Array
