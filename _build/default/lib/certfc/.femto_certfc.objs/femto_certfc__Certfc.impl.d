lib/certfc/certfc.ml: Check Femto_vm Interp Regs
