(** Install-time transpilation — the optimization the paper proposes in
    §11 ("Install Time vs Execution Time"): convert the application once,
    at install time, so execution no longer pays per-instruction
    fetch/decode.

    Each verified instruction is compiled to a closure over the VM state
    (the host-language analogue of transpiling to native code).  All
    defensive runtime checks are compiled into the closures, so the
    isolation guarantees are identical to the interpreter's — asserted on
    random programs by the test suite. *)

type t

val load :
  ?config:Config.t ->
  helpers:Helper.t ->
  regions:Region.t list ->
  Femto_ebpf.Program.t ->
  (t, Fault.t) result
(** Verify, then transpile.  The install-time cost is the point: a longer
    cold start buys faster executions. *)

val run : ?args:int64 array -> t -> (int64, Fault.t) result

val insns_executed : t -> int
(** Instructions executed by the most recent [run]. *)
