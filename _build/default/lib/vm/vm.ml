(* Facade for the Femto-Container virtual machine.

   Typical use:

     let helpers = Vm.Helper.create () in
     let program = Femto_ebpf.Asm.assemble source in
     match Vm.load ~helpers ~regions program with
     | Error fault -> ...
     | Ok vm -> Vm.run vm ~args:[| ctx_ptr |] *)

module Fault = Fault
module Region = Region
module Mem = Mem
module Helper = Helper
module Config = Config
module Verifier = Verifier
module Interp = Interp

type t = Interp.t

(* [load] verifies then pre-decodes; a program that fails pre-flight checks
   is never instantiated. *)
let load ?(config = Config.default) ?cycle_cost ~helpers ~regions program =
  match Verifier.verify ~helpers config program with
  | Error fault -> Error fault
  | Ok (_ : Verifier.ok) ->
      Ok (Interp.create ~config ?cycle_cost ~helpers ~regions program)

(* [load_unverified] skips pre-flight checks; used by tests and benchmarks
   to demonstrate that the interpreter's defensive checks still hold. *)
let load_unverified ?(config = Config.default) ?cycle_cost ~helpers ~regions
    program =
  Interp.create ~config ?cycle_cost ~helpers ~regions program

let run = Interp.run
let stats = Interp.stats
let mem = Interp.mem
let registers = Interp.registers
