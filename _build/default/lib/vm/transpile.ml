(* Install-time transpilation — the optimization the paper proposes in
   §11 ("Install Time vs Execution Time"): convert the whole application
   once, at install time, on the device, so that execution no longer pays
   per-instruction fetch/decode.

   Here each verified instruction is compiled to an OCaml closure over the
   VM state (the host-language analogue of transpiling to native code);
   the run loop is then a plain indexed call.  All defensive runtime
   checks — allow-list memory access, division by zero, budgets — are
   compiled into the closures, so the isolation guarantees are identical
   to the interpreter's, which the test suite asserts on random
   programs. *)

open Femto_ebpf

type state = {
  regs : int64 array;
  mem : Mem.t;
  stack_data : bytes;
  helpers : Helper.t;
  config : Config.t;
  mutable pc : int;
  mutable insns_executed : int;
  mutable branches_taken : int;
  mutable result : int64 option;
  mutable fault : Fault.t option;
}

type t = { state : state; ops : (state -> unit) array; dynamic_limit : int }

let fail state fault = state.fault <- Some fault

let bump_branch state =
  state.branches_taken <- state.branches_taken + 1;
  if state.branches_taken > state.config.Config.max_branches then
    fail state (Fault.Branch_budget_exhausted { taken = state.branches_taken })

(* Compile one instruction at [pc] to a closure.  The pre-flight verifier
   ran before us, so registers and jump targets are known-good; memory and
   arithmetic checks remain dynamic. *)
let compile_insn program pc =
  let insn = Program.get program pc in
  let dst = insn.Insn.dst and src = insn.Insn.src in
  let offset = insn.Insn.offset in
  let sext_imm = Int64.of_int32 insn.Insn.imm in
  match Insn.kind insn with
  | Insn.Alu (is64, op, source) ->
      let eval = if is64 then Interp.alu64 else Interp.alu32 in
      (match source with
      | Opcode.Src_imm ->
          fun state -> (
            match eval pc op state.regs.(dst) sext_imm with
            | Ok v ->
                state.regs.(dst) <- v;
                state.pc <- pc + 1
            | Error fault -> fail state fault)
      | Opcode.Src_reg ->
          fun state -> (
            match eval pc op state.regs.(dst) state.regs.(src) with
            | Ok v ->
                state.regs.(dst) <- v;
                state.pc <- pc + 1
            | Error fault -> fail state fault))
  | Insn.Load size ->
      let nbytes = Opcode.size_bytes size in
      fun state ->
        let addr = Int64.add state.regs.(src) (Int64.of_int offset) in
        (match Mem.load state.mem ~addr ~size:nbytes with
        | Ok v ->
            state.regs.(dst) <- v;
            state.pc <- pc + 1
        | Error () ->
            fail state (Fault.Memory_access { pc; addr; size = nbytes; write = false }))
  | Insn.Store_imm size ->
      let nbytes = Opcode.size_bytes size in
      fun state ->
        let addr = Int64.add state.regs.(dst) (Int64.of_int offset) in
        (match Mem.store state.mem ~addr ~size:nbytes sext_imm with
        | Ok () -> state.pc <- pc + 1
        | Error () ->
            fail state (Fault.Memory_access { pc; addr; size = nbytes; write = true }))
  | Insn.Store_reg size ->
      let nbytes = Opcode.size_bytes size in
      fun state ->
        let addr = Int64.add state.regs.(dst) (Int64.of_int offset) in
        (match Mem.store state.mem ~addr ~size:nbytes state.regs.(src) with
        | Ok () -> state.pc <- pc + 1
        | Error () ->
            fail state (Fault.Memory_access { pc; addr; size = nbytes; write = true }))
  | Insn.Lddw_head ->
      let imm64 =
        if pc + 1 < Program.length program then
          Insn.lddw_imm ~head:insn ~tail:(Program.get program (pc + 1))
        else 0L
      in
      fun state ->
        state.regs.(dst) <- imm64;
        state.pc <- pc + 2
  | Insn.Lddw_tail ->
      (* never entered: lddw_head skips it, and the verifier refuses jumps
         into it *)
      fun state -> state.pc <- pc + 1
  | Insn.Ja ->
      let target = pc + 1 + offset in
      fun state ->
        bump_branch state;
        state.pc <- target
  | Insn.Jcond (is64, cond, source) ->
      let target = pc + 1 + offset in
      (match source with
      | Opcode.Src_imm ->
          fun state ->
            if Interp.condition cond is64 state.regs.(dst) sext_imm then begin
              bump_branch state;
              state.pc <- target
            end
            else state.pc <- pc + 1
      | Opcode.Src_reg ->
          fun state ->
            if Interp.condition cond is64 state.regs.(dst) state.regs.(src) then begin
              bump_branch state;
              state.pc <- target
            end
            else state.pc <- pc + 1)
  | Insn.Call ->
      let id = Int32.to_int insn.Insn.imm in
      fun state -> (
        match Helper.find state.helpers id with
        | None -> fail state (Fault.Unknown_helper { pc; id })
        | Some entry -> (
            let args =
              {
                Helper.a1 = state.regs.(1);
                a2 = state.regs.(2);
                a3 = state.regs.(3);
                a4 = state.regs.(4);
                a5 = state.regs.(5);
              }
            in
            match entry.Helper.fn state.mem args with
            | Ok r0 ->
                state.regs.(0) <- r0;
                state.pc <- pc + 1
            | Error message -> fail state (Fault.Helper_error { pc; id; message })))
  | Insn.End endianness ->
      let width = insn.Insn.imm in
      fun state -> (
        match Interp.byte_swap pc endianness width state.regs.(dst) with
        | Ok v ->
            state.regs.(dst) <- v;
            state.pc <- pc + 1
        | Error fault -> fail state fault)
  | Insn.Exit -> fun state -> state.result <- Some state.regs.(0)
  | Insn.Invalid opcode -> fun state -> fail state (Fault.Invalid_opcode { pc; opcode })

(* [load] verifies, then transpiles.  The install-time cost is the point:
   it trades a longer cold start for faster execution. *)
let load ?(config = Config.default) ~helpers ~regions program =
  match Verifier.verify ~helpers config program with
  | Error fault -> Error fault
  | Ok (_ : Verifier.ok) ->
      let stack_data = Bytes.make config.Config.stack_size '\000' in
      let stack =
        Region.make ~name:"stack" ~vaddr:config.Config.stack_vaddr
          ~perm:Region.Read_write stack_data
      in
      let state =
        {
          regs = Array.make 11 0L;
          mem = Mem.create (stack :: regions);
          stack_data;
          helpers;
          config;
          pc = 0;
          insns_executed = 0;
          branches_taken = 0;
          result = None;
          fault = None;
        }
      in
      let ops =
        Array.init (Program.length program) (fun pc -> compile_insn program pc)
      in
      Ok { state; ops; dynamic_limit = Config.dynamic_instruction_limit config }

let run ?(args = [||]) t =
  let state = t.state in
  Array.fill state.regs 0 11 0L;
  Bytes.fill state.stack_data 0 (Bytes.length state.stack_data) '\000';
  state.regs.(10) <-
    Int64.add state.config.Config.stack_vaddr
      (Int64.of_int state.config.Config.stack_size);
  Array.iteri (fun i v -> if i < 5 then state.regs.(i + 1) <- v) args;
  state.pc <- 0;
  state.insns_executed <- 0;
  state.branches_taken <- 0;
  state.result <- None;
  state.fault <- None;
  let ops = t.ops in
  let len = Array.length ops in
  let rec loop () =
    match state.fault with
    | Some fault -> Error fault
    | None -> (
        match state.result with
        | Some r0 -> Ok r0
        | None ->
            if state.pc < 0 || state.pc >= len then
              Error (Fault.Fall_off_end { pc = state.pc })
            else begin
              state.insns_executed <- state.insns_executed + 1;
              if state.insns_executed > t.dynamic_limit then
                Error
                  (Fault.Instruction_budget_exhausted
                     { executed = state.insns_executed })
              else begin
                (Array.unsafe_get ops state.pc) state;
                loop ()
              end
            end)
  in
  loop ()

let insns_executed t = t.state.insns_executed
