(** Pre-flight instruction checker (paper §7).

    Runs once, before a program is executed for the first time.  After a
    program passes, the interpreter can trust: every opcode decodes,
    register fields are in range, r10 is never written, every jump lands
    on a real instruction inside the program, every [lddw] pair is
    complete, reserved fields are zero, execution cannot fall off the end,
    and the program fits the static budget N_i. *)

type ok = {
  insn_count : int;  (** program length in slots *)
  branch_count : int;  (** static count of branch instructions *)
  call_ids : int list;  (** helper ids referenced, in program order *)
}

val writes_dst : Femto_ebpf.Insn.kind -> bool
(** Whether the instruction writes its destination register (used for the
    r10 read-only check; store instructions only read [dst]). *)

val is_branch : Femto_ebpf.Insn.kind -> bool
(** Whether the instruction is a (conditional or unconditional) branch. *)

val check_registers :
  int -> Femto_ebpf.Insn.t -> Femto_ebpf.Insn.kind -> (unit, Fault.t) result

val check_reserved :
  int -> Femto_ebpf.Insn.t -> Femto_ebpf.Insn.kind -> (unit, Fault.t) result
(** Reserved-field-zero checks, shared with the CertFC checker. *)

val verify :
  ?helpers:Helper.t -> Config.t -> Femto_ebpf.Program.t -> (ok, Fault.t) result
(** [verify ?helpers config program] returns static counts on success or
    the first fault found.  When [helpers] is given, every [call] target
    must be a registered helper. *)
