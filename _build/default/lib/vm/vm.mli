(** Facade for the Femto-Container virtual machine.

    {[
      let helpers = Vm.Helper.create () in
      let program = Femto_ebpf.Asm.assemble source in
      match Vm.load ~helpers ~regions program with
      | Error fault -> ...
      | Ok vm -> Vm.run vm ~args:[| ctx_ptr |]
    ]} *)

module Fault = Fault
module Region = Region
module Mem = Mem
module Helper = Helper
module Config = Config
module Verifier = Verifier
module Interp = Interp

type t = Interp.t

val load :
  ?config:Config.t ->
  ?cycle_cost:(Femto_ebpf.Insn.kind -> int) ->
  helpers:Helper.t ->
  regions:Region.t list ->
  Femto_ebpf.Program.t ->
  (t, Fault.t) result
(** Verify then pre-decode; a program that fails pre-flight checks is
    never instantiated.  [cycle_cost] plugs a platform cycle model in. *)

val load_unverified :
  ?config:Config.t ->
  ?cycle_cost:(Femto_ebpf.Insn.kind -> int) ->
  helpers:Helper.t ->
  regions:Region.t list ->
  Femto_ebpf.Program.t ->
  t
(** Skip pre-flight checks (tests/benchmarks only): the interpreter's
    defensive checks still contain any fault. *)

val run : ?args:int64 array -> t -> (int64, Fault.t) result
(** Execute from slot 0 with r1..r5 preloaded from [args]; returns r0. *)

val stats : t -> Interp.stats
val mem : t -> Mem.t
val registers : t -> int64 array
