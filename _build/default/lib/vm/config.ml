(* VM configuration.

   The defaults mirror the paper's implementation: a 512 B stack dictated
   by the eBPF specification, and finite-execution budgets N_i (static
   instruction count) and N_b (taken branches) so a single execution runs
   at most N_i * N_b instructions. *)

type t = {
  stack_size : int;
  stack_vaddr : int64; (* virtual address of the stack's first byte *)
  max_insns : int; (* N_i: maximum program length in slots *)
  max_branches : int; (* N_b: maximum taken branches per execution *)
}

let default =
  {
    stack_size = 512;
    stack_vaddr = 0x1000_0000L;
    max_insns = 4096;
    max_branches = 8192;
  }

(* rBPF-compatible configuration: identical budgets; kept distinct so the
   benchmark harness can label the two engines separately. *)
let rbpf_compat = default

let dynamic_instruction_limit t = t.max_insns * t.max_branches
