(** Memory regions of a container's allow-list.

    Each region maps a contiguous virtual-address window onto a backing
    [bytes] buffer with independent read/write permission — the entries
    of the paper's per-container access lists. *)

type perm = Read_only | Write_only | Read_write

val readable : perm -> bool
val writable : perm -> bool
val perm_to_string : perm -> string

type t = {
  name : string;  (** for diagnostics *)
  vaddr : int64;  (** first valid virtual address *)
  data : bytes;  (** backing store; its length is the region length *)
  perm : perm;
}

val make : name:string -> vaddr:int64 -> perm:perm -> bytes -> t

val length : t -> int

val contains : t -> int64 -> int -> bool
(** [contains t addr size] holds when the [size]-byte access at [addr]
    lies entirely inside the region (unsigned address comparison, no
    wraparound). *)

val offset_of : t -> int64 -> int
(** Byte offset of [addr] into the backing buffer; only meaningful after
    {!contains} succeeded. *)

val pp : Format.formatter -> t -> unit
