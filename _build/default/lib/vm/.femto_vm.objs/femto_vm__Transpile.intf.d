lib/vm/transpile.mli: Config Fault Femto_ebpf Helper Region
