lib/vm/helper.ml: Hashtbl List Mem Option Printf
