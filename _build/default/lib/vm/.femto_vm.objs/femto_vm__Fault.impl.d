lib/vm/fault.ml: Format Printf
