lib/vm/region.mli: Format
