lib/vm/config.ml:
