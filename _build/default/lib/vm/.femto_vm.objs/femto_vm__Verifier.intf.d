lib/vm/verifier.mli: Config Fault Femto_ebpf Helper
