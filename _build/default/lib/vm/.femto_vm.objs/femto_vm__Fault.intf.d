lib/vm/fault.mli: Format
