lib/vm/vm.ml: Config Fault Helper Interp Mem Region Verifier
