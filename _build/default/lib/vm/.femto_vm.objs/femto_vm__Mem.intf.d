lib/vm/mem.mli: Region
