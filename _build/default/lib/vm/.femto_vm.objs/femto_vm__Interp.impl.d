lib/vm/interp.ml: Array Bytes Config Fault Femto_ebpf Helper Insn Int32 Int64 List Mem Opcode Program Region Sys
