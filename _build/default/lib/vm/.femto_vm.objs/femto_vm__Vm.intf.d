lib/vm/vm.mli: Config Fault Femto_ebpf Helper Interp Mem Region Verifier
