lib/vm/verifier.ml: Array Config Fault Femto_ebpf Helper Insn Int32 List Opcode Program Result
