lib/vm/mem.ml: Array Bytes Int64 Region
