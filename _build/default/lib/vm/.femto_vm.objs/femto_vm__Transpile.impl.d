lib/vm/transpile.ml: Array Bytes Config Fault Femto_ebpf Helper Insn Int32 Int64 Interp Mem Opcode Program Region Verifier
