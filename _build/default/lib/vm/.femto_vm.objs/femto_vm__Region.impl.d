lib/vm/region.ml: Bytes Format Int64
