lib/vm/config.mli:
