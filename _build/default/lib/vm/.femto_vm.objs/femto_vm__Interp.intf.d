lib/vm/interp.mli: Config Fault Femto_ebpf Helper Mem Region
