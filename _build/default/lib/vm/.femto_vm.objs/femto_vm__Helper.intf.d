lib/vm/helper.mli: Mem
