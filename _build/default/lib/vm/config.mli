(** VM configuration.

    Defaults mirror the paper's implementation: a 512 B stack (dictated by
    the eBPF specification) and finite-execution budgets N_i (static
    instruction count) and N_b (taken branches), bounding one execution to
    at most N_i * N_b instructions. *)

type t = {
  stack_size : int;  (** bytes of VM stack (default 512) *)
  stack_vaddr : int64;  (** virtual address of the stack's first byte *)
  max_insns : int;  (** N_i: maximum program length in slots *)
  max_branches : int;  (** N_b: maximum taken branches per execution *)
}

val default : t

val rbpf_compat : t
(** The plain-rBPF baseline configuration (identical budgets; kept
    distinct so benchmarks can label the engines separately). *)

val dynamic_instruction_limit : t -> int
(** [max_insns * max_branches], the hard per-execution instruction cap. *)
