(* A memory region in a container's allow-list.

   Each region maps a contiguous virtual address window onto a backing
   [bytes] buffer, with independent read/write flags — the paper's
   allow-list entries ("memory regions can have individual flags for
   allowing read/write access"). *)

type perm = Read_only | Write_only | Read_write

let readable = function Read_only | Read_write -> true | Write_only -> false
let writable = function Write_only | Read_write -> true | Read_only -> false

let perm_to_string = function
  | Read_only -> "r-"
  | Write_only -> "-w"
  | Read_write -> "rw"

type t = {
  name : string;
  vaddr : int64; (* first valid virtual address *)
  data : bytes; (* backing store; region length = Bytes.length data *)
  perm : perm;
}

let make ~name ~vaddr ~perm data = { name; vaddr; data; perm }
let length t = Bytes.length t.data

(* [contains t addr size] holds when the [size]-byte access starting at
   [addr] lies entirely within the region.  Addresses are compared as
   unsigned 64-bit values; region lengths are small so overflow of
   [addr + size] only happens for hostile addresses, which we reject. *)
let contains t addr size =
  let open Int64 in
  let last = add addr (of_int (size - 1)) in
  unsigned_compare addr t.vaddr >= 0
  && unsigned_compare last addr >= 0 (* no wraparound *)
  && unsigned_compare last (add t.vaddr (of_int (length t - 1))) <= 0
  && length t > 0

let offset_of t addr = Int64.to_int (Int64.sub addr t.vaddr)

let pp ppf t =
  Format.fprintf ppf "%s@0x%Lx+%d[%s]" t.name t.vaddr (length t)
    (perm_to_string t.perm)
