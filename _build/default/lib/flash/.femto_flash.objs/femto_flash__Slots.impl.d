lib/flash/slots.ml: Bytes Femto_crypto Flash Fun Int32 Int64 List Printf Result String
