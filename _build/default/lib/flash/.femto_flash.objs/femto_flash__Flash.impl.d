lib/flash/flash.ml: Array Bytes Char Printf
