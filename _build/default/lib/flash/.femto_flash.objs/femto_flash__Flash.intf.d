lib/flash/flash.mli:
