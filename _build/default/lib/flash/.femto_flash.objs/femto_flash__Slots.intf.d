lib/flash/slots.mli: Flash
