(* NOR-flash simulator.

   Real microcontroller flash has erase-before-write semantics: an erase
   sets a page to all-ones, and programming can only clear bits (1 -> 0).
   Writing without erasing silently corrupts data on real hardware; this
   simulator makes that a checked error so firmware logic (the slot
   manager, SUIT install path) is forced to handle it correctly.  Erase
   counters per page model wear. *)

type t = {
  page_size : int;
  pages : int;
  data : bytes;
  erase_counts : int array;
  mutable writes : int;
  mutable erases : int;
}

type error =
  | Out_of_range of { offset : int; length : int }
  | Write_needs_erase of { page : int }
  | Unaligned_erase of { offset : int }

let error_to_string = function
  | Out_of_range { offset; length } ->
      Printf.sprintf "access [%d, +%d) outside flash" offset length
  | Write_needs_erase { page } ->
      Printf.sprintf "write would set bits 0->1 in page %d (erase first)" page
  | Unaligned_erase { offset } ->
      Printf.sprintf "erase at %d is not page-aligned" offset

let create ?(page_size = 256) ~pages () =
  {
    page_size;
    pages;
    data = Bytes.make (page_size * pages) '\xff';
    erase_counts = Array.make pages 0;
    writes = 0;
    erases = 0;
  }

let size t = t.page_size * t.pages
let page_size t = t.page_size
let erase_count t page = t.erase_counts.(page)
let total_erases t = t.erases

let check_range t offset length =
  if offset < 0 || length < 0 || offset + length > size t then
    Error (Out_of_range { offset; length })
  else Ok ()

let read t ~offset ~length =
  match check_range t offset length with
  | Error e -> Error e
  | Ok () -> Ok (Bytes.sub t.data offset length)

(* Program bytes: every written bit must go 1 -> 0 or stay; a 0 -> 1
   transition means the caller forgot to erase. *)
let write t ~offset payload =
  let length = Bytes.length payload in
  match check_range t offset length with
  | Error e -> Error e
  | Ok () ->
      let violating_page = ref None in
      for i = 0 to length - 1 do
        let current = Char.code (Bytes.get t.data (offset + i)) in
        let wanted = Char.code (Bytes.get payload i) in
        (* wanted must be a subset of current's set bits *)
        if wanted land lnot current <> 0 && !violating_page = None then
          violating_page := Some ((offset + i) / t.page_size)
      done;
      (match !violating_page with
      | Some page -> Error (Write_needs_erase { page })
      | None ->
          Bytes.blit payload 0 t.data offset length;
          t.writes <- t.writes + 1;
          Ok ())

let erase_page t ~page =
  if page < 0 || page >= t.pages then
    Error (Out_of_range { offset = page * t.page_size; length = t.page_size })
  else begin
    Bytes.fill t.data (page * t.page_size) t.page_size '\xff';
    t.erase_counts.(page) <- t.erase_counts.(page) + 1;
    t.erases <- t.erases + 1;
    Ok ()
  end

(* Erase the whole page range covering [offset, offset+length). *)
let erase_range t ~offset ~length =
  if offset mod t.page_size <> 0 then Error (Unaligned_erase { offset })
  else
    match check_range t offset length with
    | Error e -> Error e
    | Ok () ->
        let first = offset / t.page_size in
        let last = (offset + length - 1) / t.page_size in
        let rec loop page =
          if page > last then Ok ()
          else
            match erase_page t ~page with
            | Ok () -> loop (page + 1)
            | Error e -> Error e
        in
        loop first
