(** NOR-flash simulator.

    Real microcontroller flash has erase-before-write semantics: an erase
    sets a page to all-ones, programming can only clear bits (1 -> 0).
    This simulator makes a forgotten erase a checked error so firmware
    logic (slot manager, SUIT install path) must handle it correctly;
    per-page erase counters model wear. *)

type t

type error =
  | Out_of_range of { offset : int; length : int }
  | Write_needs_erase of { page : int }
  | Unaligned_erase of { offset : int }

val error_to_string : error -> string

val create : ?page_size:int -> pages:int -> unit -> t
(** Fresh (fully erased) flash; [page_size] defaults to 256. *)

val size : t -> int
val page_size : t -> int
val erase_count : t -> int -> int
val total_erases : t -> int

val read : t -> offset:int -> length:int -> (bytes, error) result

val write : t -> offset:int -> bytes -> (unit, error) result
(** Program bytes; fails with [Write_needs_erase] if any bit would go
    0 -> 1. *)

val erase_page : t -> page:int -> (unit, error) result

val erase_range : t -> offset:int -> length:int -> (unit, error) result
(** Erase every page covering the range; [offset] must be page-aligned. *)
