lib/net/frag.mli:
