lib/net/network.mli: Femto_rtos Frag
