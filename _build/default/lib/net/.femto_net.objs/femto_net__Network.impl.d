lib/net/network.ml: Femto_rtos Frag Hashtbl List Printf Random
