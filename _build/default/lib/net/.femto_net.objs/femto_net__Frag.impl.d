lib/net/frag.ml: Bytes Hashtbl List
