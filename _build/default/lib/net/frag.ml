(* 6LoWPAN-style fragmentation (RFC 4944, simplified header).

   IEEE 802.15.4 frames carry at most 127 bytes; larger datagrams (SUIT
   manifests, CoAP payloads) are split into fragments carrying
   (datagram_tag, datagram_size, offset) and reassembled at the receiver.

   Fragment wire format used here (little endian):
     byte 0      : 0xC1 first fragment / 0xE1 subsequent fragment
     bytes 1-2   : datagram_size
     bytes 3-4   : datagram_tag
     byte  5     : offset in 8-byte units (0 for the first fragment)
     rest        : payload chunk
   Unfragmented datagrams are sent verbatim with a 0x41 dispatch byte. *)

let frame_mtu = 127
let header_size = 6
let plain_dispatch = 0x41
let first_dispatch = 0xC1
let next_dispatch = 0xE1

(* Chunk payload per fragment, rounded down to 8-byte units as 6LoWPAN
   requires for offset encoding. *)
let chunk_size = (frame_mtu - header_size) / 8 * 8

let max_datagram = 0xFFFF

exception Fragment_error of string

(* [fragment ~tag payload] yields the frames to transmit, in order. *)
let fragment ~tag payload =
  let len = Bytes.length payload in
  if len > max_datagram then raise (Fragment_error "datagram too large");
  if len + 1 <= frame_mtu then begin
    let frame = Bytes.create (len + 1) in
    Bytes.set_uint8 frame 0 plain_dispatch;
    Bytes.blit payload 0 frame 1 len;
    [ frame ]
  end
  else begin
    let rec build offset acc =
      if offset >= len then List.rev acc
      else begin
        let chunk = min chunk_size (len - offset) in
        let frame = Bytes.create (header_size + chunk) in
        Bytes.set_uint8 frame 0 (if offset = 0 then first_dispatch else next_dispatch);
        Bytes.set_uint16_le frame 1 len;
        Bytes.set_uint16_le frame 3 (tag land 0xFFFF);
        Bytes.set_uint8 frame 5 (offset / 8);
        Bytes.blit payload offset frame header_size chunk;
        build (offset + chunk) (frame :: acc)
      end
    in
    build 0 []
  end

(* Reassembly state for one (source, tag) pair. *)
type pending = {
  size : int;
  buffer : bytes;
  mutable received : int; (* bytes received so far *)
  mutable seen_offsets : int list;
}

type reassembler = {
  pending : (int * int, pending) Hashtbl.t; (* (src, tag) -> state *)
  mutable completed : int;
  mutable dropped_duplicates : int;
}

let create_reassembler () =
  { pending = Hashtbl.create 8; completed = 0; dropped_duplicates = 0 }

let pending_count t = Hashtbl.length t.pending

(* Drop incomplete reassembly state (loss recovery: the upper layer
   retransmits the whole datagram). *)
let flush t ~src =
  Hashtbl.iter (fun (s, _) _ -> ignore s) t.pending;
  let keys = Hashtbl.fold (fun (s, tag) _ acc -> if s = src then (s, tag) :: acc else acc) t.pending [] in
  List.iter (Hashtbl.remove t.pending) keys

(* [accept t ~src frame] returns a complete datagram when the frame
   finishes one. *)
let accept t ~src frame =
  if Bytes.length frame = 0 then None
  else
    match Bytes.get_uint8 frame 0 with
    | d when d = plain_dispatch ->
        Some (Bytes.sub frame 1 (Bytes.length frame - 1))
    | d when d = first_dispatch || d = next_dispatch ->
        if Bytes.length frame < header_size then None
        else begin
          let size = Bytes.get_uint16_le frame 1 in
          let tag = Bytes.get_uint16_le frame 3 in
          let offset = Bytes.get_uint8 frame 5 * 8 in
          let chunk = Bytes.length frame - header_size in
          let key = (src, tag) in
          let state =
            match Hashtbl.find_opt t.pending key with
            | Some state when state.size = size -> state
            | Some _ | None ->
                let state =
                  { size; buffer = Bytes.create size; received = 0; seen_offsets = [] }
                in
                Hashtbl.replace t.pending key state;
                state
          in
          if List.mem offset state.seen_offsets then begin
            t.dropped_duplicates <- t.dropped_duplicates + 1;
            None
          end
          else if offset + chunk > size then None (* malformed: ignore *)
          else begin
            Bytes.blit frame header_size state.buffer offset chunk;
            state.received <- state.received + chunk;
            state.seen_offsets <- offset :: state.seen_offsets;
            if state.received >= size then begin
              Hashtbl.remove t.pending key;
              t.completed <- t.completed + 1;
              Some state.buffer
            end
            else None
          end
        end
    | _ -> None (* unknown dispatch: drop *)
