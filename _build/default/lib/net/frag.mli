(** 6LoWPAN-style fragmentation (after RFC 4944, simplified header).

    IEEE 802.15.4 frames carry at most 127 bytes; larger datagrams (SUIT
    manifests, CoAP payloads) are split into fragments carrying
    (datagram_tag, datagram_size, offset) and reassembled at the
    receiver. *)

val frame_mtu : int
(** 127 bytes. *)

exception Fragment_error of string

val fragment : tag:int -> bytes -> bytes list
(** Frames to transmit, in order.  Datagrams that fit one frame are sent
    verbatim behind a dispatch byte. *)

type reassembler

val create_reassembler : unit -> reassembler
val pending_count : reassembler -> int

val flush : reassembler -> src:int -> unit
(** Drop incomplete state from one source (loss recovery: the upper layer
    retransmits whole datagrams). *)

val accept : reassembler -> src:int -> bytes -> bytes option
(** Feed one received frame; returns the complete datagram when the frame
    finishes one.  Duplicates and malformed frames are ignored. *)
