(* Structural validation of a decoded module: indices in range, branch
   depths valid, memory instructions only when a memory exists.  Runs at
   load time, contributing (together with binary decoding) the cold-start
   cost Table 2 measures for WASM. *)

open Ast

type error = { where : string; message : string }

let error where fmt =
  Format.kasprintf (fun message -> Error { where; message }) fmt

let ( let* ) = Result.bind

let rec check_instrs ~where ~m ~func ~depth instrs =
  List.fold_left
    (fun acc instr ->
      let* () = acc in
      check_instr ~where ~m ~func ~depth instr)
    (Ok ()) instrs

and check_instr ~where ~m ~func ~depth instr =
  let nlocals = List.length func.ftype.params + List.length func.locals in
  let check_local i =
    if i < 0 || i >= nlocals then error where "local %d out of range (%d)" i nlocals
    else Ok ()
  in
  let check_mem () =
    if m.memory_pages = 0 then error where "memory instruction without memory"
    else Ok ()
  in
  match instr with
  | Block body | Loop body -> check_instrs ~where ~m ~func ~depth:(depth + 1) body
  | If (then_, else_) ->
      let* () = check_instrs ~where ~m ~func ~depth:(depth + 1) then_ in
      check_instrs ~where ~m ~func ~depth:(depth + 1) else_
  | Br d | Br_if d ->
      if d < 0 || d >= depth then error where "branch depth %d exceeds %d" d depth
      else Ok ()
  | Call f ->
      if f < 0 || f >= Array.length m.funcs then error where "call to %d out of range" f
      else Ok ()
  | Local_get i | Local_set i | Local_tee i -> check_local i
  | Global_get i ->
      if i < 0 || i >= Array.length m.globals then
        error where "global %d out of range" i
      else Ok ()
  | Global_set i ->
      if i < 0 || i >= Array.length m.globals then
        error where "global %d out of range" i
      else if not m.globals.(i).mutable_ then
        error where "global %d is immutable" i
      else Ok ()
  | I32_load _ | I64_load _ | I32_load8_u _ | I32_load16_u _ | I32_store _
  | I64_store _ | I32_store8 _ | I32_store16 _ | Memory_size | Memory_grow ->
      check_mem ()
  | Unreachable | Nop | Return | Drop | I32_const _ | I64_const _ | Binop _
  | Unop _ | Relop _ | I32_eqz | I64_eqz | I32_wrap_i64 | I64_extend_i32_u ->
      Ok ()

let validate (m : modul) =
  let* () =
    if Array.length m.funcs = 0 then error "module" "no functions" else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc e ->
        let* () = acc in
        if e.func_index < 0 || e.func_index >= Array.length m.funcs then
          error "exports" "export %S references function %d" e.name e.func_index
        else Ok ())
      (Ok ()) m.exports
  in
  let* () =
    List.fold_left
      (fun acc seg ->
        let* () = acc in
        if seg.offset < 0
           || seg.offset + String.length seg.bytes > m.memory_pages * page_size
        then error "data" "segment at %d overruns memory" seg.offset
        else Ok ())
      (Ok ()) m.data
  in
  let rec check_funcs i =
    if i >= Array.length m.funcs then Ok ()
    else
      let func = m.funcs.(i) in
      let where = Printf.sprintf "func %d" i in
      (* the function body is one implicit block: depth 1 *)
      let* () = check_instrs ~where ~m ~func ~depth:1 func.body in
      check_funcs (i + 1)
  in
  check_funcs 0
