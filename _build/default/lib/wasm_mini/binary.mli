(** WebAssembly binary format (subset) encoder/decoder.

    Real wasm framing — magic, version, LEB128, sections 1/3/5/6/7/10/11 —
    so the baseline's cold-start cost includes genuine decode work, as
    WASM3's does. *)

exception Format_error of string

val encode : Ast.modul -> string
val decode : string -> Ast.modul
(** Raises {!Format_error} on malformed input. *)
