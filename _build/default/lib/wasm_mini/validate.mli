(** Structural validation of a decoded module: indices in range, branch
    depths valid, memory instructions only with a memory, immutable
    globals never written, data segments in bounds.  Run at load time;
    see {!Typecheck} for the stack-typing pass. *)

type error = { where : string; message : string }

val validate : Ast.modul -> (unit, error) result
