(** Stack-typing validator: the WebAssembly validation algorithm for this
    subset, with the standard polymorphic-stack treatment of unreachable
    code.

    A module that passes [check] cannot confuse i32 and i64 operands at
    run time — which is what justifies the untyped int64 slots of the
    {!Fast} engine agreeing with the typed reference interpreter. *)

type error = { func : int; message : string }

val check : Ast.modul -> (unit, error) result
(** Run after {!Validate.validate}. *)
