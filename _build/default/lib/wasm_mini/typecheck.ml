(* Stack-typing validator for wasm_mini.

   Implements the WebAssembly validation algorithm for this subset: a
   typed operand stack checked instruction by instruction, with the
   standard polymorphic-stack treatment of unreachable code after
   [unreachable], [br] and [return].  Blocks in this subset have the empty
   type ([] -> []), so every block body must leave the operand stack where
   it found it.

   The [Fast] engine runs untyped (int64 slots); this checker is what
   justifies that: a module that passes [check] cannot confuse i32 and i64
   operands at run time, so the untyped execution agrees with the typed
   reference interpreter. *)

open Ast

type error = { func : int; message : string }

let error func fmt = Format.kasprintf (fun message -> Error { func; message }) fmt

let ( let* ) = Result.bind

let type_name = function I32 -> "i32" | I64 -> "i64"

(* The typing state of one block: the operand types it pushed (on top of
   the enclosing blocks' operands, which it must not touch), plus the
   unreachable flag making the remainder polymorphic. *)
type block_state = { mutable operands : value_type list; mutable unreachable : bool }

let check_func ~m ~index (func : Ast.func) =
  let locals = Array.of_list (func.ftype.params @ func.locals) in
  let check_local i =
    if i < 0 || i >= Array.length locals then error index "local %d out of range" i
    else Ok locals.(i)
  in
  let check_global i =
    if i < 0 || i >= Array.length m.globals then
      error index "global %d out of range" i
    else Ok m.globals.(i)
  in
  let pop (state : block_state) expected =
    match state.operands with
    | top :: rest ->
        if top = expected then begin
          state.operands <- rest;
          Ok ()
        end
        else
          error index "expected %s on the stack, found %s" (type_name expected)
            (type_name top)
    | [] ->
        if state.unreachable then Ok () (* polymorphic stack *)
        else error index "stack underflow: needed %s" (type_name expected)
  in
  let push (state : block_state) ty = state.operands <- ty :: state.operands in
  let require_memory () =
    if m.memory_pages = 0 then error index "memory instruction without memory"
    else Ok ()
  in
  (* [check_block] types one block body under [depth] enclosing labels.
     All labels have the empty type in this subset, so a branch requires
     nothing on the stack. *)
  let rec check_block ~depth body =
    let state = { operands = []; unreachable = false } in
    let* () =
      List.fold_left
        (fun acc instr ->
          let* () = acc in
          check_instr ~depth state instr)
        (Ok ()) body
    in
    (* the block must not leave operands behind (empty block type) *)
    if state.operands = [] || state.unreachable then Ok ()
    else error index "block leaves %d operand(s) on the stack" (List.length state.operands)

  and check_label ~depth d =
    if d < 0 || d >= depth then error index "branch depth %d exceeds %d" d depth
    else Ok ()

  and check_instr ~depth state instr =
    match instr with
    | Unreachable ->
        state.unreachable <- true;
        state.operands <- [];
        Ok ()
    | Nop -> Ok ()
    | Block body | Loop body -> check_block ~depth:(depth + 1) body
    | If (then_, else_) ->
        let* () = pop state I32 in
        let* () = check_block ~depth:(depth + 1) then_ in
        check_block ~depth:(depth + 1) else_
    | Br d ->
        let* () = check_label ~depth d in
        state.unreachable <- true;
        state.operands <- [];
        Ok ()
    | Br_if d ->
        let* () = pop state I32 in
        check_label ~depth d
    | Return ->
        let* () =
          match func.ftype.results with
          | [] -> Ok ()
          | [ ty ] -> pop state ty
          | _ -> error index "multi-value results are not supported"
        in
        state.unreachable <- true;
        state.operands <- [];
        Ok ()
    | Call f ->
        if f < 0 || f >= Array.length m.funcs then
          error index "call to %d out of range" f
        else begin
          let callee = m.funcs.(f).ftype in
          let* () =
            List.fold_left
              (fun acc ty ->
                let* () = acc in
                pop state ty)
              (Ok ())
              (List.rev callee.params)
          in
          List.iter (push state) callee.results;
          Ok ()
        end
    | Drop -> (
        match state.operands with
        | _ :: rest ->
            state.operands <- rest;
            Ok ()
        | [] -> if state.unreachable then Ok () else error index "drop on empty stack")
    | Local_get i ->
        let* ty = check_local i in
        push state ty;
        Ok ()
    | Local_set i ->
        let* ty = check_local i in
        pop state ty
    | Local_tee i -> (
        let* ty = check_local i in
        match state.operands with
        | top :: _ when top = ty -> Ok ()
        | top :: _ ->
            error index "tee expects %s, found %s" (type_name ty) (type_name top)
        | [] -> if state.unreachable then Ok () else error index "tee on empty stack")
    | Global_get i ->
        let* g = check_global i in
        push state g.gtype;
        Ok ()
    | Global_set i ->
        let* g = check_global i in
        if not g.mutable_ then error index "global %d is immutable" i
        else pop state g.gtype
    | I32_const _ ->
        push state I32;
        Ok ()
    | I64_const _ ->
        push state I64;
        Ok ()
    | Binop (ty, _) ->
        let* () = pop state ty in
        let* () = pop state ty in
        push state ty;
        Ok ()
    | Unop (ty, _) ->
        let* () = pop state ty in
        push state ty;
        Ok ()
    | Relop (ty, _) ->
        let* () = pop state ty in
        let* () = pop state ty in
        push state I32;
        Ok ()
    | I32_eqz ->
        let* () = pop state I32 in
        push state I32;
        Ok ()
    | I64_eqz ->
        let* () = pop state I64 in
        push state I32;
        Ok ()
    | I32_wrap_i64 ->
        let* () = pop state I64 in
        push state I32;
        Ok ()
    | I64_extend_i32_u ->
        let* () = pop state I32 in
        push state I64;
        Ok ()
    | I32_load _ | I32_load8_u _ | I32_load16_u _ ->
        let* () = require_memory () in
        let* () = pop state I32 in
        push state I32;
        Ok ()
    | I64_load _ ->
        let* () = require_memory () in
        let* () = pop state I32 in
        push state I64;
        Ok ()
    | I32_store _ | I32_store8 _ | I32_store16 _ ->
        let* () = require_memory () in
        let* () = pop state I32 in
        pop state I32
    | I64_store _ ->
        let* () = require_memory () in
        let* () = pop state I64 in
        pop state I32
    | Memory_size ->
        let* () = require_memory () in
        push state I32;
        Ok ()
    | Memory_grow ->
        let* () = require_memory () in
        let* () = pop state I32 in
        push state I32;
        Ok ()
  in
  (* the function body: one label; its result must match the signature *)
  let state = { operands = []; unreachable = false } in
  let* () =
    List.fold_left
      (fun acc instr ->
        let* () = acc in
        check_instr ~depth:1 state instr)
      (Ok ()) func.body
  in
  if state.unreachable then Ok () (* ends unreachable: polymorphic *)
  else
    match (func.ftype.results, state.operands) with
    | [], [] -> Ok ()
    | [], _ :: _ -> error index "void function leaves operands"
    | [ ty ], [ top ] ->
        if top = ty then Ok ()
        else
          error index "body yields %s, signature says %s" (type_name top)
            (type_name ty)
    | [ _ ], stack ->
        error index "body leaves %d operands, expected exactly 1"
          (List.length stack)
    | _ :: _ :: _, _ -> error index "multi-value results are not supported"

(* [check m] type-checks every function.  Run after the structural
   [Validate.validate]. *)
let check (m : modul) =
  let rec loop i =
    if i >= Array.length m.funcs then Ok ()
    else
      let* () = check_func ~m ~index:i m.funcs.(i) in
      loop (i + 1)
  in
  loop 0
