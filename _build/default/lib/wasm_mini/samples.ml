(* Sample modules for benchmarks and tests, chiefly the fletcher32
   workload the paper uses across all runtimes. *)

open Ast

(* fletcher32(words) -> i32, over 16-bit LE words starting at linear
   memory offset 0.  Same deferred-reduction algorithm as the native and
   eBPF implementations, so results are bit-identical. *)
let fletcher32_module =
  let words = 0 and sum1 = 1 and sum2 = 2 and ptr = 3 in
  let reduce local =
    [
      Local_get local; I32_const 0xffffl; Binop (I32, And);
      Local_get local; I32_const 16l; Binop (I32, Shr_u);
      Binop (I32, Add); Local_set local;
    ]
  in
  let body =
    [
      I32_const 0xffffl; Local_set sum1;
      I32_const 0xffffl; Local_set sum2;
      I32_const 0l; Local_set ptr;
      Block
        [
          Local_get words; I32_eqz; Br_if 0;
          Loop
            ([
               Local_get sum1; Local_get ptr; I32_load16_u 0;
               Binop (I32, Add); Local_set sum1;
               Local_get sum2; Local_get sum1; Binop (I32, Add); Local_set sum2;
               Local_get ptr; I32_const 2l; Binop (I32, Add); Local_set ptr;
               Local_get words; I32_const 1l; Binop (I32, Sub); Local_set words;
               Local_get words; I32_const 0l; Relop (I32, Ne); Br_if 0;
             ]);
        ];
    ]
    @ reduce sum1 @ reduce sum1 @ reduce sum2 @ reduce sum2
    @ [
        Local_get sum2; I32_const 16l; Binop (I32, Shl);
        Local_get sum1; Binop (I32, Or);
      ]
  in
  let ftype = { params = [ I32 ]; results = [ I32 ] } in
  {
    types = [| ftype |];
    funcs = [| { ftype; locals = [ I32; I32; I32 ]; body } |];
    memory_pages = 1 (* the WASM-mandated 64 KiB minimum, per the paper *);
    globals = [||];
    data = [];
    exports = [ { name = "fletcher32"; func_index = 0 } ];
  }

(* The encoded form, measured as the "code size" column of Table 2. *)
let fletcher32_binary () = Binary.encode fletcher32_module

(* Run fletcher32 on [data]: instantiate, preload memory, call. *)
let run_fletcher32 instance data =
  Interp.load_memory instance ~offset:0 data;
  match
    Interp.call instance ~name:"fletcher32"
      [ V_i32 (Int32.of_int (Bytes.length data / 2)) ]
  with
  | Ok (Some (V_i32 v)) -> Ok (Int64.logand (Int64.of_int32 v) 0xFFFF_FFFFL)
  | Ok _ -> Error Interp.Type_mismatch
  | Error trap -> Error trap
