lib/wasm_mini/typecheck.ml: Array Ast Format List Result
