lib/wasm_mini/typecheck.mli: Ast
