lib/wasm_mini/fast.ml: Array Ast Bytes Flatten Int32 Int64 Interp List String
