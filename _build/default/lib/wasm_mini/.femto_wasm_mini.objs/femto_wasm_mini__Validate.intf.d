lib/wasm_mini/validate.mli: Ast
