lib/wasm_mini/interp.ml: Array Ast Bytes Int32 Int64 List Printf String
