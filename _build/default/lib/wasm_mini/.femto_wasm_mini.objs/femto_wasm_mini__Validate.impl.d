lib/wasm_mini/validate.ml: Array Ast Format List Printf Result String
