lib/wasm_mini/samples.ml: Ast Binary Bytes Int32 Int64 Interp
