lib/wasm_mini/binary.ml: Array Ast Buffer Char Format Int32 Int64 List String
