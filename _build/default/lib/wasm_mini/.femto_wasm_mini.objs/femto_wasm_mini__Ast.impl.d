lib/wasm_mini/ast.ml:
