lib/wasm_mini/flatten.ml: Array Ast Int64 List
