lib/wasm_mini/binary.mli: Ast
