(* WebAssembly binary format (subset) encoder/decoder.

   Real wasm framing — magic, version, LEB128, sections 1/3/5/7/10 — so
   that the baseline's cold-start cost includes genuine decode work, as
   WASM3's does. *)

open Ast

exception Format_error of string

let format_error fmt = Format.kasprintf (fun m -> raise (Format_error m)) fmt

(* --- LEB128 --- *)

let add_u32 buf v =
  let rec loop v =
    let byte = v land 0x7f in
    let rest = v lsr 7 in
    if rest = 0 then Buffer.add_char buf (Char.chr byte)
    else begin
      Buffer.add_char buf (Char.chr (byte lor 0x80));
      loop rest
    end
  in
  if v < 0 then invalid_arg "add_u32: negative";
  loop v

let add_s64 buf v =
  let rec loop v =
    let byte = Int64.to_int (Int64.logand v 0x7fL) in
    let rest = Int64.shift_right v 7 in
    let sign_clear = Int64.equal rest 0L && byte land 0x40 = 0 in
    let sign_set = Int64.equal rest (-1L) && byte land 0x40 <> 0 in
    if sign_clear || sign_set then Buffer.add_char buf (Char.chr byte)
    else begin
      Buffer.add_char buf (Char.chr (byte lor 0x80));
      loop rest
    end
  in
  loop v

let add_s32 buf (v : int32) = add_s64 buf (Int64.of_int32 v)

type reader = { data : string; mutable pos : int }

let byte r =
  if r.pos >= String.length r.data then format_error "truncated at %d" r.pos
  else begin
    let c = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    c
  end

let read_u32 r =
  let rec loop shift acc =
    if shift > 35 then format_error "u32 LEB too long";
    let b = byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else loop (shift + 7) acc
  in
  loop 0 0

let read_s64 r =
  let rec loop shift acc =
    if shift > 70 then format_error "s64 LEB too long";
    let b = byte r in
    let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7f)) shift) in
    if b land 0x80 = 0 then
      if shift + 7 < 64 && b land 0x40 <> 0 then
        Int64.logor acc (Int64.shift_left (-1L) (shift + 7))
      else acc
    else loop (shift + 7) acc
  in
  loop 0 0L

let read_s32 r = Int64.to_int32 (read_s64 r)

(* --- instruction opcodes --- *)

let encode_instr buf instr =
  let rec go instr =
    let op c = Buffer.add_char buf (Char.chr c) in
    match instr with
    | Unreachable -> op 0x00
    | Nop -> op 0x01
    | Block body ->
        op 0x02;
        op 0x40 (* empty block type *);
        List.iter go body;
        op 0x0b
    | Loop body ->
        op 0x03;
        op 0x40;
        List.iter go body;
        op 0x0b
    | If (then_, else_) ->
        op 0x04;
        op 0x40;
        List.iter go then_;
        if else_ <> [] then begin
          op 0x05;
          List.iter go else_
        end;
        op 0x0b
    | Br depth -> op 0x0c; add_u32 buf depth
    | Br_if depth -> op 0x0d; add_u32 buf depth
    | Return -> op 0x0f
    | Call f -> op 0x10; add_u32 buf f
    | Drop -> op 0x1a
    | Local_get i -> op 0x20; add_u32 buf i
    | Local_set i -> op 0x21; add_u32 buf i
    | Local_tee i -> op 0x22; add_u32 buf i
    | Global_get i -> op 0x23; add_u32 buf i
    | Global_set i -> op 0x24; add_u32 buf i
    | I32_load off -> op 0x28; add_u32 buf 2; add_u32 buf off
    | I64_load off -> op 0x29; add_u32 buf 3; add_u32 buf off
    | I32_load8_u off -> op 0x2d; add_u32 buf 0; add_u32 buf off
    | I32_load16_u off -> op 0x2f; add_u32 buf 1; add_u32 buf off
    | I32_store off -> op 0x36; add_u32 buf 2; add_u32 buf off
    | I64_store off -> op 0x37; add_u32 buf 3; add_u32 buf off
    | I32_store8 off -> op 0x3a; add_u32 buf 0; add_u32 buf off
    | I32_store16 off -> op 0x3b; add_u32 buf 1; add_u32 buf off
    | Memory_size -> op 0x3f; op 0x00
    | Memory_grow -> op 0x40; op 0x00
    | I32_const v -> op 0x41; add_s32 buf v
    | I64_const v -> op 0x42; add_s64 buf v
    | I32_eqz -> op 0x45
    | I64_eqz -> op 0x50
    | Relop (I32, rel) ->
        op
          (match rel with
          | Eq -> 0x46 | Ne -> 0x47 | Lt_s -> 0x48 | Lt_u -> 0x49
          | Gt_s -> 0x4a | Gt_u -> 0x4b | Le_s -> 0x4c | Le_u -> 0x4d
          | Ge_s -> 0x4e | Ge_u -> 0x4f)
    | Relop (I64, rel) ->
        op
          (match rel with
          | Eq -> 0x51 | Ne -> 0x52 | Lt_s -> 0x53 | Lt_u -> 0x54
          | Gt_s -> 0x55 | Gt_u -> 0x56 | Le_s -> 0x57 | Le_u -> 0x58
          | Ge_s -> 0x59 | Ge_u -> 0x5a)
    | Binop (I32, bin) ->
        op
          (match bin with
          | Add -> 0x6a | Sub -> 0x6b | Mul -> 0x6c | Div_s -> 0x6d
          | Div_u -> 0x6e | Rem_u -> 0x70 | And -> 0x71 | Or -> 0x72
          | Xor -> 0x73 | Shl -> 0x74 | Shr_s -> 0x75 | Shr_u -> 0x76
          | Rotl -> 0x77 | Rotr -> 0x78)
    | Binop (I64, bin) ->
        op
          (match bin with
          | Add -> 0x7c | Sub -> 0x7d | Mul -> 0x7e | Div_s -> 0x7f
          | Div_u -> 0x80 | Rem_u -> 0x82 | And -> 0x83 | Or -> 0x84
          | Xor -> 0x85 | Shl -> 0x86 | Shr_s -> 0x87 | Shr_u -> 0x88
          | Rotl -> 0x89 | Rotr -> 0x8a)
    | Unop (I32, un) ->
        op (match un with Clz -> 0x67 | Ctz -> 0x68 | Popcnt -> 0x69)
    | Unop (I64, un) ->
        op (match un with Clz -> 0x79 | Ctz -> 0x7a | Popcnt -> 0x7b)
    | I32_wrap_i64 -> op 0xa7
    | I64_extend_i32_u -> op 0xad
  in
  go instr

let rec decode_instrs r ~stop_on_else =
  let instrs = ref [] in
  let push i = instrs := i :: !instrs in
  let rec loop () =
    let op = byte r in
    match op with
    | 0x0b -> `End
    | 0x05 when stop_on_else -> `Else
    | _ ->
        (match op with
        | 0x00 -> push Unreachable
        | 0x01 -> push Nop
        | 0x02 ->
            expect_blocktype r;
            let body = decode_block r in
            push (Block body)
        | 0x03 ->
            expect_blocktype r;
            let body = decode_block r in
            push (Loop body)
        | 0x04 ->
            expect_blocktype r;
            let then_, has_else = decode_then r in
            let else_ = if has_else then decode_block r else [] in
            push (If (then_, else_))
        | 0x0c -> push (Br (read_u32 r))
        | 0x0d -> push (Br_if (read_u32 r))
        | 0x0f -> push Return
        | 0x10 -> push (Call (read_u32 r))
        | 0x1a -> push Drop
        | 0x20 -> push (Local_get (read_u32 r))
        | 0x21 -> push (Local_set (read_u32 r))
        | 0x22 -> push (Local_tee (read_u32 r))
        | 0x23 -> push (Global_get (read_u32 r))
        | 0x24 -> push (Global_set (read_u32 r))
        | 0x28 -> ignore (read_u32 r); push (I32_load (read_u32 r))
        | 0x29 -> ignore (read_u32 r); push (I64_load (read_u32 r))
        | 0x2d -> ignore (read_u32 r); push (I32_load8_u (read_u32 r))
        | 0x2f -> ignore (read_u32 r); push (I32_load16_u (read_u32 r))
        | 0x36 -> ignore (read_u32 r); push (I32_store (read_u32 r))
        | 0x37 -> ignore (read_u32 r); push (I64_store (read_u32 r))
        | 0x3a -> ignore (read_u32 r); push (I32_store8 (read_u32 r))
        | 0x3b -> ignore (read_u32 r); push (I32_store16 (read_u32 r))
        | 0x3f -> ignore (byte r); push Memory_size
        | 0x40 -> ignore (byte r); push Memory_grow
        | 0x41 -> push (I32_const (read_s32 r))
        | 0x42 -> push (I64_const (read_s64 r))
        | 0x45 -> push I32_eqz
        | 0x50 -> push I64_eqz
        | op when op >= 0x46 && op <= 0x4f ->
            let rel =
              match op with
              | 0x46 -> Eq | 0x47 -> Ne | 0x48 -> Lt_s | 0x49 -> Lt_u
              | 0x4a -> Gt_s | 0x4b -> Gt_u | 0x4c -> Le_s | 0x4d -> Le_u
              | 0x4e -> Ge_s | _ -> Ge_u
            in
            push (Relop (I32, rel))
        | op when op >= 0x51 && op <= 0x5a ->
            let rel =
              match op with
              | 0x51 -> Eq | 0x52 -> Ne | 0x53 -> Lt_s | 0x54 -> Lt_u
              | 0x55 -> Gt_s | 0x56 -> Gt_u | 0x57 -> Le_s | 0x58 -> Le_u
              | 0x59 -> Ge_s | _ -> Ge_u
            in
            push (Relop (I64, rel))
        | 0x67 -> push (Unop (I32, Clz))
        | 0x68 -> push (Unop (I32, Ctz))
        | 0x69 -> push (Unop (I32, Popcnt))
        | 0x79 -> push (Unop (I64, Clz))
        | 0x7a -> push (Unop (I64, Ctz))
        | 0x7b -> push (Unop (I64, Popcnt))
        | op when op >= 0x6a && op <= 0x78 && op <> 0x6f ->
            let bin =
              match op with
              | 0x6a -> Add | 0x6b -> Sub | 0x6c -> Mul | 0x6d -> Div_s
              | 0x6e -> Div_u | 0x70 -> Rem_u | 0x71 -> And | 0x72 -> Or
              | 0x73 -> Xor | 0x74 -> Shl | 0x75 -> Shr_s | 0x76 -> Shr_u
              | 0x77 -> Rotl | 0x78 -> Rotr
              | _ -> format_error "unhandled i32 binop 0x%02x" op
            in
            push (Binop (I32, bin))
        | op when op >= 0x7c && op <= 0x8a && op <> 0x81 ->
            let bin =
              match op with
              | 0x7c -> Add | 0x7d -> Sub | 0x7e -> Mul | 0x7f -> Div_s
              | 0x80 -> Div_u | 0x82 -> Rem_u | 0x83 -> And | 0x84 -> Or
              | 0x85 -> Xor | 0x86 -> Shl | 0x87 -> Shr_s | 0x88 -> Shr_u
              | 0x89 -> Rotl | 0x8a -> Rotr
              | _ -> format_error "unhandled i64 binop 0x%02x" op
            in
            push (Binop (I64, bin))
        | 0xa7 -> push I32_wrap_i64
        | 0xad -> push I64_extend_i32_u
        | op -> format_error "unknown opcode 0x%02x" op);
        loop ()
  in
  let terminator = loop () in
  (List.rev !instrs, terminator)

and expect_blocktype r =
  let bt = byte r in
  if bt <> 0x40 then format_error "only empty block types are supported"

and decode_block r =
  let instrs, _ = decode_instrs r ~stop_on_else:false in
  instrs

and decode_then r =
  let instrs, terminator = decode_instrs r ~stop_on_else:true in
  (instrs, terminator = `Else)

(* --- module encoding --- *)

let add_section buf id body =
  Buffer.add_char buf (Char.chr id);
  add_u32 buf (String.length body);
  Buffer.add_string buf body

let encode_func_type buf (ft : func_type) =
  Buffer.add_char buf '\x60';
  add_u32 buf (List.length ft.params);
  List.iter (fun t -> Buffer.add_char buf (Char.chr (value_type_code t))) ft.params;
  add_u32 buf (List.length ft.results);
  List.iter (fun t -> Buffer.add_char buf (Char.chr (value_type_code t))) ft.results

let encode (m : modul) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "\x00asm\x01\x00\x00\x00";
  (* type section *)
  let types = Buffer.create 64 in
  add_u32 types (Array.length m.types);
  Array.iter (encode_func_type types) m.types;
  add_section buf 1 (Buffer.contents types);
  (* function section: type index per function *)
  let type_index ft =
    let found = ref (-1) in
    Array.iteri (fun i t -> if !found < 0 && t = ft then found := i) m.types;
    if !found < 0 then invalid_arg "encode: function type not in type table";
    !found
  in
  let funcs = Buffer.create 16 in
  add_u32 funcs (Array.length m.funcs);
  Array.iter (fun f -> add_u32 funcs (type_index f.ftype)) m.funcs;
  add_section buf 3 (Buffer.contents funcs);
  (* memory section *)
  if m.memory_pages > 0 then begin
    let mem = Buffer.create 8 in
    add_u32 mem 1;
    Buffer.add_char mem '\x00' (* min only *);
    add_u32 mem m.memory_pages;
    add_section buf 5 (Buffer.contents mem)
  end;
  (* global section *)
  if Array.length m.globals > 0 then begin
    let globals = Buffer.create 32 in
    add_u32 globals (Array.length m.globals);
    Array.iter
      (fun g ->
        Buffer.add_char globals (Char.chr (value_type_code g.gtype));
        Buffer.add_char globals (if g.mutable_ then '\x01' else '\x00');
        (match g.gtype with
        | I32 -> encode_instr globals (I32_const (Int64.to_int32 g.init))
        | I64 -> encode_instr globals (I64_const g.init));
        Buffer.add_char globals '\x0b')
      m.globals;
    add_section buf 6 (Buffer.contents globals)
  end;
  (* export section *)
  let exports = Buffer.create 32 in
  add_u32 exports (List.length m.exports);
  List.iter
    (fun e ->
      add_u32 exports (String.length e.name);
      Buffer.add_string exports e.name;
      Buffer.add_char exports '\x00' (* func export *);
      add_u32 exports e.func_index)
    m.exports;
  add_section buf 7 (Buffer.contents exports);
  (* code section *)
  let code = Buffer.create 256 in
  add_u32 code (Array.length m.funcs);
  Array.iter
    (fun f ->
      let body = Buffer.create 64 in
      (* locals: one run per type, compressed *)
      let rec runs = function
        | [] -> []
        | t :: rest ->
            let same, others = List.partition (fun u -> u = t) rest in
            (List.length same + 1, t) :: runs others
      in
      let local_runs = runs f.locals in
      add_u32 body (List.length local_runs);
      List.iter
        (fun (count, t) ->
          add_u32 body count;
          Buffer.add_char body (Char.chr (value_type_code t)))
        local_runs;
      List.iter (encode_instr body) f.body;
      Buffer.add_char body '\x0b';
      add_u32 code (Buffer.length body);
      Buffer.add_buffer code body)
    m.funcs;
  add_section buf 10 (Buffer.contents code);
  (* data section *)
  if m.data <> [] then begin
    let data = Buffer.create 64 in
    add_u32 data (List.length m.data);
    List.iter
      (fun seg ->
        add_u32 data 0 (* memory index *);
        encode_instr data (I32_const (Int32.of_int seg.offset));
        Buffer.add_char data '\x0b';
        add_u32 data (String.length seg.bytes);
        Buffer.add_string data seg.bytes)
      m.data;
    add_section buf 11 (Buffer.contents data)
  end;
  Buffer.contents buf

(* --- module decoding --- *)

let decode data =
  let r = { data; pos = 0 } in
  if String.length data < 8 then format_error "too short for a module";
  if String.sub data 0 4 <> "\x00asm" then format_error "bad magic";
  r.pos <- 4;
  let version = read_u32 r in
  ignore (byte r);
  ignore (byte r);
  ignore (byte r);
  if version land 0xff <> 1 then format_error "unsupported version";
  let types = ref [||] in
  let func_type_indices = ref [||] in
  let memory_pages = ref 0 in
  let globals = ref [||] in
  let data_segments = ref [] in
  let exports = ref [] in
  let bodies = ref [||] in
  while r.pos < String.length data do
    let id = byte r in
    let size = read_u32 r in
    let section_end = r.pos + size in
    (match id with
    | 1 ->
        let count = read_u32 r in
        types :=
          Array.init count (fun _ ->
              if byte r <> 0x60 then format_error "expected func type";
              let nparams = read_u32 r in
              let params =
                List.init nparams (fun _ ->
                    match value_type_of_code (byte r) with
                    | Some t -> t
                    | None -> format_error "bad value type")
              in
              let nresults = read_u32 r in
              let results =
                List.init nresults (fun _ ->
                    match value_type_of_code (byte r) with
                    | Some t -> t
                    | None -> format_error "bad value type")
              in
              { params; results })
    | 3 ->
        let count = read_u32 r in
        func_type_indices := Array.init count (fun _ -> read_u32 r)
    | 5 ->
        let count = read_u32 r in
        if count > 1 then format_error "at most one memory";
        if count = 1 then begin
          let flags = byte r in
          memory_pages := read_u32 r;
          if flags land 1 = 1 then ignore (read_u32 r)
        end
    | 6 ->
        let count = read_u32 r in
        globals :=
          Array.init count (fun _ ->
              let gtype =
                match value_type_of_code (byte r) with
                | Some t -> t
                | None -> format_error "bad global type"
              in
              let mutable_ = byte r = 1 in
              let init =
                match decode_block r with
                | [ I32_const v ] -> Int64.logand (Int64.of_int32 v) 0xFFFF_FFFFL
                | [ I64_const v ] -> v
                | _ -> format_error "unsupported global initializer"
              in
              { gtype; mutable_; init })
    | 11 ->
        let count = read_u32 r in
        for _ = 1 to count do
          let memidx = read_u32 r in
          if memidx <> 0 then format_error "bad data memory index";
          let offset =
            match decode_block r with
            | [ I32_const v ] -> Int32.to_int v
            | _ -> format_error "unsupported data offset expression"
          in
          let len = read_u32 r in
          let bytes = String.init len (fun _ -> Char.chr (byte r)) in
          data_segments := { offset; bytes } :: !data_segments
        done
    | 7 ->
        let count = read_u32 r in
        for _ = 1 to count do
          let len = read_u32 r in
          let name =
            String.init len (fun _ -> Char.chr (byte r))
          in
          let kind = byte r in
          let index = read_u32 r in
          if kind = 0 then exports := { name; func_index = index } :: !exports
        done
    | 10 ->
        let count = read_u32 r in
        bodies :=
          Array.init count (fun _ ->
              let _body_size = read_u32 r in
              let nruns = read_u32 r in
              let locals =
                List.concat
                  (List.init nruns (fun _ ->
                       let n = read_u32 r in
                       match value_type_of_code (byte r) with
                       | Some t -> List.init n (fun _ -> t)
                       | None -> format_error "bad local type"))
              in
              let body = decode_block r in
              (locals, body))
    | _ -> r.pos <- section_end (* skip unknown sections *));
    if r.pos <> section_end then format_error "section %d size mismatch" id
  done;
  let types = !types in
  if Array.length !func_type_indices <> Array.length !bodies then
    format_error "function/code section mismatch";
  let funcs =
    Array.map2
      (fun type_index (locals, body) ->
        if type_index >= Array.length types then format_error "bad type index";
        { ftype = types.(type_index); locals; body })
      !func_type_indices !bodies
  in
  { types; funcs; memory_pages = !memory_pages; globals = !globals;
    data = List.rev !data_segments; exports = List.rev !exports }
