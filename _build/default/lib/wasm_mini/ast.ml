(* Abstract syntax of the WebAssembly subset implemented by wasm_mini.

   This baseline reproduces the architecture of WASM3 in the paper's §6
   micro-benchmarks: a stack machine with structured control flow and a
   linear memory in 64 KiB pages — the page granularity being exactly what
   drives WASM's large RAM footprint in Table 1. *)

type value_type = I32 | I64

type value = V_i32 of int32 | V_i64 of int64

let type_of_value = function V_i32 _ -> I32 | V_i64 _ -> I64

let value_type_code = function I32 -> 0x7f | I64 -> 0x7e

let value_type_of_code = function
  | 0x7f -> Some I32
  | 0x7e -> Some I64
  | _ -> None

type ibinop =
  | Add
  | Sub
  | Mul
  | Div_u
  | Div_s
  | Rem_u
  | And
  | Or
  | Xor
  | Shl
  | Shr_u
  | Shr_s
  | Rotl
  | Rotr

type iunop = Clz | Ctz | Popcnt

type irelop = Eq | Ne | Lt_u | Lt_s | Gt_u | Gt_s | Le_u | Le_s | Ge_u | Ge_s

type instr =
  | Unreachable
  | Nop
  | Block of instr list
  | Loop of instr list
  | If of instr list * instr list
  | Br of int
  | Br_if of int
  | Return
  | Call of int
  | Drop
  | Local_get of int
  | Local_set of int
  | Local_tee of int
  | Global_get of int
  | Global_set of int
  | I32_const of int32
  | I64_const of int64
  | Binop of value_type * ibinop
  | Unop of value_type * iunop
  | Relop of value_type * irelop (* pushes i32 0/1 *)
  | I32_eqz
  | I64_eqz
  | I32_wrap_i64
  | I64_extend_i32_u
  | I32_load of int (* static offset *)
  | I64_load of int
  | I32_load8_u of int
  | I32_load16_u of int
  | I32_store of int
  | I64_store of int
  | I32_store8 of int
  | I32_store16 of int
  | Memory_size
  | Memory_grow

type func_type = { params : value_type list; results : value_type list }

type func = {
  ftype : func_type;
  locals : value_type list; (* additional locals beyond params *)
  body : instr list;
}

type export = { name : string; func_index : int }

type global = { gtype : value_type; mutable_ : bool; init : int64 }

(* A data segment initializing linear memory at instantiation. *)
type data_segment = { offset : int; bytes : string }

type modul = {
  types : func_type array;
  funcs : func array; (* funcs.(i).ftype must appear in types *)
  memory_pages : int; (* minimum pages; 0 = no memory *)
  globals : global array;
  data : data_segment list;
  exports : export list;
}

let empty_module =
  { types = [||]; funcs = [||]; memory_pages = 0; globals = [||]; data = [];
    exports = [] }

let page_size = 65536
