(* Structured AST -> flat threaded code.

   WASM3 achieves its speed by transpiling the structured wasm body into a
   linear array of pre-resolved operations ("M3 ops") at load time; this
   module is that step.  Structured control (block/loop/if/br/br_if) is
   compiled into absolute jumps, so the interpreter in [Fast] is a plain
   fetch/dispatch loop with no exception-based unwinding. *)

open Ast

type flatop =
  | F_unreachable
  | F_nop
  | F_jump of int
  | F_jump_if_false of int (* pops condition *)
  | F_jump_if_true of int
  | F_return
  | F_call of int
  | F_drop
  | F_local_get of int
  | F_local_set of int
  | F_local_tee of int
  | F_global_get of int
  | F_global_set of int
  | F_i32_const of int32
  | F_i64_const of int64
  | F_binop_32 of ibinop
  | F_binop_64 of ibinop
  | F_unop_32 of iunop
  | F_unop_64 of iunop
  | F_relop_32 of irelop
  | F_relop_64 of irelop
  | F_i32_eqz
  | F_i64_eqz
  | F_i32_wrap_i64
  | F_i64_extend_i32_u
  | F_i32_load of int
  | F_i64_load of int
  | F_i32_load8_u of int
  | F_i32_load16_u of int
  | F_i32_store of int
  | F_i64_store of int
  | F_i32_store8 of int
  | F_i32_store16 of int
  | F_memory_size
  | F_memory_grow

(* Fused superinstructions — WASM3's "operation fusion": frequent
   push/push/op/set and push/push/cmp/branch sequences collapse into one
   dispatch that reads its operands straight from local slots, constants
   or memory.  This is what lets a stack machine execute register-machine
   op counts. *)
type operand =
  | Op_slot of int
  | Op_const of int64
  | Op_load8 of int * int (* base slot, static offset *)
  | Op_load16 of int * int
  | Op_load32 of int * int
  | Op_load64 of int * int

type flatop_fused =
  | F_plain of flatop
  | F_bin of bool * Ast.ibinop * operand * operand * int (* is64, dst slot *)
  | F_cmp_br of bool * Ast.irelop * operand * operand * bool * int
    (* is64, jump-if-result, target *)

type flat_func = {
  arity : int;
  nlocals : int; (* params + declared locals *)
  returns_value : bool;
  ops : flatop array;
  fused : flatop_fused array; (* same program after operation fusion *)
}

type flat_module = { funcs : flat_func array; memory_pages : int;
                     globals : Ast.global array;
                     data : Ast.data_segment list;
                     export_table : (string * int) list }

(* Growable op buffer with jump patching. *)
type emitter = { mutable ops : flatop array; mutable len : int }

let emit e op =
  if e.len >= Array.length e.ops then begin
    let capacity = max 32 (2 * Array.length e.ops) in
    let ops = Array.make capacity F_nop in
    Array.blit e.ops 0 ops 0 e.len;
    e.ops <- ops
  end;
  e.ops.(e.len) <- op;
  e.len <- e.len + 1

(* --- operation fusion --- *)

let mask32 v = Int64.logand v 0xFFFF_FFFFL

(* Parse a "push" starting at [i]: a local/const push, optionally fused
   with an immediately following load.  Returns the operand and the index
   after it. *)
let parse_push ops len is_target i =
  if i >= len then None
  else
    match ops.(i) with
    | F_local_get s ->
        if i + 1 < len && not is_target.(i + 1) then (
          match ops.(i + 1) with
          | F_i32_load8_u off -> Some (Op_load8 (s, off), i + 2)
          | F_i32_load16_u off -> Some (Op_load16 (s, off), i + 2)
          | F_i32_load off -> Some (Op_load32 (s, off), i + 2)
          | F_i64_load off -> Some (Op_load64 (s, off), i + 2)
          | _ -> Some (Op_slot s, i + 1))
        else Some (Op_slot s, i + 1)
    | F_i32_const v -> Some (Op_const (mask32 (Int64.of_int32 v)), i + 1)
    | F_i64_const v -> Some (Op_const v, i + 1)
    | _ -> None

(* Try to fuse a window starting at [i]; returns the fused op and the
   index after the window. *)
let parse_window ops len is_target i =
  match parse_push ops len is_target i with
  | None -> None
  | Some (a, j) when j < len && not is_target.(j) -> (
      match parse_push ops len is_target j with
      | Some (b, k) when k < len && not is_target.(k) -> (
          match ops.(k) with
          | F_binop_32 op when k + 1 < len && not is_target.(k + 1) -> (
              match ops.(k + 1) with
              | F_local_set d -> Some (F_bin (false, op, a, b, d), k + 2)
              | _ -> None)
          | F_binop_64 op when k + 1 < len && not is_target.(k + 1) -> (
              match ops.(k + 1) with
              | F_local_set d -> Some (F_bin (true, op, a, b, d), k + 2)
              | _ -> None)
          | F_relop_32 op when k + 1 < len && not is_target.(k + 1) -> (
              match ops.(k + 1) with
              | F_jump_if_true t -> Some (F_cmp_br (false, op, a, b, true, t), k + 2)
              | F_jump_if_false t -> Some (F_cmp_br (false, op, a, b, false, t), k + 2)
              | _ -> None)
          | F_relop_64 op when k + 1 < len && not is_target.(k + 1) -> (
              match ops.(k + 1) with
              | F_jump_if_true t -> Some (F_cmp_br (true, op, a, b, true, t), k + 2)
              | F_jump_if_false t -> Some (F_cmp_br (true, op, a, b, false, t), k + 2)
              | _ -> None)
          | _ -> None)
      | _ -> None)
  | Some _ -> None

(* Ensure no jump lands strictly inside [start+1, stop). *)
let window_clear is_target start stop =
  let rec check p = p >= stop || ((not is_target.(p)) && check (p + 1)) in
  check (start + 1)

let fuse ops =
  let len = Array.length ops in
  let is_target = Array.make (len + 1) false in
  Array.iter
    (function
      | F_jump t | F_jump_if_false t | F_jump_if_true t -> is_target.(t) <- true
      | _ -> ())
    ops;
  let out = ref [] in
  let out_len = ref 0 in
  let index_map = Array.make (len + 1) (-1) in
  let push_out op =
    out := op :: !out;
    incr out_len
  in
  let i = ref 0 in
  while !i < len do
    index_map.(!i) <- !out_len;
    (match parse_window ops len is_target !i with
    | Some (fused_op, stop) when window_clear is_target !i stop ->
        push_out fused_op;
        i := stop
    | Some _ | None ->
        push_out (F_plain ops.(!i));
        incr i)
  done;
  index_map.(len) <- !out_len;
  let remap target =
    let t = index_map.(target) in
    assert (t >= 0);
    t
  in
  Array.of_list
    (List.rev_map
       (function
         | F_plain (F_jump t) -> F_plain (F_jump (remap t))
         | F_plain (F_jump_if_false t) -> F_plain (F_jump_if_false (remap t))
         | F_plain (F_jump_if_true t) -> F_plain (F_jump_if_true (remap t))
         | F_cmp_br (w, op, a, b, sense, t) -> F_cmp_br (w, op, a, b, sense, remap t)
         | other -> other)
       !out)

(* A control frame a branch may target: loops branch to their start,
   blocks/ifs branch to their end (patched once known). *)
type frame = Loop_start of int | Block_end of int list ref

let flatten_func (func : Ast.func) =
  let e = { ops = [||]; len = 0 } in
  let patch at target =
    e.ops.(at) <-
      (match e.ops.(at) with
      | F_jump _ -> F_jump target
      | F_jump_if_false _ -> F_jump_if_false target
      | F_jump_if_true _ -> F_jump_if_true target
      | _ -> assert false)
  in
  let branch_target frames depth =
    match List.nth_opt frames depth with
    | Some frame -> frame
    | None -> invalid_arg "flatten: branch depth out of range"
  in
  let rec go frames instr =
    match instr with
    | Unreachable -> emit e F_unreachable
    | Nop -> emit e F_nop
    | Block body ->
        let pending = ref [] in
        List.iter (go (Block_end pending :: frames)) body;
        List.iter (fun at -> patch at e.len) !pending
    | Loop body ->
        let start = e.len in
        List.iter (go (Loop_start start :: frames)) body
    | If (then_, else_) ->
        let to_else = e.len in
        emit e (F_jump_if_false 0);
        let pending = ref [] in
        List.iter (go (Block_end pending :: frames)) then_;
        if else_ = [] then begin
          patch to_else e.len;
          List.iter (fun at -> patch at e.len) !pending
        end
        else begin
          let skip_else = e.len in
          emit e (F_jump 0);
          patch to_else e.len;
          List.iter (go (Block_end pending :: frames)) else_;
          patch skip_else e.len;
          List.iter (fun at -> patch at e.len) !pending
        end
    | Br depth -> (
        match branch_target frames depth with
        | Loop_start start -> emit e (F_jump start)
        | Block_end pending ->
            pending := e.len :: !pending;
            emit e (F_jump 0))
    | Br_if depth -> (
        match branch_target frames depth with
        | Loop_start start -> emit e (F_jump_if_true start)
        | Block_end pending ->
            pending := e.len :: !pending;
            emit e (F_jump_if_true 0))
    | Return -> emit e F_return
    | Call index -> emit e (F_call index)
    | Drop -> emit e F_drop
    | Local_get i -> emit e (F_local_get i)
    | Local_set i -> emit e (F_local_set i)
    | Local_tee i -> emit e (F_local_tee i)
    | Global_get i -> emit e (F_global_get i)
    | Global_set i -> emit e (F_global_set i)
    | I32_const v -> emit e (F_i32_const v)
    | I64_const v -> emit e (F_i64_const v)
    | Binop (I32, op) -> emit e (F_binop_32 op)
    | Binop (I64, op) -> emit e (F_binop_64 op)
    | Unop (I32, op) -> emit e (F_unop_32 op)
    | Unop (I64, op) -> emit e (F_unop_64 op)
    | Relop (I32, op) -> emit e (F_relop_32 op)
    | Relop (I64, op) -> emit e (F_relop_64 op)
    | I32_eqz -> emit e F_i32_eqz
    | I64_eqz -> emit e F_i64_eqz
    | I32_wrap_i64 -> emit e F_i32_wrap_i64
    | I64_extend_i32_u -> emit e F_i64_extend_i32_u
    | I32_load off -> emit e (F_i32_load off)
    | I64_load off -> emit e (F_i64_load off)
    | I32_load8_u off -> emit e (F_i32_load8_u off)
    | I32_load16_u off -> emit e (F_i32_load16_u off)
    | I32_store off -> emit e (F_i32_store off)
    | I64_store off -> emit e (F_i64_store off)
    | I32_store8 off -> emit e (F_i32_store8 off)
    | I32_store16 off -> emit e (F_i32_store16 off)
    | Memory_size -> emit e F_memory_size
    | Memory_grow -> emit e F_memory_grow
  in
  (* the function body is one implicit block *)
  let pending = ref [] in
  List.iter (go [ Block_end pending ]) func.body;
  List.iter (fun at -> patch at e.len) !pending;
  emit e F_return;
  let ops = Array.sub e.ops 0 e.len in
  {
    arity = List.length func.ftype.params;
    nlocals = List.length func.ftype.params + List.length func.locals;
    returns_value = func.ftype.results <> [];
    ops;
    fused = fuse ops;
  }

let flatten (m : modul) =
  {
    funcs = Array.map flatten_func m.funcs;
    memory_pages = m.memory_pages;
    globals = m.globals;
    data = m.data;
    export_table = List.map (fun e -> (e.name, e.func_index)) m.exports;
  }
