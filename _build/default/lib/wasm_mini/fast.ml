(* Threaded-code interpreter over [Flatten] output — the WASM3-style fast
   path.

   Values live untyped in an int64 operand stack (i32 values occupy the
   low 32 bits, zero-extended); validation happened at load, so the typed
   reference interpreter ([Interp]) and this one agree on valid modules —
   a property the test suite checks.  No per-push allocation, no
   exception-driven control flow: this is where the paper's observation
   that WASM3 out-runs rBPF (at the price of far more RAM and startup
   work) comes from. *)

open Flatten

type t = {
  flat : flat_module;
  memory : bytes;
  globals : int64 array; (* untyped, like the operand stack *)
  stack : int64 array; (* shared operand stack *)
  mutable sp : int;
  mutable fuel : int;
}

exception Trap of Interp.trap

let instantiate ?(fuel = 50_000_000) (flat : flat_module) =
  let memory = Bytes.make (flat.memory_pages * Ast.page_size) '\000' in
  List.iter
    (fun seg ->
      if seg.Ast.offset < 0
         || seg.Ast.offset + String.length seg.Ast.bytes > Bytes.length memory
      then invalid_arg "instantiate: data segment out of bounds"
      else
        Bytes.blit_string seg.Ast.bytes 0 memory seg.Ast.offset
          (String.length seg.Ast.bytes))
    flat.data;
  {
    flat;
    memory;
    globals =
      Array.map
        (fun g ->
          match g.Ast.gtype with
          | Ast.I32 -> Int64.logand g.Ast.init 0xFFFF_FFFFL
          | Ast.I64 -> g.Ast.init)
        flat.globals;
    stack = Array.make 1024 0L;
    sp = 0;
    fuel;
  }

let of_module ?fuel m = instantiate ?fuel (Flatten.flatten m)

let load_memory t ~offset data =
  if offset + Bytes.length data > Bytes.length t.memory then
    invalid_arg "load_memory: does not fit";
  Bytes.blit data 0 t.memory offset (Bytes.length data)

let mask32 v = Int64.logand v 0xFFFF_FFFFL

let binop32 op a b =
  let a = Int64.to_int32 a and b = Int64.to_int32 b in
  let open Int32 in
  let r =
    match (op : Ast.ibinop) with
    | Ast.Add -> add a b
    | Ast.Sub -> sub a b
    | Ast.Mul -> mul a b
    | Ast.Div_u ->
        if equal b 0l then raise (Trap Interp.Division_by_zero)
        else unsigned_div a b
    | Ast.Div_s ->
        if equal b 0l then raise (Trap Interp.Division_by_zero) else div a b
    | Ast.Rem_u ->
        if equal b 0l then raise (Trap Interp.Division_by_zero)
        else unsigned_rem a b
    | Ast.And -> logand a b
    | Ast.Or -> logor a b
    | Ast.Xor -> logxor a b
    | Ast.Shl -> shift_left a (to_int b land 31)
    | Ast.Shr_u -> shift_right_logical a (to_int b land 31)
    | Ast.Shr_s -> shift_right a (to_int b land 31)
    | Ast.Rotl ->
        let n = to_int b land 31 in
        if n = 0 then a else logor (shift_left a n) (shift_right_logical a (32 - n))
    | Ast.Rotr ->
        let n = to_int b land 31 in
        if n = 0 then a else logor (shift_right_logical a n) (shift_left a (32 - n))
  in
  mask32 (Int64.of_int32 r)

let binop64 op a b =
  let open Int64 in
  match (op : Ast.ibinop) with
  | Ast.Add -> add a b
  | Ast.Sub -> sub a b
  | Ast.Mul -> mul a b
  | Ast.Div_u ->
      if equal b 0L then raise (Trap Interp.Division_by_zero)
      else unsigned_div a b
  | Ast.Div_s ->
      if equal b 0L then raise (Trap Interp.Division_by_zero) else div a b
  | Ast.Rem_u ->
      if equal b 0L then raise (Trap Interp.Division_by_zero)
      else unsigned_rem a b
  | Ast.And -> logand a b
  | Ast.Or -> logor a b
  | Ast.Xor -> logxor a b
  | Ast.Shl -> shift_left a (to_int b land 63)
  | Ast.Shr_u -> shift_right_logical a (to_int b land 63)
  | Ast.Shr_s -> shift_right a (to_int b land 63)
  | Ast.Rotl ->
      let n = to_int b land 63 in
      if n = 0 then a else logor (shift_left a n) (shift_right_logical a (64 - n))
  | Ast.Rotr ->
      let n = to_int b land 63 in
      if n = 0 then a else logor (shift_right_logical a n) (shift_left a (64 - n))

let relop32 op a b =
  let a = Int64.to_int32 a and b = Int64.to_int32 b in
  let c = Int32.compare a b and u = Int32.unsigned_compare a b in
  match (op : Ast.irelop) with
  | Ast.Eq -> c = 0
  | Ast.Ne -> c <> 0
  | Ast.Lt_u -> u < 0
  | Ast.Lt_s -> c < 0
  | Ast.Gt_u -> u > 0
  | Ast.Gt_s -> c > 0
  | Ast.Le_u -> u <= 0
  | Ast.Le_s -> c <= 0
  | Ast.Ge_u -> u >= 0
  | Ast.Ge_s -> c >= 0

let relop64 op a b =
  let c = Int64.compare a b and u = Int64.unsigned_compare a b in
  match (op : Ast.irelop) with
  | Ast.Eq -> c = 0
  | Ast.Ne -> c <> 0
  | Ast.Lt_u -> u < 0
  | Ast.Lt_s -> c < 0
  | Ast.Gt_u -> u > 0
  | Ast.Gt_s -> c > 0
  | Ast.Le_u -> u <= 0
  | Ast.Le_s -> c <= 0
  | Ast.Ge_u -> u >= 0
  | Ast.Ge_s -> c >= 0

let max_call_depth = 64

let rec exec t ~depth (f : flat_func) locals =
  if depth > max_call_depth then raise (Trap Interp.Call_stack_exhausted);
  let ops = f.fused in
  let stack = t.stack in
  let memory = t.memory in
  let mem_len = Bytes.length memory in
  let pc = ref 0 in
  let continue = ref true in
  let pop () =
    t.sp <- t.sp - 1;
    if t.sp < 0 then raise (Trap Interp.Stack_underflow);
    Array.unsafe_get stack t.sp
  in
  let push v =
    if t.sp >= Array.length stack then raise (Trap Interp.Call_stack_exhausted);
    Array.unsafe_set stack t.sp v;
    t.sp <- t.sp + 1
  in
  let addr offset base size =
    let a = Int64.to_int (mask32 base) + offset in
    if a < 0 || a + size > mem_len then
      raise (Trap (Interp.Out_of_bounds { addr = a; size }));
    a
  in
  let operand = function
    | Op_slot s -> locals.(s)
    | Op_const v -> v
    | Op_load8 (s, off) ->
        Int64.of_int (Bytes.get_uint8 memory (addr off locals.(s) 1))
    | Op_load16 (s, off) ->
        Int64.of_int (Bytes.get_uint16_le memory (addr off locals.(s) 2))
    | Op_load32 (s, off) ->
        mask32 (Int64.of_int32 (Bytes.get_int32_le memory (addr off locals.(s) 4)))
    | Op_load64 (s, off) -> Bytes.get_int64_le memory (addr off locals.(s) 8)
  in
  (* i32 fused operands as native ints (zero-extended, exact in 63 bits):
     the allocation-free hot path. *)
  let operand_int = function
    | Op_slot s -> Int64.to_int locals.(s) land 0xFFFF_FFFF
    | Op_const v -> Int64.to_int v land 0xFFFF_FFFF
    | Op_load8 (s, off) -> Bytes.get_uint8 memory (addr off locals.(s) 1)
    | Op_load16 (s, off) -> Bytes.get_uint16_le memory (addr off locals.(s) 2)
    | Op_load32 (s, off) ->
        Int32.to_int (Bytes.get_int32_le memory (addr off locals.(s) 4))
        land 0xFFFF_FFFF
    | Op_load64 (s, off) ->
        Int64.to_int (Bytes.get_int64_le memory (addr off locals.(s) 8))
        land 0xFFFF_FFFF
  in
  let sext32 v = (v lxor 0x8000_0000) - 0x8000_0000 in
  let bin32_int op a b =
    match (op : Ast.ibinop) with
    | Ast.Add -> a + b
    | Ast.Sub -> a - b
    | Ast.Mul -> a * b
    | Ast.Div_u -> if b = 0 then raise (Trap Interp.Division_by_zero) else a / b
    | Ast.Div_s ->
        if b = 0 then raise (Trap Interp.Division_by_zero)
        else sext32 a / sext32 b
    | Ast.Rem_u -> if b = 0 then raise (Trap Interp.Division_by_zero) else a mod b
    | Ast.And -> a land b
    | Ast.Or -> a lor b
    | Ast.Xor -> a lxor b
    | Ast.Shl -> a lsl (b land 31)
    | Ast.Shr_u -> a lsr (b land 31)
    | Ast.Shr_s -> sext32 a asr (b land 31)
    | Ast.Rotl ->
        let n = b land 31 in
        if n = 0 then a else ((a lsl n) lor (a lsr (32 - n))) land 0xFFFF_FFFF
    | Ast.Rotr ->
        let n = b land 31 in
        if n = 0 then a else ((a lsr n) lor (a lsl (32 - n))) land 0xFFFF_FFFF
  in
  let rel32_int op a b =
    match (op : Ast.irelop) with
    | Ast.Eq -> a = b
    | Ast.Ne -> a <> b
    | Ast.Lt_u -> a < b
    | Ast.Lt_s -> sext32 a < sext32 b
    | Ast.Gt_u -> a > b
    | Ast.Gt_s -> sext32 a > sext32 b
    | Ast.Le_u -> a <= b
    | Ast.Le_s -> sext32 a <= sext32 b
    | Ast.Ge_u -> a >= b
    | Ast.Ge_s -> sext32 a >= sext32 b
  in
  while !continue do
    t.fuel <- t.fuel - 1;
    if t.fuel <= 0 then raise (Trap Interp.Fuel_exhausted);
    let fused_op = Array.unsafe_get ops !pc in
    incr pc;
    match fused_op with
    | F_bin (false, op, a, b, dst) ->
        let r = bin32_int op (operand_int a) (operand_int b) in
        locals.(dst) <- Int64.of_int (r land 0xFFFF_FFFF)
    | F_bin (true, op, a, b, dst) ->
        locals.(dst) <- binop64 op (operand a) (operand b)
    | F_cmp_br (false, op, a, b, sense, target) ->
        if rel32_int op (operand_int a) (operand_int b) = sense then pc := target
    | F_cmp_br (true, op, a, b, sense, target) ->
        if relop64 op (operand a) (operand b) = sense then pc := target
    | F_plain op ->
    match op with
    | F_unreachable -> raise (Trap Interp.Unreachable_executed)
    | F_nop -> ()
    | F_jump target -> pc := target
    | F_jump_if_false target -> if Int64.equal (pop ()) 0L then pc := target
    | F_jump_if_true target -> if not (Int64.equal (pop ()) 0L) then pc := target
    | F_return -> continue := false
    | F_call index ->
        let callee = t.flat.funcs.(index) in
        let callee_locals = Array.make (max callee.nlocals 1) 0L in
        for i = callee.arity - 1 downto 0 do
          callee_locals.(i) <- pop ()
        done;
        exec t ~depth:(depth + 1) callee callee_locals
    | F_drop -> ignore (pop ())
    | F_local_get i -> push locals.(i)
    | F_local_set i -> locals.(i) <- pop ()
    | F_local_tee i -> locals.(i) <- stack.(t.sp - 1)
    | F_global_get i -> push t.globals.(i)
    | F_global_set i -> t.globals.(i) <- pop ()
    | F_i32_const v -> push (mask32 (Int64.of_int32 v))
    | F_i64_const v -> push v
    | F_binop_32 op ->
        let b = pop () in
        let a = pop () in
        push (binop32 op a b)
    | F_binop_64 op ->
        let b = pop () in
        let a = pop () in
        push (binop64 op a b)
    | F_unop_32 op ->
        let a = Int64.to_int32 (pop ()) in
        push (mask32 (Int64.of_int32 (Interp.eval_i32_unop op a)))
    | F_unop_64 op -> push (Interp.eval_i64_unop op (pop ()))
    | F_relop_32 op ->
        let b = pop () in
        let a = pop () in
        push (if relop32 op a b then 1L else 0L)
    | F_relop_64 op ->
        let b = pop () in
        let a = pop () in
        push (if relop64 op a b then 1L else 0L)
    | F_i32_eqz -> push (if Int64.equal (mask32 (pop ())) 0L then 1L else 0L)
    | F_i64_eqz -> push (if Int64.equal (pop ()) 0L then 1L else 0L)
    | F_i32_wrap_i64 -> push (mask32 (pop ()))
    | F_i64_extend_i32_u -> push (mask32 (pop ()))
    | F_i32_load off ->
        let a = addr off (pop ()) 4 in
        push (mask32 (Int64.of_int32 (Bytes.get_int32_le memory a)))
    | F_i64_load off ->
        let a = addr off (pop ()) 8 in
        push (Bytes.get_int64_le memory a)
    | F_i32_load8_u off ->
        let a = addr off (pop ()) 1 in
        push (Int64.of_int (Bytes.get_uint8 memory a))
    | F_i32_load16_u off ->
        let a = addr off (pop ()) 2 in
        push (Int64.of_int (Bytes.get_uint16_le memory a))
    | F_i32_store off ->
        let v = pop () in
        let a = addr off (pop ()) 4 in
        Bytes.set_int32_le memory a (Int64.to_int32 v)
    | F_i64_store off ->
        let v = pop () in
        let a = addr off (pop ()) 8 in
        Bytes.set_int64_le memory a v
    | F_i32_store8 off ->
        let v = pop () in
        let a = addr off (pop ()) 1 in
        Bytes.set_uint8 memory a (Int64.to_int v land 0xff)
    | F_i32_store16 off ->
        let v = pop () in
        let a = addr off (pop ()) 2 in
        Bytes.set_uint16_le memory a (Int64.to_int v land 0xffff)
    | F_memory_size -> push (Int64.of_int (mem_len / Ast.page_size))
    | F_memory_grow ->
        ignore (pop ());
        push (mask32 (-1L))
  done

(* [call t ~name args] invokes an exported function; args and the result
   use the untyped int64 representation. *)
let call t ~name args =
  match List.assoc_opt name t.flat.export_table with
  | None -> Error (Interp.No_such_export name)
  | Some index -> (
      let f = t.flat.funcs.(index) in
      let locals = Array.make (max f.nlocals 1) 0L in
      List.iteri (fun i v -> if i < f.arity then locals.(i) <- v) args;
      t.sp <- 0;
      try
        exec t ~depth:0 f locals;
        if f.returns_value then
          if t.sp > 0 then Ok (Some t.stack.(t.sp - 1))
          else Error Interp.Stack_underflow
        else Ok None
      with Trap trap -> Error trap)

let run_fletcher32 t data =
  load_memory t ~offset:0 data;
  match call t ~name:"fletcher32" [ Int64.of_int (Bytes.length data / 2) ] with
  | Ok (Some v) -> Ok (mask32 v)
  | Ok None -> Error Interp.Type_mismatch
  | Error trap -> Error trap
