(* Bounded inter-thread message queue, in the style of RIOT's msg API.

   Used by examples to hand network payloads and sensor readings between
   threads without shared mutable state beyond the queue itself. *)

type 'a t = { capacity : int; queue : 'a Queue.t; mutable dropped : int }

let create ?(capacity = 8) () = { capacity; queue = Queue.create (); dropped = 0 }

let length t = Queue.length t.queue
let dropped t = t.dropped

(* Returns [false] (and counts the drop) when the mailbox is full —
   low-power nodes drop rather than block interrupt context. *)
let send t message =
  if Queue.length t.queue >= t.capacity then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    Queue.add message t.queue;
    true
  end

let receive t = Queue.take_opt t.queue

let drain t =
  let rec loop acc =
    match Queue.take_opt t.queue with
    | Some m -> loop (m :: acc)
    | None -> List.rev acc
  in
  loop []
