(* Synchronization primitives in the style of RIOT's mutex/sema modules.

   The mutex implements priority inheritance: while a higher-priority
   thread waits, the owner runs at the waiter's priority, bounding
   priority inversion — the classic RTOS concern when containers and
   drivers share a resource. *)

type mutex = {
  mutable owner : Kernel.thread option;
  mutable waiters : Kernel.thread list; (* FIFO *)
  (* the owner's pre-boost priority while inheritance is active *)
  mutable saved_priority : (Kernel.thread * int) option;
  mutable contentions : int;
}

let create_mutex () =
  { owner = None; waiters = []; saved_priority = None; contentions = 0 }

let is_locked mutex = mutex.owner <> None
let contentions mutex = mutex.contentions

(* Boost [owner] to the highest priority among its waiters (numerically
   lowest value wins, RIOT convention). *)
let apply_inheritance mutex owner =
  match mutex.waiters with
  | [] -> ()
  | waiters ->
      let top =
        List.fold_left
          (fun best t -> min best t.Kernel.priority)
          owner.Kernel.priority waiters
      in
      if top < owner.Kernel.priority then begin
        if mutex.saved_priority = None then
          mutex.saved_priority <- Some (owner, owner.Kernel.priority);
        owner.Kernel.priority <- top
      end

let restore_priority mutex thread =
  match mutex.saved_priority with
  | Some (boosted, original) when boosted == thread ->
      thread.Kernel.priority <- original;
      mutex.saved_priority <- None
  | Some _ | None -> ()

(* [lock mutex thread] either acquires immediately or blocks the calling
   thread (the thread's quantum should then return [Kernel.Yield]). *)
let lock mutex thread =
  match mutex.owner with
  | None ->
      mutex.owner <- Some thread;
      `Acquired
  | Some owner when owner == thread -> `Acquired (* already held: no-op *)
  | Some owner ->
      mutex.contentions <- mutex.contentions + 1;
      thread.Kernel.state <- Kernel.Blocked;
      mutex.waiters <- mutex.waiters @ [ thread ];
      apply_inheritance mutex owner;
      `Blocked

(* [unlock mutex thread] releases; ownership transfers to the longest
   waiting thread, which is woken. *)
let unlock mutex thread =
  match mutex.owner with
  | Some owner when owner == thread -> (
      restore_priority mutex thread;
      match mutex.waiters with
      | [] ->
          mutex.owner <- None;
          Ok ()
      | next :: rest ->
          mutex.waiters <- rest;
          mutex.owner <- Some next;
          Kernel.wake next;
          (* the new owner may itself have waiters queued already *)
          apply_inheritance mutex next;
          Ok ())
  | Some _ -> Error `Not_owner
  | None -> Error `Not_locked

(* [try_lock] never blocks. *)
let try_lock mutex thread =
  match mutex.owner with
  | None ->
      mutex.owner <- Some thread;
      true
  | Some owner -> owner == thread

(* --- counting semaphore --- *)

type semaphore = {
  mutable count : int;
  mutable sem_waiters : Kernel.thread list;
  (* units handed directly to woken waiters; their next [sem_acquire]
     consumes the grant instead of re-blocking *)
  mutable granted : Kernel.thread list;
}

let create_semaphore ~count = { count; sem_waiters = []; granted = [] }

let sem_value sem = sem.count

let sem_acquire sem thread =
  if List.memq thread sem.granted then begin
    sem.granted <- List.filter (fun t -> t != thread) sem.granted;
    `Acquired
  end
  else if sem.count > 0 then begin
    sem.count <- sem.count - 1;
    `Acquired
  end
  else begin
    thread.Kernel.state <- Kernel.Blocked;
    sem.sem_waiters <- sem.sem_waiters @ [ thread ];
    `Blocked
  end

let sem_release sem =
  match sem.sem_waiters with
  | [] -> sem.count <- sem.count + 1
  | next :: rest ->
      (* hand the unit directly to the longest waiter *)
      sem.sem_waiters <- rest;
      sem.granted <- next :: sem.granted;
      Kernel.wake next
