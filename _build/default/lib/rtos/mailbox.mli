(** Bounded inter-thread message queue, in the style of RIOT's msg API.

    A full mailbox drops (and counts) rather than blocks — low-power
    nodes cannot block interrupt context. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int

val dropped : 'a t -> int
(** Messages rejected because the mailbox was full. *)

val send : 'a t -> 'a -> bool
(** [false] when the mailbox was full and the message was dropped. *)

val receive : 'a t -> 'a option
val drain : 'a t -> 'a list
