(* Virtual cycle clock.

   All RTOS-simulator time is counted in CPU cycles of the modelled
   microcontroller; the benchmark boards in the paper all run at 64 MHz,
   which is the default frequency here.  Wall-clock-independent time makes
   every experiment deterministic and reproducible. *)

type t = { mutable now : int64; frequency_hz : int }

let default_frequency_hz = 64_000_000

let create ?(frequency_hz = default_frequency_hz) () = { now = 0L; frequency_hz }

let now t = t.now
let frequency_hz t = t.frequency_hz

let advance t cycles =
  if cycles < 0 then invalid_arg "Clock.advance: negative";
  t.now <- Int64.add t.now (Int64.of_int cycles)

let advance_to t time =
  if Int64.compare time t.now > 0 then t.now <- time

let cycles_of_us t us = us * t.frequency_hz / 1_000_000

let us_of_cycles t cycles =
  Int64.to_float cycles *. 1_000_000.0 /. float_of_int t.frequency_hz

let ms_of_cycles t cycles = us_of_cycles t cycles /. 1000.0
