(** Time-ordered event queue for the RTOS simulator.

    Events fire in (time, insertion-sequence) order, so simultaneous
    events are handled first-scheduled-first — deterministic by
    construction. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val add : 'a t -> at:int64 -> 'a -> unit
(** Schedule a payload at an absolute cycle time. *)

val peek_time : 'a t -> int64 option
(** Time of the earliest pending event. *)

val pop : 'a t -> (int64 * 'a) option

val pop_due : 'a t -> now:int64 -> (int64 * 'a) option
(** Pop the earliest event only if it is due at or before [now]. *)
