(* Time-ordered event queue for the RTOS simulator.

   Events fire in (time, insertion-sequence) order, so simultaneous events
   are handled first-scheduled-first — deterministic by construction. *)

type 'a t = {
  mutable events : (int64 * int * 'a) list; (* sorted: (time, seq, payload) *)
  mutable next_seq : int;
}

let create () = { events = []; next_seq = 0 }
let is_empty t = t.events = []
let length t = List.length t.events

let compare_entry (t1, s1, _) (t2, s2, _) =
  match Int64.compare t1 t2 with 0 -> compare s1 s2 | c -> c

let add t ~at payload =
  let entry = (at, t.next_seq, payload) in
  t.next_seq <- t.next_seq + 1;
  (* insertion into a sorted list: simulation queues stay short (tens of
     events), so this beats a heap in simplicity without hurting runtime *)
  let rec insert = function
    | [] -> [ entry ]
    | head :: tail ->
        if compare_entry entry head < 0 then entry :: head :: tail
        else head :: insert tail
  in
  t.events <- insert t.events

let peek_time t =
  match t.events with [] -> None | (time, _, _) :: _ -> Some time

let pop t =
  match t.events with
  | [] -> None
  | (time, _, payload) :: rest ->
      t.events <- rest;
      Some (time, payload)

(* Pop the next event only if it is due at or before [now]. *)
let pop_due t ~now =
  match t.events with
  | (time, _, payload) :: rest when Int64.compare time now <= 0 ->
      t.events <- rest;
      Some (time, payload)
  | _ -> None
