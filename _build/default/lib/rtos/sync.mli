(** Synchronization primitives in the style of RIOT's mutex/sema modules.

    The mutex implements priority inheritance: while a higher-priority
    thread waits, the owner runs at the waiter's priority, bounding
    priority inversion.  On unlock, ownership transfers to the longest
    waiting thread, which is woken; its next [lock] call returns
    [`Acquired] (it already owns the mutex). *)

type mutex

val create_mutex : unit -> mutex
val is_locked : mutex -> bool

val contentions : mutex -> int
(** How many lock attempts blocked. *)

val lock : mutex -> Kernel.thread -> [ `Acquired | `Blocked ]
(** On [`Blocked], the calling thread's state is set to Blocked; its
    quantum should return [Kernel.Yield]. *)

val unlock : mutex -> Kernel.thread -> (unit, [ `Not_owner | `Not_locked ]) result

val try_lock : mutex -> Kernel.thread -> bool
(** Never blocks. *)

(** {2 Counting semaphore} *)

type semaphore

val create_semaphore : count:int -> semaphore
val sem_value : semaphore -> int

val sem_acquire : semaphore -> Kernel.thread -> [ `Acquired | `Blocked ]
(** A unit released while this thread waits is handed over directly: the
    woken thread's next [sem_acquire] consumes the grant. *)

val sem_release : semaphore -> unit
