(** Virtual cycle clock.

    All RTOS-simulator time is counted in CPU cycles of the modelled
    microcontroller (64 MHz by default, as on the paper's boards), which
    makes every experiment deterministic. *)

type t

val default_frequency_hz : int
(** 64 MHz. *)

val create : ?frequency_hz:int -> unit -> t

val now : t -> int64
val frequency_hz : t -> int

val advance : t -> int -> unit
(** Charge [cycles]; raises [Invalid_argument] on negative input. *)

val advance_to : t -> int64 -> unit
(** Jump forward to an absolute time (idle skip); never moves backward. *)

val cycles_of_us : t -> int -> int
val us_of_cycles : t -> int64 -> float
val ms_of_cycles : t -> int64 -> float
