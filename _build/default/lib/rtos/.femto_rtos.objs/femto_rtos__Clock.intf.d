lib/rtos/clock.mli:
