lib/rtos/event_queue.ml: Int64 List
