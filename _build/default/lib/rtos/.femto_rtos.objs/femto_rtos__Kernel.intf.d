lib/rtos/kernel.mli: Clock
