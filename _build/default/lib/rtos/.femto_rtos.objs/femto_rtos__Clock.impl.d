lib/rtos/clock.ml: Int64
