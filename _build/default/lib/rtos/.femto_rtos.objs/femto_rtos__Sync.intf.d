lib/rtos/sync.mli: Kernel
