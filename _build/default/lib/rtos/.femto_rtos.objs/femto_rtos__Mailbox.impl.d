lib/rtos/mailbox.ml: List Queue
