lib/rtos/mailbox.mli:
