lib/rtos/kernel.ml: Clock Event_queue Int64 List
