lib/rtos/event_queue.mli:
