lib/rtos/sync.ml: Kernel List
