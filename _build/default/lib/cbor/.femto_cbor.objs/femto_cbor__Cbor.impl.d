lib/cbor/cbor.ml: Bool Buffer Char Format Int Int32 Int64 List Printf String Sys
