lib/cbor/cbor.mli: Format
