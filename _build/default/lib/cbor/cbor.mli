(** CBOR (RFC 8949) encoder/decoder.

    SUIT manifests and COSE envelopes — the paper's secure-update metadata
    (§5) — are CBOR objects.  Encoding is deterministic (definite lengths,
    shortest-form heads); the decoder also accepts indefinite-length items
    so foreign manifests parse. *)

type t =
  | Int of int64  (** both major types 0 and 1 *)
  | Bytes of string
  | Text of string
  | Array of t list
  | Map of (t * t) list
  | Tag of int64 * t
  | Bool of bool
  | Null
  | Undefined
  | Simple of int
  | Float of float

exception Decode_error of string

val encode : t -> string
(** Deterministic serialization (shortest-form heads, definite lengths). *)

val decode : string -> t
(** Decode a complete item; raises {!Decode_error} on malformed input or
    trailing bytes. *)

val decode_partial : string -> t * int
(** Decode one item from the front; returns it with the bytes consumed. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {2 Accessors used by SUIT/COSE} *)

val find_map_entry : t -> t -> t option
(** [find_map_entry map key] looks a key up in a [Map] item. *)

val as_int : t -> int64 option
val as_bytes : t -> string option
val as_text : t -> string option
val as_array : t -> t list option
