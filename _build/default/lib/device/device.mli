(** A complete Femto-Container device: the composition an actual firmware
    would ship.

    [boot] wires together the hosting engine (hooks from a static
    firmware table), the SUIT update processor, persistent container
    slots on the flash simulator, and the CoAP management endpoints:

    - [POST /suit/slot] — upload a payload (block-wise capable);
    - [POST /suit/install] — submit a signed manifest; verified payloads
      are written to a flash slot and attached to their hook;
    - [GET /.well-known/core] — resource discovery;
    - [GET /fc/containers] — list running containers and their stats.

    Re-booting over the same flash re-attaches every valid slot image —
    updates survive power cycles, as the paper's §5 flow requires. *)

module Engine = Femto_core.Engine
module Container = Femto_core.Container
module Contract = Femto_core.Contract
module Kernel = Femto_rtos.Kernel
module Network = Femto_net.Network
module Server = Femto_coap.Server
module Message = Femto_coap.Message
module Suit = Femto_suit.Suit
module Cose = Femto_cose.Cose
module Slots = Femto_flash.Slots
module Flash = Femto_flash.Flash

(** One entry of the static firmware hook table (paper Listing 1 — hooks
    are compiled in). *)
type hook_spec = {
  uuid : string;
  name : string;
  ctx_size : int;
  ctx_perm : Femto_vm.Region.perm;
  policy : Contract.policy;
}

val hook_spec :
  ?ctx_perm:Femto_vm.Region.perm ->
  ?policy:Contract.policy ->
  uuid:string ->
  name:string ->
  ctx_size:int ->
  unit ->
  hook_spec

type identity = {
  vendor_id : string;
  class_id : string;
  update_key : Cose.key;
}

type t

val kernel : t -> Kernel.t
val engine : t -> Engine.t
val slots : t -> Slots.t
val server : t -> Server.t
val containers : t -> Container.t list

val suit_processor : t -> Suit.device
val suit_sequence : t -> int64
val suit_accepted : t -> int
val suit_rejected : t -> int

val containers_report : t -> string
(** The `/fc/containers` listing. *)

val boot :
  ?platform:Femto_platform.Platform.t ->
  identity:identity ->
  hooks:hook_spec list ->
  flash:Flash.t ->
  slot_count:int ->
  network:Network.t ->
  addr:int ->
  unit ->
  t
(** Bring a device up: engine + hooks, SUIT processor, management
    endpoints; then re-attach the newest valid image per hook found on
    the flash, resuming the SUIT rollback counter from the newest
    install. *)
