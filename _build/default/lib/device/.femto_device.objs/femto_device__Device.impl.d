lib/device/device.ml: Bytes Femto_coap Femto_core Femto_cose Femto_ebpf Femto_flash Femto_net Femto_platform Femto_rtos Femto_suit Femto_vm Hashtbl Int64 List Printf Result String
