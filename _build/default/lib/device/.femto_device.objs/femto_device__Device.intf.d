lib/device/device.mli: Femto_coap Femto_core Femto_cose Femto_flash Femto_net Femto_platform Femto_rtos Femto_suit Femto_vm
