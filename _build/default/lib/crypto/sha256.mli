(** SHA-256 (FIPS 180-4), implemented from scratch; verified against the
    NIST test vectors in the test suite. *)

type ctx

val init : unit -> ctx
val update : ctx -> bytes -> int -> int -> unit
val update_string : ctx -> string -> unit

val finalize : ctx -> string
(** 32-byte binary digest.  The context must not be reused afterwards. *)

val digest_bytes : bytes -> string
val digest_string : string -> string
