lib/crypto/crypto.ml: Buffer Char Printf Sha256 String
