lib/crypto/crypto.mli: Sha256
