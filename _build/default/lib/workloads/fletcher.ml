(* Fletcher-32 checksum: the paper's reference workload (§6, §10.2).

   The native implementation mirrors RIOT's: 16-bit little-endian words,
   both sums seeded with 0xffff, deferred modular reduction.  The eBPF
   program below computes the identical function inside a Femto-Container,
   and the equivalence is asserted by property tests across every runtime
   in this repository. *)

let reduce sum = (sum land 0xffff) + (sum lsr 16)

(* [checksum data] over [Bytes.length data / 2] 16-bit LE words. *)
let checksum data =
  let words = Bytes.length data / 2 in
  let sum1 = ref 0xffff and sum2 = ref 0xffff in
  for i = 0 to words - 1 do
    sum1 := !sum1 + Bytes.get_uint16_le data (2 * i);
    sum2 := !sum2 + !sum1
  done;
  let s1 = reduce (reduce !sum1) in
  let s2 = reduce (reduce !sum2) in
  Int32.to_int (Int32.of_int ((s2 lsl 16) lor s1)) land 0xFFFFFFFF

(* The 360-byte input used throughout the paper's benchmarks: a printable
   test vector, deterministic across runs. *)
let input_360 =
  let text =
    "This is the 360 byte test input that the Femto-Containers paper \
     checksums in every one of its virtual machine benchmarks. It mimics \
     the instruction complexity of intensive on-board sensor data \
     pre-processing on a low-power IoT microcontroller. The quick brown \
     fox jumps over the lazy dog 0123456789 times while RIOT schedules \
     threads around it!!"
  in
  let data = Bytes.create 360 in
  let len = min 360 (String.length text) in
  Bytes.blit_string text 0 data 0 len;
  for i = len to 359 do
    Bytes.set data i (Char.chr (i land 0x7f))
  done;
  data

(* eBPF implementation.  Context struct (read via r1):
     offset 0: u64 pointer to the data words
     offset 8: u64 word count
   Returns the checksum in r0. *)
let ebpf_source =
  {|
      ; fletcher32 over 16-bit words
      ldxdw r2, [r1]          ; data pointer
      ldxdw r3, [r1+8]        ; remaining words
      mov   r4, 0xffff        ; sum1
      mov   r5, 0xffff        ; sum2
      jeq   r3, 0, combine
    word_loop:
      ldxh  r6, [r2]
      add   r4, r6
      add   r5, r4
      add   r2, 2
      sub   r3, 1
      jne   r3, 0, word_loop
    combine:
      ; sum1 = reduce(reduce(sum1))
      mov   r6, r4
      and   r6, 0xffff
      rsh   r4, 16
      add   r4, r6
      mov   r6, r4
      and   r6, 0xffff
      rsh   r4, 16
      add   r4, r6
      ; sum2 = reduce(reduce(sum2))
      mov   r6, r5
      and   r6, 0xffff
      rsh   r5, 16
      add   r5, r6
      mov   r6, r5
      and   r6, 0xffff
      rsh   r5, 16
      add   r5, r6
      ; r0 = (sum2 << 16) | sum1
      lsh   r5, 16
      or    r5, r4
      mov   r0, r5
      exit
  |}

let ebpf_program () = Femto_ebpf.Asm.assemble ebpf_source

(* Virtual addresses for the raw-VM harness: context at the hook context
   address, data in its own read-only window. *)
let data_vaddr = 0x3000_0000L

(* Build the (ctx, data) regions granting read-only access to [data]. *)
let regions ~ctx_vaddr data =
  let ctx = Bytes.create 16 in
  Bytes.set_int64_le ctx 0 data_vaddr;
  Bytes.set_int64_le ctx 8 (Int64.of_int (Bytes.length data / 2));
  let ctx_region =
    Femto_vm.Region.make ~name:"fletcher-ctx" ~vaddr:ctx_vaddr
      ~perm:Femto_vm.Region.Read_only ctx
  in
  let data_region =
    Femto_vm.Region.make ~name:"fletcher-data" ~vaddr:data_vaddr
      ~perm:Femto_vm.Region.Read_only (Bytes.copy data)
  in
  [ ctx_region; data_region ]
