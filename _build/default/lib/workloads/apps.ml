(* The paper's §8 example applications, as eBPF assembly for the
   Femto-Container syscall ABI. *)

let resolve = Femto_core.Syscall.resolve_name
let assemble source = Femto_ebpf.Asm.assemble ~helpers:resolve source

(* §8.2 Kernel debug code (Listing 2): attached to the scheduler's
   context-switch hook; counts activations per thread in the global
   key-value store.  Context struct: [0] previous tid, [8] next tid.
   Key = 0x100 + tid. *)
let thread_counter_source =
  {|
      ldxdw r6, [r1+8]        ; next thread id
      jeq   r6, 0, done       ; zero pid means no next thread
      mov   r7, r6
      add   r7, 0x100         ; thread_key = THREAD_START_KEY + next
      ; bpf_fetch_global(thread_key, r10-8)
      mov   r1, r7
      mov   r2, r10
      sub   r2, 8
      call  bpf_fetch_global
      ldxdw r3, [r10-8]
      add   r3, 1             ; counter++
      ; bpf_store_global(thread_key, counter)
      mov   r1, r7
      mov   r2, r3
      call  bpf_store_global
    done:
      mov   r0, 0
      exit
  |}

let thread_counter () = assemble thread_counter_source

let thread_key_base = 0x100l

(* §8.3 first container: timer-triggered sensor read and processing.
   Reads SAUL sensor 1, keeps an exponential moving average
   avg' = (3*avg + sample) / 4 in its local store (key 1), and publishes
   the average to the tenant store (key 0x200) for the CoAP responder. *)
let sensor_process_source =
  {|
      ; bpf_saul_read(1, r10-8)
      mov   r1, 1
      mov   r2, r10
      sub   r2, 8
      call  bpf_saul_read
      ldxdw r6, [r10-8]       ; fresh sample
      ; bpf_fetch_local(1, r10-16) -> running average
      mov   r1, 1
      mov   r2, r10
      sub   r2, 16
      call  bpf_fetch_local
      ldxdw r7, [r10-16]
      jne   r7, 0, smooth
      mov   r8, r6            ; first sample seeds the average
      ja    publish
    smooth:
      mov   r8, r7
      mul   r8, 3
      add   r8, r6
      div   r8, 4
    publish:
      mov   r1, 1
      mov   r2, r8
      call  bpf_store_local
      mov   r1, 0x200
      mov   r2, r8
      call  bpf_store_tenant
      mov   r0, r8
      exit
  |}

let sensor_process () = assemble sensor_process_source

let sensor_value_key = 0x200l

(* §8.3 second container: CoAP response formatter.  Triggered by a CoAP
   GET; fetches the published average from the tenant store and formats a
   text/plain response through the CoAP helpers.  r1 = packet context. *)
let coap_formatter_source =
  {|
      mov   r6, r1            ; save packet context pointer
      ; fetch the published sensor average
      mov   r1, 0x200
      mov   r2, r10
      sub   r2, 8
      call  bpf_fetch_tenant
      ldxdw r7, [r10-8]
      ; gcoap_resp_init(pkt, COAP_CODE_CONTENT = 69)
      mov   r1, r6
      mov   r2, 69
      call  bpf_gcoap_resp_init
      ; coap_add_format(pkt, 0)   ; text/plain
      mov   r1, r6
      mov   r2, 0
      call  bpf_coap_add_format
      ; coap_opt_finish(pkt) -> payload pointer
      mov   r1, r6
      call  bpf_coap_opt_finish
      ; fmt_s16_dfp(payload, value, scale=0) -> length
      mov   r1, r0
      mov   r2, r7
      mov   r3, 0
      call  bpf_fmt_s16_dfp
      ; coap_set_payload_len(pkt, length)
      mov   r2, r0
      mov   r1, r6
      call  bpf_coap_set_payload_len
      mov   r0, 0
      exit
  |}

let coap_formatter () = assemble coap_formatter_source

(* Minimal container: the "hosting minimal logic" of the paper's Table 3
   footprint measurements. *)
let minimal_source = "mov r0, 0\nexit"
let minimal () = assemble minimal_source

(* "More complex post-processing" (paper §8.3 suggests e.g. differential
   privacy or federated-learning logic): streaming statistics over sensor
   samples.  Each trigger reads the sensor and updates count, sum, sum of
   squares, min and max in the local store; returns the running mean.
   Exercises a longer helper-heavy path than the EMA app. *)
let stats_source =
  {|
      ; read a fresh sample into r6
      mov   r1, 1
      mov   r2, r10
      sub   r2, 8
      call  bpf_saul_read
      ldxdw r6, [r10-8]
      ; count (key 1) += 1
      mov   r1, 1
      mov   r2, r10
      sub   r2, 16
      call  bpf_fetch_local
      ldxdw r7, [r10-16]
      add   r7, 1
      mov   r1, 1
      mov   r2, r7
      call  bpf_store_local
      ; sum (key 2) += sample
      mov   r1, 2
      mov   r2, r10
      sub   r2, 16
      call  bpf_fetch_local
      ldxdw r8, [r10-16]
      add   r8, r6
      mov   r1, 2
      mov   r2, r8
      call  bpf_store_local
      ; sumsq (key 3) += sample^2
      mov   r1, 3
      mov   r2, r10
      sub   r2, 16
      call  bpf_fetch_local
      ldxdw r9, [r10-16]
      mov   r4, r6
      mul   r4, r6
      add   r9, r4
      mov   r1, 3
      mov   r2, r9
      call  bpf_store_local
      ; min (key 4): first sample initializes
      mov   r1, 4
      mov   r2, r10
      sub   r2, 16
      call  bpf_fetch_local
      ldxdw r3, [r10-16]
      jeq   r7, 1, set_min        ; first sample
      jle   r3, r6, min_done
    set_min:
      mov   r1, 4
      mov   r2, r6
      call  bpf_store_local
    min_done:
      ; max (key 5)
      mov   r1, 5
      mov   r2, r10
      sub   r2, 16
      call  bpf_fetch_local
      ldxdw r3, [r10-16]
      jge   r3, r6, max_done
      mov   r1, 5
      mov   r2, r6
      call  bpf_store_local
    max_done:
      ; publish mean = sum / count to the tenant store (key 0x201)
      mov   r3, r8
      div   r3, r7
      mov   r1, 0x201
      mov   r2, r3
      call  bpf_store_tenant
      mov   r0, r3
      exit
  |}

let stats () = assemble stats_source

let stats_count_key = 1l
let stats_sum_key = 2l
let stats_sumsq_key = 3l
let stats_min_key = 4l
let stats_max_key = 5l
let stats_mean_key = 0x201l

(* Native reference for the equivalence tests. *)
type stats_state = {
  mutable count : int64;
  mutable sum : int64;
  mutable sumsq : int64;
  mutable min : int64;
  mutable max : int64;
}

let stats_init () = { count = 0L; sum = 0L; sumsq = 0L; min = 0L; max = 0L }

let stats_feed state sample =
  state.count <- Int64.add state.count 1L;
  state.sum <- Int64.add state.sum sample;
  state.sumsq <- Int64.add state.sumsq (Int64.mul sample sample);
  if Int64.equal state.count 1L || Int64.unsigned_compare sample state.min < 0
  then state.min <- sample;
  if Int64.unsigned_compare sample state.max > 0 then state.max <- sample;
  Int64.unsigned_div state.sum state.count
