lib/workloads/apps.ml: Femto_core Femto_ebpf Int64
