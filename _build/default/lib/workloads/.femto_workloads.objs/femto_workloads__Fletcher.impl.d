lib/workloads/fletcher.ml: Bytes Char Femto_ebpf Femto_vm Int32 Int64 String
