(** Device shell, in the spirit of RIOT's `shell` module: a line-oriented
    command interpreter over the device composition.  Commands are pure
    string -> string, so the shell is equally usable from a UART
    simulator, tests, or an interactive loop.

    Commands: [help], [ps], [fc list], [fc run <hook-uuid>],
    [fc disasm <hook-uuid>], [kv get <key>], [kv set <key> <value>],
    [suit seq], [slots], [free], [uptime], [history]. *)

type t

val create : Femto_device.Device.t -> t

val exec : t -> string -> string
(** Run one command line; returns its output (never raises on bad
    input — unknown commands answer with a usage hint). *)

val script : t -> string -> string
(** Run a newline-separated command script, echoing each command with its
    output. *)
