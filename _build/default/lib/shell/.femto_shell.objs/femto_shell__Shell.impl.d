lib/shell/shell.ml: Femto_certfc Femto_core Femto_device Femto_ebpf Femto_flash Femto_rtos Femto_vm Int32 Int64 List Printf String
