lib/shell/shell.mli: Femto_device
