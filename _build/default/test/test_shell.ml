(* Tests for the device shell. *)

module Device = Femto_device.Device
module Shell = Femto_shell.Shell
module Kernel = Femto_rtos.Kernel
module Network = Femto_net.Network
module Flash = Femto_flash.Flash
module Cose = Femto_cose.Cose
module Suit = Femto_suit.Suit
module Slots = Femto_flash.Slots

let hook = "11110000-aaaa-4bbb-8ccc-dddddddddddd"
let key = Cose.make_key ~key_id:"k" ~secret:"s"

let make_shell () =
  let kernel = Kernel.create () in
  let network = Network.create ~kernel () in
  let flash = Flash.create ~page_size:256 ~pages:32 () in
  let device =
    Device.boot
      ~identity:{ Device.vendor_id = "v"; class_id = "c"; update_key = key }
      ~hooks:[ Device.hook_spec ~uuid:hook ~name:"task" ~ctx_size:8 () ]
      ~flash ~slot_count:2 ~network ~addr:1 ()
  in
  (* install directly through the SUIT processor (no network needed) *)
  let payload =
    Bytes.to_string
      (Femto_ebpf.Program.to_bytes (Femto_ebpf.Asm.assemble "mov r0, 5\nexit"))
  in
  let manifest =
    Suit.make ~sequence:1L [ Suit.component_for ~storage_uuid:hook payload ]
  in
  (match
     Suit.process (Device.suit_processor device) ~envelope:(Suit.sign manifest key)
       ~payloads:[ (hook, payload) ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  Shell.create device

let contains haystack needle = Astring.String.is_infix ~affix:needle haystack

let test_help () =
  let shell = make_shell () in
  Alcotest.(check bool) "lists fc" true (contains (Shell.exec shell "help") "fc list")

let test_fc_list () =
  let shell = make_shell () in
  let out = Shell.exec shell "fc list" in
  Alcotest.(check bool) "hook uuid" true (contains out hook);
  Alcotest.(check bool) "stats" true (contains out "runs=0")

let test_fc_run () =
  let shell = make_shell () in
  let out = Shell.exec shell (Printf.sprintf "fc run %s" hook) in
  Alcotest.(check bool) "result" true (contains out "-> 5");
  let out = Shell.exec shell "fc list" in
  Alcotest.(check bool) "run counted" true (contains out "runs=1")

let test_fc_run_unknown_hook () =
  let shell = make_shell () in
  Alcotest.(check bool) "error" true
    (contains (Shell.exec shell "fc run nope") "no hook")

let test_fc_disasm () =
  let shell = make_shell () in
  let out = Shell.exec shell (Printf.sprintf "fc disasm %s" hook) in
  Alcotest.(check bool) "mov" true (contains out "mov r0, 5");
  Alcotest.(check bool) "exit" true (contains out "exit")

let test_kv_roundtrip () =
  let shell = make_shell () in
  Alcotest.(check string) "set" "ok" (Shell.exec shell "kv set 7 99");
  Alcotest.(check bool) "get" true (contains (Shell.exec shell "kv get 7") "7 = 99");
  Alcotest.(check bool) "missing reads zero" true
    (contains (Shell.exec shell "kv get 8") "8 = 0");
  Alcotest.(check bool) "usage" true
    (contains (Shell.exec shell "kv set x y") "usage")

let test_suit_seq () =
  let shell = make_shell () in
  Alcotest.(check bool) "sequence" true
    (contains (Shell.exec shell "suit seq") "sequence: 1")

let test_slots () =
  let shell = make_shell () in
  let out = Shell.exec shell "slots" in
  Alcotest.(check bool) "one image" true (contains out "slot ");
  Alcotest.(check bool) "summary" true (contains out "1/2 slots used")

let test_free_and_uptime () =
  let shell = make_shell () in
  Alcotest.(check bool) "free" true
    (contains (Shell.exec shell "free") "container instances");
  Alcotest.(check bool) "uptime" true (contains (Shell.exec shell "uptime") "cycles")

let test_unknown_command () =
  let shell = make_shell () in
  Alcotest.(check bool) "unknown" true
    (contains (Shell.exec shell "frobnicate") "unknown command")

let test_script_echoes () =
  let shell = make_shell () in
  let out = Shell.script shell "help\nslots" in
  Alcotest.(check bool) "echoes commands" true (contains out "> help");
  Alcotest.(check bool) "second command" true (contains out "> slots")

let suite =
  [
    Alcotest.test_case "help" `Quick test_help;
    Alcotest.test_case "fc list" `Quick test_fc_list;
    Alcotest.test_case "fc run" `Quick test_fc_run;
    Alcotest.test_case "fc run unknown" `Quick test_fc_run_unknown_hook;
    Alcotest.test_case "fc disasm" `Quick test_fc_disasm;
    Alcotest.test_case "kv" `Quick test_kv_roundtrip;
    Alcotest.test_case "suit seq" `Quick test_suit_seq;
    Alcotest.test_case "slots" `Quick test_slots;
    Alcotest.test_case "free/uptime" `Quick test_free_and_uptime;
    Alcotest.test_case "unknown command" `Quick test_unknown_command;
    Alcotest.test_case "script" `Quick test_script_echoes;
  ]

let () = Alcotest.run "femto_shell" [ ("shell", suite) ]
