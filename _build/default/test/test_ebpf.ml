(* Tests for the eBPF ISA library: instruction codec, assembler,
   disassembler round-trips. *)

open Femto_ebpf

let check_insn = Alcotest.testable Insn.pp Insn.equal

let test_insn_roundtrip () =
  let insn = Insn.make 0xb7 ~dst:3 ~src:2 ~offset:(-12) ~imm:0x7fffffffl in
  let decoded = Insn.decode_from (Insn.to_bytes insn) 0 in
  Alcotest.check check_insn "roundtrip" insn decoded

let test_insn_field_packing () =
  (* dst in the low nibble, src in the high nibble of byte 1 (eBPF wire
     format). *)
  let insn = Insn.make 0x0f ~dst:1 ~src:2 in
  let bytes = Insn.to_bytes insn in
  Alcotest.(check int) "reg byte" 0x21 (Bytes.get_uint8 bytes 1)

let test_negative_offset () =
  let insn = Insn.make 0x6b ~dst:10 ~offset:(-8) ~imm:5l in
  let decoded = Insn.decode_from (Insn.to_bytes insn) 0 in
  Alcotest.(check int) "offset" (-8) decoded.Insn.offset

let test_lddw_imm () =
  let head, tail = Insn.lddw_pair 4 0x1234_5678_9abc_def0L in
  Alcotest.(check int64) "imm64" 0x1234_5678_9abc_def0L
    (Insn.lddw_imm ~head ~tail);
  let head, tail = Insn.lddw_pair 0 (-1L) in
  Alcotest.(check int64) "imm64 negative" (-1L) (Insn.lddw_imm ~head ~tail)

let test_program_roundtrip () =
  let program =
    Program.of_insns
      [ Insn.make 0xb7 ~dst:0 ~imm:42l; Insn.make 0x95 ]
  in
  let decoded = Program.of_bytes (Program.to_bytes program) in
  Alcotest.(check bool) "equal" true (Program.equal program decoded)

let test_program_truncated () =
  Alcotest.check_raises "truncated"
    (Program.Truncated "program length 7 is not a multiple of 8") (fun () ->
      ignore (Program.of_bytes (Bytes.create 7)))

let assemble = Asm.assemble ?helpers:None

let test_asm_mov_exit () =
  let program = assemble "mov r0, 42\nexit" in
  Alcotest.(check int) "length" 2 (Program.length program);
  let insn = Program.get program 0 in
  Alcotest.(check int) "opcode" 0xb7 insn.Insn.opcode;
  Alcotest.(check int) "dst" 0 insn.Insn.dst;
  Alcotest.(check int32) "imm" 42l insn.Insn.imm;
  Alcotest.(check int) "exit" 0x95 (Program.get program 1).Insn.opcode

let test_asm_alu_reg () =
  let program = assemble "add r1, r2\nexit" in
  let insn = Program.get program 0 in
  Alcotest.(check int) "opcode" 0x0f insn.Insn.opcode;
  Alcotest.(check int) "src" 2 insn.Insn.src

let test_asm_alu32 () =
  let program = assemble "sub32 r3, 7\nexit" in
  let insn = Program.get program 0 in
  Alcotest.(check int) "opcode" 0x14 insn.Insn.opcode

let test_asm_memory_operands () =
  let program = assemble "ldxw r2, [r1+4]\nstxdw [r10-8], r2\nstb [r1], 3\nexit" in
  let load = Program.get program 0 in
  Alcotest.(check int) "ldxw opcode" 0x61 load.Insn.opcode;
  Alcotest.(check int) "ldxw offset" 4 load.Insn.offset;
  let store = Program.get program 1 in
  Alcotest.(check int) "stxdw opcode" 0x7b store.Insn.opcode;
  Alcotest.(check int) "stxdw offset" (-8) store.Insn.offset;
  Alcotest.(check int) "stxdw dst" 10 store.Insn.dst;
  let store_imm = Program.get program 2 in
  Alcotest.(check int) "stb opcode" 0x72 store_imm.Insn.opcode;
  Alcotest.(check int) "stb offset" 0 store_imm.Insn.offset

let test_asm_labels () =
  let source =
    {|
      mov r0, 0
    loop:
      add r0, 1
      jlt r0, 10, loop
      jeq r0, 10, done
      ja loop
    done:
      exit
    |}
  in
  let program = assemble source in
  Alcotest.(check int) "length" 6 (Program.length program);
  let backward = Program.get program 2 in
  Alcotest.(check int) "backward target" (-2) backward.Insn.offset;
  let forward = Program.get program 3 in
  Alcotest.(check int) "forward target" 1 forward.Insn.offset

let test_asm_lddw () =
  let program = assemble "lddw r1, 0x1_0000_0001\nexit" in
  Alcotest.(check int) "length" 3 (Program.length program);
  let head = Program.get program 0 and tail = Program.get program 1 in
  Alcotest.(check int64) "imm" 0x1_0000_0001L (Insn.lddw_imm ~head ~tail)

let test_asm_helpers_by_name () =
  let helpers = function "bpf_now_ms" -> Some 7 | _ -> None in
  let program = Asm.assemble ~helpers "call bpf_now_ms\nexit" in
  Alcotest.(check int32) "helper id" 7l (Program.get program 0).Insn.imm

let expect_asm_error source =
  match assemble source with
  | exception Asm.Error _ -> ()
  | (_ : Program.t) -> Alcotest.failf "expected assembly error for %S" source

let test_asm_errors () =
  expect_asm_error "mov r11, 1";
  expect_asm_error "mov r1";
  expect_asm_error "bogus r1, 2";
  expect_asm_error "ja nowhere";
  expect_asm_error "dup:\ndup:\nexit";
  expect_asm_error "call unknown_helper";
  expect_asm_error "mov r1, 0x1_0000_0000_0000"

let test_endian_mnemonics_roundtrip () =
  let source = "le16 r1\nle32 r2\nle64 r3\nbe16 r4\nbe32 r5\nbe64 r6\nexit" in
  let program = assemble source in
  Alcotest.(check int) "length" 7 (Program.length program);
  (match Insn.kind (Program.get program 0) with
  | Insn.End Opcode.Le -> ()
  | _ -> Alcotest.fail "le16 did not decode to End Le");
  (match Insn.kind (Program.get program 3) with
  | Insn.End Opcode.Be -> ()
  | _ -> Alcotest.fail "be16 did not decode to End Be");
  let text = Disasm.to_string program in
  Alcotest.(check bool) "reassembles" true (Program.equal program (assemble text))

let test_disasm_roundtrip () =
  let source =
    "mov r0, 0\nadd32 r0, 5\nldxh r2, [r1+2]\nstxb [r10-1], r2\n\
     lddw r3, 0xdeadbeefcafe\njne r0, r3, +1\nneg r0\nexit"
  in
  let program = assemble source in
  let text = Disasm.to_string program in
  let reassembled = assemble text in
  Alcotest.(check bool) "roundtrip" true (Program.equal program reassembled)

(* Property: any program built from random well-formed instructions
   survives disassemble -> reassemble unchanged. *)
let gen_insn =
  let open QCheck.Gen in
  let reg = int_range 0 9 in
  let alu_ops =
    Opcode.[ Add; Sub; Mul; Div; Or; And; Lsh; Rsh; Mod; Xor; Mov; Arsh ]
  in
  let conds =
    Opcode.[ Jeq; Jgt; Jge; Jset; Jne; Jsgt; Jsge; Jlt; Jle; Jslt; Jsle ]
  in
  let sizes = Opcode.[ B; H; W; DW ] in
  let imm = map Int32.of_int (int_range (-1000) 1000) in
  frequency
    [
      ( 4,
        map3
          (fun op dst v -> Insn.make (Opcode.alu64 op Opcode.Src_imm) ~dst ~imm:v)
          (oneofl alu_ops) reg imm );
      ( 4,
        map3
          (fun op dst src -> Insn.make (Opcode.alu64 op Opcode.Src_reg) ~dst ~src)
          (oneofl alu_ops) reg reg );
      ( 2,
        map3
          (fun op dst v -> Insn.make (Opcode.alu32 op Opcode.Src_imm) ~dst ~imm:v)
          (oneofl alu_ops) reg imm );
      ( 2,
        map3
          (fun size (dst, src) off -> Insn.make (Opcode.ldx size) ~dst ~src ~offset:off)
          (oneofl sizes) (pair reg reg) (int_range (-256) 256) );
      ( 2,
        map3
          (fun size (dst, src) off -> Insn.make (Opcode.stx size) ~dst ~src ~offset:off)
          (oneofl sizes) (pair reg reg) (int_range (-256) 256) );
      ( 1,
        map3
          (fun cond dst off -> Insn.make (Opcode.jmp cond Opcode.Src_reg) ~dst ~offset:off)
          (oneofl conds) reg (int_range (-4) 4) );
      (1, return (Insn.make Opcode.exit'));
    ]

let prop_disasm_roundtrip =
  QCheck.Test.make ~name:"disasm/asm roundtrip" ~count:200
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 40) gen_insn))
    (fun insns ->
      let program = Program.of_insns insns in
      let text = Disasm.to_string program in
      Program.equal program (assemble text))

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"program bytes roundtrip" ~count:200
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 64) gen_insn))
    (fun insns ->
      let program = Program.of_insns insns in
      Program.equal program (Program.of_bytes (Program.to_bytes program)))

let suite =
  [
    Alcotest.test_case "insn roundtrip" `Quick test_insn_roundtrip;
    Alcotest.test_case "insn field packing" `Quick test_insn_field_packing;
    Alcotest.test_case "negative offset" `Quick test_negative_offset;
    Alcotest.test_case "lddw imm split" `Quick test_lddw_imm;
    Alcotest.test_case "program roundtrip" `Quick test_program_roundtrip;
    Alcotest.test_case "program truncated" `Quick test_program_truncated;
    Alcotest.test_case "asm mov/exit" `Quick test_asm_mov_exit;
    Alcotest.test_case "asm alu reg" `Quick test_asm_alu_reg;
    Alcotest.test_case "asm alu32" `Quick test_asm_alu32;
    Alcotest.test_case "asm memory operands" `Quick test_asm_memory_operands;
    Alcotest.test_case "asm labels" `Quick test_asm_labels;
    Alcotest.test_case "asm lddw" `Quick test_asm_lddw;
    Alcotest.test_case "asm helper names" `Quick test_asm_helpers_by_name;
    Alcotest.test_case "asm errors" `Quick test_asm_errors;
    Alcotest.test_case "endian mnemonics" `Quick test_endian_mnemonics_roundtrip;
    Alcotest.test_case "disasm roundtrip" `Quick test_disasm_roundtrip;
    QCheck_alcotest.to_alcotest prop_disasm_roundtrip;
    QCheck_alcotest.to_alcotest prop_bytes_roundtrip;
  ]

let () = Alcotest.run "femto_ebpf" [ ("ebpf", suite) ]
