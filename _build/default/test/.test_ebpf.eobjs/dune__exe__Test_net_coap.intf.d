test/test_net_coap.mli:
