test/test_device.ml: Alcotest Astring Bytes Femto_coap Femto_core Femto_cose Femto_device Femto_ebpf Femto_flash Femto_net Femto_rtos Femto_suit List Option String
