test/test_certfc.ml: Alcotest Asm Bytes Femto_certfc Femto_ebpf Femto_vm Gen Insn Int32 Int64 Opcode Program QCheck QCheck_alcotest Result String
