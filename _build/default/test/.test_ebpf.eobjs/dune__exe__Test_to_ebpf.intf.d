test/test_to_ebpf.mli:
