test/test_core.ml: Alcotest Bytes Femto_certfc Femto_core Femto_ebpf Femto_platform Femto_rtos Femto_vm Femto_workloads Gen Int32 Int64 List Printf QCheck QCheck_alcotest
