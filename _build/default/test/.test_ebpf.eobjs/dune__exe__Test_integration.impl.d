test/test_integration.ml: Alcotest Bytes Femto_coap Femto_core Femto_cose Femto_ebpf Femto_eval Femto_net Femto_platform Femto_rtos Femto_suit Femto_workloads Float Fun Int64 List Printf Result Unix
