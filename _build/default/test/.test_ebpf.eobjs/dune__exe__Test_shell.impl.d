test/test_shell.ml: Alcotest Astring Bytes Femto_cose Femto_device Femto_ebpf Femto_flash Femto_net Femto_rtos Femto_shell Femto_suit Printf
