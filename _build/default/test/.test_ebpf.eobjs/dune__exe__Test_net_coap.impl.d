test/test_net_coap.ml: Alcotest Bytes Char Femto_coap Femto_net Femto_rtos Gen List Printf QCheck QCheck_alcotest String
