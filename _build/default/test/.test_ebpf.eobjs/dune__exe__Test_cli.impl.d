test/test_cli.ml: Alcotest Astring Filename List Printf String Sys
