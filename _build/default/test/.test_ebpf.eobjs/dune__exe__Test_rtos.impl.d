test/test_rtos.ml: Alcotest Femto_rtos Hashtbl Int64 List Option
