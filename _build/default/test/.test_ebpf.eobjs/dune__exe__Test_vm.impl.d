test/test_vm.ml: Alcotest Asm Bytes Femto_ebpf Femto_vm Gen Insn Int32 Int64 List Opcode Program QCheck QCheck_alcotest
