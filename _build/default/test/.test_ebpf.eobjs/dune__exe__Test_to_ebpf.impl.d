test/test_to_ebpf.ml: Alcotest Array Bytes Femto_script Femto_vm Int64 List Printf QCheck QCheck_alcotest Result
