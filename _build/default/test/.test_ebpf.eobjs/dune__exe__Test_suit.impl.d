test/test_suit.ml: Alcotest Femto_cbor Femto_cose Femto_crypto Femto_suit Int64 List Printf QCheck QCheck_alcotest String
