test/test_baselines.ml: Alcotest Array Astring Buffer Bytes Femto_script Femto_vm Femto_wasm_mini Femto_workloads Gen Int32 Int64 List Printf QCheck QCheck_alcotest String
