test/test_ebpf.ml: Alcotest Asm Bytes Disasm Femto_ebpf Insn Int32 Opcode Program QCheck QCheck_alcotest
