test/test_certfc.mli:
