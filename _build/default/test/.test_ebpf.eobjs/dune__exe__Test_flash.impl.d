test/test_flash.ml: Alcotest Bytes Femto_core Femto_ebpf Femto_flash Gen Int64 List QCheck QCheck_alcotest String
