test/test_suit.mli:
