test/test_cbor.ml: Alcotest Femto_cbor Femto_crypto Gen Int64 Printf QCheck QCheck_alcotest
