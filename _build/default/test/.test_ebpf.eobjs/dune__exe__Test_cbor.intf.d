test/test_cbor.mli:
