test/test_crypto.ml: Alcotest Bytes Char Femto_cose Femto_crypto Gen List QCheck QCheck_alcotest String
