test/test_extensions.ml: Alcotest Asm Compact Femto_ebpf Femto_vm Femto_workloads Insn Int32 Int64 List Opcode Printf Program QCheck QCheck_alcotest String
