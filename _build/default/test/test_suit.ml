(* SUIT update-pipeline tests: manifest codec, the five verification gates
   (signature, version, rollback, digest, storage location), and install
   dispatch. *)

module Suit = Femto_suit.Suit
module Cose = Femto_cose.Cose
module Crypto = Femto_crypto.Crypto
module Cbor = Femto_cbor.Cbor

let key = Cose.make_key ~key_id:"fleet-key" ~secret:"manifest signing secret"
let attacker_key = Cose.make_key ~key_id:"fleet-key" ~secret:"attacker secret"

let payload_a = "bytecode-for-hook-a (pretend this is eBPF)"
let uuid_a = "c2b7f6ac-0001-4000-8000-000000000001"
let uuid_b = "c2b7f6ac-0002-4000-8000-000000000002"

let manifest ?(sequence = 1L) ?(uuid = uuid_a) ?(payload = payload_a) () =
  Suit.make ~sequence [ Suit.component_for ~storage_uuid:uuid payload ]

let test_manifest_roundtrip () =
  let m =
    Suit.make ~sequence:42L
      [
        Suit.component_for ~storage_uuid:uuid_a payload_a;
        Suit.component_for ~storage_uuid:uuid_b "other payload";
      ]
  in
  match Suit.decode (Suit.encode m) with
  | Ok decoded ->
      Alcotest.(check int64) "sequence" 42L decoded.Suit.sequence;
      Alcotest.(check int) "components" 2 (List.length decoded.Suit.components);
      let c = List.hd decoded.Suit.components in
      Alcotest.(check string) "uuid" uuid_a c.Suit.storage_uuid;
      Alcotest.(check string) "digest" (Crypto.sha256 payload_a) c.Suit.digest;
      Alcotest.(check int) "size" (String.length payload_a) c.Suit.size
  | Error e -> Alcotest.fail (Suit.error_to_string e)

let test_decode_rejects_garbage () =
  (match Suit.decode "junk" with
  | Error (Suit.Malformed _) -> ()
  | _ -> Alcotest.fail "garbage accepted");
  (* valid CBOR, wrong shape *)
  match Suit.decode (Cbor.encode (Cbor.Array [ Cbor.Int 1L ])) with
  | Error (Suit.Malformed _) -> ()
  | _ -> Alcotest.fail "wrong shape accepted"

let test_decode_rejects_bad_version () =
  let bad =
    Cbor.encode
      (Cbor.Map
         [
           (Cbor.Int 1L, Cbor.Int 99L);
           (Cbor.Int 2L, Cbor.Int 1L);
           (Cbor.Int 3L, Cbor.Array []);
         ])
  in
  match Suit.decode bad with
  | Error (Suit.Unsupported_version 99L) -> ()
  | _ -> Alcotest.fail "bad version accepted"

let make_device ?(installed = ref []) () =
  let device =
    Suit.create_device ~key
      ~install:(fun ~sequence:_ ~storage_uuid payload ->
        installed := (storage_uuid, payload) :: !installed;
        Ok ())
      ~known_storage:(fun uuid -> uuid = uuid_a || uuid = uuid_b)
      ()
  in
  (device, installed)

let process device m ~payloads =
  Suit.process device ~envelope:(Suit.sign m key) ~payloads

let test_happy_path () =
  let device, installed = make_device () in
  (match process device (manifest ()) ~payloads:[ (uuid_a, payload_a) ] with
  | Ok m -> Alcotest.(check int64) "seq" 1L m.Suit.sequence
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  Alcotest.(check (list (pair string string))) "installed"
    [ (uuid_a, payload_a) ] !installed;
  Alcotest.(check int64) "device sequence updated" 1L device.Suit.sequence

let test_wrong_signature_rejected () =
  let device, installed = make_device () in
  let envelope = Suit.sign (manifest ()) attacker_key in
  (match Suit.process device ~envelope ~payloads:[ (uuid_a, payload_a) ] with
  | Error (Suit.Signature Cose.Bad_signature) -> ()
  | Ok _ -> Alcotest.fail "attacker manifest accepted"
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  Alcotest.(check (list (pair string string))) "nothing installed" [] !installed

let test_rollback_rejected () =
  let device, _ = make_device () in
  (match process device (manifest ~sequence:5L ()) ~payloads:[ (uuid_a, payload_a) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  (* replaying the same sequence number must fail *)
  (match process device (manifest ~sequence:5L ()) ~payloads:[ (uuid_a, payload_a) ] with
  | Error (Suit.Rollback { manifest = 5L; device = 5L }) -> ()
  | Ok _ -> Alcotest.fail "replay accepted"
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  (* and an older one too *)
  match process device (manifest ~sequence:3L ()) ~payloads:[ (uuid_a, payload_a) ] with
  | Error (Suit.Rollback _) -> ()
  | Ok _ -> Alcotest.fail "rollback accepted"
  | Error e -> Alcotest.fail (Suit.error_to_string e)

let test_digest_mismatch_rejected () =
  let device, installed = make_device () in
  (* manifest says payload_a, attacker swaps the payload in transit *)
  (match process device (manifest ()) ~payloads:[ (uuid_a, "evil payload") ] with
  | Error (Suit.Digest_mismatch uuid) -> Alcotest.(check string) "uuid" uuid_a uuid
  | Ok _ -> Alcotest.fail "swapped payload accepted"
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  Alcotest.(check (list (pair string string))) "nothing installed" [] !installed

let test_missing_payload_rejected () =
  let device, _ = make_device () in
  match process device (manifest ()) ~payloads:[] with
  | Error (Suit.Digest_mismatch _) -> ()
  | Ok _ -> Alcotest.fail "missing payload accepted"
  | Error e -> Alcotest.fail (Suit.error_to_string e)

let test_unknown_storage_rejected () =
  let device, _ = make_device () in
  let m = manifest ~uuid:"not-a-hook" () in
  match process device m ~payloads:[ ("not-a-hook", payload_a) ] with
  | Error (Suit.Unknown_storage "not-a-hook") -> ()
  | Ok _ -> Alcotest.fail "unknown storage accepted"
  | Error e -> Alcotest.fail (Suit.error_to_string e)

let test_install_failure_propagates () =
  let device =
    Suit.create_device ~key
      ~install:(fun ~sequence:_ ~storage_uuid:_ _ -> Error "verifier said no")
      ~known_storage:(fun _ -> true)
      ()
  in
  match process device (manifest ()) ~payloads:[ (uuid_a, payload_a) ] with
  | Error (Suit.Install_failed "verifier said no") ->
      (* sequence must NOT advance on a failed install *)
      Alcotest.(check int64) "seq unchanged" 0L device.Suit.sequence
  | Ok _ -> Alcotest.fail "failed install accepted"
  | Error e -> Alcotest.fail (Suit.error_to_string e)

let test_multi_component_update () =
  let device, installed = make_device () in
  let m =
    Suit.make ~sequence:1L
      [
        Suit.component_for ~storage_uuid:uuid_a payload_a;
        Suit.component_for ~storage_uuid:uuid_b "second app";
      ]
  in
  (match
     process device m ~payloads:[ (uuid_a, payload_a); (uuid_b, "second app") ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  Alcotest.(check int) "both installed" 2 (List.length !installed)

let test_vendor_class_conditions () =
  let installed = ref [] in
  let device =
    Suit.create_device ~vendor_id:"vendor-A" ~class_id:"nrf52840" ~key
      ~install:(fun ~sequence:_ ~storage_uuid payload ->
        installed := (storage_uuid, payload) :: !installed;
        Ok ())
      ~known_storage:(fun _ -> true)
      ()
  in
  (* manifest without identity conditions installs (backwards compatible) *)
  (match process device (manifest ~sequence:1L ()) ~payloads:[ (uuid_a, payload_a) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  (* wrong vendor rejected, even correctly signed *)
  let wrong_vendor =
    Suit.make ~vendor_id:"vendor-B" ~sequence:2L
      [ Suit.component_for ~storage_uuid:uuid_a payload_a ]
  in
  (match process device wrong_vendor ~payloads:[ (uuid_a, payload_a) ] with
  | Error (Suit.Wrong_vendor { manifest = "vendor-B"; device = "vendor-A" }) -> ()
  | Ok _ -> Alcotest.fail "wrong vendor accepted"
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  (* wrong class rejected *)
  let wrong_class =
    Suit.make ~vendor_id:"vendor-A" ~class_id:"esp32" ~sequence:2L
      [ Suit.component_for ~storage_uuid:uuid_a payload_a ]
  in
  (match process device wrong_class ~payloads:[ (uuid_a, payload_a) ] with
  | Error (Suit.Wrong_class _) -> ()
  | Ok _ -> Alcotest.fail "wrong class accepted"
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  (* matching identities install *)
  let matching =
    Suit.make ~vendor_id:"vendor-A" ~class_id:"nrf52840" ~sequence:2L
      [ Suit.component_for ~storage_uuid:uuid_a payload_a ]
  in
  (match process device matching ~payloads:[ (uuid_a, payload_a) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  (* identity fields survive the codec *)
  match Suit.decode (Suit.encode matching) with
  | Ok decoded ->
      Alcotest.(check (option string)) "vendor" (Some "vendor-A") decoded.Suit.vendor_id;
      Alcotest.(check (option string)) "class" (Some "nrf52840") decoded.Suit.class_id
  | Error e -> Alcotest.fail (Suit.error_to_string e)

let test_stats_counters () =
  let device, _ = make_device () in
  ignore (process device (manifest ()) ~payloads:[ (uuid_a, payload_a) ]);
  ignore (process device (manifest ()) ~payloads:[ (uuid_a, payload_a) ]);
  Alcotest.(check int) "accepted" 1 device.Suit.accepted;
  Alcotest.(check int) "rejected" 1 device.Suit.rejected

let prop_manifest_roundtrip =
  let gen =
    QCheck.Gen.(
      map2
        (fun seq payloads ->
          Suit.make ~sequence:(Int64.of_int (abs seq + 1))
            (List.mapi
               (fun i p ->
                 Suit.component_for
                   ~storage_uuid:(Printf.sprintf "uuid-%d" i)
                   p)
               payloads))
        int
        (list_size (int_range 1 4) (string_size (int_range 0 64))))
  in
  QCheck.Test.make ~name:"manifest roundtrip" ~count:200 (QCheck.make gen)
    (fun m ->
      match Suit.decode (Suit.encode m) with
      | Ok decoded ->
          Int64.equal decoded.Suit.sequence m.Suit.sequence
          && decoded.Suit.components = m.Suit.components
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "manifest roundtrip" `Quick test_manifest_roundtrip;
    Alcotest.test_case "rejects garbage" `Quick test_decode_rejects_garbage;
    Alcotest.test_case "rejects bad version" `Quick test_decode_rejects_bad_version;
    Alcotest.test_case "happy path" `Quick test_happy_path;
    Alcotest.test_case "wrong signature" `Quick test_wrong_signature_rejected;
    Alcotest.test_case "rollback" `Quick test_rollback_rejected;
    Alcotest.test_case "digest mismatch" `Quick test_digest_mismatch_rejected;
    Alcotest.test_case "missing payload" `Quick test_missing_payload_rejected;
    Alcotest.test_case "unknown storage" `Quick test_unknown_storage_rejected;
    Alcotest.test_case "install failure" `Quick test_install_failure_propagates;
    Alcotest.test_case "multi-component" `Quick test_multi_component_update;
    Alcotest.test_case "vendor/class conditions" `Quick test_vendor_class_conditions;
    Alcotest.test_case "stats counters" `Quick test_stats_counters;
    QCheck_alcotest.to_alcotest prop_manifest_roundtrip;
  ]

let () = Alcotest.run "femto_suit" [ ("suit", suite) ]
