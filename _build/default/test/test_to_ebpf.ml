(* Tests for the MiniScript -> eBPF compiler: compiled programs must pass
   the pre-flight verifier and compute the same results as the MiniScript
   interpreters (differential testing), while inheriting all the sandbox
   guarantees. *)

module To_ebpf = Femto_script.To_ebpf
module Stack_vm = Femto_script.Stack_vm
module Value = Femto_script.Value
module Vm = Femto_vm.Vm
module Fault = Femto_vm.Fault
module Config = Femto_vm.Config
module Helper = Femto_vm.Helper

let no_helpers = Helper.create ()

(* Compile [name] from [source], verify, run with int64 args. *)
let run_compiled ?(helpers = no_helpers) source name args =
  let program =
    To_ebpf.compile_function ~helpers:(Helper.asm_resolver helpers) source name
  in
  match Vm.load ~helpers ~regions:[] program with
  | Error fault -> Error (Fault.to_string fault)
  | Ok vm -> (
      match Vm.run vm ~args:(Array.of_list args) with
      | Ok v -> Ok v
      | Error fault -> Error (Fault.to_string fault))

(* Run the same function in the bytecode interpreter for comparison. *)
let run_interpreted source name args =
  let t = Stack_vm.load source in
  match Stack_vm.call t name (List.map (fun v -> Value.Int v) args) with
  | Ok (Value.Int v) -> Ok v
  | Ok (Value.Bool b) -> Ok (if b then 1L else 0L)
  | Ok _ -> Error "non-int result"
  | Error m -> Error m

let check_both source name args expected =
  (match run_interpreted source name args with
  | Ok v -> Alcotest.(check int64) "interpreter" expected v
  | Error m -> Alcotest.failf "interpreter: %s" m);
  match run_compiled source name args with
  | Ok v -> Alcotest.(check int64) "compiled eBPF" expected v
  | Error m -> Alcotest.failf "compiled: %s" m

let test_arithmetic () =
  check_both "fn f(x, y) { return (x + y) * 3 - x % y; }" "f" [ 10L; 7L ] 48L

let test_comparisons_and_logic () =
  let source =
    "fn f(x, y) { return (x < y && y <= 100) || x == 42; }"
  in
  check_both source "f" [ 1L; 2L ] 1L;
  check_both source "f" [ 42L; 1L ] 1L;
  check_both source "f" [ 5L; 2L ] 0L

let test_if_else () =
  let source =
    "fn f(x) { if (x > 10) { return 1; } else { if (x > 5) { return 2; } } return 3; }"
  in
  check_both source "f" [ 20L ] 1L;
  check_both source "f" [ 7L ] 2L;
  check_both source "f" [ 1L ] 3L

let test_while_loop () =
  let source =
    "fn f(n) { let acc = 0; let i = 1; while (i <= n) { acc = acc + i; i = i + 1; } return acc; }"
  in
  check_both source "f" [ 100L ] 5050L

let test_for_break_continue () =
  let source =
    {|
      fn f(n) {
        let acc = 0;
        for (let i = 0; i < n; i = i + 1) {
          if (i % 2 == 0) { continue; }
          if (i > 10) { break; }
          acc = acc + i;
        }
        return acc;
      }
    |}
  in
  check_both source "f" [ 100L ] 25L

let test_gcd () =
  let source =
    "fn gcd(a, b) { while (b != 0) { let t = b; b = a % b; a = t; } return a; }"
  in
  check_both source "gcd" [ 252L; 105L ] 21L

let test_collatz_steps () =
  let source =
    {|
      fn steps(n) {
        let count = 0;
        while (n != 1) {
          if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
          count = count + 1;
        }
        return count;
      }
    |}
  in
  check_both source "steps" [ 27L ] 111L

let test_builtin_min_max_abs () =
  let source = "fn f(a, b) { return min(a, b) * 100 + max(a, b) + abs(a - b); }" in
  check_both source "f" [ 3L; 9L ] 315L

let test_shifts_and_bits () =
  let source = "fn f(x) { return ((x << 4) | 3) ^ (x >> 1) & 255; }" in
  check_both source "f" [ 77L ] (run_interpreted "fn f(x) { return ((x << 4) | 3) ^ (x >> 1) & 255; }" "f" [ 77L ] |> Result.get_ok)

let test_helper_calls_compiled () =
  let helpers = Helper.create () in
  Helper.register helpers ~id:7 ~name:"bpf_double" (fun _mem args ->
      Ok (Int64.mul args.Helper.a1 2L));
  Helper.register helpers ~id:8 ~name:"bpf_add3" (fun _mem args ->
      Ok (Int64.add args.Helper.a1 (Int64.add args.Helper.a2 args.Helper.a3)));
  let source =
    "fn f(x) { let d = bpf_double(x); return bpf_add3(d, x, 1) ; }"
  in
  match run_compiled ~helpers source "f" [ 10L ] with
  | Ok v -> Alcotest.(check int64) "helpers from script" 31L v
  | Error m -> Alcotest.failf "compiled: %s" m

let test_verifier_accepts_output () =
  let source =
    "fn f(n) { let acc = 0; for (let i = 0; i < n; i = i + 1) { acc = acc + i * i; } return acc; }"
  in
  let program = To_ebpf.compile_function source "f" in
  match Femto_vm.Verifier.verify Config.default program with
  | Ok _ -> ()
  | Error fault -> Alcotest.failf "verifier rejected: %s" (Fault.to_string fault)

let test_infinite_loop_contained () =
  let program = To_ebpf.compile_function "fn f(x) { while (true) { x = x + 1; } return x; }" "f" in
  let config = { Config.default with Config.max_branches = 50 } in
  match Vm.load ~config ~helpers:no_helpers ~regions:[] program with
  | Error fault -> Alcotest.failf "load: %s" (Fault.to_string fault)
  | Ok vm -> (
      match Vm.run vm with
      | Error (Fault.Branch_budget_exhausted _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "runaway script not contained")

let test_memory_builtins () =
  (* scripts read the hook context through load*; writes go through
     store64 — both obey the allow-list *)
  let ctx = Bytes.create 16 in
  Bytes.set_int64_le ctx 0 500L;
  Bytes.set_int64_le ctx 8 0L;
  let region =
    Femto_vm.Region.make ~name:"ctx" ~vaddr:0x2000_0000L
      ~perm:Femto_vm.Region.Read_write ctx
  in
  let source =
    "fn f(ctx) { let v = load64(ctx); store64(ctx + 8, v * 2); return load64(ctx + 8); }"
  in
  let program = To_ebpf.compile_function source "f" in
  (match Vm.load ~helpers:no_helpers ~regions:[ region ] program with
  | Error fault -> Alcotest.failf "load: %s" (Fault.to_string fault)
  | Ok vm -> (
      match Vm.run vm ~args:[| 0x2000_0000L |] with
      | Ok v -> Alcotest.(check int64) "doubled" 1000L v
      | Error fault -> Alcotest.failf "run: %s" (Fault.to_string fault)));
  Alcotest.(check int64) "written through" 1000L (Bytes.get_int64_le ctx 8)

let test_memory_builtins_respect_allowlist () =
  (* a compiled script cannot escape the sandbox any more than hand
     written bytecode can *)
  let source = "fn f(ctx) { return load64(ctx + 4096); }" in
  let program = To_ebpf.compile_function source "f" in
  match Vm.load ~helpers:no_helpers ~regions:[] program with
  | Error fault -> Alcotest.failf "load: %s" (Fault.to_string fault)
  | Ok vm -> (
      match Vm.run vm ~args:[| 0x2000_0000L |] with
      | Error (Fault.Memory_access _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "out-of-sandbox load not contained")

let test_unsupported_constructs_rejected () =
  let cases =
    [
      "fn f(x) { let a = [1, 2]; return a[0]; }";
      "fn f(x) { return \"hello\"; }";
      "fn g(x) { return x; } fn f(x) { return g(x); }";
      "fn f(x) { let m = map(); return 0; }";
    ]
  in
  List.iter
    (fun source ->
      match To_ebpf.compile_function source "f" with
      | exception To_ebpf.Unsupported _ -> ()
      | _ -> Alcotest.failf "compiled unsupported: %s" source)
    cases

let test_deep_expression_rejected_not_corrupted () =
  (* an expression deep enough to overflow the 512 B stack must be a
     compile error, not silent corruption *)
  let rec nest n = if n = 0 then "x" else "(" ^ nest (n - 1) ^ " + 1)" in
  let source = Printf.sprintf "fn f(x) { return %s; }" (nest 100) in
  match To_ebpf.compile_function source "f" with
  | exception To_ebpf.Unsupported _ -> ()
  | program -> (
      (* shallow enough to fit is fine too — then it must verify and run *)
      match Vm.load ~helpers:no_helpers ~regions:[] program with
      | Ok vm -> (
          match Vm.run vm ~args:[| 1L |] with
          | Ok v -> Alcotest.(check int64) "value" 101L v
          | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f))
      | Error f -> Alcotest.failf "verify: %s" (Fault.to_string f))

(* Differential fuzzing: random integer expressions evaluate identically
   in the interpreter and in compiled eBPF.  Division/modulo are omitted
   (eBPF is unsigned, MiniScript signed) and operands kept non-negative. *)
let gen_expr_source =
  let open QCheck.Gen in
  (* integer-typed expressions only: the eBPF target is untyped (bools are
     0/1 words), so ill-typed sources would diverge from the checked
     interpreter by design *)
  let rec arith depth =
    if depth = 0 then
      frequency
        [ (3, map (fun v -> string_of_int v) (int_range 0 1000));
          (2, return "x"); (2, return "y") ]
    else
      frequency
        [
          (1, arith 0);
          ( 5,
            map3
              (fun op a b -> Printf.sprintf "(%s %s %s)" a op b)
              (oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ])
              (arith (depth - 1)) (arith (depth - 1)) );
          ( 1,
            map3
              (fun f a b -> Printf.sprintf "%s(%s, %s)" f a b)
              (oneofl [ "min"; "max" ])
              (arith (depth - 1)) (arith (depth - 1)) );
          (1, map (fun a -> Printf.sprintf "abs(%s)" a) (arith (depth - 1)));
        ]
  in
  let top =
    frequency
      [
        (3, arith 4);
        ( 1,
          map3
            (fun op a b -> Printf.sprintf "(%s %s %s)" a op b)
            (oneofl [ "<"; "<="; "=="; "!="; ">"; ">=" ])
            (arith 3) (arith 3) );
      ]
  in
  QCheck.Gen.(top >>= fun body ->
    pair (int_range 0 100) (int_range 0 100) >>= fun (x, y) ->
    return (Printf.sprintf "fn f(x, y) { return %s; }" body, Int64.of_int x, Int64.of_int y))

let prop_compiled_equals_interpreted =
  QCheck.Test.make ~name:"compiled eBPF = interpreter on random expressions"
    ~count:300 (QCheck.make gen_expr_source) (fun (source, x, y) ->
      match (run_interpreted source "f" [ x; y ], run_compiled source "f" [ x; y ]) with
      | Ok a, Ok b -> Int64.equal a b
      | Error _, Error _ -> true
      | _ -> false)

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "comparisons/logic" `Quick test_comparisons_and_logic;
    Alcotest.test_case "if/else" `Quick test_if_else;
    Alcotest.test_case "while" `Quick test_while_loop;
    Alcotest.test_case "for/break/continue" `Quick test_for_break_continue;
    Alcotest.test_case "gcd" `Quick test_gcd;
    Alcotest.test_case "collatz" `Quick test_collatz_steps;
    Alcotest.test_case "min/max/abs" `Quick test_builtin_min_max_abs;
    Alcotest.test_case "shifts/bits" `Quick test_shifts_and_bits;
    Alcotest.test_case "helper calls" `Quick test_helper_calls_compiled;
    Alcotest.test_case "verifier accepts output" `Quick test_verifier_accepts_output;
    Alcotest.test_case "runaway contained" `Quick test_infinite_loop_contained;
    Alcotest.test_case "memory builtins" `Quick test_memory_builtins;
    Alcotest.test_case "memory builtins allow-list" `Quick
      test_memory_builtins_respect_allowlist;
    Alcotest.test_case "unsupported rejected" `Quick test_unsupported_constructs_rejected;
    Alcotest.test_case "deep expression" `Quick test_deep_expression_rejected_not_corrupted;
    QCheck_alcotest.to_alcotest prop_compiled_equals_interpreted;
  ]

let () = Alcotest.run "femto_to_ebpf" [ ("to-ebpf", suite) ]
