(* Tests for the baseline runtimes (wasm_mini, MiniScript in both
   profiles), culminating in the cross-runtime fletcher32 equivalence the
   paper's Table 2 relies on. *)

module Ast = Femto_wasm_mini.Ast
module Binary = Femto_wasm_mini.Binary
module Validate = Femto_wasm_mini.Validate
module Winterp = Femto_wasm_mini.Interp
module Wsamples = Femto_wasm_mini.Samples
module Eval_tree = Femto_script.Eval_tree
module Stack_vm = Femto_script.Stack_vm
module Compile = Femto_script.Compile
module Value = Femto_script.Value
module Ssamples = Femto_script.Samples
module Fletcher = Femto_workloads.Fletcher

(* tiny literal string replacement used by a test below *)
module Str_replace = struct
  let replace haystack needle replacement =
    let nlen = String.length needle in
    let buf = Buffer.create (String.length haystack) in
    let i = ref 0 in
    while !i < String.length haystack do
      if
        !i + nlen <= String.length haystack
        && String.sub haystack !i nlen = needle
      then begin
        Buffer.add_string buf replacement;
        i := !i + nlen
      end
      else begin
        Buffer.add_char buf haystack.[!i];
        incr i
      end
    done;
    Buffer.contents buf
end
module Fast = Femto_wasm_mini.Fast
module Flatten = Femto_wasm_mini.Flatten

(* --- wasm --- *)

let simple_module body ~results =
  let ftype = { Ast.params = [ Ast.I32 ]; results } in
  {
    Ast.types = [| ftype |];
    funcs = [| { Ast.ftype; locals = [ Ast.I32 ]; body } |];
    memory_pages = 1;
    globals = [||];
    data = [];
    exports = [ { Ast.name = "f"; func_index = 0 } ];
  }

let run_simple m args =
  match Validate.validate m with
  | Error e -> Alcotest.failf "validate: %s: %s" e.Validate.where e.Validate.message
  | Ok () -> (
      let instance = Winterp.instantiate m in
      match Winterp.call instance ~name:"f" args with
      | Ok v -> v
      | Error trap -> Alcotest.failf "trap: %s" (Winterp.trap_to_string trap))

let test_wasm_arithmetic () =
  let body =
    Ast.[ Local_get 0; I32_const 10l; Binop (I32, Add) ]
  in
  match run_simple (simple_module body ~results:[ Ast.I32 ]) [ Ast.V_i32 32l ] with
  | Some (Ast.V_i32 42l) -> ()
  | _ -> Alcotest.fail "expected 42"

let test_wasm_loop_and_branch () =
  (* sum 1..n with a loop *)
  let n = 0 and acc = 1 in
  let body =
    Ast.[
      I32_const 0l; Local_set acc;
      Block
        [
          Local_get n; I32_eqz; Br_if 0;
          Loop
            [
              Local_get acc; Local_get n; Binop (I32, Add); Local_set acc;
              Local_get n; I32_const 1l; Binop (I32, Sub); Local_set n;
              Local_get n; I32_const 0l; Relop (I32, Ne); Br_if 0;
            ];
        ];
      Local_get acc;
    ]
  in
  match run_simple (simple_module body ~results:[ Ast.I32 ]) [ Ast.V_i32 10l ] with
  | Some (Ast.V_i32 55l) -> ()
  | other ->
      Alcotest.failf "expected 55, got %s"
        (match other with
        | Some (Ast.V_i32 v) -> Int32.to_string v
        | _ -> "non-i32")

let test_wasm_memory_roundtrip () =
  let body =
    Ast.[
      I32_const 8l; Local_get 0; I32_store 0;
      I32_const 8l; I32_load 0;
    ]
  in
  match run_simple (simple_module body ~results:[ Ast.I32 ]) [ Ast.V_i32 77l ] with
  | Some (Ast.V_i32 77l) -> ()
  | _ -> Alcotest.fail "expected 77"

let test_wasm_oob_traps () =
  let body = Ast.[ Local_get 0; I32_load 0 ] in
  let m = simple_module body ~results:[ Ast.I32 ] in
  let instance = Winterp.instantiate m in
  match Winterp.call instance ~name:"f" [ Ast.V_i32 (Int32.of_int Ast.page_size) ] with
  | Error (Winterp.Out_of_bounds _) -> ()
  | _ -> Alcotest.fail "expected OOB trap"

let test_wasm_div_by_zero_traps () =
  let body = Ast.[ Local_get 0; I32_const 0l; Binop (I32, Div_u) ] in
  let m = simple_module body ~results:[ Ast.I32 ] in
  let instance = Winterp.instantiate m in
  match Winterp.call instance ~name:"f" [ Ast.V_i32 1l ] with
  | Error Winterp.Division_by_zero -> ()
  | _ -> Alcotest.fail "expected division trap"

let test_wasm_fuel_exhaustion () =
  let body = Ast.[ Loop [ Br 0 ] ] in
  let m = simple_module body ~results:[] in
  let instance = Winterp.instantiate ~fuel:10_000 m in
  match Winterp.call instance ~name:"f" [ Ast.V_i32 0l ] with
  | Error Winterp.Fuel_exhausted -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_wasm_binary_roundtrip () =
  let m = Wsamples.fletcher32_module in
  let encoded = Binary.encode m in
  let decoded = Binary.decode encoded in
  Alcotest.(check int) "memory pages" m.Ast.memory_pages decoded.Ast.memory_pages;
  Alcotest.(check int) "funcs" (Array.length m.Ast.funcs) (Array.length decoded.Ast.funcs);
  Alcotest.(check bool) "bodies equal" true
    (decoded.Ast.funcs.(0).Ast.body = m.Ast.funcs.(0).Ast.body);
  Alcotest.(check string) "re-encoding is stable" encoded (Binary.encode decoded)

let test_wasm_binary_rejects_garbage () =
  (match Binary.decode "garbage!" with
  | exception Binary.Format_error _ -> ()
  | _ -> Alcotest.fail "garbage accepted");
  match Binary.decode "\x00asm\x02\x00\x00\x00" with
  | exception Binary.Format_error _ -> ()
  | _ -> Alcotest.fail "bad version accepted"

let test_wasm_validate_rejects_bad_indices () =
  let bad_local = simple_module Ast.[ Local_get 9 ] ~results:[] in
  (match Validate.validate bad_local with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad local accepted");
  let bad_call = simple_module Ast.[ Call 3 ] ~results:[] in
  (match Validate.validate bad_call with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad call accepted");
  let bad_branch = simple_module Ast.[ Br 5 ] ~results:[] in
  match Validate.validate bad_branch with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad branch accepted"

let test_wasm_fletcher () =
  let data = Fletcher.input_360 in
  let instance = Winterp.instantiate Wsamples.fletcher32_module in
  match Wsamples.run_fletcher32 instance data with
  | Ok v ->
      Alcotest.(check int64) "matches native"
        (Int64.of_int (Fletcher.checksum data)) v
  | Error trap -> Alcotest.failf "trap: %s" (Winterp.trap_to_string trap)

(* --- type checker, globals, data segments, numeric extensions --- *)

module Typecheck = Femto_wasm_mini.Typecheck

let expect_typecheck_ok m =
  match Typecheck.check m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "typecheck rejected: %s" e.Typecheck.message

let expect_typecheck_error m =
  match Typecheck.check m with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "typecheck accepted an ill-typed module"

let test_typecheck_accepts_fletcher () =
  expect_typecheck_ok Wsamples.fletcher32_module

let test_typecheck_rejects_type_confusion () =
  (* i64 operand fed to an i32 add *)
  expect_typecheck_error
    (simple_module Ast.[ Local_get 0; I64_const 1L; Binop (I32, Add) ]
       ~results:[ Ast.I32 ]);
  (* i32 result declared as function returning nothing *)
  expect_typecheck_error (simple_module Ast.[ I32_const 1l ] ~results:[]);
  (* block leaving an operand behind *)
  expect_typecheck_error
    (simple_module Ast.[ Block [ I32_const 1l ]; I32_const 0l ] ~results:[ Ast.I32 ]);
  (* stack underflow *)
  expect_typecheck_error (simple_module Ast.[ Binop (I32, Add) ] ~results:[ Ast.I32 ])

let test_typecheck_unreachable_is_polymorphic () =
  expect_typecheck_ok
    (simple_module Ast.[ Unreachable; Binop (I32, Add) ] ~results:[ Ast.I32 ])

let global_module ~mutable_ body ~results =
  let m = simple_module body ~results in
  { m with Ast.globals = [| { Ast.gtype = Ast.I32; mutable_; init = 40L } |] }

let test_globals_roundtrip_and_exec () =
  let body = Ast.[ Global_get 0; I32_const 2l; Binop (I32, Add);
                   Global_set 0; Global_get 0 ] in
  let m = global_module ~mutable_:true body ~results:[ Ast.I32 ] in
  expect_typecheck_ok m;
  (* binary roundtrip preserves globals *)
  let decoded = Femto_wasm_mini.Binary.decode (Femto_wasm_mini.Binary.encode m) in
  Alcotest.(check int) "globals survive" 1 (Array.length decoded.Ast.globals);
  (* both engines agree: 40 + 2 = 42, and the global persists *)
  let reference = Winterp.instantiate m in
  (match Winterp.call reference ~name:"f" [ Ast.V_i32 0l ] with
  | Ok (Some (Ast.V_i32 42l)) -> ()
  | _ -> Alcotest.fail "reference: expected 42");
  (match Winterp.call reference ~name:"f" [ Ast.V_i32 0l ] with
  | Ok (Some (Ast.V_i32 44l)) -> () (* state persisted across calls *)
  | _ -> Alcotest.fail "reference: expected 44");
  let fast = Fast.of_module m in
  (match Fast.call fast ~name:"f" [ 0L ] with
  | Ok (Some 42L) -> ()
  | _ -> Alcotest.fail "fast: expected 42");
  match Fast.call fast ~name:"f" [ 0L ] with
  | Ok (Some 44L) -> ()
  | _ -> Alcotest.fail "fast: expected 44"

let test_immutable_global_rejected () =
  let body = Ast.[ I32_const 1l; Global_set 0 ] in
  let m = global_module ~mutable_:false body ~results:[] in
  (match Validate.validate m with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "validate accepted write to immutable global");
  expect_typecheck_error m

let test_data_segments_initialize_memory () =
  let body = Ast.[ Local_get 0; I32_load8_u 0 ] in
  let m =
    { (simple_module body ~results:[ Ast.I32 ]) with
      Ast.data = [ { Ast.offset = 10; bytes = "AB" } ] }
  in
  let decoded = Femto_wasm_mini.Binary.decode (Femto_wasm_mini.Binary.encode m) in
  Alcotest.(check int) "data survives" 1 (List.length decoded.Ast.data);
  let check_engine name call =
    match call 10L with
    | Some 65L -> (
        match call 11L with
        | Some 66L -> (
            match call 12L with
            | Some 0L -> ()
            | _ -> Alcotest.failf "%s: expected zero past segment" name)
        | _ -> Alcotest.failf "%s: expected 'B'" name)
    | _ -> Alcotest.failf "%s: expected 'A'" name
  in
  let reference = Winterp.instantiate decoded in
  check_engine "reference" (fun arg ->
      match Winterp.call reference ~name:"f" [ Ast.V_i32 (Int64.to_int32 arg) ] with
      | Ok (Some (Ast.V_i32 v)) -> Some (Int64.logand (Int64.of_int32 v) 0xFFL)
      | _ -> None);
  let fast = Fast.of_module decoded in
  check_engine "fast" (fun arg ->
      match Fast.call fast ~name:"f" [ arg ] with
      | Ok (Some v) -> Some (Int64.logand v 0xFFL)
      | _ -> None)

let test_data_segment_bounds_checked () =
  let m =
    { (simple_module Ast.[ I32_const 0l ] ~results:[ Ast.I32 ]) with
      Ast.data = [ { Ast.offset = Ast.page_size - 1; bytes = "too long" } ] }
  in
  match Validate.validate m with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-bounds data segment accepted"

let test_numeric_extensions () =
  let eval body arg =
    let m = simple_module body ~results:[ Ast.I32 ] in
    expect_typecheck_ok m;
    let reference =
      match run_simple m [ Ast.V_i32 arg ] with
      | Some (Ast.V_i32 v) -> Int64.logand (Int64.of_int32 v) 0xFFFF_FFFFL
      | _ -> Alcotest.fail "reference failed"
    in
    let fast = Fast.of_module m in
    (match Fast.call fast ~name:"f" [ Int64.logand (Int64.of_int32 arg) 0xFFFF_FFFFL ] with
    | Ok (Some v) ->
        Alcotest.(check int64) "fast agrees with reference" reference v
    | _ -> Alcotest.fail "fast failed");
    reference
  in
  Alcotest.(check int64) "clz(1) = 31" 31L
    (eval Ast.[ Local_get 0; Unop (I32, Clz) ] 1l);
  Alcotest.(check int64) "clz(0) = 32" 32L
    (eval Ast.[ Local_get 0; Unop (I32, Clz) ] 0l);
  Alcotest.(check int64) "ctz(8) = 3" 3L
    (eval Ast.[ Local_get 0; Unop (I32, Ctz) ] 8l);
  Alcotest.(check int64) "popcnt(0xF0F0) = 8" 8L
    (eval Ast.[ Local_get 0; Unop (I32, Popcnt) ] 0xF0F0l);
  Alcotest.(check int64) "rotl(0x80000001, 1) = 3" 3L
    (eval Ast.[ Local_get 0; I32_const 1l; Binop (I32, Rotl) ] 0x80000001l);
  Alcotest.(check int64) "rotr(1, 1) = 0x80000000" 0x80000000L
    (eval Ast.[ Local_get 0; I32_const 1l; Binop (I32, Rotr) ] 1l)

(* --- fast (threaded, fused) wasm engine --- *)

let test_fast_fletcher () =
  let data = Fletcher.input_360 in
  let fast = Fast.of_module Wsamples.fletcher32_module in
  match Fast.run_fletcher32 fast data with
  | Ok v ->
      Alcotest.(check int64) "fast = native"
        (Int64.of_int (Fletcher.checksum data)) v
  | Error trap -> Alcotest.failf "trap: %s" (Winterp.trap_to_string trap)

let test_fast_matches_reference_on_simple_bodies () =
  (* the fast engine and the typed reference interpreter must agree *)
  let cases =
    [
      Ast.[ Local_get 0; I32_const 10l; Binop (I32, Add) ];
      Ast.[ Local_get 0; I32_const 3l; Binop (I32, Mul);
            Local_set 1; Local_get 1; I32_const 1l; Binop (I32, Sub) ];
      Ast.[
        I32_const 0l; Local_set 1;
        Block [ Local_get 0; I32_eqz; Br_if 0;
                Loop [ Local_get 1; Local_get 0; Binop (I32, Add); Local_set 1;
                       Local_get 0; I32_const 1l; Binop (I32, Sub); Local_set 0;
                       Local_get 0; I32_const 0l; Relop (I32, Ne); Br_if 0 ] ];
        Local_get 1 ];
      Ast.[ Local_get 0; I32_const (-1l); Binop (I32, Xor) ];
      Ast.[ Local_get 0; If ([ I32_const 7l ], [ I32_const 9l ]) ];
      Ast.[ I32_const 4l; Local_get 0; I32_store 0; I32_const 4l; I32_load 0 ];
    ]
  in
  List.iteri
    (fun i body ->
      let m = simple_module body ~results:[ Ast.I32 ] in
      List.iter
        (fun input ->
          let reference =
            let inst = Winterp.instantiate m in
            match Winterp.call inst ~name:"f" [ Ast.V_i32 (Int32.of_int input) ] with
            | Ok (Some (Ast.V_i32 v)) ->
                Ok (Int64.logand (Int64.of_int32 v) 0xFFFF_FFFFL)
            | Ok _ -> Error "shape"
            | Error trap -> Error (Winterp.trap_to_string trap)
          in
          let fast =
            let inst = Fast.of_module m in
            match Fast.call inst ~name:"f" [ Int64.of_int input ] with
            | Ok (Some v) -> Ok v
            | Ok None -> Error "shape"
            | Error trap -> Error (Winterp.trap_to_string trap)
          in
          match (reference, fast) with
          | Ok a, Ok b ->
              Alcotest.(check int64) (Printf.sprintf "case %d input %d" i input) a b
          | Error _, Error _ -> ()
          | _ -> Alcotest.failf "case %d input %d: engines disagree" i input)
        [ 0; 1; 5; 255; -1 ])
    cases

let test_fast_traps_contained () =
  let oob = simple_module Ast.[ Local_get 0; I32_load 0 ] ~results:[ Ast.I32 ] in
  let inst = Fast.of_module oob in
  (match Fast.call inst ~name:"f" [ Int64.of_int Ast.page_size ] with
  | Error (Winterp.Out_of_bounds _) -> ()
  | _ -> Alcotest.fail "expected OOB trap");
  let div0 =
    simple_module Ast.[ Local_get 0; I32_const 0l; Binop (I32, Div_u) ]
      ~results:[ Ast.I32 ]
  in
  let inst = Fast.of_module div0 in
  (match Fast.call inst ~name:"f" [ 1L ] with
  | Error Winterp.Division_by_zero -> ()
  | _ -> Alcotest.fail "expected div0 trap");
  let spin = simple_module Ast.[ Loop [ Br 0 ] ] ~results:[] in
  let inst = Fast.instantiate ~fuel:5_000 (Flatten.flatten spin) in
  match Fast.call inst ~name:"f" [ 0L ] with
  | Error Winterp.Fuel_exhausted -> ()
  | _ -> Alcotest.fail "expected fuel trap"

let test_fusion_preserves_fused_div_trap () =
  (* a fused quad with a constant zero divisor must still trap *)
  let body =
    Ast.[ Local_get 0; I32_const 0l; Binop (I32, Div_u); Local_set 1;
          Local_get 1 ]
  in
  let m = simple_module body ~results:[ Ast.I32 ] in
  let inst = Fast.of_module m in
  match Fast.call inst ~name:"f" [ 7L ] with
  | Error Winterp.Division_by_zero -> ()
  | _ -> Alcotest.fail "expected trap through fused op"

(* Differential fuzzing: random well-typed module bodies must evaluate
   identically in the typed reference interpreter and the untyped fused
   fast engine. *)
let gen_wasm_module =
  let open QCheck.Gen in
  let slot = int_range 0 3 in (* local 0 = the i32 parameter *)
  let stmt =
    frequency
      [
        ( 4,
          map3
            (fun (a, b) op c ->
              Ast.[ Local_get a; Local_get b; Binop (I32, op); Local_set c ])
            (pair slot slot)
            (oneofl Ast.[ Add; Sub; Mul; And; Or; Xor; Shl; Shr_u; Shr_s; Rotl; Rotr ])
            slot );
        ( 3,
          map3
            (fun a k c ->
              Ast.[ Local_get a; I32_const (Int32.of_int k); Binop (I32, Add);
                    Local_set c ])
            slot (int_range (-1000) 1000) slot );
        ( 2,
          map3
            (fun a op c -> Ast.[ Local_get a; Unop (I32, op); Local_set c ])
            slot
            (oneofl Ast.[ Clz; Ctz; Popcnt ])
            slot );
        ( 2,
          map3
            (fun (a, b) op c ->
              Ast.[ Local_get a; Local_get b; Relop (I32, op); Local_set c ])
            (pair slot slot)
            (oneofl Ast.[ Eq; Ne; Lt_u; Lt_s; Gt_u; Gt_s; Le_u; Le_s ])
            slot );
        ( 2,
          map2
            (fun addr a ->
              Ast.[ I32_const (Int32.of_int (addr * 4)); Local_get a; I32_store 0 ])
            (int_range 0 64) slot );
        ( 2,
          map2
            (fun addr c ->
              Ast.[ I32_const (Int32.of_int (addr * 4)); I32_load 0; Local_set c ])
            (int_range 0 64) slot );
        ( 1,
          map2
            (fun a inner ->
              Ast.[ Block (Local_get a :: I32_eqz :: Br_if 0 :: List.concat inner) ])
            slot
            (list_size (int_range 0 3)
               (map2
                  (fun (a, b) c ->
                    Ast.[ Local_get a; Local_get b; Binop (I32, Add); Local_set c ])
                  (pair slot slot) slot)) );
      ]
  in
  map2
    (fun stmts input ->
      let body = List.concat stmts @ [ Ast.Local_get 0 ] in
      let ftype = { Ast.params = [ Ast.I32 ]; results = [ Ast.I32 ] } in
      let m =
        {
          Ast.types = [| ftype |];
          funcs = [| { Ast.ftype; locals = [ Ast.I32; Ast.I32; Ast.I32 ]; body } |];
          memory_pages = 1;
          globals = [||];
          data = [];
          exports = [ { Ast.name = "f"; func_index = 0 } ];
        }
      in
      (m, Int32.of_int input))
    (QCheck.Gen.list_size (QCheck.Gen.int_range 1 12) stmt)
    (QCheck.Gen.int_range (-1000) 1000)

let prop_fast_equals_reference =
  QCheck.Test.make ~name:"fast wasm = reference on random typed modules"
    ~count:300 (QCheck.make gen_wasm_module) (fun (m, input) ->
      (* generated modules must be fully valid *)
      match (Validate.validate m, Typecheck.check m) with
      | Ok (), Ok () -> (
          let reference =
            let inst = Winterp.instantiate m in
            match Winterp.call inst ~name:"f" [ Ast.V_i32 input ] with
            | Ok (Some (Ast.V_i32 v)) ->
                Ok (Int64.logand (Int64.of_int32 v) 0xFFFF_FFFFL)
            | Ok _ -> Error "shape"
            | Error trap -> Error (Winterp.trap_to_string trap)
          in
          let fast =
            let inst = Fast.of_module m in
            match
              Fast.call inst ~name:"f"
                [ Int64.logand (Int64.of_int32 input) 0xFFFF_FFFFL ]
            with
            | Ok (Some v) -> Ok v
            | Ok None -> Error "shape"
            | Error trap -> Error (Winterp.trap_to_string trap)
          in
          match (reference, fast) with
          | Ok a, Ok b -> Int64.equal a b
          | Error _, Error _ -> true
          | _ -> false)
      | _ -> false)

(* --- MiniScript --- *)

let run_jsish source entry args =
  let t = Eval_tree.load source in
  match Eval_tree.run t with
  | Error m -> Alcotest.failf "top-level: %s" m
  | Ok _ -> (
      match Eval_tree.call t entry args with
      | Ok v -> v
      | Error m -> Alcotest.failf "jsish: %s" m)

let run_pyish source entry args =
  let t = Stack_vm.load source in
  match Stack_vm.run t with
  | Error m -> Alcotest.failf "top-level: %s" m
  | Ok _ -> (
      match Stack_vm.call t entry args with
      | Ok v -> v
      | Error m -> Alcotest.failf "pyish: %s" m)

let both_profiles source entry args =
  (run_jsish source entry args, run_pyish source entry args)

let check_value what expected actual =
  Alcotest.(check string) what (Value.to_string expected) (Value.to_string actual)

let test_script_arithmetic () =
  let source = "fn f(x) { return (x + 3) * 2 - 1; }" in
  let a, b = both_profiles source "f" [ Value.Int 10L ] in
  check_value "jsish" (Value.Int 25L) a;
  check_value "pyish" (Value.Int 25L) b

let test_script_control_flow () =
  let source =
    {|
      fn fib(n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
      }
    |}
  in
  let a, b = both_profiles source "fib" [ Value.Int 15L ] in
  check_value "jsish fib" (Value.Int 610L) a;
  check_value "pyish fib" (Value.Int 610L) b

let test_script_while_and_arrays () =
  let source =
    {|
      fn f(n) {
        let acc = [];
        let i = 0;
        while (i < n) {
          push(acc, i * i);
          i = i + 1;
        }
        return acc[n - 1] + len(acc);
      }
    |}
  in
  let a, b = both_profiles source "f" [ Value.Int 5L ] in
  check_value "jsish" (Value.Int 21L) a;
  check_value "pyish" (Value.Int 21L) b

let test_script_strings () =
  let source = {| fn f(s) { return byte(s, 0) + len(s); } |} in
  let a, b = both_profiles source "f" [ Value.Str "Az" ] in
  check_value "jsish" (Value.Int 67L) a;
  check_value "pyish" (Value.Int 67L) b

let test_script_short_circuit () =
  (* the right operand must not run when short-circuited: division by zero
     would error *)
  let source = "fn f(x) { return x == 0 || 10 / x > 1; }" in
  let a, b = both_profiles source "f" [ Value.Int 0L ] in
  check_value "jsish" (Value.Bool true) a;
  check_value "pyish" (Value.Bool true) b

let test_script_globals () =
  let source =
    {|
      let counter = 100;
      fn f(n) {
        counter = counter + n;
        return counter;
      }
    |}
  in
  let a, b = both_profiles source "f" [ Value.Int 5L ] in
  check_value "jsish" (Value.Int 105L) a;
  check_value "pyish" (Value.Int 105L) b

let test_script_runtime_errors () =
  let cases =
    [
      ("fn f(x) { return 1 / 0; }", "division by zero");
      ("fn f(x) { return y; }", "unbound");
      ("fn f(x) { let a = [1]; return a[5]; }", "out of bounds");
      ("fn f(x) { return x + \"s\"; }", "arithmetic");
    ]
  in
  List.iter
    (fun (source, _hint) ->
      let t = Eval_tree.load source in
      (match Eval_tree.call t "f" [ Value.Int 1L ] with
      | Error _ -> ()
      | Ok v -> Alcotest.failf "jsish accepted %s -> %s" source (Value.to_string v));
      let t = Stack_vm.load source in
      match Stack_vm.call t "f" [ Value.Int 1L ] with
      | Error _ -> ()
      | Ok v -> Alcotest.failf "pyish accepted %s -> %s" source (Value.to_string v))
    cases

let test_script_step_budget () =
  let source = "fn f(x) { while (true) { x = x + 1; } return x; }" in
  let t = Eval_tree.load ~max_steps:10_000 source in
  (match Eval_tree.call t "f" [ Value.Int 0L ] with
  | Error m ->
      Alcotest.(check bool) "budget error" true
        (Astring.String.is_infix ~affix:"budget" m)
  | Ok _ -> Alcotest.fail "infinite loop terminated");
  let t = Stack_vm.load ~max_steps:10_000 source in
  match Stack_vm.call t "f" [ Value.Int 0L ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "infinite loop terminated"

let test_script_parse_errors () =
  let bad = [ "fn f( { }"; "let x = ;"; "fn f(x) { if x { } }"; "1 +" ] in
  List.iter
    (fun source ->
      match Femto_script.Parser.parse source with
      | exception Femto_script.Parser.Parse_error _ -> ()
      | exception Femto_script.Lexer.Lex_error _ -> ()
      | _ -> Alcotest.failf "parsed %S" source)
    bad

let test_script_for_loop () =
  let source =
    {|
      fn f(n) {
        let acc = 0;
        for (let i = 1; i <= n; i = i + 1) {
          acc = acc + i;
        }
        return acc;
      }
    |}
  in
  let a, b = both_profiles source "f" [ Value.Int 100L ] in
  check_value "jsish for" (Value.Int 5050L) a;
  check_value "pyish for" (Value.Int 5050L) b

let test_script_break_continue () =
  let source =
    {|
      fn f(n) {
        let acc = 0;
        for (let i = 0; i < n; i = i + 1) {
          if (i % 2 == 0) { continue; }
          if (i > 10) { break; }
          acc = acc + i;
        }
        return acc;
      }
    |}
  in
  (* odd numbers 1..9: 1+3+5+7+9 = 25 *)
  let a, b = both_profiles source "f" [ Value.Int 100L ] in
  check_value "jsish break/continue" (Value.Int 25L) a;
  check_value "pyish break/continue" (Value.Int 25L) b

let test_script_while_break_continue () =
  let source =
    {|
      fn f(n) {
        let acc = 0;
        let i = 0;
        while (true) {
          i = i + 1;
          if (i > n) { break; }
          if (i % 3 == 0) { continue; }
          acc = acc + i;
        }
        return acc;
      }
    |}
  in
  (* 1..10 without multiples of 3: 55 - (3+6+9) = 37 *)
  let a, b = both_profiles source "f" [ Value.Int 10L ] in
  check_value "jsish while break" (Value.Int 37L) a;
  check_value "pyish while break" (Value.Int 37L) b

let test_script_nested_loops_break_inner () =
  let source =
    {|
      fn f(n) {
        let count = 0;
        for (let i = 0; i < n; i = i + 1) {
          for (let j = 0; j < n; j = j + 1) {
            if (j == 2) { break; }
            count = count + 1;
          }
        }
        return count;
      }
    |}
  in
  (* inner loop always runs twice *)
  let a, b = both_profiles source "f" [ Value.Int 5L ] in
  check_value "jsish nested" (Value.Int 10L) a;
  check_value "pyish nested" (Value.Int 10L) b

let test_script_new_builtins () =
  let source =
    {|
      fn f(x) {
        return min(x, 3) + max(x, 3) + abs(0 - x) + len(str(x)) + byte(chr(65), 0);
      }
    |}
  in
  (* x=7: 3 + 7 + 7 + 1 + 65 = 83 *)
  let a, b = both_profiles source "f" [ Value.Int 7L ] in
  check_value "jsish builtins" (Value.Int 83L) a;
  check_value "pyish builtins" (Value.Int 83L) b

let test_script_maps () =
  let source =
    {|
      fn f(n) {
        let counts = map();
        for (let i = 0; i < n; i = i + 1) {
          let k = i % 3;
          counts[k] = counts[k] + 1;
        }
        if (!mhas(counts, 0)) { return 0 - 1; }
        mdel(counts, 2);
        return counts[0] * 100 + counts[1] * 10 + len(counts);
      }
    |}
  in
  (* counts[k] starts as nil; nil + 1 would error — guard with a seed *)
  let source =
    Str_replace.replace source "counts[k] = counts[k] + 1;"
      "if (mhas(counts, k)) { counts[k] = counts[k] + 1; } else { counts[k] = 1; }"
  in
  (* n=9: keys 0,1,2 each 3 times; after mdel: {0:3, 1:3} -> 3*100+3*10+2 *)
  let a, b = both_profiles source "f" [ Value.Int 9L ] in
  check_value "jsish maps" (Value.Int 332L) a;
  check_value "pyish maps" (Value.Int 332L) b

let test_script_map_string_keys_and_keys_builtin () =
  let source =
    {|
      fn f(x) {
        let m = map();
        m["alpha"] = 1;
        m["beta"] = 2;
        m[true] = 3;
        let ks = len(keys(m));
        return ks * 10 + m["beta"];
      }
    |}
  in
  let a, b = both_profiles source "f" [ Value.Int 0L ] in
  check_value "jsish" (Value.Int 32L) a;
  check_value "pyish" (Value.Int 32L) b

let test_script_map_key_errors () =
  let source = "fn f(x) { let m = map(); m[[1]] = 2; return 0; }" in
  let t = Eval_tree.load source in
  (match Eval_tree.call t "f" [ Value.Int 0L ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "array key accepted");
  let missing = "fn f(x) { let m = map(); return m[9] == nil; }" in
  let a, b = both_profiles missing "f" [ Value.Int 0L ] in
  check_value "jsish missing is nil" (Value.Bool true) a;
  check_value "pyish missing is nil" (Value.Bool true) b

let test_script_break_outside_loop_rejected () =
  (match Femto_script.Stack_vm.load "fn f(x) { break; }" with
  | exception Compile.Compile_error _ -> ()
  | _ -> Alcotest.fail "pyish accepted break outside loop");
  (* tree profile reports a runtime error, never an escaped exception *)
  let t = Eval_tree.load "fn f(x) { break; }" in
  match Eval_tree.call t "f" [ Value.Int 0L ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "jsish ran break outside loop"

let test_script_fletcher_both_profiles () =
  let data = Fletcher.input_360 in
  let expected = Value.Int (Int64.of_int (Fletcher.checksum data)) in
  let args = Ssamples.fletcher32_args data in
  let a = run_jsish Ssamples.fletcher32_source "fletcher32" args in
  let b = run_pyish Ssamples.fletcher32_source "fletcher32" args in
  check_value "jsish fletcher" expected a;
  check_value "pyish fletcher" expected b

(* --- the headline cross-runtime property --- *)

let prop_fletcher_equivalence_all_runtimes =
  QCheck.Test.make ~name:"fletcher32 equal across native/eBPF/wasm/script"
    ~count:25
    QCheck.(make Gen.(string_size ~gen:char (int_range 0 256)))
    (fun s ->
      let data = Bytes.of_string (String.sub s 0 (String.length s - String.length s mod 2)) in
      let expected = Int64.of_int (Fletcher.checksum data) in
      (* eBPF *)
      let ebpf =
        let helpers = Femto_vm.Helper.create () in
        let regions = Fletcher.regions ~ctx_vaddr:0x2000_0000L data in
        match Femto_vm.Vm.load ~helpers ~regions (Fletcher.ebpf_program ()) with
        | Ok vm -> (
            match Femto_vm.Vm.run vm ~args:[| 0x2000_0000L |] with
            | Ok v -> v
            | Error _ -> -1L)
        | Error _ -> -1L
      in
      (* wasm *)
      let wasm =
        let instance = Winterp.instantiate Wsamples.fletcher32_module in
        match Wsamples.run_fletcher32 instance data with Ok v -> v | Error _ -> -1L
      in
      (* script, both profiles *)
      let args = Ssamples.fletcher32_args data in
      let jsish =
        let t = Eval_tree.load Ssamples.fletcher32_source in
        match Eval_tree.call t "fletcher32" args with
        | Ok (Value.Int v) -> v
        | _ -> -1L
      in
      let pyish =
        let t = Stack_vm.load Ssamples.fletcher32_source in
        match Stack_vm.call t "fletcher32" args with
        | Ok (Value.Int v) -> v
        | _ -> -1L
      in
      List.for_all (Int64.equal expected) [ ebpf; wasm; jsish; pyish ])

let suite =
  [
    Alcotest.test_case "wasm arithmetic" `Quick test_wasm_arithmetic;
    Alcotest.test_case "wasm loop/branch" `Quick test_wasm_loop_and_branch;
    Alcotest.test_case "wasm memory" `Quick test_wasm_memory_roundtrip;
    Alcotest.test_case "wasm OOB trap" `Quick test_wasm_oob_traps;
    Alcotest.test_case "wasm div0 trap" `Quick test_wasm_div_by_zero_traps;
    Alcotest.test_case "wasm fuel" `Quick test_wasm_fuel_exhaustion;
    Alcotest.test_case "wasm binary roundtrip" `Quick test_wasm_binary_roundtrip;
    Alcotest.test_case "wasm binary garbage" `Quick test_wasm_binary_rejects_garbage;
    Alcotest.test_case "wasm validate indices" `Quick test_wasm_validate_rejects_bad_indices;
    Alcotest.test_case "wasm fletcher" `Quick test_wasm_fletcher;
    Alcotest.test_case "typecheck fletcher" `Quick test_typecheck_accepts_fletcher;
    Alcotest.test_case "typecheck confusion" `Quick test_typecheck_rejects_type_confusion;
    Alcotest.test_case "typecheck unreachable" `Quick test_typecheck_unreachable_is_polymorphic;
    Alcotest.test_case "globals" `Quick test_globals_roundtrip_and_exec;
    Alcotest.test_case "immutable global" `Quick test_immutable_global_rejected;
    Alcotest.test_case "data segments" `Quick test_data_segments_initialize_memory;
    Alcotest.test_case "data bounds" `Quick test_data_segment_bounds_checked;
    Alcotest.test_case "numeric extensions" `Quick test_numeric_extensions;
    Alcotest.test_case "fast wasm fletcher" `Quick test_fast_fletcher;
    Alcotest.test_case "fast = reference" `Quick test_fast_matches_reference_on_simple_bodies;
    Alcotest.test_case "fast traps contained" `Quick test_fast_traps_contained;
    Alcotest.test_case "fused div0 trap" `Quick test_fusion_preserves_fused_div_trap;
    Alcotest.test_case "script arithmetic" `Quick test_script_arithmetic;
    Alcotest.test_case "script control flow" `Quick test_script_control_flow;
    Alcotest.test_case "script arrays" `Quick test_script_while_and_arrays;
    Alcotest.test_case "script strings" `Quick test_script_strings;
    Alcotest.test_case "script short-circuit" `Quick test_script_short_circuit;
    Alcotest.test_case "script globals" `Quick test_script_globals;
    Alcotest.test_case "script runtime errors" `Quick test_script_runtime_errors;
    Alcotest.test_case "script step budget" `Quick test_script_step_budget;
    Alcotest.test_case "script parse errors" `Quick test_script_parse_errors;
    Alcotest.test_case "script for loop" `Quick test_script_for_loop;
    Alcotest.test_case "script break/continue" `Quick test_script_break_continue;
    Alcotest.test_case "script while break" `Quick test_script_while_break_continue;
    Alcotest.test_case "script nested loops" `Quick test_script_nested_loops_break_inner;
    Alcotest.test_case "script new builtins" `Quick test_script_new_builtins;
    Alcotest.test_case "script maps" `Quick test_script_maps;
    Alcotest.test_case "script map string keys" `Quick
      test_script_map_string_keys_and_keys_builtin;
    Alcotest.test_case "script map key errors" `Quick test_script_map_key_errors;
    Alcotest.test_case "script break outside loop" `Quick
      test_script_break_outside_loop_rejected;
    Alcotest.test_case "script fletcher" `Quick test_script_fletcher_both_profiles;
    QCheck_alcotest.to_alcotest prop_fletcher_equivalence_all_runtimes;
    QCheck_alcotest.to_alcotest prop_fast_equals_reference;
  ]

let () = Alcotest.run "femto_baselines" [ ("baselines", suite) ]
