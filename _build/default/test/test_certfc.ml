(* Tests for CertFC: defensive interpreter semantics, checker/verifier
   agreement, and — most importantly — behavioural equivalence with the
   optimized interpreter on random programs (the property the paper's
   formal verification guarantees between proof model and C code). *)

open Femto_ebpf
module Vm = Femto_vm.Vm
module Fault = Femto_vm.Fault
module Config = Femto_vm.Config
module Helper = Femto_vm.Helper
module Certfc = Femto_certfc.Certfc
module Check = Femto_certfc.Check

let no_helpers = Helper.create ()

let run_certfc ?(args = [||]) source =
  let program = Asm.assemble source in
  match Certfc.load ~helpers:no_helpers ~regions:[] program with
  | Error fault -> Error fault
  | Ok vm -> Certfc.run vm ~args

let expect_ok source =
  match run_certfc source with
  | Ok v -> v
  | Error fault -> Alcotest.failf "fault: %s" (Fault.to_string fault)

let check64 = Alcotest.(check int64)

let test_basic_arithmetic () =
  check64 "arith" 52L (expect_ok "mov r0, 42\nadd r0, 10\nexit")

let test_loop () =
  check64 "sum" 55L
    (expect_ok
       "mov r0, 0\nmov r1, 1\nloop:\nadd r0, r1\nadd r1, 1\njle r1, 10, loop\nexit")

let test_stack_roundtrip () =
  check64 "stack" 99L (expect_ok "stdw [r10-8], 99\nldxdw r0, [r10-8]\nexit")

let test_div_by_zero () =
  match run_certfc "mov r0, 1\nmov r1, 0\ndiv r0, r1\nexit" with
  | Error (Fault.Division_by_zero _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected division fault"

let test_memory_fault () =
  match run_certfc "mov r1, 0\nldxw r0, [r1]\nexit" with
  | Error (Fault.Memory_access _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected memory fault"

let test_branch_budget () =
  let config = { Config.default with Config.max_branches = 50 } in
  let program = Asm.assemble "loop:\nja loop" in
  match Certfc.load ~config ~helpers:no_helpers ~regions:[] program with
  | Error fault -> Alcotest.failf "check: %s" (Fault.to_string fault)
  | Ok vm -> (
      match Certfc.run vm with
      | Error (Fault.Branch_budget_exhausted _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected branch budget fault")

let test_checker_rejects_r10_write () =
  match Check.check Config.default (Asm.assemble "mov r10, 1\nexit") with
  | Error (Fault.Readonly_register _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected readonly fault"

let test_checker_rejects_jump_out () =
  match Check.check Config.default (Asm.assemble "ja +3\nexit") with
  | Error (Fault.Bad_jump _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected bad jump"

let test_helper_call () =
  let helpers = Helper.create () in
  Helper.register helpers ~id:1 ~name:"double" (fun _mem args ->
      Ok (Int64.mul args.Helper.a1 2L));
  let program = Asm.assemble "mov r1, 21\ncall 1\nexit" in
  match Certfc.load ~helpers ~regions:[] program with
  | Error fault -> Alcotest.failf "check: %s" (Fault.to_string fault)
  | Ok vm -> (
      match Certfc.run vm with
      | Ok v -> check64 "helper" 42L v
      | Error fault -> Alcotest.failf "fault: %s" (Fault.to_string fault))

(* --- equivalence with the optimized interpreter --- *)

(* Structured generator: produces programs that often pass verification
   and exercise ALU, memory and control flow. *)
let gen_program =
  let open QCheck.Gen in
  let reg = int_range 0 5 in
  let alu_imm =
    map3
      (fun op dst imm ->
        Insn.make (Opcode.alu64 op Opcode.Src_imm) ~dst ~imm:(Int32.of_int imm))
      (oneofl Opcode.[ Add; Sub; Mul; Or; And; Xor; Mov; Arsh; Lsh; Rsh ])
      reg (int_range (-1000) 1000)
  in
  let alu_reg =
    map3
      (fun op dst src -> Insn.make (Opcode.alu64 op Opcode.Src_reg) ~dst ~src)
      (oneofl Opcode.[ Add; Sub; Mul; Or; And; Xor; Mov ])
      reg reg
  in
  let alu32 =
    map3
      (fun op dst imm ->
        Insn.make (Opcode.alu32 op Opcode.Src_imm) ~dst ~imm:(Int32.of_int imm))
      (oneofl Opcode.[ Add; Sub; Mul; Mov; Xor ])
      reg (int_range (-1000) 1000)
  in
  let stack_store =
    map2
      (fun src slot -> Insn.make (Opcode.stx Opcode.DW) ~dst:10 ~src ~offset:(-8 * (slot + 1)))
      reg (int_range 0 7)
  in
  let stack_load =
    map2
      (fun dst slot -> Insn.make (Opcode.ldx Opcode.DW) ~dst ~src:10 ~offset:(-8 * (slot + 1)))
      reg (int_range 0 7)
  in
  let forward_jump =
    map3
      (fun cond dst off -> Insn.make (Opcode.jmp cond Opcode.Src_imm) ~dst ~offset:off ~imm:5l)
      (oneofl Opcode.[ Jeq; Jne; Jgt; Jlt; Jsge ])
      reg (int_range 0 3)
  in
  let body =
    list_size (int_range 2 40)
      (frequency
         [ (5, alu_imm); (4, alu_reg); (2, alu32); (2, stack_store);
           (2, stack_load); (2, forward_jump) ])
  in
  map (fun insns -> Program.of_insns (insns @ [ Insn.make Opcode.exit' ])) body

let fault_fingerprint = function
  | Fault.Division_by_zero _ -> "div0"
  | Fault.Memory_access _ -> "mem"
  | Fault.Branch_budget_exhausted _ -> "branch-budget"
  | Fault.Instruction_budget_exhausted _ -> "insn-budget"
  | Fault.Bad_jump _ -> "bad-jump"
  | Fault.Fall_off_end _ -> "fall-off"
  | fault -> Fault.to_string fault

let prop_equivalence =
  QCheck.Test.make ~name:"CertFC = optimized interpreter" ~count:500
    (QCheck.make gen_program) (fun program ->
      let config = { Config.default with Config.max_branches = 256 } in
      let fc = Vm.load ~config ~helpers:no_helpers ~regions:[] program in
      let cert = Certfc.load ~config ~helpers:no_helpers ~regions:[] program in
      match (fc, cert) with
      | Error _, Error _ -> true (* both reject: agreement *)
      | Ok _, Error _ | Error _, Ok _ -> false
      | Ok fc_vm, Ok cert_vm -> (
          match (Vm.run fc_vm, Certfc.run cert_vm) with
          | Ok a, Ok b -> Int64.equal a b
          | Error a, Error b ->
              String.equal (fault_fingerprint a) (fault_fingerprint b)
          | Ok _, Error _ | Error _, Ok _ -> false))

let prop_checker_agrees_with_verifier =
  (* Any byte string: the CertFC checker and the optimized verifier accept
     or reject together. *)
  QCheck.Test.make ~name:"checker agrees with verifier" ~count:500
    QCheck.(make Gen.(map Bytes.of_string (string_size ~gen:char (int_range 8 256))))
    (fun raw ->
      let len = Bytes.length raw - Bytes.length raw mod 8 in
      let program = Program.of_bytes (Bytes.sub raw 0 len) in
      let a = Femto_vm.Verifier.verify Config.default program in
      let b = Check.check Config.default program in
      Result.is_ok a = Result.is_ok b)

let prop_random_bytes_contained =
  QCheck.Test.make ~name:"CertFC contains random bytecode" ~count:300
    QCheck.(make Gen.(map Bytes.of_string (string_size ~gen:char (int_range 8 256))))
    (fun raw ->
      let len = Bytes.length raw - Bytes.length raw mod 8 in
      let program = Program.of_bytes (Bytes.sub raw 0 len) in
      let config = { Config.default with Config.max_branches = 64 } in
      let vm = Certfc.load_unverified ~config ~helpers:no_helpers ~regions:[] program in
      match Certfc.run vm with Ok _ | Error _ -> true)

let suite =
  [
    Alcotest.test_case "basic arithmetic" `Quick test_basic_arithmetic;
    Alcotest.test_case "loop" `Quick test_loop;
    Alcotest.test_case "stack roundtrip" `Quick test_stack_roundtrip;
    Alcotest.test_case "div by zero" `Quick test_div_by_zero;
    Alcotest.test_case "memory fault" `Quick test_memory_fault;
    Alcotest.test_case "branch budget" `Quick test_branch_budget;
    Alcotest.test_case "checker rejects r10 write" `Quick test_checker_rejects_r10_write;
    Alcotest.test_case "checker rejects jump out" `Quick test_checker_rejects_jump_out;
    Alcotest.test_case "helper call" `Quick test_helper_call;
    QCheck_alcotest.to_alcotest prop_equivalence;
    QCheck_alcotest.to_alcotest prop_checker_agrees_with_verifier;
    QCheck_alcotest.to_alcotest prop_random_bytes_contained;
  ]

let () = Alcotest.run "femto_certfc" [ ("certfc", suite) ]
