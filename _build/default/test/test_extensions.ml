(* Tests for the paper's §11 extensions implemented in this repo:
   install-time transpilation (Femto_vm.Transpile) and variable-length
   instruction compression (Femto_ebpf.Compact). *)

open Femto_ebpf
module Vm = Femto_vm.Vm
module Transpile = Femto_vm.Transpile
module Fault = Femto_vm.Fault
module Config = Femto_vm.Config
module Helper = Femto_vm.Helper
module Fletcher = Femto_workloads.Fletcher

let no_helpers = Helper.create ()

(* --- transpiler --- *)

let run_transpiled ?(regions = []) ?(args = [||]) source =
  let program = Asm.assemble source in
  match Transpile.load ~helpers:no_helpers ~regions program with
  | Error fault -> Error fault
  | Ok t -> Transpile.run t ~args

let test_transpile_basic () =
  match run_transpiled "mov r0, 40\nadd r0, 2\nexit" with
  | Ok v -> Alcotest.(check int64) "result" 42L v
  | Error fault -> Alcotest.failf "fault: %s" (Fault.to_string fault)

let test_transpile_loop () =
  let source =
    "mov r0, 0\nmov r1, 1\nloop:\nadd r0, r1\nadd r1, 1\njle r1, 100, loop\nexit"
  in
  match run_transpiled source with
  | Ok v -> Alcotest.(check int64) "sum" 5050L v
  | Error fault -> Alcotest.failf "fault: %s" (Fault.to_string fault)

let test_transpile_fletcher () =
  let data = Fletcher.input_360 in
  let regions = Fletcher.regions ~ctx_vaddr:0x2000_0000L data in
  let program = Fletcher.ebpf_program () in
  match Transpile.load ~helpers:no_helpers ~regions program with
  | Error fault -> Alcotest.failf "load: %s" (Fault.to_string fault)
  | Ok t -> (
      match Transpile.run t ~args:[| 0x2000_0000L |] with
      | Ok v ->
          Alcotest.(check int64) "matches native"
            (Int64.of_int (Fletcher.checksum data)) v
      | Error fault -> Alcotest.failf "run: %s" (Fault.to_string fault))

let test_transpile_memory_fault_contained () =
  match run_transpiled "mov r1, 0\nldxdw r0, [r1]\nexit" with
  | Error (Fault.Memory_access _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected memory fault"

let test_transpile_div_by_zero () =
  match run_transpiled "mov r0, 1\nmov r1, 0\ndiv r0, r1\nexit" with
  | Error (Fault.Division_by_zero _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected div fault"

let test_transpile_branch_budget () =
  let program = Asm.assemble "loop:\nja loop" in
  let config = { Config.default with Config.max_branches = 30 } in
  match Transpile.load ~config ~helpers:no_helpers ~regions:[] program with
  | Error fault -> Alcotest.failf "load: %s" (Fault.to_string fault)
  | Ok t -> (
      match Transpile.run t with
      | Error (Fault.Branch_budget_exhausted _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected budget fault")

let test_transpile_rejects_invalid () =
  let program = Program.of_insns [ Insn.make 0xb7 ~dst:12; Insn.make 0x95 ] in
  match Transpile.load ~helpers:no_helpers ~regions:[] program with
  | Error (Fault.Invalid_register _) -> ()
  | Ok _ -> Alcotest.fail "accepted invalid program"
  | Error fault -> Alcotest.failf "wrong fault: %s" (Fault.to_string fault)

let test_transpile_helpers () =
  let helpers = Helper.create () in
  Helper.register helpers ~id:1 ~name:"triple" (fun _mem args ->
      Ok (Int64.mul args.Helper.a1 3L));
  let program = Asm.assemble "mov r1, 14\ncall 1\nexit" in
  match Transpile.load ~helpers ~regions:[] program with
  | Error fault -> Alcotest.failf "load: %s" (Fault.to_string fault)
  | Ok t -> (
      match Transpile.run t with
      | Ok v -> Alcotest.(check int64) "helper" 42L v
      | Error fault -> Alcotest.failf "run: %s" (Fault.to_string fault))

(* equivalence with the interpreter on random verified programs *)
let gen_program =
  let open QCheck.Gen in
  let reg = int_range 0 5 in
  let body =
    list_size (int_range 2 40)
      (frequency
         [
           ( 5,
             map3
               (fun op dst imm ->
                 Insn.make (Opcode.alu64 op Opcode.Src_imm) ~dst
                   ~imm:(Int32.of_int imm))
               (oneofl Opcode.[ Add; Sub; Mul; Or; And; Xor; Mov; Lsh; Rsh ])
               reg (int_range (-1000) 1000) );
           ( 3,
             map3
               (fun op dst src -> Insn.make (Opcode.alu64 op Opcode.Src_reg) ~dst ~src)
               (oneofl Opcode.[ Add; Sub; Mul; Xor; Mov ])
               reg reg );
           ( 2,
             map2
               (fun src slot -> Insn.make (Opcode.stx Opcode.DW) ~dst:10 ~src ~offset:(-8 * (slot + 1)))
               reg (int_range 0 7) );
           ( 2,
             map2
               (fun dst slot -> Insn.make (Opcode.ldx Opcode.DW) ~dst ~src:10 ~offset:(-8 * (slot + 1)))
               reg (int_range 0 7) );
           ( 1,
             map3
               (fun cond dst off -> Insn.make (Opcode.jmp cond Opcode.Src_imm) ~dst ~offset:off ~imm:3l)
               (oneofl Opcode.[ Jeq; Jne; Jgt; Jslt ])
               reg (int_range 0 3) );
         ])
  in
  QCheck.Gen.map (fun insns -> Program.of_insns (insns @ [ Insn.make Opcode.exit' ])) body

let fault_tag = function
  | Fault.Division_by_zero _ -> "div0"
  | Fault.Memory_access _ -> "mem"
  | Fault.Branch_budget_exhausted _ -> "bb"
  | Fault.Instruction_budget_exhausted _ -> "ib"
  | f -> Fault.to_string f

let prop_transpile_equals_interp =
  QCheck.Test.make ~name:"transpiled = interpreted" ~count:500
    (QCheck.make gen_program) (fun program ->
      let config = { Config.default with Config.max_branches = 128 } in
      let a = Vm.load ~config ~helpers:no_helpers ~regions:[] program in
      let b = Transpile.load ~config ~helpers:no_helpers ~regions:[] program in
      match (a, b) with
      | Error _, Error _ -> true
      | Ok _, Error _ | Error _, Ok _ -> false
      | Ok vm, Ok t -> (
          match (Vm.run vm, Transpile.run t) with
          | Ok x, Ok y -> Int64.equal x y
          | Error x, Error y -> String.equal (fault_tag x) (fault_tag y)
          | _ -> false))

(* --- compact encoding --- *)

let test_compact_roundtrip_fletcher () =
  let program = Fletcher.ebpf_program () in
  let compact = Compact.compress program in
  let restored = Compact.decompress compact in
  Alcotest.(check bool) "roundtrip" true (Program.equal program restored)

let test_compact_saves_space () =
  let stats = Compact.measure (Fletcher.ebpf_program ()) in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f < 0.7 (the paper's ~50%% estimate)" stats.Compact.ratio)
    true
    (stats.Compact.ratio < 0.7);
  let apps = Femto_workloads.Apps.[ thread_counter (); sensor_process (); coap_formatter () ] in
  List.iter
    (fun program ->
      let stats = Compact.measure program in
      Alcotest.(check bool) "every app shrinks" true (stats.Compact.ratio < 1.0))
    apps

let test_compact_worst_case_bounded () =
  (* an instruction with every field at an extreme value costs one extra
     byte over the fixed encoding *)
  let insn = Insn.make 0x61 ~dst:5 ~src:9 ~offset:(-32768) ~imm:0x7fffffffl in
  Alcotest.(check int) "worst case 9" 9 (Compact.encoded_size insn)

let test_compact_rejects_garbage () =
  (match Compact.decompress "\xff\x07" with
  | exception Compact.Malformed _ -> ()
  | _ -> Alcotest.fail "reserved bits accepted");
  match Compact.decompress "\x10" with
  | exception Compact.Malformed _ -> ()
  | _ -> Alcotest.fail "truncated accepted"

let gen_any_insn =
  let open QCheck.Gen in
  map3
    (fun (opcode, dst) (src, offset) imm ->
      Insn.make opcode ~dst ~src ~offset ~imm:(Int32.of_int imm))
    (pair (int_range 0 255) (int_range 0 15))
    (pair (int_range 0 15) (int_range (-32768) 32767))
    (int_range (-0x8000_0000) 0x7FFF_FFFF)

let prop_compact_roundtrip =
  QCheck.Test.make ~name:"compact roundtrip on arbitrary instructions" ~count:500
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 64) gen_any_insn))
    (fun insns ->
      let program = Program.of_insns insns in
      Program.equal program (Compact.decompress (Compact.compress program)))

let prop_compact_never_larger_than_9_per_insn =
  QCheck.Test.make ~name:"compact size bounds" ~count:300
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 64) gen_any_insn))
    (fun insns ->
      let program = Program.of_insns insns in
      let compact = String.length (Compact.compress program) in
      compact >= 2 * List.length insns && compact <= 9 * List.length insns)

(* A compressed image, expanded on-device, must run identically. *)
let prop_compact_execution_equivalence =
  QCheck.Test.make ~name:"compact image runs identically" ~count:200
    (QCheck.make gen_program) (fun program ->
      let config = { Config.default with Config.max_branches = 128 } in
      let restored = Compact.decompress (Compact.compress program) in
      let run p =
        match Vm.load ~config ~helpers:no_helpers ~regions:[] p with
        | Error fault -> Error (Fault.to_string fault)
        | Ok vm -> (
            match Vm.run vm with
            | Ok v -> Ok v
            | Error fault -> Error (fault_tag fault))
      in
      run program = run restored)

let suite =
  [
    Alcotest.test_case "transpile basic" `Quick test_transpile_basic;
    Alcotest.test_case "transpile loop" `Quick test_transpile_loop;
    Alcotest.test_case "transpile fletcher" `Quick test_transpile_fletcher;
    Alcotest.test_case "transpile memory fault" `Quick test_transpile_memory_fault_contained;
    Alcotest.test_case "transpile div0" `Quick test_transpile_div_by_zero;
    Alcotest.test_case "transpile branch budget" `Quick test_transpile_branch_budget;
    Alcotest.test_case "transpile rejects invalid" `Quick test_transpile_rejects_invalid;
    Alcotest.test_case "transpile helpers" `Quick test_transpile_helpers;
    QCheck_alcotest.to_alcotest prop_transpile_equals_interp;
    Alcotest.test_case "compact roundtrip fletcher" `Quick test_compact_roundtrip_fletcher;
    Alcotest.test_case "compact saves space" `Quick test_compact_saves_space;
    Alcotest.test_case "compact worst case" `Quick test_compact_worst_case_bounded;
    Alcotest.test_case "compact rejects garbage" `Quick test_compact_rejects_garbage;
    QCheck_alcotest.to_alcotest prop_compact_roundtrip;
    QCheck_alcotest.to_alcotest prop_compact_never_larger_than_9_per_insn;
    QCheck_alcotest.to_alcotest prop_compact_execution_equivalence;
  ]

let () = Alcotest.run "femto_extensions" [ ("extensions", suite) ]
