(* Malicious-tenant demo — the paper's §3 threat model, exercised.

   A series of hostile containers each attempt one escape: out-of-bounds
   loads/stores, writes to the read-only context, writes to r10, jumps out
   of the program, runaway loops, ungranted system calls, division by
   zero.  Every attempt is contained — rejected at pre-flight or faulted
   at run time — while a well-behaved neighbour container on the same hook
   keeps working and the OS state stays intact.

     dune exec examples/isolation_demo.exe *)

module Engine = Femto_core.Engine
module Container = Femto_core.Container
module Contract = Femto_core.Contract
module Hook = Femto_core.Hook

let attacks =
  [
    ( "read OS memory (wild 64-bit address)",
      "lddw r1, 0xdeadbeef0000\nldxdw r0, [r1]\nexit" );
    ( "write below the VM stack",
      "stdw [r10-4096], 1\nexit" );
    ( "write to the read-only packet context",
      "stdw [r1], 0x41414141\nexit" );
    ( "overwrite the stack pointer r10",
      "mov r10, 0\nexit" );
    ( "jump out of the program",
      "ja +100\nexit" );
    ( "jump into the middle of an lddw pair",
      "ja +1\nlddw r2, 0x1234567812345678\nexit" );
    ( "spin forever (resource exhaustion)",
      "loop:\nja loop" );
    ( "call an ungranted system call",
      "mov r1, 1\nmov r2, 2\ncall bpf_store_global\nexit" );
    ( "divide by zero",
      "mov r0, 1\nmov r1, 0\ndiv r0, r1\nexit" );
    ( "fall off the end of the program",
      "mov r0, 1\nadd r0, 1" );
  ]

let () =
  let engine = Engine.create () in
  let hook =
    Engine.register_hook engine ~uuid:"victim-hook" ~name:"packet-inspect"
      ~ctx_size:32 ~ctx_perm:Femto_vm.Region.Read_only
      ~policy:(Contract.offer [ Contract.Kv_local ]) ()
  in
  let good_tenant = Engine.add_tenant engine "good-tenant" in
  let honest =
    Container.create ~name:"honest-inspector" ~tenant:good_tenant
      ~contract:(Contract.require [])
      (Femto_ebpf.Asm.assemble "ldxb r0, [r1]\nexit")
  in
  (match Engine.attach engine ~hook_uuid:"victim-hook" honest with
  | Ok _ -> ()
  | Error e -> failwith (Engine.attach_error_to_string e));

  let mallory = Engine.add_tenant engine "mallory" in
  let rejected = ref 0 and faulted = ref 0 in
  List.iter
    (fun (label, source) ->
      let program =
        Femto_ebpf.Asm.assemble
          ~helpers:Femto_core.Syscall.resolve_name source
      in
      let attack =
        Container.create ~name:label ~tenant:mallory
          ~contract:(Contract.require [ Contract.Kv_global ])
          program
      in
      match Engine.attach engine ~hook_uuid:"victim-hook" attack with
      | Error (Engine.Verification_failed fault) ->
          incr rejected;
          Printf.printf "REJECTED at pre-flight  | %-45s | %s\n" label
            (Femto_vm.Fault.to_string fault)
      | Error e -> failwith (Engine.attach_error_to_string e)
      | Ok _ -> (
          let ctx = Bytes.of_string "packet-bytes-here" in
          match Engine.trigger engine hook ~ctx () with
          | reports -> (
              (* the attack container is last on the hook *)
              match List.rev reports with
              | { Engine.result = Error fault; _ } :: _ ->
                  incr faulted;
                  Printf.printf "FAULTED at run time     | %-45s | %s\n" label
                    (Femto_vm.Fault.to_string fault);
                  Engine.detach engine attack
              | { Engine.result = Ok v; _ } :: _ ->
                  Printf.printf "!! ESCAPED (returned %Ld) | %s\n" v label;
                  Engine.detach engine attack
              | [] -> failwith "no reports")))
    attacks;

  (* the honest container still works, on the same hook, after all that *)
  let ctx = Bytes.of_string "A-packet" in
  (match Engine.trigger engine hook ~ctx () with
  | { Engine.result = Ok v; _ } :: _ ->
      Printf.printf "\nhonest container still running fine: first ctx byte = %Ld ('%c')\n"
        v
        (Char.chr (Int64.to_int v))
  | _ -> failwith "honest container broken");
  Printf.printf "attacks: %d rejected at install, %d contained at run time, 0 escaped\n"
    !rejected !faulted;
  Printf.printf "honest container: %d executions, %d faults\n"
    (Container.executions honest) (Container.faults honest)
