examples/suit_update.mli:
