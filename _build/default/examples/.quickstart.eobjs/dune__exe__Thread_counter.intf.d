examples/thread_counter.mli:
