examples/sensor_network.ml: Bytes Femto_coap Femto_core Femto_net Femto_rtos Femto_workloads Int64 List Printf
