examples/quickstart.mli:
