examples/compile_deploy.mli:
