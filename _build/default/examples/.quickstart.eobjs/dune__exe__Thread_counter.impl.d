examples/thread_counter.ml: Bytes Femto_core Femto_rtos Femto_workloads Int32 Int64 List Printf
