examples/isolation_demo.ml: Bytes Char Femto_core Femto_ebpf Femto_vm Int64 List Printf
