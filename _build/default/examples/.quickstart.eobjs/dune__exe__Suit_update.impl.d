examples/suit_update.ml: Bytes Femto_coap Femto_core Femto_cose Femto_ebpf Femto_net Femto_rtos Femto_suit Fun Printf String
