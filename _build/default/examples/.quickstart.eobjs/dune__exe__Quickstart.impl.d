examples/quickstart.ml: Bytes Femto_core Femto_ebpf Femto_vm Printf
