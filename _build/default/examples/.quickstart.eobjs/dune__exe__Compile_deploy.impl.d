examples/compile_deploy.ml: Bytes Femto_coap Femto_core Femto_cose Femto_device Femto_ebpf Femto_flash Femto_net Femto_rtos Femto_script Femto_suit Femto_vm List Printf String
