(* Paper §8.3 — networked multi-tenant sensor node.

   Three containers, two tenants, on one simulated device:
   - tenant "os-maintainer": the §8.2 thread counter on the scheduler hook;
   - tenant "acme": a timer-triggered container that reads a (simulated)
     SAUL sensor and maintains an exponential moving average in its local
     store, publishing it to the tenant store; and a CoAP-triggered
     container that formats the published value into a CoAP response.

   A CoAP client on another node GETs /sensor/value over the simulated
   lossy 6LoWPAN network; the response payload is produced inside the
   second container through the gcoap helpers.

     dune exec examples/sensor_network.exe *)

module Engine = Femto_core.Engine
module Container = Femto_core.Container
module Contract = Femto_core.Contract
module Kernel = Femto_rtos.Kernel
module Network = Femto_net.Network
module Server = Femto_coap.Server
module Client = Femto_coap.Client
module Gcoap = Femto_coap.Gcoap
module Message = Femto_coap.Message
module Apps = Femto_workloads.Apps

let attach_or_fail engine ~hook_uuid ?extra_regions container =
  match Engine.attach engine ~hook_uuid ?extra_regions container with
  | Ok _ -> ()
  | Error e -> failwith (Engine.attach_error_to_string e)

let () =
  let kernel = Kernel.create () in
  let engine = Engine.create ~kernel () in

  (* --- device facilities: a noisy temperature sensor (centi-degrees) --- *)
  let temperature = ref 2150L in
  Engine.register_sensor engine ~id:1 (fun () ->
      (* a slow upward drift with deterministic jitter *)
      temperature := Int64.add !temperature (Int64.of_int ((Int64.to_int !temperature * 7 mod 13) - 5));
      Ok !temperature);

  (* --- hooks compiled into the firmware --- *)
  let sched_hook =
    Engine.register_hook engine ~uuid:"hook-sched" ~name:"sched-switch" ~ctx_size:16 ()
  in
  let timer_hook =
    Engine.register_hook engine ~uuid:"hook-timer" ~name:"sensor-timer" ~ctx_size:8 ()
  in
  let coap_hook =
    Engine.register_hook engine ~uuid:"hook-coap" ~name:"coap-get" ~ctx_size:16 ()
  in

  (* --- tenant 1: OS maintainer's debug counter --- *)
  let os_tenant = Engine.add_tenant engine "os-maintainer" in
  let counter =
    Container.create ~name:"thread-counter" ~tenant:os_tenant
      ~contract:(Contract.require [ Contract.Kv_global ])
      (Apps.thread_counter ())
  in
  attach_or_fail engine ~hook_uuid:"hook-sched" counter;
  Kernel.add_switch_hook kernel (fun ~prev ~next ->
      let ctx = Bytes.create 16 in
      Bytes.set_int64_le ctx 0 (Int64.of_int prev);
      Bytes.set_int64_le ctx 8 (Int64.of_int next);
      ignore (Engine.trigger engine sched_hook ~ctx ()));

  (* --- tenant 2: acme's sensor pipeline --- *)
  let acme = Engine.add_tenant engine "acme" in
  let sensor_container =
    Container.create ~name:"sensor-process" ~tenant:acme
      ~contract:
        (Contract.require [ Contract.Sensors; Contract.Kv_local; Contract.Kv_tenant ])
      (Apps.sensor_process ())
  in
  attach_or_fail engine ~hook_uuid:"hook-timer" sensor_container;

  let builder = Gcoap.create_builder () in
  Gcoap.attach_to_engine engine builder;
  let formatter =
    Container.create ~name:"coap-formatter" ~tenant:acme
      ~contract:(Contract.require [ Contract.Kv_tenant; Contract.Net_coap ])
      (Apps.coap_formatter ())
  in
  attach_or_fail engine ~hook_uuid:"hook-coap"
    ~extra_regions:[ Gcoap.pkt_region builder ]
    formatter;

  (* --- network: device node + remote client over lossy 6LoWPAN --- *)
  let network = Network.create ~kernel ~loss_permille:100 () in
  let server = Server.create ~network ~addr:1 () in

  (* --- periodic sensor sampling: fire the timer hook every 100 ms for a
     bounded demo run; every third sample pushes an RFC 7641 notification
     to observers of /sensor/value --- *)
  let samples = ref 0 in
  Kernel.every_us kernel ~us:100_000 (fun _ ->
      ignore (Engine.trigger engine timer_hook ());
      incr samples;
      if !samples mod 3 = 0 then ignore (Server.notify server ~path:"/sensor/value");
      !samples < 12);
  Server.register server ~path:"/sensor/value" (fun ~src:_ _request ->
      Gcoap.reset builder;
      match Engine.trigger engine coap_hook () with
      | [ { Engine.result = Ok _; _ } ] -> Gcoap.response builder
      | _ -> Server.respond Message.code_internal_error);
  let client = Client.create ~network ~kernel ~addr:2 in

  (* a background thread, so the scheduler hook has something to count *)
  let busy = ref 40 in
  let _worker =
    Kernel.spawn kernel ~name:"worker" (fun _ ->
        decr busy;
        if !busy > 0 then Kernel.Yield else Kernel.Finish)
  in

  (* the remote client observes the sensor: one registration, then the
     device pushes updates (RFC 7641) as samples come in *)
  let responses = ref [] in
  let _observation =
    Client.observe client ~dst:1 ~path:"/sensor/value" (fun response ->
        responses := response.Message.payload :: !responses)
  in

  ignore (Kernel.run_for_us kernel ~us:10_000_000);

  Printf.printf "simulated %.1f ms of device time\n" (Kernel.now_us kernel /. 1000.0);
  Printf.printf "sensor container ran %d times (EMA in tenant store: %Ld)\n"
    (Container.executions sensor_container)
    (Femto_core.Kvstore.fetch (Femto_core.Tenant.store acme) Apps.sensor_value_key);
  Printf.printf "thread-counter ran %d times for tenant %s\n"
    (Container.executions counter)
    (Femto_core.Tenant.id os_tenant);
  List.iteri
    (fun i payload -> Printf.printf "observe update %d -> %S\n" (i + 1) payload)
    (List.rev !responses);
  let stats = Network.stats network in
  Printf.printf "network: %d frames sent, %d lost, %d retransmissions\n"
    stats.Network.frames_sent stats.Network.frames_dropped
    (Client.retransmissions client);
  (* tenant isolation: acme's store is invisible to the os-maintainer *)
  Printf.printf "os-maintainer tenant store entries: %d (acme's data is isolated)\n"
    (Femto_core.Kvstore.length (Femto_core.Tenant.store os_tenant))
