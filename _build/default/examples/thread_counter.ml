(* Paper §8.2 — kernel debug code on a hot path.

   A container attached to the scheduler's context-switch hook counts
   every thread activation into the global key-value store, exactly as the
   paper's Listing 2 does.  The RTOS simulator runs a small multi-threaded
   workload; afterwards we read the per-thread counters back out, and show
   the hook's cost on the hot path (Table 4's experiment).

     dune exec examples/thread_counter.exe *)

module Engine = Femto_core.Engine
module Container = Femto_core.Container
module Contract = Femto_core.Contract
module Kvstore = Femto_core.Kvstore
module Kernel = Femto_rtos.Kernel
module Apps = Femto_workloads.Apps

let () =
  let kernel = Kernel.create () in
  let engine = Engine.create ~kernel () in
  let hook =
    Engine.register_hook engine ~uuid:"sched-switch-hook" ~name:"sched-switch"
      ~ctx_size:16 ()
  in

  (* the OS maintainer deploys the debug container *)
  let tenant = Engine.add_tenant engine "os-maintainer" in
  let container =
    Container.create ~name:"thread-counter" ~tenant
      ~contract:(Contract.require [ Contract.Kv_global ])
      (Apps.thread_counter ())
  in
  (match Engine.attach engine ~hook_uuid:"sched-switch-hook" container with
  | Ok _ -> ()
  | Error e -> failwith (Engine.attach_error_to_string e));

  (* the firmware launch pad: on every context switch, fill the context
     struct (previous/next tid) and fire the hook — the paper's Listing 1 *)
  Kernel.add_switch_hook kernel (fun ~prev ~next ->
      let ctx = Bytes.create 16 in
      Bytes.set_int64_le ctx 0 (Int64.of_int prev);
      Bytes.set_int64_le ctx 8 (Int64.of_int next);
      ignore (Engine.trigger engine hook ~ctx ()));

  (* a small workload: three threads of different priorities and lifetimes *)
  let spawn_worker name priority quanta =
    let remaining = ref quanta in
    Kernel.spawn kernel ~name ~priority (fun _ ->
        decr remaining;
        if !remaining > 0 then Kernel.Yield else Kernel.Finish)
  in
  let sensor_thread = spawn_worker "sensor-read" 3 8 in
  let radio_thread = spawn_worker "radio" 5 5 in
  let shell_thread = spawn_worker "shell" 7 3 in

  let quanta = Kernel.run kernel () in
  Printf.printf "ran %d thread quanta, %d context switches\n" quanta
    (Kernel.context_switches kernel);

  (* read the counters the container maintained *)
  let store = Engine.global_store engine in
  List.iter
    (fun thread ->
      let key = Int32.add Apps.thread_key_base (Int32.of_int thread.Kernel.tid) in
      Printf.printf "  %-12s (tid %d): %Ld activations\n" thread.Kernel.name
        thread.Kernel.tid (Kvstore.fetch store key))
    [ sensor_thread; radio_thread; shell_thread ];

  Printf.printf "container executed %d times, %d faults\n"
    (Container.executions container)
    (Container.faults container);

  (* the cost of having this debug code on the hot path (paper Table 4) *)
  let total_cycles = Kernel.now kernel in
  let per_switch = Int64.to_float total_cycles /. float_of_int (Kernel.context_switches kernel) in
  Printf.printf
    "average cost per context switch incl. hook + container: %.0f cycles (%.1f us @64 MHz)\n"
    per_switch (per_switch /. 64.0)
