(* Quickstart: assemble a small eBPF function, verify it, host it in a
   Femto-Container attached to a hook, trigger the hook, read the result.

     dune exec examples/quickstart.exe *)

module Engine = Femto_core.Engine
module Container = Femto_core.Container
module Contract = Femto_core.Contract

let () =
  (* 1. Write a function in eBPF assembly.  It receives a context pointer
     in r1 (here: a struct with two 64-bit ints) and returns their sum. *)
  let source =
    {|
      ldxdw r2, [r1]      ; first operand
      ldxdw r3, [r1+8]    ; second operand
      mov   r0, r2
      add   r0, r3
      exit
    |}
  in
  let program = Femto_ebpf.Asm.assemble source in
  Printf.printf "assembled: %d instructions, %d bytes of bytecode\n"
    (Femto_ebpf.Program.length program)
    (Femto_ebpf.Program.byte_size program);

  (* 2. Create the hosting engine and provision a hook (in real firmware
     hooks are compiled in at fixed spots; see the paper's Listing 1). *)
  let engine = Engine.create () in
  let hook =
    Engine.register_hook engine ~uuid:"example-hook" ~name:"quickstart"
      ~ctx_size:16 ()
  in

  (* 3. Create a container for a tenant with an (empty) contract and
     attach it.  Attach = pre-flight verification + VM instantiation. *)
  let tenant = Engine.add_tenant engine "quickstart-tenant" in
  let container =
    Container.create ~name:"adder" ~tenant ~contract:(Contract.require [])
      program
  in
  (match Engine.attach engine ~hook_uuid:"example-hook" container with
  | Ok _ -> print_endline "attached: pre-flight checks passed"
  | Error e -> failwith (Engine.attach_error_to_string e));

  (* 4. Fire the hook with a context, as firmware would on an event. *)
  let ctx = Bytes.create 16 in
  Bytes.set_int64_le ctx 0 30L;
  Bytes.set_int64_le ctx 8 12L;
  (match Engine.trigger engine hook ~ctx () with
  | [ { Engine.result = Ok value; vm_cycles; _ } ] ->
      Printf.printf "container returned %Ld (cycle model: %d cycles)\n" value
        vm_cycles
  | [ { Engine.result = Error fault; _ } ] ->
      Printf.printf "container faulted: %s\n" (Femto_vm.Fault.to_string fault)
  | _ -> print_endline "unexpected report");

  (* 5. Faults are contained: a broken program is rejected before it ever
     runs. *)
  let evil = Femto_ebpf.Asm.assemble "ja +7\nexit" in
  let evil_container =
    Container.create ~name:"evil" ~tenant ~contract:(Contract.require []) evil
  in
  match Engine.attach engine ~hook_uuid:"example-hook" evil_container with
  | Error (Engine.Verification_failed fault) ->
      Printf.printf "bad program rejected at install: %s\n"
        (Femto_vm.Fault.to_string fault)
  | Ok _ -> failwith "verifier should have rejected this"
  | Error e -> failwith (Engine.attach_error_to_string e)
