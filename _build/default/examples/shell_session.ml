(* Operator shell session on a running device.

   Boots the femto_device composition, installs two containers over the
   network, then drives the local shell the way an operator at the UART
   would: inspect containers, fire hooks, poke the key-value store,
   disassemble what is actually installed, check flash and RAM.

     dune exec examples/shell_session.exe *)

module Device = Femto_device.Device
module Shell = Femto_shell.Shell
module Kernel = Femto_rtos.Kernel
module Network = Femto_net.Network
module Client = Femto_coap.Client
module Suit = Femto_suit.Suit
module Cose = Femto_cose.Cose
module Flash = Femto_flash.Flash

let hook_a = "11110000-aaaa-4bbb-8ccc-dddddddddddd"
let hook_b = "22220000-aaaa-4bbb-8ccc-dddddddddddd"

let key = Cose.make_key ~key_id:"fleet" ~secret:"fleet secret"

let identity =
  { Device.vendor_id = "acme"; class_id = "m4"; update_key = key }

let () =
  let kernel = Kernel.create () in
  let network = Network.create ~kernel () in
  let flash = Flash.create ~page_size:256 ~pages:64 () in
  let device =
    Device.boot ~identity
      ~hooks:
        [
          Device.hook_spec ~uuid:hook_a ~name:"telemetry" ~ctx_size:16 ();
          Device.hook_spec ~uuid:hook_b ~name:"watchdog" ~ctx_size:16 ();
        ]
      ~flash ~slot_count:4 ~network ~addr:1 ()
  in
  let client = Client.create ~network ~kernel ~addr:9 in

  (* deploy two applications over the network *)
  let deploy ~sequence ~uuid source =
    let payload =
      Bytes.to_string
        (Femto_ebpf.Program.to_bytes
           (Femto_ebpf.Asm.assemble ~helpers:Femto_core.Syscall.resolve_name
              source))
    in
    let manifest =
      Suit.make ~vendor_id:"acme" ~class_id:"m4" ~sequence
        [ Suit.component_for ~storage_uuid:uuid payload ]
    in
    Client.post_blockwise client ~dst:1 ~path:"/suit/slot" ~payload (fun _ ->
        Client.post client ~dst:1 ~path:"/suit/install"
          ~payload:(Suit.sign manifest key) (fun _ -> ()));
    ignore (Kernel.run kernel ())
  in
  deploy ~sequence:1L ~uuid:hook_a
    {|
      ; count invocations in the global store, return the count
      mov   r1, 0x42
      mov   r2, r10
      sub   r2, 8
      call  bpf_fetch_global
      ldxdw r3, [r10-8]
      add   r3, 1
      mov   r1, 0x42
      mov   r2, r3
      call  bpf_store_global
      mov   r0, r3
      exit
    |};
  deploy ~sequence:2L ~uuid:hook_b "mov r0, 0xa11\nexit";

  (* the operator sits down at the console *)
  let shell = Shell.create device in
  print_endline
    (Shell.script shell
       (String.concat "\n"
          [
            "help";
            "fc list";
            Printf.sprintf "fc run %s" hook_a;
            Printf.sprintf "fc run %s" hook_a;
            Printf.sprintf "fc run %s" hook_b;
            "kv get 66"; (* 0x42: the container's counter *)
            "kv set 100 777";
            "kv get 100";
            Printf.sprintf "fc disasm %s" hook_b;
            "suit seq";
            "slots";
            "free";
            "ps";
            "uptime";
          ]))
