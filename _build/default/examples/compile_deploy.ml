(* High-level programming of containers: write MiniScript, compile to
   eBPF, deploy through the secure-update pipeline, run in the sandbox.

   The paper's §8 notes that any language able to target the eBPF ISA can
   program Femto-Containers (they use C via LLVM); this repository ships
   its own small compiler (Femto_script.To_ebpf), so the whole
   write -> compile -> sign -> install -> execute loop runs here without
   leaving OCaml.

     dune exec examples/compile_deploy.exe *)

module To_ebpf = Femto_script.To_ebpf
module Device = Femto_device.Device
module Engine = Femto_core.Engine
module Kernel = Femto_rtos.Kernel
module Network = Femto_net.Network
module Client = Femto_coap.Client
module Suit = Femto_suit.Suit
module Cose = Femto_cose.Cose
module Flash = Femto_flash.Flash

let hook = "c0de0000-0000-4000-8000-000000000001"
let key = Cose.make_key ~key_id:"fleet" ~secret:"fleet secret"

(* The application, written at high level.  It receives the hook context
   value in its first parameter and keeps a smoothed maximum in the
   global key-value store through helpers. *)
let application_source =
  {|
    fn track(ctx) {
      # the launchpad wrote the sample into the hook context
      let sample = load64(ctx);
      # running peak with decay, persisted across invocations
      let peak = bpf_fetch_peak();
      if (sample > peak) {
        peak = sample;
      } else {
        peak = peak - max(peak / 16, 1);
        peak = max(peak, 0);
      }
      bpf_store_peak(peak);
      return peak;
    }
  |}

(* Device-side helpers the script calls; ids in the device ABI space. *)
let id_fetch_peak = 0x40
let id_store_peak = 0x41

let resolve = function
  | "bpf_fetch_peak" -> Some id_fetch_peak
  | "bpf_store_peak" -> Some id_store_peak
  | name -> Femto_core.Syscall.resolve_name name

let () =
  (* 1. compile the script to eBPF *)
  let program = To_ebpf.compile_function ~helpers:resolve application_source "track" in
  Printf.printf "compiled 'track' to %d eBPF instructions (%d bytes; compact: %d bytes)\n"
    (Femto_ebpf.Program.length program)
    (Femto_ebpf.Program.byte_size program)
    (String.length (Femto_ebpf.Compact.compress program));
  print_string "--- generated code ---\n";
  print_string
    (Femto_ebpf.Disasm.to_string
       ~helper_name:(fun id ->
         if id = id_fetch_peak then Some "bpf_fetch_peak"
         else if id = id_store_peak then Some "bpf_store_peak"
         else None)
       program);
  print_string "----------------------\n";

  (* 2. boot a device whose engine offers the custom helpers *)
  let kernel = Kernel.create () in
  let network = Network.create ~kernel () in
  let flash = Flash.create ~page_size:256 ~pages:64 () in
  let device =
    Device.boot
      ~identity:{ Device.vendor_id = "acme"; class_id = "m4"; update_key = key }
      ~hooks:[ Device.hook_spec ~uuid:hook ~name:"sample" ~ctx_size:16 () ]
      ~flash ~slot_count:4 ~network ~addr:1 ()
  in
  let peak = ref 0L in
  Engine.add_helper_installer (Device.engine device) Femto_core.Contract.Time
    (fun helpers ->
      Femto_vm.Helper.register helpers ~id:id_fetch_peak ~name:"bpf_fetch_peak"
        (fun _mem _args -> Ok !peak);
      Femto_vm.Helper.register helpers ~id:id_store_peak ~name:"bpf_store_peak"
        (fun _mem args ->
          peak := args.Femto_vm.Helper.a1;
          Ok 0L));

  (* 3. deploy over the network through SUIT *)
  let client = Client.create ~network ~kernel ~addr:9 in
  let payload = Bytes.to_string (Femto_ebpf.Program.to_bytes program) in
  let manifest =
    Suit.make ~sequence:1L [ Suit.component_for ~storage_uuid:hook payload ]
  in
  Client.post_blockwise client ~dst:1 ~path:"/suit/slot" ~payload (fun _ ->
      Client.post client ~dst:1 ~path:"/suit/install"
        ~payload:(Suit.sign manifest key) (fun _ -> ()));
  ignore (Kernel.run kernel ());

  (* 4. feed samples through the hook and watch the peak tracker *)
  let samples = [ 10L; 50L; 40L; 30L; 90L; 10L; 10L; 10L; 10L ] in
  List.iter
    (fun sample ->
      match
        Engine.trigger_by_uuid (Device.engine device) ~uuid:hook
          ~ctx:
            (let b = Bytes.create 16 in
             Bytes.set_int64_le b 0 sample;
             b)
          ()
      with
      | Ok [ { Engine.result = Ok value; _ } ] ->
          Printf.printf "sample %3Ld -> peak %3Ld\n" sample value
      | Ok [ { Engine.result = Error f; _ } ] ->
          Printf.printf "fault: %s\n" (Femto_vm.Fault.to_string f)
      | _ -> print_endline "trigger failed")
    samples
