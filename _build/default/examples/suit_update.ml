(* Paper §5 — secure over-the-network update of a Femto-Container.

   The full pipeline end to end, over the simulated lossy low-power
   network:
     maintainer side: build bytecode -> SUIT manifest (storage-location
       UUID = target hook, SHA-256 digest) -> COSE_Sign1 envelope ->
       CoAP POSTs to the device;
     device side: verify signature -> check rollback counter -> check
       payload digest -> pre-flight verify bytecode -> hot-swap the
       container.

   Then the attack paths: wrong signing key, replayed (old) sequence
   number, and payload swapped in transit — each rejected at the right
   gate while the previous version keeps running.

     dune exec examples/suit_update.exe *)

module Engine = Femto_core.Engine
module Container = Femto_core.Container
module Contract = Femto_core.Contract
module Kernel = Femto_rtos.Kernel
module Network = Femto_net.Network
module Server = Femto_coap.Server
module Client = Femto_coap.Client
module Message = Femto_coap.Message
module Suit = Femto_suit.Suit
module Cose = Femto_cose.Cose

let hook_uuid = "f3de9d60-0001-4000-8000-0000000000aa"

let () =
  let kernel = Kernel.create () in
  let engine = Engine.create ~kernel () in
  let hook = Engine.register_hook engine ~uuid:hook_uuid ~name:"app" ~ctx_size:8 () in
  let tenant = Engine.add_tenant engine "acme" in

  (* version 1 of the application, installed at the factory *)
  let container =
    Container.create ~name:"app" ~tenant ~contract:(Contract.require [])
      (Femto_ebpf.Asm.assemble "mov r0, 1\nexit")
  in
  (match Engine.attach engine ~hook_uuid container with
  | Ok _ -> ()
  | Error e -> failwith (Engine.attach_error_to_string e));

  let run_version () =
    match Engine.trigger engine hook () with
    | [ { Engine.result = Ok v; _ } ] -> v
    | _ -> failwith "trigger failed"
  in
  Printf.printf "factory version returns: %Ld\n" (run_version ());

  (* --- device-side SUIT processor wired to the hosting engine --- *)
  let device_key = Cose.make_key ~key_id:"fleet-2026" ~secret:"fleet signing secret" in
  let device =
    Suit.create_device ~key:device_key
      ~install:(fun ~sequence:_ ~storage_uuid payload ->
        if not (String.equal storage_uuid hook_uuid) then Error "wrong hook"
        else
          match Femto_ebpf.Program.of_bytes (Bytes.of_string payload) with
          | exception Femto_ebpf.Program.Truncated m -> Error m
          | program -> (
              match Engine.update_program engine container program with
              | Ok () -> Ok ()
              | Error e -> Error (Engine.attach_error_to_string e)))
      ~known_storage:(fun uuid -> Engine.find_hook engine uuid <> None)
      ()
  in

  (* --- device CoAP endpoints: payload slot + manifest install --- *)
  let network = Network.create ~kernel ~loss_permille:150 () in
  let server = Server.create ~network ~addr:1 () in
  let pending_payload = ref "" in
  Server.register server ~path:"/suit/slot" (fun ~src:_ request ->
      pending_payload := request.Message.payload;
      Server.respond Message.code_changed);
  Server.register server ~path:"/suit/install" (fun ~src:_ request ->
      match
        Suit.process device ~envelope:request.Message.payload
          ~payloads:[ (hook_uuid, !pending_payload) ]
      with
      | Ok manifest ->
          Printf.printf "device: installed manifest seq %Ld\n"
            manifest.Suit.sequence;
          Server.respond Message.code_changed
      | Error e ->
          Printf.printf "device: REJECTED update (%s)\n" (Suit.error_to_string e);
          Server.respond Message.code_unauthorized);

  (* --- maintainer side --- *)
  let client = Client.create ~network ~kernel ~addr:2 in
  let deploy ~key ~sequence ~payload ~deliver_payload () =
    let program_bytes = Bytes.to_string (Femto_ebpf.Program.to_bytes payload) in
    let manifest =
      Suit.make ~sequence [ Suit.component_for ~storage_uuid:hook_uuid program_bytes ]
    in
    let envelope = Suit.sign manifest key in
    Client.post_blockwise client ~dst:1 ~path:"/suit/slot" ~payload:(deliver_payload program_bytes)
      (fun _ ->
        Client.post client ~dst:1 ~path:"/suit/install" ~payload:envelope
          (fun _ -> ()))
  in

  let v2 = Femto_ebpf.Asm.assemble "mov r0, 2\nexit" in
  let v3 = Femto_ebpf.Asm.assemble "mov r0, 3\nexit" in

  (* legitimate update to v2 *)
  deploy ~key:device_key ~sequence:1L ~payload:v2 ~deliver_payload:Fun.id ();
  ignore (Kernel.run kernel ());
  Printf.printf "after legitimate update: %Ld\n\n" (run_version ());

  (* attack 1: attacker signs with the wrong key *)
  let attacker = Cose.make_key ~key_id:"fleet-2026" ~secret:"guessed secret" in
  deploy ~key:attacker ~sequence:2L ~payload:v3 ~deliver_payload:Fun.id ();
  ignore (Kernel.run kernel ());
  Printf.printf "after attacker-signed update: %Ld (unchanged)\n\n" (run_version ());

  (* attack 2: replay of the already-installed sequence number *)
  deploy ~key:device_key ~sequence:1L ~payload:v3 ~deliver_payload:Fun.id ();
  ignore (Kernel.run kernel ());
  Printf.printf "after replayed update: %Ld (unchanged)\n\n" (run_version ());

  (* attack 3: man-in-the-middle swaps the payload in transit *)
  let evil = Bytes.to_string (Femto_ebpf.Program.to_bytes v3) in
  deploy ~key:device_key ~sequence:2L ~payload:v2
    ~deliver_payload:(fun _ -> evil)
    ();
  ignore (Kernel.run kernel ());
  Printf.printf "after payload-swapped update: %Ld (unchanged)\n\n" (run_version ());

  (* and a final legitimate update to v3 still works *)
  deploy ~key:device_key ~sequence:3L ~payload:v3 ~deliver_payload:Fun.id ();
  ignore (Kernel.run kernel ());
  Printf.printf "after final legitimate update: %Ld\n" (run_version ());
  Printf.printf "device accepted %d updates, rejected %d\n" device.Suit.accepted
    device.Suit.rejected;
  let stats = Network.stats network in
  Printf.printf "network: %d frames sent, %d lost (CoAP retransmission recovered)\n"
    stats.Network.frames_sent stats.Network.frames_dropped
