(* Full device lifecycle: factory boot -> remote discovery -> secure
   install over the network -> execution -> power cycle -> persistence.

   This drives the femto_device composition (engine + SUIT + flash slots +
   CoAP management endpoints) the way a fleet operator would:

   1. boot a device with an empty flash;
   2. discover its management endpoints (GET /.well-known/core);
   3. upload an application payload block-wise and install it with a
      signed SUIT manifest (POST /suit/slot, /suit/install);
   4. watch the container run on its hook;
   5. power-cycle the device (re-boot over the same flash);
   6. verify the container came back from the flash slot without any
      network traffic — then send a v2 update and check the rollback
      counter also survived the reboot.

     dune exec examples/device_lifecycle.exe *)

module Device = Femto_device.Device
module Engine = Femto_core.Engine
module Kernel = Femto_rtos.Kernel
module Network = Femto_net.Network
module Client = Femto_coap.Client
module Message = Femto_coap.Message
module Suit = Femto_suit.Suit
module Cose = Femto_cose.Cose
module Flash = Femto_flash.Flash

let hook_uuid = "0a6e1a80-1111-4222-8333-444444444444"
let device_addr = 1

let identity =
  {
    Device.vendor_id = "example-corp";
    class_id = "nrf52840-sensor-v2";
    update_key = Cose.make_key ~key_id:"fleet-2026" ~secret:"fleet root secret";
  }

let hooks =
  [ Device.hook_spec ~uuid:hook_uuid ~name:"periodic-task" ~ctx_size:16 () ]

let boot_device ~network ~flash =
  Device.boot ~identity ~hooks ~flash ~slot_count:4 ~network ~addr:device_addr ()

let run_app device =
  match Engine.trigger_by_uuid (Device.engine device) ~uuid:hook_uuid () with
  | Ok [ { Engine.result = Ok v; _ } ] -> Printf.sprintf "returned %Ld" v
  | Ok [] -> "no container attached"
  | Ok _ -> "unexpected reports"
  | Error e -> Engine.attach_error_to_string e

let deploy client kernel ~sequence program =
  let payload =
    Bytes.to_string (Femto_ebpf.Program.to_bytes program)
  in
  let manifest =
    Suit.make ~vendor_id:identity.Device.vendor_id
      ~class_id:identity.Device.class_id ~sequence
      [ Suit.component_for ~storage_uuid:hook_uuid payload ]
  in
  let envelope = Suit.sign manifest identity.Device.update_key in
  let outcome = ref "no answer" in
  Client.post_blockwise client ~dst:device_addr ~path:"/suit/slot" ~payload
    (fun _ ->
      Client.post client ~dst:device_addr ~path:"/suit/install"
        ~payload:envelope (fun result ->
          outcome :=
            match result with
            | Ok r when r.Message.code = Message.code_changed -> "installed"
            | Ok r -> Printf.sprintf "rejected: %s" r.Message.payload
            | Error `Timeout -> "timeout"));
  ignore (Kernel.run kernel ());
  !outcome

let () =
  let kernel = Kernel.create () in
  let network = Network.create ~kernel ~loss_permille:100 () in
  let flash = Flash.create ~page_size:256 ~pages:64 () in
  let client = Client.create ~network ~kernel ~addr:9 in

  (* 1. factory boot: empty flash, nothing attached *)
  let device = boot_device ~network ~flash in
  Printf.printf "boot #1: %s\n" (run_app device);

  (* 2. discovery *)
  let discovered = ref "" in
  Client.get_blockwise client ~dst:device_addr ~path:"/.well-known/core" (function
    | Ok r -> discovered := r.Message.payload
    | Error `Timeout -> ());
  ignore (Kernel.run kernel ());
  Printf.printf "discovered: %s\n" !discovered;

  (* 3. install v1 over the network *)
  let v1 = Femto_ebpf.Asm.assemble "mov r0, 100\nexit" in
  Printf.printf "deploy v1 (seq 1): %s\n" (deploy client kernel ~sequence:1L v1);
  Printf.printf "after install: %s\n" (run_app device);

  (* 4. power cycle: the device leaves the network and boots afresh over
     the same flash *)
  Network.remove_node network ~addr:device_addr;
  let device = boot_device ~network ~flash in
  Printf.printf "boot #2 (no network install): %s\n" (run_app device);

  (* 5. the rollback counter survived too: replaying seq 1 must fail... *)
  Printf.printf "replay v1 (seq 1): %s\n" (deploy client kernel ~sequence:1L v1);

  (* ...while a proper v2 goes through and also persists *)
  let v2 = Femto_ebpf.Asm.assemble "mov r0, 200\nexit" in
  Printf.printf "deploy v2 (seq 2): %s\n" (deploy client kernel ~sequence:2L v2);
  Printf.printf "after update: %s\n" (run_app device);

  Network.remove_node network ~addr:device_addr;
  let device = boot_device ~network ~flash in
  Printf.printf "boot #3: %s\n" (run_app device);

  (* 6. fleet introspection *)
  let listing = ref "" in
  Client.get_blockwise client ~dst:device_addr ~path:"/fc/containers" (function
    | Ok r -> listing := r.Message.payload
    | Error `Timeout -> ());
  ignore (Kernel.run kernel ());
  Printf.printf "container listing:\n  %s\n" !listing;
  Printf.printf "flash wear: %d page erases\n" (Flash.total_erases flash)
