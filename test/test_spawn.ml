(* Tests for the container image / instance split: the engine's spawn
   path (content-addressed image cache), copy-on-write local stores,
   per-instance inline-cache isolation, and the footprint gauges.

   The load-bearing properties:
   - a second spawn of the same (program, runtime, capabilities) does
     NO verification, analysis or compilation — asserted via the
     analysis.* counters and the vm.compile_ns histogram;
   - a spawned instance is observably identical to a fresh full attach
     (result, faults, stats, final kv contents) — QCheck-pinned;
   - a CoW kv view is observably an eager copy of its parent —
     QCheck-pinned against a direct-copy oracle. *)

module Engine = Femto_core.Engine
module Container = Femto_core.Container
module Hook = Femto_core.Hook
module Contract = Femto_core.Contract
module Kvstore = Femto_core.Kvstore
module Image = Femto_core.Image
module Syscall = Femto_core.Syscall
module Obs = Femto_obs.Obs
module Metrics = Femto_obs.Metrics
module Fault = Femto_vm.Fault
module Interp = Femto_vm.Interp
module Vm = Femto_vm.Vm
module Insn = Femto_ebpf.Insn
module Opcode = Femto_ebpf.Opcode
module Program = Femto_ebpf.Program

let assemble source =
  Femto_ebpf.Asm.assemble ~helpers:Syscall.resolve_name source

let make_engine ?config () = Engine.create ?config ()

let container ?(name = "c") ?(tenant_id = "acme") ?runtime engine program
    ~contract =
  let tenant = Engine.add_tenant engine tenant_id in
  Container.create ~name ~tenant ~contract ?runtime program

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e)

(* --- kvstore: CoW semantics --- *)

let test_cow_reads_fall_through () =
  let parent = Kvstore.create "base" in
  ignore (Kvstore.store parent 1l 10L);
  ignore (Kvstore.store parent 2l 20L);
  let view = Kvstore.cow ~parent "view" in
  Alcotest.(check int64) "inherited" 10L (Kvstore.fetch view 1l);
  Alcotest.(check int) "logical length" 2 (Kvstore.length view);
  Alcotest.(check int) "no delta yet" 0 (Kvstore.delta_size view);
  ignore (Kvstore.store view 1l 11L);
  Alcotest.(check int64) "shadowed" 11L (Kvstore.fetch view 1l);
  Alcotest.(check int64) "parent untouched" 10L (Kvstore.fetch parent 1l);
  Alcotest.(check int) "one delta entry" 1 (Kvstore.delta_size view)

let test_cow_overwrite_at_capacity () =
  (* Logical capacity counts the view's contents, so overwriting an
     inherited key succeeds at capacity while inserting fails — exactly
     what an eager copy would do. *)
  let parent = Kvstore.create ~max_entries:2 "base" in
  ignore (Kvstore.store parent 1l 10L);
  ignore (Kvstore.store parent 2l 20L);
  let view = Kvstore.cow ~parent "view" in
  (match Kvstore.store view 1l 99L with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "overwrite of inherited key rejected at capacity");
  (match Kvstore.store view 3l 30L with
  | Error (`Store_full "view") -> ()
  | Ok () -> Alcotest.fail "insert at capacity accepted"
  | Error (`Store_full n) -> Alcotest.fail ("wrong store reported: " ^ n));
  (* deleting then inserting frees logical room *)
  Kvstore.remove view 2l;
  match Kvstore.store view 3l 30L with
  | Ok () -> Alcotest.(check int64) "inserted" 30L (Kvstore.fetch view 3l)
  | Error _ -> Alcotest.fail "insert after remove rejected"

let test_cow_delta_quota () =
  let parent = Kvstore.create "base" in
  ignore (Kvstore.store parent 1l 10L);
  let view = Kvstore.cow ~delta_quota:1 ~parent "view" in
  (match Kvstore.store view 5l 50L with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "first delta write rejected");
  (match Kvstore.store view 6l 60L with
  | Error (`Store_full _) -> ()
  | Ok () -> Alcotest.fail "delta quota not enforced");
  (* rewriting the already-materialized key stays fine *)
  (match Kvstore.store view 5l 51L with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "rewrite of delta key rejected");
  (* deletion is infallible even at quota *)
  Kvstore.remove view 1l;
  Alcotest.(check int64) "tombstoned" 0L (Kvstore.fetch view 1l)

let test_cow_clear_hides_parent () =
  let parent = Kvstore.create "base" in
  ignore (Kvstore.store parent 1l 10L);
  let view = Kvstore.cow ~parent "view" in
  Kvstore.clear view;
  Alcotest.(check int64) "cleared" 0L (Kvstore.fetch view 1l);
  Alcotest.(check int) "empty" 0 (Kvstore.length view);
  Alcotest.(check int64) "parent intact" 10L (Kvstore.fetch parent 1l);
  ignore (Kvstore.store view 2l 2L);
  Alcotest.(check (list (pair int32 int64)))
    "only own writes" [ (2l, 2L) ] (Kvstore.bindings view)

(* QCheck: a CoW view over a frozen parent is observably identical to an
   eager copy of the parent (same results for every op, same final
   bindings), whatever the op interleaving. *)
let prop_cow_equals_eager_copy =
  let open QCheck in
  let op =
    Gen.(
      frequency
        [
          (5, map2 (fun k v -> `Store (Int32.of_int k, Int64.of_int v))
                (int_range 0 9) (int_range 0 1000));
          (2, map (fun k -> `Remove (Int32.of_int k)) (int_range 0 9));
          (3, map (fun k -> `Fetch (Int32.of_int k)) (int_range 0 9));
          (1, return `Clear);
        ])
  in
  let gen =
    Gen.(
      pair
        (list_size (int_range 0 4)
           (pair (int_range 0 9) (int_range 0 1000)))
        (list_size (int_range 0 40) op))
  in
  Test.make ~name:"CoW view = eager copy (op-for-op)" ~count:500 (make gen)
    (fun (seed, ops) ->
      let parent = Kvstore.create ~max_entries:6 "base" in
      List.iter
        (fun (k, v) ->
          ignore (Kvstore.store parent (Int32.of_int k) (Int64.of_int v)))
        seed;
      let view = Kvstore.cow ~parent "view" in
      let oracle = Kvstore.create ~max_entries:6 "oracle" in
      List.iter (fun (k, v) -> ignore (Kvstore.store oracle k v))
        (Kvstore.bindings parent);
      List.for_all
        (fun op ->
          match op with
          | `Store (k, v) -> (
              match (Kvstore.store view k v, Kvstore.store oracle k v) with
              | Ok (), Ok () -> true
              | Error _, Error _ -> true
              | _ -> false)
          | `Remove k ->
              Kvstore.remove view k;
              Kvstore.remove oracle k;
              true
          | `Fetch k -> Kvstore.fetch view k = Kvstore.fetch oracle k
          | `Clear ->
              Kvstore.clear view;
              Kvstore.clear oracle;
              true)
        ops
      && Kvstore.bindings view = Kvstore.bindings oracle
      && Kvstore.length view = Kvstore.length oracle)

(* --- engine: image cache --- *)

let kv_increment_source =
  (* local[7] <- local[7] + 1; r0 = new value *)
  {|
    mov r1, 7
    mov r2, r10
    sub r2, 8
    call bpf_fetch_local
    ldxdw r3, [r10-8]
    add r3, 1
    mov r1, 7
    mov r2, r3
    stxdw [r10-16], r3
    call bpf_store_local
    ldxdw r0, [r10-16]
    exit
  |}

let test_second_spawn_does_no_work () =
  Obs.reset ();
  Obs.set_enabled true;
  let engine = make_engine () in
  let _hook =
    Engine.register_hook engine ~uuid:"h" ~name:"spawn" ~ctx_size:16 ()
  in
  let program = assemble kv_increment_source in
  let contract = Contract.require [ Contract.Kv_local ] in
  let c1 = container ~name:"c1" engine program ~contract in
  let c2 = container ~name:"c2" engine program ~contract in
  let accepted = Obs.counter "analysis.accepted" in
  let compile_ns = Obs.histogram "vm.compile_ns" in
  ignore (ok_or_fail (Engine.spawn engine ~hook_uuid:"h" c1));
  let analyses = Metrics.value accepted in
  let compiles = Metrics.count compile_ns in
  Alcotest.(check bool) "first spawn analyzed" true (analyses > 0);
  Alcotest.(check bool) "first spawn compiled" true (compiles > 0);
  ignore (ok_or_fail (Engine.spawn engine ~hook_uuid:"h" c2));
  (* the whole point: a cache hit re-runs NOTHING expensive *)
  Alcotest.(check int) "no second analysis" analyses (Metrics.value accepted);
  Alcotest.(check int) "no second compile" compiles (Metrics.count compile_ns);
  Alcotest.(check int) "one image" 1 (Engine.images_cached engine);
  Alcotest.(check int) "hits" 1 (Metrics.value (Obs.counter "engine.image_hits"));
  Alcotest.(check int) "misses" 1
    (Metrics.value (Obs.counter "engine.image_misses"));
  Alcotest.(check int) "spawns" 2
    (Metrics.value (Obs.counter "engine.spawns"));
  Alcotest.(check int) "image records both" 2 (Engine.image_spawns engine);
  Obs.reset ();
  Obs.set_enabled false

let test_different_caps_different_image () =
  (* the helper table is part of the artifact: same program with a
     different granted capability set must NOT share an image *)
  let engine = make_engine () in
  let _h = Engine.register_hook engine ~uuid:"h" ~name:"caps" ~ctx_size:8 () in
  let program = assemble "mov r0, 1\nexit" in
  let c1 = container ~name:"c1" engine program ~contract:(Contract.require []) in
  let c2 =
    container ~name:"c2" engine program
      ~contract:(Contract.require [ Contract.Kv_local ])
  in
  ignore (ok_or_fail (Engine.spawn engine ~hook_uuid:"h" c1));
  ignore (ok_or_fail (Engine.spawn engine ~hook_uuid:"h" c2));
  Alcotest.(check int) "two images" 2 (Engine.images_cached engine)

let test_spawned_instances_isolated_kv () =
  (* Two instances of one image accumulate privately: interleaved runs
     (one hook trigger runs both, in order) must not leak writes across
     the shared image's forward stores. *)
  let engine = make_engine () in
  let hook =
    Engine.register_hook engine ~uuid:"h" ~name:"iso" ~ctx_size:16 ()
  in
  let program = assemble kv_increment_source in
  let contract = Contract.require [ Contract.Kv_local ] in
  let c1 = container ~name:"c1" engine program ~contract in
  let c2 = container ~name:"c2" engine program ~contract in
  ignore (ok_or_fail (Engine.spawn engine ~hook_uuid:"h" c1));
  ignore (ok_or_fail (Engine.spawn engine ~hook_uuid:"h" c2));
  for _ = 1 to 3 do
    ignore (Engine.trigger engine hook ())
  done;
  Alcotest.(check int64) "c1 count" 3L
    (Kvstore.fetch (Container.local_store c1) 7l);
  Alcotest.(check int64) "c2 count" 3L
    (Kvstore.fetch (Container.local_store c2) 7l);
  (* two extra runs for c1 only, via the warm fire path on its own hook *)
  Engine.detach engine c2;
  let _ = Engine.fire engine hook in
  let _ = Engine.fire engine hook in
  Alcotest.(check int64) "c1 advanced" 5L
    (Kvstore.fetch (Container.local_store c1) 7l);
  Alcotest.(check int64) "c2 frozen" 3L
    (Kvstore.fetch (Container.local_store c2) 7l);
  (* the image's frozen baseline never saw any write *)
  match Engine.find_image engine (Kvstore.name (Container.local_store c1)) with
  | Some _ -> Alcotest.fail "kv name is not an image key"
  | None ->
      List.iter
        (fun img ->
          Alcotest.(check int) "baseline untouched" 0
            (Kvstore.length (Image.baseline img)))
        (Engine.cached_images engine)

let tenant_increment_source =
  {|
    mov r1, 5
    mov r2, r10
    sub r2, 8
    call bpf_fetch_tenant
    ldxdw r3, [r10-8]
    add r3, 1
    mov r1, 5
    mov r2, r3
    call bpf_store_tenant
    mov r0, r3
    exit
  |}

let test_tenant_isolation_across_spawned_instances () =
  (* One shared image, instances in two tenants, interleaved on one
     hook: the image's tenant forward store is re-pointed before every
     run, so writes land in the running instance's tenant — never the
     neighbour's. *)
  let engine = make_engine () in
  let hook =
    Engine.register_hook engine ~uuid:"h" ~name:"tenants" ~ctx_size:16 ()
  in
  let program = assemble tenant_increment_source in
  let contract = Contract.require [ Contract.Kv_tenant ] in
  let a = container ~name:"a" ~tenant_id:"alpha" engine program ~contract in
  let b = container ~name:"b" ~tenant_id:"beta" engine program ~contract in
  let a2 = container ~name:"a2" ~tenant_id:"alpha" engine program ~contract in
  ignore (ok_or_fail (Engine.spawn engine ~hook_uuid:"h" a));
  ignore (ok_or_fail (Engine.spawn engine ~hook_uuid:"h" b));
  ignore (ok_or_fail (Engine.spawn engine ~hook_uuid:"h" a2));
  Alcotest.(check int) "one shared image" 1 (Engine.images_cached engine);
  for _ = 1 to 4 do
    ignore (Engine.trigger engine hook ())
  done;
  let tenant_count id =
    Kvstore.fetch
      (Femto_core.Tenant.store (Engine.add_tenant engine id))
      5l
  in
  (* alpha has two instances incrementing its store, beta one *)
  Alcotest.(check int64) "alpha" 8L (tenant_count "alpha");
  Alcotest.(check int64) "beta" 4L (tenant_count "beta")

let test_spawn_delta_quota_enforced () =
  (* with a zero delta quota the instance cannot materialize any private
     kv entry: the store helper fails and the run faults *)
  let engine = make_engine () in
  let hook =
    Engine.register_hook engine ~uuid:"h" ~name:"quota" ~ctx_size:16 ()
  in
  let program =
    assemble "mov r1, 1\nmov r2, 2\ncall bpf_store_local\nmov r0, 0\nexit"
  in
  let contract = Contract.require [ Contract.Kv_local ] in
  let c = container engine program ~contract in
  ignore (ok_or_fail (Engine.spawn engine ~hook_uuid:"h" ~delta_quota:0 c));
  match Engine.trigger engine hook () with
  | [ { Engine.result = Error (Fault.Helper_error _); _ } ] -> ()
  | [ { Engine.result = Ok _; _ } ] ->
      Alcotest.fail "write accepted despite zero delta quota"
  | _ -> Alcotest.fail "expected one faulting report"

(* --- per-instance inline caches (the shared-cache regression) --- *)

let test_region_caches_are_per_instance () =
  (* Two hooks, two ctx regions at the same virtual address with
     different bytes; the second spawn shares the compiled artifact.
     If the IR tier's region inline caches lived in the shared code
     (one slot per site, filled at first run), instance 2 would read
     instance 1's region — same vaddr, so the cache guard alone cannot
     tell them apart.  Private per-instance slots must keep the reads
     apart. *)
  let engine = make_engine () in
  let h1 = Engine.register_hook engine ~uuid:"h1" ~name:"r1" ~ctx_size:8 () in
  let h2 = Engine.register_hook engine ~uuid:"h2" ~name:"r2" ~ctx_size:8 () in
  let program = assemble "ldxdw r0, [r1+0]\nexit" in
  let contract = Contract.require [] in
  let c1 = container ~name:"c1" engine program ~contract in
  let c2 = container ~name:"c2" engine program ~contract in
  ignore (ok_or_fail (Engine.spawn engine ~hook_uuid:"h1" c1));
  ignore (ok_or_fail (Engine.spawn engine ~hook_uuid:"h2" c2));
  Alcotest.(check int) "shared image" 1 (Engine.images_cached engine);
  let ctx v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 v;
    b
  in
  (* warm c1's caches first, then run c2 against different backing bytes *)
  (match Engine.trigger engine h1 ~ctx:(ctx 0x1111L) () with
  | [ { Engine.result = Ok v; _ } ] -> Alcotest.(check int64) "c1" 0x1111L v
  | _ -> Alcotest.fail "c1 failed");
  (match Engine.trigger engine h2 ~ctx:(ctx 0x2222L) () with
  | [ { Engine.result = Ok v; _ } ] -> Alcotest.(check int64) "c2" 0x2222L v
  | _ -> Alcotest.fail "c2 failed");
  (* and back: c1 must still see its own region *)
  match Engine.trigger engine h1 ~ctx:(ctx 0x3333L) () with
  | [ { Engine.result = Ok v; _ } ] -> Alcotest.(check int64) "c1 again" 0x3333L v
  | _ -> Alcotest.fail "c1 rerun failed"

(* --- footprint gauges --- *)

let test_footprint_gauges () =
  Obs.reset ();
  Obs.set_enabled true;
  let engine = make_engine () in
  let _h = Engine.register_hook engine ~uuid:"h" ~name:"g" ~ctx_size:8 () in
  let program = assemble kv_increment_source in
  let contract = Contract.require [ Contract.Kv_local ] in
  for i = 1 to 8 do
    let c = container ~name:(Printf.sprintf "c%d" i) engine program ~contract in
    ignore (ok_or_fail (Engine.spawn engine ~hook_uuid:"h" c))
  done;
  let image_words, instance_words = Engine.update_footprint_gauges engine in
  Alcotest.(check bool) "image words positive" true (image_words > 0);
  Alcotest.(check bool) "instance words positive" true (instance_words > 0);
  Alcotest.(check (float 0.0)) "vm.image_words gauge"
    (float_of_int image_words)
    (Metrics.gauge_value (Obs.gauge "vm.image_words"));
  Alcotest.(check (float 0.0)) "engine.instance_words gauge"
    (float_of_int instance_words)
    (Metrics.gauge_value (Obs.gauge "engine.instance_words"));
  Obs.reset ();
  Obs.set_enabled false

(* --- QCheck: spawn = fresh full attach --- *)

(* Random verification-friendly programs (ALU, stack, control flow,
   divisions and backward jumps for fault coverage) plus a randomized
   kv-op suffix, so the equivalence also covers helper effects on the
   CoW store. *)
let gen_program_with_kv =
  let open QCheck.Gen in
  let reg = int_range 0 5 in
  let alu_imm =
    map3
      (fun op dst imm ->
        Insn.make (Opcode.alu64 op Opcode.Src_imm) ~dst ~imm:(Int32.of_int imm))
      (oneofl Opcode.[ Add; Sub; Mul; Div; Mod; Or; And; Xor; Mov; Lsh; Rsh ])
      reg (int_range (-3) 1000)
  in
  let alu_reg =
    map3
      (fun op dst src -> Insn.make (Opcode.alu64 op Opcode.Src_reg) ~dst ~src)
      (oneofl Opcode.[ Add; Sub; Mul; Div; Or; And; Xor; Mov ])
      reg reg
  in
  let stack_store =
    map2
      (fun src slot ->
        Insn.make (Opcode.stx Opcode.DW) ~dst:10 ~src ~offset:(-8 * (slot + 1)))
      reg (int_range 0 7)
  in
  let stack_load =
    map2
      (fun dst slot ->
        Insn.make (Opcode.ldx Opcode.DW) ~dst ~src:10 ~offset:(-8 * (slot + 1)))
      reg (int_range 0 7)
  in
  let forward_jump =
    map3
      (fun cond dst off ->
        Insn.make (Opcode.jmp cond Opcode.Src_imm) ~dst ~offset:off ~imm:5l)
      (oneofl Opcode.[ Jeq; Jne; Jgt; Jlt; Jsge ])
      reg (int_range 0 3)
  in
  let backward_jump =
    map3
      (fun cond dst off ->
        Insn.make (Opcode.jmp cond Opcode.Src_imm) ~dst ~offset:off ~imm:3l)
      (oneofl Opcode.[ Jne; Jgt; Jlt ])
      reg (int_range (-4) (-1))
  in
  let body =
    list_size (int_range 2 30)
      (frequency
         [
           (5, alu_imm); (4, alu_reg); (3, stack_store); (3, stack_load);
           (2, forward_jump); (1, backward_jump);
         ])
  in
  let kv_op =
    map2
      (fun key value ->
        [
          Insn.make (Opcode.alu64 Opcode.Mov Opcode.Src_imm) ~dst:1
            ~imm:(Int32.of_int key);
          Insn.make (Opcode.alu64 Opcode.Mov Opcode.Src_imm) ~dst:2
            ~imm:(Int32.of_int value);
          Insn.make Opcode.call ~imm:(Int32.of_int Syscall.id_store_local);
        ])
      (int_range 0 5) (int_range 0 100)
  in
  let kv_suffix = map List.concat (list_size (int_range 0 4) kv_op) in
  map2
    (fun insns suffix ->
      Program.of_insns (insns @ suffix @ [ Insn.make Opcode.exit' ]))
    body kv_suffix

let exact_outcome result c =
  let r =
    match result with
    | Ok v -> Printf.sprintf "ok:%Ld" v
    | Error f -> "fault:" ^ Fault.to_string f
  in
  let stats =
    match c.Container.instance with
    | Some (Container.Fc_instance vm) ->
        let s = Vm.stats vm in
        Printf.sprintf "insns=%d branches=%d helpers=%d cycles=%d"
          s.Interp.insns_executed s.Interp.branches_taken s.Interp.helper_calls
          s.Interp.cycles
    | _ -> "no-fc-instance"
  in
  let kv =
    Container.local_store c |> Kvstore.bindings
    |> List.map (fun (k, v) -> Printf.sprintf "%ld=%Ld" k v)
    |> String.concat ","
  in
  Printf.sprintf "%s %s kv[%s]" r stats kv

(* tight budgets so generated loops fault fast on every path *)
let qcheck_config =
  { Femto_vm.Config.default with Femto_vm.Config.max_branches = 256 }

let prop_spawn_equals_attach =
  QCheck.Test.make ~name:"cached spawn = fresh full attach (exact)" ~count:150
    (QCheck.make gen_program_with_kv) (fun program ->
      let contract = Contract.require [ Contract.Kv_local ] in
      let run_via kind =
        let engine = make_engine ~config:qcheck_config () in
        let hook =
          Engine.register_hook engine ~uuid:"h" ~name:"q" ~ctx_size:16 ()
        in
        let attach_one name =
          let c = container ~name engine program ~contract in
          let r =
            match kind with
            | `Attach -> Engine.attach engine ~hook_uuid:"h" c
            | `Spawn -> Engine.spawn engine ~hook_uuid:"h" c
          in
          (c, r)
        in
        (* for the spawn side, a warm-up instance populates the cache so
           the instance under test comes from a HIT; rejected programs
           must be rejected identically on both paths *)
        match kind with
        | `Attach -> (
            match attach_one "probe" with
            | _, Error e -> "rejected:" ^ Engine.attach_error_to_string e
            | probe, Ok _ -> (
                match Engine.trigger engine hook () with
                | [ { Engine.result; _ } ] -> exact_outcome result probe
                | _ -> "bad-report"))
        | `Spawn -> (
            match attach_one "warm" with
            | _, Error e -> "rejected:" ^ Engine.attach_error_to_string e
            | warm, Ok _ -> (
                Engine.detach engine warm;
                match attach_one "probe" with
                | _, Error e ->
                    "hit-rejected:" ^ Engine.attach_error_to_string e
                | probe, Ok _ -> (
                    match Engine.trigger engine hook () with
                    | [ { Engine.result; _ } ] -> exact_outcome result probe
                    | _ -> "bad-report")))
      in
      String.equal (run_via `Attach) (run_via `Spawn))

let () =
  Alcotest.run "spawn"
    [
      ( "cow-kvstore",
        [
          Alcotest.test_case "reads fall through" `Quick
            test_cow_reads_fall_through;
          Alcotest.test_case "overwrite at capacity" `Quick
            test_cow_overwrite_at_capacity;
          Alcotest.test_case "delta quota" `Quick test_cow_delta_quota;
          Alcotest.test_case "clear hides parent" `Quick
            test_cow_clear_hides_parent;
          QCheck_alcotest.to_alcotest prop_cow_equals_eager_copy;
        ] );
      ( "image-cache",
        [
          Alcotest.test_case "second spawn does no work" `Quick
            test_second_spawn_does_no_work;
          Alcotest.test_case "capability set keys the image" `Quick
            test_different_caps_different_image;
          Alcotest.test_case "instances isolated (local kv)" `Quick
            test_spawned_instances_isolated_kv;
          Alcotest.test_case "tenant isolation across instances" `Quick
            test_tenant_isolation_across_spawned_instances;
          Alcotest.test_case "delta quota enforced in helpers" `Quick
            test_spawn_delta_quota_enforced;
          Alcotest.test_case "region caches are per-instance" `Quick
            test_region_caches_are_per_instance;
          Alcotest.test_case "footprint gauges" `Quick test_footprint_gauges;
        ] );
      ( "equivalence",
        [ QCheck_alcotest.to_alcotest prop_spawn_equals_attach ] );
    ]
