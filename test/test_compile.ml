(* The closure-compiled execution tier: differential equivalence against
   the decoded interpreter and CertFC, superinstruction fusion
   correctness, warm-pool reuse, and the zero-allocation fire path. *)

module Insn = Femto_ebpf.Insn
module Opcode = Femto_ebpf.Opcode
module Program = Femto_ebpf.Program
module Asm = Femto_ebpf.Asm
module Vm = Femto_vm.Vm
module Interp = Femto_vm.Interp
module Compile = Femto_vm.Compile
module Fault = Femto_vm.Fault
module Helper = Femto_vm.Helper
module Config = Femto_vm.Config
module Analysis = Femto_analysis.Analysis
module Certfc = Femto_certfc.Certfc
module Fletcher = Femto_workloads.Fletcher
module Dagsum = Femto_workloads.Dagsum
module Loop_sum = Femto_workloads.Loop_sum
module Hotcall = Femto_workloads.Hotcall
module Engine = Femto_core.Engine
module Container = Femto_core.Container
module Contract = Femto_core.Contract
module Hook = Femto_core.Hook

let no_helpers = Helper.create ()

(* Bounded budgets so generated infinite loops fault quickly; identical
   config on every tier keeps budget faults comparable bit-for-bit. *)
let config = { Config.default with Config.max_branches = 256 }

(* --- generator: verification-friendly programs over ALU, stack and
   control flow, including divisions (zero fault) and backward jumps
   (budget faults) so fault parity is exercised, not just results. *)
let gen_program =
  let open QCheck.Gen in
  let reg = int_range 0 5 in
  let alu_imm =
    map3
      (fun op dst imm ->
        Insn.make (Opcode.alu64 op Opcode.Src_imm) ~dst ~imm:(Int32.of_int imm))
      (oneofl
         Opcode.[ Add; Sub; Mul; Div; Mod; Or; And; Xor; Mov; Arsh; Lsh; Rsh ])
      reg (int_range (-3) 1000)
  in
  let alu_reg =
    map3
      (fun op dst src -> Insn.make (Opcode.alu64 op Opcode.Src_reg) ~dst ~src)
      (oneofl Opcode.[ Add; Sub; Mul; Div; Or; And; Xor; Mov ])
      reg reg
  in
  let alu32 =
    map3
      (fun op dst imm ->
        Insn.make (Opcode.alu32 op Opcode.Src_imm) ~dst ~imm:(Int32.of_int imm))
      (oneofl Opcode.[ Add; Sub; Mul; Mov; Xor ])
      reg (int_range (-1000) 1000)
  in
  let stack_store =
    map2
      (fun src slot ->
        Insn.make (Opcode.stx Opcode.DW) ~dst:10 ~src ~offset:(-8 * (slot + 1)))
      reg (int_range 0 7)
  in
  let stack_load =
    map2
      (fun dst slot ->
        Insn.make (Opcode.ldx Opcode.DW) ~dst ~src:10 ~offset:(-8 * (slot + 1)))
      reg (int_range 0 7)
  in
  let forward_jump =
    map3
      (fun cond dst off ->
        Insn.make (Opcode.jmp cond Opcode.Src_imm) ~dst ~offset:off ~imm:5l)
      (oneofl Opcode.[ Jeq; Jne; Jgt; Jlt; Jsge ])
      reg (int_range 0 3)
  in
  let backward_jump =
    map3
      (fun cond dst off ->
        Insn.make (Opcode.jmp cond Opcode.Src_imm) ~dst ~offset:off ~imm:3l)
      (oneofl Opcode.[ Jne; Jgt; Jlt ])
      reg (int_range (-4) (-1))
  in
  let body =
    list_size (int_range 2 40)
      (frequency
         [
           (5, alu_imm); (4, alu_reg); (2, alu32); (3, stack_store);
           (3, stack_load); (2, forward_jump); (1, backward_jump);
         ])
  in
  map (fun insns -> Program.of_insns (insns @ [ Insn.make Opcode.exit' ])) body

let fault_fingerprint = function
  | Fault.Division_by_zero _ -> "div0"
  | Fault.Memory_access _ -> "mem"
  | Fault.Branch_budget_exhausted _ -> "branch-budget"
  | Fault.Instruction_budget_exhausted _ -> "insn-budget"
  | fault -> Fault.to_string fault

(* Exact outcome: the result or fault rendered verbatim, plus every
   statistics field at the stopping point. *)
let exact_outcome vm =
  let r =
    match Vm.run vm with
    | Ok v -> Printf.sprintf "ok:%Ld" v
    | Error f -> "fault:" ^ Fault.to_string f
  in
  let s = Vm.stats vm in
  Printf.sprintf "%s insns=%d branches=%d helpers=%d cycles=%d" r
    s.Interp.insns_executed s.Interp.branches_taken s.Interp.helper_calls
    s.Interp.cycles

let load_tier ~tier ?fuse program =
  Vm.load ~config ~tier ?fuse ~helpers:no_helpers ~regions:[] program

(* Compiled (checked) must be indistinguishable from the decoded
   interpreter: same r0, same fault with the same payload, same stats. *)
let prop_compiled_exact =
  QCheck.Test.make ~name:"compiled = decoded (exact fault + stats)" ~count:300
    (QCheck.make gen_program) (fun program ->
      match
        ( load_tier ~tier:Vm.Decoded program,
          load_tier ~tier:Vm.Compiled ~fuse:false program )
      with
      | Error _, Error _ -> true
      | Ok d, Ok c -> String.equal (exact_outcome d) (exact_outcome c)
      | _ -> false)

let prop_fused_exact =
  QCheck.Test.make ~name:"compiled+fused = decoded (exact fault + stats)"
    ~count:300 (QCheck.make gen_program) (fun program ->
      match
        ( load_tier ~tier:Vm.Decoded program,
          load_tier ~tier:Vm.Compiled ~fuse:true program )
      with
      | Error _, Error _ -> true
      | Ok d, Ok c -> String.equal (exact_outcome d) (exact_outcome c)
      | _ -> false)

(* Through the analyzer (proven mode, budgets compiled out on granted
   DAGs) fault payloads coarsen like the trimmed tier's, so compare
   results exactly and faults by identity class. *)
let prop_analysis_compiled_equals_decoded =
  QCheck.Test.make ~name:"analysis-compiled = decoded" ~count:300
    (QCheck.make gen_program) (fun program ->
      let a =
        Analysis.load ~config ~helpers:no_helpers ~regions:[] program
      in
      match (load_tier ~tier:Vm.Decoded program, a) with
      | Error _, Error _ -> true
      | Ok d, Ok c -> (
          match (Vm.run d, Vm.run c) with
          | Ok vd, Ok vc -> Int64.equal vd vc
          | Error fd, Error fc ->
              String.equal (fault_fingerprint fd) (fault_fingerprint fc)
          | _ -> false)
      | _ -> false)

let prop_compiled_equals_certfc =
  QCheck.Test.make ~name:"compiled = CertFC" ~count:300
    (QCheck.make gen_program) (fun program ->
      let cert = Certfc.load ~config ~helpers:no_helpers ~regions:[] program in
      match (load_tier ~tier:Vm.Compiled program, cert) with
      | Error _, Error _ -> true
      | Ok c, Ok cc -> (
          match (Vm.run c, Certfc.run cc) with
          | Ok a, Ok b -> Int64.equal a b
          | Error a, Error b ->
              String.equal (fault_fingerprint a) (fault_fingerprint b)
          | _ -> false)
      | _ -> false)

(* Pool reuse: firing the same warm instance repeatedly is
   indistinguishable from running a fresh instance each time. *)
let prop_pool_reuse_deterministic =
  QCheck.Test.make ~name:"warm pool fire is deterministic" ~count:200
    (QCheck.make gen_program) (fun program ->
      match load_tier ~tier:Vm.Compiled program with
      | Error _ -> true
      | Ok vm -> (
          let cc = Option.get (Vm.compiled vm) in
          let fresh =
            match load_tier ~tier:Vm.Compiled program with
            | Ok v -> Vm.run v
            | Error _ -> assert false
          in
          match fresh with
          | Ok expect ->
              Compile.fire ~args:[||] cc
              && Int64.equal (Compile.result cc) expect
              && Compile.fire ~args:[||] cc
              && Int64.equal (Compile.result cc) expect
          | Error _ ->
              (not (Compile.fire ~args:[||] cc))
              && not (Compile.fire ~args:[||] cc)))

(* --- goldens --- *)

let assemble = Asm.assemble

let load_ok ?tier ?fuse ?(helpers = no_helpers) ?(regions = []) program =
  match Vm.load ?tier ?fuse ~helpers ~regions program with
  | Ok vm -> vm
  | Error fault -> Alcotest.failf "load: %s" (Fault.to_string fault)

(* A fired instance must present a fully zeroed frame to the next run:
   this program returns the sum of values a previous run deliberately
   left behind in callee registers and both ends of the stack. *)
let test_pool_observes_zeroed_frame () =
  let program =
    assemble
      {|
        ldxdw r3, [r10-8]
        ldxdw r4, [r10-504]
        add   r3, r4
        add   r3, r6
        add   r3, r7
        add   r3, r8
        add   r3, r9
        mov   r0, r3
        mov   r5, -1
        stxdw [r10-8], r5
        stxdw [r10-504], r5
        mov   r6, 123
        mov   r7, 456
        mov   r8, 789
        mov   r9, 1011
        exit
      |}
  in
  let vm = load_ok ~tier:Vm.Compiled program in
  let cc = Option.get (Vm.compiled vm) in
  for i = 1 to 3 do
    Alcotest.(check bool) "fire ok" true (Compile.fire ~args:[||] cc);
    Alcotest.(check int64)
      (Printf.sprintf "run %d sees zeroed frame" i)
      0L (Compile.result cc)
  done

let test_fusion_engages_and_agrees () =
  let data = Fletcher.input_360 in
  (* dagsum via the analyzer: proven accesses and spill/reload fusion *)
  let compiled =
    match
      Analysis.load ~helpers:(Helper.create ())
        ~regions:(Dagsum.regions data) (Dagsum.ebpf_program ())
    with
    | Ok vm -> vm
    | Error fault -> Alcotest.failf "load: %s" (Fault.to_string fault)
  in
  Alcotest.(check bool) "compiled tier selected" true
    (Vm.tier compiled = Vm.Compiled);
  Alcotest.(check bool) "proofs engaged" true (Vm.proven_count compiled > 0);
  Alcotest.(check bool) "superinstructions installed" true
    (Vm.fused_count compiled > 0);
  (match Vm.run compiled ~args:[| Dagsum.data_vaddr |] with
  | Ok v -> Alcotest.(check int64) "dagsum" (Dagsum.reference data) v
  | Error fault -> Alcotest.failf "dagsum: %s" (Fault.to_string fault));
  (* loop_sum: no proofs (back edge), fusion still correct *)
  let loop =
    load_ok ~tier:Vm.Compiled ~fuse:true ~regions:(Loop_sum.regions data)
      (Loop_sum.ebpf_program ())
  in
  (match Vm.run loop ~args:[| Loop_sum.data_vaddr |] with
  | Ok v -> Alcotest.(check int64) "loop_sum" (Loop_sum.reference data) v
  | Error fault -> Alcotest.failf "loop_sum: %s" (Fault.to_string fault));
  (* hotcall: helper calls resolved at compile time *)
  let hot =
    load_ok ~tier:Vm.Compiled ~fuse:true ~helpers:(Hotcall.helpers ())
      (Hotcall.ebpf_program ())
  in
  match Vm.run hot with
  | Ok v -> Alcotest.(check int64) "hotcall" Hotcall.reference v
  | Error fault -> Alcotest.failf "hotcall: %s" (Fault.to_string fault)

(* A branch landing on the second element of a fusible pair must see the
   unfused solo closure, not the middle of a superinstruction. *)
let test_branch_into_fused_pair () =
  let program =
    assemble
      {|
        mov   r2, 1
        jeq   r2, 1, mid
        mov   r3, 100       ; first half of a fusible imm pair
        add   r3, 1
        exit
      mid:
        mov   r4, 5         ; lands between fusible neighbours
        add   r4, 2
        mov   r0, r4
        exit
      |}
  in
  let fused = load_ok ~tier:Vm.Compiled ~fuse:true program in
  let decoded = load_ok ~tier:Vm.Decoded program in
  match (Vm.run fused, Vm.run decoded) with
  | Ok a, Ok b ->
      Alcotest.(check int64) "agree" b a;
      Alcotest.(check int64) "value" 7L a
  | _ -> Alcotest.fail "branch into fused pair faulted"

(* Fault payloads survive compilation bit-for-bit in checked mode. *)
let test_fault_parity_goldens () =
  let cases =
    [
      ("div by zero", "mov r0, 10\nmov r1, 0\ndiv r0, r1\nexit");
      ("mod by zero imm", "mov r0, 10\nmod r0, 0\nexit");
      ("oob store", "mov r1, 5\nstxdw [r10-600], r1\nexit");
      ("oob load", "ldxdw r0, [r10+8]\nexit");
      ( "budget",
        "mov r2, 1\nloop:\nadd r2, 1\njne r2, 0, loop\nmov r0, 0\nexit" );
    ]
  in
  List.iter
    (fun (name, source) ->
      let program = assemble source in
      let d =
        match load_tier ~tier:Vm.Decoded program with
        | Ok vm -> vm
        | Error f -> Alcotest.failf "%s: %s" name (Fault.to_string f)
      in
      let c =
        match load_tier ~tier:Vm.Compiled ~fuse:true program with
        | Ok vm -> vm
        | Error f -> Alcotest.failf "%s: %s" name (Fault.to_string f)
      in
      Alcotest.(check string) name (exact_outcome d) (exact_outcome c))
    cases

(* --- the warm pool dispatch path allocates nothing --- *)

let test_engine_fire_zero_alloc () =
  (* No kernel: the cycle clock boxes Int64s, and the paper's claim is
     about the dispatch machinery itself. *)
  let engine = Engine.create () in
  let hook =
    Engine.register_hook engine ~uuid:"za" ~name:"zero-alloc" ~ctx_size:8 ()
  in
  let tenant = Engine.add_tenant engine "acme" in
  let container =
    Container.create ~name:"za" ~tenant ~contract:(Contract.require [])
      (assemble
         {|
           mov   r6, 7
           mov   r7, r6
           add   r7, 3
           stxdw [r10-8], r7
           ldxdw r0, [r10-8]
           add   r0, r7
           exit
         |})
  in
  (match Engine.attach engine ~hook_uuid:"za" container with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  (* the analyzer must have granted the proven compiled tier, otherwise
     checked memory accesses allocate result values *)
  (match container.Container.instance with
  | Some (Container.Fc_instance vm) ->
      Alcotest.(check bool) "compiled" true (Vm.compiled vm <> None);
      Alcotest.(check bool) "proven" true (Vm.fastpath_active vm)
  | _ -> Alcotest.fail "expected an fc instance");
  (* warm the pool: first fires pay compilation-adjacent lazy costs *)
  ignore (Engine.fire engine hook);
  ignore (Engine.fire engine hook);
  let w0 = Gc.minor_words () in
  let faults = Engine.fire engine hook in
  let delta = Gc.minor_words () -. w0 in
  Alcotest.(check int) "no faults" 0 faults;
  Alcotest.(check (float 0.0)) "zero minor allocation" 0.0 delta;
  (match container.Container.instance with
  | Some (Container.Fc_instance vm) -> (
      match Vm.compiled vm with
      | Some cc -> Alcotest.(check int64) "result" 20L (Compile.result cc)
      | None -> Alcotest.fail "compiled instance vanished")
  | _ -> Alcotest.fail "expected an fc instance");
  Alcotest.(check int) "three executions" 3 (Container.executions container)

let () =
  Alcotest.run "femto_compile"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_compiled_exact;
          QCheck_alcotest.to_alcotest prop_fused_exact;
          QCheck_alcotest.to_alcotest prop_analysis_compiled_equals_decoded;
          QCheck_alcotest.to_alcotest prop_compiled_equals_certfc;
        ] );
      ( "pool",
        [
          QCheck_alcotest.to_alcotest prop_pool_reuse_deterministic;
          Alcotest.test_case "reuse observes zeroed frame" `Quick
            test_pool_observes_zeroed_frame;
          Alcotest.test_case "engine fire allocates nothing" `Quick
            test_engine_fire_zero_alloc;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "fusion engages and agrees" `Quick
            test_fusion_engages_and_agrees;
          Alcotest.test_case "branch into fused pair" `Quick
            test_branch_into_fused_pair;
          Alcotest.test_case "fault parity goldens" `Quick
            test_fault_parity_goldens;
        ] );
    ]
