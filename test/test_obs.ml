(* Tests for the observability layer: metric semantics, ring-buffer
   wraparound, JSON round-trips, and the global facade switches. *)

module Jsonx = Femto_obs.Jsonx
module Metrics = Femto_obs.Metrics
module Trace = Femto_obs.Trace
module Obs = Femto_obs.Obs

(* --- counters / gauges --- *)

let test_counter_semantics () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "test.counter" in
  Alcotest.(check int) "starts at zero" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 40;
  Alcotest.(check int) "incr and add accumulate" 42 (Metrics.value c);
  (* lookup by the same name returns the same counter *)
  let c' = Metrics.counter reg "test.counter" in
  Metrics.incr c';
  Alcotest.(check int) "idempotent registration" 43 (Metrics.value c);
  Metrics.reset reg;
  Alcotest.(check int) "reset zeroes" 0 (Metrics.value c)

let test_metric_type_clash () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "clash");
  Alcotest.check_raises "gauge on a counter name"
    (Invalid_argument "metric clash already registered with another type")
    (fun () -> ignore (Metrics.gauge reg "clash"))

let test_gauge_semantics () =
  let reg = Metrics.create () in
  let g = Metrics.gauge reg "test.gauge" in
  Metrics.set g 3.5;
  Alcotest.(check (float 1e-9)) "set" 3.5 (Metrics.gauge_value g);
  Metrics.set g (-1.0);
  Alcotest.(check (float 1e-9)) "overwrite" (-1.0) (Metrics.gauge_value g)

(* --- histograms --- *)

let test_histogram_semantics () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "test.hist" in
  Alcotest.(check int) "empty count" 0 (Metrics.count h);
  List.iter (fun v -> Metrics.observe h v) [ 1.0; 4.0; 4.0; 1000.0 ];
  Alcotest.(check int) "count" 4 (Metrics.count h);
  Alcotest.(check (float 1e-9)) "sum" 1009.0 (Metrics.sum h);
  Alcotest.(check (float 1e-9)) "mean" 252.25 (Metrics.mean h);
  (* p50 falls in the 2^2..2^3 bucket holding the two 4.0 samples *)
  Alcotest.(check (float 1e-9)) "p50 bucket bound" 8.0 (Metrics.quantile h 0.5);
  (* quantiles clamp to the observed max *)
  Alcotest.(check (float 1e-9)) "p99 clamped to max" 1000.0
    (Metrics.quantile h 0.99)

(* --- ring buffer --- *)

let test_ring_wraparound () =
  let ring = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.record ring ~t_ns:(float_of_int i)
      (Trace.Helper_call { id = i; name = Printf.sprintf "h%d" i })
  done;
  Alcotest.(check int) "total counts every record" 10 (Trace.total ring);
  Alcotest.(check int) "dropped = total - capacity" 6 (Trace.dropped ring);
  let events = Trace.events ring in
  Alcotest.(check int) "window is capacity-sized" 4 (List.length events);
  Alcotest.(check (list int)) "oldest first, newest retained" [ 6; 7; 8; 9 ]
    (List.map (fun r -> r.Trace.seq) events);
  Trace.clear ring;
  Alcotest.(check int) "clear empties" 0 (Trace.total ring);
  Alcotest.(check int) "clear drops nothing" 0
    (List.length (Trace.events ring))

let test_ring_partial_fill () =
  let ring = Trace.create ~capacity:8 () in
  Trace.record ring ~t_ns:1.0 (Trace.Fault { kind = "k"; detail = "d" });
  Alcotest.(check int) "one event" 1 (List.length (Trace.events ring));
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped ring)

(* --- JSON --- *)

let test_json_round_trip () =
  let doc =
    Jsonx.Obj
      [
        ("name", Jsonx.String "hello \"quoted\"\nline");
        ("count", Jsonx.Int (-42));
        ("ns", Jsonx.Float 1234.5);
        ("whole", Jsonx.Float 2.0);
        ("ok", Jsonx.Bool true);
        ("nothing", Jsonx.Null);
        ("items", Jsonx.List [ Jsonx.Int 1; Jsonx.String "two"; Jsonx.Obj [] ]);
      ]
  in
  let round_tripped = Jsonx.of_string (Jsonx.to_string doc) in
  Alcotest.(check bool) "compact round-trip" true (doc = round_tripped);
  let pretty = Jsonx.of_string (Jsonx.to_string_pretty doc) in
  Alcotest.(check bool) "pretty round-trip" true (doc = pretty)

let test_json_rejects_garbage () =
  List.iter
    (fun text ->
      match Jsonx.of_string text with
      | exception Jsonx.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted %S" text)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

let test_metrics_json_shape () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "vm.test" in
  Metrics.add c 7;
  let h = Metrics.histogram reg "lat" in
  Metrics.observe h 100.0;
  let json = Jsonx.of_string (Jsonx.to_string (Metrics.to_json reg)) in
  let counter_value =
    Option.bind (Jsonx.member "vm.test" json) (fun m ->
        Option.bind (Jsonx.member "value" m) Jsonx.to_int)
  in
  Alcotest.(check (option int)) "counter exported" (Some 7) counter_value;
  let hist_count =
    Option.bind (Jsonx.member "lat" json) (fun m ->
        Option.bind (Jsonx.member "count" m) Jsonx.to_int)
  in
  Alcotest.(check (option int)) "histogram exported" (Some 1) hist_count

let test_trace_json_shape () =
  let ring = Trace.create ~capacity:2 () in
  Trace.record ring ~t_ns:5.0
    (Trace.Suit_step { step = "signature"; ok = true; ns = 12.0 });
  let json = Jsonx.of_string (Jsonx.to_string (Trace.to_json ring)) in
  let first_kind =
    Option.bind (Jsonx.member "events" json) Jsonx.to_list
    |> Option.map List.hd
    |> Fun.flip Option.bind (Jsonx.member "event")
    |> Fun.flip Option.bind (fun e -> Jsonx.to_str e)
  in
  Alcotest.(check (option string)) "event kind" (Some "suit_step") first_kind

(* --- facade --- *)

let test_facade_switches () =
  Obs.reset ();
  Obs.set_enabled true;
  Obs.set_tracing false;
  let before = Trace.total Obs.ring in
  Obs.event (fun () -> Trace.Fault { kind = "k"; detail = "" });
  Alcotest.(check int) "no event while tracing off" before (Trace.total Obs.ring);
  Obs.set_tracing true;
  Obs.event (fun () -> Trace.Fault { kind = "k"; detail = "" });
  Alcotest.(check int) "event recorded while tracing on" (before + 1)
    (Trace.total Obs.ring);
  Obs.set_tracing false;
  let snapshot = Jsonx.of_string (Jsonx.to_string (Obs.snapshot_json ())) in
  Alcotest.(check (option string)) "snapshot schema" (Some "femto-obs/1")
    (Option.bind (Jsonx.member "schema" snapshot) Jsonx.to_str)

(* --- analysis instrumentation --- *)

let test_analysis_counters_and_event () =
  Obs.reset ();
  Obs.set_enabled true;
  Obs.set_tracing true;
  let value name = Metrics.value (Obs.counter name) in
  let analyze source =
    Femto_analysis.Analysis.analyze Femto_vm.Config.default
      (Femto_ebpf.Asm.assemble source)
  in
  (* accepted straight-line program: accepted and fastpath counters bump *)
  (match analyze "mov r0, 1\nexit" with
  | Ok o ->
      Alcotest.(check bool) "accepted" true (Femto_analysis.Analysis.accepted o)
  | Error _ -> Alcotest.fail "structural fault");
  Alcotest.(check int) "analysis.accepted" 1 (value "analysis.accepted");
  Alcotest.(check int) "analysis.fastpath_eligible" 1
    (value "analysis.fastpath_eligible");
  Alcotest.(check int) "analysis.rejected untouched" 0
    (value "analysis.rejected");
  (* uninitialized-read program: rejected counter bumps *)
  ignore (analyze "mov r0, r6\nexit");
  Alcotest.(check int) "analysis.rejected" 1 (value "analysis.rejected");
  Alcotest.(check int) "accepted unchanged" 1 (value "analysis.accepted");
  (* both runs left an Analysis_done event in the ring *)
  let dones =
    List.filter
      (fun r ->
        match r.Trace.event with Trace.Analysis_done _ -> true | _ -> false)
      (Trace.events Obs.ring)
  in
  Alcotest.(check int) "two analysis_done events" 2 (List.length dones);
  (match (List.nth dones 1).Trace.event with
  | Trace.Analysis_done { errors; fastpath; _ } ->
      Alcotest.(check bool) "rejected run reports errors" true (errors > 0);
      Alcotest.(check bool) "rejected run has no fast path" false fastpath
  | _ -> assert false);
  Obs.set_tracing false;
  Obs.reset ()

(* The compiled tier and the engine's warm pool surface their work:
   compile time and fusion gains at load, pool hits/resets per fire,
   and a Tier_selected trace event naming the tier that was engaged. *)
let test_tier_and_pool_observability () =
  Obs.reset ();
  Obs.set_enabled true;
  Obs.set_tracing true;
  let module Engine = Femto_core.Engine in
  let module Container = Femto_core.Container in
  let module Contract = Femto_core.Contract in
  let source = "mov r6, 1\nadd r6, 2\nstxdw [r10-8], r6\nldxdw r0, [r10-8]\nexit" in
  let program = Femto_ebpf.Asm.assemble source in
  (match
     Femto_analysis.Analysis.load ~helpers:(Femto_vm.Helper.create ())
       ~regions:[] program
   with
  | Ok vm ->
      Alcotest.(check bool) "compiled tier" true
        (Femto_vm.Vm.tier vm = Femto_vm.Vm.Compiled)
  | Error _ -> Alcotest.fail "load");
  Alcotest.(check bool) "vm.compile_ns observed" true
    (Metrics.count (Obs.histogram "vm.compile_ns") >= 1);
  Alcotest.(check bool) "vm.fused_insns counted" true
    (Metrics.value (Obs.counter "vm.fused_insns") > 0);
  (let tiers =
     List.filter_map
       (fun r ->
         match r.Trace.event with
         | Trace.Tier_selected { tier; fused; proven } ->
             Some (tier, fused, proven)
         | _ -> None)
       (Trace.events Obs.ring)
   in
   match tiers with
   | [ (tier, fused, proven) ] ->
       Alcotest.(check string) "tier named" "compiled" tier;
       Alcotest.(check bool) "fused reported" true (fused > 0);
       Alcotest.(check bool) "proofs reported" true (proven > 0)
   | _ -> Alcotest.fail "expected exactly one tier_selected event");
  (* warm-pool fire path: every fire on a compiled instance is a pool
     hit; every fire after the first reuses (resets) the instance *)
  let engine = Engine.create () in
  let hook =
    Engine.register_hook engine ~uuid:"obs" ~name:"obs" ~ctx_size:8 ()
  in
  let tenant = Engine.add_tenant engine "acme" in
  let container =
    Container.create ~name:"obs" ~tenant ~contract:(Contract.require [])
      program
  in
  (match Engine.attach engine ~hook_uuid:"obs" container with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  Alcotest.(check int) "no faults" 0 (Engine.fire engine hook);
  Alcotest.(check int) "no faults" 0 (Engine.fire engine hook);
  Alcotest.(check int) "pool hits" 2
    (Metrics.value (Obs.counter "engine.pool_hits"));
  Alcotest.(check int) "pool resets" 1
    (Metrics.value (Obs.counter "engine.pool_resets"));
  Obs.set_tracing false;
  Obs.reset ()

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
    Alcotest.test_case "metric type clash" `Quick test_metric_type_clash;
    Alcotest.test_case "gauge semantics" `Quick test_gauge_semantics;
    Alcotest.test_case "histogram semantics" `Quick test_histogram_semantics;
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "ring partial fill" `Quick test_ring_partial_fill;
    Alcotest.test_case "json round trip" `Quick test_json_round_trip;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "metrics json shape" `Quick test_metrics_json_shape;
    Alcotest.test_case "trace json shape" `Quick test_trace_json_shape;
    Alcotest.test_case "facade switches" `Quick test_facade_switches;
    Alcotest.test_case "tier and pool observability" `Quick
      test_tier_and_pool_observability;
    Alcotest.test_case "analysis counters and event" `Quick
      test_analysis_counters_and_event;
  ]

let () = Alcotest.run "femto_obs" [ ("obs", suite) ]
