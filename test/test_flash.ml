(* Tests for the NOR-flash simulator and the slot manager. *)

module Flash = Femto_flash.Flash
module Slots = Femto_flash.Slots

let make_flash () = Flash.create ~page_size:256 ~pages:64 ()

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Flash.error_to_string e)

let slots_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Slots.error_to_string e)

(* --- flash semantics --- *)

let test_erased_flash_reads_ones () =
  let flash = make_flash () in
  let data = ok_or_fail "read" (Flash.read flash ~offset:0 ~length:16) in
  Alcotest.(check bool) "all ones" true
    (Bytes.for_all (fun c -> c = '\xff') data)

let test_write_then_read () =
  let flash = make_flash () in
  ok_or_fail "write" (Flash.write flash ~offset:10 (Bytes.of_string "hello"));
  let data = ok_or_fail "read" (Flash.read flash ~offset:10 ~length:5) in
  Alcotest.(check string) "roundtrip" "hello" (Bytes.to_string data)

let test_write_without_erase_fails () =
  let flash = make_flash () in
  ok_or_fail "first" (Flash.write flash ~offset:0 (Bytes.of_string "\x00"));
  (* writing 0xFF over 0x00 would need 0->1 transitions *)
  match Flash.write flash ~offset:0 (Bytes.of_string "\xff") with
  | Error (Flash.Write_needs_erase { page = 0 }) -> ()
  | Ok () -> Alcotest.fail "0->1 write accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Flash.error_to_string e)

let test_clearing_bits_without_erase_is_fine () =
  let flash = make_flash () in
  ok_or_fail "w1" (Flash.write flash ~offset:0 (Bytes.of_string "\xf0"));
  (* 0xf0 -> 0x30 only clears bits *)
  ok_or_fail "w2" (Flash.write flash ~offset:0 (Bytes.of_string "\x30"))

let test_erase_restores_writability () =
  let flash = make_flash () in
  ok_or_fail "w" (Flash.write flash ~offset:0 (Bytes.of_string "\x00"));
  ok_or_fail "erase" (Flash.erase_page flash ~page:0);
  ok_or_fail "rewrite" (Flash.write flash ~offset:0 (Bytes.of_string "\xaa"));
  Alcotest.(check int) "erase counted" 1 (Flash.erase_count flash 0)

let test_out_of_range () =
  let flash = make_flash () in
  (match Flash.read flash ~offset:Flash.(size flash) ~length:1 with
  | Error (Flash.Out_of_range _) -> ()
  | _ -> Alcotest.fail "OOB read accepted");
  match Flash.erase_range flash ~offset:13 ~length:256 with
  | Error (Flash.Unaligned_erase _) -> ()
  | _ -> Alcotest.fail "unaligned erase accepted"

(* --- slots --- *)

let uuid = "aaaaaaaa-bbbb-4ccc-8ddd-eeeeeeeeeeee"

let image ?(sequence = 1L) payload = { Slots.sequence; hook_uuid = uuid; payload }

let test_slot_store_load () =
  let slots = Slots.create ~flash:(make_flash ()) ~count:4 in
  slots_ok "store" (Slots.store slots ~slot:2 (image "program bytes"));
  let loaded = slots_ok "load" (Slots.load slots ~slot:2) in
  Alcotest.(check string) "payload" "program bytes" loaded.Slots.payload;
  Alcotest.(check string) "uuid" uuid loaded.Slots.hook_uuid;
  Alcotest.(check int64) "sequence" 1L loaded.Slots.sequence

let test_empty_slot () =
  let slots = Slots.create ~flash:(make_flash ()) ~count:4 in
  match Slots.load slots ~slot:0 with
  | Error (Slots.Empty_slot 0) -> ()
  | _ -> Alcotest.fail "empty slot not detected"

let test_slot_overwrite () =
  let slots = Slots.create ~flash:(make_flash ()) ~count:4 in
  slots_ok "v1" (Slots.store slots ~slot:1 (image ~sequence:1L "v1"));
  slots_ok "v2" (Slots.store slots ~slot:1 (image ~sequence:2L "version two"));
  let loaded = slots_ok "load" (Slots.load slots ~slot:1) in
  Alcotest.(check string) "latest payload" "version two" loaded.Slots.payload

let test_corruption_detected () =
  let flash = make_flash () in
  let slots = Slots.create ~flash ~count:4 in
  slots_ok "store" (Slots.store slots ~slot:0 (image "sensitive"));
  (* flip payload bits behind the manager's back (clearing bits only, so
     the raw write is accepted) *)
  ok_or_fail "tamper" (Flash.write flash ~offset:90 (Bytes.of_string "\x00"));
  match Slots.load slots ~slot:0 with
  | Error (Slots.Corrupt_slot { slot = 0; _ }) -> ()
  | Ok _ -> Alcotest.fail "tampered image loaded"
  | Error e -> Alcotest.failf "wrong error: %s" (Slots.error_to_string e)

let test_image_too_large () =
  let slots = Slots.create ~flash:(make_flash ()) ~count:4 in
  let oversize = String.make (Slots.capacity slots + 1) 'x' in
  match Slots.store slots ~slot:0 (image oversize) with
  | Error (Slots.Image_too_large _) -> ()
  | _ -> Alcotest.fail "oversized image accepted"

let test_scan_and_victim () =
  let slots = Slots.create ~flash:(make_flash ()) ~count:4 in
  slots_ok "a" (Slots.store slots ~slot:0 (image ~sequence:5L "a"));
  slots_ok "b" (Slots.store slots ~slot:3 (image ~sequence:9L "b"));
  let found = Slots.scan slots in
  Alcotest.(check int) "two images" 2 (List.length found);
  (* an empty slot is preferred as the next victim *)
  Alcotest.(check int) "victim is empty slot" 1 (Slots.victim_slot slots);
  slots_ok "c" (Slots.store slots ~slot:1 (image ~sequence:10L "c"));
  slots_ok "d" (Slots.store slots ~slot:2 (image ~sequence:11L "d"));
  (* all full: the oldest sequence (slot 0, seq 5) is the victim *)
  Alcotest.(check int) "victim is oldest" 0 (Slots.victim_slot slots)

(* --- streaming installs --- *)

let test_stream_install () =
  let slots = Slots.create ~flash:(make_flash ()) ~count:4 in
  let payload = String.init 300 (fun i -> Char.chr ((i * 13) mod 256)) in
  let stream = slots_ok "begin" (Slots.begin_stream slots ~slot:1) in
  (* chunked exactly as a block-wise transfer would deliver it *)
  let rec feed pos =
    if pos < String.length payload then begin
      let n = min 64 (String.length payload - pos) in
      slots_ok "chunk" (Slots.stream_write stream (String.sub payload pos n));
      feed (pos + n)
    end
  in
  feed 0;
  Alcotest.(check int) "written" (String.length payload)
    (Slots.stream_written stream);
  (* header not yet programmed: the slot still scans as empty *)
  Alcotest.(check int) "uncommitted scans empty" 0
    (List.length (Slots.scan slots));
  slots_ok "finish"
    (Slots.finish_stream stream ~sequence:7L ~hook_uuid:uuid
       ~digest:(Femto_crypto.Crypto.sha256 payload));
  let loaded = slots_ok "load" (Slots.load slots ~slot:1) in
  Alcotest.(check string) "payload" payload loaded.Slots.payload;
  Alcotest.(check int64) "sequence" 7L loaded.Slots.sequence;
  Alcotest.(check string) "uuid" uuid loaded.Slots.hook_uuid

let test_stream_abandoned_leaves_slot_empty () =
  (* dropping a stream mid-transfer must not leave a half image behind *)
  let slots = Slots.create ~flash:(make_flash ()) ~count:4 in
  slots_ok "existing" (Slots.store slots ~slot:0 (image ~sequence:1L "keep me"));
  let stream = slots_ok "begin" (Slots.begin_stream slots ~slot:2) in
  slots_ok "partial" (Slots.stream_write stream "half an ima");
  (* no finish_stream: simulated transfer failure *)
  (match Slots.load slots ~slot:2 with
  | Error (Slots.Empty_slot 2) -> ()
  | Ok _ -> Alcotest.fail "abandoned stream produced a loadable image"
  | Error e -> Alcotest.failf "wrong error: %s" (Slots.error_to_string e));
  Alcotest.(check int) "only the committed image scans" 1
    (List.length (Slots.scan slots))

let test_stream_capacity_enforced () =
  let slots = Slots.create ~flash:(make_flash ()) ~count:4 in
  let stream = slots_ok "begin" (Slots.begin_stream slots ~slot:0) in
  let chunk = String.make 1024 'x' in
  let rec fill () =
    match Slots.stream_write stream chunk with
    | Ok () -> fill ()
    | Error (Slots.Image_too_large _) -> ()
    | Error e -> Alcotest.failf "wrong error: %s" (Slots.error_to_string e)
  in
  fill ();
  Alcotest.(check bool) "stopped at capacity" true
    (Slots.stream_written stream <= Slots.capacity slots)

let test_stream_bad_header_rejected () =
  let slots = Slots.create ~flash:(make_flash ()) ~count:4 in
  let stream = slots_ok "begin" (Slots.begin_stream slots ~slot:0) in
  slots_ok "chunk" (Slots.stream_write stream "payload");
  (* a 37-char uuid cannot fit the fixed header field *)
  match
    Slots.finish_stream stream ~sequence:1L
      ~hook_uuid:(String.make 37 'u')
      ~digest:(Femto_crypto.Crypto.sha256 "payload")
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "oversized uuid accepted"

let test_persistence_across_reboot () =
  (* store a container image, simulate a reboot by re-creating the slot
     manager over the same flash, verify the engine can re-attach it *)
  let flash = make_flash () in
  let slots = Slots.create ~flash ~count:4 in
  let program = Femto_ebpf.Asm.assemble "mov r0, 77\nexit" in
  let payload = Bytes.to_string (Femto_ebpf.Program.to_bytes program) in
  slots_ok "store" (Slots.store slots ~slot:0 { Slots.sequence = 3L; hook_uuid = uuid; payload });
  (* --- reboot --- *)
  let slots' = Slots.create ~flash ~count:4 in
  let engine = Femto_core.Engine.create () in
  let _hook =
    Femto_core.Engine.register_hook engine ~uuid ~name:"restored" ~ctx_size:8 ()
  in
  let tenant = Femto_core.Engine.add_tenant engine "acme" in
  List.iter
    (fun (_, restored) ->
      let program =
        Femto_ebpf.Program.of_bytes (Bytes.of_string restored.Slots.payload)
      in
      let container =
        Femto_core.Container.create ~name:"restored" ~tenant
          ~contract:(Femto_core.Contract.require [])
          program
      in
      match
        Femto_core.Engine.attach engine ~hook_uuid:restored.Slots.hook_uuid
          container
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Femto_core.Engine.attach_error_to_string e))
    (Slots.scan slots');
  match Femto_core.Engine.trigger_by_uuid engine ~uuid () with
  | Ok [ { Femto_core.Engine.result = Ok 77L; _ } ] -> ()
  | _ -> Alcotest.fail "restored container did not run"

let prop_slot_roundtrip =
  QCheck.Test.make ~name:"slot store/load roundtrip" ~count:100
    QCheck.(make Gen.(pair (string_size ~gen:char (int_range 0 512)) small_nat))
    (fun (payload, seq) ->
      let slots = Slots.create ~flash:(make_flash ()) ~count:4 in
      match
        Slots.store slots ~slot:0
          { Slots.sequence = Int64.of_int seq; hook_uuid = uuid; payload }
      with
      | Error _ -> String.length payload > Slots.capacity slots
      | Ok () -> (
          match Slots.load slots ~slot:0 with
          | Ok loaded -> String.equal loaded.Slots.payload payload
          | Error _ -> false))

let suite =
  [
    Alcotest.test_case "erased reads ones" `Quick test_erased_flash_reads_ones;
    Alcotest.test_case "write/read" `Quick test_write_then_read;
    Alcotest.test_case "write needs erase" `Quick test_write_without_erase_fails;
    Alcotest.test_case "clearing bits ok" `Quick test_clearing_bits_without_erase_is_fine;
    Alcotest.test_case "erase restores" `Quick test_erase_restores_writability;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
    Alcotest.test_case "slot store/load" `Quick test_slot_store_load;
    Alcotest.test_case "empty slot" `Quick test_empty_slot;
    Alcotest.test_case "slot overwrite" `Quick test_slot_overwrite;
    Alcotest.test_case "corruption detected" `Quick test_corruption_detected;
    Alcotest.test_case "image too large" `Quick test_image_too_large;
    Alcotest.test_case "scan and victim" `Quick test_scan_and_victim;
    Alcotest.test_case "stream install" `Quick test_stream_install;
    Alcotest.test_case "stream abandoned" `Quick test_stream_abandoned_leaves_slot_empty;
    Alcotest.test_case "stream capacity" `Quick test_stream_capacity_enforced;
    Alcotest.test_case "stream bad header" `Quick test_stream_bad_header_rejected;
    Alcotest.test_case "persistence across reboot" `Quick test_persistence_across_reboot;
    QCheck_alcotest.to_alcotest prop_slot_roundtrip;
  ]

let () = Alcotest.run "femto_flash" [ ("flash", suite) ]
