(* Integration tests: the full stacks wired together.

   - SUIT update over CoAP through the lossy simulated network into the
     hosting engine (the paper's §5 pipeline), including attack rejection.
   - The §8.3 multi-tenant deployment: timer-driven sensor container
     publishing through the tenant store, CoAP-triggered formatter
     answering a remote client.
   - The experiment harness itself (every table/figure entry runs). *)

module Engine = Femto_core.Engine
module Container = Femto_core.Container
module Contract = Femto_core.Contract
module Kernel = Femto_rtos.Kernel
module Network = Femto_net.Network
module Server = Femto_coap.Server
module Client = Femto_coap.Client
module Message = Femto_coap.Message
module Gcoap = Femto_coap.Gcoap
module Suit = Femto_suit.Suit
module Cose = Femto_cose.Cose
module Apps = Femto_workloads.Apps

let attach_or_fail engine ~hook_uuid ?extra_regions container =
  match Engine.attach engine ~hook_uuid ?extra_regions container with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e)

(* --- secure update over the network --- *)

type update_rig = {
  kernel : Kernel.t;
  engine : Engine.t;
  hook : Femto_core.Hook.t;
  container : Container.t;
  device : Suit.device;
  client : Client.t;
  network : Network.t;
  key : Cose.key;
}

let hook_uuid = "11111111-2222-4333-8444-555555555555"

let make_update_rig ?(loss_permille = 200) () =
  let kernel = Kernel.create () in
  let engine = Engine.create ~kernel () in
  let hook = Engine.register_hook engine ~uuid:hook_uuid ~name:"app" ~ctx_size:8 () in
  let tenant = Engine.add_tenant engine "acme" in
  let container =
    Container.create ~name:"app" ~tenant ~contract:(Contract.require [])
      (Femto_ebpf.Asm.assemble "mov r0, 1\nexit")
  in
  attach_or_fail engine ~hook_uuid container;
  let key = Cose.make_key ~key_id:"k" ~secret:"fleet secret" in
  let device =
    Suit.create_device ~key
      ~install:(fun ~sequence:_ ~storage_uuid payload ->
        if storage_uuid <> hook_uuid then Error "wrong hook"
        else
          match Femto_ebpf.Program.of_bytes (Bytes.of_string payload) with
          | exception Femto_ebpf.Program.Truncated m -> Error m
          | program ->
              Result.map_error Engine.attach_error_to_string
                (Engine.update_program engine container program))
      ~known_storage:(fun uuid -> Engine.find_hook engine uuid <> None)
      ()
  in
  let network = Network.create ~kernel ~loss_permille () in
  let server = Server.create ~network ~addr:1 () in
  let pending = ref "" in
  Server.register server ~path:"/suit/slot" (fun ~src:_ request ->
      pending := request.Message.payload;
      Server.respond Message.code_changed);
  Server.register server ~path:"/suit/install" (fun ~src:_ request ->
      match
        Suit.process device ~envelope:request.Message.payload
          ~payloads:[ (hook_uuid, !pending) ]
      with
      | Ok _ -> Server.respond Message.code_changed
      | Error _ -> Server.respond Message.code_unauthorized);
  let client = Client.create ~network ~kernel ~addr:2 in
  { kernel; engine; hook; container; device; client; network; key }

let current_version rig =
  match Engine.trigger rig.engine rig.hook () with
  | [ { Engine.result = Ok v; _ } ] -> v
  | _ -> Alcotest.fail "trigger failed"

let deploy rig ~key ~sequence program ~mitm =
  let bytes = Bytes.to_string (Femto_ebpf.Program.to_bytes program) in
  let manifest =
    Suit.make ~sequence [ Suit.component_for ~storage_uuid:hook_uuid bytes ]
  in
  let envelope = Suit.sign manifest key in
  let response_code = ref None in
  Client.post_blockwise rig.client ~dst:1 ~path:"/suit/slot" ~payload:(mitm bytes) (fun _ ->
      Client.post rig.client ~dst:1 ~path:"/suit/install" ~payload:envelope
        (fun result ->
          match result with
          | Ok response -> response_code := Some response.Message.code
          | Error `Timeout -> ()));
  ignore (Kernel.run rig.kernel ());
  !response_code

let test_update_happy_path () =
  let rig = make_update_rig () in
  Alcotest.(check int64) "factory" 1L (current_version rig);
  let code =
    deploy rig ~key:rig.key ~sequence:1L
      (Femto_ebpf.Asm.assemble "mov r0, 2\nexit")
      ~mitm:Fun.id
  in
  Alcotest.(check bool) "2.04 changed" true (code = Some Message.code_changed);
  Alcotest.(check int64) "updated" 2L (current_version rig);
  Alcotest.(check int) "accepted" 1 rig.device.Suit.accepted

let test_update_attacks_rejected () =
  let rig = make_update_rig () in
  ignore
    (deploy rig ~key:rig.key ~sequence:1L
       (Femto_ebpf.Asm.assemble "mov r0, 2\nexit")
       ~mitm:Fun.id);
  (* wrong key *)
  let bad_key = Cose.make_key ~key_id:"k" ~secret:"wrong" in
  let code =
    deploy rig ~key:bad_key ~sequence:2L
      (Femto_ebpf.Asm.assemble "mov r0, 666\nexit")
      ~mitm:Fun.id
  in
  Alcotest.(check bool) "4.01" true (code = Some Message.code_unauthorized);
  (* replay *)
  let code =
    deploy rig ~key:rig.key ~sequence:1L
      (Femto_ebpf.Asm.assemble "mov r0, 666\nexit")
      ~mitm:Fun.id
  in
  Alcotest.(check bool) "replay rejected" true (code = Some Message.code_unauthorized);
  (* payload swap in transit *)
  let evil =
    Bytes.to_string
      (Femto_ebpf.Program.to_bytes (Femto_ebpf.Asm.assemble "mov r0, 666\nexit"))
  in
  let code =
    deploy rig ~key:rig.key ~sequence:2L
      (Femto_ebpf.Asm.assemble "mov r0, 3\nexit")
      ~mitm:(fun _ -> evil)
  in
  Alcotest.(check bool) "swap rejected" true (code = Some Message.code_unauthorized);
  (* a broken program passes SUIT but is rejected by the pre-flight
     verifier; the device must not bump its sequence number *)
  let code =
    deploy rig ~key:rig.key ~sequence:2L
      (Femto_ebpf.Program.of_insns [ Femto_ebpf.Insn.make 0xb7 ])
      ~mitm:Fun.id
  in
  Alcotest.(check bool) "verifier rejection" true (code = Some Message.code_unauthorized);
  Alcotest.(check int64) "sequence unchanged" 1L rig.device.Suit.sequence;
  (* device still runs version 2, and a clean update still works *)
  Alcotest.(check int64) "v2 intact" 2L (current_version rig);
  let code =
    deploy rig ~key:rig.key ~sequence:3L
      (Femto_ebpf.Asm.assemble "mov r0, 3\nexit")
      ~mitm:Fun.id
  in
  Alcotest.(check bool) "final ok" true (code = Some Message.code_changed);
  Alcotest.(check int64) "v3" 3L (current_version rig);
  Alcotest.(check int) "rejections counted" 4 rig.device.Suit.rejected

let test_update_survives_heavy_loss () =
  let rig = make_update_rig ~loss_permille:350 () in
  let code =
    deploy rig ~key:rig.key ~sequence:1L
      (Femto_ebpf.Asm.assemble "mov r0, 9\nexit")
      ~mitm:Fun.id
  in
  (* with 35 % frame loss the confirmable retransmission should still
     usually get the two POSTs through *)
  match code with
  | Some code when code = Message.code_changed ->
      Alcotest.(check int64) "updated" 9L (current_version rig);
      Alcotest.(check bool) "retransmissions happened" true
        (Client.retransmissions rig.client > 0)
  | Some _ | None ->
      (* a full timeout is possible at this loss rate; the device must
         then still be on version 1, never in a half-updated state *)
      Alcotest.(check int64) "unchanged" 1L (current_version rig)

(* --- §8.3 multi-tenant CoAP pipeline --- *)

let test_sensor_pipeline_end_to_end () =
  let kernel = Kernel.create () in
  let engine = Engine.create ~kernel () in
  Engine.register_sensor engine ~id:1 (fun () -> Ok 2372L);
  let timer_hook =
    Engine.register_hook engine ~uuid:"t" ~name:"timer" ~ctx_size:8 ()
  in
  let coap_hook =
    Engine.register_hook engine ~uuid:"c" ~name:"coap" ~ctx_size:16 ()
  in
  let acme = Engine.add_tenant engine "acme" in
  let sensor =
    Container.create ~name:"sensor" ~tenant:acme
      ~contract:(Contract.require [ Contract.Sensors; Contract.Kv_local; Contract.Kv_tenant ])
      (Apps.sensor_process ())
  in
  attach_or_fail engine ~hook_uuid:"t" sensor;
  let builder = Gcoap.create_builder () in
  Gcoap.attach_to_engine engine builder;
  let formatter =
    Container.create ~name:"fmt" ~tenant:acme
      ~contract:(Contract.require [ Contract.Kv_tenant; Contract.Net_coap ])
      (Apps.coap_formatter ())
  in
  attach_or_fail engine ~hook_uuid:"c"
    ~extra_regions:[ Gcoap.pkt_region builder ] formatter;
  let network = Network.create ~kernel () in
  let server = Server.create ~network ~addr:1 () in
  Server.register server ~path:"/sensor/value" (fun ~src:_ _ ->
      Gcoap.reset builder;
      match Engine.trigger engine coap_hook () with
      | [ { Engine.result = Ok _; _ } ] -> Gcoap.response builder
      | _ -> Server.respond Message.code_internal_error);
  let client = Client.create ~network ~kernel ~addr:2 in
  (* sample the sensor twice, then query *)
  ignore (Engine.trigger engine timer_hook ());
  ignore (Engine.trigger engine timer_hook ());
  let payload = ref None in
  let format = ref None in
  Client.get client ~dst:1 ~path:"/sensor/value" (function
    | Ok response ->
        payload := Some response.Message.payload;
        format := Message.content_format response
    | Error `Timeout -> ());
  ignore (Kernel.run kernel ());
  Alcotest.(check (option string)) "payload is the EMA" (Some "2372") !payload;
  Alcotest.(check (option int)) "text/plain" (Some 0) !format

(* --- experiment harness smoke --- *)

let with_quiet_stdout f =
  (* the experiment entries print tables; keep test output readable *)
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close devnull)
    f

let test_experiments_run () =
  with_quiet_stdout (fun () ->
      Femto_eval.Experiments.table1 ();
      Femto_eval.Experiments.figure2 ();
      Femto_eval.Experiments.table3 ();
      Femto_eval.Experiments.figure7 ();
      Femto_eval.Experiments.figure9 ();
      Femto_eval.Experiments.table4 ();
      Femto_eval.Experiments.multi_instance ();
      Femto_eval.Experiments.ablation_compact ();
      Femto_eval.Experiments.discussion_energy ())

let test_table4_shape () =
  (* Table 4's shape, asserted: empty-hook dispatch is ~100 ticks and the
     hosted app costs at least 5x more *)
  with_quiet_stdout (fun () -> ());
  List.iter
    (fun platform ->
      let fixture = Femto_eval.Setup.make_fixture ~platform () in
      let before = Kernel.now fixture.Femto_eval.Setup.kernel in
      ignore
        (Engine.trigger fixture.Femto_eval.Setup.engine
           fixture.Femto_eval.Setup.bench_hook ());
      let empty =
        Int64.to_int (Int64.sub (Kernel.now fixture.Femto_eval.Setup.kernel) before)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s empty hook ~100 ticks" platform.Femto_platform.Platform.name)
        true
        (empty >= 50 && empty <= 200);
      let fixture2 = Femto_eval.Setup.make_fixture ~platform () in
      let _container, trigger =
        Femto_eval.Setup.thread_counter_container fixture2
      in
      let before = Kernel.now fixture2.Femto_eval.Setup.kernel in
      ignore (trigger ());
      let with_app =
        Int64.to_int (Int64.sub (Kernel.now fixture2.Femto_eval.Setup.kernel) before)
      in
      Alcotest.(check bool) "app >= 5x empty" true (with_app >= 5 * empty))
    Femto_platform.Platform.all

let test_fc_rbpf_within_few_percent () =
  (* Figure 8's headline: the Femto-Container extensions add negligible
     overhead over plain rBPF (cycle model) *)
  let fixture_fc = Femto_eval.Setup.make_fixture () in
  let c_fc, t_fc = Femto_eval.Setup.fletcher_container ~runtime:Femto_platform.Platform.Fc fixture_fc in
  ignore (t_fc ());
  let fixture_rbpf = Femto_eval.Setup.make_fixture () in
  let c_rbpf, t_rbpf =
    Femto_eval.Setup.fletcher_container ~runtime:Femto_platform.Platform.Rbpf fixture_rbpf
  in
  ignore (t_rbpf ());
  let fc = float_of_int (Container.last_run_cycles c_fc) in
  let rbpf = float_of_int (Container.last_run_cycles c_rbpf) in
  Alcotest.(check bool) "within 5%" true (Float.abs (fc -. rbpf) /. rbpf < 0.05)

let test_certfc_slower_than_fc () =
  let fixture_fc = Femto_eval.Setup.make_fixture () in
  let c_fc, t_fc = Femto_eval.Setup.fletcher_container ~runtime:Femto_platform.Platform.Fc fixture_fc in
  ignore (t_fc ());
  let fixture_cert = Femto_eval.Setup.make_fixture () in
  let c_cert, t_cert =
    Femto_eval.Setup.fletcher_container ~runtime:Femto_platform.Platform.Certfc fixture_cert
  in
  ignore (t_cert ());
  Alcotest.(check bool) "certfc at least 1.5x fc cycles" true
    (Container.last_run_cycles c_cert > 3 * Container.last_run_cycles c_fc / 2)

let test_hook_fire_records_event () =
  let module Obs = Femto_obs.Obs in
  let module Ometrics = Femto_obs.Metrics in
  let module Otrace = Femto_obs.Trace in
  let kernel = Kernel.create () in
  let engine = Engine.create ~kernel () in
  let uuid = "99999999-2222-4333-8444-555555555555" in
  let hook = Engine.register_hook engine ~uuid ~name:"obs-hook" ~ctx_size:8 () in
  let tenant = Engine.add_tenant engine "acme" in
  let container =
    Container.create ~name:"obs-app" ~tenant ~contract:(Contract.require [])
      (Femto_ebpf.Asm.assemble "mov r0, 7\nexit")
  in
  attach_or_fail engine ~hook_uuid:uuid container;
  Obs.set_enabled true;
  Obs.set_tracing true;
  let fires = Ometrics.counter Obs.registry "engine.hook_fires" in
  let before_fires = Ometrics.value fires in
  let before_seq = Otrace.total Obs.ring in
  (match Engine.trigger engine hook () with
  | [ { Engine.result = Ok 7L; _ } ] -> ()
  | _ -> Alcotest.fail "trigger failed");
  Obs.set_tracing false;
  Alcotest.(check int) "hook fire counted" (before_fires + 1)
    (Ometrics.value fires);
  let fired =
    List.exists
      (fun r ->
        r.Otrace.seq >= before_seq
        &&
        match r.Otrace.event with
        | Otrace.Hook_fired { name = "obs-hook"; containers = 1; _ } -> true
        | _ -> false)
      (Otrace.events Obs.ring)
  in
  Alcotest.(check bool) "hook fire traced" true fired

let suite =
  [
    Alcotest.test_case "suit update happy path" `Quick test_update_happy_path;
    Alcotest.test_case "suit attacks rejected" `Quick test_update_attacks_rejected;
    Alcotest.test_case "suit under heavy loss" `Quick test_update_survives_heavy_loss;
    Alcotest.test_case "sensor pipeline end to end" `Quick test_sensor_pipeline_end_to_end;
    Alcotest.test_case "experiments run" `Slow test_experiments_run;
    Alcotest.test_case "table4 shape" `Quick test_table4_shape;
    Alcotest.test_case "fc ~ rbpf cycles" `Quick test_fc_rbpf_within_few_percent;
    Alcotest.test_case "certfc slower" `Quick test_certfc_slower_than_fc;
    Alcotest.test_case "hook fire records event" `Quick
      test_hook_fire_records_event;
  ]

let () = Alcotest.run "femto_integration" [ ("integration", suite) ]
