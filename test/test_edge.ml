(* Tests for the socket edge (PR 10): the Unix-UDP transport in front of
   the CoAP server — real datagrams over loopback, the zero-copy decode
   path, block-wise uploads through a socket, and observe fan-out to a
   socket peer. *)

module Message = Femto_coap.Message
module Server = Femto_coap.Server
module Transport = Femto_coap.Transport

(* --- codec slices (the zero-alloc receive path) --- *)

let test_decode_sub_matches_decode () =
  let m =
    Message.make ~token:"abcd"
      ~options:(Message.options_of_path "/a/b" @ [ Message.etag_option "ETAG" ])
      ~payload:"hello" ~code:Message.code_content ~message_id:777 ()
  in
  let wire = Message.encode m in
  (* embed the wire form mid-buffer, as the reused recv buffer holds it *)
  let buf = Bytes.make (Bytes.length wire + 7) '\xff' in
  Bytes.blit wire 0 buf 3 (Bytes.length wire);
  let parsed = Message.decode_sub buf ~off:3 ~len:(Bytes.length wire) in
  Alcotest.(check bool) "slice parse equals whole-buffer parse" true
    (Message.equal parsed (Message.decode wire))

let test_decode_sub_rejects_bad_bounds () =
  let wire = Message.encode (Message.make ~code:Message.code_get ~message_id:1 ()) in
  let bad off len =
    match Message.decode_sub wire ~off ~len with
    | exception Message.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "negative offset" true (bad (-1) 4);
  Alcotest.(check bool) "length past end" true (bad 0 (Bytes.length wire + 1))

let test_encode_into_appends () =
  let m1 = Message.make ~payload:"x" ~code:Message.code_content ~message_id:1 () in
  let m2 = Message.make ~payload:"y" ~code:Message.code_content ~message_id:2 () in
  let buf = Buffer.create 64 in
  Message.encode_into buf m1;
  let split = Buffer.length buf in
  Message.encode_into buf m2;
  let both = Buffer.to_bytes buf in
  Alcotest.(check bytes) "first message intact"
    (Message.encode m1) (Bytes.sub both 0 split);
  Alcotest.(check bytes) "second appended"
    (Message.encode m2)
    (Bytes.sub both split (Bytes.length both - split))

(* --- loopback UDP --- *)

(* A transport + server pair on an ephemeral loopback port, torn down
   after [f].  The acceptor runs on its own domain, exactly as `fc
   serve` runs it. *)
let with_edge f =
  let server = Server.create_detached ~addr:1 ~send:(fun ~dst:_ _ -> ()) () in
  Server.register server ~path:"/hello" (fun ~src:_ _ ->
      Server.respond ~payload:"hi" Message.code_content);
  let transport = Transport.create () in
  Transport.spawn transport server;
  Fun.protect
    ~finally:(fun () -> Transport.stop transport)
    (fun () -> f server transport)

let client_of transport =
  Transport.Client.create ~ack_timeout_s:1.0 ~port:(Transport.port transport) ()

let test_udp_get_over_loopback () =
  with_edge (fun server transport ->
      let client = client_of transport in
      Fun.protect
        ~finally:(fun () -> Transport.Client.close client)
        (fun () ->
          (match Transport.Client.get client ~path:"/hello" with
          | Ok r ->
              Alcotest.(check bool) "2.05" true (r.Message.code = Message.code_content);
              Alcotest.(check string) "payload" "hi" r.Message.payload
          | Error `Timeout -> Alcotest.fail "timeout on loopback");
          (match Transport.Client.get client ~path:"/missing" with
          | Ok r ->
              Alcotest.(check bool) "4.04" true
                (r.Message.code = Message.code_not_found)
          | Error `Timeout -> Alcotest.fail "timeout on 4.04 path");
          Alcotest.(check int) "one socket peer" 1 (Transport.peer_count transport);
          Alcotest.(check int) "resource requests counted" 1
            (Server.requests_served server);
          let s = Transport.stats transport in
          Alcotest.(check bool) "rx counted" true (s.Transport.rx_datagrams >= 2);
          Alcotest.(check bool) "tx counted" true (s.Transport.tx_datagrams >= 2)))

let test_udp_blockwise_upload () =
  with_edge (fun server transport ->
      let received = Buffer.create 1024 in
      let finished = ref None in
      Server.register_upload server ~path:"/up"
        {
          Server.start = (fun () -> Buffer.clear received);
          chunk = (fun c -> Buffer.add_string received c);
          finish =
            (fun ~src:_ ~digest:_ ~size _ ->
              finished := Some size;
              Server.respond Message.code_changed);
          abort = (fun () -> ());
        };
      let payload = String.init 1500 (fun i -> Char.chr (i mod 256)) in
      let client = client_of transport in
      Fun.protect
        ~finally:(fun () -> Transport.Client.close client)
        (fun () ->
          match Transport.Client.post_blockwise client ~path:"/up" ~payload with
          | Ok r ->
              Alcotest.(check bool) "2.04" true
                (r.Message.code = Message.code_changed);
              Alcotest.(check (option int)) "size streamed" (Some 1500) !finished;
              Alcotest.(check string) "payload reassembled across blocks" payload
                (Buffer.contents received)
          | Error `Timeout -> Alcotest.fail "upload timed out"))

let test_udp_observe_notification () =
  with_edge (fun server transport ->
      let temp = ref 21 in
      Server.register server ~path:"/temp" (fun ~src:_ _ ->
          Server.respond ~payload:(Printf.sprintf "t=%d" !temp)
            Message.code_content);
      let client = client_of transport in
      Fun.protect
        ~finally:(fun () -> Transport.Client.close client)
        (fun () ->
          (match Transport.Client.observe client ~path:"/temp" with
          | Ok r -> Alcotest.(check string) "registration payload" "t=21" r.Message.payload
          | Error `Timeout -> Alcotest.fail "observe registration timed out");
          Alcotest.(check int) "registered" 1
            (Server.observer_count server ~path:"/temp");
          temp := 22;
          Alcotest.(check int) "one observer notified" 1
            (Server.notify server ~path:"/temp");
          match Transport.Client.recv client ~timeout_s:2.0 with
          | Some n ->
              Alcotest.(check string) "fresh state" "t=22" n.Message.payload;
              Alcotest.(check bool) "carries a sequence number" true
                (match Message.observe n with Some s -> s > 1 | None -> false)
          | None -> Alcotest.fail "notification never arrived"))

let test_udp_cached_resource () =
  with_edge (fun server transport ->
      let runs = ref 0 in
      Server.register_cached ~max_age_s:60 server ~path:"/c" (fun ~src:_ _ ->
          incr runs;
          Server.respond ~payload:"v" Message.code_content);
      let client = client_of transport in
      Fun.protect
        ~finally:(fun () -> Transport.Client.close client)
        (fun () ->
          let etag_of = function
            | Ok r -> Message.etag r
            | Error `Timeout -> Alcotest.fail "timeout"
          in
          let e1 = etag_of (Transport.Client.get client ~path:"/c") in
          let e2 = etag_of (Transport.Client.get client ~path:"/c") in
          Alcotest.(check int) "handler ran once over the socket" 1 !runs;
          Alcotest.(check bool) "stable ETag" true (e1 = e2 && e1 <> None)))

let suite =
  [
    Alcotest.test_case "decode_sub equals decode" `Quick test_decode_sub_matches_decode;
    Alcotest.test_case "decode_sub bounds" `Quick test_decode_sub_rejects_bad_bounds;
    Alcotest.test_case "encode_into appends" `Quick test_encode_into_appends;
    Alcotest.test_case "UDP GET over loopback" `Quick test_udp_get_over_loopback;
    Alcotest.test_case "UDP blockwise upload" `Quick test_udp_blockwise_upload;
    Alcotest.test_case "UDP observe" `Quick test_udp_observe_notification;
    Alcotest.test_case "UDP cached resource" `Quick test_udp_cached_resource;
  ]

let () = Alcotest.run "femto_edge" [ ("edge", suite) ]
