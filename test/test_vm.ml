(* Tests for the rBPF virtual machine: interpreter semantics, verifier
   pre-flight checks, memory isolation, helpers, execution budgets. *)

open Femto_ebpf
module Vm = Femto_vm.Vm
module Fault = Femto_vm.Fault
module Region = Femto_vm.Region
module Helper = Femto_vm.Helper
module Config = Femto_vm.Config
module Verifier = Femto_vm.Verifier
module Obs = Femto_obs.Obs
module Ometrics = Femto_obs.Metrics
module Otrace = Femto_obs.Trace

let no_helpers = Helper.create ()

let run_source ?(helpers = no_helpers) ?(regions = []) ?(args = [||]) source =
  let program = Asm.assemble ~helpers:(Helper.asm_resolver helpers) source in
  match Vm.load ~helpers ~regions program with
  | Error fault -> Error fault
  | Ok vm -> Vm.run vm ~args

let expect_ok ?helpers ?regions ?args source =
  match run_source ?helpers ?regions ?args source with
  | Ok v -> v
  | Error fault -> Alcotest.failf "unexpected fault: %s" (Fault.to_string fault)

let expect_fault ?helpers ?regions ?args source predicate =
  match run_source ?helpers ?regions ?args source with
  | Ok v -> Alcotest.failf "expected fault, got %Ld" v
  | Error fault ->
      if not (predicate fault) then
        Alcotest.failf "unexpected fault kind: %s" (Fault.to_string fault)

let check64 = Alcotest.(check int64)

(* --- ALU semantics --- *)

let test_mov_and_add () =
  check64 "mov/add" 52L (expect_ok "mov r0, 42\nadd r0, 10\nexit")

let test_mov_sign_extends () =
  check64 "mov -1" (-1L) (expect_ok "mov r0, -1\nexit")

let test_mov32_zero_extends () =
  check64 "mov32 -1" 0xFFFF_FFFFL (expect_ok "mov32 r0, -1\nexit")

let test_sub_mul () =
  check64 "sub/mul" 36L (expect_ok "mov r0, 10\nsub r0, 4\nmul r0, 6\nexit")

let test_div_unsigned () =
  (* -1 as unsigned 64-bit divided by 2 = 0x7FFF_FFFF_FFFF_FFFF *)
  check64 "unsigned div" 0x7FFF_FFFF_FFFF_FFFFL
    (expect_ok "mov r0, -1\ndiv r0, 2\nexit")

let test_mod () =
  check64 "mod" 2L (expect_ok "mov r0, 17\nmod r0, 5\nexit")

let test_div_by_zero_faults () =
  expect_fault "mov r0, 5\nmov r1, 0\ndiv r0, r1\nexit" (function
    | Fault.Division_by_zero _ -> true
    | _ -> false)

let test_div32_by_zero_faults () =
  expect_fault "mov r0, 5\nmov r1, 0\ndiv32 r0, r1\nexit" (function
    | Fault.Division_by_zero _ -> true
    | _ -> false)

let test_shifts () =
  check64 "lsh" 256L (expect_ok "mov r0, 1\nlsh r0, 8\nexit");
  check64 "rsh logical" 0x7FFF_FFFF_FFFF_FFFFL
    (expect_ok "mov r0, -1\nrsh r0, 1\nexit");
  check64 "arsh keeps sign" (-1L) (expect_ok "mov r0, -1\narsh r0, 1\nexit");
  (* shift amounts are masked to 6 bits, as in eBPF *)
  check64 "shift mask" 2L (expect_ok "mov r0, 1\nmov r1, 65\nlsh r0, r1\nexit")

let test_alu32_wraps () =
  check64 "add32 wraps" 0L (expect_ok "mov32 r0, -1\nadd32 r0, 1\nexit")

let test_arsh32 () =
  check64 "arsh32" 0xFFFF_FFFFL (expect_ok "mov32 r0, -2\narsh32 r0, 1\nexit")

let test_neg () =
  check64 "neg" (-7L) (expect_ok "mov r0, 7\nneg r0\nexit")

let test_xor_and_or () =
  check64 "bitops" 6L (expect_ok "mov r0, 5\nxor r0, 3\nexit");
  check64 "and" 4L (expect_ok "mov r0, 5\nand r0, 4\nexit");
  check64 "or" 7L (expect_ok "mov r0, 5\nor r0, 2\nexit")

let test_lddw () =
  check64 "lddw" 0x1122_3344_5566_7788L
    (expect_ok "lddw r0, 0x1122334455667788\nexit")

(* --- endianness conversion (BPF_END) --- *)

let test_endian_le () =
  check64 "le16 truncates" 0x3412L
    (expect_ok "lddw r0, 0x1122334455663412\nle16 r0\nexit");
  check64 "le32 truncates" 0x55663412L
    (expect_ok "lddw r0, 0x1122334455663412\nle32 r0\nexit");
  check64 "le64 identity" 0x1122334455663412L
    (expect_ok "lddw r0, 0x1122334455663412\nle64 r0\nexit")

let test_endian_be () =
  check64 "be16 swaps" 0x1234L
    (expect_ok "mov r0, 0x3412\nbe16 r0\nexit");
  check64 "be32 swaps" 0x12345678L
    (expect_ok "lddw r0, 0x78563412\nbe32 r0\nexit");
  check64 "be64 swaps" 0x1122334455667788L
    (expect_ok "lddw r0, 0x8877665544332211\nbe64 r0\nexit")

let test_endian_double_swap_identity () =
  check64 "be16 twice" 0x3412L (expect_ok "mov r0, 0x3412\nbe16 r0\nbe16 r0\nexit")

let test_endian_verifier_checks_width () =
  (* a hand-crafted End instruction with width 24 must be rejected *)
  let insn = Insn.make 0xd4 ~dst:0 ~imm:24l in
  let program = Program.of_insns [ insn; Insn.make 0x95 ] in
  match Verifier.verify Config.default program with
  | Error (Fault.Nonzero_field { field = "end width"; _ }) -> ()
  | Ok _ -> Alcotest.fail "bad width accepted"
  | Error fault -> Alcotest.failf "wrong fault: %s" (Fault.to_string fault)

let test_endian_r10_rejected () =
  expect_fault "be16 r10\nexit" (function
    | Fault.Readonly_register _ -> true
    | _ -> false)

(* --- control flow --- *)

let test_loop_sum () =
  (* sum 1..10 *)
  let source =
    {|
      mov r0, 0
      mov r1, 1
    loop:
      add r0, r1
      add r1, 1
      jle r1, 10, loop
      exit
    |}
  in
  check64 "sum 1..10" 55L (expect_ok source)

let test_jset () =
  check64 "jset taken" 1L
    (expect_ok "mov r0, 0\nmov r1, 6\njset r1, 2, taken\nexit\ntaken:\nmov r0, 1\nexit")

let test_signed_compare () =
  check64 "jsgt signed" 1L
    (expect_ok "mov r0, 0\nmov r1, -1\njsgt r1, 1, bad\nmov r0, 1\nexit\nbad:\nexit")

let test_unsigned_compare () =
  (* -1 unsigned is the largest value, so jgt r1, 1 is taken *)
  check64 "jgt unsigned" 1L
    (expect_ok "mov r0, 0\nmov r1, -1\njgt r1, 1, big\nexit\nbig:\nmov r0, 1\nexit")

let test_jump32_compares_low_bits () =
  (* r1 = 0x1_0000_0000: low 32 bits are zero *)
  check64 "jeq32" 1L
    (expect_ok
       "mov r0, 0\nlddw r1, 0x100000000\njeq32 r1, 0, zero\nexit\nzero:\nmov r0, 1\nexit")

let test_branch_budget () =
  let config = { Config.default with Config.max_branches = 100 } in
  let program = Asm.assemble "loop:\nja loop" in
  match Vm.load ~config ~helpers:no_helpers ~regions:[] program with
  | Error fault -> Alcotest.failf "verify: %s" (Fault.to_string fault)
  | Ok vm -> (
      match Vm.run vm with
      | Ok _ -> Alcotest.fail "infinite loop terminated?"
      | Error (Fault.Branch_budget_exhausted { taken }) ->
          Alcotest.(check int) "taken" 101 taken
      | Error fault -> Alcotest.failf "wrong fault: %s" (Fault.to_string fault))

(* --- memory and isolation --- *)

let test_stack_store_load () =
  let source =
    "stdw [r10-8], 77\nldxdw r0, [r10-8]\nexit"
  in
  check64 "stack rw" 77L (expect_ok source)

let test_stack_byte_halfword () =
  let source =
    "sth [r10-2], 0x1234\nldxb r0, [r10-2]\nldxb r1, [r10-1]\nlsh r1, 8\nor r0, r1\nexit"
  in
  check64 "little endian" 0x1234L (expect_ok source)

let test_stack_overflow_faults () =
  (* the stack occupies [r10-512, r10); one byte below is out of bounds *)
  expect_fault "stxb [r10-513], r1\nexit" (function
    | Fault.Memory_access { write = true; _ } -> true
    | _ -> false)

let test_store_at_r10_faults () =
  (* r10 points one past the stack's last byte *)
  expect_fault "stxb [r10], r1\nexit" (function
    | Fault.Memory_access _ -> true
    | _ -> false)

let test_context_region_read () =
  let data = Bytes.create 8 in
  Bytes.set_int64_le data 0 0xBEEFL;
  let region =
    Region.make ~name:"ctx" ~vaddr:0x2000_0000L ~perm:Region.Read_only data
  in
  check64 "ctx read" 0xBEEFL
    (expect_ok ~regions:[ region ] ~args:[| 0x2000_0000L |]
       "ldxdw r0, [r1]\nexit")

let test_readonly_region_rejects_write () =
  let region =
    Region.make ~name:"ctx" ~vaddr:0x2000_0000L ~perm:Region.Read_only
      (Bytes.create 8)
  in
  expect_fault ~regions:[ region ] ~args:[| 0x2000_0000L |]
    "stdw [r1], 1\nexit" (function
    | Fault.Memory_access { write = true; _ } -> true
    | _ -> false)

let test_writeonly_region_rejects_read () =
  let region =
    Region.make ~name:"out" ~vaddr:0x2000_0000L ~perm:Region.Write_only
      (Bytes.create 8)
  in
  expect_fault ~regions:[ region ] ~args:[| 0x2000_0000L |]
    "ldxdw r0, [r1]\nexit" (function
    | Fault.Memory_access { write = false; _ } -> true
    | _ -> false)

let test_region_boundary () =
  let region =
    Region.make ~name:"buf" ~vaddr:0x2000_0000L ~perm:Region.Read_write
      (Bytes.make 8 '\000')
  in
  (* 8-byte access at the last valid byte must fault *)
  expect_fault ~regions:[ region ] ~args:[| 0x2000_0000L |]
    "ldxdw r0, [r1+1]\nexit" (function
    | Fault.Memory_access _ -> true
    | _ -> false);
  (* exact fit is fine *)
  check64 "exact fit" 0L
    (expect_ok ~regions:[ region ] ~args:[| 0x2000_0000L |]
       "ldxdw r0, [r1]\nexit")

let test_null_pointer_faults () =
  expect_fault "mov r1, 0\nldxw r0, [r1]\nexit" (function
    | Fault.Memory_access _ -> true
    | _ -> false)

let test_wild_address_faults () =
  expect_fault "lddw r1, 0xffffffffffffff00\nldxdw r0, [r1]\nexit" (function
    | Fault.Memory_access _ -> true
    | _ -> false)

(* --- verifier --- *)

let verify source =
  Verifier.verify Config.default (Asm.assemble source)

let expect_verify_fault source predicate =
  match verify source with
  | Ok _ -> Alcotest.failf "expected verification failure for %S" source
  | Error fault ->
      if not (predicate fault) then
        Alcotest.failf "unexpected fault: %s" (Fault.to_string fault)

let test_verifier_accepts_valid () =
  match verify "mov r0, 1\nexit" with
  | Ok ok ->
      Alcotest.(check int) "insns" 2 ok.Verifier.insn_count;
      Alcotest.(check int) "branches" 0 ok.Verifier.branch_count
  | Error fault -> Alcotest.failf "rejected: %s" (Fault.to_string fault)

let test_verifier_counts_branches () =
  match verify "mov r0, 0\nja skip\nskip:\njeq r0, 0, done\ndone:\nexit" with
  | Ok ok -> Alcotest.(check int) "branches" 2 ok.Verifier.branch_count
  | Error fault -> Alcotest.failf "rejected: %s" (Fault.to_string fault)

let test_verifier_rejects_r10_write () =
  expect_verify_fault "mov r10, 1\nexit" (function
    | Fault.Readonly_register _ -> true
    | _ -> false)

let test_verifier_allows_r10_as_store_base () =
  match verify "stdw [r10-8], 1\nexit" with
  | Ok _ -> ()
  | Error fault -> Alcotest.failf "rejected: %s" (Fault.to_string fault)

let test_verifier_rejects_jump_out () =
  expect_verify_fault "ja +5\nexit" (function
    | Fault.Bad_jump _ -> true
    | _ -> false);
  expect_verify_fault "ja -2\nexit" (function
    | Fault.Bad_jump _ -> true
    | _ -> false)

let test_verifier_rejects_jump_into_lddw () =
  expect_verify_fault "ja +1\nlddw r1, 0x123456789\nexit" (function
    | Fault.Jump_to_lddw_tail _ -> true
    | _ -> false)

let test_verifier_rejects_jump_to_orphan_tail () =
  (* regression: a jump whose target slot holds opcode 0 — an lddw tail
     with no preceding head, so the tail-marking sweep never flags it —
     must fault at the jump as Jump_to_lddw_tail rather than surfacing
     later as a generic Invalid_opcode at the target *)
  let program =
    Program.of_insns
      [
        Insn.make Opcode.ja ~offset:1;
        Insn.make Opcode.exit';
        Insn.make 0 ~imm:7l;
      ]
  in
  match Verifier.verify Config.default program with
  | Error (Fault.Jump_to_lddw_tail { pc = 0; target = 2 }) -> ()
  | Ok _ -> Alcotest.fail "accepted jump to orphan tail slot"
  | Error fault -> Alcotest.failf "wrong fault: %s" (Fault.to_string fault)

let test_verifier_rejects_fallthrough () =
  expect_verify_fault "mov r0, 1\nadd r0, 1" (function
    | Fault.Bad_end_instruction _ -> true
    | _ -> false)

let test_verifier_rejects_empty () =
  match Verifier.verify Config.default (Program.of_insns []) with
  | Error Fault.Empty_program -> ()
  | Ok _ | Error _ -> Alcotest.fail "empty program accepted"

let test_verifier_rejects_bad_register_encoding () =
  (* hand-craft an instruction with dst=12 *)
  let program = Program.of_insns [ Insn.make 0xb7 ~dst:12; Insn.make 0x95 ] in
  match Verifier.verify Config.default program with
  | Error (Fault.Invalid_register { reg = 12; _ }) -> ()
  | Ok _ -> Alcotest.fail "accepted register 12"
  | Error fault -> Alcotest.failf "wrong fault: %s" (Fault.to_string fault)

let test_verifier_rejects_invalid_opcode () =
  let program = Program.of_insns [ Insn.make 0xff; Insn.make 0x95 ] in
  match Verifier.verify Config.default program with
  | Error (Fault.Invalid_opcode _) -> ()
  | Ok _ -> Alcotest.fail "accepted opcode 0xff"
  | Error fault -> Alcotest.failf "wrong fault: %s" (Fault.to_string fault)

let test_verifier_rejects_truncated_lddw () =
  let head, _ = Insn.lddw_pair 1 42L in
  let program = Program.of_insns [ head ] in
  match Verifier.verify Config.default program with
  | Error (Fault.Truncated_lddw _) -> ()
  | Ok _ -> Alcotest.fail "accepted truncated lddw"
  | Error fault -> Alcotest.failf "wrong fault: %s" (Fault.to_string fault)

let test_verifier_rejects_long_program () =
  let config = { Config.default with Config.max_insns = 4 } in
  let insns = List.init 5 (fun _ -> Insn.make 0xb7) @ [ Insn.make 0x95 ] in
  match Verifier.verify config (Program.of_insns insns) with
  | Error (Fault.Program_too_long _) -> ()
  | Ok _ -> Alcotest.fail "accepted long program"
  | Error fault -> Alcotest.failf "wrong fault: %s" (Fault.to_string fault)

let test_verifier_rejects_unknown_helper () =
  let helpers = Helper.create () in
  let program = Asm.assemble "call 99\nexit" in
  match Verifier.verify ~helpers Config.default program with
  | Error (Fault.Unknown_helper { id = 99; _ }) -> ()
  | Ok _ -> Alcotest.fail "accepted unknown helper"
  | Error fault -> Alcotest.failf "wrong fault: %s" (Fault.to_string fault)

(* --- helpers --- *)

let make_helpers () =
  let helpers = Helper.create () in
  Helper.register helpers ~id:1 ~name:"add_args" (fun _mem args ->
      Ok (Int64.add args.Helper.a1 args.Helper.a2));
  Helper.register helpers ~id:2 ~name:"fail_always" (fun _mem _args ->
      Error "deliberate failure");
  Helper.register helpers ~id:3 ~name:"peek_byte" (fun mem args ->
      match Femto_vm.Mem.load mem ~addr:args.Helper.a1 ~size:1 with
      | Ok v -> Ok v
      | Error () -> Error "helper pointer outside allow-list");
  helpers

let test_helper_call () =
  let helpers = make_helpers () in
  check64 "helper add" 30L
    (expect_ok ~helpers "mov r1, 10\nmov r2, 20\ncall add_args\nexit")

let test_helper_error_faults () =
  let helpers = make_helpers () in
  expect_fault ~helpers "call fail_always\nexit" (function
    | Fault.Helper_error { id = 2; _ } -> true
    | _ -> false)

let test_helper_pointer_checked () =
  (* a helper dereferencing a guest pointer obeys the allow-list too *)
  let helpers = make_helpers () in
  expect_fault ~helpers "lddw r1, 0xdead0000\ncall peek_byte\nexit" (function
    | Fault.Helper_error { id = 3; _ } -> true
    | _ -> false);
  check64 "helper reads stack" 0L
    (expect_ok ~helpers "mov r1, r10\nsub r1, 8\nstdw [r10-8], 0\ncall peek_byte\nexit")

(* --- robustness: unverified garbage must fault, never crash the host --- *)

let prop_unverified_random_bytes_never_crash =
  QCheck.Test.make ~name:"random bytecode is contained" ~count:500
    QCheck.(make Gen.(map Bytes.of_string (string_size ~gen:char (int_range 8 512))))
    (fun raw ->
      let len = Bytes.length raw - Bytes.length raw mod 8 in
      let raw = Bytes.sub raw 0 len in
      let program = Program.of_bytes raw in
      let config = { Config.default with Config.max_branches = 64 } in
      let vm =
        Vm.load_unverified ~config ~helpers:no_helpers ~regions:[] program
      in
      match Vm.run vm with Ok _ | Error _ -> true)

let prop_verified_programs_contained =
  (* Random structurally-valid programs that pass the verifier either
     terminate normally or fault — and never touch memory outside their
     regions (we give them none, so any memory access must fault, not
     crash). *)
  let gen_program =
    let open QCheck.Gen in
    let reg = int_range 0 9 in
    let body =
      list_size (int_range 1 30)
        (frequency
           [
             ( 5,
               map3
                 (fun op dst imm ->
                   Insn.make (Opcode.alu64 op Opcode.Src_imm) ~dst
                     ~imm:(Int32.of_int imm))
                 (oneofl
                    Opcode.[ Add; Sub; Mul; Or; And; Lsh; Rsh; Xor; Mov; Arsh ])
                 reg (int_range (-100) 100) );
             ( 2,
               map2
                 (fun dst off -> Insn.make (Opcode.ldx Opcode.W) ~dst ~src:10 ~offset:off)
                 reg (int_range (-512) 0) );
             ( 2,
               map2
                 (fun src off -> Insn.make (Opcode.stx Opcode.W) ~dst:10 ~src ~offset:off)
                 reg (int_range (-512) 0) );
           ])
    in
    map (fun insns -> Program.of_insns (insns @ [ Insn.make Opcode.exit' ])) body
  in
  QCheck.Test.make ~name:"verified programs are contained" ~count:300
    (QCheck.make gen_program) (fun program ->
      match Vm.load ~helpers:no_helpers ~regions:[] program with
      | Error _ -> true (* rejected statically: fine *)
      | Ok vm -> ( match Vm.run vm with Ok _ | Error _ -> true))

(* --- observability: a VM run must leave a metric and trace record --- *)

let fresh_events since =
  List.filter (fun r -> r.Otrace.seq >= since) (Otrace.events Obs.ring)

let test_obs_records_run () =
  Obs.set_enabled true;
  Obs.set_tracing true;
  let runs = Ometrics.value (Obs.counter "vm.runs") in
  let insns = Ometrics.value (Obs.counter "vm.insns") in
  let since = Otrace.total Obs.ring in
  check64 "program result" 3L (expect_ok "mov r0, 1\nadd r0, 2\nexit");
  Obs.set_tracing false;
  Alcotest.(check int) "vm.runs incremented" (runs + 1)
    (Ometrics.value (Obs.counter "vm.runs"));
  Alcotest.(check int) "vm.insns counted 3 instructions" (insns + 3)
    (Ometrics.value (Obs.counter "vm.insns"));
  let recorded =
    List.exists
      (fun r ->
        match r.Otrace.event with
        | Otrace.Vm_run { insns = n; ok = true; _ } -> n = 3
        | _ -> false)
      (fresh_events since)
  in
  Alcotest.(check bool) "Vm_run event recorded" true recorded

let test_obs_records_fault () =
  Obs.set_enabled true;
  Obs.set_tracing true;
  let faults = Ometrics.value (Obs.counter "vm.faults") in
  let since = Otrace.total Obs.ring in
  expect_fault "mov r0, 1\nmov r1, 0\ndiv r0, r1\nexit" (function
    | Fault.Division_by_zero _ -> true
    | _ -> false);
  Obs.set_tracing false;
  Alcotest.(check int) "vm.faults incremented" (faults + 1)
    (Ometrics.value (Obs.counter "vm.faults"));
  let recorded =
    List.exists
      (fun r ->
        match r.Otrace.event with
        | Otrace.Fault { kind = "division_by_zero"; _ } -> true
        | _ -> false)
      (fresh_events since)
  in
  Alcotest.(check bool) "Fault event recorded" true recorded

let suite =
  [
    Alcotest.test_case "mov/add" `Quick test_mov_and_add;
    Alcotest.test_case "mov sign-extends" `Quick test_mov_sign_extends;
    Alcotest.test_case "mov32 zero-extends" `Quick test_mov32_zero_extends;
    Alcotest.test_case "sub/mul" `Quick test_sub_mul;
    Alcotest.test_case "div unsigned" `Quick test_div_unsigned;
    Alcotest.test_case "mod" `Quick test_mod;
    Alcotest.test_case "div by zero" `Quick test_div_by_zero_faults;
    Alcotest.test_case "div32 by zero" `Quick test_div32_by_zero_faults;
    Alcotest.test_case "shifts" `Quick test_shifts;
    Alcotest.test_case "alu32 wraps" `Quick test_alu32_wraps;
    Alcotest.test_case "arsh32" `Quick test_arsh32;
    Alcotest.test_case "neg" `Quick test_neg;
    Alcotest.test_case "bitops" `Quick test_xor_and_or;
    Alcotest.test_case "lddw" `Quick test_lddw;
    Alcotest.test_case "endian le" `Quick test_endian_le;
    Alcotest.test_case "endian be" `Quick test_endian_be;
    Alcotest.test_case "endian double swap" `Quick test_endian_double_swap_identity;
    Alcotest.test_case "endian width check" `Quick test_endian_verifier_checks_width;
    Alcotest.test_case "endian r10" `Quick test_endian_r10_rejected;
    Alcotest.test_case "loop sum" `Quick test_loop_sum;
    Alcotest.test_case "jset" `Quick test_jset;
    Alcotest.test_case "signed compare" `Quick test_signed_compare;
    Alcotest.test_case "unsigned compare" `Quick test_unsigned_compare;
    Alcotest.test_case "jump32" `Quick test_jump32_compares_low_bits;
    Alcotest.test_case "branch budget" `Quick test_branch_budget;
    Alcotest.test_case "stack store/load" `Quick test_stack_store_load;
    Alcotest.test_case "little endian stack" `Quick test_stack_byte_halfword;
    Alcotest.test_case "stack overflow" `Quick test_stack_overflow_faults;
    Alcotest.test_case "store at r10" `Quick test_store_at_r10_faults;
    Alcotest.test_case "context region read" `Quick test_context_region_read;
    Alcotest.test_case "read-only region" `Quick test_readonly_region_rejects_write;
    Alcotest.test_case "write-only region" `Quick test_writeonly_region_rejects_read;
    Alcotest.test_case "region boundary" `Quick test_region_boundary;
    Alcotest.test_case "null pointer" `Quick test_null_pointer_faults;
    Alcotest.test_case "wild address" `Quick test_wild_address_faults;
    Alcotest.test_case "verifier accepts valid" `Quick test_verifier_accepts_valid;
    Alcotest.test_case "verifier counts branches" `Quick test_verifier_counts_branches;
    Alcotest.test_case "verifier rejects r10 write" `Quick test_verifier_rejects_r10_write;
    Alcotest.test_case "verifier allows r10 store base" `Quick
      test_verifier_allows_r10_as_store_base;
    Alcotest.test_case "verifier rejects jump out" `Quick test_verifier_rejects_jump_out;
    Alcotest.test_case "verifier rejects jump into lddw" `Quick
      test_verifier_rejects_jump_into_lddw;
    Alcotest.test_case "verifier rejects jump to orphan tail" `Quick
      test_verifier_rejects_jump_to_orphan_tail;
    Alcotest.test_case "verifier rejects fallthrough" `Quick
      test_verifier_rejects_fallthrough;
    Alcotest.test_case "verifier rejects empty" `Quick test_verifier_rejects_empty;
    Alcotest.test_case "verifier rejects bad register" `Quick
      test_verifier_rejects_bad_register_encoding;
    Alcotest.test_case "verifier rejects invalid opcode" `Quick
      test_verifier_rejects_invalid_opcode;
    Alcotest.test_case "verifier rejects truncated lddw" `Quick
      test_verifier_rejects_truncated_lddw;
    Alcotest.test_case "verifier rejects long program" `Quick
      test_verifier_rejects_long_program;
    Alcotest.test_case "verifier rejects unknown helper" `Quick
      test_verifier_rejects_unknown_helper;
    Alcotest.test_case "obs records run" `Quick test_obs_records_run;
    Alcotest.test_case "obs records fault" `Quick test_obs_records_fault;
    Alcotest.test_case "helper call" `Quick test_helper_call;
    Alcotest.test_case "helper error" `Quick test_helper_error_faults;
    Alcotest.test_case "helper pointer checked" `Quick test_helper_pointer_checked;
    QCheck_alcotest.to_alcotest prop_unverified_random_bytes_never_crash;
    QCheck_alcotest.to_alcotest prop_verified_programs_contained;
  ]

let () = Alcotest.run "femto_vm" [ ("vm", suite) ]
