(* Tests for the RTOS simulator: clock, event queue, scheduler, timers,
   mailboxes. *)

module Clock = Femto_rtos.Clock
module Event_queue = Femto_rtos.Event_queue
module Kernel = Femto_rtos.Kernel
module Mailbox = Femto_rtos.Mailbox

let test_clock_advance () =
  let clock = Clock.create () in
  Clock.advance clock 640;
  Alcotest.(check int64) "cycles" 640L (Clock.now clock);
  Alcotest.(check (float 0.001)) "us at 64MHz" 10.0 (Clock.us_of_cycles clock 640L)

let test_clock_us_conversion () =
  let clock = Clock.create () in
  Alcotest.(check int) "1ms = 64000 cycles" 64_000 (Clock.cycles_of_us clock 1000)

let test_event_queue_ordering () =
  let q = Event_queue.create () in
  Event_queue.add q ~at:30L "c";
  Event_queue.add q ~at:10L "a";
  Event_queue.add q ~at:20L "b";
  Event_queue.add q ~at:10L "a2";
  let order = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, payload) ->
        order := payload :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "fifo within same time" [ "a"; "a2"; "b"; "c" ]
    (List.rev !order)

let test_event_queue_pop_due () =
  let q = Event_queue.create () in
  Event_queue.add q ~at:100L "later";
  Alcotest.(check bool) "not due yet" true (Event_queue.pop_due q ~now:50L = None);
  Alcotest.(check bool) "due" true
    (match Event_queue.pop_due q ~now:100L with Some (_, "later") -> true | _ -> false)

let test_event_queue_advance_until () =
  let q = Event_queue.create () in
  Event_queue.add q ~at:10L "a";
  Event_queue.add q ~at:20L "b";
  Event_queue.add q ~at:20L "b2";
  Event_queue.add q ~at:30L "c";
  let fired = ref [] in
  let n =
    Event_queue.advance_until q ~until:20L (fun ~at p -> fired := (at, p) :: !fired)
  in
  Alcotest.(check int) "three due" 3 n;
  Alcotest.(check (list (pair int64 string)))
    "(time, seq) order" [ (10L, "a"); (20L, "b"); (20L, "b2") ]
    (List.rev !fired);
  Alcotest.(check int) "c still queued" 1 (Event_queue.length q)

(* advance_until must be observationally equivalent to the pop_due loop
   it replaced — including when callbacks re-arm new events, some due
   within the same horizon (the fleet wheel does exactly this with
   periodic telemetry timers). *)
let prop_advance_until_equals_pop_loop =
  let gen =
    QCheck.Gen.(
      let event = pair (int_bound 100) (int_bound 3) in
      pair (list_size (int_bound 40) event) (int_bound 100))
  in
  (* an event is (time, rearm): firing at [t] re-arms at [t + 7] while
     rearm > 0, so chains cross the horizon *)
  QCheck.Test.make ~name:"advance_until = pop_due loop" ~count:500
    (QCheck.make gen) (fun (events, until) ->
      let until = Int64.of_int until in
      let run drain =
        let q = Event_queue.create () in
        List.iter
          (fun (t, rearm) -> Event_queue.add q ~at:(Int64.of_int t) (t, rearm))
          events;
        let log = ref [] in
        let fire ~at (t, rearm) =
          log := (at, t, rearm) :: !log;
          if rearm > 0 then
            Event_queue.add q ~at:(Int64.add at 7L) (t, rearm - 1)
        in
        drain q fire;
        (List.rev !log, Event_queue.length q)
      in
      let oracle q fire =
        (* the replaced implementation: peek/pop one due event at a time *)
        let rec loop () =
          match Event_queue.peek_time q with
          | Some t when Int64.compare t until <= 0 ->
              (match Event_queue.pop q with
              | Some (at, p) -> fire ~at p
              | None -> ());
              loop ()
          | _ -> ()
        in
        loop ()
      in
      let batched q fire = ignore (Event_queue.advance_until q ~until fire) in
      run oracle = run batched)

let test_spawn_and_run () =
  let kernel = Kernel.create () in
  let runs = ref 0 in
  let _thread =
    Kernel.spawn kernel ~name:"worker" (fun _ ->
        incr runs;
        if !runs < 3 then Kernel.Yield else Kernel.Finish)
  in
  let quanta = Kernel.run kernel () in
  Alcotest.(check int) "three quanta" 3 quanta;
  Alcotest.(check int) "three runs" 3 !runs

let test_priority_scheduling () =
  let kernel = Kernel.create () in
  let order = ref [] in
  let mark name = order := name :: !order in
  let _low =
    Kernel.spawn kernel ~name:"low" ~priority:10 (fun _ ->
        mark "low";
        Kernel.Finish)
  in
  let _high =
    Kernel.spawn kernel ~name:"high" ~priority:1 (fun _ ->
        mark "high";
        Kernel.Finish)
  in
  ignore (Kernel.run kernel ());
  Alcotest.(check (list string)) "high first" [ "high"; "low" ] (List.rev !order)

let test_round_robin_same_priority () =
  let kernel = Kernel.create () in
  let order = ref [] in
  let counters = Hashtbl.create 2 in
  let thread name =
    Kernel.spawn kernel ~name ~priority:5 (fun _ ->
        order := name :: !order;
        let n = Option.value ~default:0 (Hashtbl.find_opt counters name) + 1 in
        Hashtbl.replace counters name n;
        if n >= 2 then Kernel.Finish else Kernel.Yield)
  in
  let _a = thread "a" and _b = thread "b" in
  ignore (Kernel.run kernel ());
  Alcotest.(check (list string)) "alternates" [ "a"; "b"; "a"; "b" ] (List.rev !order)

let test_timer_fires_in_order () =
  let kernel = Kernel.create () in
  let fired = ref [] in
  Kernel.after_us kernel ~us:200 (fun _ -> fired := "second" :: !fired);
  Kernel.after_us kernel ~us:100 (fun _ -> fired := "first" :: !fired);
  ignore (Kernel.run kernel ());
  Alcotest.(check (list string)) "order" [ "first"; "second" ] (List.rev !fired);
  (* the clock idle-advanced to the last timer *)
  Alcotest.(check bool) "clock advanced" true
    (Clock.now (Kernel.clock kernel) >= Int64.of_int (Clock.cycles_of_us (Kernel.clock kernel) 200))

let test_periodic_timer () =
  let kernel = Kernel.create () in
  let count = ref 0 in
  Kernel.every_us kernel ~us:100 (fun _ ->
      incr count;
      !count < 5);
  ignore (Kernel.run kernel ());
  Alcotest.(check int) "five firings" 5 !count

let test_sleep_and_wake () =
  let kernel = Kernel.create () in
  let phases = ref [] in
  let thread = ref None in
  let body kernel' =
    match !phases with
    | [] ->
        phases := [ "slept" ];
        Kernel.sleep_us kernel' (Option.get !thread) ~us:500;
        Kernel.Yield
    | _ ->
        phases := "woke" :: !phases;
        Kernel.Finish
  in
  thread := Some (Kernel.spawn kernel ~name:"sleeper" body);
  ignore (Kernel.run kernel ());
  Alcotest.(check (list string)) "slept then woke" [ "slept"; "woke" ]
    (List.rev !phases)

let test_context_switch_hook () =
  let kernel = Kernel.create () in
  let switches = ref [] in
  Kernel.add_switch_hook kernel (fun ~prev ~next ->
      switches := (prev, next) :: !switches);
  let _t1 = Kernel.spawn kernel ~name:"t1" (fun _ -> Kernel.Finish) in
  let _t2 = Kernel.spawn kernel ~name:"t2" (fun _ -> Kernel.Finish) in
  ignore (Kernel.run kernel ());
  (* two switches: (0 -> 1), (1 -> 2) *)
  Alcotest.(check (list (pair int int))) "switch sequence" [ (0, 1); (1, 2) ]
    (List.rev !switches)

let test_context_switch_charges_cycles () =
  let kernel = Kernel.create ~context_switch_cost:100 () in
  let _t = Kernel.spawn kernel ~name:"t" (fun _ -> Kernel.Finish) in
  ignore (Kernel.run kernel ());
  Alcotest.(check int64) "cycles charged" 100L (Kernel.now kernel)

let test_run_until_budget () =
  let kernel = Kernel.create ~context_switch_cost:1000 () in
  let _spin = Kernel.spawn kernel ~name:"spin" (fun _ -> Kernel.Yield) in
  let quanta = Kernel.run kernel ~until_cycles:10_000L () in
  Alcotest.(check int) "ten quanta in budget" 10 quanta

(* --- synchronization primitives --- *)

module Sync = Femto_rtos.Sync

let test_mutex_basic () =
  let kernel = Kernel.create () in
  let mutex = Sync.create_mutex () in
  let log = ref [] in
  let mark m = log := m :: !log in
  let make name priority =
    let self = ref None in
    let phase = ref `Want_lock in
    let thread =
      Kernel.spawn kernel ~name ~priority (fun _ ->
          let t = Option.get !self in
          match !phase with
          | `Want_lock -> (
              match Sync.lock mutex t with
              | `Acquired ->
                  mark (name ^ ":locked");
                  phase := `Unlock;
                  Kernel.Yield
              | `Blocked ->
                  mark (name ^ ":blocked");
                  Kernel.Yield)
          | `Unlock ->
              mark (name ^ ":unlock");
              ignore (Sync.unlock mutex t);
              Kernel.Finish)
    in
    self := Some thread;
    thread
  in
  let _a = make "a" 5 in
  let _b = make "b" 5 in
  ignore (Kernel.run kernel ());
  (* a locks, b blocks, a unlocks handing ownership to b; b's re-lock is
     a no-op acquire on the mutex it now owns, then it unlocks *)
  Alcotest.(check (list string)) "sequence"
    [ "a:locked"; "b:blocked"; "a:unlock"; "b:locked"; "b:unlock" ]
    (List.rev !log);
  Alcotest.(check bool) "free at the end" false (Sync.is_locked mutex);
  Alcotest.(check int) "one contention" 1 (Sync.contentions mutex)

let test_mutex_priority_inheritance () =
  (* classic inversion: low-priority owner, high-priority waiter, and a
     medium-priority CPU hog.  Without inheritance the hog starves the
     owner; with it, the owner is boosted above the hog and releases. *)
  let kernel = Kernel.create () in
  let mutex = Sync.create_mutex () in
  let order = ref [] in
  let mark m = order := m :: !order in
  (* low-priority thread: takes the lock, then needs 3 quanta to finish
     its critical section *)
  let low_self = ref None in
  let low_work = ref 3 in
  let low_locked = ref false in
  let low =
    Kernel.spawn kernel ~name:"low" ~priority:9 (fun _ ->
        let t = Option.get !low_self in
        if not !low_locked then begin
          (match Sync.lock mutex t with
          | `Acquired -> low_locked := true
          | `Blocked -> ());
          Kernel.Yield
        end
        else if !low_work > 0 then begin
          decr low_work;
          mark "low:critical";
          Kernel.Yield
        end
        else begin
          ignore (Sync.unlock mutex t);
          mark "low:released";
          Kernel.Finish
        end)
  in
  low_self := Some low;
  (* give low a head start to grab the lock *)
  ignore (Kernel.step kernel);
  (* high-priority thread blocks on the mutex *)
  let high_self = ref None in
  let high_has_lock = ref false in
  let high =
    Kernel.spawn kernel ~name:"high" ~priority:1 (fun _ ->
        let t = Option.get !high_self in
        if not !high_has_lock then (
          match Sync.lock mutex t with
          | `Acquired ->
              high_has_lock := true;
              mark "high:locked";
              ignore (Sync.unlock mutex t);
              Kernel.Finish
          | `Blocked ->
              mark "high:blocked";
              Kernel.Yield)
        else Kernel.Finish)
  in
  high_self := Some high;
  (* medium-priority CPU hog: would run forever ahead of 'low' without
     priority inheritance *)
  let hog_runs = ref 0 in
  let _hog =
    Kernel.spawn kernel ~name:"hog" ~priority:5 (fun _ ->
        incr hog_runs;
        mark "hog";
        if !hog_runs > 50 then Kernel.Finish else Kernel.Yield)
  in
  ignore (Kernel.run kernel ~until_cycles:2_000_000L ());
  let sequence = List.rev !order in
  (* high must obtain the lock quickly: 'low' inherits priority 1 and
     finishes its critical section ahead of the hog *)
  let index_of name =
    let rec find i = function
      | [] -> max_int
      | x :: _ when x = name -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 sequence
  in
  Alcotest.(check bool) "high eventually locked" true
    (List.mem "high:locked" sequence);
  Alcotest.(check bool) "low released before the hog ran 3 times" true
    (index_of "low:released" < index_of "hog" + 10);
  (* the boost is temporary: after release, low is back at 9 *)
  Alcotest.(check int) "priority restored" 9 low.Kernel.priority

let test_semaphore () =
  let kernel = Kernel.create () in
  let sem = Sync.create_semaphore ~count:2 in
  let acquired = ref 0 in
  let make name =
    let self = ref None in
    let got = ref false in
    let thread =
      Kernel.spawn kernel ~name ~priority:5 (fun _ ->
          let t = Option.get !self in
          if not !got then (
            match Sync.sem_acquire sem t with
            | `Acquired ->
                got := true;
                incr acquired;
                Kernel.Yield
            | `Blocked -> Kernel.Yield)
          else begin
            Sync.sem_release sem;
            Kernel.Finish
          end)
    in
    self := Some thread;
    thread
  in
  let _a = make "a" and _b = make "b" and _c = make "c" in
  ignore (Kernel.run kernel ());
  (* all three eventually acquire (two concurrently, the third after a
     release) *)
  Alcotest.(check int) "all acquired" 3 !acquired;
  Alcotest.(check int) "count restored" 2 (Sync.sem_value sem)

let test_mutex_unlock_errors () =
  let kernel = Kernel.create () in
  let mutex = Sync.create_mutex () in
  let t1 = Kernel.spawn kernel ~name:"t1" (fun _ -> Kernel.Finish) in
  let t2 = Kernel.spawn kernel ~name:"t2" (fun _ -> Kernel.Finish) in
  Alcotest.(check bool) "unlock unlocked" true
    (Sync.unlock mutex t1 = Error `Not_locked);
  ignore (Sync.lock mutex t1);
  Alcotest.(check bool) "unlock by non-owner" true
    (Sync.unlock mutex t2 = Error `Not_owner);
  Alcotest.(check bool) "owner unlock" true (Sync.unlock mutex t1 = Ok ())

let test_mailbox_send_receive () =
  let mailbox = Mailbox.create ~capacity:2 () in
  Alcotest.(check bool) "send 1" true (Mailbox.send mailbox 1);
  Alcotest.(check bool) "send 2" true (Mailbox.send mailbox 2);
  Alcotest.(check bool) "full drops" false (Mailbox.send mailbox 3);
  Alcotest.(check int) "dropped" 1 (Mailbox.dropped mailbox);
  Alcotest.(check (option int)) "fifo" (Some 1) (Mailbox.receive mailbox);
  Alcotest.(check (list int)) "drain" [ 2 ] (Mailbox.drain mailbox)

let suite =
  [
    Alcotest.test_case "clock advance" `Quick test_clock_advance;
    Alcotest.test_case "clock conversions" `Quick test_clock_us_conversion;
    Alcotest.test_case "event queue ordering" `Quick test_event_queue_ordering;
    Alcotest.test_case "event queue pop_due" `Quick test_event_queue_pop_due;
    Alcotest.test_case "event queue advance_until" `Quick
      test_event_queue_advance_until;
    QCheck_alcotest.to_alcotest prop_advance_until_equals_pop_loop;
    Alcotest.test_case "spawn and run" `Quick test_spawn_and_run;
    Alcotest.test_case "priority scheduling" `Quick test_priority_scheduling;
    Alcotest.test_case "round robin" `Quick test_round_robin_same_priority;
    Alcotest.test_case "timer order" `Quick test_timer_fires_in_order;
    Alcotest.test_case "periodic timer" `Quick test_periodic_timer;
    Alcotest.test_case "sleep and wake" `Quick test_sleep_and_wake;
    Alcotest.test_case "context switch hook" `Quick test_context_switch_hook;
    Alcotest.test_case "switch cost" `Quick test_context_switch_charges_cycles;
    Alcotest.test_case "run budget" `Quick test_run_until_budget;
    Alcotest.test_case "mutex basic" `Quick test_mutex_basic;
    Alcotest.test_case "priority inheritance" `Quick test_mutex_priority_inheritance;
    Alcotest.test_case "semaphore" `Quick test_semaphore;
    Alcotest.test_case "mutex errors" `Quick test_mutex_unlock_errors;
    Alcotest.test_case "mailbox" `Quick test_mailbox_send_receive;
  ]

let () = Alcotest.run "femto_rtos" [ ("rtos", suite) ]
