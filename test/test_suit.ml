(* SUIT update-pipeline tests: manifest codec, the five verification gates
   (signature, version, rollback, digest, storage location), and install
   dispatch. *)

module Suit = Femto_suit.Suit
module Cose = Femto_cose.Cose
module Crypto = Femto_crypto.Crypto
module Cbor = Femto_cbor.Cbor

let key = Cose.make_key ~key_id:"fleet-key" ~secret:"manifest signing secret"
let attacker_key = Cose.make_key ~key_id:"fleet-key" ~secret:"attacker secret"

let payload_a = "bytecode-for-hook-a (pretend this is eBPF)"
let uuid_a = "c2b7f6ac-0001-4000-8000-000000000001"
let uuid_b = "c2b7f6ac-0002-4000-8000-000000000002"

let manifest ?(sequence = 1L) ?(uuid = uuid_a) ?(payload = payload_a) () =
  Suit.make ~sequence [ Suit.component_for ~storage_uuid:uuid payload ]

let test_manifest_roundtrip () =
  let m =
    Suit.make ~sequence:42L
      [
        Suit.component_for ~storage_uuid:uuid_a payload_a;
        Suit.component_for ~storage_uuid:uuid_b "other payload";
      ]
  in
  match Suit.decode (Suit.encode m) with
  | Ok decoded ->
      Alcotest.(check int64) "sequence" 42L decoded.Suit.sequence;
      Alcotest.(check int) "components" 2 (List.length decoded.Suit.components);
      let c = List.hd decoded.Suit.components in
      Alcotest.(check string) "uuid" uuid_a c.Suit.storage_uuid;
      Alcotest.(check string) "digest" (Crypto.sha256 payload_a) c.Suit.digest;
      Alcotest.(check int) "size" (String.length payload_a) c.Suit.size
  | Error e -> Alcotest.fail (Suit.error_to_string e)

let test_decode_rejects_garbage () =
  (match Suit.decode "junk" with
  | Error (Suit.Malformed _) -> ()
  | _ -> Alcotest.fail "garbage accepted");
  (* valid CBOR, wrong shape *)
  match Suit.decode (Cbor.encode (Cbor.Array [ Cbor.Int 1L ])) with
  | Error (Suit.Malformed _) -> ()
  | _ -> Alcotest.fail "wrong shape accepted"

let test_decode_rejects_bad_version () =
  let bad =
    Cbor.encode
      (Cbor.Map
         [
           (Cbor.Int 1L, Cbor.Int 99L);
           (Cbor.Int 2L, Cbor.Int 1L);
           (Cbor.Int 3L, Cbor.Array []);
         ])
  in
  match Suit.decode bad with
  | Error (Suit.Unsupported_version 99L) -> ()
  | _ -> Alcotest.fail "bad version accepted"

let make_device ?(installed = ref []) () =
  let device =
    Suit.create_device ~key
      ~install:(fun ~sequence:_ ~storage_uuid payload ->
        installed := (storage_uuid, payload) :: !installed;
        Ok ())
      ~known_storage:(fun uuid -> uuid = uuid_a || uuid = uuid_b)
      ()
  in
  (device, installed)

let process device m ~payloads =
  Suit.process device ~envelope:(Suit.sign m key) ~payloads

let test_happy_path () =
  let device, installed = make_device () in
  (match process device (manifest ()) ~payloads:[ (uuid_a, payload_a) ] with
  | Ok m -> Alcotest.(check int64) "seq" 1L m.Suit.sequence
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  Alcotest.(check (list (pair string string))) "installed"
    [ (uuid_a, payload_a) ] !installed;
  Alcotest.(check int64) "device sequence updated" 1L device.Suit.sequence

let test_wrong_signature_rejected () =
  let device, installed = make_device () in
  let envelope = Suit.sign (manifest ()) attacker_key in
  (match Suit.process device ~envelope ~payloads:[ (uuid_a, payload_a) ] with
  | Error (Suit.Signature Cose.Bad_signature) -> ()
  | Ok _ -> Alcotest.fail "attacker manifest accepted"
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  Alcotest.(check (list (pair string string))) "nothing installed" [] !installed

let test_rollback_rejected () =
  let device, _ = make_device () in
  (match process device (manifest ~sequence:5L ()) ~payloads:[ (uuid_a, payload_a) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  (* replaying the same sequence number must fail *)
  (match process device (manifest ~sequence:5L ()) ~payloads:[ (uuid_a, payload_a) ] with
  | Error (Suit.Rollback { manifest = 5L; device = 5L }) -> ()
  | Ok _ -> Alcotest.fail "replay accepted"
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  (* and an older one too *)
  match process device (manifest ~sequence:3L ()) ~payloads:[ (uuid_a, payload_a) ] with
  | Error (Suit.Rollback _) -> ()
  | Ok _ -> Alcotest.fail "rollback accepted"
  | Error e -> Alcotest.fail (Suit.error_to_string e)

let test_digest_mismatch_rejected () =
  let device, installed = make_device () in
  (* manifest says payload_a, attacker swaps the payload in transit *)
  (match process device (manifest ()) ~payloads:[ (uuid_a, "evil payload") ] with
  | Error (Suit.Digest_mismatch uuid) -> Alcotest.(check string) "uuid" uuid_a uuid
  | Ok _ -> Alcotest.fail "swapped payload accepted"
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  Alcotest.(check (list (pair string string))) "nothing installed" [] !installed

let test_missing_payload_rejected () =
  let device, _ = make_device () in
  match process device (manifest ()) ~payloads:[] with
  | Error (Suit.Digest_mismatch _) -> ()
  | Ok _ -> Alcotest.fail "missing payload accepted"
  | Error e -> Alcotest.fail (Suit.error_to_string e)

let test_unknown_storage_rejected () =
  let device, _ = make_device () in
  let m = manifest ~uuid:"not-a-hook" () in
  match process device m ~payloads:[ ("not-a-hook", payload_a) ] with
  | Error (Suit.Unknown_storage "not-a-hook") -> ()
  | Ok _ -> Alcotest.fail "unknown storage accepted"
  | Error e -> Alcotest.fail (Suit.error_to_string e)

let test_install_failure_propagates () =
  let device =
    Suit.create_device ~key
      ~install:(fun ~sequence:_ ~storage_uuid:_ _ -> Error "verifier said no")
      ~known_storage:(fun _ -> true)
      ()
  in
  match process device (manifest ()) ~payloads:[ (uuid_a, payload_a) ] with
  | Error (Suit.Install_failed "verifier said no") ->
      (* sequence must NOT advance on a failed install *)
      Alcotest.(check int64) "seq unchanged" 0L device.Suit.sequence
  | Ok _ -> Alcotest.fail "failed install accepted"
  | Error e -> Alcotest.fail (Suit.error_to_string e)

let test_multi_component_update () =
  let device, installed = make_device () in
  let m =
    Suit.make ~sequence:1L
      [
        Suit.component_for ~storage_uuid:uuid_a payload_a;
        Suit.component_for ~storage_uuid:uuid_b "second app";
      ]
  in
  (match
     process device m ~payloads:[ (uuid_a, payload_a); (uuid_b, "second app") ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  Alcotest.(check int) "both installed" 2 (List.length !installed)

let test_vendor_class_conditions () =
  let installed = ref [] in
  let device =
    Suit.create_device ~vendor_id:"vendor-A" ~class_id:"nrf52840" ~key
      ~install:(fun ~sequence:_ ~storage_uuid payload ->
        installed := (storage_uuid, payload) :: !installed;
        Ok ())
      ~known_storage:(fun _ -> true)
      ()
  in
  (* manifest without identity conditions installs (backwards compatible) *)
  (match process device (manifest ~sequence:1L ()) ~payloads:[ (uuid_a, payload_a) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  (* wrong vendor rejected, even correctly signed *)
  let wrong_vendor =
    Suit.make ~vendor_id:"vendor-B" ~sequence:2L
      [ Suit.component_for ~storage_uuid:uuid_a payload_a ]
  in
  (match process device wrong_vendor ~payloads:[ (uuid_a, payload_a) ] with
  | Error (Suit.Wrong_vendor { manifest = "vendor-B"; device = "vendor-A" }) -> ()
  | Ok _ -> Alcotest.fail "wrong vendor accepted"
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  (* wrong class rejected *)
  let wrong_class =
    Suit.make ~vendor_id:"vendor-A" ~class_id:"esp32" ~sequence:2L
      [ Suit.component_for ~storage_uuid:uuid_a payload_a ]
  in
  (match process device wrong_class ~payloads:[ (uuid_a, payload_a) ] with
  | Error (Suit.Wrong_class _) -> ()
  | Ok _ -> Alcotest.fail "wrong class accepted"
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  (* matching identities install *)
  let matching =
    Suit.make ~vendor_id:"vendor-A" ~class_id:"nrf52840" ~sequence:2L
      [ Suit.component_for ~storage_uuid:uuid_a payload_a ]
  in
  (match process device matching ~payloads:[ (uuid_a, payload_a) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  (* identity fields survive the codec *)
  match Suit.decode (Suit.encode matching) with
  | Ok decoded ->
      Alcotest.(check (option string)) "vendor" (Some "vendor-A") decoded.Suit.vendor_id;
      Alcotest.(check (option string)) "class" (Some "nrf52840") decoded.Suit.class_id
  | Error e -> Alcotest.fail (Suit.error_to_string e)

let test_stats_counters () =
  let device, _ = make_device () in
  ignore (process device (manifest ()) ~payloads:[ (uuid_a, payload_a) ]);
  ignore (process device (manifest ()) ~payloads:[ (uuid_a, payload_a) ]);
  Alcotest.(check int) "accepted" 1 device.Suit.accepted;
  Alcotest.(check int) "rejected" 1 device.Suit.rejected

let prop_manifest_roundtrip =
  let gen =
    QCheck.Gen.(
      map2
        (fun seq payloads ->
          Suit.make ~sequence:(Int64.of_int (abs seq + 1))
            (List.mapi
               (fun i p ->
                 Suit.component_for
                   ~storage_uuid:(Printf.sprintf "uuid-%d" i)
                   p)
               payloads))
        int
        (list_size (int_range 1 4) (string_size (int_range 0 64))))
  in
  QCheck.Test.make ~name:"manifest roundtrip" ~count:200 (QCheck.make gen)
    (fun m ->
      match Suit.decode (Suit.encode m) with
      | Ok decoded ->
          Int64.equal decoded.Suit.sequence m.Suit.sequence
          && decoded.Suit.components = m.Suit.components
      | Error _ -> false)

(* --- slice decoder vs tree decoder ---

   [Suit.decode] now runs on CBOR views; these differentials pin it to
   the original tree decoder: same accepted manifests, same rejection
   class on any input. *)

let same_outcome a b =
  match (a, b) with
  | Ok (m1 : Suit.t), Ok (m2 : Suit.t) ->
      Int64.equal m1.Suit.sequence m2.Suit.sequence
      && m1.Suit.components = m2.Suit.components
      && m1.Suit.vendor_id = m2.Suit.vendor_id
      && m1.Suit.class_id = m2.Suit.class_id
  | Error (Suit.Malformed _), Error (Suit.Malformed _) -> true
  | Error (Suit.Unsupported_version v1), Error (Suit.Unsupported_version v2)
    -> Int64.equal v1 v2
  | _ -> false

let prop_decode_differential =
  let gen =
    QCheck.Gen.(
      map2
        (fun seq payloads ->
          Suit.encode
            (Suit.make ~sequence:(Int64.of_int (abs seq + 1))
               (List.mapi
                  (fun i p ->
                    Suit.component_for ~storage_uuid:(Printf.sprintf "u%d" i) p)
                  payloads)))
        int
        (list_size (int_range 1 4) (string_size (int_range 0 64))))
  in
  QCheck.Test.make ~name:"slice decode = tree decode" ~count:200
    (QCheck.make gen)
    (fun encoded -> same_outcome (Suit.decode encoded) (Suit.decode_tree encoded))

let prop_decode_differential_mutated =
  let gen =
    QCheck.Gen.(
      triple
        (map
           (fun p ->
             Suit.encode
               (Suit.make ~sequence:1L
                  [ Suit.component_for ~storage_uuid:uuid_a p ]))
           (string_size (int_range 0 64)))
        (int_bound 10_000) (int_bound 255))
  in
  QCheck.Test.make ~name:"slice decode = tree decode on mutated bytes"
    ~count:300 (QCheck.make gen)
    (fun (encoded, pos, byte) ->
      let b = Bytes.of_string encoded in
      Bytes.set b (pos mod Bytes.length b) (Char.chr byte);
      let mutated = Bytes.to_string b in
      same_outcome (Suit.decode mutated) (Suit.decode_tree mutated))

(* --- streamed digest hints --- *)

let test_digest_hints () =
  let streamed = Crypto.sha256 payload_a in
  let hint = { Suit.streamed; bytes = String.length payload_a } in
  (* a correct hint is accepted without rehashing the payload *)
  let device, installed = make_device () in
  (match
     Suit.process ~digests:[ (uuid_a, hint) ] device
       ~envelope:(Suit.sign (manifest ()) key)
       ~payloads:[ (uuid_a, payload_a) ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  Alcotest.(check int) "installed" 1 (List.length !installed);
  (* a hint that does not match the manifest digest is rejected *)
  let device, _ = make_device () in
  let bad = { Suit.streamed = Crypto.sha256 "evil"; bytes = String.length payload_a } in
  (match
     Suit.process ~digests:[ (uuid_a, bad) ] device
       ~envelope:(Suit.sign (manifest ()) key)
       ~payloads:[ (uuid_a, payload_a) ]
   with
  | Error (Suit.Digest_mismatch _) -> ()
  | Ok _ -> Alcotest.fail "bad streamed digest accepted"
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  (* a hint whose byte count disagrees with the manifest is rejected even
     with the right digest value *)
  let device, _ = make_device () in
  let short = { Suit.streamed; bytes = String.length payload_a - 1 } in
  (match
     Suit.process ~digests:[ (uuid_a, short) ] device
       ~envelope:(Suit.sign (manifest ()) key)
       ~payloads:[ (uuid_a, payload_a) ]
   with
  | Error (Suit.Digest_mismatch _) -> ()
  | Ok _ -> Alcotest.fail "short streamed digest accepted"
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  (* a hint cannot stand in for a payload that never arrived *)
  let device, _ = make_device () in
  match
    Suit.process ~digests:[ (uuid_a, hint) ] device
      ~envelope:(Suit.sign (manifest ()) key)
      ~payloads:[]
  with
  | Error (Suit.Digest_mismatch _) -> ()
  | Ok _ -> Alcotest.fail "hint without payload accepted"
  | Error e -> Alcotest.fail (Suit.error_to_string e)

(* --- prepare/commit vs process ---

   The pipeline runs [prepare] on worker domains and [commit] on the
   owner; splitting must not change any outcome or any device state
   transition relative to the one-call [process]. *)

let test_prepare_commit_equals_process () =
  let scenarios =
    [
      ("happy", Suit.sign (manifest ()) key, [ (uuid_a, payload_a) ]);
      ("bad signature", Suit.sign (manifest ()) attacker_key,
       [ (uuid_a, payload_a) ]);
      ("digest mismatch", Suit.sign (manifest ()) key,
       [ (uuid_a, "evil payload") ]);
      ("missing payload", Suit.sign (manifest ()) key, []);
      ("unknown storage", Suit.sign (manifest ~uuid:"not-a-hook" ()) key,
       [ ("not-a-hook", payload_a) ]);
      ("garbage", "not an envelope", [ (uuid_a, payload_a) ]);
    ]
  in
  List.iter
    (fun (name, envelope, payloads) ->
      let d1, i1 = make_device () in
      let r1 = Suit.process d1 ~envelope ~payloads in
      let d2, i2 = make_device () in
      let prepared = Suit.prepare ~key ~envelope ~payloads () in
      let r2 = Suit.commit d2 prepared in
      Alcotest.(check bool)
        (name ^ ": same outcome") true
        (match (r1, r2) with
        | Ok m1, Ok m2 -> Int64.equal m1.Suit.sequence m2.Suit.sequence
        | Error e1, Error e2 ->
            Suit.error_to_string e1 = Suit.error_to_string e2
        | _ -> false);
      Alcotest.(check int64) (name ^ ": same sequence") d1.Suit.sequence
        d2.Suit.sequence;
      Alcotest.(check int) (name ^ ": same accepted") d1.Suit.accepted
        d2.Suit.accepted;
      Alcotest.(check int) (name ^ ": same rejected") d1.Suit.rejected
        d2.Suit.rejected;
      Alcotest.(check (list (pair string string)))
        (name ^ ": same installs") !i1 !i2)
    scenarios

let suite =
  [
    Alcotest.test_case "manifest roundtrip" `Quick test_manifest_roundtrip;
    Alcotest.test_case "rejects garbage" `Quick test_decode_rejects_garbage;
    Alcotest.test_case "rejects bad version" `Quick test_decode_rejects_bad_version;
    Alcotest.test_case "happy path" `Quick test_happy_path;
    Alcotest.test_case "wrong signature" `Quick test_wrong_signature_rejected;
    Alcotest.test_case "rollback" `Quick test_rollback_rejected;
    Alcotest.test_case "digest mismatch" `Quick test_digest_mismatch_rejected;
    Alcotest.test_case "missing payload" `Quick test_missing_payload_rejected;
    Alcotest.test_case "unknown storage" `Quick test_unknown_storage_rejected;
    Alcotest.test_case "install failure" `Quick test_install_failure_propagates;
    Alcotest.test_case "multi-component" `Quick test_multi_component_update;
    Alcotest.test_case "vendor/class conditions" `Quick test_vendor_class_conditions;
    Alcotest.test_case "stats counters" `Quick test_stats_counters;
    Alcotest.test_case "digest hints" `Quick test_digest_hints;
    Alcotest.test_case "prepare/commit = process" `Quick
      test_prepare_commit_equals_process;
    QCheck_alcotest.to_alcotest prop_manifest_roundtrip;
    QCheck_alcotest.to_alcotest prop_decode_differential;
    QCheck_alcotest.to_alcotest prop_decode_differential_mutated;
  ]

let () = Alcotest.run "femto_suit" [ ("suit", suite) ]
