(* Tests for the Femto-Container hosting engine: key-value stores,
   contracts, attach/trigger, tenant isolation, fault isolation, hot
   updates, and the paper's §8 example applications end to end. *)

module Engine = Femto_core.Engine
module Container = Femto_core.Container
module Hook = Femto_core.Hook
module Contract = Femto_core.Contract
module Kvstore = Femto_core.Kvstore
module Syscall = Femto_core.Syscall
module Apps = Femto_workloads.Apps
module Fletcher = Femto_workloads.Fletcher
module Kernel = Femto_rtos.Kernel
module Fault = Femto_vm.Fault
module Platform = Femto_platform.Platform

let assemble source = Femto_ebpf.Asm.assemble ~helpers:Syscall.resolve_name source

(* --- kvstore --- *)

let test_kvstore_fetch_default_zero () =
  let store = Kvstore.create "t" in
  Alcotest.(check int64) "missing is zero" 0L (Kvstore.fetch store 7l)

let test_kvstore_store_fetch () =
  let store = Kvstore.create "t" in
  (match Kvstore.store store 7l 42L with Ok () -> () | Error _ -> Alcotest.fail "full");
  Alcotest.(check int64) "fetch" 42L (Kvstore.fetch store 7l)

let test_kvstore_bounded () =
  let store = Kvstore.create ~max_entries:2 "tiny" in
  ignore (Kvstore.store store 1l 1L);
  ignore (Kvstore.store store 2l 2L);
  (match Kvstore.store store 3l 3L with
  | Error (`Store_full "tiny") -> ()
  | Ok () | Error _ -> Alcotest.fail "expected full");
  (* overwriting an existing key still works when full *)
  match Kvstore.store store 1l 10L with
  | Ok () -> Alcotest.(check int64) "overwrite" 10L (Kvstore.fetch store 1l)
  | Error _ -> Alcotest.fail "overwrite rejected"

(* --- contracts --- *)

let test_contract_grant_is_intersection () =
  let policy = Contract.offer [ Contract.Kv_local; Contract.Time ] in
  let contract = Contract.require [ Contract.Kv_local; Contract.Kv_global ] in
  Alcotest.(check (list string)) "granted" [ "kv-local" ]
    (List.map Contract.capability_name (Contract.grant policy contract));
  Alcotest.(check (list string)) "denied" [ "kv-global" ]
    (List.map Contract.capability_name (Contract.denied policy contract))

(* --- engine basics --- *)

let make_engine ?kernel ?platform () = Engine.create ?kernel ?platform ()

let simple_container ?(name = "c") ?(tenant_id = "acme") ?runtime engine source
    ~contract =
  let tenant = Engine.add_tenant engine tenant_id in
  Container.create ~name ~tenant ~contract ?runtime (assemble source)

let test_attach_and_trigger () =
  let engine = make_engine () in
  let hook = Engine.register_hook engine ~uuid:"hook-1" ~name:"test" ~ctx_size:16 () in
  let container =
    simple_container engine "mov r0, 7\nexit" ~contract:(Contract.require [])
  in
  (match Engine.attach engine ~hook_uuid:"hook-1" container with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  let reports = Engine.trigger engine hook () in
  match reports with
  | [ { Engine.result = Ok v; _ } ] -> Alcotest.(check int64) "r0" 7L v
  | _ -> Alcotest.fail "expected one successful report"

(* The array-backed slot storage must keep arrival order — the list
   append it replaced was order-preserving, and trigger reports as well
   as per-tenant accounting rely on it — and stay ordered across a
   detach from the middle. *)
let test_attach_preserves_order () =
  let engine = make_engine () in
  let hook =
    Engine.register_hook engine ~uuid:"ho" ~name:"order" ~ctx_size:8 ()
  in
  let containers =
    List.init 17 (fun i ->
        let c =
          simple_container ~name:(Printf.sprintf "c%02d" i) engine
            (Printf.sprintf "mov r0, %d\nexit" i)
            ~contract:(Contract.require [])
        in
        (match Engine.attach engine ~hook_uuid:"ho" c with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
        c)
  in
  Alcotest.(check int) "count" 17 (Hook.attached_count hook);
  Alcotest.(check (list string)) "attach order"
    (List.map Container.name containers)
    (List.map Container.name (Hook.attached hook));
  let reports = Engine.trigger engine hook () in
  let results =
    List.map
      (fun r ->
        match r.Engine.result with Ok v -> Int64.to_int v | Error _ -> -1)
      reports
  in
  Alcotest.(check (list int)) "report order follows attach order"
    (List.init 17 Fun.id) results;
  (* detaching from the middle compacts without reordering survivors *)
  Engine.detach engine (List.nth containers 5);
  Alcotest.(check int) "one fewer" 16 (Hook.attached_count hook);
  Alcotest.(check (list string)) "stable after removal"
    (List.filteri (fun i _ -> i <> 5) (List.map Container.name containers))
    (List.map Container.name (Hook.attached hook))

let test_attach_rejects_bad_program () =
  let engine = make_engine () in
  let _hook = Engine.register_hook engine ~uuid:"hook-1" ~name:"test" ~ctx_size:16 () in
  let container =
    simple_container engine "mov r10, 1\nexit" ~contract:(Contract.require [])
  in
  match Engine.attach engine ~hook_uuid:"hook-1" container with
  | Error (Engine.Verification_failed (Fault.Readonly_register _)) -> ()
  | Ok _ -> Alcotest.fail "verifier let a r10 write through"
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e)

let test_attach_unknown_hook () =
  let engine = make_engine () in
  let container =
    simple_container engine "mov r0, 0\nexit" ~contract:(Contract.require [])
  in
  match Engine.attach engine ~hook_uuid:"nope" container with
  | Error (Engine.No_such_hook "nope") -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected No_such_hook"

let test_double_attach_rejected () =
  let engine = make_engine () in
  let _h1 = Engine.register_hook engine ~uuid:"h1" ~name:"a" ~ctx_size:8 () in
  let _h2 = Engine.register_hook engine ~uuid:"h2" ~name:"b" ~ctx_size:8 () in
  let container =
    simple_container engine "mov r0, 0\nexit" ~contract:(Contract.require [])
  in
  (match Engine.attach engine ~hook_uuid:"h1" container with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  match Engine.attach engine ~hook_uuid:"h2" container with
  | Error (Engine.Already_attached "h1") -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Already_attached"

let test_context_passed_to_container () =
  let engine = make_engine () in
  let hook = Engine.register_hook engine ~uuid:"h" ~name:"ctx" ~ctx_size:16 () in
  let container =
    simple_container engine "ldxdw r0, [r1+8]\nexit" ~contract:(Contract.require [])
  in
  (match Engine.attach engine ~hook_uuid:"h" container with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  let ctx = Bytes.create 16 in
  Bytes.set_int64_le ctx 8 1234L;
  match Engine.trigger engine hook ~ctx () with
  | [ { Engine.result = Ok v; _ } ] -> Alcotest.(check int64) "ctx value" 1234L v
  | _ -> Alcotest.fail "expected one report"

let test_readonly_context_protected () =
  let engine = make_engine () in
  let hook =
    Engine.register_hook engine ~uuid:"h" ~name:"firewall" ~ctx_size:16
      ~ctx_perm:Femto_vm.Region.Read_only ()
  in
  let container =
    simple_container engine "stdw [r1], 666\nexit" ~contract:(Contract.require [])
  in
  (match Engine.attach engine ~hook_uuid:"h" container with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  match Engine.trigger engine hook () with
  | [ { Engine.result = Error (Fault.Memory_access { write = true; _ }); _ } ] ->
      Alcotest.(check int) "fault counted" 1 (Container.faults container)
  | _ -> Alcotest.fail "expected write fault on read-only context"

let test_fault_isolation_between_containers () =
  (* A faulting container must not prevent its neighbour on the same hook
     from running, nor corrupt its result. *)
  let engine = make_engine () in
  let hook = Engine.register_hook engine ~uuid:"h" ~name:"shared" ~ctx_size:8 () in
  let bad =
    simple_container ~name:"bad" engine "mov r1, 0\nldxdw r0, [r1]\nexit"
      ~contract:(Contract.require [])
  in
  let good =
    simple_container ~name:"good" engine "mov r0, 5\nexit"
      ~contract:(Contract.require [])
  in
  (match Engine.attach engine ~hook_uuid:"h" bad with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  (match Engine.attach engine ~hook_uuid:"h" good with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  match Engine.trigger engine hook () with
  | [ { Engine.result = Error _; container = c1; _ };
      { Engine.result = Ok v; container = c2; _ } ] ->
      Alcotest.(check string) "bad first" "bad" (Container.name c1);
      Alcotest.(check string) "good second" "good" (Container.name c2);
      Alcotest.(check int64) "good result" 5L v
  | _ -> Alcotest.fail "expected fault+success"

let test_capability_gating () =
  (* A container that was not granted kv-global faults on the call; the
     verifier already rejects it at attach time (unknown helper). *)
  let engine = make_engine () in
  let _hook =
    Engine.register_hook engine ~uuid:"h" ~name:"restricted" ~ctx_size:8
      ~policy:(Contract.offer [ Contract.Kv_local ]) ()
  in
  let source = "mov r1, 1\nmov r2, 2\ncall bpf_store_global\nexit" in
  let container =
    simple_container engine source
      ~contract:(Contract.require [ Contract.Kv_global ])
  in
  match Engine.attach engine ~hook_uuid:"h" container with
  | Error (Engine.Verification_failed (Fault.Unknown_helper { id; _ })) ->
      Alcotest.(check int) "helper id" Syscall.id_store_global id
  | Ok _ -> Alcotest.fail "ungranted helper accepted"
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e)

let test_kv_helpers_roundtrip () =
  let engine = make_engine () in
  let hook = Engine.register_hook engine ~uuid:"h" ~name:"kv" ~ctx_size:8 () in
  let source =
    {|
      mov r1, 42
      mov r2, 1000
      call bpf_store_local
      mov r1, 42
      mov r2, r10
      sub r2, 8
      call bpf_fetch_local
      ldxdw r0, [r10-8]
      exit
    |}
  in
  let container =
    simple_container engine source ~contract:(Contract.require [ Contract.Kv_local ])
  in
  (match Engine.attach engine ~hook_uuid:"h" container with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  match Engine.trigger engine hook () with
  | [ { Engine.result = Ok v; _ } ] -> Alcotest.(check int64) "roundtrip" 1000L v
  | _ -> Alcotest.fail "expected success"

let test_tenant_isolation () =
  (* Two tenants store under the same key in their tenant stores; the
     values must not leak across. *)
  let engine = make_engine () in
  let hook = Engine.register_hook engine ~uuid:"h" ~name:"multi" ~ctx_size:8 () in
  let writer tenant_id value =
    let source = Printf.sprintf "mov r1, 5\nmov r2, %d\ncall bpf_store_tenant\nexit" value in
    simple_container ~name:(tenant_id ^ "-writer") ~tenant_id engine source
      ~contract:(Contract.require [ Contract.Kv_tenant ])
  in
  let reader tenant_id =
    let source =
      "mov r1, 5\nmov r2, r10\nsub r2, 8\ncall bpf_fetch_tenant\nldxdw r0, [r10-8]\nexit"
    in
    simple_container ~name:(tenant_id ^ "-reader") ~tenant_id engine source
      ~contract:(Contract.require [ Contract.Kv_tenant ])
  in
  let attach c =
    match Engine.attach engine ~hook_uuid:"h" c with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Engine.attach_error_to_string e)
  in
  let wa = writer "alpha" 111 and wb = writer "beta" 222 in
  let ra = reader "alpha" and rb = reader "beta" in
  List.iter attach [ wa; wb; ra; rb ];
  match Engine.trigger engine hook () with
  | [ _; _; { Engine.result = Ok va; _ }; { Engine.result = Ok vb; _ } ] ->
      Alcotest.(check int64) "alpha sees alpha" 111L va;
      Alcotest.(check int64) "beta sees beta" 222L vb
  | _ -> Alcotest.fail "expected four reports"

let test_hot_update () =
  let engine = make_engine () in
  let hook = Engine.register_hook engine ~uuid:"h" ~name:"upd" ~ctx_size:8 () in
  let container =
    simple_container engine "mov r0, 1\nexit" ~contract:(Contract.require [])
  in
  (match Engine.attach engine ~hook_uuid:"h" container with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  (match Engine.trigger engine hook () with
  | [ { Engine.result = Ok 1L; _ } ] -> ()
  | _ -> Alcotest.fail "v1 wrong");
  (* a broken update is rejected and v1 keeps running *)
  (match Engine.update_program engine container (assemble "ja +2\nexit") with
  | Error (Engine.Verification_failed _) -> ()
  | Ok () -> Alcotest.fail "broken update accepted"
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  (match Engine.trigger engine hook () with
  | [ { Engine.result = Ok 1L; _ } ] -> ()
  | _ -> Alcotest.fail "v1 not preserved after failed update");
  (* a good update takes effect *)
  (match Engine.update_program engine container (assemble "mov r0, 2\nexit") with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  match Engine.trigger engine hook () with
  | [ { Engine.result = Ok 2L; _ } ] -> ()
  | _ -> Alcotest.fail "v2 not active"

let test_detach () =
  let engine = make_engine () in
  let hook = Engine.register_hook engine ~uuid:"h" ~name:"d" ~ctx_size:8 () in
  let container =
    simple_container engine "mov r0, 1\nexit" ~contract:(Contract.require [])
  in
  (match Engine.attach engine ~hook_uuid:"h" container with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  Engine.detach engine container;
  Alcotest.(check int) "no attachments" 0 (List.length (Hook.attached hook));
  Alcotest.(check bool) "no reports" true (Engine.trigger engine hook () = [])

let test_certfc_runtime_variant () =
  let engine = make_engine () in
  let hook = Engine.register_hook engine ~uuid:"h" ~name:"cert" ~ctx_size:8 () in
  let container =
    simple_container ~runtime:Platform.Certfc engine "mov r0, 9\nexit"
      ~contract:(Contract.require [])
  in
  (match Engine.attach engine ~hook_uuid:"h" container with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  match Engine.trigger engine hook () with
  | [ { Engine.result = Ok 9L; vm_cycles; _ } ] ->
      Alcotest.(check bool) "cycles charged" true (vm_cycles > 0)
  | _ -> Alcotest.fail "certfc container failed"

(* --- the paper's §8 examples end to end --- *)

let test_thread_counter_app () =
  let kernel = Kernel.create () in
  let engine = make_engine ~kernel () in
  let hook =
    Engine.register_hook engine ~uuid:"sched-hook" ~name:"sched" ~ctx_size:16 ()
  in
  let tenant = Engine.add_tenant engine "os-maintainer" in
  let container =
    Container.create ~name:"thread-counter" ~tenant
      ~contract:(Contract.require [ Contract.Kv_global ])
      (Apps.thread_counter ())
  in
  (match Engine.attach engine ~hook_uuid:"sched-hook" container with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  (* wire the hook into the kernel's context switches *)
  Kernel.add_switch_hook kernel (fun ~prev ~next ->
      let ctx = Bytes.create 16 in
      Bytes.set_int64_le ctx 0 (Int64.of_int prev);
      Bytes.set_int64_le ctx 8 (Int64.of_int next);
      ignore (Engine.trigger engine hook ~ctx ()));
  let make_thread name quanta =
    let remaining = ref quanta in
    Kernel.spawn kernel ~name (fun _ ->
        decr remaining;
        if !remaining > 0 then Kernel.Yield else Kernel.Finish)
  in
  let t1 = make_thread "t1" 3 in
  let t2 = make_thread "t2" 2 in
  ignore (Kernel.run kernel ());
  let store = Engine.global_store engine in
  let count tid = Kvstore.fetch store (Int32.add Apps.thread_key_base (Int32.of_int tid)) in
  Alcotest.(check int64) "t1 activations" 3L (count t1.Kernel.tid);
  Alcotest.(check int64) "t2 activations" 2L (count t2.Kernel.tid);
  Alcotest.(check int) "no faults" 0 (Container.faults container)

let test_sensor_process_app () =
  let engine = make_engine () in
  let readings = ref [ 100L; 200L; 300L ] in
  Engine.register_sensor engine ~id:1 (fun () ->
      match !readings with
      | [] -> Ok 0L
      | v :: rest ->
          readings := rest;
          Ok v);
  let hook = Engine.register_hook engine ~uuid:"timer-hook" ~name:"timer" ~ctx_size:8 () in
  let tenant = Engine.add_tenant engine "acme" in
  let container =
    Container.create ~name:"sensor" ~tenant
      ~contract:
        (Contract.require
           [ Contract.Sensors; Contract.Kv_local; Contract.Kv_tenant ])
      (Apps.sensor_process ())
  in
  (match Engine.attach engine ~hook_uuid:"timer-hook" container with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  let run () =
    match Engine.trigger engine hook () with
    | [ { Engine.result = Ok v; _ } ] -> v
    | [ { Engine.result = Error f; _ } ] -> Alcotest.failf "fault: %s" (Fault.to_string f)
    | _ -> Alcotest.fail "expected one report"
  in
  Alcotest.(check int64) "first sample seeds" 100L (run ());
  Alcotest.(check int64) "ema 2" 125L (run ());
  (* (3*125 + 300) / 4 = 168 *)
  Alcotest.(check int64) "ema 3" 168L (run ());
  (* published for the other container of the tenant *)
  Alcotest.(check int64) "published" 168L
    (Kvstore.fetch (Femto_core.Tenant.store tenant) Apps.sensor_value_key)

let test_fletcher_in_container_matches_native () =
  let engine = make_engine () in
  let hook =
    Engine.register_hook engine ~uuid:"bench" ~name:"bench" ~ctx_size:16 ()
  in
  let tenant = Engine.add_tenant engine "bench" in
  let container =
    Container.create ~name:"fletcher" ~tenant ~contract:(Contract.require [])
      (Fletcher.ebpf_program ())
  in
  let data = Fletcher.input_360 in
  let data_region =
    Femto_vm.Region.make ~name:"data" ~vaddr:Fletcher.data_vaddr
      ~perm:Femto_vm.Region.Read_only (Bytes.copy data)
  in
  (match
     Engine.attach engine ~hook_uuid:"bench" ~extra_regions:[ data_region ]
       container
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  let ctx = Bytes.create 16 in
  Bytes.set_int64_le ctx 0 Fletcher.data_vaddr;
  Bytes.set_int64_le ctx 8 (Int64.of_int (Bytes.length data / 2));
  match Engine.trigger engine hook ~ctx () with
  | [ { Engine.result = Ok v; _ } ] ->
      Alcotest.(check int64) "matches native"
        (Int64.of_int (Fletcher.checksum data))
        v
  | _ -> Alcotest.fail "fletcher container failed"

let prop_fletcher_equivalence =
  QCheck.Test.make ~name:"fletcher32 eBPF = native on random input" ~count:50
    QCheck.(make Gen.(map Bytes.of_string (string_size ~gen:char (int_range 0 512))))
    (fun data ->
      let data = Bytes.sub data 0 (Bytes.length data - Bytes.length data mod 2) in
      let helpers = Femto_vm.Helper.create () in
      let regions = Fletcher.regions ~ctx_vaddr:0x2000_0000L data in
      match
        Femto_vm.Vm.load ~helpers ~regions (Fletcher.ebpf_program ())
      with
      | Error _ -> false
      | Ok vm -> (
          match Femto_vm.Vm.run vm ~args:[| 0x2000_0000L |] with
          | Ok v -> Int64.equal v (Int64.of_int (Fletcher.checksum data))
          | Error _ -> false))

let test_stats_app_matches_native () =
  let engine = make_engine () in
  let samples = ref [] in
  Engine.register_sensor engine ~id:1 (fun () ->
      match !samples with
      | [] -> Ok 0L
      | v :: rest ->
          samples := rest;
          Ok v);
  let hook = Engine.register_hook engine ~uuid:"stats" ~name:"stats" ~ctx_size:8 () in
  let tenant = Engine.add_tenant engine "acme" in
  let container =
    Container.create ~name:"stats" ~tenant
      ~contract:
        (Contract.require [ Contract.Sensors; Contract.Kv_local; Contract.Kv_tenant ])
      (Apps.stats ())
  in
  (match Engine.attach engine ~hook_uuid:"stats" container with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  let inputs = [ 100L; 7L; 220L; 7L; 150L; 3L; 999L ] in
  samples := inputs;
  let reference = Apps.stats_init () in
  List.iter
    (fun sample ->
      let expected_mean = Apps.stats_feed reference sample in
      match Engine.trigger engine hook () with
      | [ { Engine.result = Ok mean; _ } ] ->
          Alcotest.(check int64) "running mean" expected_mean mean
      | [ { Engine.result = Error f; _ } ] ->
          Alcotest.failf "fault: %s" (Fault.to_string f)
      | _ -> Alcotest.fail "expected one report")
    inputs;
  let local = Container.local_store container in
  Alcotest.(check int64) "count" reference.Apps.count
    (Kvstore.fetch local Apps.stats_count_key);
  Alcotest.(check int64) "sum" reference.Apps.sum
    (Kvstore.fetch local Apps.stats_sum_key);
  Alcotest.(check int64) "sumsq" reference.Apps.sumsq
    (Kvstore.fetch local Apps.stats_sumsq_key);
  Alcotest.(check int64) "min" reference.Apps.min
    (Kvstore.fetch local Apps.stats_min_key);
  Alcotest.(check int64) "max" reference.Apps.max
    (Kvstore.fetch local Apps.stats_max_key);
  Alcotest.(check int64) "published mean"
    (Int64.unsigned_div reference.Apps.sum reference.Apps.count)
    (Kvstore.fetch (Femto_core.Tenant.store tenant) Apps.stats_mean_key)

let prop_stats_app_equivalence =
  QCheck.Test.make ~name:"stats app = native on random samples" ~count:40
    QCheck.(make Gen.(list_size (int_range 1 30) (map Int64.of_int (int_range 0 100000))))
    (fun inputs ->
      let engine = make_engine () in
      let queue = ref inputs in
      Engine.register_sensor engine ~id:1 (fun () ->
          match !queue with
          | [] -> Ok 0L
          | v :: rest ->
              queue := rest;
              Ok v);
      let hook = Engine.register_hook engine ~uuid:"s" ~name:"s" ~ctx_size:8 () in
      let tenant = Engine.add_tenant engine "t" in
      let container =
        Container.create ~name:"stats" ~tenant
          ~contract:
            (Contract.require
               [ Contract.Sensors; Contract.Kv_local; Contract.Kv_tenant ])
          (Apps.stats ())
      in
      (match Engine.attach engine ~hook_uuid:"s" container with
      | Ok _ -> ()
      | Error _ -> QCheck.Test.fail_report "attach failed");
      let reference = Apps.stats_init () in
      List.for_all
        (fun sample ->
          let expected = Apps.stats_feed reference sample in
          match Engine.trigger engine hook () with
          | [ { Engine.result = Ok mean; _ } ] -> Int64.equal mean expected
          | _ -> false)
        inputs
      && Int64.equal reference.Apps.min
           (Kvstore.fetch (Container.local_store container) Apps.stats_min_key)
      && Int64.equal reference.Apps.max
           (Kvstore.fetch (Container.local_store container) Apps.stats_max_key))

let test_per_tenant_hook_policies () =
  (* the paper's §11 limitation — one privilege set per hook — lifted:
     two tenants attach to the SAME hook with different grants *)
  let engine = make_engine () in
  let hook =
    Engine.register_hook engine ~uuid:"shared" ~name:"shared" ~ctx_size:8
      ~policy:(Contract.offer [ Contract.Kv_local ]) ()
  in
  (* the trusted tenant additionally gets the global store *)
  Hook.set_tenant_policy hook ~tenant_id:"trusted"
    (Contract.offer [ Contract.Kv_local; Contract.Kv_global ]);
  let source = "mov r1, 9\nmov r2, 5\ncall bpf_store_global\nmov r0, 0\nexit" in
  let trusted =
    simple_container ~name:"trusted" ~tenant_id:"trusted" engine source
      ~contract:(Contract.require [ Contract.Kv_global ])
  in
  let untrusted =
    simple_container ~name:"untrusted" ~tenant_id:"untrusted" engine source
      ~contract:(Contract.require [ Contract.Kv_global ])
  in
  (* same bytecode, same hook: the trusted tenant attaches... *)
  (match Engine.attach engine ~hook_uuid:"shared" trusted with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  (* ...the untrusted tenant is rejected at pre-flight (ungranted helper) *)
  (match Engine.attach engine ~hook_uuid:"shared" untrusted with
  | Error (Engine.Verification_failed (Fault.Unknown_helper _)) -> ()
  | Ok _ -> Alcotest.fail "untrusted tenant got kv-global on the shared hook"
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  (* and the trusted one actually reaches the global store *)
  (match Engine.trigger engine hook () with
  | [ { Engine.result = Ok _; _ } ] -> ()
  | _ -> Alcotest.fail "trusted container failed");
  Alcotest.(check int64) "written" 5L
    (Kvstore.fetch (Engine.global_store engine) 9l)

let test_multiple_hooks_independent () =
  (* containers on different hooks never see each other's triggers, and a
     single engine dispatches them independently *)
  let engine = make_engine () in
  let hook_a = Engine.register_hook engine ~uuid:"a" ~name:"a" ~ctx_size:8 () in
  let hook_b = Engine.register_hook engine ~uuid:"b" ~name:"b" ~ctx_size:8 () in
  let ca = simple_container ~name:"ca" engine "mov r0, 1\nexit" ~contract:(Contract.require []) in
  let cb = simple_container ~name:"cb" engine "mov r0, 2\nexit" ~contract:(Contract.require []) in
  (match Engine.attach engine ~hook_uuid:"a" ca with
  | Ok _ -> () | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  (match Engine.attach engine ~hook_uuid:"b" cb with
  | Ok _ -> () | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  ignore (Engine.trigger engine hook_a ());
  ignore (Engine.trigger engine hook_a ());
  ignore (Engine.trigger engine hook_b ());
  Alcotest.(check int) "ca ran twice" 2 (Container.executions ca);
  Alcotest.(check int) "cb ran once" 1 (Container.executions cb);
  Alcotest.(check int) "hook a count" 2 (Hook.triggers hook_a);
  Alcotest.(check int) "hook b count" 1 (Hook.triggers hook_b)

let test_certfc_ram_slightly_larger () =
  (* Table 3's CertFC row: the pure engine retains its machine state, so
     per-instance RAM is a little higher than the optimized engine's.
     The comparison is between interpreters, so pin the decoded tier —
     the compiled tier trades RAM (closure table) for dispatch speed. *)
  let helpers = Femto_vm.Helper.create () in
  let program = assemble "mov r0, 0\nexit" in
  let fc =
    match
      Femto_vm.Vm.load ~tier:Femto_vm.Vm.Decoded ~helpers ~regions:[] program
    with
    | Ok vm -> Femto_vm.Vm.ram_bytes vm
    | Error _ -> Alcotest.fail "fc load"
  in
  let cert =
    match Femto_certfc.Certfc.load ~helpers ~regions:[] program with
    | Ok vm -> Femto_certfc.Interp.ram_bytes vm
    | Error _ -> Alcotest.fail "cert load"
  in
  Alcotest.(check bool) "certfc > fc" true (cert > fc);
  Alcotest.(check bool) "within ~200 B" true (cert - fc < 200);
  (* both dominated by the 512 B stack *)
  Alcotest.(check bool) "fc >= stack" true (fc >= 512)

let test_trace_helper () =
  let engine = make_engine () in
  let hook = Engine.register_hook engine ~uuid:"h" ~name:"dbg" ~ctx_size:8 () in
  let container =
    simple_container engine "mov r1, 77\ncall bpf_trace\nexit"
      ~contract:(Contract.require [ Contract.Debug ])
  in
  (match Engine.attach engine ~hook_uuid:"h" container with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  ignore (Engine.trigger engine hook ());
  Alcotest.(check (list int64)) "trace log" [ 77L ] (Engine.trace_log engine)

let test_trigger_charges_kernel_clock () =
  let kernel = Kernel.create () in
  let engine = make_engine ~kernel () in
  let hook = Engine.register_hook engine ~uuid:"h" ~name:"cost" ~ctx_size:8 () in
  let container =
    simple_container engine "mov r0, 0\nexit" ~contract:(Contract.require [])
  in
  (match Engine.attach engine ~hook_uuid:"h" container with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
  let before = Kernel.now kernel in
  ignore (Engine.trigger engine hook ());
  let spent = Int64.sub (Kernel.now kernel) before in
  (* empty-hook dispatch + engine setup + two instructions *)
  Alcotest.(check bool) "cycles > hook dispatch" true
    (Int64.compare spent (Int64.of_int (Engine.platform engine).Platform.empty_hook_cycles) > 0)

let suite =
  [
    Alcotest.test_case "kvstore default zero" `Quick test_kvstore_fetch_default_zero;
    Alcotest.test_case "kvstore roundtrip" `Quick test_kvstore_store_fetch;
    Alcotest.test_case "kvstore bounded" `Quick test_kvstore_bounded;
    Alcotest.test_case "contract intersection" `Quick test_contract_grant_is_intersection;
    Alcotest.test_case "attach and trigger" `Quick test_attach_and_trigger;
    Alcotest.test_case "attach preserves order" `Quick
      test_attach_preserves_order;
    Alcotest.test_case "attach rejects bad program" `Quick test_attach_rejects_bad_program;
    Alcotest.test_case "attach unknown hook" `Quick test_attach_unknown_hook;
    Alcotest.test_case "double attach rejected" `Quick test_double_attach_rejected;
    Alcotest.test_case "context passed" `Quick test_context_passed_to_container;
    Alcotest.test_case "read-only context" `Quick test_readonly_context_protected;
    Alcotest.test_case "fault isolation" `Quick test_fault_isolation_between_containers;
    Alcotest.test_case "capability gating" `Quick test_capability_gating;
    Alcotest.test_case "kv helpers roundtrip" `Quick test_kv_helpers_roundtrip;
    Alcotest.test_case "tenant isolation" `Quick test_tenant_isolation;
    Alcotest.test_case "hot update" `Quick test_hot_update;
    Alcotest.test_case "detach" `Quick test_detach;
    Alcotest.test_case "certfc runtime" `Quick test_certfc_runtime_variant;
    Alcotest.test_case "thread counter app" `Quick test_thread_counter_app;
    Alcotest.test_case "sensor process app" `Quick test_sensor_process_app;
    Alcotest.test_case "fletcher in container" `Quick test_fletcher_in_container_matches_native;
    Alcotest.test_case "stats app" `Quick test_stats_app_matches_native;
    QCheck_alcotest.to_alcotest prop_stats_app_equivalence;
    Alcotest.test_case "per-tenant hook policies" `Quick test_per_tenant_hook_policies;
    Alcotest.test_case "multiple hooks" `Quick test_multiple_hooks_independent;
    Alcotest.test_case "certfc ram accounting" `Quick test_certfc_ram_slightly_larger;
    Alcotest.test_case "trace helper" `Quick test_trace_helper;
    Alcotest.test_case "trigger charges clock" `Quick test_trigger_charges_kernel_clock;
    QCheck_alcotest.to_alcotest prop_fletcher_equivalence;
  ]

let () = Alcotest.run "femto_core" [ ("core", suite) ]
