(* Integration tests for the fc command-line tool: drives the installed
   binary end to end through temp files. *)

let fc_exe =
  (* dune places the binary next to the test executable's tree *)
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/fc.exe"

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("fc-test-" ^ name)

let write path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Run fc with args; return (exit_code, stdout). *)
let run_fc args =
  let out = tmp "stdout" in
  let command =
    Printf.sprintf "%s %s > %s 2>/dev/null" (Filename.quote fc_exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command command in
  (code, read out)

let check_exe () =
  if not (Sys.file_exists fc_exe) then
    Alcotest.skip ()

let contains haystack needle = Astring.String.is_infix ~affix:needle haystack

let test_asm_run_roundtrip () =
  check_exe ();
  let src = tmp "prog.S" and bin = tmp "prog.bin" in
  write src "mov r1, 6\nmul r1, 7\nmov r0, r1\nexit\n";
  let code, out = run_fc [ "asm"; src; "-o"; bin ] in
  Alcotest.(check int) "asm exit" 0 code;
  Alcotest.(check bool) "asm report" true (contains out "4 instructions");
  let code, out = run_fc [ "run"; bin ] in
  Alcotest.(check int) "run exit" 0 code;
  Alcotest.(check bool) "result" true (contains out "r0 = 42")

let test_verify_rejects () =
  check_exe ();
  let src = tmp "bad.S" and bin = tmp "bad.bin" in
  write src "mov r0, 1\nadd r0, 1\n";
  ignore (run_fc [ "asm"; src; "-o"; bin ]);
  let code, out = run_fc [ "verify"; bin ] in
  Alcotest.(check int) "nonzero exit" 1 code;
  Alcotest.(check bool) "reason" true (contains out "must end with exit")

let test_disasm () =
  check_exe ();
  let src = tmp "d.S" and bin = tmp "d.bin" in
  write src "mov r0, 5\nexit\n";
  ignore (run_fc [ "asm"; src; "-o"; bin ]);
  let code, out = run_fc [ "disasm"; bin ] in
  Alcotest.(check int) "exit" 0 code;
  Alcotest.(check bool) "mov" true (contains out "mov r0, 5")

let test_compact_expand () =
  check_exe ();
  let src = tmp "c.S" and bin = tmp "c.bin" in
  let fcz = tmp "c.fcz" and bin2 = tmp "c2.bin" in
  write src "mov r1, 1\nadd r1, 2\nmov r0, r1\nexit\n";
  ignore (run_fc [ "asm"; src; "-o"; bin ]);
  let code, out = run_fc [ "compact"; bin; "-o"; fcz ] in
  Alcotest.(check int) "compact exit" 0 code;
  Alcotest.(check bool) "ratio shown" true (contains out "ratio");
  let code, _ = run_fc [ "expand"; fcz; "-o"; bin2 ] in
  Alcotest.(check int) "expand exit" 0 code;
  Alcotest.(check string) "roundtrip identical" (read bin) (read bin2)

let test_compile_and_run () =
  check_exe ();
  let src = tmp "app.fcs" and bin = tmp "app.bin" in
  write src "fn main(x) { let acc = 0; let i = 0; while (i <= x) { acc = acc + i; i = i + 1; } return acc; }\n";
  let code, out = run_fc [ "compile"; src; "-o"; bin ] in
  Alcotest.(check int) "compile exit" 0 code;
  Alcotest.(check bool) "report" true (contains out "compiled 'main'");
  let code, out = run_fc [ "run"; bin; "--arg"; "10" ] in
  Alcotest.(check int) "run exit" 0 code;
  Alcotest.(check bool) "sum" true (contains out "r0 = 55")

let test_suit_sign_verify () =
  check_exe ();
  let payload = tmp "payload.bin" and manifest = tmp "m.suit" in
  write payload "container bytes";
  let code, _ =
    run_fc
      [ "suit-sign"; "--key"; "s3cret"; "--uuid"; "hook-1"; "--seq"; "5";
        payload; "-o"; manifest ]
  in
  Alcotest.(check int) "sign exit" 0 code;
  let code, out =
    run_fc
      [ "suit-verify"; "--key"; "s3cret"; "--uuid"; "hook-1"; manifest;
        "--payload"; payload ]
  in
  Alcotest.(check int) "verify exit" 0 code;
  Alcotest.(check bool) "seq reported" true (contains out "seq 5");
  let code, out =
    run_fc
      [ "suit-verify"; "--key"; "wrong"; "--uuid"; "hook-1"; manifest;
        "--payload"; payload ]
  in
  Alcotest.(check int) "wrong key exit" 1 code;
  Alcotest.(check bool) "rejection" true (contains out "REJECTED")

let test_verify_reports_static_counts () =
  check_exe ();
  let src = tmp "v.S" and bin = tmp "v.bin" in
  write src "mov r1, 1\ncall bpf_now_ms\ncall bpf_now_ms\nmov r0, 0\nexit\n";
  ignore (run_fc [ "asm"; src; "-o"; bin ]);
  let code, out = run_fc [ "verify"; bin ] in
  Alcotest.(check int) "exit" 0 code;
  Alcotest.(check bool) "instruction count" true (contains out "5 instructions");
  Alcotest.(check bool) "branch count" true (contains out "0 branches");
  (* two calls to the same helper are one distinct id *)
  Alcotest.(check bool) "distinct helper ids" true
    (contains out "1 distinct helper id")

let test_analyze_accepts () =
  check_exe ();
  let src = tmp "a.S" and bin = tmp "a.bin" in
  write src "mov r2, r10\nsub r2, 16\nstdw [r2+0], 9\nldxdw r0, [r2+0]\nexit\n";
  ignore (run_fc [ "asm"; src; "-o"; bin ]);
  let code, out = run_fc [ "analyze"; bin ] in
  Alcotest.(check int) "exit" 0 code;
  Alcotest.(check bool) "verdict" true (contains out "\"verdict\": \"accepted\"");
  Alcotest.(check bool) "dag" true (contains out "\"termination\": \"dag\"");
  Alcotest.(check bool) "fast path" true
    (contains out "\"fastpath_eligible\": true")

let test_analyze_rejects_uninit () =
  check_exe ();
  let src = tmp "u.S" and bin = tmp "u.bin" in
  write src "mov r0, r6\nexit\n";
  ignore (run_fc [ "asm"; src; "-o"; bin ]);
  (* the shape-only verifier is happy... *)
  let code, _ = run_fc [ "verify"; bin ] in
  Alcotest.(check int) "verify exit" 0 code;
  (* ...but the analyzer is not *)
  let code, out = run_fc [ "analyze"; bin ] in
  Alcotest.(check int) "analyze exit" 1 code;
  Alcotest.(check bool) "verdict" true (contains out "\"verdict\": \"rejected\"");
  Alcotest.(check bool) "diagnostic kind" true (contains out "uninit_read")

(* --tier ir runs a program through the analyzer-driven IR backend. *)
let test_run_tier_ir () =
  check_exe ();
  let src = tmp "ir.S" and bin = tmp "ir.bin" in
  write src
    "mov r2, r10\nsub r2, 16\nstdw [r2+0], 40\nldxdw r0, [r2+0]\nadd r0, \
     2\nexit\n";
  ignore (run_fc [ "asm"; src; "-o"; bin ]);
  let code, out = run_fc [ "run"; "--tier"; "ir"; bin ] in
  Alcotest.(check int) "run exit" 0 code;
  Alcotest.(check bool) "result" true (contains out "r0 = 42")

(* The committed examples/progs/*.ir.json goldens must match what
   `fc analyze --ir` says about the .S mirrors today — superblock shape,
   per-pass rewrite counts and elided/hoisted check counts are pinned. *)
let prog_dir =
  Filename.concat (Filename.dirname Sys.executable_name) "../examples/progs"

let test_analyze_ir_goldens () =
  check_exe ();
  let sources =
    Sys.readdir prog_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".S")
    |> List.sort compare
  in
  Alcotest.(check bool) "goldens exist" true (sources <> []);
  List.iter
    (fun s ->
      let name = Filename.chop_suffix s ".S" in
      let bin = tmp (name ^ ".bin") in
      ignore (run_fc [ "asm"; Filename.concat prog_dir s; "-o"; bin ]);
      let _, out = run_fc [ "analyze"; "--ir"; bin ] in
      let golden = read (Filename.concat prog_dir (name ^ ".ir.json")) in
      Alcotest.(check string) (name ^ ".ir.json current") golden out)
    sources

let test_run_reports_faults () =
  check_exe ();
  let src = tmp "f.S" and bin = tmp "f.bin" in
  write src "mov r1, 0\nldxdw r0, [r1]\nexit\n";
  ignore (run_fc [ "asm"; src; "-o"; bin ]);
  let code, out = run_fc [ "run"; bin ] in
  Alcotest.(check int) "fault exit" 1 code;
  Alcotest.(check bool) "fault message" true (contains out "FAULT")

let suite =
  [
    Alcotest.test_case "asm + run" `Quick test_asm_run_roundtrip;
    Alcotest.test_case "verify rejects" `Quick test_verify_rejects;
    Alcotest.test_case "disasm" `Quick test_disasm;
    Alcotest.test_case "compact/expand" `Quick test_compact_expand;
    Alcotest.test_case "compile + run" `Quick test_compile_and_run;
    Alcotest.test_case "suit sign/verify" `Quick test_suit_sign_verify;
    Alcotest.test_case "fault reporting" `Quick test_run_reports_faults;
    Alcotest.test_case "verify static counts" `Quick
      test_verify_reports_static_counts;
    Alcotest.test_case "analyze accepts" `Quick test_analyze_accepts;
    Alcotest.test_case "analyze rejects uninit" `Quick
      test_analyze_rejects_uninit;
    Alcotest.test_case "run --tier ir" `Quick test_run_tier_ir;
    Alcotest.test_case "analyze --ir goldens" `Quick test_analyze_ir_goldens;
  ]

let () = Alcotest.run "femto_cli" [ ("cli", suite) ]
