(* Cross-runtime corpus: result equivalence and gate behaviour.

   Every (runtime, tier) expression of every L1/L2 workload must produce
   the native reference result — this is the invariant that lets the
   corpus driver benchmark them as "the same computation".  A second
   block checks the handwritten .S mirrors in examples/progs/ stay in
   sync with the corpus sources, and a third exercises the baseline
   ratio gate on an injected slowdown without any timing. *)

open Femto_workloads

let check_workload (w : Harness.workload) () =
  List.iter
    (fun (impl : Harness.impl) ->
      let inst = impl.mk () in
      let label = w.wname ^ " [" ^ impl.runtime ^ "/" ^ impl.tier ^ "]" in
      (* twice: a second run from the same instance must not diverge
         (catches state leaking between timed runs) *)
      Alcotest.(check int64) label w.expected (inst.run ());
      Alcotest.(check int64) (label ^ " (rerun)") w.expected (inst.run ());
      inst.dispose ())
    w.impls

let equivalence_tests =
  List.map
    (fun (w : Harness.workload) ->
      Alcotest.test_case w.wname `Quick (check_workload w))
    (Corpus.all ())

(* Results must also be non-degenerate: a kernel that returns 0 (or its
   own argument) would make equivalence vacuous. *)
let test_nondegenerate () =
  List.iter
    (fun (w : Harness.workload) ->
      Alcotest.(check bool)
        (w.wname ^ " expected non-zero") true
        (not (Int64.equal w.expected 0L)))
    (Corpus.all ());
  (* the L2 filters must actually accept/flag something *)
  Alcotest.(check bool)
    "packet filter accepts some packets" true
    (Int64.compare (Int64.shift_right_logical (Packet_filter.reference ()) 32) 0L
    > 0);
  Alcotest.(check bool)
    "anomaly detector flags some values" true
    (Int64.compare (Int64.shift_right_logical (Anomaly.reference ()) 32) 0L > 0)

(* Every impl list covers the full runtime matrix the ISSUE promises. *)
let test_matrix_coverage () =
  let required =
    [
      ("rbpf", "decoded"); ("rbpf", "trimmed"); ("rbpf", "compiled");
      ("rbpf", "compiled-fused"); ("rbpf", "ir"); ("wasm", "interp");
      ("wasm", "fast");
      ("script", "tree"); ("script", "stack"); ("script", "to-ebpf");
    ]
  in
  List.iter
    (fun (w : Harness.workload) ->
      List.iter
        (fun (runtime, tier) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s has %s/%s" w.wname runtime tier)
            true
            (List.exists
               (fun (i : Harness.impl) -> i.runtime = runtime && i.tier = tier)
               w.impls))
        required)
    (Corpus.all ())

(* The committed .S mirrors of the corpus kernels must assemble to the
   exact programs the corpus runs, so `fc analyze examples/progs/*.S`
   reports on the real thing. *)
let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let prog_path name =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat "../examples/progs" name)

let test_asm_mirrors () =
  let check name source =
    let mirrored = Femto_ebpf.Asm.assemble (read_file (prog_path name)) in
    let corpus = Femto_ebpf.Asm.assemble source in
    Alcotest.(check bool)
      (name ^ " matches corpus source")
      true (mirrored = corpus)
  in
  check "fib.S" Fib.ebpf_source;
  check "sieve.S" Sieve.ebpf_source

let suite =
  [
    ("equivalence", equivalence_tests);
    ( "corpus-invariants",
      [
        Alcotest.test_case "non-degenerate results" `Quick test_nondegenerate;
        Alcotest.test_case "runtime matrix coverage" `Quick
          test_matrix_coverage;
        Alcotest.test_case "examples/progs mirrors" `Quick test_asm_mirrors;
      ] );
  ]

let () = Alcotest.run "corpus" suite
