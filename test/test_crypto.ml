(* Crypto tests: SHA-256 NIST/FIPS vectors, HMAC-SHA256 RFC 4231 vectors,
   COSE sign/verify with tamper and wrong-key rejection. *)

module Crypto = Femto_crypto.Crypto
module Sha256 = Femto_crypto.Sha256
module Cose = Femto_cose.Cose

let check_sha input expected_hex =
  Alcotest.(check string) ("sha256 of " ^ String.escaped input) expected_hex
    (Crypto.to_hex (Crypto.sha256 input))

let test_sha256_vectors () =
  check_sha "" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
  check_sha "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
  check_sha "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
  (* FIPS 180-4 896-bit two-block message *)
  check_sha "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1";
  (* one million 'a': the classic long-message vector *)
  check_sha (String.make 1_000_000 'a')
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"

let test_sha256_block_boundaries () =
  (* lengths around the 64-byte block and 56-byte padding edges *)
  let reference = [
    (55, "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
    (56, "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
    (57, "f13b2d724659eb3bf47f2dd6af1accc87b81f09f59f2b75e5c0bed6589dfe8c6");
    (63, "7d3e74a05d7db15bce4ad9ec0658ea98e3f06eeecf16b4c6fff2da457ddc2f34");
    (64, "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
    (65, "635361c48bb9eab14198e76ea8ab7f1a41685d6ad62aa9146d301d4f17eb0ae0");
  ]
  in
  List.iter
    (fun (n, expected) -> check_sha (String.make n 'a') expected)
    reference

let test_sha256_incremental () =
  (* feeding in odd-sized chunks must equal one-shot hashing *)
  let message = String.init 1000 (fun i -> Char.chr (i mod 251)) in
  let ctx = Sha256.init () in
  let rec feed pos step =
    if pos < String.length message then begin
      let n = min step (String.length message - pos) in
      Sha256.update_string ctx (String.sub message pos n);
      feed (pos + n) (step + 7)
    end
  in
  feed 0 1;
  Alcotest.(check string) "incremental = one-shot"
    (Crypto.to_hex (Crypto.sha256 message))
    (Crypto.to_hex (Sha256.finalize ctx))

(* Arbitrary chunkings of arbitrary messages: the streaming digest the
   CoAP Block1 path drives must equal one-shot hashing no matter how the
   transfer is split. *)
let prop_sha256_chunking =
  QCheck.Test.make ~name:"incremental = one-shot under any chunking"
    ~count:200
    QCheck.(
      make
        Gen.(
          pair
            (string_size ~gen:char (int_range 0 600))
            (list_size (int_range 0 20) (int_range 1 100))))
    (fun (message, cuts) ->
      let ctx = Sha256.init () in
      let pos = ref 0 in
      List.iter
        (fun step ->
          let n = min step (String.length message - !pos) in
          if n > 0 then begin
            Sha256.update_substring ctx message !pos n;
            pos := !pos + n
          end)
        cuts;
      Sha256.update_substring ctx message !pos (String.length message - !pos);
      String.equal (Crypto.sha256 message) (Sha256.finalize ctx))

let test_sha256_copy_independent () =
  (* extending a copied midstate must not disturb the original *)
  let ctx = Sha256.init () in
  Sha256.update_string ctx "common prefix ";
  let branch = Sha256.copy ctx in
  Sha256.update_string branch "left";
  Sha256.update_string ctx "right";
  Alcotest.(check string) "branch"
    (Crypto.to_hex (Crypto.sha256 "common prefix left"))
    (Crypto.to_hex (Sha256.finalize branch));
  Alcotest.(check string) "original"
    (Crypto.to_hex (Crypto.sha256 "common prefix right"))
    (Crypto.to_hex (Sha256.finalize ctx))

(* RFC 4231 HMAC-SHA256 test cases. *)
let test_hmac_vectors () =
  let check ~key ~data expected =
    Alcotest.(check string) "hmac" expected
      (Crypto.to_hex (Crypto.hmac_sha256 ~key data))
  in
  check
    ~key:(String.make 20 '\x0b')
    ~data:"Hi There"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7";
  check ~key:"Jefe" ~data:"what do ya want for nothing?"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843";
  check
    ~key:(String.make 20 '\xaa')
    ~data:(String.make 50 '\xdd')
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe";
  (* key longer than the block size *)
  check
    ~key:(String.make 131 '\xaa')
    ~data:"Test Using Larger Than Block-Size Key - Hash Key First"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"

let test_constant_time_equal () =
  Alcotest.(check bool) "equal" true (Crypto.constant_time_equal "abc" "abc");
  Alcotest.(check bool) "differs" false (Crypto.constant_time_equal "abc" "abd");
  Alcotest.(check bool) "length differs" false (Crypto.constant_time_equal "ab" "abc")

let test_hex_roundtrip () =
  Alcotest.(check string) "roundtrip" "\x00\xff\x10"
    (Crypto.of_hex (Crypto.to_hex "\x00\xff\x10"));
  Alcotest.(check string) "upper accepted" "\xab" (Crypto.of_hex "AB")

(* --- COSE --- *)

let key = Cose.make_key ~key_id:"device-key-1" ~secret:"super secret key material"

let test_cose_sign_verify () =
  let payload = "the manifest bytes" in
  let envelope = Cose.sign key payload in
  match Cose.verify key envelope with
  | Ok recovered -> Alcotest.(check string) "payload" payload recovered
  | Error e -> Alcotest.fail (Cose.error_to_string e)

let test_cose_tamper_rejected () =
  let envelope = Cose.sign key "payload" in
  (* flip one byte somewhere in the middle *)
  let tampered = Bytes.of_string envelope in
  let i = String.length envelope / 2 in
  Bytes.set tampered i (Char.chr (Char.code (Bytes.get tampered i) lxor 1));
  match Cose.verify key (Bytes.to_string tampered) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered envelope accepted"

let test_cose_wrong_key_rejected () =
  let envelope = Cose.sign key "payload" in
  let other = Cose.make_key ~key_id:"device-key-1" ~secret:"different secret" in
  match Cose.verify other envelope with
  | Error Cose.Bad_signature -> ()
  | Ok _ -> Alcotest.fail "wrong key accepted"
  | Error e -> Alcotest.failf "unexpected: %s" (Cose.error_to_string e)

let test_cose_wrong_key_id_rejected () =
  let envelope = Cose.sign key "payload" in
  let other = Cose.make_key ~key_id:"other-key" ~secret:"super secret key material" in
  match Cose.verify other envelope with
  | Error (Cose.Wrong_key_id "device-key-1") -> ()
  | Ok _ -> Alcotest.fail "wrong key id accepted"
  | Error e -> Alcotest.failf "unexpected: %s" (Cose.error_to_string e)

let test_cose_garbage_rejected () =
  match Cose.verify key "not cbor at all \x00\x01" with
  | Error (Cose.Malformed _) -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error e -> Alcotest.failf "unexpected: %s" (Cose.error_to_string e)

let prop_cose_roundtrip =
  QCheck.Test.make ~name:"cose roundtrip on random payloads" ~count:100
    QCheck.(make Gen.(string_size ~gen:char (int_range 0 512)))
    (fun payload ->
      match Cose.verify key (Cose.sign key payload) with
      | Ok recovered -> String.equal recovered payload
      | Error _ -> false)

let prop_cose_bitflip_rejected =
  QCheck.Test.make ~name:"any bitflip is rejected" ~count:200
    QCheck.(make Gen.(pair (string_size ~gen:char (int_range 1 64)) (pair small_nat small_nat)))
    (fun (payload, (byte_idx, bit_idx)) ->
      let envelope = Cose.sign key payload in
      let i = byte_idx mod String.length envelope in
      let bit = bit_idx mod 8 in
      let tampered = Bytes.of_string envelope in
      Bytes.set tampered i (Char.chr (Char.code envelope.[i] lxor (1 lsl bit)));
      let tampered = Bytes.to_string tampered in
      if String.equal tampered envelope then true
      else
        match Cose.verify key tampered with
        | Error _ -> true
        | Ok recovered ->
            (* flipping inside the payload while the signature still
               verifies must be impossible *)
            String.equal recovered payload)

let suite =
  [
    Alcotest.test_case "sha256 vectors" `Quick test_sha256_vectors;
    Alcotest.test_case "sha256 block boundaries" `Quick test_sha256_block_boundaries;
    Alcotest.test_case "sha256 incremental" `Quick test_sha256_incremental;
    Alcotest.test_case "sha256 copy" `Quick test_sha256_copy_independent;
    Alcotest.test_case "hmac vectors" `Quick test_hmac_vectors;
    Alcotest.test_case "constant-time equal" `Quick test_constant_time_equal;
    Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
    Alcotest.test_case "cose sign/verify" `Quick test_cose_sign_verify;
    Alcotest.test_case "cose tamper" `Quick test_cose_tamper_rejected;
    Alcotest.test_case "cose wrong key" `Quick test_cose_wrong_key_rejected;
    Alcotest.test_case "cose wrong key id" `Quick test_cose_wrong_key_id_rejected;
    Alcotest.test_case "cose garbage" `Quick test_cose_garbage_rejected;
    QCheck_alcotest.to_alcotest prop_sha256_chunking;
    QCheck_alcotest.to_alcotest prop_cose_roundtrip;
    QCheck_alcotest.to_alcotest prop_cose_bitflip_rejected;
  ]

let () = Alcotest.run "femto_crypto" [ ("crypto", suite) ]
