(* The analyzer-driven register-IR tier: superblock lifting, the pass
   pipeline, and the per-block compiled backend.

   The headline property mirrors test_compile.ml but is stronger than
   the analysis-compiled test there: the IR tier must be EXACTLY
   indistinguishable from the decoded interpreter — same r0, same fault
   constructor with the same payload (pc, address, register), and every
   statistics field equal at the stopping point — because lifting keeps
   per-step weights/costs and the backend batches accounting only
   between fault points.  A second block checks the same property under
   every pass-pipeline configuration, so each optimization is
   individually proven observation-preserving.  Goldens then pin the
   elision/hoisting behaviour on the corpus kernels. *)

module Insn = Femto_ebpf.Insn
module Opcode = Femto_ebpf.Opcode
module Program = Femto_ebpf.Program
module Asm = Femto_ebpf.Asm
module Vm = Femto_vm.Vm
module Interp = Femto_vm.Interp
module Compile = Femto_vm.Compile
module Fault = Femto_vm.Fault
module Helper = Femto_vm.Helper
module Config = Femto_vm.Config
module Analysis = Femto_analysis.Analysis
module Passes = Femto_analysis.Passes
module Ir = Femto_analysis.Ir
module Vir = Femto_vm.Ir
module Fletcher = Femto_workloads.Fletcher
module Dagsum = Femto_workloads.Dagsum
module Loop_sum = Femto_workloads.Loop_sum
module Sieve = Femto_workloads.Sieve
module Hotcall = Femto_workloads.Hotcall

let no_helpers = Helper.create ()

(* Bounded budgets so generated infinite loops fault quickly; identical
   config on every tier keeps budget faults comparable bit-for-bit. *)
let config = { Config.default with Config.max_branches = 256 }

(* Same generator family as test_compile.ml: ALU (with div/mod zero
   faults), stack traffic, forward and backward jumps — loops exercise
   the checked-mode budget guard, stack slots exercise elision. *)
let gen_program =
  let open QCheck.Gen in
  let reg = int_range 0 5 in
  let alu_imm =
    map3
      (fun op dst imm ->
        Insn.make (Opcode.alu64 op Opcode.Src_imm) ~dst ~imm:(Int32.of_int imm))
      (oneofl
         Opcode.[ Add; Sub; Mul; Div; Mod; Or; And; Xor; Mov; Arsh; Lsh; Rsh ])
      reg (int_range (-3) 1000)
  in
  let alu_reg =
    map3
      (fun op dst src -> Insn.make (Opcode.alu64 op Opcode.Src_reg) ~dst ~src)
      (oneofl Opcode.[ Add; Sub; Mul; Div; Or; And; Xor; Mov ])
      reg reg
  in
  let alu32 =
    map3
      (fun op dst imm ->
        Insn.make (Opcode.alu32 op Opcode.Src_imm) ~dst ~imm:(Int32.of_int imm))
      (oneofl Opcode.[ Add; Sub; Mul; Mov; Xor ])
      reg (int_range (-1000) 1000)
  in
  let stack_store =
    map2
      (fun src slot ->
        Insn.make (Opcode.stx Opcode.DW) ~dst:10 ~src ~offset:(-8 * (slot + 1)))
      reg (int_range 0 7)
  in
  let stack_load =
    map2
      (fun dst slot ->
        Insn.make (Opcode.ldx Opcode.DW) ~dst ~src:10 ~offset:(-8 * (slot + 1)))
      reg (int_range 0 7)
  in
  let forward_jump =
    map3
      (fun cond dst off ->
        Insn.make (Opcode.jmp cond Opcode.Src_imm) ~dst ~offset:off ~imm:5l)
      (oneofl Opcode.[ Jeq; Jne; Jgt; Jlt; Jsge ])
      reg (int_range 0 3)
  in
  let backward_jump =
    map3
      (fun cond dst off ->
        Insn.make (Opcode.jmp cond Opcode.Src_imm) ~dst ~offset:off ~imm:3l)
      (oneofl Opcode.[ Jne; Jgt; Jlt ])
      reg (int_range (-4) (-1))
  in
  let body =
    list_size (int_range 2 40)
      (frequency
         [
           (5, alu_imm); (4, alu_reg); (2, alu32); (3, stack_store);
           (3, stack_load); (2, forward_jump); (1, backward_jump);
         ])
  in
  map (fun insns -> Program.of_insns (insns @ [ Insn.make Opcode.exit' ])) body

(* Exact outcome: the result or fault rendered verbatim, plus every
   statistics field at the stopping point. *)
let exact_outcome vm =
  let r =
    match Vm.run vm with
    | Ok v -> Printf.sprintf "ok:%Ld" v
    | Error f -> "fault:" ^ Fault.to_string f
  in
  let s = Vm.stats vm in
  Printf.sprintf "%s insns=%d branches=%d helpers=%d cycles=%d" r
    s.Interp.insns_executed s.Interp.branches_taken s.Interp.helper_calls
    s.Interp.cycles

let load_decoded program =
  Vm.load ~config ~tier:Vm.Decoded ~helpers:no_helpers ~regions:[] program

let load_ir ?passes program =
  Analysis.load ~config ~tier:Vm.Ir ?passes ~helpers:no_helpers ~regions:[]
    program

let prop_exact ~name ?passes () =
  QCheck.Test.make ~name ~count:300 (QCheck.make gen_program) (fun program ->
      match (load_decoded program, load_ir ?passes program) with
      | Error _, Error _ -> true
      | Ok d, Ok i -> String.equal (exact_outcome d) (exact_outcome i)
      | _ -> false)

let prop_ir_exact = prop_exact ~name:"ir = decoded (exact fault + stats)" ()

(* Each pass proven observation-preserving in isolation, plus the empty
   pipeline (raw lifted superblocks). *)
let single name field =
  prop_exact
    ~name:(Printf.sprintf "ir[%s only] = decoded" name)
    ~passes:field ()

let prop_passes_exact =
  [
    prop_exact ~name:"ir[no passes] = decoded" ~passes:Passes.none ();
    single "canon" { Passes.none with Passes.canon = true };
    single "const-fold" { Passes.none with Passes.const_fold = true };
    single "dead-elim" { Passes.none with Passes.dead_elim = true };
    single "bounds-elim" { Passes.none with Passes.bounds_elim = true };
  ]

(* --- goldens --- *)

let assemble = Asm.assemble

let analysis_load_ok ?passes ?(helpers = no_helpers) ?(regions = []) program =
  match Analysis.load ~tier:Vm.Ir ?passes ~helpers ~regions program with
  | Ok vm -> vm
  | Error fault -> Alcotest.failf "load: %s" (Fault.to_string fault)

let run_ok ?(args = [||]) vm =
  match Vm.run vm ~args with
  | Ok v -> v
  | Error fault -> Alcotest.failf "run: %s" (Fault.to_string fault)

let compiled_of vm =
  match Vm.compiled vm with
  | Some cc -> cc
  | None -> Alcotest.fail "expected a compiled instance"

(* dagsum is a DAG with constant-offset stack spills: the analyzer
   proves every stack access and the IR tier elides all of its bounds
   checks (and region-caches the data-pointer accesses). *)
let test_dagsum_elides () =
  let data = Fletcher.input_360 in
  let vm = analysis_load_ok ~regions:(Dagsum.regions data) (Dagsum.ebpf_program ()) in
  Alcotest.(check bool) "ir tier selected" true (Vm.tier vm = Vm.Ir);
  let cc = compiled_of vm in
  Alcotest.(check bool) "stack checks elided" true (Compile.elided_count cc > 0);
  Alcotest.(check int64) "result" (Dagsum.reference data)
    (run_ok ~args:[| Dagsum.data_vaddr |] vm)

(* sieve walks a data region through a computed pointer: nothing is
   provable at compile time, so no check is elided — every access is
   served through the hoisted per-site region cache instead. *)
let test_sieve_hoists_not_elides () =
  let vm = analysis_load_ok ~regions:(Sieve.regions ()) (Sieve.ebpf_program ()) in
  let cc = compiled_of vm in
  Alcotest.(check int) "nothing elided" 0 (Compile.elided_count cc);
  Alcotest.(check bool) "region cache installed" true
    (Compile.hoisted_count cc > 0);
  Alcotest.(check int64) "result" (Sieve.reference ())
    (run_ok ~args:Sieve.ebpf_args vm)

(* A stack access at a register-scaled offset is NOT proven (the
   interval covers the whole frame after widening), so its check must
   survive the bounds-elision pass. *)
let test_unproven_not_elided () =
  let program =
    assemble
      {|
        and   r1, 7          ; unknown scalar 0..7
        lsh   r1, 3
        mov   r2, r10
        sub   r2, 64
        add   r2, r1         ; stack pointer at an unproven offset
        mov   r3, 42
        stxdw [r2-8], r3
        ldxdw r0, [r2-8]
        exit
      |}
  in
  let vm = analysis_load_ok program in
  let cc = compiled_of vm in
  Alcotest.(check int) "unproven access not elided" 0 (Compile.elided_count cc);
  Alcotest.(check int64) "result" 42L (run_ok ~args:[| 0L |] vm)

(* Fault payloads and stats survive the IR backend bit-for-bit,
   including budget exhaustion mid-loop under a tight branch budget. *)
let test_fault_parity_goldens () =
  let cases =
    [
      ("div by zero", "mov r0, 10\nmov r1, 0\ndiv r0, r1\nexit");
      ("mod by zero imm", "mov r0, 10\nmod r0, 0\nexit");
      ("oob store", "mov r1, 5\nstxdw [r10-600], r1\nexit");
      ("oob load", "ldxdw r0, [r10+8]\nexit");
      ( "branch budget",
        "mov r2, 1\nloop:\nadd r2, 1\njne r2, 0, loop\nmov r0, 0\nexit" );
      ( "proven oob store",
        (* constant OOB offset: analyzer flags it, check must fire *)
        "mov r1, 7\nstxdw [r10+100], r1\nexit" );
    ]
  in
  List.iter
    (fun (name, source) ->
      let program = assemble source in
      let d =
        match load_decoded program with
        | Ok vm -> vm
        | Error f -> Alcotest.failf "%s: %s" name (Fault.to_string f)
      in
      let i =
        match load_ir program with
        | Ok vm -> vm
        | Error f -> Alcotest.failf "%s: %s" name (Fault.to_string f)
      in
      Alcotest.(check string) name (exact_outcome d) (exact_outcome i))
    cases

(* The loop kernels agree with their references through the IR tier
   (checked mode: back edges keep the budget guard). *)
let test_corpus_kernels_through_ir () =
  let data = Fletcher.input_360 in
  let loop =
    analysis_load_ok ~regions:(Loop_sum.regions data) (Loop_sum.ebpf_program ())
  in
  Alcotest.(check int64) "loop_sum" (Loop_sum.reference data)
    (run_ok ~args:[| Loop_sum.data_vaddr |] loop);
  let hot =
    analysis_load_ok ~helpers:(Hotcall.helpers ()) (Hotcall.ebpf_program ())
  in
  Alcotest.(check int64) "hotcall" Hotcall.reference (run_ok hot)

(* --- the pass pipeline on lifted IR, structurally ------------------- *)

let lift_optimized ?passes source =
  let program = assemble source in
  let outcome =
    match Analysis.analyze Config.default program with
    | Ok o -> o
    | Error f -> Alcotest.failf "analyze: %s" (Fault.to_string f)
  in
  let lifted =
    Ir.lift ~cost:Interp.no_cost ~facts:outcome.Analysis.mem_facts program
  in
  Passes.run ?config:passes lifted

(* Constant folding collapses a pure imm chain to its final value and
   dead-write elimination then drops the intermediates. *)
let test_fold_and_dead_elim () =
  let optimized, report =
    lift_optimized
      {|
        mov r1, 6
        mul r1, 7
        mov r2, r1
        add r2, 58
        mov r0, r2
        exit
      |}
  in
  Alcotest.(check bool) "folds happened" true (report.Passes.folded > 0);
  Alcotest.(check bool) "dead writes eliminated" true
    (report.Passes.eliminated > 0);
  (* every step folds to a constant write; the overwritten intermediate
     writes die, the final write per register survives (the exit barrier
     keeps all registers conservatively live) *)
  Alcotest.(check int) "three live steps" 3
    (Vir.count_ops (fun op -> op <> Vir.Nop) optimized);
  (* decoded accounting is preserved: the block still weighs 6 insns *)
  Alcotest.(check int) "weight preserved" 6 optimized.Vir.blocks.(0).Vir.weight

(* A constant-true conditional truncates the block into an
   unconditional jump; constant-false folds to a dropped step. *)
let test_jcond_folding () =
  let optimized, _ =
    lift_optimized
      {|
        mov  r1, 5
        jeq  r1, 5, take
        mov  r0, 1
        exit
      take:
        mov  r0, 2
        exit
      |}
  in
  (match optimized.Vir.blocks.(0).Vir.term with
  | Vir.Jump _ -> ()
  | _ -> Alcotest.fail "constant-true jcond did not become a jump");
  let optimized, _ =
    lift_optimized
      {|
        mov  r1, 5
        jeq  r1, 6, take
        mov  r0, 1
        exit
      take:
        mov  r0, 2
        exit
      |}
  in
  Alcotest.(check bool) "constant-false jcond dropped" true
    (Array.for_all
       (fun (s : Vir.step) ->
         match s.Vir.op with Vir.Jcond _ -> false | _ -> true)
       optimized.Vir.blocks.(0).Vir.steps)

(* Superblocks extend across side exits: a straight-line run with an
   untaken conditional lifts to ONE block containing a Jcond step. *)
let test_superblock_extends_across_jcond () =
  let program =
    assemble
      {|
        mov  r1, 1
        jeq  r1, 9, out   ; side exit, never taken
        add  r1, 2
        mov  r0, r1
      out:
        exit
      |}
  in
  let lifted =
    Ir.lift ~cost:Interp.no_cost
      ~facts:(Array.make (Program.length program) None)
      program
  in
  (* two blocks: entry (with the side exit inside) and the target *)
  Alcotest.(check int) "blocks" 2 (Array.length lifted.Vir.blocks);
  Alcotest.(check bool) "entry holds the side exit" true
    (Array.exists
       (fun (s : Vir.step) ->
         match s.Vir.op with Vir.Jcond _ -> true | _ -> false)
       lifted.Vir.blocks.(0).Vir.steps)

(* The analyzer dedupes repeated uninit-read reports per register. *)
let test_uninit_dedupe () =
  let program =
    assemble
      {|
        mov r0, r3
        mov r1, r3
        add r1, r3
        exit
      |}
  in
  match Analysis.analyze Config.default program with
  | Error f -> Alcotest.failf "analyze: %s" (Fault.to_string f)
  | Ok outcome ->
      let uninit =
        List.filter
          (fun (d : Analysis.diag) -> d.Analysis.kind = "uninit_read")
          outcome.Analysis.diags
      in
      Alcotest.(check int) "one uninit-read diag for r3" 1 (List.length uninit);
      (match uninit with
      | [ d ] -> Alcotest.(check int) "reported at first read" 0 d.Analysis.pc
      | _ -> ());
      (* diags stay sorted by pc *)
      let pcs = List.map (fun (d : Analysis.diag) -> d.Analysis.pc) outcome.Analysis.diags in
      Alcotest.(check (list int)) "sorted by pc" (List.sort compare pcs) pcs

let () =
  Alcotest.run "femto_ir"
    [
      ( "differential",
        QCheck_alcotest.to_alcotest prop_ir_exact
        :: List.map QCheck_alcotest.to_alcotest prop_passes_exact );
      ( "goldens",
        [
          Alcotest.test_case "dagsum elides proven checks" `Quick
            test_dagsum_elides;
          Alcotest.test_case "sieve hoists, never elides" `Quick
            test_sieve_hoists_not_elides;
          Alcotest.test_case "unproven access keeps its check" `Quick
            test_unproven_not_elided;
          Alcotest.test_case "fault parity goldens" `Quick
            test_fault_parity_goldens;
          Alcotest.test_case "corpus kernels through ir" `Quick
            test_corpus_kernels_through_ir;
        ] );
      ( "passes",
        [
          Alcotest.test_case "const fold + dead elim" `Quick
            test_fold_and_dead_elim;
          Alcotest.test_case "jcond folding" `Quick test_jcond_folding;
          Alcotest.test_case "superblock spans side exits" `Quick
            test_superblock_extends_across_jcond;
          Alcotest.test_case "uninit diags deduped" `Quick test_uninit_dedupe;
        ] );
    ]
