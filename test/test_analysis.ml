(* Tests for the abstract-interpretation analyzer: golden diagnostics
   (uninitialized reads, static stack bounds, pointer arithmetic,
   termination classification, unreachable code), CFG construction,
   differential agreement with the CertFC checker, and observational
   equivalence of the trimmed fast-path interpreter. *)

open Femto_ebpf
module Analysis = Femto_analysis.Analysis
module Cfg = Femto_analysis.Cfg
module Vm = Femto_vm.Vm
module Fault = Femto_vm.Fault
module Config = Femto_vm.Config
module Helper = Femto_vm.Helper
module Verifier = Femto_vm.Verifier
module Interp = Femto_vm.Interp
module Check = Femto_certfc.Check
module Dagsum = Femto_workloads.Dagsum
module Fletcher = Femto_workloads.Fletcher

let analyze ?helpers source =
  let resolver =
    match helpers with
    | Some h -> Helper.asm_resolver h
    | None -> fun _ -> None
  in
  Analysis.analyze ?helpers Config.default (Asm.assemble ~helpers:resolver source)

let outcome ?helpers source =
  match analyze ?helpers source with
  | Ok o -> o
  | Error fault ->
      Alcotest.failf "unexpected structural fault: %s" (Fault.to_string fault)

let has_error o kind =
  List.exists
    (fun d -> d.Analysis.severity = Analysis.Error && d.Analysis.kind = kind)
    o.Analysis.diags

let verifier_accepts source =
  Result.is_ok (Verifier.verify Config.default (Asm.assemble source))

(* --- golden diagnostics --- *)

let test_uninit_read () =
  let source = "mov r0, r6\nexit" in
  (* the shape-only verifier accepts this; the analyzer must not *)
  Alcotest.(check bool) "verifier accepts" true (verifier_accepts source);
  let o = outcome source in
  Alcotest.(check bool) "uninit_read error" true (has_error o "uninit_read");
  Alcotest.(check bool) "rejected" false (Analysis.accepted o)

let test_uninit_return () =
  let o = outcome "exit" in
  Alcotest.(check bool) "r0 uninit at exit" true (has_error o "uninit_read")

let test_stack_overflow_store () =
  let source = "stdw [r10+0], 7\nmov r0, 0\nexit" in
  Alcotest.(check bool) "verifier accepts" true (verifier_accepts source);
  let o = outcome source in
  Alcotest.(check bool) "stack_oob error" true (has_error o "stack_oob")

let test_stack_underflow_load () =
  let o = outcome "ldxdw r0, [r10-520]\nexit" in
  Alcotest.(check bool) "stack_oob error" true (has_error o "stack_oob")

let test_computed_window_proven () =
  (* r2 = r10 - 16 is tracked exactly; both accesses proven, fast path
     granted. *)
  let o =
    outcome
      "mov r2, r10\nsub r2, 16\nstdw [r2+0], 1\nldxdw r0, [r2+8]\nexit"
  in
  Alcotest.(check bool) "accepted" true (Analysis.accepted o);
  Alcotest.(check bool) "dag" true (o.Analysis.termination = Analysis.Dag);
  match o.Analysis.fastpath with
  | None -> Alcotest.fail "expected fast-path eligibility"
  | Some proofs ->
      Alcotest.(check bool) "store at pc 2 proven" true proofs.(2);
      Alcotest.(check bool) "load at pc 3 proven" true proofs.(3)

let test_ptr_arith_rejected () =
  let add_ptrs = outcome "mov r2, r10\nadd r2, r10\nmov r0, 0\nexit" in
  Alcotest.(check bool) "ptr+ptr" true (has_error add_ptrs "ptr_arith");
  let mul_ptr = outcome "mov r2, r10\nmul r2, 8\nmov r0, 0\nexit" in
  Alcotest.(check bool) "ptr*imm" true (has_error mul_ptr "ptr_arith");
  let scalar_minus_ptr = outcome "mov r2, 64\nsub r2, r10\nmov r0, 0\nexit" in
  Alcotest.(check bool) "scalar-ptr" true
    (has_error scalar_minus_ptr "ptr_arith")

let test_ptr_diff_is_scalar () =
  (* subtracting two stack pointers yields a plain number *)
  let o = outcome "mov r2, r10\nmov r3, r10\nsub r2, r3\nmov r0, r2\nexit" in
  Alcotest.(check bool) "accepted" true (Analysis.accepted o)

let test_unknown_scalar_offset_not_proven () =
  (* r2 = r10 - r3 with unknown scalar r3: legal (runtime-checked) but
     never proven, so no fast path for that access. *)
  let o =
    outcome "mov r3, 8\nmov r2, r10\nsub r2, r3\nstdw [r2+0], 1\nmov r0, 0\nexit"
  in
  Alcotest.(check bool) "accepted" true (Analysis.accepted o);
  match o.Analysis.fastpath with
  | None -> Alcotest.fail "dag without errors is still eligible"
  | Some proofs -> Alcotest.(check bool) "store not proven" false proofs.(3)

let test_dag_vs_loop () =
  let dag = outcome "mov r0, 0\nadd r0, 1\nexit" in
  Alcotest.(check bool) "straight-line is dag" true
    (dag.Analysis.termination = Analysis.Dag);
  Alcotest.(check bool) "dag eligible" true (dag.Analysis.fastpath <> None);
  let loop =
    outcome "mov r0, 0\nmov r2, 5\nadd r0, r2\nsub r2, 1\njne r2, 0, -3\nexit"
  in
  Alcotest.(check bool) "loop detected" true
    (loop.Analysis.termination = Analysis.Has_loops);
  Alcotest.(check bool) "loop accepted" true (Analysis.accepted loop);
  Alcotest.(check bool) "loop not eligible" true
    (loop.Analysis.fastpath = None)

let test_unreachable_code () =
  let o = outcome "mov r0, 1\nja +1\nmov r0, 9\nexit" in
  Alcotest.(check (list int)) "pc 2 unreachable" [ 2 ] o.Analysis.unreachable;
  Alcotest.(check bool) "warning reported" true
    (List.exists
       (fun d ->
         d.Analysis.kind = "unreachable_code"
         && d.Analysis.severity = Analysis.Warning
         && d.Analysis.pc = 2)
       o.Analysis.diags);
  (* warnings do not reject *)
  Alcotest.(check bool) "still accepted" true (Analysis.accepted o)

let test_fletcher_accepted () =
  (* regression against false positives: the paper's loop workload loads
     through a data pointer read out of the context struct *)
  let o = outcome Fletcher.ebpf_source in
  Alcotest.(check bool) "accepted" true (Analysis.accepted o);
  Alcotest.(check bool) "classified as loop" true
    (o.Analysis.termination = Analysis.Has_loops)

let test_helper_arity_check () =
  let helpers = Helper.create () in
  Helper.register helpers ~arity:2 ~id:1 ~name:"bpf_pair" (fun _ _ -> Ok 0L);
  (* r1 is the context pointer at entry, but r2 was never written *)
  let bad = outcome ~helpers "call bpf_pair\nmov r0, 0\nexit" in
  Alcotest.(check bool) "uninit r2 argument" true
    (has_error bad "call_signature");
  let good = outcome ~helpers "mov r2, 7\ncall bpf_pair\nmov r0, 0\nexit" in
  Alcotest.(check bool) "initialized arguments accepted" true
    (Analysis.accepted good)

(* --- CFG construction --- *)

let test_cfg_blocks () =
  let cfg =
    Cfg.build (Asm.assemble "mov r0, 0\njeq r0, 0, +1\nmov r0, 1\nexit")
  in
  Alcotest.(check int) "three blocks" 3 (Array.length cfg.Cfg.blocks);
  Alcotest.(check (list int)) "entry branches both ways" [ 1; 2 ]
    cfg.Cfg.blocks.(0).Cfg.succs;
  Alcotest.(check (list int)) "fallthrough reaches exit" [ 2 ]
    cfg.Cfg.blocks.(1).Cfg.succs;
  Alcotest.(check (list int)) "exit has no successor" []
    cfg.Cfg.blocks.(2).Cfg.succs;
  Alcotest.(check bool) "no loops" false (Cfg.has_loops cfg)

let test_cfg_back_edge () =
  let cfg =
    Cfg.build
      (Asm.assemble "mov r2, 5\nsub r2, 1\njne r2, 0, -2\nmov r0, 0\nexit")
  in
  Alcotest.(check bool) "loop found" true (Cfg.has_loops cfg)

let test_cfg_lddw_stays_whole () =
  let cfg = Cfg.build (Asm.assemble "lddw r0, 0x1122334455667788\nexit") in
  (* straight-line code is one block; the pair must not split it *)
  Alcotest.(check int) "one block" 1 (Array.length cfg.Cfg.blocks);
  Alcotest.(check bool) "tail flagged" true cfg.Cfg.is_tail.(1);
  Alcotest.(check (list int)) "no unreachable code" []
    (Cfg.unreachable_pcs cfg)

(* --- differential: analyzer vs the CertFC checker --- *)

let gen_program =
  let open QCheck.Gen in
  let reg = int_range 0 5 in
  let alu_imm =
    map3
      (fun op dst imm ->
        Insn.make (Opcode.alu64 op Opcode.Src_imm) ~dst ~imm:(Int32.of_int imm))
      (oneofl Opcode.[ Add; Sub; Mul; Or; And; Xor; Mov; Arsh; Lsh; Rsh ])
      reg (int_range (-1000) 1000)
  in
  let alu_reg =
    map3
      (fun op dst src -> Insn.make (Opcode.alu64 op Opcode.Src_reg) ~dst ~src)
      (oneofl Opcode.[ Add; Sub; Mul; Or; And; Xor; Mov ])
      reg reg
  in
  let stack_store =
    map2
      (fun src slot ->
        Insn.make (Opcode.stx Opcode.DW) ~dst:10 ~src ~offset:(-8 * (slot + 1)))
      reg (int_range 0 7)
  in
  let stack_load =
    map2
      (fun dst slot ->
        Insn.make (Opcode.ldx Opcode.DW) ~dst ~src:10 ~offset:(-8 * (slot + 1)))
      reg (int_range 0 7)
  in
  let forward_jump =
    map3
      (fun cond dst off ->
        Insn.make (Opcode.jmp cond Opcode.Src_imm) ~dst ~offset:off ~imm:5l)
      (oneofl Opcode.[ Jeq; Jne; Jgt; Jlt; Jsge ])
      reg (int_range 0 3)
  in
  let body =
    list_size (int_range 2 40)
      (frequency
         [ (5, alu_imm); (4, alu_reg); (3, stack_store); (3, stack_load);
           (2, forward_jump) ])
  in
  map (fun insns -> Program.of_insns (insns @ [ Insn.make Opcode.exit' ])) body

(* Structural acceptance must coincide: the analyzer runs the verifier,
   the verifier agrees with the CertFC checker (its own property test),
   hence analyzer-accepted programs are a subset of checker-accepted. *)
let prop_analyzer_subset_of_checker =
  QCheck.Test.make ~name:"analyzer-accepted subset of CertFC-accepted"
    ~count:300 (QCheck.make gen_program) (fun program ->
      match Analysis.analyze Config.default program with
      | Error _ -> true
      | Ok _ -> Result.is_ok (Check.check Config.default program))

(* On a corpus of structurally bad programs, the analyzer and the CertFC
   checker must report the very same fault. *)
let test_fault_agreement_corpus () =
  let corpus =
    [
      ("jump out of range",
       [ Insn.make Opcode.ja ~offset:5; Insn.make Opcode.exit' ]);
      ("write r10",
       [ Insn.make (Opcode.alu64 Opcode.Mov Opcode.Src_imm) ~dst:10 ~imm:1l;
         Insn.make Opcode.exit' ]);
      ("no exit at end",
       [ Insn.make (Opcode.alu64 Opcode.Mov Opcode.Src_imm) ~dst:0 ~imm:0l ]);
      ("truncated lddw", [ Insn.make Opcode.lddw ~dst:0 ~imm:1l ]);
      ("invalid opcode", [ Insn.make 0xff; Insn.make Opcode.exit' ]);
      ("jump to orphan tail slot",
       [ Insn.make Opcode.ja ~offset:1;
         Insn.make Opcode.exit';
         Insn.make 0 ~imm:7l ]);
    ]
  in
  List.iter
    (fun (name, insns) ->
      let program = Program.of_insns insns in
      match
        (Analysis.analyze Config.default program, Check.check Config.default program)
      with
      | Error f1, Error f2 ->
          Alcotest.(check string) name (Fault.to_string f2) (Fault.to_string f1)
      | Ok _, _ -> Alcotest.failf "%s: analyzer accepted" name
      | _, Ok _ -> Alcotest.failf "%s: CertFC checker accepted" name)
    corpus

(* --- the fast-path dividend --- *)

let fault_fingerprint = function
  | Fault.Division_by_zero _ -> "div0"
  | Fault.Memory_access _ -> "mem"
  | fault -> Fault.to_string fault

(* Observational equivalence: loading through the analyzer (trimmed loop
   when eligible) and through the plain checked loader must produce the
   same result on every accepted program. *)
let prop_trimmed_equals_checked =
  QCheck.Test.make ~name:"trimmed fast path = checked interpreter" ~count:300
    (QCheck.make gen_program) (fun program ->
      let helpers = Helper.create () in
      let analysis_vm = Analysis.load ~helpers ~regions:[] program in
      let plain_vm = Vm.load ~helpers ~regions:[] program in
      match (analysis_vm, plain_vm) with
      | Error _, Error _ -> true
      | Ok a, Ok p -> (
          match (Vm.run a, Vm.run p) with
          | Ok va, Ok vp -> Int64.equal va vp
          | Error fa, Error fp ->
              String.equal (fault_fingerprint fa) (fault_fingerprint fp)
          | _ -> false)
      | _ -> false)

let test_dagsum_trimmed_matches_reference () =
  let data = Fletcher.input_360 in
  let program = Dagsum.ebpf_program () in
  let expect = Dagsum.reference data in
  let trimmed =
    match
      Analysis.load ~helpers:(Helper.create ()) ~regions:(Dagsum.regions data)
        program
    with
    | Ok vm -> vm
    | Error fault -> Alcotest.failf "load: %s" (Fault.to_string fault)
  in
  Alcotest.(check bool) "fast path engaged" true
    (Vm.fastpath_active trimmed);
  (match Vm.run trimmed ~args:[| Dagsum.data_vaddr |] with
  | Ok v -> Alcotest.(check int64) "trimmed result" expect v
  | Error fault -> Alcotest.failf "trimmed run: %s" (Fault.to_string fault));
  let checked =
    match
      Vm.load ~helpers:(Helper.create ()) ~regions:(Dagsum.regions data)
        program
    with
    | Ok vm -> vm
    | Error fault -> Alcotest.failf "load: %s" (Fault.to_string fault)
  in
  Alcotest.(check bool) "checked loader stays plain" false
    (Vm.fastpath_active checked);
  match Vm.run checked ~args:[| Dagsum.data_vaddr |] with
  | Ok v -> Alcotest.(check int64) "checked result" expect v
  | Error fault -> Alcotest.failf "checked run: %s" (Fault.to_string fault)

let () =
  Alcotest.run "femto_analysis"
    [
      ( "golden",
        [
          Alcotest.test_case "uninit register read" `Quick test_uninit_read;
          Alcotest.test_case "uninit r0 at exit" `Quick test_uninit_return;
          Alcotest.test_case "stack overflow store" `Quick
            test_stack_overflow_store;
          Alcotest.test_case "stack underflow load" `Quick
            test_stack_underflow_load;
          Alcotest.test_case "computed window proven" `Quick
            test_computed_window_proven;
          Alcotest.test_case "pointer arithmetic rejected" `Quick
            test_ptr_arith_rejected;
          Alcotest.test_case "pointer difference is scalar" `Quick
            test_ptr_diff_is_scalar;
          Alcotest.test_case "unknown offset not proven" `Quick
            test_unknown_scalar_offset_not_proven;
          Alcotest.test_case "dag vs loop classification" `Quick
            test_dag_vs_loop;
          Alcotest.test_case "unreachable code reported" `Quick
            test_unreachable_code;
          Alcotest.test_case "fletcher stays accepted" `Quick
            test_fletcher_accepted;
          Alcotest.test_case "helper arity check" `Quick
            test_helper_arity_check;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "diamond blocks" `Quick test_cfg_blocks;
          Alcotest.test_case "back edge" `Quick test_cfg_back_edge;
          Alcotest.test_case "lddw stays whole" `Quick
            test_cfg_lddw_stays_whole;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_analyzer_subset_of_checker;
          Alcotest.test_case "fault agreement corpus" `Quick
            test_fault_agreement_corpus;
        ] );
      ( "fastpath",
        [
          QCheck_alcotest.to_alcotest prop_trimmed_equals_checked;
          Alcotest.test_case "dagsum trimmed matches reference" `Quick
            test_dagsum_trimmed_matches_reference;
        ] );
    ]
