(* femto-bench/1 conformance: every emitter (dispatch, update, corpus)
   must produce documents the one shared Schema.validate accepts, the
   committed baseline files must parse and still name current workloads,
   and the corpus ratio gate must actually fire on an injected slowdown. *)

module Schema = Femto_bench.Schema
module Corpus = Femto_bench.Corpus
module Update_bench = Femto_bench.Update_bench
module Dispatch_bench = Femto_bench.Dispatch_bench
module Spawn_bench = Femto_bench.Spawn_bench
module Fleet_bench = Femto_bench.Fleet_bench
module Edge_bench = Femto_bench.Edge_bench
module Jsonx = Femto_obs.Jsonx

let check_valid label doc =
  Alcotest.(check (list string)) (label ^ " validates") [] (Schema.validate doc)

(* --- emitter conformance (synthetic rows: no timing in tests) -------- *)

let corpus_rows =
  [
    {
      Corpus.wname = "l1/fib"; layer = "l1"; runtime = "rbpf";
      tier = "decoded"; ns = 1000.0; result = 42L;
    };
    {
      Corpus.wname = "l1/fib"; layer = "l1"; runtime = "script";
      tier = "tree"; ns = 8000.0; result = 42L;
    };
    {
      Corpus.wname = "l2/anomaly"; layer = "l2"; runtime = "wasm";
      tier = "fast"; ns = 2500.0; result = 7L;
    };
  ]

let test_corpus_emitter () = check_valid "corpus doc" (Corpus.doc_of_rows corpus_rows)

let test_dispatch_emitter () =
  check_valid "dispatch doc"
    (Dispatch_bench.dispatch_smoke_json
       [ ("dispatch/dagsum-decoded", 120.0); ("dispatch/dagsum-compiled", 40.0) ]
       [ ("dagsum", 3.0) ])

let test_update_emitter () =
  check_valid "update doc"
    (Update_bench.smoke_json
       [
         { Update_bench.name = "parse_manifest"; legacy_ns = 100.; fast_ns = 50. };
         { Update_bench.name = "e2e_single"; legacy_ns = 900.; fast_ns = 300. };
       ]
       ~streaming_seq_ns:1234.0)

let test_spawn_emitter () =
  check_valid "spawn doc"
    (Spawn_bench.smoke_json
       [
         {
           Spawn_bench.name = "dagsum"; attach_ns = 200_000.; spawn_ns = 900.;
           image_hits = 522; image_misses = 1;
         };
         {
           Spawn_bench.name = "kvcounter"; attach_ns = 6_000.; spawn_ns = 700.;
           image_hits = 522; image_misses = 1;
         };
       ]
       {
         Spawn_bench.spawn_1_100 = 2272.;
         spawn_100_10k = 2280.;
         attach_1_100 = 45440.;
         fraction = 0.05;
       })

let test_fleet_emitter () =
  check_valid "fleet doc"
    (Fleet_bench.smoke_json
       [
         {
           Fleet_bench.c_name = "campaign-10k-1d"; c_domains = 1;
           c_wall_ns = 7.1e8; c_updates_ok = 10_000; c_ups_core = 14_000.;
           c_incomplete = 0; c_half = 0; c_fingerprint = "abc";
         };
         {
           Fleet_bench.c_name = "campaign-10k-2d"; c_domains = 2;
           c_wall_ns = 4.2e8; c_updates_ok = 10_000; c_ups_core = 11_900.;
           c_incomplete = 0; c_half = 0; c_fingerprint = "abc";
         };
       ]
       {
         Fleet_bench.fleet_bytes = 4060.;
         spawn_bytes = 2296.;
         footprint_x = 1.77;
       })

let edge_rows =
  [
    {
      Edge_bench.e_name = "edge/udp-get-uncached"; e_ns = 30_000.;
      e_p50 = Some 20_000.; e_p90 = Some 40_000.; e_p99 = Some 90_000.;
      e_rps = Some 33_000.; e_accepted = None; e_ok = true;
    };
    {
      Edge_bench.e_name = "edge/handler-cached"; e_ns = 1_000.;
      e_p50 = None; e_p90 = None; e_p99 = None; e_rps = None;
      e_accepted = None; e_ok = true;
    };
    {
      Edge_bench.e_name = "edge/update-hostile"; e_ns = 40_000.;
      e_p50 = None; e_p90 = None; e_p99 = None; e_rps = None;
      e_accepted = Some true; e_ok = true;
    };
  ]

let edge_ratios = [ ("cached_handler_x", 8.0); ("cached_udp_x", 2.0) ]

let test_edge_emitter () =
  check_valid "edge doc" (Edge_bench.smoke_json edge_rows edge_ratios)

(* --- validator teeth -------------------------------------------------- *)

let test_rejects_bad_docs () =
  let not_ok label doc =
    Alcotest.(check bool) label false (Schema.validate doc = [])
  in
  not_ok "wrong tag" (Jsonx.Obj [ ("schema", Jsonx.String "nope/9") ]);
  not_ok "negative ns"
    (match Corpus.doc_of_rows corpus_rows with
    | Jsonx.Obj fields ->
        Jsonx.Obj
          (List.map
             (function
               | "corpus", Jsonx.List (Jsonx.Obj row :: rest) ->
                   ( "corpus",
                     Jsonx.List
                       (Jsonx.Obj
                          (List.map
                             (function
                               | "ns_per_run", _ ->
                                   ("ns_per_run", Jsonx.Float (-5.0))
                               | kv -> kv)
                             row)
                       :: rest) )
               | kv -> kv)
             fields)
    | doc -> doc);
  not_ok "crossed percentiles"
    (Edge_bench.smoke_json
       [
         {
           Edge_bench.e_name = "edge/crossed"; e_ns = 100.;
           e_p50 = Some 9_000.; e_p90 = Some 4_000.; e_p99 = Some 5_000.;
           e_rps = None; e_accepted = None; e_ok = true;
         };
       ]
       edge_ratios);
  not_ok "negative percentile"
    (Edge_bench.smoke_json
       [
         {
           Edge_bench.e_name = "edge/negative"; e_ns = 100.;
           e_p50 = Some (-1.0); e_p90 = None; e_p99 = None;
           e_rps = None; e_accepted = None; e_ok = true;
         };
       ]
       edge_ratios);
  not_ok "bad timestamp"
    (match Corpus.doc_of_rows [] with
    | Jsonx.Obj fields ->
        Jsonx.Obj
          (List.map
             (function
               | "generated_at", _ -> ("generated_at", Jsonx.String "yesterday")
               | kv -> kv)
             fields)
    | doc -> doc)

let test_monotone_timestamps () =
  let stamp_of doc =
    match Jsonx.member "generated_at" doc with
    | Some (Jsonx.String s) -> (
        match Schema.parse_timestamp s with
        | Some t -> t
        | None -> Alcotest.failf "unparseable stamp %S" s)
    | _ -> Alcotest.fail "no generated_at"
  in
  let t1 = stamp_of (Schema.doc []) in
  let t2 = stamp_of (Schema.doc []) in
  Alcotest.(check bool) "stamps monotone" true (t2 >= t1)

(* --- the injected-slowdown gate --------------------------------------- *)

let test_gate_fires_on_slowdown () =
  let baseline = Corpus.doc_of_rows corpus_rows in
  (* unchanged timings: gate passes *)
  Alcotest.(check (list string))
    "no regression accepted" []
    (Corpus.check_baseline_doc ~ratios:(Corpus.ratios corpus_rows) baseline);
  (* inject a 10x slowdown into one non-reference row *)
  let slowed =
    List.map
      (fun (r : Corpus.row) ->
        if r.runtime = "script" then { r with Corpus.ns = r.ns *. 10.0 } else r)
      corpus_rows
  in
  let failures =
    Corpus.check_baseline_doc ~ratios:(Corpus.ratios slowed) baseline
  in
  Alcotest.(check bool) "slowdown caught" true (failures <> []);
  Alcotest.(check bool)
    "failure names the row" true
    (List.exists
       (fun m -> Astring.String.is_infix ~affix:"l1/fib:script/tree" m)
       failures);
  (* a *missing* committed row must also fail *)
  let missing =
    Corpus.check_baseline_doc
      ~ratios:
        (Corpus.ratios
           (List.filter (fun (r : Corpus.row) -> r.runtime <> "wasm") corpus_rows))
      baseline
  in
  Alcotest.(check bool) "missing row caught" true (missing <> [])

let test_edge_gate_fires_on_regression () =
  let baseline = Edge_bench.smoke_json edge_rows edge_ratios in
  Alcotest.(check (list string))
    "unchanged ratios accepted" []
    (Edge_bench.check_baseline_doc ~ratios:edge_ratios baseline);
  (* cached speedup collapsing to ~1x must fail the gate *)
  let failures =
    Edge_bench.check_baseline_doc
      ~ratios:[ ("cached_handler_x", 1.1); ("cached_udp_x", 2.0) ]
      baseline
  in
  Alcotest.(check bool) "regression caught" true (failures <> []);
  Alcotest.(check bool) "failure names the ratio" true
    (List.exists
       (fun m -> Astring.String.is_infix ~affix:"cached_handler_x" m)
       failures);
  (* a committed ratio disappearing must also fail *)
  Alcotest.(check bool) "missing ratio caught" true
    (Edge_bench.check_baseline_doc
       ~ratios:[ ("cached_handler_x", 8.0) ]
       baseline
    <> [])

(* --- committed baselines ---------------------------------------------- *)

let repo_file name =
  Filename.concat (Filename.dirname Sys.executable_name) ("../" ^ name)

let read_json path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let raw = really_input_string ic n in
  close_in ic;
  Jsonx.of_string raw

let test_corpus_baseline_current () =
  let doc = read_json (repo_file "bench/corpus-baseline.json") in
  check_valid "corpus baseline" doc;
  (* every committed ratio must name a workload/impl the registry still
     provides, so a renamed kernel can't silently stop gating *)
  let live_keys =
    List.concat_map
      (fun (w : Femto_workloads.Harness.workload) ->
        List.map
          (fun (i : Femto_workloads.Harness.impl) ->
            Printf.sprintf "%s:%s/%s" w.wname i.runtime i.tier)
          w.impls)
      (Corpus.workloads ~layers:Corpus.layer_names ~only:None ())
  in
  match Jsonx.member "corpus_ratios" doc with
  | Some (Jsonx.Obj committed) ->
      Alcotest.(check bool) "baseline non-empty" true (committed <> []);
      List.iter
        (fun (key, _) ->
          Alcotest.(check bool)
            (key ^ " still in registry") true (List.mem key live_keys))
        committed
  | _ -> Alcotest.fail "corpus baseline has no corpus_ratios"

let test_update_baseline_current () =
  let doc = read_json (repo_file "bench/update-baseline.json") in
  check_valid "update baseline" doc;
  let live = [ "parse_manifest"; "digest_32k"; "e2e_single"; "concurrent_4tenant" ] in
  match Jsonx.member "update_speedups" doc with
  | Some (Jsonx.Obj committed) ->
      Alcotest.(check bool) "baseline non-empty" true (committed <> []);
      List.iter
        (fun (key, _) ->
          Alcotest.(check bool)
            (key ^ " still a bench row") true (List.mem key live))
        committed
  | _ -> Alcotest.fail "update baseline has no update_speedups"

let test_spawn_baseline_current () =
  let doc = read_json (repo_file "bench/spawn-baseline.json") in
  check_valid "spawn baseline" doc;
  let live =
    List.map (fun (w : Spawn_bench.workload) -> w.w_name) (Spawn_bench.workloads ())
    @ [ "footprint_fraction" ]
  in
  match Jsonx.member "spawn_ratios" doc with
  | Some (Jsonx.Obj committed) ->
      Alcotest.(check bool) "baseline non-empty" true (committed <> []);
      (* every floor-gated workload must have a committed ratio, and every
         committed ratio must still name a live workload *)
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (name ^ " committed") true
            (List.mem_assoc name committed))
        Spawn_bench.floor_gated;
      List.iter
        (fun (key, _) ->
          Alcotest.(check bool)
            (key ^ " still a bench workload") true (List.mem key live))
        committed
  | _ -> Alcotest.fail "spawn baseline has no spawn_ratios"

let test_edge_baseline_current () =
  let doc = read_json (repo_file "bench/edge-baseline.json") in
  check_valid "edge baseline" doc;
  let live = [ "cached_handler_x"; "cached_udp_x" ] in
  match Jsonx.member "edge_ratios" doc with
  | Some (Jsonx.Obj committed) ->
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (name ^ " committed") true
            (List.mem_assoc name committed))
        live;
      List.iter
        (fun (key, _) ->
          Alcotest.(check bool)
            (key ^ " still a gate ratio") true (List.mem key live))
        committed
  | _ -> Alcotest.fail "edge baseline has no edge_ratios"

let test_fleet_baseline_current () =
  let doc = read_json (repo_file "bench/fleet-baseline.json") in
  check_valid "fleet baseline" doc;
  let live = [ "scale_2x"; "footprint_x" ] in
  match Jsonx.member "fleet_ratios" doc with
  | Some (Jsonx.Obj committed) ->
      (* both gate ratios must be committed, and nothing stale *)
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (name ^ " committed") true
            (List.mem_assoc name committed))
        live;
      List.iter
        (fun (key, _) ->
          Alcotest.(check bool)
            (key ^ " still a gate ratio") true (List.mem key live))
        committed
  | _ -> Alcotest.fail "fleet baseline has no fleet_ratios"

let suite =
  [
    ( "emitters",
      [
        Alcotest.test_case "corpus doc conforms" `Quick test_corpus_emitter;
        Alcotest.test_case "dispatch doc conforms" `Quick test_dispatch_emitter;
        Alcotest.test_case "update doc conforms" `Quick test_update_emitter;
        Alcotest.test_case "spawn doc conforms" `Quick test_spawn_emitter;
        Alcotest.test_case "fleet doc conforms" `Quick test_fleet_emitter;
        Alcotest.test_case "edge doc conforms" `Quick test_edge_emitter;
      ] );
    ( "validator",
      [
        Alcotest.test_case "rejects bad docs" `Quick test_rejects_bad_docs;
        Alcotest.test_case "timestamps monotone" `Quick test_monotone_timestamps;
      ] );
    ( "gate",
      [
        Alcotest.test_case "fires on injected slowdown" `Quick
          test_gate_fires_on_slowdown;
        Alcotest.test_case "edge gate fires on regression" `Quick
          test_edge_gate_fires_on_regression;
      ] );
    ( "baselines",
      [
        Alcotest.test_case "corpus baseline current" `Quick
          test_corpus_baseline_current;
        Alcotest.test_case "update baseline current" `Quick
          test_update_baseline_current;
        Alcotest.test_case "spawn baseline current" `Quick
          test_spawn_baseline_current;
        Alcotest.test_case "fleet baseline current" `Quick
          test_fleet_baseline_current;
        Alcotest.test_case "edge baseline current" `Quick
          test_edge_baseline_current;
      ] );
  ]

let () = Alcotest.run "bench-schema" suite
