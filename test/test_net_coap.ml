(* Tests for the simulated network (fragmentation, loss) and the CoAP
   stack (codec, server dispatch, client retransmission). *)

module Kernel = Femto_rtos.Kernel
module Frag = Femto_net.Frag
module Network = Femto_net.Network
module Message = Femto_coap.Message
module Server = Femto_coap.Server
module Client = Femto_coap.Client
module Gcoap = Femto_coap.Gcoap
module Block = Femto_coap.Block

(* --- fragmentation --- *)

let test_small_datagram_single_frame () =
  let frames = Frag.fragment ~tag:1 (Bytes.of_string "hello") in
  Alcotest.(check int) "one frame" 1 (List.length frames)

let test_fragment_reassemble () =
  let payload = Bytes.init 500 (fun i -> Char.chr (i mod 256)) in
  let frames = Frag.fragment ~tag:7 payload in
  Alcotest.(check bool) "multiple frames" true (List.length frames > 1);
  List.iter
    (fun frame ->
      Alcotest.(check bool) "within MTU" true (Bytes.length frame <= Frag.frame_mtu))
    frames;
  let reasm = Frag.create_reassembler () in
  let result =
    List.fold_left
      (fun acc frame ->
        match Frag.accept reasm ~src:3 frame with Some d -> Some d | None -> acc)
      None frames
  in
  match result with
  | Some datagram -> Alcotest.(check bytes) "roundtrip" payload datagram
  | None -> Alcotest.fail "no reassembly"

let test_missing_fragment_no_delivery () =
  let payload = Bytes.create 400 in
  let frames = Frag.fragment ~tag:9 payload in
  let reasm = Frag.create_reassembler () in
  let all_but_last = List.filteri (fun i _ -> i < List.length frames - 1) frames in
  let delivered =
    List.exists (fun f -> Frag.accept reasm ~src:1 f <> None) all_but_last
  in
  Alcotest.(check bool) "not delivered" false delivered;
  Alcotest.(check int) "pending state" 1 (Frag.pending_count reasm)

let test_duplicate_fragment_ignored () =
  let payload = Bytes.create 400 in
  let frames = Frag.fragment ~tag:5 payload in
  let reasm = Frag.create_reassembler () in
  let first = List.hd frames in
  ignore (Frag.accept reasm ~src:1 first);
  ignore (Frag.accept reasm ~src:1 first);
  (* duplicates must not complete reassembly early or corrupt state *)
  let complete =
    List.fold_left
      (fun acc f -> match Frag.accept reasm ~src:1 f with Some d -> Some d | None -> acc)
      None (List.tl frames)
  in
  Alcotest.(check bool) "completes once" true (complete <> None)

let test_reassembler_flush () =
  let payload = Bytes.create 400 in
  let frames = Frag.fragment ~tag:9 payload in
  let reasm = Frag.create_reassembler () in
  (* partial state from two sources *)
  ignore (Frag.accept reasm ~src:1 (List.hd frames));
  ignore (Frag.accept reasm ~src:2 (List.hd frames));
  Alcotest.(check int) "two pending" 2 (Frag.pending_count reasm);
  Frag.flush reasm ~src:1;
  Alcotest.(check int) "one flushed" 1 (Frag.pending_count reasm);
  (* the flushed source restarts cleanly *)
  let complete =
    List.fold_left
      (fun acc f -> match Frag.accept reasm ~src:1 f with Some d -> Some d | None -> acc)
      None frames
  in
  Alcotest.(check bool) "src 1 reassembles after flush" true (complete <> None)

let prop_fragment_roundtrip =
  QCheck.Test.make ~name:"fragment/reassemble roundtrip" ~count:200
    QCheck.(make Gen.(string_size ~gen:char (int_range 0 2000)))
    (fun s ->
      let payload = Bytes.of_string s in
      let frames = Frag.fragment ~tag:1 payload in
      let reasm = Frag.create_reassembler () in
      let result =
        List.fold_left
          (fun acc f -> match Frag.accept reasm ~src:1 f with Some d -> Some d | None -> acc)
          None frames
      in
      match result with Some d -> Bytes.equal d payload | None -> false)

(* --- network --- *)

let test_network_delivery () =
  let kernel = Kernel.create () in
  let network = Network.create ~kernel () in
  let _a = Network.add_node network ~addr:1 in
  let b = Network.add_node network ~addr:2 in
  let received = ref None in
  Network.set_receiver b (fun ~src datagram -> received := Some (src, datagram));
  Network.send network ~src:1 ~dst:2 (Bytes.of_string "ping");
  ignore (Kernel.run kernel ());
  match !received with
  | Some (1, datagram) -> Alcotest.(check string) "payload" "ping" (Bytes.to_string datagram)
  | _ -> Alcotest.fail "not delivered"

let test_network_large_datagram () =
  let kernel = Kernel.create () in
  let network = Network.create ~kernel () in
  let _a = Network.add_node network ~addr:1 in
  let b = Network.add_node network ~addr:2 in
  let payload = Bytes.init 1000 (fun i -> Char.chr (i mod 256)) in
  let received = ref None in
  Network.set_receiver b (fun ~src:_ datagram -> received := Some datagram);
  Network.send network ~src:1 ~dst:2 payload;
  ignore (Kernel.run kernel ());
  (match !received with
  | Some datagram -> Alcotest.(check bytes) "reassembled" payload datagram
  | None -> Alcotest.fail "not delivered");
  Alcotest.(check bool) "fragmented on the wire" true
    ((Network.stats network).Network.frames_sent > 1)

let test_network_total_loss () =
  let kernel = Kernel.create () in
  let network = Network.create ~kernel ~loss_permille:1000 () in
  let _a = Network.add_node network ~addr:1 in
  let b = Network.add_node network ~addr:2 in
  let received = ref false in
  Network.set_receiver b (fun ~src:_ _ -> received := true);
  Network.send network ~src:1 ~dst:2 (Bytes.of_string "doomed");
  ignore (Kernel.run kernel ());
  Alcotest.(check bool) "nothing arrives" false !received;
  Alcotest.(check int) "drop counted" 1 (Network.stats network).Network.frames_dropped

(* --- CoAP codec --- *)

let test_coap_encode_decode () =
  let message =
    Message.make ~token:"tk"
      ~options:(Message.options_of_path "/sensor/value" @ [ Message.content_format_option 0 ])
      ~payload:"23.7" ~code:Message.code_content ~message_id:0x1234 ()
  in
  let decoded = Message.decode (Message.encode message) in
  Alcotest.(check bool) "roundtrip" true (Message.equal message decoded);
  Alcotest.(check string) "path" "/sensor/value" (Message.path_string decoded);
  Alcotest.(check (option int)) "format" (Some 0) (Message.content_format decoded)

let test_coap_code_encoding () =
  Alcotest.(check int) "2.05 = 69" 69 (Message.code_to_int Message.code_content);
  Alcotest.(check int) "GET = 1" 1 (Message.code_to_int Message.code_get);
  Alcotest.(check int) "4.04 = 132" 132 (Message.code_to_int Message.code_not_found)

let test_coap_large_option_delta () =
  (* Uri-Query (15) after Uri-Path (11), plus a fabricated high option *)
  let message =
    Message.make ~options:[ (11, "x"); (15, "q=1"); (300, "big") ]
      ~code:Message.code_get ~message_id:1 ()
  in
  let decoded = Message.decode (Message.encode message) in
  Alcotest.(check bool) "roundtrip" true (Message.equal message decoded)

let test_coap_rejects_garbage () =
  (match Message.decode (Bytes.of_string "ab") with
  | exception Message.Parse_error _ -> ()
  | _ -> Alcotest.fail "short message accepted");
  match Message.decode (Bytes.of_string "\x81\x01\x00\x01") with
  | exception Message.Parse_error _ -> () (* version 2 *)
  | _ -> Alcotest.fail "bad version accepted"

let prop_coap_roundtrip =
  let gen =
    QCheck.Gen.(
      let path_opt = map (fun s -> (11, s)) (string_size (int_range 0 16)) in
      let fmt_opt = map (fun v -> Message.content_format_option (v land 0xffff)) int in
      map3
        (fun opts payload (mid, token_len) ->
          Message.make
            ~token:(String.sub "abcdefgh" 0 (abs token_len mod 9))
            ~options:opts ~payload ~code:Message.code_content
            ~message_id:(abs mid land 0xFFFF) ())
        (list_size (int_range 0 4) (oneof [ path_opt; fmt_opt ]))
        (string_size (int_range 0 64))
        (pair int int))
  in
  QCheck.Test.make ~name:"coap roundtrip" ~count:300 (QCheck.make gen)
    (fun message ->
      (* empty payload with a 0xFF marker is invalid; [make] never produces
         it, so the roundtrip must hold *)
      Message.equal message (Message.decode (Message.encode message)))

(* --- server/client over the network --- *)

let setup ?(loss_permille = 0) () =
  let kernel = Kernel.create () in
  let network = Network.create ~kernel ~loss_permille () in
  let server = Server.create ~network ~addr:1 () in
  let client = Client.create ~network ~kernel ~addr:2 in
  (kernel, network, server, client)

let test_request_response () =
  let kernel, _network, server, client = setup () in
  Server.register server ~path:"/hello" (fun ~src:_ _request ->
      Server.respond ~payload:"world" Message.code_content);
  let answer = ref None in
  Client.get client ~dst:1 ~path:"/hello" (fun result -> answer := Some result);
  ignore (Kernel.run kernel ());
  match !answer with
  | Some (Ok response) ->
      Alcotest.(check string) "payload" "world" response.Message.payload;
      Alcotest.(check bool) "code 2.05" true (response.Message.code = Message.code_content)
  | Some (Error `Timeout) -> Alcotest.fail "timeout"
  | None -> Alcotest.fail "no answer"

let test_not_found () =
  let kernel, _network, _server, client = setup () in
  let answer = ref None in
  Client.get client ~dst:1 ~path:"/missing" (fun result -> answer := Some result);
  ignore (Kernel.run kernel ());
  match !answer with
  | Some (Ok response) ->
      Alcotest.(check bool) "4.04" true (response.Message.code = Message.code_not_found)
  | _ -> Alcotest.fail "expected 4.04"

let test_retransmission_recovers_loss () =
  (* 30% frame loss: confirmable retransmission must still deliver *)
  let kernel, _network, server, client = setup ~loss_permille:300 () in
  Server.register server ~path:"/data" (fun ~src:_ _ ->
      Server.respond ~payload:"ok" Message.code_content);
  let successes = ref 0 in
  for _ = 1 to 10 do
    Client.get client ~dst:1 ~path:"/data" (function
      | Ok _ -> incr successes
      | Error `Timeout -> ())
  done;
  ignore (Kernel.run kernel ());
  Alcotest.(check bool)
    (Printf.sprintf "most requests succeed (%d/10, retransmissions=%d)"
       !successes (Client.retransmissions client))
    true (!successes >= 8)

let test_total_loss_times_out () =
  let kernel, _network, _server, client = setup ~loss_permille:1000 () in
  let outcome = ref None in
  Client.get client ~dst:1 ~path:"/x" (fun result -> outcome := Some result);
  ignore (Kernel.run kernel ());
  match !outcome with
  | Some (Error `Timeout) ->
      Alcotest.(check int) "timeouts counted" 1 (Client.timeouts client)
  | _ -> Alcotest.fail "expected timeout"

let test_post_payload () =
  let kernel, _network, server, client = setup () in
  let seen = ref "" in
  Server.register server ~path:"/store" (fun ~src:_ request ->
      seen := request.Message.payload;
      Server.respond Message.code_changed);
  Client.post client ~dst:1 ~path:"/store" ~payload:"new config" (fun _ -> ());
  ignore (Kernel.run kernel ());
  Alcotest.(check string) "payload arrived" "new config" !seen

let test_server_deduplicates_retransmissions () =
  (* the same CON message id must not run the handler twice; the cached
     response is replayed (RFC 7252 deduplication) *)
  let kernel = Kernel.create () in
  let network = Network.create ~kernel () in
  let server = Server.create ~network ~addr:1 () in
  let handler_runs = ref 0 in
  Server.register server ~path:"/once" (fun ~src:_ _ ->
      incr handler_runs;
      Server.respond ~payload:"done" Message.code_content);
  let raw_node = Network.add_node network ~addr:5 in
  let responses = ref 0 in
  Network.set_receiver raw_node (fun ~src:_ _ -> incr responses);
  let request =
    Message.make ~token:"tk"
      ~options:(Message.options_of_path "/once")
      ~code:Message.code_get ~message_id:0x42 ()
  in
  (* send the identical message twice, as a retransmitting client would *)
  Network.send network ~src:5 ~dst:1 (Message.encode request);
  ignore (Kernel.run kernel ());
  Network.send network ~src:5 ~dst:1 (Message.encode request);
  ignore (Kernel.run kernel ());
  Alcotest.(check int) "handler ran once" 1 !handler_runs;
  Alcotest.(check int) "both got answers" 2 !responses

(* --- RFC 7959 block-wise transfer --- *)

let test_block_option_codec () =
  let cases =
    [ Block.make ~num:0 ~more:false ~size:16;
      Block.make ~num:0 ~more:true ~size:64;
      Block.make ~num:5 ~more:true ~size:128;
      Block.make ~num:300 ~more:false ~size:1024;
      Block.make ~num:100000 ~more:true ~size:32 ]
  in
  List.iter
    (fun block ->
      match Block.decode (Block.encode block) with
      | Some decoded ->
          Alcotest.(check int) "num" block.Block.num decoded.Block.num;
          Alcotest.(check bool) "more" block.Block.more decoded.Block.more;
          Alcotest.(check int) "size" (Block.size block) (Block.size decoded)
      | None -> Alcotest.fail "decode failed")
    cases;
  Alcotest.(check bool) "reserved szx rejected" true (Block.decode "\x07" = None)

let test_block_codec_exhaustive () =
  (* every encodable (num, more, szx) triple — the full 3-byte option
     space — round-trips exactly *)
  for szx = 0 to 6 do
    let size = 1 lsl (szx + 4) in
    List.iter
      (fun more ->
        for num = 0 to Block.max_num do
          let block = Block.make ~num ~more ~size in
          match Block.decode (Block.encode block) with
          | Some d
            when d.Block.num = num && d.Block.more = more
                 && Block.size d = size ->
              ()
          | _ ->
              Alcotest.failf "roundtrip failed at num=%d more=%b szx=%d" num
                more szx
        done)
      [ false; true ]
  done;
  (* value 0 encodes as the RFC 7959 zero-length option *)
  Alcotest.(check string) "v=0 is empty" ""
    (Block.encode (Block.make ~num:0 ~more:false ~size:16));
  (match Block.decode "" with
  | Some d ->
      Alcotest.(check int) "empty num" 0 d.Block.num;
      Alcotest.(check bool) "empty more" false d.Block.more;
      Alcotest.(check int) "empty size" 16 (Block.size d)
  | None -> Alcotest.fail "empty option value must decode");
  (* out-of-range fields raise instead of truncating *)
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | (_ : Block.t) -> Alcotest.fail "out-of-range accepted")
    [
      (fun () -> Block.make ~num:(Block.max_num + 1) ~more:false ~size:16);
      (fun () -> Block.make ~num:(-1) ~more:false ~size:16);
      (fun () -> Block.make ~num:0 ~more:false ~size:17);
      (fun () -> Block.make ~num:0 ~more:false ~size:2048);
    ];
  (match Block.encode { Block.num = Block.max_num + 1; more = false; szx = 0 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "encode must reject an unencodable num")

let test_block_slice () =
  let payload = String.init 150 (fun i -> Char.chr (i mod 256)) in
  (match Block.slice ~num:0 ~size:64 payload with
  | Some (chunk, true) -> Alcotest.(check int) "first" 64 (String.length chunk)
  | _ -> Alcotest.fail "first slice");
  (match Block.slice ~num:2 ~size:64 payload with
  | Some (chunk, false) -> Alcotest.(check int) "last" 22 (String.length chunk)
  | _ -> Alcotest.fail "last slice");
  Alcotest.(check bool) "past end" true (Block.slice ~num:3 ~size:64 payload = None)

let test_blockwise_upload () =
  let kernel, _network, server, client = setup () in
  let received = ref "" in
  Server.register server ~path:"/upload" (fun ~src:_ request ->
      received := request.Message.payload;
      Server.respond Message.code_changed);
  let payload = String.init 500 (fun i -> Char.chr ((i * 7) mod 256)) in
  let final = ref None in
  Client.post_blockwise client ~dst:1 ~path:"/upload" ~payload (fun result ->
      final := Some result);
  ignore (Kernel.run kernel ());
  (match !final with
  | Some (Ok response) ->
      Alcotest.(check bool) "2.04" true (response.Message.code = Message.code_changed)
  | Some (Error `Timeout) -> Alcotest.fail "timeout"
  | None -> Alcotest.fail "no final response");
  Alcotest.(check string) "payload reassembled on the server" payload !received

let test_blockwise_upload_survives_loss () =
  let kernel, _network, server, client = setup ~loss_permille:200 () in
  let received = ref "" in
  Server.register server ~path:"/upload" (fun ~src:_ request ->
      received := request.Message.payload;
      Server.respond Message.code_changed);
  let payload = String.init 300 (fun i -> Char.chr (i mod 256)) in
  let final = ref None in
  Client.post_blockwise client ~dst:1 ~path:"/upload" ~payload (fun result ->
      final := Some result);
  ignore (Kernel.run kernel ());
  match !final with
  | Some (Ok _) -> Alcotest.(check string) "reassembled" payload !received
  | Some (Error `Timeout) -> () (* possible at this loss rate; no corruption *)
  | None -> Alcotest.fail "no outcome"

let test_blockwise_download () =
  let kernel, _network, server, client = setup () in
  let payload = String.init 400 (fun i -> Char.chr ((i * 3) mod 256)) in
  Server.register server ~path:"/fw" (fun ~src:_ _ ->
      Server.respond ~payload Message.code_content);
  let result = ref None in
  Client.get_blockwise client ~dst:1 ~path:"/fw" (fun r -> result := Some r);
  ignore (Kernel.run kernel ());
  match !result with
  | Some (Ok response) ->
      Alcotest.(check string) "downloaded" payload response.Message.payload
  | _ -> Alcotest.fail "download failed"

let test_plain_get_of_large_resource_gets_first_block () =
  (* a client unaware of block-wise still receives a valid first block *)
  let kernel, _network, server, client = setup () in
  let payload = String.make 300 'x' in
  Server.register server ~path:"/big" (fun ~src:_ _ ->
      Server.respond ~payload Message.code_content);
  let result = ref None in
  Client.get client ~dst:1 ~path:"/big" (fun r -> result := Some r);
  ignore (Kernel.run kernel ());
  match !result with
  | Some (Ok response) ->
      Alcotest.(check int) "first block only" 64 (String.length response.Message.payload);
      Alcotest.(check bool) "block2 present" true
        (Block.of_message ~number:Block.opt_block2 response <> None)
  | _ -> Alcotest.fail "no response"

let test_streaming_upload_sink () =
  (* a registered sink sees chunks in order while blocks arrive, and the
     streaming digest handed to [finish] matches the whole payload *)
  let kernel, _network, server, client = setup () in
  let payload = String.init 500 (fun i -> Char.chr ((i * 11) mod 256)) in
  let started = ref 0 and chunks = ref [] and finished = ref None in
  Server.register_upload server ~path:"/stream"
    {
      Server.start = (fun () -> incr started);
      chunk = (fun c -> chunks := c :: !chunks);
      finish =
        (fun ~src:_ ~digest ~size _request ->
          finished := Some (digest, size);
          Server.respond Message.code_changed);
      abort = (fun () -> Alcotest.fail "abort on a clean transfer");
    };
  let final = ref None in
  Client.post_blockwise client ~dst:1 ~path:"/stream" ~payload (fun result ->
      final := Some result);
  ignore (Kernel.run kernel ());
  (match !final with
  | Some (Ok response) ->
      Alcotest.(check bool) "2.04" true
        (response.Message.code = Message.code_changed)
  | _ -> Alcotest.fail "upload failed");
  Alcotest.(check int) "start once" 1 !started;
  Alcotest.(check string) "chunks arrive in order" payload
    (String.concat "" (List.rev !chunks));
  match !finished with
  | Some (digest, size) ->
      Alcotest.(check int) "size" (String.length payload) size;
      Alcotest.(check string) "streaming digest"
        (Femto_crypto.Crypto.sha256 payload) digest
  | None -> Alcotest.fail "finish not called"

let test_streaming_upload_sink_failure_aborts () =
  (* a sink that throws mid-transfer gets aborted and the client sees a
     5.00 rather than a wedged transfer *)
  let kernel, _network, server, client = setup () in
  let aborted = ref 0 in
  Server.register_upload server ~path:"/failing"
    {
      Server.start = (fun () -> ());
      chunk = (fun _ -> failwith "flash full");
      finish =
        (fun ~src:_ ~digest:_ ~size:_ _ -> Server.respond Message.code_changed);
      abort = (fun () -> incr aborted);
    };
  let payload = String.make 300 'z' in
  let final = ref None in
  Client.post_blockwise client ~dst:1 ~path:"/failing" ~payload (fun result ->
      final := Some result);
  ignore (Kernel.run kernel ());
  (match !final with
  | Some (Ok response) ->
      Alcotest.(check bool) "5.00" true
        (response.Message.code = Message.code_internal_error)
  | _ -> Alcotest.fail "no response");
  Alcotest.(check bool) "aborted" true (!aborted >= 1)

(* --- RFC 7641 observe --- *)

let test_observe_register_and_notify () =
  let kernel, _network, server, client = setup () in
  let value = ref 10 in
  Server.register server ~path:"/temp" (fun ~src:_ _ ->
      Server.respond ~payload:(string_of_int !value) Message.code_content);
  let received = ref [] in
  let _obs =
    Client.observe client ~dst:1 ~path:"/temp" (fun response ->
        received := response.Message.payload :: !received)
  in
  ignore (Kernel.run kernel ());
  Alcotest.(check int) "registered" 1 (Server.observer_count server ~path:"/temp");
  Alcotest.(check (list string)) "initial value" [ "10" ] (List.rev !received);
  (* resource changes: the server pushes without being asked *)
  value := 20;
  Alcotest.(check int) "notified one observer" 1 (Server.notify server ~path:"/temp");
  ignore (Kernel.run kernel ());
  value := 30;
  ignore (Server.notify server ~path:"/temp");
  ignore (Kernel.run kernel ());
  Alcotest.(check (list string)) "all values pushed" [ "10"; "20"; "30" ]
    (List.rev !received)

let test_observe_cancel () =
  let kernel, _network, server, client = setup () in
  Server.register server ~path:"/x" (fun ~src:_ _ ->
      Server.respond ~payload:"v" Message.code_content);
  let count = ref 0 in
  let obs = Client.observe client ~dst:1 ~path:"/x" (fun _ -> incr count) in
  ignore (Kernel.run kernel ());
  Alcotest.(check int) "initial" 1 !count;
  Client.cancel_observe client obs;
  ignore (Kernel.run kernel ());
  Alcotest.(check int) "deregistered on server" 0
    (Server.observer_count server ~path:"/x");
  Alcotest.(check int) "no more notifications" 0 (Server.notify server ~path:"/x");
  ignore (Kernel.run kernel ());
  Alcotest.(check int) "listener silent" 1 !count

let test_observe_notification_carries_sequence () =
  let kernel, _network, server, client = setup () in
  Server.register server ~path:"/s" (fun ~src:_ _ ->
      Server.respond ~payload:"p" Message.code_content);
  let sequences = ref [] in
  let _obs =
    Client.observe client ~dst:1 ~path:"/s" (fun response ->
        match Message.observe response with
        | Some seq -> sequences := seq :: !sequences
        | None -> ())
  in
  ignore (Kernel.run kernel ());
  ignore (Server.notify server ~path:"/s");
  ignore (Kernel.run kernel ());
  ignore (Server.notify server ~path:"/s");
  ignore (Kernel.run kernel ());
  (* sequence numbers must be strictly increasing (RFC 7641 reordering
     detection) *)
  let sorted = List.sort_uniq compare !sequences in
  Alcotest.(check int) "three distinct" 3 (List.length sorted)

(* --- message-id dedupe LRU (PR 10) --- *)

let detached_server ?dedupe_capacity () =
  let sent = ref [] in
  let server =
    Server.create_detached ?dedupe_capacity ~addr:1
      ~send:(fun ~dst:_ datagram -> sent := datagram :: !sent)
      ()
  in
  (server, sent)

let get_datagram ?(path = "/r") ~mid () =
  Message.encode
    (Message.make ~token:"tk"
       ~options:(Message.options_of_path path)
       ~code:Message.code_get ~message_id:mid ())

let test_dedupe_lru_eviction () =
  let server, sent = detached_server ~dedupe_capacity:4 () in
  let runs = ref 0 in
  Server.register server ~path:"/r" (fun ~src:_ _ ->
      incr runs;
      Server.respond ~payload:"x" Message.code_content);
  (* a CON retransmission is answered from the dedupe table *)
  Server.handle_datagram server ~src:5 (get_datagram ~mid:1 ());
  Server.handle_datagram server ~src:5 (get_datagram ~mid:1 ());
  Alcotest.(check int) "handler ran once" 1 !runs;
  Alcotest.(check int) "both copies answered" 2 (List.length !sent);
  (match !sent with
  | [ a; b ] -> Alcotest.(check bytes) "identical replies" a b
  | _ -> Alcotest.fail "expected two replies");
  (* overflow the 4-entry table: oldest keys fall out, counted *)
  for mid = 2 to 6 do
    Server.handle_datagram server ~src:5 (get_datagram ~mid ())
  done;
  Alcotest.(check bool) "evictions counted" true
    (Server.dedupe_evictions server > 0);
  (* the evicted (src=5, mid=1) is no longer deduplicated... *)
  let before = !runs in
  Server.handle_datagram server ~src:5 (get_datagram ~mid:1 ());
  Alcotest.(check int) "evicted entry re-runs handler" (before + 1) !runs;
  (* ...but a recent mid still is *)
  Server.handle_datagram server ~src:5 (get_datagram ~mid:6 ());
  Alcotest.(check int) "recent mid still deduped" (before + 1) !runs

(* --- idempotent-GET response cache (PR 10) --- *)

let test_response_cache_hits_and_expiry () =
  let server, sent = detached_server () in
  let now = ref 1_000.0 in
  Server.set_time_source server (fun () -> !now);
  let runs = ref 0 in
  Server.register_cached ~max_age_s:60 server ~path:"/c" (fun ~src:_ _ ->
      incr runs;
      Server.respond ~payload:"v" Message.code_content);
  Server.handle_datagram server ~src:1 (get_datagram ~path:"/c" ~mid:1 ());
  Server.handle_datagram server ~src:2 (get_datagram ~path:"/c" ~mid:2 ());
  Alcotest.(check int) "handler ran once for two clients" 1 !runs;
  Alcotest.(check (pair int int)) "one hit, one miss" (1, 1)
    (Server.cache_stats server);
  (* both replies carry the same ETag and a Max-Age *)
  let replies = List.rev_map Message.decode !sent in
  let etags = List.map Message.etag replies in
  (match etags with
  | [ Some a; Some b ] -> Alcotest.(check string) "stable ETag" a b
  | _ -> Alcotest.fail "expected an ETag on both replies");
  List.iter
    (fun r ->
      Alcotest.(check bool) "max-age present" true (Message.max_age r <> None);
      Alcotest.(check string) "payload served" "v" r.Message.payload)
    replies;
  (* past Max-Age the entry is stale: the handler runs again *)
  now := !now +. 61.0;
  Server.handle_datagram server ~src:3 (get_datagram ~path:"/c" ~mid:3 ());
  Alcotest.(check int) "expired entry re-evaluated" 2 !runs;
  (* invalidate drops the fresh entry too *)
  Server.invalidate server ~path:"/c";
  Server.handle_datagram server ~src:4 (get_datagram ~path:"/c" ~mid:4 ());
  Alcotest.(check int) "invalidate forces re-evaluation" 3 !runs

(* --- observe fan-out: one evaluation, one encode, N sends (PR 10) --- *)

let test_observe_fanout_single_evaluation () =
  let kernel = Kernel.create () in
  let network = Network.create ~kernel () in
  let server = Server.create ~network ~addr:1 () in
  let runs = ref 0 in
  Server.register server ~path:"/t" (fun ~src:_ _ ->
      incr runs;
      Server.respond ~payload:"temp=21" Message.code_content);
  let payloads = ref [] in
  for i = 1 to 3 do
    let client = Client.create ~network ~kernel ~addr:(10 + i) in
    ignore
      (Client.observe client ~dst:1 ~path:"/t" (fun m ->
           match Message.observe m with
           | Some seq when seq > 1 -> payloads := m.Message.payload :: !payloads
           | _ -> ()))
  done;
  ignore (Kernel.run kernel ());
  let before = !runs in
  Alcotest.(check int) "all three notified" 3 (Server.notify server ~path:"/t");
  ignore (Kernel.run kernel ());
  Alcotest.(check int) "resource evaluated once for the fan-out" (before + 1)
    !runs;
  Alcotest.(check (list string)) "every observer got the payload"
    [ "temp=21"; "temp=21"; "temp=21" ] !payloads

(* --- fault-injection profiles (PR 10) --- *)

let test_profile_duplication_counted () =
  let kernel = Kernel.create () in
  let profile = Femto_net.Profile.make ~dup_permille:1000 "alldup" in
  let network = Network.create ~kernel ~profile ~seed:3 () in
  let _a = Network.add_node network ~addr:1 in
  let b = Network.add_node network ~addr:2 in
  let received = ref 0 in
  Network.set_receiver b (fun ~src:_ _ -> incr received);
  for _ = 1 to 20 do
    Network.send network ~src:1 ~dst:2 (Bytes.of_string "ping")
  done;
  ignore (Kernel.run kernel ());
  Alcotest.(check int) "every frame duplicated" 20
    (Network.stats network).Network.frames_duplicated;
  Alcotest.(check bool) "duplicates reach the receiver" true (!received > 20)

let test_profile_schedule_deterministic () =
  let run seed =
    let kernel = Kernel.create () in
    let network =
      Network.create ~kernel ~profile:Femto_net.Profile.hostile ~seed ()
    in
    let _a = Network.add_node network ~addr:1 in
    let b = Network.add_node network ~addr:2 in
    let received = ref 0 in
    Network.set_receiver b (fun ~src:_ _ -> incr received);
    for i = 1 to 50 do
      Network.send network ~src:1 ~dst:2
        (Bytes.make (100 + i) (Char.chr (i land 0xff)))
    done;
    ignore (Kernel.run kernel ());
    let s = Network.stats network in
    (!received, s.Network.frames_dropped, s.Network.frames_duplicated,
     s.Network.frames_reordered)
  in
  Alcotest.(check bool) "same seed, same fault schedule" true
    (run 42 = run 42)

let test_coap_roundtrip_under_duplicator_profile () =
  let kernel = Kernel.create () in
  let network =
    Network.create ~kernel ~profile:Femto_net.Profile.duplicator ~seed:5 ()
  in
  let server = Server.create ~network ~addr:1 () in
  let runs = ref 0 in
  Server.register server ~path:"/x" (fun ~src:_ _ ->
      incr runs;
      Server.respond ~payload:"ok" Message.code_content);
  let client = Client.create ~network ~kernel ~addr:2 in
  let got = ref None in
  Client.get client ~dst:1 ~path:"/x" (fun r -> got := Some r);
  ignore (Kernel.run kernel ());
  (match !got with
  | Some (Ok r) -> Alcotest.(check string) "payload" "ok" r.Message.payload
  | _ -> Alcotest.fail "no response under duplication");
  (* duplicated requests are absorbed by the dedupe table *)
  Alcotest.(check int) "handler ran once" 1 !runs

(* --- gcoap glue --- *)

let test_fmt_s16_dfp () =
  Alcotest.(check string) "scale -2" "23.72" (Gcoap.fmt_s16_dfp 2372L (-2));
  Alcotest.(check string) "scale 0" "7" (Gcoap.fmt_s16_dfp 7L 0);
  Alcotest.(check string) "scale 2" "700" (Gcoap.fmt_s16_dfp 7L 2);
  Alcotest.(check string) "negative" "-1.5" (Gcoap.fmt_s16_dfp (-15L) (-1))

let suite =
  [
    Alcotest.test_case "single frame" `Quick test_small_datagram_single_frame;
    Alcotest.test_case "fragment/reassemble" `Quick test_fragment_reassemble;
    Alcotest.test_case "missing fragment" `Quick test_missing_fragment_no_delivery;
    Alcotest.test_case "duplicate fragment" `Quick test_duplicate_fragment_ignored;
    Alcotest.test_case "reassembler flush" `Quick test_reassembler_flush;
    QCheck_alcotest.to_alcotest prop_fragment_roundtrip;
    Alcotest.test_case "network delivery" `Quick test_network_delivery;
    Alcotest.test_case "network large datagram" `Quick test_network_large_datagram;
    Alcotest.test_case "network total loss" `Quick test_network_total_loss;
    Alcotest.test_case "coap codec" `Quick test_coap_encode_decode;
    Alcotest.test_case "coap codes" `Quick test_coap_code_encoding;
    Alcotest.test_case "coap large delta" `Quick test_coap_large_option_delta;
    Alcotest.test_case "coap rejects garbage" `Quick test_coap_rejects_garbage;
    QCheck_alcotest.to_alcotest prop_coap_roundtrip;
    Alcotest.test_case "request/response" `Quick test_request_response;
    Alcotest.test_case "not found" `Quick test_not_found;
    Alcotest.test_case "retransmission" `Quick test_retransmission_recovers_loss;
    Alcotest.test_case "total loss timeout" `Quick test_total_loss_times_out;
    Alcotest.test_case "post payload" `Quick test_post_payload;
    Alcotest.test_case "CON deduplication" `Quick test_server_deduplicates_retransmissions;
    Alcotest.test_case "fmt_s16_dfp" `Quick test_fmt_s16_dfp;
    Alcotest.test_case "block option codec" `Quick test_block_option_codec;
    Alcotest.test_case "block codec exhaustive" `Slow test_block_codec_exhaustive;
    Alcotest.test_case "streaming upload sink" `Quick test_streaming_upload_sink;
    Alcotest.test_case "upload sink failure aborts" `Quick
      test_streaming_upload_sink_failure_aborts;
    Alcotest.test_case "block slice" `Quick test_block_slice;
    Alcotest.test_case "blockwise upload" `Quick test_blockwise_upload;
    Alcotest.test_case "blockwise upload under loss" `Quick
      test_blockwise_upload_survives_loss;
    Alcotest.test_case "blockwise download" `Quick test_blockwise_download;
    Alcotest.test_case "plain GET of large resource" `Quick
      test_plain_get_of_large_resource_gets_first_block;
    Alcotest.test_case "observe register/notify" `Quick test_observe_register_and_notify;
    Alcotest.test_case "observe cancel" `Quick test_observe_cancel;
    Alcotest.test_case "observe sequence" `Quick test_observe_notification_carries_sequence;
    Alcotest.test_case "dedupe LRU eviction" `Quick test_dedupe_lru_eviction;
    Alcotest.test_case "response cache" `Quick test_response_cache_hits_and_expiry;
    Alcotest.test_case "observe fan-out single eval" `Quick
      test_observe_fanout_single_evaluation;
    Alcotest.test_case "profile duplication" `Quick test_profile_duplication_counted;
    Alcotest.test_case "profile determinism" `Quick test_profile_schedule_deterministic;
    Alcotest.test_case "coap under duplicator" `Quick
      test_coap_roundtrip_under_duplicator_profile;
  ]

let () = Alcotest.run "femto_net_coap" [ ("net-coap", suite) ]
