(* Fleet simulator tests: campaign correctness, bit-determinism across
   domain counts, cross-shard traffic, cross-engine image sharing, and
   the rtos mailbox/sync primitives under cross-domain use. *)

module Fleet = Femto_fleet.Fleet
module Engine = Femto_core.Engine
module Container = Femto_core.Container
module Contract = Femto_core.Contract
module Syscall = Femto_core.Syscall
module Kernel = Femto_rtos.Kernel
module Sync = Femto_rtos.Sync
module Mailbox = Femto_rtos.Mailbox

let config ?(devices = 240) ?(shards = 8) ?(domains = 1) ?(loss = 0) () =
  {
    Fleet.default_config with
    devices;
    shards;
    domains;
    loss_permille = loss;
    (* short periods keep the virtual campaign small for tests *)
    epoch_us = 2_000;
    telemetry_us = 10_000;
  }

(* --- campaign correctness --- *)

let test_campaign_completes () =
  let fleet = Fleet.create (config ()) in
  let r = Fleet.run_campaign fleet in
  Alcotest.(check int) "all devices" 240 r.Fleet.r_devices;
  Alcotest.(check int) "every device accepted the update" 240
    r.Fleet.r_updates_ok;
  Alcotest.(check int) "none incomplete" 0 r.Fleet.r_incomplete;
  Alcotest.(check int) "none half-installed" 0 r.Fleet.r_half_installed;
  Alcotest.(check int) "acks crossed shards" 240 r.Fleet.r_cross_shard;
  (* one v1 + one v2 image per shard, every other spawn a cache hit *)
  Alcotest.(check int) "2 images per shard" 16 r.Fleet.r_images_built;
  Alcotest.(check int) "2 spawns per device" (2 * 240)
    (r.Fleet.r_images_built + r.Fleet.r_image_hits);
  Alcotest.(check bool) "telemetry kept firing" true
    (r.Fleet.r_telemetry_fires > 240);
  (* the v2 marker (local[9] = 2) proves the new firmware actually ran
     on every device after install — not just that SUIT accepted it *)
  Array.iter
    (fun line ->
      Alcotest.(check bool)
        ("v2 fired: " ^ line)
        true
        (Astring.String.is_infix ~affix:"9=2" line
        && Astring.String.is_infix ~affix:"seq=2" line))
    (Fleet.device_states fleet)

let test_campaign_report_sane () =
  let fleet = Fleet.create (config ~devices:60 ~shards:4 ()) in
  let r = Fleet.run_campaign fleet in
  Alcotest.(check bool) "epochs counted" true (r.Fleet.r_epochs > 0);
  Alcotest.(check bool) "virtual time advanced" true (r.Fleet.r_virtual_ms > 0.);
  Alcotest.(check bool) "wall time measured" true (r.Fleet.r_wall_ns > 0.);
  Alcotest.(check bool) "timer events counted" true
    (r.Fleet.r_timer_events >= r.Fleet.r_telemetry_fires)

(* --- determinism across domain counts (the contract that makes the
       domain pool a pure optimization) --- *)

let states_for ~domains =
  let fleet = Fleet.create (config ~devices:300 ~shards:12 ~domains ()) in
  let r = Fleet.run_campaign fleet in
  Alcotest.(check int)
    (Printf.sprintf "%d-domain run complete" domains)
    0 r.Fleet.r_incomplete;
  (Fleet.device_states fleet, Fleet.fingerprint fleet)

let test_determinism_across_domains () =
  let s1, f1 = states_for ~domains:1 in
  let s2, f2 = states_for ~domains:2 in
  let s4, f4 = states_for ~domains:4 in
  Alcotest.(check string) "1 = 2 domains" f1 f2;
  Alcotest.(check string) "1 = 4 domains" f1 f4;
  (* fingerprints are sha-256 of the states; compare the first lines
     directly too so a mismatch diagnosis is readable *)
  Alcotest.(check (array string)) "full per-device states equal" s1 s2;
  Alcotest.(check (array string)) "full per-device states equal (4)" s1 s4

let test_determinism_under_loss () =
  (* radio loss exercises the per-shard RNG and the server's retransmit
     path; the loss pattern is seeded per shard, so it too must be
     domain-count invariant *)
  let run domains =
    let fleet =
      Fleet.create (config ~devices:200 ~shards:8 ~domains ~loss:30 ())
    in
    let r = Fleet.run_campaign fleet in
    Alcotest.(check int) "complete despite loss" 0 r.Fleet.r_incomplete;
    Alcotest.(check int) "no half-install despite loss" 0
      r.Fleet.r_half_installed;
    Fleet.fingerprint fleet
  in
  Alcotest.(check string) "lossy run domain-invariant" (run 1) (run 4)

let test_seed_changes_behaviour () =
  let fp seed =
    let fleet =
      Fleet.create { (config ~loss:30 ()) with seed }
    in
    ignore (Fleet.run_campaign fleet);
    Fleet.fingerprint fleet
  in
  Alcotest.(check bool) "different seeds, different histories" true
    (not (String.equal (fp 1) (fp 2)))

(* --- cross-shard device-to-device traffic --- *)

let test_cross_shard_datagram () =
  (* devices 0..3 over 2 shards: 0 and 2 in shard 0, 1 and 3 in shard 1 *)
  let fleet = Fleet.create (config ~devices:4 ~shards:2 ()) in
  Fleet.send_datagram fleet ~src_device:0 ~dst_device:1
    (Bytes.of_string "hello");
  (* same-shard for contrast *)
  Fleet.send_datagram fleet ~src_device:0 ~dst_device:2
    (Bytes.of_string "local");
  Fleet.run_epochs fleet 4;
  Alcotest.(check (list string)) "crossed the shard boundary" [ "hello" ]
    (List.map Bytes.to_string (Fleet.device_inbox fleet 1));
  Alcotest.(check (list string)) "same-shard delivery" [ "local" ]
    (List.map Bytes.to_string (Fleet.device_inbox fleet 2));
  Alcotest.(check (list string)) "inbox drained" []
    (List.map Bytes.to_string (Fleet.device_inbox fleet 1))

(* --- one image, many engines (the PR 9 extension of the PR 8 cache) --- *)

let counter_source =
  {|
    mov r1, 1
    mov r2, r10
    sub r2, 8
    call bpf_fetch_local
    ldxdw r3, [r10-8]
    add r3, 1
    mov r1, 1
    mov r2, r3
    call bpf_store_local
    mov r0, r3
    exit
  |}

let test_image_shared_across_engines () =
  let program =
    Femto_ebpf.Asm.assemble ~helpers:Syscall.resolve_name counter_source
  in
  let images = Hashtbl.create 4 in
  let boot name =
    let engine = Engine.create ~images () in
    let _hook =
      Engine.register_hook engine ~uuid:"shared" ~name ~ctx_size:8 ()
    in
    let tenant = Engine.add_tenant engine name in
    let container =
      Container.create ~name ~tenant
        ~contract:(Contract.require [ Contract.Kv_local ])
        program
    in
    (match Engine.spawn engine ~hook_uuid:"shared" container with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Engine.attach_error_to_string e));
    (engine, container)
  in
  let _e1, c1 = boot "dev1" in
  let _e2, c2 = boot "dev2" in
  (* the second engine found the image the first one built *)
  Alcotest.(check int) "one image total" 1 (Hashtbl.length images);
  (* and yet the instances' CoW state is fully isolated: interleaved
     runs each count privately, with helpers rebound per dispatch *)
  let run c =
    match Container.run_instance c with
    | Ok v -> v
    | Error f -> Alcotest.failf "fault: %s" (Femto_vm.Fault.to_string f)
  in
  Alcotest.(check int64) "dev1 first" 1L (run c1);
  Alcotest.(check int64) "dev2 first" 1L (run c2);
  Alcotest.(check int64) "dev1 second" 2L (run c1);
  Alcotest.(check int64) "dev2 second" 2L (run c2);
  Alcotest.(check int64) "dev1 third" 3L (run c1)

(* --- mailbox/sync under cross-domain use --- *)

let test_mailbox_cross_domain_handoff () =
  (* the fleet pattern: a worker domain owns the mailbox during its
     epoch, the barrier (Domain.join here) publishes it, the owner
     drains.  FIFO order, capacity and drop accounting must survive the
     domain crossing. *)
  let box = Mailbox.create ~capacity:16 () in
  let worker =
    Domain.spawn (fun () ->
        let accepted = ref 0 in
        for i = 1 to 20 do
          if Mailbox.send box i then incr accepted
        done;
        !accepted)
  in
  let accepted = Domain.join worker in
  Alcotest.(check int) "capacity respected" 16 accepted;
  Alcotest.(check int) "overflow counted" 4 (Mailbox.dropped box);
  Alcotest.(check (list int)) "FIFO across the barrier"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15; 16 ]
    (Mailbox.drain box)

(* One simulated-kernel scenario (threads contending on a PI mutex and a
   semaphore, posting to a mailbox) run to completion; returns the full
   event trace.  Running it concurrently on several domains must yield
   the serial trace on every domain — the property the fleet's
   shard-per-domain split relies on. *)
let sync_scenario () =
  let kernel = Kernel.create () in
  let mutex = Sync.create_mutex () in
  let sem = Sync.create_semaphore ~count:0 in
  let box = Mailbox.create ~capacity:8 () in
  let trace = ref [] in
  let mark m = trace := m :: !trace in
  let make_producer name priority items =
    let self = ref None in
    let produced = ref 0 in
    let thread =
      Kernel.spawn kernel ~name ~priority (fun _ ->
          let t = Option.get !self in
          if !produced >= items then begin
            ignore (Sync.unlock mutex t);
            mark (name ^ ":done");
            Sync.sem_release sem;
            Kernel.Finish
          end
          else begin
            (match Sync.lock mutex t with
            | `Acquired ->
                incr produced;
                ignore (Mailbox.send box (name ^ string_of_int !produced));
                mark (name ^ ":put");
                ignore (Sync.unlock mutex t)
            | `Blocked -> mark (name ^ ":blocked"));
            Kernel.Yield
          end)
    in
    self := Some thread;
    thread
  in
  let consumer_self = ref None in
  let got = ref [] in
  let consumer =
    Kernel.spawn kernel ~name:"consumer" ~priority:1 (fun _ ->
        let t = Option.get !consumer_self in
        match Sync.sem_acquire sem t with
        | `Blocked ->
            mark "consumer:waits";
            Kernel.Yield
        | `Acquired ->
            got := Mailbox.drain box @ !got;
            mark "consumer:drained";
            Kernel.Finish)
  in
  consumer_self := Some consumer;
  let _p1 = make_producer "p1" 3 3 in
  let _p2 = make_producer "p2" 5 3 in
  ignore (Kernel.run kernel ());
  (List.rev !trace, List.rev !got, Sync.contentions mutex, Kernel.now kernel)

let test_sync_scenario_domain_invariant () =
  let serial = sync_scenario () in
  let workers = Array.init 4 (fun _ -> Domain.spawn sync_scenario) in
  Array.iteri
    (fun i w ->
      let result = Domain.join w in
      Alcotest.(check bool)
        (Printf.sprintf "domain %d trace = serial trace" i)
        true (result = serial))
    workers;
  (* and the scenario is not vacuous *)
  let trace, got, _, _ = serial in
  Alcotest.(check bool) "producers produced" true (List.length got > 0);
  Alcotest.(check bool) "trace non-trivial" true (List.length trace >= 8)

(* --- footprint sanity (the hard gate lives in bench/fleet_bench.ml) --- *)

let test_resident_words_scale () =
  let words n =
    Fleet.resident_words
      (Fleet.create
         { (config ~devices:n ~shards:4 ()) with telemetry_us = 0 })
  in
  let w256 = words 256 and w512 = words 512 in
  Alcotest.(check bool) "more devices, more words" true (w512 > w256);
  (* marginal cost per device stays bounded: under 1024 words (8 KB) *)
  let marginal = (w512 - w256) / 256 in
  Alcotest.(check bool)
    (Printf.sprintf "marginal %d words/device bounded" marginal)
    true
    (marginal < 1024)

let suite =
  [
    ( "campaign",
      [
        Alcotest.test_case "completes, installs, fires v2" `Quick
          test_campaign_completes;
        Alcotest.test_case "report sane" `Quick test_campaign_report_sane;
      ] );
    ( "determinism",
      [
        Alcotest.test_case "domains 1/2/4 bit-identical" `Quick
          test_determinism_across_domains;
        Alcotest.test_case "lossy runs domain-invariant" `Quick
          test_determinism_under_loss;
        Alcotest.test_case "seed changes history" `Quick
          test_seed_changes_behaviour;
      ] );
    ( "traffic",
      [
        Alcotest.test_case "cross-shard datagram" `Quick
          test_cross_shard_datagram;
      ] );
    ( "images",
      [
        Alcotest.test_case "one image, many engines" `Quick
          test_image_shared_across_engines;
      ] );
    ( "cross-domain",
      [
        Alcotest.test_case "mailbox handoff at a barrier" `Quick
          test_mailbox_cross_domain_handoff;
        Alcotest.test_case "sync scenario domain-invariant" `Quick
          test_sync_scenario_domain_invariant;
      ] );
    ( "footprint",
      [
        Alcotest.test_case "resident words bounded" `Quick
          test_resident_words_scale;
      ] );
  ]

let () = Alcotest.run "femto_fleet" suite
