(* Tests for the femto_device composition: boot, network install,
   persistence across reboot, rollback-counter persistence, identity
   conditions, and management endpoints. *)

module Device = Femto_device.Device
module Engine = Femto_core.Engine
module Kernel = Femto_rtos.Kernel
module Network = Femto_net.Network
module Client = Femto_coap.Client
module Message = Femto_coap.Message
module Suit = Femto_suit.Suit
module Cose = Femto_cose.Cose
module Flash = Femto_flash.Flash
module Slots = Femto_flash.Slots

let hook_a = "0a6e1a80-aaaa-4222-8333-444444444444"
let hook_b = "0a6e1a80-bbbb-4222-8333-444444444444"
let device_addr = 1

let key = Cose.make_key ~key_id:"fleet" ~secret:"fleet secret"

let identity =
  { Device.vendor_id = "acme"; class_id = "m4-sensor"; update_key = key }

let hooks =
  [
    Device.hook_spec ~uuid:hook_a ~name:"task-a" ~ctx_size:16 ();
    Device.hook_spec ~uuid:hook_b ~name:"task-b" ~ctx_size:16 ();
  ]

type rig = {
  kernel : Kernel.t;
  network : Network.t;
  flash : Flash.t;
  client : Client.t;
  mutable device : Device.t;
}

let make_rig () =
  let kernel = Kernel.create () in
  let network = Network.create ~kernel () in
  let flash = Flash.create ~page_size:256 ~pages:64 () in
  let client = Client.create ~network ~kernel ~addr:9 in
  let device =
    Device.boot ~identity ~hooks ~flash ~slot_count:4 ~network
      ~addr:device_addr ()
  in
  { kernel; network; flash; client; device }

let reboot rig =
  Network.remove_node rig.network ~addr:device_addr;
  rig.device <-
    Device.boot ~identity ~hooks ~flash:rig.flash ~slot_count:4
      ~network:rig.network ~addr:device_addr ()

let run_hook rig uuid =
  match Engine.trigger_by_uuid (Device.engine rig.device) ~uuid () with
  | Ok [ { Engine.result = Ok v; _ } ] -> Some v
  | Ok [] -> None
  | Ok _ | Error _ -> Alcotest.fail "unexpected trigger outcome"

let deploy ?vendor_id ?class_id ?(key = key) rig ~sequence ~uuid source =
  let payload =
    Bytes.to_string (Femto_ebpf.Program.to_bytes (Femto_ebpf.Asm.assemble source))
  in
  let manifest =
    Suit.make
      ~vendor_id:(Option.value vendor_id ~default:identity.Device.vendor_id)
      ~class_id:(Option.value class_id ~default:identity.Device.class_id)
      ~sequence
      [ Suit.component_for ~storage_uuid:uuid payload ]
  in
  let envelope = Suit.sign manifest key in
  let outcome = ref None in
  Client.post_blockwise rig.client ~dst:device_addr ~path:"/suit/slot" ~payload
    (fun _ ->
      Client.post rig.client ~dst:device_addr ~path:"/suit/install"
        ~payload:envelope (fun result ->
          outcome :=
            match result with
            | Ok r -> Some r.Message.code
            | Error `Timeout -> None));
  ignore (Kernel.run rig.kernel ());
  !outcome

let test_factory_boot_is_empty () =
  let rig = make_rig () in
  Alcotest.(check (option int64)) "nothing on hook a" None (run_hook rig hook_a);
  Alcotest.(check int) "no containers" 0 (List.length (Device.containers rig.device))

let test_network_install_and_run () =
  let rig = make_rig () in
  let code = deploy rig ~sequence:1L ~uuid:hook_a "mov r0, 11\nexit" in
  Alcotest.(check bool) "2.04" true (code = Some Message.code_changed);
  Alcotest.(check (option int64)) "runs" (Some 11L) (run_hook rig hook_a)

let test_persistence_across_reboot () =
  let rig = make_rig () in
  ignore (deploy rig ~sequence:1L ~uuid:hook_a "mov r0, 11\nexit");
  ignore (deploy rig ~sequence:2L ~uuid:hook_b "mov r0, 22\nexit");
  reboot rig;
  Alcotest.(check (option int64)) "a restored" (Some 11L) (run_hook rig hook_a);
  Alcotest.(check (option int64)) "b restored" (Some 22L) (run_hook rig hook_b)

let test_newest_version_wins_after_reboot () =
  let rig = make_rig () in
  ignore (deploy rig ~sequence:1L ~uuid:hook_a "mov r0, 1\nexit");
  ignore (deploy rig ~sequence:2L ~uuid:hook_a "mov r0, 2\nexit");
  ignore (deploy rig ~sequence:3L ~uuid:hook_a "mov r0, 3\nexit");
  reboot rig;
  Alcotest.(check (option int64)) "v3 active" (Some 3L) (run_hook rig hook_a)

let test_rollback_counter_survives_reboot () =
  let rig = make_rig () in
  ignore (deploy rig ~sequence:5L ~uuid:hook_a "mov r0, 5\nexit");
  reboot rig;
  let code = deploy rig ~sequence:5L ~uuid:hook_a "mov r0, 666\nexit" in
  Alcotest.(check bool) "replay rejected after reboot" true
    (code = Some Message.code_unauthorized);
  Alcotest.(check (option int64)) "v5 intact" (Some 5L) (run_hook rig hook_a)

let test_identity_conditions_enforced () =
  let rig = make_rig () in
  let code =
    deploy rig ~vendor_id:"someone-else" ~sequence:1L ~uuid:hook_a
      "mov r0, 666\nexit"
  in
  Alcotest.(check bool) "wrong vendor rejected" true
    (code = Some Message.code_unauthorized);
  let code =
    deploy rig ~class_id:"esp32-board" ~sequence:1L ~uuid:hook_a
      "mov r0, 666\nexit"
  in
  Alcotest.(check bool) "wrong class rejected" true
    (code = Some Message.code_unauthorized);
  Alcotest.(check (option int64)) "nothing installed" None (run_hook rig hook_a)

let test_wrong_key_rejected () =
  let rig = make_rig () in
  let attacker = Cose.make_key ~key_id:"fleet" ~secret:"guessed" in
  let code = deploy ~key:attacker rig ~sequence:1L ~uuid:hook_a "mov r0, 1\nexit" in
  Alcotest.(check bool) "rejected" true (code = Some Message.code_unauthorized)

let test_broken_program_rejected_not_persisted () =
  let rig = make_rig () in
  (* passes SUIT but fails pre-flight: must not reach the flash *)
  let payload =
    Bytes.to_string
      (Femto_ebpf.Program.to_bytes
         (Femto_ebpf.Program.of_insns [ Femto_ebpf.Insn.make 0xb7 ]))
  in
  let manifest =
    Suit.make ~vendor_id:identity.Device.vendor_id
      ~class_id:identity.Device.class_id ~sequence:1L
      [ Suit.component_for ~storage_uuid:hook_a payload ]
  in
  let envelope = Suit.sign manifest key in
  let outcome = ref None in
  Client.post_blockwise rig.client ~dst:device_addr ~path:"/suit/slot" ~payload
    (fun _ ->
      Client.post rig.client ~dst:device_addr ~path:"/suit/install"
        ~payload:envelope (fun result ->
          outcome := match result with Ok r -> Some r.Message.code | _ -> None));
  ignore (Kernel.run rig.kernel ());
  Alcotest.(check bool) "rejected" true (!outcome = Some Message.code_unauthorized);
  Alcotest.(check int) "flash untouched" 0
    (List.length (Slots.scan (Device.slots rig.device)))

let test_management_endpoints () =
  let rig = make_rig () in
  ignore (deploy rig ~sequence:1L ~uuid:hook_a "mov r0, 1\nexit");
  ignore (run_hook rig hook_a);
  let listing = ref "" in
  Client.get_blockwise rig.client ~dst:device_addr ~path:"/fc/containers"
    (function
      | Ok r -> listing := r.Message.payload
      | Error `Timeout -> ());
  ignore (Kernel.run rig.kernel ());
  Alcotest.(check bool) "lists the container" true
    (Astring.String.is_infix ~affix:hook_a !listing);
  Alcotest.(check bool) "reports runs" true
    (Astring.String.is_infix ~affix:"runs=1" !listing)

(* --- hostile-network updates (PR 10) --- *)

module Profile = Femto_net.Profile

let assemble source =
  Bytes.to_string (Femto_ebpf.Program.to_bytes (Femto_ebpf.Asm.assemble source))

(* Install a manifest through the SUIT processor directly (no network):
   the firmware the device is already running when the hostile update
   starts. *)
let install_direct device ~sequence ~uuid source =
  let payload = assemble source in
  let manifest =
    Suit.make ~vendor_id:identity.Device.vendor_id
      ~class_id:identity.Device.class_id ~sequence
      [ Suit.component_for ~storage_uuid:uuid payload ]
  in
  match
    Suit.process
      (Device.suit_processor device)
      ~envelope:(Suit.sign manifest key)
      ~payloads:[ (uuid, payload) ]
  with
  | Ok _ -> payload
  | Error e -> Alcotest.fail (Suit.error_to_string e)

let run_hook_on device uuid =
  match Engine.trigger_by_uuid (Device.engine device) ~uuid () with
  | Ok [ { Engine.result = Ok v; _ } ] -> Some v
  | Ok [] -> None
  | Ok _ | Error _ -> Alcotest.fail "unexpected trigger outcome"

(* Whatever a hostile schedule did to the transfer, the device must be
   in one of exactly two states: still running v1, or fully running v2.
   Slot images are digest-checked (Slots.scan drops anything torn), the
   header-last streaming commit means an aborted upload scans as empty,
   and an accepted install must actually fire v2 — before AND after a
   power cycle over the same flash. *)
let prop_hostile_update_never_torn =
  let gen =
    QCheck.Gen.(
      map
        (fun (loss, dup, reorder, seed) -> (loss, dup, reorder, seed))
        (quad (int_bound 250) (int_bound 400) (int_bound 400) (int_bound 9999)))
  in
  let print (loss, dup, reorder, seed) =
    Printf.sprintf "loss=%d dup=%d reorder=%d seed=%d" loss dup reorder seed
  in
  QCheck.Test.make ~name:"hostile schedules never expose a torn update"
    ~count:30
    (QCheck.make ~print gen)
    (fun (loss, dup, reorder, seed) ->
      let profile =
        Profile.make ~loss_permille:loss ~dup_permille:dup
          ~reorder_permille:reorder ~jitter_us:800 "qcheck"
      in
      let kernel = Kernel.create () in
      let network = Network.create ~kernel ~profile ~seed () in
      let flash = Flash.create ~page_size:256 ~pages:64 () in
      let client = Client.create ~network ~kernel ~addr:9 in
      let device =
        Device.boot ~identity ~hooks ~flash ~slot_count:4 ~network
          ~addr:device_addr ()
      in
      let v1 = install_direct device ~sequence:1L ~uuid:hook_a "mov r0, 1\nexit" in
      let v2 = assemble "mov r0, 2\nexit" in
      let manifest =
        Suit.make ~vendor_id:identity.Device.vendor_id
          ~class_id:identity.Device.class_id ~sequence:2L
          [ Suit.component_for ~storage_uuid:hook_a v2 ]
      in
      let outcome = ref None in
      Client.post_blockwise client ~dst:device_addr ~path:"/suit/slot"
        ~payload:v2 (fun _ ->
          Client.post client ~dst:device_addr ~path:"/suit/install"
            ~payload:(Suit.sign manifest key) (fun result ->
              outcome :=
                match result with
                | Ok r -> Some r.Message.code
                | Error `Timeout -> None));
      ignore (Kernel.run kernel ());
      let accepted = !outcome = Some Message.code_changed in
      let images_whole device =
        List.for_all
          (fun (_, image) ->
            String.equal image.Slots.hook_uuid hook_a
            && (String.equal image.Slots.payload v1
               || String.equal image.Slots.payload v2))
          (Slots.scan (Device.slots device))
      in
      let state_sane device =
        match run_hook_on device hook_a with
        | Some 1L -> not accepted (* a 2.04 means v2 must be live *)
        | Some 2L -> true
        | _ -> false
      in
      let live_ok = images_whole device && state_sane device in
      (* power-cycle over the same flash: the bootloader sees only
         whole, digest-checked images *)
      Network.remove_node network ~addr:device_addr;
      let rebooted =
        Device.boot ~identity ~hooks ~flash ~slot_count:4 ~network
          ~addr:device_addr ()
      in
      live_ok && images_whole rebooted && state_sane rebooted)

(* The rollback half of the hostile matrix, deterministically: a replayed
   sequence number pushed through a lossy link must be rejected and must
   leave v1 firing. *)
let test_hostile_rollback_leaves_v1 () =
  let kernel = Kernel.create () in
  let network = Network.create ~kernel ~profile:Profile.lossy ~seed:4 () in
  let flash = Flash.create ~page_size:256 ~pages:64 () in
  let client = Client.create ~network ~kernel ~addr:9 in
  let device =
    Device.boot ~identity ~hooks ~flash ~slot_count:4 ~network
      ~addr:device_addr ()
  in
  ignore (install_direct device ~sequence:5L ~uuid:hook_a "mov r0, 1\nexit");
  let rollback = assemble "mov r0, 666\nexit" in
  let manifest =
    Suit.make ~vendor_id:identity.Device.vendor_id
      ~class_id:identity.Device.class_id ~sequence:5L
      [ Suit.component_for ~storage_uuid:hook_a rollback ]
  in
  let outcome = ref None in
  Client.post_blockwise client ~dst:device_addr ~path:"/suit/slot"
    ~payload:rollback (fun _ ->
      Client.post client ~dst:device_addr ~path:"/suit/install"
        ~payload:(Suit.sign manifest key) (fun result ->
          outcome :=
            match result with
            | Ok r -> Some r.Message.code
            | Error `Timeout -> None));
  ignore (Kernel.run kernel ());
  Alcotest.(check bool) "replay rejected" true
    (!outcome = Some Message.code_unauthorized);
  Alcotest.(check (option int64)) "v1 still firing" (Some 1L)
    (run_hook_on device hook_a)

let test_corrupt_slot_skipped_on_boot () =
  let rig = make_rig () in
  ignore (deploy rig ~sequence:1L ~uuid:hook_a "mov r0, 1\nexit");
  ignore (deploy rig ~sequence:2L ~uuid:hook_b "mov r0, 2\nexit");
  (* corrupt hook_a's image behind the manager's back *)
  let slot_a, _ =
    List.find
      (fun (_, image) -> String.equal image.Slots.hook_uuid hook_a)
      (Slots.scan (Device.slots rig.device))
  in
  (* clear the first payload byte (the 0xb7 opcode), guaranteed nonzero *)
  let offset = (slot_a * (Flash.size rig.flash / 4)) + 84 in
  (match Flash.write rig.flash ~offset (Bytes.of_string "\x00") with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Flash.error_to_string e));
  reboot rig;
  Alcotest.(check (option int64)) "corrupt image skipped" None (run_hook rig hook_a);
  Alcotest.(check (option int64)) "healthy image restored" (Some 2L)
    (run_hook rig hook_b)

let suite =
  [
    Alcotest.test_case "factory boot empty" `Quick test_factory_boot_is_empty;
    Alcotest.test_case "network install" `Quick test_network_install_and_run;
    Alcotest.test_case "persistence" `Quick test_persistence_across_reboot;
    Alcotest.test_case "newest wins" `Quick test_newest_version_wins_after_reboot;
    Alcotest.test_case "rollback survives reboot" `Quick
      test_rollback_counter_survives_reboot;
    Alcotest.test_case "identity conditions" `Quick test_identity_conditions_enforced;
    Alcotest.test_case "wrong key" `Quick test_wrong_key_rejected;
    Alcotest.test_case "broken program not persisted" `Quick
      test_broken_program_rejected_not_persisted;
    Alcotest.test_case "management endpoints" `Quick test_management_endpoints;
    Alcotest.test_case "corrupt slot skipped" `Quick test_corrupt_slot_skipped_on_boot;
    QCheck_alcotest.to_alcotest prop_hostile_update_never_torn;
    Alcotest.test_case "hostile rollback leaves v1" `Quick
      test_hostile_rollback_leaves_v1;
  ]

let () = Alcotest.run "femto_device" [ ("device", suite) ]
