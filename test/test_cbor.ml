(* CBOR codec tests, including RFC 8949 Appendix A vectors and round-trip
   properties. *)

module Cbor = Femto_cbor.Cbor

let hex = Femto_crypto.Crypto.of_hex

let check_encodes value expected_hex =
  Alcotest.(check string)
    (Printf.sprintf "encode %s" expected_hex)
    expected_hex
    (Femto_crypto.Crypto.to_hex (Cbor.encode value))

let check_decodes input_hex expected =
  let decoded = Cbor.decode (hex input_hex) in
  Alcotest.(check bool)
    (Printf.sprintf "decode %s" input_hex)
    true (Cbor.equal decoded expected)

(* RFC 8949 Appendix A test vectors. *)
let test_rfc_vectors_ints () =
  check_encodes (Cbor.Int 0L) "00";
  check_encodes (Cbor.Int 1L) "01";
  check_encodes (Cbor.Int 10L) "0a";
  check_encodes (Cbor.Int 23L) "17";
  check_encodes (Cbor.Int 24L) "1818";
  check_encodes (Cbor.Int 25L) "1819";
  check_encodes (Cbor.Int 100L) "1864";
  check_encodes (Cbor.Int 1000L) "1903e8";
  check_encodes (Cbor.Int 1000000L) "1a000f4240";
  check_encodes (Cbor.Int 1000000000000L) "1b000000e8d4a51000";
  check_encodes (Cbor.Int (-1L)) "20";
  check_encodes (Cbor.Int (-10L)) "29";
  check_encodes (Cbor.Int (-100L)) "3863";
  check_encodes (Cbor.Int (-1000L)) "3903e7"

let test_rfc_vectors_strings () =
  check_encodes (Cbor.Text "") "60";
  check_encodes (Cbor.Text "a") "6161";
  check_encodes (Cbor.Text "IETF") "6449455446";
  check_encodes (Cbor.Bytes "\x01\x02\x03\x04") "4401020304"

let test_rfc_vectors_structures () =
  check_encodes (Cbor.Array []) "80";
  check_encodes (Cbor.Array [ Cbor.Int 1L; Cbor.Int 2L; Cbor.Int 3L ]) "83010203";
  check_encodes (Cbor.Map []) "a0";
  check_encodes
    (Cbor.Map [ (Cbor.Int 1L, Cbor.Int 2L); (Cbor.Int 3L, Cbor.Int 4L) ])
    "a201020304";
  check_encodes
    (Cbor.Array
       [ Cbor.Int 1L; Cbor.Array [ Cbor.Int 2L; Cbor.Int 3L ];
         Cbor.Array [ Cbor.Int 4L; Cbor.Int 5L ] ])
    "8301820203820405"

let test_rfc_vectors_simple () =
  check_encodes (Cbor.Bool false) "f4";
  check_encodes (Cbor.Bool true) "f5";
  check_encodes Cbor.Null "f6";
  check_encodes Cbor.Undefined "f7";
  check_encodes (Cbor.Simple 16) "f0";
  check_encodes (Cbor.Simple 255) "f8ff"

let test_rfc_vectors_floats () =
  check_encodes (Cbor.Float 1.1) "fb3ff199999999999a";
  check_encodes (Cbor.Float (-4.1)) "fbc010666666666666";
  check_decodes "f93c00" (Cbor.Float 1.0);
  check_decodes "f97c00" (Cbor.Float infinity);
  check_decodes "fa47c35000" (Cbor.Float 100000.0)

let test_rfc_vectors_tags () =
  check_encodes
    (Cbor.Tag (1L, Cbor.Int 1363896240L))
    "c11a514b67b0"

let test_decode_indefinite () =
  (* (_ 1, 2) indefinite array *)
  check_decodes "9f0102ff" (Cbor.Array [ Cbor.Int 1L; Cbor.Int 2L ]);
  (* {_ "a": 1} indefinite map *)
  check_decodes "bf616101ff" (Cbor.Map [ (Cbor.Text "a", Cbor.Int 1L) ]);
  (* (_ h'0102', h'0304') indefinite bytes *)
  check_decodes "5f42010243030405ff" (Cbor.Bytes "\x01\x02\x03\x04\x05")

let expect_decode_error input_hex =
  match Cbor.decode (hex input_hex) with
  | exception Cbor.Decode_error _ -> ()
  | _ -> Alcotest.failf "expected decode error for %s" input_hex

let test_decode_errors () =
  expect_decode_error ""; (* empty *)
  expect_decode_error "18"; (* truncated uint8 argument *)
  expect_decode_error "4403"; (* truncated bytes body *)
  expect_decode_error "8301"; (* truncated array *)
  expect_decode_error "ff"; (* lone break *)
  expect_decode_error "0001"; (* trailing garbage *)
  expect_decode_error "1c" (* reserved additional info 28 *)

let test_negative_int_roundtrip () =
  let value = Cbor.Int Int64.min_int in
  Alcotest.(check bool) "min_int" true
    (Cbor.equal value (Cbor.decode (Cbor.encode value)))

(* Round-trip property over a structured generator. *)
let gen_cbor =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun v -> Cbor.Int v) (map Int64.of_int int);
        map (fun s -> Cbor.Bytes s) (string_size (int_range 0 32));
        map (fun s -> Cbor.Text s) (string_size (int_range 0 32));
        oneofl [ Cbor.Bool true; Cbor.Bool false; Cbor.Null; Cbor.Undefined ];
        map (fun f -> Cbor.Float f) (float_bound_exclusive 1e9);
      ]
  in
  let rec node depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          (1, map (fun items -> Cbor.Array items) (list_size (int_range 0 5) (node (depth - 1))));
          ( 1,
            map
              (fun pairs -> Cbor.Map pairs)
              (list_size (int_range 0 5)
                 (pair (map (fun v -> Cbor.Int (Int64.of_int v)) int) (node (depth - 1)))) );
          ( 1,
            map2
              (fun tag v -> Cbor.Tag (Int64.of_int (abs tag), v))
              int (node (depth - 1)) );
        ]
  in
  node 3

let prop_roundtrip =
  QCheck.Test.make ~name:"cbor roundtrip" ~count:500 (QCheck.make gen_cbor)
    (fun value -> Cbor.equal value (Cbor.decode (Cbor.encode value)))

let prop_decoder_total =
  QCheck.Test.make ~name:"decoder never crashes" ~count:500
    QCheck.(make Gen.(string_size ~gen:char (int_range 0 128)))
    (fun junk ->
      match Cbor.decode junk with
      | _ -> true
      | exception Cbor.Decode_error _ -> true)

(* --- zero-copy view decoder vs the tree decoder ---

   The slice decoder is the fast path of the secure-update pipeline; these
   differentials are the proof that switching to it changes no outcome:
   on every input either both decoders reject, or both accept with equal
   trees. *)

(* Both decoders run on [input]; agreement is required.  Returns false on
   any divergence, raises (failing the property) if a decoder throws
   something other than [Decode_error]. *)
let decoders_agree input =
  let tree = match Cbor.decode input with
    | t -> Ok t
    | exception Cbor.Decode_error _ -> Error ()
  in
  let view = match Cbor.decode_view input with
    | v -> Ok (Cbor.view_to_tree v)
    | exception Cbor.Decode_error _ -> Error ()
  in
  match (tree, view) with
  | Ok t, Ok v -> Cbor.equal t v
  | Error (), Error () -> true
  | Ok _, Error () | Error (), Ok _ -> false

let prop_view_differential =
  QCheck.Test.make ~name:"view = tree on valid encodings" ~count:500
    (QCheck.make gen_cbor)
    (fun value -> decoders_agree (Cbor.encode value))

(* Corrupt one byte of a valid encoding: the decoders must still agree
   (both reject, or both accept the same reinterpretation). *)
let prop_view_differential_mutated =
  QCheck.Test.make ~name:"view = tree on mutated encodings" ~count:500
    QCheck.(make Gen.(triple gen_cbor (int_bound 1000) (int_bound 255)))
    (fun (value, pos, byte) ->
      let encoded = Bytes.of_string (Cbor.encode value) in
      let pos = pos mod Bytes.length encoded in
      Bytes.set encoded pos (Char.chr byte);
      decoders_agree (Bytes.to_string encoded))

let prop_view_total =
  QCheck.Test.make ~name:"view decoder never crashes" ~count:500
    QCheck.(make Gen.(string_size ~gen:char (int_range 0 128)))
    (fun junk -> decoders_agree junk)

let test_view_indefinite () =
  (* indefinite-length items materialise in views but must decode to the
     same trees as the strict decoder *)
  List.iter
    (fun input_hex ->
      let input = hex input_hex in
      Alcotest.(check bool)
        (Printf.sprintf "view agrees on %s" input_hex)
        true
        (Cbor.equal (Cbor.decode input)
           (Cbor.view_to_tree (Cbor.decode_view input))))
    [ "9f0102ff"; "bf616101ff"; "5f42010243030405ff"; "7f61616162ff" ]

let test_view_slices_window_input () =
  (* V_bytes/V_text are windows of the input buffer, not copies *)
  let module Slice = Femto_cbor.Slice in
  let input = Cbor.encode (Cbor.Bytes "payload") in
  match Cbor.decode_view input with
  | Cbor.V_bytes s ->
      Alcotest.(check bool) "same backing buffer" true (Slice.base s == input);
      Alcotest.(check string) "contents" "payload" (Slice.to_string s)
  | _ -> Alcotest.fail "expected V_bytes"

let suite =
  [
    Alcotest.test_case "rfc ints" `Quick test_rfc_vectors_ints;
    Alcotest.test_case "rfc strings" `Quick test_rfc_vectors_strings;
    Alcotest.test_case "rfc structures" `Quick test_rfc_vectors_structures;
    Alcotest.test_case "rfc simple" `Quick test_rfc_vectors_simple;
    Alcotest.test_case "rfc floats" `Quick test_rfc_vectors_floats;
    Alcotest.test_case "rfc tags" `Quick test_rfc_vectors_tags;
    Alcotest.test_case "indefinite" `Quick test_decode_indefinite;
    Alcotest.test_case "decode errors" `Quick test_decode_errors;
    Alcotest.test_case "negative roundtrip" `Quick test_negative_int_roundtrip;
    Alcotest.test_case "view indefinite" `Quick test_view_indefinite;
    Alcotest.test_case "view zero-copy" `Quick test_view_slices_window_input;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_decoder_total;
    QCheck_alcotest.to_alcotest prop_view_differential;
    QCheck_alcotest.to_alcotest prop_view_differential_mutated;
    QCheck_alcotest.to_alcotest prop_view_total;
  ]

let () = Alcotest.run "femto_cbor" [ ("cbor", suite) ]
