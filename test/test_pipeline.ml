(* Parallel update-verification pool: equivalence with the sequential
   path, per-tenant ordering, backpressure accounting, shutdown
   semantics.  The pool may only beat a sequential loop; it must never
   accept or reject a different set of updates. *)

module Suit = Femto_suit.Suit
module Pipeline = Femto_suit.Pipeline
module Cose = Femto_cose.Cose
module Crypto = Femto_crypto.Crypto

let key = Cose.make_key ~key_id:"fleet-key" ~secret:"pool signing secret"
let attacker_key = Cose.make_key ~key_id:"fleet-key" ~secret:"attacker secret"
let uuid = "pooltest-0000-4000-8000-000000000001"

let make_device () =
  let installed = ref [] in
  let device =
    Suit.create_device ~key
      ~install:(fun ~sequence:_ ~storage_uuid payload ->
        installed := (storage_uuid, payload) :: !installed;
        Ok ())
      ~known_storage:(fun u -> u = uuid)
      ()
  in
  (device, installed)

let envelope ?(key = key) ~sequence payload =
  Suit.sign
    (Suit.make ~sequence [ Suit.component_for ~storage_uuid:uuid payload ])
    key

(* A mixed workload over several tenants: good updates, a rollback
   replay, a tampered payload, a wrongly-signed envelope. *)
let jobs () =
  [
    ("tenant-a", envelope ~sequence:1L "a v1", [ (uuid, "a v1") ]);
    ("tenant-b", envelope ~sequence:1L "b v1", [ (uuid, "b v1") ]);
    ("tenant-a", envelope ~sequence:2L "a v2", [ (uuid, "a v2") ]);
    ("tenant-c", envelope ~sequence:1L "c v1", [ (uuid, "evil") ]);
    ("tenant-b", envelope ~sequence:1L "b replay", [ (uuid, "b replay") ]);
    ("tenant-c", envelope ~key:attacker_key ~sequence:2L "c v2",
     [ (uuid, "c v2") ]);
    ("tenant-a", envelope ~sequence:3L "a v3", [ (uuid, "a v3") ]);
  ]

let outcome_to_string = function
  | Ok (m : Suit.t) -> Printf.sprintf "ok seq=%Ld" m.Suit.sequence
  | Error e -> "error: " ^ Suit.error_to_string e

let run_sequential devices jobs =
  List.map
    (fun (tenant, envelope, payloads) ->
      let device = List.assoc tenant devices in
      (tenant, Suit.process device ~envelope ~payloads))
    jobs

let run_pipeline ~domains devices jobs =
  let pool = Pipeline.create ~domains ~queue_depth:4 () in
  List.iter
    (fun (tenant, envelope, payloads) ->
      let device = List.assoc tenant devices in
      Pipeline.submit pool ~tenant ~device ~envelope ~payloads ())
    jobs;
  let results = Pipeline.shutdown pool in
  results

let fresh_tenants () =
  List.map
    (fun t ->
      let device, installed = make_device () in
      (t, (device, installed)))
    [ "tenant-a"; "tenant-b"; "tenant-c" ]

let check_equivalence ~domains () =
  let seq_tenants = fresh_tenants () in
  let par_tenants = fresh_tenants () in
  let devices_of l = List.map (fun (t, (d, _)) -> (t, d)) l in
  let seq = run_sequential (devices_of seq_tenants) (jobs ()) in
  let par = run_pipeline ~domains (devices_of par_tenants) (jobs ()) in
  Alcotest.(check (list (pair string string)))
    "same outcomes in submission order"
    (List.map (fun (t, r) -> (t, outcome_to_string r)) seq)
    (List.map (fun (t, r) -> (t, outcome_to_string r)) par);
  List.iter2
    (fun (t1, (d1, i1)) (t2, (d2, i2)) ->
      Alcotest.(check string) "tenant" t1 t2;
      Alcotest.(check int64) (t1 ^ " sequence") d1.Suit.sequence d2.Suit.sequence;
      Alcotest.(check int) (t1 ^ " accepted") d1.Suit.accepted d2.Suit.accepted;
      Alcotest.(check int) (t1 ^ " rejected") d1.Suit.rejected d2.Suit.rejected;
      Alcotest.(check (list (pair string string))) (t1 ^ " installs") !i1 !i2)
    seq_tenants par_tenants

let test_equivalence_one_domain () = check_equivalence ~domains:1 ()
let test_equivalence_many_domains () = check_equivalence ~domains:4 ()

let test_rollback_ordering_within_tenant () =
  (* per-tenant ordering: v1 then v2 for the same tenant must both land
     even when many other tenants' jobs are in flight; the v1 replay
     afterwards must be the one rejected *)
  let tenants =
    List.init 8 (fun i ->
        let device, _ = make_device () in
        (Printf.sprintf "t%d" i, device))
  in
  let pool = Pipeline.create ~domains:3 ~queue_depth:4 () in
  List.iter
    (fun sequence ->
      List.iter
        (fun (tenant, device) ->
          let payload = Printf.sprintf "%s v%Ld" tenant sequence in
          Pipeline.submit pool ~tenant ~device
            ~envelope:(envelope ~sequence payload)
            ~payloads:[ (uuid, payload) ] ())
        tenants)
    [ 1L; 2L; 3L ];
  (* replays of sequence 3 must all be rejected as rollbacks *)
  List.iter
    (fun (tenant, device) ->
      Pipeline.submit pool ~tenant ~device
        ~envelope:(envelope ~sequence:3L "replay")
        ~payloads:[ (uuid, "replay") ] ())
    tenants;
  let results = Pipeline.shutdown pool in
  Alcotest.(check int) "all jobs committed" (8 * 4) (List.length results);
  let ok, err = List.partition (fun (_, r) -> Result.is_ok r) results in
  Alcotest.(check int) "three accepted per tenant" (8 * 3) (List.length ok);
  Alcotest.(check int) "one rollback per tenant" 8 (List.length err);
  List.iter
    (fun (_, r) ->
      match r with
      | Error (Suit.Rollback _) -> ()
      | r -> Alcotest.failf "expected rollback, got %s" (outcome_to_string r))
    err;
  List.iter
    (fun (_, device) ->
      Alcotest.(check int64) "device at v3" 3L device.Suit.sequence)
    tenants

let test_submit_after_shutdown_raises () =
  let pool = Pipeline.create ~domains:1 () in
  ignore (Pipeline.shutdown pool);
  let device, _ = make_device () in
  match
    Pipeline.submit pool ~tenant:"t" ~device
      ~envelope:(envelope ~sequence:1L "x")
      ~payloads:[ (uuid, "x") ] ()
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "submit after shutdown accepted"

let test_create_validates () =
  (match Pipeline.create ~domains:0 () with
  | exception Invalid_argument _ -> ()
  | pool ->
      ignore (Pipeline.shutdown pool);
      Alcotest.fail "domains:0 accepted");
  match Pipeline.create ~queue_depth:0 () with
  | exception Invalid_argument _ -> ()
  | pool ->
      ignore (Pipeline.shutdown pool);
      Alcotest.fail "queue_depth:0 accepted"

let test_failed_install_isolated () =
  (* one tenant's failing installer must reject only that tenant's job;
     the pool keeps serving the others *)
  let pool = Pipeline.create ~domains:2 ~queue_depth:2 () in
  let broken =
    Suit.create_device ~key
      ~install:(fun ~sequence:_ ~storage_uuid:_ _ -> Error "flash dead")
      ~known_storage:(fun _ -> true)
      ()
  in
  let fine, _ = make_device () in
  Pipeline.submit pool ~tenant:"bad" ~device:broken
    ~envelope:(envelope ~sequence:1L "x")
    ~payloads:[ (uuid, "x") ] ();
  Pipeline.submit pool ~tenant:"good" ~device:fine
    ~envelope:(envelope ~sequence:1L "y")
    ~payloads:[ (uuid, "y") ] ();
  let results = Pipeline.shutdown pool in
  Alcotest.(check int) "both committed" 2 (List.length results);
  (match List.assoc "bad" results with
  | Error (Suit.Install_failed "flash dead") -> ()
  | r -> Alcotest.failf "expected install failure, got %s" (outcome_to_string r));
  (match List.assoc "good" results with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Suit.error_to_string e));
  Alcotest.(check int64) "broken device sequence unchanged" 0L
    broken.Suit.sequence

let test_digest_hints_through_pool () =
  let device, installed = make_device () in
  let payload = "streamed payload" in
  let pool = Pipeline.create ~domains:2 () in
  Pipeline.submit pool
    ~digests:
      [ (uuid, { Suit.streamed = Crypto.sha256 payload;
                 bytes = String.length payload }) ]
    ~tenant:"t" ~device
    ~envelope:(envelope ~sequence:1L payload)
    ~payloads:[ (uuid, payload) ] ();
  (match Pipeline.shutdown pool with
  | [ ("t", Ok _) ] -> ()
  | [ ("t", Error e) ] -> Alcotest.fail (Suit.error_to_string e)
  | _ -> Alcotest.fail "unexpected results");
  Alcotest.(check int) "installed" 1 (List.length !installed)

let suite =
  [
    Alcotest.test_case "pool = sequential (1 domain)" `Quick
      test_equivalence_one_domain;
    Alcotest.test_case "pool = sequential (4 domains)" `Quick
      test_equivalence_many_domains;
    Alcotest.test_case "per-tenant rollback ordering" `Quick
      test_rollback_ordering_within_tenant;
    Alcotest.test_case "submit after shutdown" `Quick
      test_submit_after_shutdown_raises;
    Alcotest.test_case "create validates" `Quick test_create_validates;
    Alcotest.test_case "failed install isolated" `Quick
      test_failed_install_isolated;
    Alcotest.test_case "digest hints through pool" `Quick
      test_digest_hints_through_pool;
  ]

let () = Alcotest.run "femto_pipeline" [ ("pipeline", suite) ]
