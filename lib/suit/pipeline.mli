(** Parallel multi-tenant update verification.

    A pool of OCaml 5 worker domains runs {!Suit.prepare} (signature,
    decode, digests — the pure gates) for different tenants concurrently;
    {!Suit.commit} (rollback, identity, install) runs on the owning
    domain only, inside {!drain}, in global submission order.  Jobs for
    one tenant always go to the same worker, preserving per-tenant
    ordering, so the pool accepts and rejects exactly the same update
    sets as a sequential {!Suit.process} loop.

    Observed through the [suit.pipeline.*] metrics: submitted, committed,
    accepted, rejected, backpressure_waits counters, a latency_ns
    histogram (submit to commit) and an inflight gauge; each commit also
    traces a [Pipeline_update] event. *)

type t

val default_domains : int
(** [max 1 (Domain.recommended_domain_count () - 1)] — leaves the owning
    domain its own core when there is more than one. *)

val default_queue_depth : int

val create : ?domains:int -> ?queue_depth:int -> unit -> t
(** Spawn the worker domains.  [queue_depth] bounds the number of jobs
    awaiting a worker; beyond it, [submit] blocks (backpressure).
    Raises [Invalid_argument] if either is < 1. *)

val domains : t -> int

val submit :
  t ->
  ?digests:(string * Suit.digest_hint) list ->
  tenant:string ->
  device:Suit.device ->
  envelope:string ->
  payloads:(string * string) list ->
  unit ->
  unit
(** Enqueue one update for verification.  The device's key is read on
    the worker domain; all other device state is only touched at commit.
    Blocks while [queue_depth] jobs are already waiting.  Raises
    [Invalid_argument] after [shutdown]. *)

val drain : t -> (string * (Suit.t, Suit.error) result) list
(** Commit every job submitted so far, in submission order, on the
    calling domain; returns [(tenant, outcome)] in that order.  Call
    from the domain that owns the devices (the one that created the
    pool). *)

val shutdown : t -> (string * (Suit.t, Suit.error) result) list
(** Drain outstanding jobs, then stop and join the worker domains.
    Returns the outcomes of the final drain. *)
