(** SUIT manifests and the device-side update processor (paper §5).

    A CBOR manifest carries a monotonically increasing sequence number,
    optional vendor/class identity conditions and, per component, the
    storage-location UUID (the hook to attach to), the payload's SHA-256
    digest and size.  The manifest travels inside a COSE_Sign1 envelope.
    The device verifies signature, version, rollback, identity and digest
    before handing bytecode to the hosting engine — which then runs its
    own pre-flight verification.

    The verification path is split into a pure [prepare] (signature,
    decode, payload digests — safe on a worker domain) and a stateful
    [commit] (rollback, identity, install — main domain); [process]
    composes the two, so both paths share every gate and accept/reject
    identical update sets. *)

module Cbor = Femto_cbor.Cbor
module Slice = Femto_cbor.Slice
module Cose = Femto_cose.Cose

type component = {
  storage_uuid : string;  (** hook UUID, the manifest's storage location *)
  digest : string;  (** SHA-256 of the payload *)
  size : int;
}

type t = {
  sequence : int64;
  vendor_id : string option;  (** condition-vendor-identifier *)
  class_id : string option;  (** condition-class-identifier *)
  components : component list;
}

val make :
  ?vendor_id:string -> ?class_id:string -> sequence:int64 -> component list -> t

val component_for : storage_uuid:string -> string -> component
(** Build a component entry (digest and size) for a payload. *)

type error =
  | Malformed of string
  | Unsupported_version of int64
  | Signature of Cose.error
  | Rollback of { manifest : int64; device : int64 }
  | Digest_mismatch of string
  | Unknown_storage of string
  | Wrong_vendor of { manifest : string; device : string }
  | Wrong_class of { manifest : string; device : string }
  | Install_failed of string

val error_to_string : error -> string

val to_cbor : t -> Cbor.t
val encode : t -> string

val decode : string -> (t, error) result
(** Parses through the zero-copy CBOR view decoder (equivalent to
    [decode_slice] over the whole string). *)

val decode_slice : Slice.t -> (t, error) result
(** Parse a manifest from a window of a larger buffer (typically the
    COSE payload slice) without copying it first. *)

val decode_tree : string -> (t, error) result
(** The pre-PR-5 tree-based decoder, kept as the differential-testing
    and benchmark baseline.  [decode] and [decode_tree] agree on every
    input. *)

val sign : t -> Cose.key -> string
(** Serialized COSE_Sign1 envelope around the encoded manifest. *)

(** {2 Device-side processor} *)

type device = {
  key : Cose.key;
  vendor_id : string;
  class_id : string;
  mutable sequence : int64;  (** highest accepted sequence number *)
  install :
    sequence:int64 -> storage_uuid:string -> string -> (unit, string) result;
  known_storage : string -> bool;
  mutable accepted : int;
  mutable rejected : int;
}

val create_device :
  ?vendor_id:string ->
  ?class_id:string ->
  key:Cose.key ->
  install:
    (sequence:int64 -> storage_uuid:string -> string -> (unit, string) result) ->
  known_storage:(string -> bool) ->
  unit ->
  device

type digest_hint = { streamed : string; bytes : int }
(** A digest computed incrementally while the payload streamed in (CoAP
    Block1 + streaming SHA-256): the digest gate verifies it against the
    manifest instead of re-hashing the payload. *)

val process :
  ?digests:(string * digest_hint) list ->
  device ->
  envelope:string ->
  payloads:(string * string) list ->
  (t, error) result
(** Run the full verification pipeline; [payloads] maps storage uuid to
    downloaded payload bytes and [digests] optionally maps storage uuid
    to a streaming digest.  The sequence number only advances when every
    component installed successfully. *)

(** {2 Prepare/commit split (used by {!Pipeline})} *)

type prepared
(** Outcome of the pure gates for one update, ready to commit. *)

val prepare :
  key:Cose.key ->
  ?digests:(string * digest_hint) list ->
  envelope:string ->
  payloads:(string * string) list ->
  unit ->
  (prepared, error) result
(** Signature check, manifest decode and payload-digest computation.
    Touches no mutable device state — safe to run on a worker domain. *)

val commit : device -> (prepared, error) result -> (t, error) result
(** Rollback, identity, storage-location and install gates plus the
    sequence-number advance, replaying the digest results from
    [prepare].  Must run on the domain that owns [device].  Passing an
    [Error] from [prepare] records the rejection and returns it, so
    [commit device (prepare ~key:device.key ... ())] behaves exactly
    like [process]. *)
