(* Parallel multi-tenant update verification (PR 5 tentpole, part 3).

   A pool of OCaml 5 worker domains runs the pure half of the update
   pipeline ({!Suit.prepare}: signature check, manifest decode, payload
   digests) for different tenants concurrently; the stateful half
   ({!Suit.commit}: rollback, identity, install, sequence advance) only
   ever runs on the domain that owns the pool, inside [drain].

   Invariants:

   - Per-tenant ordering.  A tenant's jobs are assigned to a worker by
     tenant hash, so one tenant's updates are always prepared by the same
     worker in submission order — a tenant can never observe its own
     sequence numbers out of order.
   - Global commit order.  [drain] applies commits strictly in global
     submission order, so the pool accepts and rejects exactly the same
     update sets as a sequential [Suit.process] loop over the same jobs
     (asserted differentially in the tests).
   - Main-domain effects.  Worker domains touch no device state, no
     hosting-engine state, and no Obs registry; metrics and trace events
     are recorded from the submitting domain only.
   - Backpressure.  At most [queue_depth] jobs may be awaiting a worker;
     [submit] blocks (and counts a backpressure_wait) until space frees
     up, bounding memory on a flood of updates. *)

module Obs = Femto_obs.Obs
module Ometrics = Femto_obs.Metrics
module Otrace = Femto_obs.Trace

let m_submitted = Obs.counter "suit.pipeline.submitted"
let m_committed = Obs.counter "suit.pipeline.committed"
let m_accepted = Obs.counter "suit.pipeline.accepted"
let m_rejected = Obs.counter "suit.pipeline.rejected"
let m_backpressure = Obs.counter "suit.pipeline.backpressure_waits"
let m_latency_ns = Obs.histogram "suit.pipeline.latency_ns"
let g_inflight = Obs.gauge "suit.pipeline.inflight"

type task = {
  seq : int; (* global submission order *)
  tenant : string;
  device : Suit.device;
  t_submit : float;
  run : unit -> (Suit.prepared, Suit.error) result;
}

type t = {
  mutex : Mutex.t;
  work_ready : Condition.t; (* workers wait for queued tasks *)
  space_ready : Condition.t; (* submit waits for backpressure room *)
  task_done : Condition.t; (* drain waits for prepared results *)
  queues : task Queue.t array; (* one FIFO per worker: per-tenant order *)
  prepared : (int, task * (Suit.prepared, Suit.error) result) Hashtbl.t;
  queue_depth : int;
  mutable queued : int; (* tasks submitted but not yet prepared *)
  mutable next_seq : int;
  mutable next_commit : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

let default_domains = max 1 (Domain.recommended_domain_count () - 1)
let default_queue_depth = 32

let worker_loop pool index =
  let queue = pool.queues.(index) in
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty queue && not pool.stopping do
      Condition.wait pool.work_ready pool.mutex
    done;
    if Queue.is_empty queue then (* stopping and drained *)
      Mutex.unlock pool.mutex
    else begin
      let task = Queue.pop queue in
      Mutex.unlock pool.mutex;
      let result =
        try task.run ()
        with exn -> Error (Suit.Malformed (Printexc.to_string exn))
      in
      Mutex.lock pool.mutex;
      Hashtbl.replace pool.prepared task.seq (task, result);
      pool.queued <- pool.queued - 1;
      Condition.broadcast pool.task_done;
      Condition.broadcast pool.space_ready;
      Mutex.unlock pool.mutex;
      loop ()
    end
  in
  loop ()

let create ?(domains = default_domains) ?(queue_depth = default_queue_depth)
    () =
  if domains < 1 then invalid_arg "Pipeline.create: domains must be >= 1";
  if queue_depth < 1 then
    invalid_arg "Pipeline.create: queue_depth must be >= 1";
  let pool =
    {
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      space_ready = Condition.create ();
      task_done = Condition.create ();
      queues = Array.init domains (fun _ -> Queue.create ());
      prepared = Hashtbl.create 64;
      queue_depth;
      queued = 0;
      next_seq = 0;
      next_commit = 0;
      stopping = false;
      workers = [||];
    }
  in
  pool.workers <-
    Array.init domains (fun i -> Domain.spawn (fun () -> worker_loop pool i));
  pool

let domains pool = Array.length pool.queues

(* Stable tenant -> worker assignment: per-tenant FIFO order. *)
let worker_for pool tenant = Hashtbl.hash tenant mod Array.length pool.queues

let submit pool ?digests ~tenant ~device ~envelope ~payloads () =
  let key = device.Suit.key in
  let run () = Suit.prepare ~key ?digests ~envelope ~payloads () in
  Mutex.lock pool.mutex;
  if pool.stopping then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pipeline.submit: pool is shut down"
  end;
  let waited = ref false in
  while pool.queued >= pool.queue_depth do
    waited := true;
    Condition.wait pool.space_ready pool.mutex
  done;
  let task =
    {
      seq = pool.next_seq;
      tenant;
      device;
      t_submit = (if Obs.enabled () then Obs.now_ns () else 0.0);
      run;
    }
  in
  pool.next_seq <- pool.next_seq + 1;
  pool.queued <- pool.queued + 1;
  Queue.push task pool.queues.(worker_for pool tenant);
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.mutex;
  if Obs.enabled () then begin
    Ometrics.incr m_submitted;
    if !waited then Ometrics.incr m_backpressure;
    Ometrics.set g_inflight (float_of_int (pool.next_seq - pool.next_commit))
  end

(* [drain pool] commits every submitted job, in global submission order,
   on the calling (owner) domain; returns [(tenant, outcome)] pairs in
   that same order. *)
let drain pool =
  let rec take_ready acc =
    Mutex.lock pool.mutex;
    if pool.next_commit >= pool.next_seq then begin
      Mutex.unlock pool.mutex;
      List.rev acc
    end
    else begin
      while not (Hashtbl.mem pool.prepared pool.next_commit) do
        Condition.wait pool.task_done pool.mutex
      done;
      let task, result = Hashtbl.find pool.prepared pool.next_commit in
      Hashtbl.remove pool.prepared pool.next_commit;
      pool.next_commit <- pool.next_commit + 1;
      Mutex.unlock pool.mutex;
      let outcome = Suit.commit task.device result in
      if Obs.enabled () then begin
        Ometrics.incr m_committed;
        Ometrics.incr
          (match outcome with Ok _ -> m_accepted | Error _ -> m_rejected);
        let ns = Obs.now_ns () -. task.t_submit in
        Ometrics.observe m_latency_ns ns;
        Ometrics.set g_inflight
          (float_of_int (pool.next_seq - pool.next_commit));
        Obs.event (fun () ->
            Otrace.Pipeline_update
              { tenant = task.tenant; ok = Result.is_ok outcome; ns })
      end;
      take_ready ((task.tenant, outcome) :: acc)
    end
  in
  take_ready []

let shutdown pool =
  let pending = drain pool in
  Mutex.lock pool.mutex;
  pool.stopping <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join pool.workers;
  pending
