(* SUIT manifests and the device-side update processor.

   Implements the paper's secure-update primitives (§5): a CBOR manifest
   carrying a monotonically increasing sequence number and, per component,
   the storage-location UUID (the hook to attach to), the payload's
   SHA-256 digest and size; the manifest travels inside a COSE_Sign1
   envelope.  The device verifies signature, rollback protection and
   payload digest before handing the bytecode to the hosting engine —
   which then runs its own pre-flight verification.  Five independent
   gates between the network and execution.

   The verification path is split in two (PR 5):

     prepare   — the pure gates (signature, manifest decode, payload
                 digests).  Reads no device state, so the domain pool in
                 {!Pipeline} runs it concurrently for different tenants.
                 Decoding goes through the zero-copy CBOR view decoder,
                 and a streaming digest computed while CoAP blocks
                 arrived can stand in for re-hashing the payload.
     commit    — the stateful gates (rollback, identity, install) plus
                 the sequence-number advance; always on the main domain.

   [process] composes the two, so the sequential path and the parallel
   pipeline share every gate — they accept and reject identical update
   sets by construction (also asserted differentially in the tests). *)

module Cbor = Femto_cbor.Cbor
module Slice = Femto_cbor.Slice
module Cose = Femto_cose.Cose
module Crypto = Femto_crypto.Crypto
module Obs = Femto_obs.Obs
module Ometrics = Femto_obs.Metrics
module Otrace = Femto_obs.Trace

(* Update-pipeline metrics: manifest outcomes and end-to-end processing
   latency; each gate additionally traces a Suit_step event. *)
let m_accepted = Obs.counter "suit.accepted"
let m_rejected = Obs.counter "suit.rejected"
let m_process_ns = Obs.histogram "suit.process_ns"

(* [timed step f] runs one verification gate and traces its duration
   and outcome as a [Suit_step] event. *)
let timed step f =
  if not (Obs.enabled ()) then f ()
  else begin
    let t0 = Obs.now_ns () in
    let result = f () in
    let ns = Obs.now_ns () -. t0 in
    Obs.event (fun () ->
        Otrace.Suit_step { step; ok = Result.is_ok result; ns });
    result
  end

(* Manifest map keys (after draft-ietf-suit-manifest's structure,
   simplified to the fields the paper's flow uses). *)
let key_version = Cbor.Int 1L
let key_sequence = Cbor.Int 2L
let key_components = Cbor.Int 3L
let key_vendor_id = Cbor.Int 4L
let key_class_id = Cbor.Int 5L
let key_storage = Cbor.Int 1L
let key_digest = Cbor.Int 2L
let key_size = Cbor.Int 3L

let manifest_version = 1L

type component = {
  storage_uuid : string; (* hook UUID, the manifest's storage location *)
  digest : string; (* SHA-256 of the payload *)
  size : int;
}

type t = {
  sequence : int64;
  vendor_id : string option; (* condition-vendor-identifier *)
  class_id : string option; (* condition-class-identifier *)
  components : component list;
}

let make ?vendor_id ?class_id ~sequence components =
  { sequence; vendor_id; class_id; components }

let component_for ~storage_uuid payload =
  {
    storage_uuid;
    digest = Crypto.sha256 payload;
    size = String.length payload;
  }

(* --- serialization --- *)

let component_to_cbor c =
  Cbor.Map
    [
      (key_storage, Cbor.Text c.storage_uuid);
      (key_digest, Cbor.Bytes c.digest);
      (key_size, Cbor.Int (Int64.of_int c.size));
    ]

let to_cbor t =
  Cbor.Map
    ([
       (key_version, Cbor.Int manifest_version);
       (key_sequence, Cbor.Int t.sequence);
       (key_components, Cbor.Array (List.map component_to_cbor t.components));
     ]
    @ (match t.vendor_id with
      | Some v -> [ (key_vendor_id, Cbor.Text v) ]
      | None -> [])
    @
    match t.class_id with
    | Some v -> [ (key_class_id, Cbor.Text v) ]
    | None -> [])

let encode t = Cbor.encode (to_cbor t)

type error =
  | Malformed of string
  | Unsupported_version of int64
  | Signature of Cose.error
  | Rollback of { manifest : int64; device : int64 }
  | Digest_mismatch of string (* storage uuid *)
  | Unknown_storage of string
  | Wrong_vendor of { manifest : string; device : string }
  | Wrong_class of { manifest : string; device : string }
  | Install_failed of string

let error_to_string = function
  | Malformed m -> Printf.sprintf "malformed manifest: %s" m
  | Unsupported_version v -> Printf.sprintf "unsupported manifest version %Ld" v
  | Signature e -> Printf.sprintf "envelope rejected: %s" (Cose.error_to_string e)
  | Rollback { manifest; device } ->
      Printf.sprintf "rollback: manifest seq %Ld <= device seq %Ld" manifest device
  | Digest_mismatch uuid -> Printf.sprintf "payload digest mismatch for %s" uuid
  | Unknown_storage uuid -> Printf.sprintf "unknown storage location %s" uuid
  | Wrong_vendor { manifest; device } ->
      Printf.sprintf "vendor condition failed: manifest %s, device %s" manifest
        device
  | Wrong_class { manifest; device } ->
      Printf.sprintf "class condition failed: manifest %s, device %s" manifest
        device
  | Install_failed m -> Printf.sprintf "install failed: %s" m

let ( let* ) = Result.bind

(* --- tree decoder (pre-PR-5 path, kept as the differential baseline) --- *)

let component_of_cbor value =
  let* storage_uuid =
    match Cbor.find_map_entry value key_storage with
    | Some (Cbor.Text s) -> Ok s
    | _ -> Error (Malformed "component missing storage location")
  in
  let* digest =
    match Cbor.find_map_entry value key_digest with
    | Some (Cbor.Bytes d) when String.length d = 32 -> Ok d
    | _ -> Error (Malformed "component missing sha256 digest")
  in
  let* size =
    match Cbor.find_map_entry value key_size with
    | Some (Cbor.Int n) when Int64.compare n 0L >= 0 -> Ok (Int64.to_int n)
    | _ -> Error (Malformed "component missing size")
  in
  Ok { storage_uuid; digest; size }

let decode_tree data =
  match Cbor.decode data with
  | exception Cbor.Decode_error m -> Error (Malformed m)
  | value ->
      let* () =
        match Cbor.find_map_entry value key_version with
        | Some (Cbor.Int v) when Int64.equal v manifest_version -> Ok ()
        | Some (Cbor.Int v) -> Error (Unsupported_version v)
        | _ -> Error (Malformed "missing version")
      in
      let* sequence =
        match Cbor.find_map_entry value key_sequence with
        | Some (Cbor.Int s) -> Ok s
        | _ -> Error (Malformed "missing sequence number")
      in
      let* components =
        match Cbor.find_map_entry value key_components with
        | Some (Cbor.Array items) ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                let* c = component_of_cbor item in
                Ok (c :: acc))
              (Ok []) items
            |> Result.map List.rev
        | _ -> Error (Malformed "missing components")
      in
      let text_field key =
        match Cbor.find_map_entry value key with
        | Some (Cbor.Text s) -> Some s
        | Some _ | None -> None
      in
      if components = [] then Error (Malformed "no components")
      else
        Ok
          {
            sequence;
            vendor_id = text_field key_vendor_id;
            class_id = text_field key_class_id;
            components;
          }

(* --- slice decoder (the zero-copy default) ---

   Walks the CBOR views straight out of the (envelope) buffer; the only
   materialised strings are the small per-component fields (uuid, 32-byte
   digest) and the optional identity conditions. *)

let component_of_view value =
  let* storage_uuid =
    match Option.bind (Cbor.vfind_int value 1L) Cbor.vas_text with
    | Some s -> Ok (Slice.to_string s)
    | None -> Error (Malformed "component missing storage location")
  in
  let* digest =
    match Option.bind (Cbor.vfind_int value 2L) Cbor.vas_bytes with
    | Some d when Slice.length d = 32 -> Ok (Slice.to_string d)
    | _ -> Error (Malformed "component missing sha256 digest")
  in
  let* size =
    match Option.bind (Cbor.vfind_int value 3L) Cbor.vas_int with
    | Some n when Int64.compare n 0L >= 0 -> Ok (Int64.to_int n)
    | _ -> Error (Malformed "component missing size")
  in
  Ok { storage_uuid; digest; size }

let decode_slice data =
  match Cbor.decode_view_slice data with
  | exception Cbor.Decode_error m -> Error (Malformed m)
  | value ->
      let* () =
        match Option.bind (Cbor.vfind_int value 1L) Cbor.vas_int with
        | Some v when Int64.equal v manifest_version -> Ok ()
        | Some v -> Error (Unsupported_version v)
        | None -> (
            (* distinguish "key missing" from "key present, not an int",
               matching the tree decoder's Malformed in both cases *)
            match Cbor.vfind_int value 1L with
            | Some _ | None -> Error (Malformed "missing version"))
      in
      let* sequence =
        match Option.bind (Cbor.vfind_int value 2L) Cbor.vas_int with
        | Some s -> Ok s
        | None -> Error (Malformed "missing sequence number")
      in
      let* components =
        match Option.bind (Cbor.vfind_int value 3L) Cbor.vas_array with
        | Some items ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                let* c = component_of_view item in
                Ok (c :: acc))
              (Ok []) items
            |> Result.map List.rev
        | None -> Error (Malformed "missing components")
      in
      let text_field key =
        Option.map Slice.to_string
          (Option.bind (Cbor.vfind_int value key) Cbor.vas_text)
      in
      if components = [] then Error (Malformed "no components")
      else
        Ok
          {
            sequence;
            vendor_id = text_field 4L;
            class_id = text_field 5L;
            components;
          }

let decode data = decode_slice (Slice.of_string data)

(* [sign t key] wraps the encoded manifest in a COSE_Sign1 envelope. *)
let sign t key = Cose.sign key (encode t)

(* --- device-side processor --- *)

type device = {
  key : Cose.key;
  vendor_id : string; (* the device's immutable vendor identity *)
  class_id : string; (* the hardware class identity *)
  mutable sequence : int64; (* highest accepted sequence number *)
  (* [install ~sequence ~storage_uuid payload] hands verified bytecode to
     the hosting engine (and persistent storage); returns an error message
     on attach failure. *)
  install : sequence:int64 -> storage_uuid:string -> string -> (unit, string) result;
  known_storage : string -> bool;
  mutable accepted : int;
  mutable rejected : int;
}

let create_device ?(vendor_id = "") ?(class_id = "") ~key ~install
    ~known_storage () =
  { key; vendor_id; class_id; sequence = 0L; install; known_storage;
    accepted = 0; rejected = 0 }

(* A digest computed while the payload streamed in (CoAP Block1 +
   incremental SHA-256): the digest gate verifies it against the manifest
   instead of re-hashing the payload. *)
type digest_hint = { streamed : string; bytes : int }

(* The digest-gate outcome for one component, computed without touching
   device state (the storage-location check stays in commit, preserving
   the sequential gate order). *)
let digest_check ?digests ~payloads component =
  let hint =
    Option.bind digests (List.assoc_opt component.storage_uuid)
  in
  match hint with
  | Some { streamed; bytes } ->
      if
        List.mem_assoc component.storage_uuid payloads
        && bytes = component.size
        && Crypto.constant_time_equal streamed component.digest
      then Ok ()
      else Error (Digest_mismatch component.storage_uuid)
  | None -> (
      match List.assoc_opt component.storage_uuid payloads with
      | None -> Error (Digest_mismatch component.storage_uuid)
      | Some payload ->
          if
            String.length payload = component.size
            && Crypto.constant_time_equal (Crypto.sha256 payload)
                 component.digest
          then Ok ()
          else Error (Digest_mismatch component.storage_uuid))

(* --- shared gates ---

   [digest_pairs] carries, per component, a thunk for the digest-gate
   outcome: the sequential path computes it lazily inside the fold (so a
   storage-location failure short-circuits the hashing, as before), the
   parallel pipeline passes results a worker domain already computed. *)

let run_gates device (manifest : t) ~payloads ~digest_pairs =
  let* () =
    timed "rollback" (fun () ->
        if Int64.compare manifest.sequence device.sequence <= 0 then
          Error
            (Rollback { manifest = manifest.sequence; device = device.sequence })
        else Ok ())
  in
  (* identity conditions: a manifest built for another product or
     hardware class must not install, even when correctly signed *)
  let* () =
    timed "identity" (fun () ->
        match (manifest.vendor_id, manifest.class_id) with
        | Some v, _ when v <> device.vendor_id ->
            Error (Wrong_vendor { manifest = v; device = device.vendor_id })
        | _, Some c when c <> device.class_id ->
            Error (Wrong_class { manifest = c; device = device.class_id })
        | _, _ -> Ok ())
  in
  let* () =
    timed "digest" (fun () ->
        List.fold_left
          (fun acc (component, outcome) ->
            let* () = acc in
            if not (device.known_storage component.storage_uuid) then
              Error (Unknown_storage component.storage_uuid)
            else outcome ())
          (Ok ()) digest_pairs)
  in
  (* install all components; first failure aborts *)
  let* () =
    timed "install" (fun () ->
        List.fold_left
          (fun acc component ->
            let* () = acc in
            let payload = List.assoc component.storage_uuid payloads in
            Result.map_error
              (fun m -> Install_failed m)
              (device.install ~sequence:manifest.sequence
                 ~storage_uuid:component.storage_uuid payload))
          (Ok ()) manifest.components)
  in
  device.sequence <- manifest.sequence;
  device.accepted <- device.accepted + 1;
  Ok manifest

(* Outcome accounting shared by [process] and [commit]. *)
let finish device t0 outcome =
  let outcome =
    match outcome with
    | Ok manifest -> Ok manifest
    | Error e ->
        device.rejected <- device.rejected + 1;
        Error e
  in
  if Obs.enabled () then begin
    Ometrics.observe m_process_ns (Obs.now_ns () -. t0);
    Ometrics.incr
      (match outcome with Ok _ -> m_accepted | Error _ -> m_rejected)
  end;
  outcome

(* [process device ~envelope ~payloads] runs the full verification
   pipeline.  [payloads] maps storage uuid -> downloaded payload bytes;
   [digests] optionally maps storage uuid -> streaming digest, letting
   the digest gate skip re-hashing.  Each gate is individually timed into
   the trace ring (Suit_step); the whole pipeline feeds the
   suit.process_ns histogram. *)
let process ?digests device ~envelope ~payloads =
  let t0 = if Obs.enabled () then Obs.now_ns () else 0.0 in
  let result =
    let* payload =
      timed "signature" (fun () ->
          Result.map_error
            (fun e -> Signature e)
            (Cose.verify_slice device.key (Slice.of_string envelope)))
    in
    let* manifest = timed "decode" (fun () -> decode_slice payload) in
    run_gates device manifest ~payloads
      ~digest_pairs:
        (List.map
           (fun c -> (c, fun () -> digest_check ?digests ~payloads c))
           manifest.components)
  in
  finish device t0 result

(* --- prepare/commit: the split the domain pool runs on --- *)

type prepared = {
  manifest : t;
  checked : (component * (unit, error) result) list;
  payloads : (string * string) list;
}

(* The pure gates: signature, manifest decode, payload digests.  Reads no
   device state beyond the (immutable) verification key, so it is safe to
   run on a worker domain while other updates commit. *)
let prepare ~key ?digests ~envelope ~payloads () =
  let* payload =
    Result.map_error
      (fun e -> Signature e)
      (Cose.verify_slice key (Slice.of_string envelope))
  in
  let* manifest = decode_slice payload in
  Ok
    {
      manifest;
      checked =
        List.map
          (fun c -> (c, digest_check ?digests ~payloads c))
          manifest.components;
      payloads;
    }

(* The stateful tail: rollback, identity, digest replay (with the
   storage-location check), install, sequence advance.  Main domain
   only. *)
let commit device prepared_result =
  let t0 = if Obs.enabled () then Obs.now_ns () else 0.0 in
  let result =
    match prepared_result with
    | Error e -> Error e
    | Ok { manifest; checked; payloads } ->
        run_gates device manifest ~payloads
          ~digest_pairs:
            (List.map (fun (c, outcome) -> (c, fun () -> outcome)) checked)
  in
  finish device t0 result
