(* MiniScript sample programs for benchmarks and tests. *)

(* fletcher32 over a byte array, same deferred-reduction algorithm as the
   native/eBPF/wasm implementations — results are bit-identical. *)
let fletcher32_source =
  {|
    fn fletcher32(data, words) {
      let sum1 = 65535;
      let sum2 = 65535;
      let i = 0;
      while (i < words) {
        let w = data[2 * i] + data[2 * i + 1] * 256;
        sum1 = sum1 + w;
        sum2 = sum2 + sum1;
        i = i + 1;
      }
      sum1 = (sum1 & 65535) + (sum1 >> 16);
      sum1 = (sum1 & 65535) + (sum1 >> 16);
      sum2 = (sum2 & 65535) + (sum2 >> 16);
      sum2 = (sum2 & 65535) + (sum2 >> 16);
      return (sum2 << 16) | sum1;
    }
  |}

(* Wrap input bytes as a MiniScript array value. *)
let bytes_to_value data =
  Value.Array
    (ref (Array.init (Bytes.length data) (fun i ->
              Value.Int (Int64.of_int (Bytes.get_uint8 data i)))))

let fletcher32_args data =
  [ bytes_to_value data; Value.Int (Int64.of_int (Bytes.length data / 2)) ]

(* Raw-memory flavour of the same kernel for the to_ebpf backend: reads
   16-bit words straight out of a mapped VM region instead of a script
   array, so the compiled form races the handwritten eBPF program on the
   exact same buffer (the corpus "script/to-ebpf" row). *)
let fletcher32_mem_source =
  {|
    fn run(mem, words) {
      let sum1 = 65535;
      let sum2 = 65535;
      let i = 0;
      while (i < words) {
        sum1 = sum1 + load16(mem + (2 * i));
        sum2 = sum2 + sum1;
        i = i + 1;
      }
      sum1 = (sum1 & 65535) + (sum1 >> 16);
      sum1 = (sum1 & 65535) + (sum1 >> 16);
      sum2 = (sum2 & 65535) + (sum2 >> 16);
      sum2 = (sum2 & 65535) + (sum2 >> 16);
      return (sum2 << 16) | sum1;
    }
  |}
