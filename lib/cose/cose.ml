(* COSE_Sign1 (RFC 8152) over the CBOR codec.

   SUIT manifests are wrapped in a COSE_Sign1 envelope:
     [ protected : bstr, unprotected : map, payload : bstr / nil, sig : bstr ]
   The signature covers the canonical Sig_structure
     [ "Signature1", protected, external_aad, payload ].

   Algorithm: HMAC-SHA256 stands in for ed25519 here (see DESIGN.md and
   lib/crypto); COSE calls this construction "MAC0-as-signature" and the
   envelope layout is unchanged, so verification, tamper rejection and
   key separation behave exactly as in the paper's update pipeline. *)

module Cbor = Femto_cbor.Cbor

(* Private COSE algorithm identifier for the HMAC substitution; real
   ed25519 would be -8 (EdDSA). *)
let alg_hmac_sha256 = 5L

type key = {
  key_id : string;
  secret : string;
  mac : Femto_crypto.Crypto.hmac_key;
      (* pad midstates precomputed once per key; sign/verify clone them
         instead of re-hashing the pads on every envelope *)
}

let make_key ~key_id ~secret =
  { key_id; secret; mac = Femto_crypto.Crypto.hmac_key secret }

type envelope = {
  protected : Cbor.t; (* decoded protected header map *)
  unprotected : (Cbor.t * Cbor.t) list;
  payload : string;
  signature : string;
}

let header_alg = Cbor.Int 1L
let header_kid = Cbor.Int 4L

let protected_header key =
  Cbor.Map [ (header_alg, Cbor.Int alg_hmac_sha256); (header_kid, Cbor.Text key.key_id) ]

let sig_structure ~protected_bytes ~external_aad ~payload =
  Cbor.encode
    (Cbor.Array
       [
         Cbor.Text "Signature1";
         Cbor.Bytes protected_bytes;
         Cbor.Bytes external_aad;
         Cbor.Bytes payload;
       ])

(* [sign key payload] produces the serialized COSE_Sign1 envelope. *)
let sign ?(external_aad = "") key payload =
  let protected_bytes = Cbor.encode (protected_header key) in
  let to_sign = sig_structure ~protected_bytes ~external_aad ~payload in
  let signature = Femto_crypto.Crypto.hmac_sha256_with key.mac to_sign in
  Cbor.encode
    (Cbor.Tag
       ( 18L (* COSE_Sign1 *),
         Cbor.Array
           [
             Cbor.Bytes protected_bytes;
             Cbor.Map [];
             Cbor.Bytes payload;
             Cbor.Bytes signature;
           ] ))

type error =
  | Malformed of string
  | Unknown_algorithm of int64
  | Wrong_key_id of string
  | Bad_signature

let error_to_string = function
  | Malformed m -> Printf.sprintf "malformed COSE envelope: %s" m
  | Unknown_algorithm alg -> Printf.sprintf "unknown algorithm %Ld" alg
  | Wrong_key_id kid -> Printf.sprintf "wrong key id %S" kid
  | Bad_signature -> "signature verification failed"

let parse data =
  match Cbor.decode data with
  | exception Cbor.Decode_error m -> Error (Malformed m)
  | decoded -> (
      let body = match decoded with Cbor.Tag (18L, body) -> body | other -> other in
      match body with
      | Cbor.Array
          [ Cbor.Bytes protected_bytes; Cbor.Map unprotected; Cbor.Bytes payload;
            Cbor.Bytes signature ] -> (
          match Cbor.decode protected_bytes with
          | exception Cbor.Decode_error m -> Error (Malformed m)
          | protected -> Ok { protected; unprotected; payload; signature })
      | _ -> Error (Malformed "expected 4-element COSE_Sign1 array"))

(* --- zero-copy verification ---

   [verify_slice] walks the envelope through the CBOR view decoder:
   protected bytes, payload and signature stay windows of the original
   request buffer, and the Sig_structure is framed straight into one
   buffer (the original protected bytes are authenticated, rather than a
   re-encoding of their decoded form).  The authenticated payload is
   returned as a slice — the SUIT manifest parse that follows reads it
   in place. *)

module Slice = Femto_cbor.Slice

let sig_structure_into buf ~protected ~external_aad ~payload =
  Cbor.write_head buf 4 4L;
  Cbor.write_head buf 3 10L;
  Buffer.add_string buf "Signature1";
  Cbor.write_head buf 2 (Int64.of_int (Slice.length protected));
  Slice.add_to_buffer buf protected;
  Cbor.write_head buf 2 (Int64.of_int (String.length external_aad));
  Buffer.add_string buf external_aad;
  Cbor.write_head buf 2 (Int64.of_int (Slice.length payload));
  Slice.add_to_buffer buf payload

let verify_slice ?(external_aad = "") key data =
  match Cbor.decode_view_slice data with
  | exception Cbor.Decode_error m -> Error (Malformed m)
  | decoded -> (
      let body =
        match decoded with Cbor.V_tag (18L, body) -> body | other -> other
      in
      match body with
      | Cbor.V_array
          [ Cbor.V_bytes protected_bytes; Cbor.V_map _; Cbor.V_bytes payload;
            Cbor.V_bytes signature ] -> (
          match Cbor.decode_view_slice protected_bytes with
          | exception Cbor.Decode_error m -> Error (Malformed m)
          | protected -> (
              match Option.bind (Cbor.vfind_int protected 1L) Cbor.vas_int with
              | Some alg when Int64.equal alg alg_hmac_sha256 -> (
                  match
                    Option.bind (Cbor.vfind_int protected 4L) Cbor.vas_text
                  with
                  | Some kid when Slice.equal_string kid key.key_id ->
                      let buf =
                        Buffer.create
                          (32 + Slice.length protected_bytes
                         + Slice.length payload)
                      in
                      sig_structure_into buf ~protected:protected_bytes
                        ~external_aad ~payload;
                      let expected =
                        Femto_crypto.Crypto.hmac_sha256_with key.mac
                          (Buffer.contents buf)
                      in
                      if
                        Femto_crypto.Crypto.constant_time_equal
                          (Slice.to_string signature)
                          expected
                      then Ok payload
                      else Error Bad_signature
                  | Some kid -> Error (Wrong_key_id (Slice.to_string kid))
                  | None -> Error (Malformed "missing key id"))
              | Some alg -> Error (Unknown_algorithm alg)
              | None -> Error (Malformed "missing algorithm")))
      | _ -> Error (Malformed "expected 4-element COSE_Sign1 array"))

(* [verify key data] checks the envelope and returns the authenticated
   payload (owned). *)
let verify ?external_aad key data =
  Result.map Slice.to_string
    (verify_slice ?external_aad key (Slice.of_string data))
