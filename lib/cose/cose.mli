(** COSE_Sign1 (RFC 8152) envelopes over CBOR.

    SUIT manifests travel inside these.  The signature algorithm is
    HMAC-SHA256 standing in for ed25519 (see DESIGN.md); the envelope
    layout, protected-header discipline and Sig_structure are as
    specified. *)

module Cbor = Femto_cbor.Cbor

val alg_hmac_sha256 : int64
(** Algorithm identifier carried in the protected header. *)

type key = private {
  key_id : string;
  secret : string;
  mac : Femto_crypto.Crypto.hmac_key;
      (** precomputed HMAC pad midstates — built by [make_key] *)
}

val make_key : key_id:string -> secret:string -> key

type envelope = {
  protected : Cbor.t;  (** decoded protected header map *)
  unprotected : (Cbor.t * Cbor.t) list;
  payload : string;
  signature : string;
}

val sign : ?external_aad:string -> key -> string -> string
(** [sign key payload] produces the serialized COSE_Sign1 envelope. *)

type error =
  | Malformed of string
  | Unknown_algorithm of int64
  | Wrong_key_id of string
  | Bad_signature

val error_to_string : error -> string

val parse : string -> (envelope, error) result
(** Structural parse without signature verification. *)

val verify_slice :
  ?external_aad:string ->
  key ->
  Femto_cbor.Slice.t ->
  (Femto_cbor.Slice.t, error) result
(** Zero-copy verification: the envelope is decoded through CBOR views,
    the Sig_structure covers the original protected bytes in place, and
    the authenticated payload is returned as a window of the input
    buffer (materialise with [Slice.to_string] if needed). *)

val verify : ?external_aad:string -> key -> string -> (string, error) result
(** [verify key data] checks the envelope and returns the authenticated
    payload. *)
