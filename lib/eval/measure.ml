(* Measurement utilities for the experiment harness.

   Host wall-clock timings (warmup + repetitions + median) and RAM
   measurement via [Obj.reachable_words].  All "measured" columns in
   EXPERIMENTS.md come from here; modelled columns come from
   [Footprint]. *)

(* Monotonic-enough clock for microbenchmarks on the host. *)
let now_ns () = Int64.to_float (Int64.of_float (Unix.gettimeofday () *. 1e9))

(* [time_ns f] returns the median wall-clock nanoseconds of one call.
   Fast operations are automatically batched so the per-sample duration
   stays well above the clock's resolution. *)
let time_ns ?(warmup = 3) ?(repetitions = 15) f =
  for _ = 1 to warmup do
    ignore (Sys.opaque_identity (f ()))
  done;
  (* rough single-shot estimate to size the batch *)
  let rough =
    let start = now_ns () in
    ignore (Sys.opaque_identity (f ()));
    Float.max 20.0 (now_ns () -. start)
  in
  let batch = max 1 (int_of_float (200_000.0 /. rough)) in
  let samples =
    List.init repetitions (fun _ ->
        let start = now_ns () in
        for _ = 1 to batch do
          ignore (Sys.opaque_identity (f ()))
        done;
        (now_ns () -. start) /. float_of_int batch)
  in
  let sorted = List.sort compare samples in
  List.nth sorted (repetitions / 2)

(* For very fast operations: amortize over a batch, return ns/op. *)
let time_ns_batched ?(batch = 1000) ?(warmup = 2) ?(repetitions = 9) f =
  let run_batch () =
    for _ = 1 to batch do
      ignore (Sys.opaque_identity (f ()))
    done
  in
  time_ns ~warmup ~repetitions run_batch /. float_of_int batch

(* Wall-clock ns/run, best of [trials] batches: the cheap per-push
   counterpart of a statistical fit, shared by every bench smoke (the
   dispatch, update and corpus gates all divide two of these, so only the
   batching — not the estimator — needs to match). *)
let wall_ns ?(warmup = 2) ?(iters = 5) ?(trials = 3) f =
  for _ = 1 to warmup do
    f ()
  done;
  let best = ref infinity in
  for _ = 1 to trials do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best *. 1e9 /. float_of_int iters

let us_of_ns ns = ns /. 1000.0
let ms_of_ns ns = ns /. 1_000_000.0

(* Deep heap footprint of a value, in bytes. *)
let reachable_bytes value = Obj.reachable_words (Obj.repr value) * (Sys.word_size / 8)

let median values =
  let sorted = List.sort compare values in
  List.nth sorted (List.length sorted / 2)
