(* One entry point per table and figure of the paper's evaluation.
   `dune exec bench/main.exe` runs them all; EXPERIMENTS.md records
   paper-vs-measured.  Columns are labelled (measured) for host
   measurements and (model) for the calibrated ROM/cycle models — see
   Footprint and Platform for the model documentation. *)

module Platform = Femto_platform.Platform
module Engine = Femto_core.Engine
module Container = Femto_core.Container
module Fletcher = Femto_workloads.Fletcher
module Apps = Femto_workloads.Apps
module Wsamples = Femto_wasm_mini.Samples
module Winterp = Femto_wasm_mini.Interp
module Wbinary = Femto_wasm_mini.Binary
module Eval_tree = Femto_script.Eval_tree
module Stack_vm = Femto_script.Stack_vm
module Ssamples = Femto_script.Samples
module Value = Femto_script.Value

let data = Fletcher.input_360

(* --- the four VM runtimes of §6, uniformly packaged --- *)

type vm_runtime = {
  row : string;
  code_size_bytes : int;
  cold_start : unit -> unit; (* parse/decode/verify/instantiate *)
  run : unit -> int64; (* one fletcher32 execution *)
  live_instance : unit -> Obj.t; (* for RAM measurement *)
}

let ebpf_runtime () =
  let program = Fletcher.ebpf_program () in
  let helpers = Femto_vm.Helper.create () in
  let regions () = Fletcher.regions ~ctx_vaddr:0x2000_0000L data in
  let load () =
    match Femto_vm.Vm.load ~helpers ~regions:(regions ()) program with
    | Ok vm -> vm
    | Error fault -> failwith (Femto_vm.Fault.to_string fault)
  in
  let vm = load () in
  {
    row = "rBPF (femto_vm)";
    code_size_bytes = Femto_ebpf.Program.byte_size program;
    cold_start = (fun () -> ignore (load ()));
    run =
      (fun () ->
        match Femto_vm.Vm.run vm ~args:[| 0x2000_0000L |] with
        | Ok v -> v
        | Error fault -> failwith (Femto_vm.Fault.to_string fault));
    live_instance = (fun () -> Obj.repr vm);
  }

let wasm_runtime () =
  (* the WASM3-style pipeline: decode + validate + transpile to threaded
     code (the expensive cold start) then run the fused interpreter *)
  let binary = Wsamples.fletcher32_binary () in
  let load () =
    let m = Wbinary.decode binary in
    (match Femto_wasm_mini.Validate.validate m with
    | Ok () -> ()
    | Error e -> failwith e.Femto_wasm_mini.Validate.message);
    (match Femto_wasm_mini.Typecheck.check m with
    | Ok () -> ()
    | Error e -> failwith e.Femto_wasm_mini.Typecheck.message);
    Femto_wasm_mini.Fast.of_module m
  in
  let instance = load () in
  {
    row = "WASM (wasm_mini)";
    code_size_bytes = String.length binary;
    cold_start = (fun () -> ignore (load ()));
    run =
      (fun () ->
        match Femto_wasm_mini.Fast.run_fletcher32 instance data with
        | Ok v -> v
        | Error trap -> failwith (Winterp.trap_to_string trap));
    live_instance = (fun () -> Obj.repr instance);
  }

let jsish_runtime () =
  let source = Ssamples.fletcher32_source in
  let t = Eval_tree.load source in
  let args = Ssamples.fletcher32_args data in
  {
    row = "RIOT.js-class (script/tree)";
    code_size_bytes = String.length source;
    cold_start = (fun () -> ignore (Eval_tree.load source));
    run =
      (fun () ->
        match Eval_tree.call t "fletcher32" args with
        | Ok (Value.Int v) -> v
        | Ok _ -> failwith "non-int result"
        | Error m -> failwith m);
    live_instance = (fun () -> Obj.repr (t, args));
  }

let pyish_runtime () =
  let source = Ssamples.fletcher32_source in
  let t = Stack_vm.load source in
  let args = Ssamples.fletcher32_args data in
  {
    row = "MicroPython-class (script/bytecode)";
    code_size_bytes = String.length source;
    cold_start = (fun () -> ignore (Stack_vm.load source));
    run =
      (fun () ->
        match Stack_vm.call t "fletcher32" args with
        | Ok (Value.Int v) -> v
        | Ok _ -> failwith "non-int result"
        | Error m -> failwith m);
    live_instance = (fun () -> Obj.repr (t, args));
  }

let all_vm_runtimes () =
  [ wasm_runtime (); ebpf_runtime (); jsish_runtime (); pyish_runtime () ]

(* --- Table 1: memory requirements of the runtimes --- *)

let table1 () =
  let rom = function
    | "WASM (wasm_mini)" -> Footprint.wasm_rom
    | "rBPF (femto_vm)" -> Footprint.rbpf_rom
    | "RIOT.js-class (script/tree)" -> Footprint.riotjs_rom
    | "MicroPython-class (script/bytecode)" -> Footprint.micropython_rom
    | _ -> assert false
  in
  let rows =
    List.map
      (fun runtime ->
        ignore (runtime.run ());
        [
          runtime.row;
          Report.kib (rom runtime.row).Footprint.total;
          Report.kib (Footprint.instance_ram_bytes (runtime.live_instance ()));
        ])
      (all_vm_runtimes ())
    @ [
        [ "Host OS (without VM)";
          Report.kib Footprint.host_os_rom.Footprint.total;
          Report.kib Footprint.host_os_ram_bytes ];
      ]
  in
  Report.table ~title:"Table 1: Memory requirements for runtimes"
    ~header:[ "Runtime"; "ROM size (model)"; "RAM size (measured, host)" ]
    ~note:
      "ROM: calibrated structural model (see lib/eval/footprint.ml); RAM: \
       deep heap size of the live instance on the host."
    rows

(* --- Table 2: fletcher32 size/cold-start/run-time per runtime --- *)

let table2 () =
  let expected = Int64.of_int (Fletcher.checksum data) in
  let native_ns = Measure.time_ns (fun () -> Fletcher.checksum data) in
  let rows =
    [
      [ "Native OCaml"; "-"; "-"; Report.time_str native_ns; "1.0x" ];
    ]
    @ List.map
        (fun runtime ->
          let result = runtime.run () in
          if not (Int64.equal result expected) then
            failwith (runtime.row ^ ": wrong checksum");
          let cold_ns = Measure.time_ns runtime.cold_start in
          let run_ns = Measure.time_ns runtime.run in
          [
            runtime.row;
            Report.bytes_str runtime.code_size_bytes;
            Report.time_str cold_ns;
            Report.time_str run_ns;
            Printf.sprintf "%.0fx" (run_ns /. native_ns);
          ])
        (all_vm_runtimes ())
  in
  Report.table
    ~title:"Table 2: fletcher32 (360 B) hosted in each runtime (measured, host)"
    ~header:[ "Runtime"; "code size"; "cold start"; "run time"; "slowdown" ]
    ~note:"All columns measured on the host; shapes compare with paper Table 2."
    rows

(* --- Figure 2: flash distribution with different runtimes --- *)

let figure2 () =
  let os = Footprint.host_os_rom.Footprint.total in
  let entries =
    [
      ("RIOT alone", 0);
      ("RIOT + rBPF", Footprint.rbpf_rom.Footprint.total);
      ("RIOT + WASM", Footprint.wasm_rom.Footprint.total);
      ("RIOT + MicroPython-class", Footprint.micropython_rom.Footprint.total);
      ("RIOT + RIOT.js-class", Footprint.riotjs_rom.Footprint.total);
    ]
  in
  Report.table ~title:"Figure 2: Flash memory distribution (model)"
    ~header:[ "Configuration"; "OS"; "VM runtime"; "total"; "VM overhead" ]
    ~note:"RIOT configured with 6LoWPAN, CoAP, SUIT OTA (Figure 2 of the paper)."
    (List.map
       (fun (label, vm) ->
         [
           label;
           Report.kib os;
           Report.kib vm;
           Report.kib (os + vm);
           Printf.sprintf "%.0f%%" (100.0 *. float_of_int vm /. float_of_int os);
         ])
       entries)

(* --- Table 3: engine footprint, FC vs rBPF vs CertFC --- *)

let table3 () =
  let engines =
    [
      ("Femto-Containers", Platform.Fc, Footprint.femto_container_rom);
      ("rBPF", Platform.Rbpf, Footprint.rbpf_rom);
      ("CertFC", Platform.Certfc, Footprint.certfc_rom);
    ]
  in
  let rows =
    List.map
      (fun (label, runtime, rom) ->
        let fixture = Setup.make_fixture () in
        let tenant = Engine.add_tenant fixture.Setup.engine "t" in
        let container =
          Container.create ~name:label ~tenant
            ~contract:(Femto_core.Contract.require [])
            ~runtime (Apps.minimal ())
        in
        ignore
          (Setup.fail_attach
             (Engine.attach fixture.Setup.engine ~hook_uuid:Setup.bench_uuid
                container));
        ignore (Engine.trigger fixture.Setup.engine fixture.Setup.bench_hook ());
        let ram =
          match container.Container.instance with
          | Some (Container.Fc_instance vm) -> Femto_vm.Vm.ram_bytes vm
          | Some (Container.Certfc_instance vm) ->
              Femto_certfc.Interp.ram_bytes vm
          | None -> 0
        in
        [ label; Report.bytes_str rom.Footprint.total; Report.bytes_str ram ])
      engines
  in
  Report.table
    ~title:"Table 3: Footprint of a container hosting minimal logic"
    ~header:[ "Engine"; "ROM size (model)"; "RAM size (measured, host)" ]
    ~note:
      "RAM = stack + registers + stats + region table of the live instance. \
       Paper: FC 2992 B / rBPF 3032 B / CertFC 1378 B ROM; 624/620/672 B RAM."
    rows

(* --- Figure 7: flash requirement per implementation and platform --- *)

let figure7 () =
  let rows =
    List.map
      (fun platform ->
        [
          platform.Platform.name;
          Report.bytes_str
            (Footprint.rom_on_platform platform Footprint.femto_container_rom);
          Report.bytes_str (Footprint.rom_on_platform platform Footprint.rbpf_rom);
          Report.bytes_str (Footprint.rom_on_platform platform Footprint.certfc_rom);
        ])
      Platform.all
  in
  Report.table
    ~title:"Figure 7: Flash requirement per implementation and platform (model)"
    ~header:[ "Platform"; "Femto-Containers"; "rBPF"; "CertFC" ] rows

(* --- Figure 8: time per instruction class on Cortex-M4 --- *)

(* Micro-programs exercising one instruction class each; time per
   instruction is measured on the host for the three engines. *)
let instruction_class_programs =
  let repeat n line = String.concat "\n" (List.init n (fun _ -> line)) in
  let n = 512 in
  [
    ("ALU64", repeat n "add r0, 1" ^ "\nexit", n);
    ("ALU32", repeat n "add32 r0, 1" ^ "\nexit", n);
    ("MUL64", repeat n "mul r0, 3" ^ "\nexit", n);
    ("Load", "mov r1, r10\nsub r1, 8\n" ^ repeat n "ldxdw r0, [r1]" ^ "\nexit", n + 2);
    ("Store", "mov r1, r10\nsub r1, 8\n" ^ repeat n "stxdw [r1], r0" ^ "\nexit", n + 2);
    ( "Branch (taken)",
      (* chain of always-taken forward jumps *)
      repeat n "jeq r0, 0, +0" ^ "\nexit",
      n );
    ("Call", repeat 64 "call 1" ^ "\nexit", 64);
  ]

let figure8 () =
  let helpers = Femto_vm.Helper.create () in
  Femto_vm.Helper.register helpers ~id:1 ~cost_cycles:10 ~name:"nop_helper"
    (fun _mem _args -> Ok 0L);
  let time_fc program insns =
    match Femto_vm.Vm.load ~helpers ~regions:[] program with
    | Error fault -> failwith (Femto_vm.Fault.to_string fault)
    | Ok vm ->
        Measure.time_ns ~repetitions:9 (fun () -> ignore (Femto_vm.Vm.run vm))
        /. float_of_int insns
  in
  let time_rbpf program insns =
    (* rBPF compatibility configuration of the same engine *)
    match
      Femto_vm.Vm.load ~config:Femto_vm.Config.rbpf_compat ~helpers ~regions:[]
        program
    with
    | Error fault -> failwith (Femto_vm.Fault.to_string fault)
    | Ok vm ->
        Measure.time_ns ~repetitions:9 (fun () -> ignore (Femto_vm.Vm.run vm))
        /. float_of_int insns
  in
  let time_certfc program insns =
    match Femto_certfc.Certfc.load ~helpers ~regions:[] program with
    | Error fault -> failwith (Femto_vm.Fault.to_string fault)
    | Ok vm ->
        Measure.time_ns ~repetitions:9 (fun () ->
            ignore (Femto_certfc.Certfc.run vm))
        /. float_of_int insns
  in
  let rows =
    List.map
      (fun (label, source, insns) ->
        let program = Femto_ebpf.Asm.assemble source in
        [
          label;
          Printf.sprintf "%.1f ns" (time_fc program insns);
          Printf.sprintf "%.1f ns" (time_rbpf program insns);
          Printf.sprintf "%.1f ns" (time_certfc program insns);
        ])
      instruction_class_programs
  in
  Report.table
    ~title:"Figure 8: Time per instruction class (measured, host ns/insn)"
    ~header:[ "Instruction class"; "Femto-Container"; "rBPF"; "CertFC" ]
    ~note:
      "Paper shape: FC and rBPF nearly identical; CertFC lagging behind."
    rows

(* --- Figure 9: execution duration of the three §8 apps --- *)

let app_cycles fixture (container, trigger) =
  (* run once and read the cycle-model cost of the VM execution plus hook
     dispatch and engine setup *)
  let reports = trigger () in
  List.iter
    (fun report ->
      match report.Engine.result with
      | Ok _ -> ()
      | Error fault ->
          failwith
            (Printf.sprintf "%s: %s"
               (Container.name report.Engine.container)
               (Femto_vm.Fault.to_string fault)))
    reports;
  let platform = Engine.platform fixture.Setup.engine in
  let vm_cycles = Container.last_run_cycles container in
  platform.Platform.empty_hook_cycles
  + Platform.hook_setup_cycles platform container.Container.runtime
  + vm_cycles

let figure9 () =
  let apps =
    [
      ("fletcher32 (360 B)", `Fletcher);
      ("thread counter (Listing 2)", `Counter);
      ("CoAP response formatter", `Coap);
    ]
  in
  List.iter
    (fun (app_label, which) ->
      let rows =
        List.map
          (fun platform ->
            let cells =
              List.map
                (fun runtime ->
                  let fixture = Setup.make_fixture ~platform () in
                  let cycles =
                    match which with
                    | `Fletcher ->
                        app_cycles fixture (Setup.fletcher_container ~runtime fixture)
                    | `Counter ->
                        app_cycles fixture
                          (Setup.thread_counter_container ~runtime fixture)
                    | `Coap ->
                        let container, _builder, trigger =
                          Setup.coap_formatter_container ~runtime fixture
                        in
                        app_cycles fixture (container, trigger)
                  in
                  Report.us (Platform.us_of_cycles platform cycles))
                [ Platform.Fc; Platform.Rbpf; Platform.Certfc ]
            in
            platform.Platform.name :: cells)
          Platform.all
      in
      Report.table
        ~title:
          (Printf.sprintf "Figure 9: %s execution duration (cycle model, 64 MHz)"
             app_label)
        ~header:[ "Platform"; "Femto-Container"; "rBPF"; "CertFC" ]
        rows)
    apps

(* --- Table 4: hook overhead in clock ticks --- *)

let table4 () =
  let rows =
    List.map
      (fun platform ->
        let empty_ticks =
          (* an empty hook: dispatch cost only, measured on the simulated
             kernel clock *)
          let fixture = Setup.make_fixture ~platform () in
          let before = Femto_rtos.Kernel.now fixture.Setup.kernel in
          ignore (Engine.trigger fixture.Setup.engine fixture.Setup.bench_hook ());
          Int64.to_int (Int64.sub (Femto_rtos.Kernel.now fixture.Setup.kernel) before)
        in
        let app_ticks =
          let fixture = Setup.make_fixture ~platform () in
          let _container, trigger = Setup.thread_counter_container fixture in
          let before = Femto_rtos.Kernel.now fixture.Setup.kernel in
          ignore (trigger ());
          Int64.to_int (Int64.sub (Femto_rtos.Kernel.now fixture.Setup.kernel) before)
        in
        [ platform.Platform.name; string_of_int empty_ticks; string_of_int app_ticks ])
      Platform.all
  in
  Report.table
    ~title:"Table 4: Hook overhead in clock ticks (thread switch example)"
    ~header:[ "Platform"; "Empty hook"; "Hook with application" ]
    ~note:"Paper: 109/83/106 empty; 1750/1163/754 with application."
    rows

(* --- §10.3: multiple instances, multiple tenants --- *)

let multi_instance () =
  let fixture = Setup.make_fixture () in
  let engine = fixture.Setup.engine in
  (* tenant 1: OS maintainer with the debug counter; tenant 2: acme with
     sensor-process + CoAP formatter — the paper's 3-container/2-tenant
     deployment *)
  let counter, _ = Setup.thread_counter_container fixture in
  Engine.register_sensor engine ~id:1 (fun () -> Ok 42L);
  let tenant = Engine.add_tenant engine "acme" in
  let sensor =
    Container.create ~name:"sensor-process" ~tenant
      ~contract:
        (Femto_core.Contract.require
           Femto_core.Contract.[ Sensors; Kv_local; Kv_tenant ])
      (Apps.sensor_process ())
  in
  ignore
    (Setup.fail_attach
       (Engine.attach engine ~hook_uuid:Setup.timer_uuid sensor));
  let formatter, _builder, _trigger = Setup.coap_formatter_container fixture in
  let containers = [ counter; sensor; formatter ] in
  let instance_bytes container =
    match container.Container.instance with
    | Some (Container.Fc_instance vm) -> Femto_vm.Vm.ram_bytes vm
    | Some (Container.Certfc_instance vm) -> Femto_certfc.Interp.ram_bytes vm
    | None -> 0
  in
  let rows =
    List.map
      (fun container ->
        [
          Container.name container;
          Femto_core.Tenant.id (Container.tenant container);
          Report.bytes_str (Container.bytecode_size container);
          Report.bytes_str (instance_bytes container);
        ])
      containers
  in
  let total_instances =
    List.fold_left (fun acc c -> acc + instance_bytes c) 0 containers
  in
  let store_bytes =
    Femto_core.Kvstore.ram_bytes (Engine.global_store engine)
    + List.fold_left
        (fun acc t -> acc + Femto_core.Kvstore.ram_bytes (Femto_core.Tenant.store t))
        0 (Engine.tenants engine)
    + List.fold_left
        (fun acc c ->
          acc + Femto_core.Kvstore.ram_bytes (Container.local_store c))
        0 containers
  in
  Report.table
    ~title:"Sec 10.3: three containers, two tenants on one device (measured, host)"
    ~header:[ "Container"; "Tenant"; "Bytecode"; "Instance RAM" ]
    ~note:
      (Printf.sprintf
         "Total instance RAM %s + key-value stores %s = %s (paper: 3.2 KiB \
          incl. 340 B stores). Density on 256 KiB RAM at ~2000 B/app: ~%d \
          instances."
         (Report.kib total_instances) (Report.bytes_str store_bytes)
         (Report.kib (total_instances + store_bytes))
         (256 * 1024 / ((total_instances / 3) + 2000)))
    rows

(* --- ablations: the design choices DESIGN.md calls out --- *)

(* Ablation A — install-time transpilation (§11): one-off cold-start cost
   vs per-execution speed, comparing the interpreter, the transpiled
   engine and CertFC on fletcher32. *)
let ablation_transpile () =
  let program = Fletcher.ebpf_program () in
  let helpers = Femto_vm.Helper.create () in
  let regions () = Fletcher.regions ~ctx_vaddr:0x2000_0000L data in
  let interp_cold () =
    ignore (Femto_vm.Vm.load ~helpers ~regions:(regions ()) program)
  in
  let transpile_cold () =
    ignore (Femto_vm.Transpile.load ~helpers ~regions:(regions ()) program)
  in
  let certfc_cold () =
    ignore (Femto_certfc.Certfc.load ~helpers ~regions:(regions ()) program)
  in
  let interp_vm =
    match Femto_vm.Vm.load ~helpers ~regions:(regions ()) program with
    | Ok vm -> vm
    | Error fault -> failwith (Femto_vm.Fault.to_string fault)
  in
  let transpiled =
    match Femto_vm.Transpile.load ~helpers ~regions:(regions ()) program with
    | Ok t -> t
    | Error fault -> failwith (Femto_vm.Fault.to_string fault)
  in
  let certfc_vm =
    match Femto_certfc.Certfc.load ~helpers ~regions:(regions ()) program with
    | Ok vm -> vm
    | Error fault -> failwith (Femto_vm.Fault.to_string fault)
  in
  let args = [| 0x2000_0000L |] in
  let rows =
    [
      ( "interpreter (pre-decoded)",
        Measure.time_ns interp_cold,
        Measure.time_ns (fun () -> Femto_vm.Vm.run interp_vm ~args) );
      ( "transpiled at install (closure-compiled)",
        Measure.time_ns transpile_cold,
        Measure.time_ns (fun () -> Femto_vm.Transpile.run transpiled ~args) );
      ( "CertFC (defensive, pure)",
        Measure.time_ns certfc_cold,
        Measure.time_ns (fun () -> Femto_certfc.Certfc.run certfc_vm ~args) );
    ]
  in
  Report.table
    ~title:"Ablation A (paper Sec 11): install-time transpilation, fletcher32"
    ~header:[ "Engine"; "install (cold)"; "run" ]
    ~note:"Transpilation trades a costlier install for faster executions."
    (List.map
       (fun (label, cold, run) ->
         [ label; Report.time_str cold; Report.time_str run ])
       rows)

(* Ablation B — allow-list length: the runtime memory check walks the
   region list, so access cost grows with the number of granted regions. *)
let ablation_regions () =
  let loads = 256 in
  let body =
    String.concat "\n" (List.init loads (fun _ -> "ldxdw r0, [r1]")) ^ "\nexit"
  in
  let program = Femto_ebpf.Asm.assemble ("mov r1, 0x5000\n" ^ body) in
  let helpers = Femto_vm.Helper.create () in
  let rows =
    List.map
      (fun extra_count ->
        (* the target region is last: worst case for the walk *)
        let decoys =
          List.init extra_count (fun i ->
              Femto_vm.Region.make
                ~name:(Printf.sprintf "decoy%d" i)
                ~vaddr:(Int64.of_int (0x9000_0000 + (i * 0x1000)))
                ~perm:Femto_vm.Region.Read_only (Bytes.create 16))
        in
        let target =
          Femto_vm.Region.make ~name:"target" ~vaddr:0x5000L
            ~perm:Femto_vm.Region.Read_write (Bytes.create 64)
        in
        let vm =
          match
            Femto_vm.Vm.load ~helpers ~regions:(decoys @ [ target ]) program
          with
          | Ok vm -> vm
          | Error fault -> failwith (Femto_vm.Fault.to_string fault)
        in
        let ns = Measure.time_ns (fun () -> Femto_vm.Vm.run vm) in
        [
          string_of_int (extra_count + 2) (* + stack + target *);
          Printf.sprintf "%.1f ns" (ns /. float_of_int loads);
        ])
      [ 0; 1; 2; 4; 8; 16 ]
  in
  Report.table
    ~title:"Ablation B: allow-list length vs load cost (measured, host)"
    ~header:[ "regions in allow-list"; "per-load time" ]
    ~note:"Linear walk: per-access cost grows with granted regions."
    rows

(* Ablation C — variable-length encoding (§11): image size of every
   workload under the compact encoding. *)
let ablation_compact () =
  let programs =
    [
      ("fletcher32", Fletcher.ebpf_program ());
      ("thread counter", Apps.thread_counter ());
      ("sensor process", Apps.sensor_process ());
      ("CoAP formatter", Apps.coap_formatter ());
      ("minimal", Apps.minimal ());
    ]
  in
  Report.table
    ~title:"Ablation C (paper Sec 11): variable-length instruction encoding"
    ~header:[ "Program"; "fixed (8 B/insn)"; "compact"; "ratio" ]
    ~note:"The paper estimates ~50% of instructions shrink; decompression \
           happens once at install."
    (List.map
       (fun (label, program) ->
         let stats = Femto_ebpf.Compact.measure program in
         [
           label;
           Report.bytes_str stats.Femto_ebpf.Compact.fixed_bytes;
           Report.bytes_str stats.Femto_ebpf.Compact.compact_bytes;
           Printf.sprintf "%.2f" stats.Femto_ebpf.Compact.ratio;
         ])
       programs)

(* Ablation D — pre-flight verification cost vs program length: the cost
   a device pays once per install. *)
let ablation_verifier () =
  let rows =
    List.map
      (fun n ->
        let body =
          List.init n (fun i ->
              Femto_ebpf.Insn.make 0xb7 ~dst:(i mod 6)
                ~imm:(Int32.of_int i))
        in
        let program =
          Femto_ebpf.Program.of_insns (body @ [ Femto_ebpf.Insn.make 0x95 ])
        in
        let ns =
          Measure.time_ns (fun () ->
              Femto_vm.Verifier.verify Femto_vm.Config.default program)
        in
        [ string_of_int (n + 1); Report.time_str ns ])
      [ 16; 64; 256; 1024; 4095 ]
  in
  Report.table
    ~title:"Ablation D: pre-flight verifier cost vs program length (measured)"
    ~header:[ "instructions"; "verify time" ]
    rows

let ablations () =
  ablation_transpile ();
  ablation_regions ();
  ablation_compact ();
  ablation_verifier ()

(* --- §11 discussion: virtualization vs power efficiency --- *)

module Energy = Femto_platform.Energy

let discussion_energy () =
  (* side (a): per-execution CPU energy of the sensor-processing app,
     native vs hosted, and its impact on a 1-sample-per-10 s duty cycle *)
  let app_cycles runtime profile =
    let fixture =
      Setup.make_fixture ~platform:profile.Energy.platform ()
    in
    Engine.register_sensor fixture.Setup.engine ~id:1 (fun () -> Ok 42L);
    let tenant = Engine.add_tenant fixture.Setup.engine "acme" in
    let container =
      Container.create ~name:"sensor" ~tenant
        ~contract:
          (Femto_core.Contract.require
             Femto_core.Contract.[ Sensors; Kv_local; Kv_tenant ])
        ~runtime (Apps.sensor_process ())
    in
    ignore
      (Setup.fail_attach
         (Engine.attach fixture.Setup.engine ~hook_uuid:Setup.timer_uuid
            container));
    let before = Femto_rtos.Kernel.now fixture.Setup.kernel in
    (match Engine.trigger_by_uuid fixture.Setup.engine ~uuid:Setup.timer_uuid () with
    | Ok [ { Engine.result = Ok _; _ } ] -> ()
    | Ok _ | Error _ -> failwith "sensor app failed");
    Int64.to_int (Int64.sub (Femto_rtos.Kernel.now fixture.Setup.kernel) before)
  in
  (* native execution of the same logic: the helper costs without any
     interpreted instructions — the floor the paper compares against *)
  let native_cycles = 500 + 80 + 80 + 80 + 200 in
  let period_s = 10.0 in
  let rows =
    List.map
      (fun profile ->
        let fc = app_cycles Platform.Fc profile in
        let cert = app_cycles Platform.Certfc profile in
        [
          profile.Energy.platform.Platform.name;
          Printf.sprintf "%.2f uJ" (Energy.cpu_energy_uj profile ~cycles:native_cycles);
          Printf.sprintf "%.2f uJ" (Energy.cpu_energy_uj profile ~cycles:fc);
          Printf.sprintf "%.2f uJ" (Energy.cpu_energy_uj profile ~cycles:cert);
          Printf.sprintf "%.0f d"
            (Energy.battery_days profile ~active_cycles:native_cycles ~period_s
               ~capacity_mah:1000.0);
          Printf.sprintf "%.0f d"
            (Energy.battery_days profile ~active_cycles:fc ~period_s
               ~capacity_mah:1000.0);
        ])
      Energy.all
  in
  Report.table
    ~title:
      "Discussion (Sec 11a): per-sample energy, native vs hosted (model); \
       CR2477 battery life at 1 sample / 10 s"
    ~header:
      [ "Platform"; "native"; "Femto-Container"; "CertFC"; "battery native";
        "battery FC" ]
    ~note:
      "Virtualization overhead is real per execution but negligible against \
       the duty-cycled battery budget — the paper's argument (a)."
    rows;
  (* side (b): radio energy of an update — full firmware vs one container *)
  let firmware_bytes = Footprint.host_os_rom.Footprint.total in
  let container_bytes =
    Femto_ebpf.Program.byte_size (Apps.sensor_process ()) + 160
    (* + SUIT manifest & COSE envelope *)
  in
  let rows =
    List.map
      (fun profile ->
        let full = Energy.radio_energy_uj profile ~bytes:firmware_bytes in
        let update = Energy.radio_energy_uj profile ~bytes:container_bytes in
        [
          profile.Energy.platform.Platform.name;
          Printf.sprintf "%.0f uJ" full;
          Printf.sprintf "%.1f uJ" update;
          Printf.sprintf "%.0fx" (full /. update);
        ])
      Energy.all
  in
  Report.table
    ~title:
      "Discussion (Sec 11b): radio energy per update - full firmware vs one \
       Femto-Container (model)"
    ~header:[ "Platform"; "full firmware OTA"; "container OTA"; "saving" ]
    ~note:
      (Printf.sprintf
         "Full image %d B vs container update %d B incl. manifest: the \
          paper's argument (b), updates via containers cost orders of \
          magnitude less radio energy."
         firmware_bytes container_bytes)
    rows

(* --- run everything --- *)

let run_all () =
  table1 ();
  table2 ();
  figure2 ();
  table3 ();
  figure7 ();
  figure8 ();
  figure9 ();
  table4 ();
  multi_instance ();
  ablations ();
  discussion_energy ()
