(* CertFC pre-flight checker.

   The verified artefact in the paper covers both the instruction checker
   and the interpreter.  This module is the checker half: a pure recursive
   sweep over the program, written in the proof-model style (explicit
   result monad, no mutation, no exceptions).  It establishes the same
   invariants as [Femto_vm.Verifier] — the two are compared against each
   other by property tests. *)

open Femto_ebpf
module Fault = Femto_vm.Fault
module Config = Femto_vm.Config

let ( let* ) = Result.bind

type analysis = { branch_count : int; lddw_tails : bool list }

(* Pure first sweep: compute the list of lddw-tail flags. *)
let rec tails_from program pc len acc =
  if pc >= len then Ok (List.rev acc)
  else
    let insn = Program.get program pc in
    match Insn.kind insn with
    | Insn.Lddw_head ->
        if pc + 1 >= len then Error (Fault.Truncated_lddw { pc })
        else
          let tail = Program.get program (pc + 1) in
          if
            tail.Insn.opcode <> 0 || tail.Insn.dst <> 0 || tail.Insn.src <> 0
            || tail.Insn.offset <> 0
          then Error (Fault.Malformed_lddw_tail { pc = pc + 1 })
          else tails_from program (pc + 2) len (true :: false :: acc)
    | _ -> tails_from program (pc + 1) len (false :: acc)

let is_tail tails target = List.nth_opt tails target = Some true

let check_one program tails len pc (insn : Insn.t) =
  let kind = Insn.kind insn in
  let* () =
    match kind with
    | Insn.Invalid opcode -> Error (Fault.Invalid_opcode { pc; opcode })
    | _ -> Ok ()
  in
  let* () =
    if insn.dst > 10 then Error (Fault.Invalid_register { pc; reg = insn.dst })
    else if insn.src > 10 then Error (Fault.Invalid_register { pc; reg = insn.src })
    else Ok ()
  in
  let* () =
    if insn.dst = 10 && Femto_vm.Verifier.writes_dst kind then
      Error (Fault.Readonly_register { pc })
    else Ok ()
  in
  let* () = Femto_vm.Verifier.check_reserved pc insn kind in
  match kind with
  | Insn.Ja | Insn.Jcond _ ->
      let target = pc + 1 + insn.offset in
      if target < 0 || target >= len then Error (Fault.Bad_jump { pc; target })
      else if is_tail tails target then
        Error (Fault.Jump_to_lddw_tail { pc; target })
      else if (Program.get program target).Insn.opcode = 0 then
        (* orphan tail-shaped slot: same guard as Femto_vm.Verifier *)
        Error (Fault.Jump_to_lddw_tail { pc; target })
      else Ok `Branch
  | _ -> Ok `Straight

let rec check_from program tails len pc branches =
  if pc >= len then Ok branches
  else if is_tail tails pc then check_from program tails len (pc + 1) branches
  else
    let* outcome = check_one program tails len pc (Program.get program pc) in
    let branches = match outcome with `Branch -> branches + 1 | `Straight -> branches in
    check_from program tails len (pc + 1) branches

let check (config : Config.t) program =
  let len = Program.length program in
  if len = 0 then Error Fault.Empty_program
  else if len > config.max_insns then
    Error (Fault.Program_too_long { len; max = config.max_insns })
  else
    let* tails = tails_from program 0 len [] in
    let* branch_count = check_from program tails len 0 0 in
    let last = len - 1 in
    let last_exec = if is_tail tails last then last - 1 else last in
    let* () =
      match Insn.kind (Program.get program last_exec) with
      | Insn.Exit | Insn.Ja -> Ok ()
      | _ -> Error (Fault.Bad_end_instruction { pc = last_exec })
    in
    Ok { branch_count; lddw_tails = tails }
