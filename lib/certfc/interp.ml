(* CertFC interpreter: a purely functional, defensive step machine.

   This mirrors the structure of the Coq proof model the paper verified:
   machine states are immutable values, [step] is a total function from a
   state to either the next state, a final value, or a fault, and every
   precondition is re-checked dynamically rather than trusted from the
   verifier (the "defensive runtime checks" of Figure 6 step 2-iii).  The
   extra checks and functional updates are what make CertFC measurably
   slower than the optimized interpreter — the trade-off the paper's
   Figure 8 quantifies. *)

open Femto_ebpf
module Fault = Femto_vm.Fault
module Config = Femto_vm.Config
module Mem = Femto_vm.Mem
module Region = Femto_vm.Region
module Helper = Femto_vm.Helper
module Obs = Femto_obs.Obs
module Ometrics = Femto_obs.Metrics
module Otrace = Femto_obs.Trace

(* CertFC feeds the same process-wide vm.* metrics as the optimized
   interpreter, so `fc metrics --engine certfc` reports comparably. *)
let m_runs = Obs.counter "vm.runs"
let m_faults = Obs.counter "vm.faults"
let m_insns = Obs.counter "vm.insns"
let m_branches = Obs.counter "vm.branches"
let m_helper_calls = Obs.counter "vm.helper_calls"
let m_cycles = Obs.counter "vm.cycles"
let m_run_ns = Obs.histogram "vm.run_ns"

let ( let* ) = Result.bind

type state = {
  pc : int;
  regs : Regs.t;
  insns_executed : int;
  branches_taken : int;
  helper_calls : int;
  cycles : int;
}

type outcome = Next of state | Done of int64

type t = {
  program : Program.t;
  config : Config.t;
  mem : Mem.t;
  stack_data : bytes;
  helpers : Helper.t;
  cycle_cost : Insn.kind -> int;
  mutable last_stats : state option;
}

let no_cost (_ : Insn.kind) = 0

let create ?(config = Config.default) ?(cycle_cost = no_cost) ~helpers ~regions
    program =
  let stack_data = Bytes.make config.Config.stack_size '\000' in
  let stack =
    Region.make ~name:"stack" ~vaddr:config.Config.stack_vaddr
      ~perm:Region.Read_write stack_data
  in
  {
    program;
    config;
    mem = Mem.create (stack :: regions);
    stack_data;
    helpers;
    cycle_cost;
    last_stats = None;
  }

let mem t = t.mem
let last_state t = t.last_stats

(* Per-instance RAM accounting, mirroring [Femto_vm.Interp.ram_bytes].
   CertFC keeps the full machine state (register record + counters) in its
   context struct rather than on the thread stack, which is the ~50 B
   per-instance overhead the paper reports for CertFC. *)
let ram_bytes t =
  let word = Sys.word_size / 8 in
  let stack = Bytes.length t.stack_data in
  let regs = 11 * 8 in
  let retained_state = 7 * word in
  let region_table =
    List.fold_left
      (fun acc (_ : Region.t) -> acc + (6 * word))
      (2 * word) (Mem.regions t.mem)
  in
  stack + regs + retained_state + regs + region_table

let reg_get pc regs r =
  match Regs.get regs r with
  | Ok v -> Ok v
  | Error reg -> Error (Fault.Invalid_register { pc; reg })

let reg_set pc regs r v =
  match Regs.set regs r v with
  | Ok regs -> Ok regs
  | Error 10 -> Error (Fault.Readonly_register { pc })
  | Error reg -> Error (Fault.Invalid_register { pc; reg })

let eval_alu pc is64 op (dst : int64) (src : int64) =
  if is64 then Femto_vm.Interp.alu64 pc op dst src
  else Femto_vm.Interp.alu32 pc op dst src
  [@@inline]

(* One defensive small-step.  All structural properties (opcode validity,
   register ranges, jump bounds) are re-established here, from scratch, on
   every instruction. *)
let step t state =
  let len = Program.length t.program in
  if state.pc < 0 || state.pc >= len then
    Error (Fault.Fall_off_end { pc = state.pc })
  else
    let insn = Program.get t.program state.pc in
    let pc = state.pc in
    let state =
      {
        state with
        insns_executed = state.insns_executed + 1;
        cycles = state.cycles + t.cycle_cost (Insn.kind insn);
      }
    in
    if state.insns_executed > Config.dynamic_instruction_limit t.config then
      Error (Fault.Instruction_budget_exhausted { executed = state.insns_executed })
    else
      let continue regs = Ok (Next { state with pc = pc + 1; regs }) in
      let branch_to target =
        let taken = state.branches_taken + 1 in
        if taken > t.config.Config.max_branches then
          Error (Fault.Branch_budget_exhausted { taken })
        else if target < 0 || target >= len then
          Error (Fault.Bad_jump { pc; target })
        else Ok (Next { state with pc = target; branches_taken = taken })
      in
      let sext_imm = Int64.of_int32 insn.Insn.imm in
      match Insn.kind insn with
      | Insn.Alu (is64, op, source) ->
          let* src_value =
            match source with
            | Opcode.Src_imm -> Ok sext_imm
            | Opcode.Src_reg -> reg_get pc state.regs insn.Insn.src
          in
          let* dst_value = reg_get pc state.regs insn.Insn.dst in
          let* result = eval_alu pc is64 op dst_value src_value in
          let* regs = reg_set pc state.regs insn.Insn.dst result in
          continue regs
      | Insn.Load size ->
          let* base = reg_get pc state.regs insn.Insn.src in
          let addr = Int64.add base (Int64.of_int insn.Insn.offset) in
          let nbytes = Opcode.size_bytes size in
          let* value =
            match Mem.load t.mem ~addr ~size:nbytes with
            | Ok v -> Ok v
            | Error () ->
                Error (Fault.Memory_access { pc; addr; size = nbytes; write = false })
          in
          let* regs = reg_set pc state.regs insn.Insn.dst value in
          continue regs
      | Insn.Store_imm size ->
          let* base = reg_get pc state.regs insn.Insn.dst in
          let addr = Int64.add base (Int64.of_int insn.Insn.offset) in
          let nbytes = Opcode.size_bytes size in
          let* () =
            match Mem.store t.mem ~addr ~size:nbytes sext_imm with
            | Ok () -> Ok ()
            | Error () ->
                Error (Fault.Memory_access { pc; addr; size = nbytes; write = true })
          in
          continue state.regs
      | Insn.Store_reg size ->
          let* base = reg_get pc state.regs insn.Insn.dst in
          let* value = reg_get pc state.regs insn.Insn.src in
          let addr = Int64.add base (Int64.of_int insn.Insn.offset) in
          let nbytes = Opcode.size_bytes size in
          let* () =
            match Mem.store t.mem ~addr ~size:nbytes value with
            | Ok () -> Ok ()
            | Error () ->
                Error (Fault.Memory_access { pc; addr; size = nbytes; write = true })
          in
          continue state.regs
      | Insn.Lddw_head ->
          if pc + 1 >= len then Error (Fault.Truncated_lddw { pc })
          else
            let tail = Program.get t.program (pc + 1) in
            let* regs =
              reg_set pc state.regs insn.Insn.dst (Insn.lddw_imm ~head:insn ~tail)
            in
            Ok (Next { state with pc = pc + 2; regs })
      | Insn.Lddw_tail -> Error (Fault.Invalid_opcode { pc; opcode = 0 })
      | Insn.End endianness ->
          let* value = reg_get pc state.regs insn.Insn.dst in
          let* swapped =
            Femto_vm.Interp.byte_swap pc endianness insn.Insn.imm value
          in
          let* regs = reg_set pc state.regs insn.Insn.dst swapped in
          continue regs
      | Insn.Ja -> branch_to (pc + 1 + insn.Insn.offset)
      | Insn.Jcond (is64, cond, source) ->
          let* src_value =
            match source with
            | Opcode.Src_imm -> Ok sext_imm
            | Opcode.Src_reg -> reg_get pc state.regs insn.Insn.src
          in
          let* dst_value = reg_get pc state.regs insn.Insn.dst in
          if Femto_vm.Interp.condition cond is64 dst_value src_value then
            branch_to (pc + 1 + insn.Insn.offset)
          else Ok (Next { state with pc = pc + 1 })
      | Insn.Call -> (
          let id = Int32.to_int insn.Insn.imm in
          match Helper.find t.helpers id with
          | None -> Error (Fault.Unknown_helper { pc; id })
          | Some entry -> (
              let args =
                {
                  Helper.a1 = state.regs.Regs.r1;
                  a2 = state.regs.Regs.r2;
                  a3 = state.regs.Regs.r3;
                  a4 = state.regs.Regs.r4;
                  a5 = state.regs.Regs.r5;
                }
              in
              match entry.Helper.fn t.mem args with
              | Ok r0 ->
                  Ok
                    (Next
                       {
                         state with
                         pc = pc + 1;
                         regs = { state.regs with Regs.r0 };
                         helper_calls = state.helper_calls + 1;
                         cycles = state.cycles + entry.Helper.cost_cycles;
                       })
              | Error message -> Error (Fault.Helper_error { pc; id; message })))
      | Insn.Exit -> Ok (Done state.regs.Regs.r0)
      | Insn.Invalid opcode -> Error (Fault.Invalid_opcode { pc; opcode })

let initial_state t ~args =
  let r10 =
    Int64.add t.config.Config.stack_vaddr
      (Int64.of_int t.config.Config.stack_size)
  in
  {
    pc = 0;
    regs = Regs.with_args (Regs.init ~r10) args;
    insns_executed = 0;
    branches_taken = 0;
    helper_calls = 0;
    cycles = 0;
  }

let run ?(args = [||]) t =
  let t0 = if Obs.enabled () then Obs.now_ns () else 0.0 in
  Bytes.fill t.stack_data 0 (Bytes.length t.stack_data) '\000';
  let rec loop state =
    match step t state with
    | Ok (Next state') -> loop state'
    | Ok (Done r0) ->
        t.last_stats <- Some state;
        Ok r0
    | Error fault ->
        t.last_stats <- Some state;
        Error fault
  in
  let outcome = loop (initial_state t ~args) in
  (if Obs.enabled () then
     match t.last_stats with
     | None -> ()
     | Some s ->
         Ometrics.incr m_runs;
         Ometrics.add m_insns s.insns_executed;
         Ometrics.add m_branches s.branches_taken;
         Ometrics.add m_helper_calls s.helper_calls;
         Ometrics.add m_cycles s.cycles;
         Ometrics.observe m_run_ns (Obs.now_ns () -. t0);
         (match outcome with
         | Ok _ -> ()
         | Error f ->
             Ometrics.incr m_faults;
             Obs.event (fun () ->
                 Otrace.Fault
                   { kind = Fault.kind f; detail = Fault.to_string f }));
         Obs.event (fun () ->
             Otrace.Vm_run
               {
                 insns = s.insns_executed;
                 branches = s.branches_taken;
                 helpers = s.helper_calls;
                 cycles = s.cycles;
                 ok = Result.is_ok outcome;
               }));
  outcome
