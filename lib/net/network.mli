(** Simulated low-power wireless network.

    Stands in for the paper's IEEE 802.15.4 radio + 6LoWPAN stack:
    datagrams are fragmented into 127-byte frames, each frame
    independently suffers deterministic pseudo-random loss and a
    propagation delay, and receivers reassemble.  Delivery is driven by
    the RTOS simulator's timer queue, so networking and computation share
    one virtual clock. *)

type node = {
  addr : int;
  reassembler : Frag.reassembler;
  mutable on_datagram : src:int -> bytes -> unit;
}

type stats = {
  mutable frames_sent : int;
  mutable frames_dropped : int;
  mutable frames_duplicated : int;
  mutable frames_reordered : int;
  mutable datagrams_sent : int;
  mutable datagrams_delivered : int;
  mutable datagrams_gatewayed : int;
}

type t

val create :
  kernel:Femto_rtos.Kernel.t ->
  ?profile:Profile.t ->
  ?loss_permille:int ->
  ?latency_us:int ->
  ?seed:int ->
  unit ->
  t
(** [profile] selects the full fault-injection model (default
    {!Profile.clean}); the legacy [loss_permille] / [latency_us] knobs
    override the matching profile fields.  [seed] makes the whole fault
    schedule reproducible. *)

val stats : t -> stats
val profile : t -> Profile.t
val kernel : t -> Femto_rtos.Kernel.t

val add_node : t -> addr:int -> node
(** Raises [Invalid_argument] when the address is taken. *)

val set_receiver : node -> (src:int -> bytes -> unit) -> unit
(** Handler for complete (reassembled) datagrams. *)

val remove_node : t -> addr:int -> unit
(** Power-off/reboot: the node leaves the network so a fresh boot can
    re-register the address. *)

val send : t -> src:int -> dst:int -> bytes -> unit
(** Fragment and schedule delivery on the virtual clock; frames may be
    lost per the configured probability.  Datagrams addressed to a node
    not on this network go to the gateway (whole, unfragmented) when one
    is set, and are silently radiated into the void otherwise. *)

val set_gateway : t -> (src:int -> dst:int -> bytes -> unit) -> unit
(** Border router for off-link destinations: [send] hands the gateway the
    whole datagram — one hand-off instead of per-frame radio events, so a
    fleet can batch cross-shard traffic at epoch barriers.  The off-link
    hop's loss/latency model is the gateway's business. *)
