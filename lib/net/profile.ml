(* Fault-injection profiles for the simulated radio.

   A profile bundles the per-frame misbehaviours a hostile or degraded
   network inflicts on traffic: independent loss, duplication (the frame
   is delivered twice), reordering (a frame is held back long enough to
   land after its successors), and a latency distribution (base delay
   plus uniform jitter).  All draws come from the owning network's
   seeded RNG, so a (profile, seed) pair replays the exact same
   schedule — which is what lets the hostile-matrix property tests and
   the edge bench name their scenarios. *)

type t = {
  p_name : string;
  p_loss_permille : int; (* per-frame loss probability, 0..1000 *)
  p_dup_permille : int; (* per-frame duplicate-delivery probability *)
  p_reorder_permille : int; (* per-frame hold-back probability *)
  p_latency_us : int; (* base per-frame propagation + MAC delay *)
  p_jitter_us : int; (* uniform extra delay in [0, jitter] per frame *)
}

let make ?(loss_permille = 0) ?(dup_permille = 0) ?(reorder_permille = 0)
    ?(latency_us = 300) ?(jitter_us = 0) name =
  {
    p_name = name;
    p_loss_permille = loss_permille;
    p_dup_permille = dup_permille;
    p_reorder_permille = reorder_permille;
    p_latency_us = latency_us;
    p_jitter_us = jitter_us;
  }

let clean = make "clean"
let lossy = make ~loss_permille:100 "lossy"

(* retransmit storm: heavy loss forces retransmissions, and duplication
   multiplies them *)
let storm =
  make ~loss_permille:250 ~dup_permille:200 ~jitter_us:500 "storm"

let duplicator = make ~dup_permille:400 "duplicator"

(* large jitter + explicit hold-backs: frames of one datagram routinely
   overtake each other, and whole small datagrams arrive out of order *)
let jittery =
  make ~reorder_permille:300 ~jitter_us:5_000 "jittery"

let hostile =
  make ~loss_permille:150 ~dup_permille:150 ~reorder_permille:200
    ~jitter_us:2_000 "hostile"

let named = [ clean; lossy; storm; duplicator; jittery; hostile ]

let of_name name =
  List.find_opt (fun p -> String.equal p.p_name name) named

let names = List.map (fun p -> p.p_name) named
