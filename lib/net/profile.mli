(** Fault-injection profiles for the simulated radio.

    A profile bundles per-frame loss, duplication, reordering and a
    latency distribution (base + uniform jitter).  All randomness comes
    from the owning network's seeded RNG, so a (profile, seed) pair
    replays the exact same fault schedule. *)

type t = {
  p_name : string;
  p_loss_permille : int;  (** per-frame loss probability, 0..1000 *)
  p_dup_permille : int;  (** per-frame duplicate-delivery probability *)
  p_reorder_permille : int;  (** per-frame hold-back probability *)
  p_latency_us : int;  (** base per-frame propagation + MAC delay *)
  p_jitter_us : int;  (** uniform extra delay in [0, jitter] per frame *)
}

val make :
  ?loss_permille:int ->
  ?dup_permille:int ->
  ?reorder_permille:int ->
  ?latency_us:int ->
  ?jitter_us:int ->
  string ->
  t

(** {2 The named scenario matrix} *)

val clean : t
val lossy : t

val storm : t
(** Retransmit storm: 25% frame loss + 20% duplication + jitter. *)

val duplicator : t
(** 40% of frames delivered twice. *)

val jittery : t
(** Hold-backs + up to 5 ms jitter: heavy reordering. *)

val hostile : t
(** Everything at once. *)

val named : t list
val names : string list
val of_name : string -> t option
