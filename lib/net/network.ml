(* Simulated low-power wireless network.

   Stands in for the paper's IEEE 802.15.4 radio + 6LoWPAN stack (see
   DESIGN.md): datagrams are fragmented into 127-byte frames, each frame
   independently suffers deterministic pseudo-random loss and a propagation
   delay, and receivers reassemble.  Delivery is driven by the RTOS
   simulator's timer queue, so networking and computation share one
   virtual clock. *)

module Kernel = Femto_rtos.Kernel
module Obs = Femto_obs.Obs
module Ometrics = Femto_obs.Metrics

(* Radio-level metrics across all simulated networks. *)
let m_datagrams_sent = Obs.counter "net.datagrams_sent"
let m_datagrams_delivered = Obs.counter "net.datagrams_delivered"
let m_frames_sent = Obs.counter "net.frames_sent"
let m_frames_dropped = Obs.counter "net.frames_dropped"
let m_datagrams_gatewayed = Obs.counter "net.datagrams_gatewayed"

type node = {
  addr : int;
  reassembler : Frag.reassembler;
  mutable on_datagram : src:int -> bytes -> unit;
}

type stats = {
  mutable frames_sent : int;
  mutable frames_dropped : int;
  mutable datagrams_sent : int;
  mutable datagrams_delivered : int;
  mutable datagrams_gatewayed : int;
}

type t = {
  kernel : Kernel.t;
  nodes : (int, node) Hashtbl.t;
  loss_permille : int; (* per-frame loss probability, 0..1000 *)
  latency_us : int; (* per-frame propagation + MAC delay *)
  rng : Random.State.t;
  mutable next_tag : int;
  mutable gateway : (src:int -> dst:int -> bytes -> unit) option;
      (* border router: datagrams addressed to nodes not on this network
         are handed over whole — one hand-off per datagram instead of
         per-frame radio events, which is what makes cross-shard fleet
         traffic batchable at epoch barriers *)
  stats : stats;
}

let create ~kernel ?(loss_permille = 0) ?(latency_us = 300) ?(seed = 42) () =
  {
    kernel;
    nodes = Hashtbl.create 4;
    loss_permille;
    latency_us;
    rng = Random.State.make [| seed |];
    next_tag = 1;
    gateway = None;
    stats =
      {
        frames_sent = 0;
        frames_dropped = 0;
        datagrams_sent = 0;
        datagrams_delivered = 0;
        datagrams_gatewayed = 0;
      };
  }

let stats t = t.stats
let kernel t = t.kernel
let set_gateway t handler = t.gateway <- Some handler

let add_node t ~addr =
  if Hashtbl.mem t.nodes addr then
    invalid_arg (Printf.sprintf "node %d already exists" addr);
  let node =
    { addr; reassembler = Frag.create_reassembler (); on_datagram = (fun ~src:_ _ -> ()) }
  in
  Hashtbl.replace t.nodes addr node;
  node

let set_receiver node handler = node.on_datagram <- handler

(* Used when a simulated device powers off/reboots: its radio leaves the
   network so a fresh boot can re-register the address. *)
let remove_node t ~addr = Hashtbl.remove t.nodes addr

let deliver_frame t ~src ~dst frame =
  match Hashtbl.find_opt t.nodes dst with
  | None -> ()
  | Some node -> (
      match Frag.accept node.reassembler ~src frame with
      | Some datagram ->
          t.stats.datagrams_delivered <- t.stats.datagrams_delivered + 1;
          if Obs.enabled () then Ometrics.incr m_datagrams_delivered;
          node.on_datagram ~src datagram
      | None -> ())

(* [send t ~src ~dst payload] fragments and schedules frame deliveries on
   the virtual clock; each frame is independently lost with the configured
   probability.  When [dst] is not a local node and a gateway is set, the
   whole datagram is handed to the gateway instead — no fragmentation, no
   radio events (the off-link hop is modelled by whatever the gateway
   does with it; the fleet enqueues it for the next epoch barrier). *)
let send_local t ~src ~dst payload =
  let tag = t.next_tag in
  t.next_tag <- (t.next_tag + 1) land 0xFFFF;
  let frames = Frag.fragment ~tag payload in
  List.iteri
    (fun i frame ->
      t.stats.frames_sent <- t.stats.frames_sent + 1;
      if Obs.enabled () then Ometrics.incr m_frames_sent;
      if Random.State.int t.rng 1000 < t.loss_permille then begin
        t.stats.frames_dropped <- t.stats.frames_dropped + 1;
        if Obs.enabled () then Ometrics.incr m_frames_dropped
      end
      else
        (* frames serialize on the radio: stagger them by index *)
        Kernel.after_us t.kernel
          ~us:(t.latency_us * (i + 1))
          (fun _ -> deliver_frame t ~src ~dst frame))
    frames

let send t ~src ~dst payload =
  t.stats.datagrams_sent <- t.stats.datagrams_sent + 1;
  if Obs.enabled () then Ometrics.incr m_datagrams_sent;
  match t.gateway with
  | Some gateway when not (Hashtbl.mem t.nodes dst) ->
      t.stats.datagrams_gatewayed <- t.stats.datagrams_gatewayed + 1;
      if Obs.enabled () then Ometrics.incr m_datagrams_gatewayed;
      gateway ~src ~dst payload
  | Some _ | None -> send_local t ~src ~dst payload
