(* Simulated low-power wireless network.

   Stands in for the paper's IEEE 802.15.4 radio + 6LoWPAN stack (see
   DESIGN.md): datagrams are fragmented into 127-byte frames, each frame
   independently suffers deterministic pseudo-random loss and a propagation
   delay, and receivers reassemble.  Delivery is driven by the RTOS
   simulator's timer queue, so networking and computation share one
   virtual clock. *)

module Kernel = Femto_rtos.Kernel
module Obs = Femto_obs.Obs
module Ometrics = Femto_obs.Metrics

(* Radio-level metrics across all simulated networks. *)
let m_datagrams_sent = Obs.counter "net.datagrams_sent"
let m_datagrams_delivered = Obs.counter "net.datagrams_delivered"
let m_frames_sent = Obs.counter "net.frames_sent"
let m_frames_dropped = Obs.counter "net.frames_dropped"
let m_datagrams_gatewayed = Obs.counter "net.datagrams_gatewayed"
let m_frames_duplicated = Obs.counter "net.frames_duplicated"
let m_frames_reordered = Obs.counter "net.frames_reordered"

type node = {
  addr : int;
  reassembler : Frag.reassembler;
  mutable on_datagram : src:int -> bytes -> unit;
}

type stats = {
  mutable frames_sent : int;
  mutable frames_dropped : int;
  mutable frames_duplicated : int;
  mutable frames_reordered : int;
  mutable datagrams_sent : int;
  mutable datagrams_delivered : int;
  mutable datagrams_gatewayed : int;
}

type t = {
  kernel : Kernel.t;
  nodes : (int, node) Hashtbl.t;
  profile : Profile.t; (* per-frame loss/dup/reorder/latency model *)
  rng : Random.State.t;
  mutable next_tag : int;
  mutable gateway : (src:int -> dst:int -> bytes -> unit) option;
      (* border router: datagrams addressed to nodes not on this network
         are handed over whole — one hand-off per datagram instead of
         per-frame radio events, which is what makes cross-shard fleet
         traffic batchable at epoch barriers *)
  stats : stats;
}

let create ~kernel ?profile ?loss_permille ?latency_us ?(seed = 42) () =
  (* [profile] supersedes the legacy knobs; the knobs still override the
     matching profile fields so existing call sites keep their meaning *)
  let base = Option.value profile ~default:Profile.clean in
  let base =
    match loss_permille with
    | Some l -> { base with Profile.p_loss_permille = l }
    | None -> base
  in
  let base =
    match latency_us with
    | Some l -> { base with Profile.p_latency_us = l }
    | None -> base
  in
  {
    kernel;
    nodes = Hashtbl.create 4;
    profile = base;
    rng = Random.State.make [| seed |];
    next_tag = 1;
    gateway = None;
    stats =
      {
        frames_sent = 0;
        frames_dropped = 0;
        frames_duplicated = 0;
        frames_reordered = 0;
        datagrams_sent = 0;
        datagrams_delivered = 0;
        datagrams_gatewayed = 0;
      };
  }

let stats t = t.stats
let profile t = t.profile
let kernel t = t.kernel
let set_gateway t handler = t.gateway <- Some handler

let add_node t ~addr =
  if Hashtbl.mem t.nodes addr then
    invalid_arg (Printf.sprintf "node %d already exists" addr);
  let node =
    { addr; reassembler = Frag.create_reassembler (); on_datagram = (fun ~src:_ _ -> ()) }
  in
  Hashtbl.replace t.nodes addr node;
  node

let set_receiver node handler = node.on_datagram <- handler

(* Used when a simulated device powers off/reboots: its radio leaves the
   network so a fresh boot can re-register the address. *)
let remove_node t ~addr = Hashtbl.remove t.nodes addr

let deliver_frame t ~src ~dst frame =
  match Hashtbl.find_opt t.nodes dst with
  | None -> ()
  | Some node -> (
      match Frag.accept node.reassembler ~src frame with
      | Some datagram ->
          t.stats.datagrams_delivered <- t.stats.datagrams_delivered + 1;
          if Obs.enabled () then Ometrics.incr m_datagrams_delivered;
          node.on_datagram ~src datagram
      | None -> ())

(* [send t ~src ~dst payload] fragments and schedules frame deliveries on
   the virtual clock; each frame is independently lost with the configured
   probability.  When [dst] is not a local node and a gateway is set, the
   whole datagram is handed to the gateway instead — no fragmentation, no
   radio events (the off-link hop is modelled by whatever the gateway
   does with it; the fleet enqueues it for the next epoch barrier). *)
let send_local t ~src ~dst payload =
  let tag = t.next_tag in
  t.next_tag <- (t.next_tag + 1) land 0xFFFF;
  let frames = Frag.fragment ~tag payload in
  let p = t.profile in
  let nframes = List.length frames in
  let draw permille = permille > 0 && Random.State.int t.rng 1000 < permille in
  let jitter () =
    if p.Profile.p_jitter_us > 0 then
      Random.State.int t.rng (p.Profile.p_jitter_us + 1)
    else 0
  in
  List.iteri
    (fun i frame ->
      t.stats.frames_sent <- t.stats.frames_sent + 1;
      if Obs.enabled () then Ometrics.incr m_frames_sent;
      if draw p.Profile.p_loss_permille then begin
        t.stats.frames_dropped <- t.stats.frames_dropped + 1;
        if Obs.enabled () then Ometrics.incr m_frames_dropped
      end
      else begin
        (* frames serialize on the radio: stagger them by index, then
           add the profile's jitter; a reorder draw holds the frame back
           past every in-order successor of its own datagram *)
        let us = (p.Profile.p_latency_us * (i + 1)) + jitter () in
        let us =
          if draw p.Profile.p_reorder_permille then begin
            t.stats.frames_reordered <- t.stats.frames_reordered + 1;
            if Obs.enabled () then Ometrics.incr m_frames_reordered;
            us + (p.Profile.p_latency_us * (nframes + 1)) + jitter () + 1
          end
          else us
        in
        Kernel.after_us t.kernel ~us (fun _ -> deliver_frame t ~src ~dst frame);
        if draw p.Profile.p_dup_permille then begin
          t.stats.frames_duplicated <- t.stats.frames_duplicated + 1;
          if Obs.enabled () then Ometrics.incr m_frames_duplicated;
          let us = us + p.Profile.p_latency_us + jitter () + 1 in
          Kernel.after_us t.kernel ~us (fun _ -> deliver_frame t ~src ~dst frame)
        end
      end)
    frames

let send t ~src ~dst payload =
  t.stats.datagrams_sent <- t.stats.datagrams_sent + 1;
  if Obs.enabled () then Ometrics.incr m_datagrams_sent;
  match t.gateway with
  | Some gateway when not (Hashtbl.mem t.nodes dst) ->
      t.stats.datagrams_gatewayed <- t.stats.datagrams_gatewayed + 1;
      if Obs.enabled () then Ometrics.incr m_datagrams_gatewayed;
      gateway ~src ~dst payload
  | Some _ | None -> send_local t ~src ~dst payload
