(* Cross-runtime corpus harness: the shared vocabulary of the three-layer
   benchmark corpus (EXPERIMENTS.md "Corpus").

   A [workload] is one computation with a single native [expected] result
   and one [impl] per (runtime, tier) pair able to express it: the rBPF
   VM across its execution tiers, the wasm_mini interpreters, and the
   MiniScript profiles (tree eval, stack bytecode, and the to_ebpf
   compiler).  Every impl builds a fresh [instance] whose [run] thunk
   returns the workload result as an int64, so the corpus driver can
   assert result equivalence across all runtimes *before* any timing —
   a diverging program can never be silently benchmarked. *)

type instance = { run : unit -> int64; dispose : unit -> unit }
type impl = { runtime : string; tier : string; mk : unit -> instance }

type workload = {
  wname : string;  (** e.g. "l1/fib" — layer prefix is part of the name *)
  layer : string;  (** "l1" | "l2" | "l3" *)
  expected : int64;  (** native reference result every impl must match *)
  impls : impl list;
      (** head = the reference runtime the baseline ratios divide by *)
}

let instance run = { run; dispose = (fun () -> ()) }

(* Corpus VM budget: identical semantics to the default configuration but
   with a branch budget sized for the corpus loop kernels (the default
   N_b = 8192 is tuned for short hook programs, not 500-frame explicit
   recursion stacks). *)
let corpus_config =
  { Femto_vm.Config.default with Femto_vm.Config.max_branches = 1 lsl 20 }

let fault_fail fault = failwith (Femto_vm.Fault.to_string fault)

(* --- rBPF: one impl per execution tier ------------------------------ *)

(* All tiers load through the analyzer so proof-bearing tiers receive
   their per-pc facts; loop kernels degrade gracefully (the "trimmed"
   row then measures the analyzer's load-time cost model at decoded
   speed, which is exactly what the ablation wants to show). *)
let rbpf_impls ?(helpers = fun () -> Femto_vm.Helper.create ()) ~program
    ~regions ~args () =
  let tier_impl tier_name tier fuse =
    {
      runtime = "rbpf";
      tier = tier_name;
      mk =
        (fun () ->
          match
            Femto_analysis.Analysis.load ~config:corpus_config ~tier ?fuse
              ~helpers:(helpers ()) ~regions:(regions ()) (program ())
          with
          | Error fault -> fault_fail fault
          | Ok vm ->
              instance (fun () ->
                  match Femto_vm.Vm.run vm ~args with
                  | Ok v -> v
                  | Error fault -> fault_fail fault));
    }
  in
  [
    tier_impl "decoded" Femto_vm.Vm.Decoded None;
    tier_impl "trimmed" Femto_vm.Vm.Trimmed None;
    tier_impl "compiled" Femto_vm.Vm.Compiled (Some false);
    tier_impl "compiled-fused" Femto_vm.Vm.Compiled (Some true);
    tier_impl "ir" Femto_vm.Vm.Ir None;
  ]

(* --- wasm_mini: typed reference interpreter + flattened fast path --- *)

(* Instances get an effectively unlimited fuel budget: the corpus driver
   re-runs one instance many times while timing, and the default budget
   is per-instance, not per-call. *)
let wasm_fuel = max_int / 2

(* Fast is untyped: every value is a raw int64, i32s zero-extended. *)
let wasm_raw = function
  | Femto_wasm_mini.Ast.V_i32 v -> Int64.logand (Int64.of_int32 v) 0xFFFF_FFFFL
  | Femto_wasm_mini.Ast.V_i64 v -> v

(* [args] are typed wasm values so i32-parameter modules work under the
   typed reference interpreter; the fast path gets their raw images. *)
let wasm_impls ~modul ~entry ?(input = Bytes.create 0) ~args () =
  [
    {
      runtime = "wasm";
      tier = "interp";
      mk =
        (fun () ->
          let inst = Femto_wasm_mini.Interp.instantiate ~fuel:wasm_fuel modul in
          Femto_wasm_mini.Interp.load_memory inst ~offset:0 input;
          instance (fun () ->
              match Femto_wasm_mini.Interp.call inst ~name:entry args with
              | Ok (Some (Femto_wasm_mini.Ast.V_i64 v)) -> v
              | Ok (Some (Femto_wasm_mini.Ast.V_i32 v)) ->
                  Int64.logand (Int64.of_int32 v) 0xFFFF_FFFFL
              | Ok None -> failwith "wasm interp: no result"
              | Error trap ->
                  failwith (Femto_wasm_mini.Interp.trap_to_string trap)));
    };
    {
      runtime = "wasm";
      tier = "fast";
      mk =
        (fun () ->
          let inst = Femto_wasm_mini.Fast.of_module ~fuel:wasm_fuel modul in
          Femto_wasm_mini.Fast.load_memory inst ~offset:0 input;
          let raw = List.map wasm_raw args in
          instance (fun () ->
              match Femto_wasm_mini.Fast.call inst ~name:entry raw with
              | Ok (Some v) -> v
              | Ok None -> failwith "wasm fast: no result"
              | Error trap ->
                  failwith (Femto_wasm_mini.Interp.trap_to_string trap)));
    };
  ]

(* --- MiniScript: tree eval, stack bytecode, and the eBPF backend ---- *)

let script_result = function
  | Ok (Femto_script.Value.Int v) -> v
  | Ok v -> failwith ("script: non-int result " ^ Femto_script.Value.to_string v)
  | Error m -> failwith ("script: " ^ m)

let script_impls ~source ~entry ~args () =
  [
    {
      runtime = "script";
      tier = "tree";
      mk =
        (fun () ->
          let t = Femto_script.Eval_tree.load source in
          let args = args () in
          instance (fun () ->
              script_result (Femto_script.Eval_tree.call t entry args)));
    };
    {
      runtime = "script";
      tier = "stack";
      mk =
        (fun () ->
          let t = Femto_script.Stack_vm.load source in
          let args = args () in
          instance (fun () ->
              script_result (Femto_script.Stack_vm.call t entry args)));
    };
  ]

(* The raw-memory flavour of the same kernel, compiled to eBPF and run on
   the compiled tier — the paper's "write high level, run at rBPF cost"
   pathway.  [regions]/[args] use the same layout as the rBPF impls. *)
let to_ebpf_impl ~source ~entry ~regions ~args () =
  {
    runtime = "script";
    tier = "to-ebpf";
    mk =
      (fun () ->
        let program = Femto_script.To_ebpf.compile_function source entry in
        match
          Femto_analysis.Analysis.load ~config:corpus_config
            ~helpers:(Femto_vm.Helper.create ()) ~regions:(regions ()) program
        with
        | Error fault -> fault_fail fault
        | Ok vm ->
            instance (fun () ->
                match Femto_vm.Vm.run vm ~args with
                | Ok v -> v
                | Error fault -> fault_fail fault));
  }

(* --- deterministic input synthesis ---------------------------------- *)

(* Keyed byte generator: cheap, stable across runs and platforms, and
   different per workload so no two kernels share their input. *)
let synth_byte ~seed i =
  ((seed * 2654435761) + (i * 40503) + (i lsr 3) + ((i * i) lsr 7)) land 0xff

let synth_bytes ~seed n = Bytes.init n (fun i -> Char.chr (synth_byte ~seed i))
