(* The cross-runtime corpus registry (ROADMAP item 5, EXPERIMENTS.md
   "Corpus").

   Layer 1 are micro kernels isolating one instruction pattern each:
   fib (ALU + branch), tak (calls), sieve (memory stride), fletcher32
   (the paper's checksum), nbody-lite (straight-line arithmetic).
   Layer 2 are realistic hook programs: a CoAP-ish packet filter, sensor
   aggregation, and a kv-history anomaly detector.  Layer 3 — the
   multi-tenant update storm — lives in bench/corpus.ml because it
   exercises the SUIT pipeline rather than a guest program.

   Adding a workload: write a module with a native [reference], one
   expression per runtime, and a [workload ()] assembling Harness impls;
   then list it here.  The corpus driver refuses to time any impl whose
   result diverges from [expected]. *)

(* l1/fletcher32 reuses the paper's reference workload: the handwritten
   eBPF program reads a (ptr, words) context struct, wasm and the script
   profiles use the shared sample programs, and the to_ebpf row compiles
   the raw-memory sample against the same buffer as the rBPF rows. *)
let fletcher_ctx_vaddr = 0x2000_0000L

let fletcher_workload () =
  let data = Fletcher.input_360 in
  let words = Int64.of_int (Bytes.length data / 2) in
  let to_ebpf_regions () =
    [
      Femto_vm.Region.make ~name:"fletcher-data" ~vaddr:Fletcher.data_vaddr
        ~perm:Femto_vm.Region.Read_only (Bytes.copy data);
    ]
  in
  {
    Harness.wname = "l1/fletcher32";
    layer = "l1";
    expected = Int64.of_int (Fletcher.checksum data);
    impls =
      Harness.rbpf_impls ~program:Fletcher.ebpf_program
        ~regions:(fun () -> Fletcher.regions ~ctx_vaddr:fletcher_ctx_vaddr data)
        ~args:[| fletcher_ctx_vaddr |] ()
      @ Harness.wasm_impls ~modul:Femto_wasm_mini.Samples.fletcher32_module
          ~entry:"fletcher32" ~input:data
          ~args:
            [ Femto_wasm_mini.Ast.V_i32 (Int32.of_int (Bytes.length data / 2)) ]
          ()
      @ Harness.script_impls ~source:Femto_script.Samples.fletcher32_source
          ~entry:"fletcher32"
          ~args:(fun () -> Femto_script.Samples.fletcher32_args data)
          ()
      @ [
          Harness.to_ebpf_impl
            ~source:Femto_script.Samples.fletcher32_mem_source ~entry:"run"
            ~regions:to_ebpf_regions
            ~args:[| Fletcher.data_vaddr; words |] ();
        ];
  }

let l1 () =
  [
    Fib.workload ();
    Tak.workload ();
    Sieve.workload ();
    fletcher_workload ();
    Nbody.workload ();
  ]

let l2 () = [ Packet_filter.workload (); Sensor_agg.workload (); Anomaly.workload () ]

let all () = l1 () @ l2 ()
